package ssjoin

import (
	"sort"
	"testing"

	"repro/internal/shard"
)

// TestShardedIndexMatchesSearchIndexes pins the acceptance contract of the
// serving subsystem: QueryBatch over a sharded index returns exactly what
// querying unsharded SearchIndexes — one per partition, built with the
// per-shard seeds from shard.SeedFor — and merging by global id would
// return, for any worker count.
func TestShardedIndexMatchesSearchIndexes(t *testing.T) {
	sets := GenerateUniform(1500, 25, 50000, 61)
	sets, _ = PlantSimilarPairs(sets, 40, 0.8, 62)
	const lambda = 0.5
	const seed, shards = 9, 3

	// The reference: one plain SearchIndex per contiguous partition.
	ranges := shard.ContiguousRanges(len(sets), shards)
	ref := make([]*SearchIndex, shards)
	for k, r := range ranges {
		ref[k] = NewSearchIndex(sets[r[0]:r[1]], lambda, &SearchOptions{Seed: shard.SeedFor(seed, k)})
	}
	queries := sets[:250]
	want := make([][]Match, len(queries))
	for i, q := range queries {
		for k, r := range ranges {
			for _, m := range ref[k].QueryAllSims(q) {
				want[i] = append(want[i], Match{ID: m.ID + r[0], Sim: m.Sim})
			}
		}
		sort.Slice(want[i], func(a, b int) bool { return want[i][a].ID < want[i][b].ID })
	}

	for _, workers := range []int{0, 1, 2, 4, 8} {
		x := NewShardedIndex(sets, lambda, &ShardedOptions{Shards: shards, Seed: seed, Workers: workers})
		got := x.QueryBatch(queries)
		for i := range queries {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d query %d: %d matches, want %d", workers, i, len(got[i]), len(want[i]))
			}
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d query %d match %d: %+v, want %+v", workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestSearchIndexQueryBatchDeterministic: the unsharded batch API yields
// results identical to one-at-a-time QueryAllSims for any worker count.
func TestSearchIndexQueryBatchDeterministic(t *testing.T) {
	sets := GenerateUniform(800, 25, 40000, 63)
	sets, _ = PlantSimilarPairs(sets, 30, 0.8, 64)
	queries := sets[:200]

	ref := NewSearchIndex(sets, 0.5, &SearchOptions{Seed: 3})
	want := make([][]Match, len(queries))
	for i, q := range queries {
		want[i] = ref.QueryAllSims(q)
	}

	for _, workers := range []int{0, 2, 4, 8} {
		ix := NewSearchIndex(sets, 0.5, &SearchOptions{Seed: 3, Workers: workers})
		got := ix.QueryBatch(queries)
		for i := range queries {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d query %d: %d matches, want %d", workers, i, len(got[i]), len(want[i]))
			}
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d query %d differs at %d", workers, i, j)
				}
			}
		}
	}
}

// TestShardedIndexAddAndQuery exercises the incremental path through the
// public facade.
func TestShardedIndexAddAndQuery(t *testing.T) {
	sets := GenerateUniform(600, 20, 30000, 65)
	x := NewShardedIndex(sets, 0.6, &ShardedOptions{Shards: 2, Seed: 5, MergeThreshold: 40})
	extra := GenerateUniform(100, 20, 30000, 66)
	for i := 0; i < len(extra); i += 10 {
		for j, id := range x.Add(extra[i : i+10]) {
			if id != len(sets)+i+j {
				t.Fatalf("Add id %d, want %d", id, len(sets)+i+j)
			}
		}
	}
	st := x.Stats()
	if st.Merges != 2 || st.Buffered != 20 || st.Sets != len(sets)+len(extra) {
		t.Fatalf("stats after adds: %+v", st)
	}
	for i, q := range extra {
		found := false
		for _, m := range x.QueryAll(q) {
			if m.ID == len(sets)+i {
				found = true
			}
		}
		if !found {
			t.Fatalf("added set %d not found", i)
		}
	}
	if x.Len() != len(sets)+len(extra) {
		t.Fatalf("Len %d, want %d", x.Len(), len(sets)+len(extra))
	}
}
