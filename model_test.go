package ssjoin

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/intset"
	"repro/internal/shard"
)

// Model-based randomized harness for the sharded serving subsystem.
//
// A naive reference model — a map from global id to live set, queried by
// brute force — is driven through the same randomly generated op sequence
// (Add / Delete / Query / QueryBatch / Flush / Compact / Save / Load) as
// a real ShardedIndex, and every op's result is checked for byte-identical
// agreement, across partition schemes × shard counts × worker counts ×
// topologies × query layouts (flat and pointer) × result cache on/off ×
// storage tiers (hot, cold, auto).
// Containment queries ride the same sequences: every returned match must
// be in the model's brute-force containment truth with the exact score
// (the candidate structure is approximate, so recall is gated in
// aggregate rather than per probe), Search and QueryContain must agree
// byte-for-byte, and answers must survive save/load unchanged.
// This is what makes the compaction equivalence claim a theorem about the
// implementation rather than a hope: any reorganization the ops trigger —
// seals, compactions, snapshot round trips — must leave every answer
// exactly equal to the model's.
//
// The indexes run in exact mode (LeafSize above any shard size, so every
// tree is one exhaustively scanned leaf): results have recall 1.0 and the
// comparison is exact equality, not a statistical test. Approximate
// configurations are covered by the recall-style tests elsewhere; here
// the subject is the serving machinery (partitioning, id mapping, merge,
// tombstones, reclamation), which must be loss-free at any LeafSize.
//
// Every sequence derives from a fixed seed, so a failure replays
// deterministically; the failing config and op index are in the message.

// refModel is the reference implementation.
type refModel struct {
	lambda float64
	sets   map[int][]uint32
	next   int
}

func newRefModel(lambda float64, initial [][]uint32) *refModel {
	m := &refModel{lambda: lambda, sets: make(map[int][]uint32, len(initial))}
	for _, s := range initial {
		m.sets[m.next] = s
		m.next++
	}
	return m
}

func (m *refModel) add(sets [][]uint32) []int {
	ids := make([]int, len(sets))
	for i, s := range sets {
		ids[i] = m.next
		m.sets[m.next] = s
		m.next++
	}
	return ids
}

func (m *refModel) delete(id int) bool {
	if _, live := m.sets[id]; !live {
		return false
	}
	delete(m.sets, id)
	return true
}

// queryAll is the brute-force reference: every live id with J >= λ,
// sorted ascending.
func (m *refModel) queryAll(q []uint32) []Match {
	if len(q) == 0 {
		return nil
	}
	var out []Match
	for id := 0; id < m.next; id++ {
		s, live := m.sets[id]
		if !live {
			continue
		}
		if sim := intset.Jaccard(q, s); sim >= m.lambda {
			out = append(out, Match{ID: id, Sim: sim})
		}
	}
	return out
}

// queryContain is the brute-force containment reference: every live id
// whose set contains at least t of q, with the exact containment score,
// ascending id.
func (m *refModel) queryContain(q []uint32, t float64) []Match {
	if len(q) == 0 {
		return nil
	}
	var out []Match
	for id := 0; id < m.next; id++ {
		s, live := m.sets[id]
		if !live {
			continue
		}
		if sim, ok := intset.ContainmentAtLeast(q, s, t); ok {
			out = append(out, Match{ID: id, Sim: sim})
		}
	}
	return out
}

// query is the reference best match: maximum similarity, ties to the
// lowest id — the tie-break the sharded merge promises.
func (m *refModel) query(q []uint32) (int, float64, bool) {
	best, bestSim := -1, 0.0
	for id := 0; id < m.next; id++ {
		s, live := m.sets[id]
		if !live {
			continue
		}
		sim := intset.Jaccard(q, s)
		if sim < m.lambda {
			continue
		}
		if sim > bestSim || (sim == bestSim && (best < 0 || id < best)) {
			best, bestSim = id, sim
		}
	}
	return best, bestSim, best >= 0
}

// genSet produces a normalized (sorted, distinct, non-empty) random set
// over a small universe, so similar pairs are common and tombstone /
// tie-break paths actually fire.
func genSet(r *rand.Rand) []uint32 {
	size := 2 + r.Intn(9)
	seen := make(map[uint32]bool, size)
	for len(seen) < size {
		seen[uint32(1+r.Intn(120))] = true
	}
	out := make([]uint32, 0, size)
	for tok := range seen {
		out = append(out, tok)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// genQuery mixes exact copies of live sets, mutated copies, fresh random
// sets and the occasional empty query.
func genQuery(r *rand.Rand, m *refModel) []uint32 {
	switch r.Intn(10) {
	case 0:
		return nil
	case 1, 2, 3, 4:
		if id := m.randomLiveID(r); id >= 0 {
			return m.sets[id]
		}
		return genSet(r)
	case 5, 6:
		id := m.randomLiveID(r)
		if id < 0 {
			return genSet(r)
		}
		src := m.sets[id]
		out := append([]uint32(nil), src...)
		if len(out) > 2 && r.Intn(2) == 0 {
			out = append(out[:1], out[2:]...) // drop a token
		} else {
			out = intset.Normalize(append(out, uint32(1+r.Intn(120))))
		}
		return out
	default:
		return genSet(r)
	}
}

func (m *refModel) randomLiveID(r *rand.Rand) int {
	if len(m.sets) == 0 {
		return -1
	}
	// Deterministic scan from a random start: cheap and rand-stable.
	start := r.Intn(m.next)
	for id := start; id < m.next; id++ {
		if _, live := m.sets[id]; live {
			return id
		}
	}
	for id := 0; id < start; id++ {
		if _, live := m.sets[id]; live {
			return id
		}
	}
	return -1
}

func equalModelMatches(a []Match, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// modelOps is the op count per configuration; reduced under -short and
// under the race detector (the CI race job runs the full suite with the
// race build tag set, and the harness at full size would dominate it).
func modelOps() int {
	if testing.Short() || raceEnabled {
		return 150
	}
	return 500
}

// TestShardedIndexMatchesModel is the harness entry point. The topology
// dimension runs the same generated op sequences against a mixed
// local/remote index — primary shards moved (not just replicated) to two
// in-process httptest peers, later seals staying local until the next
// save/load cycle re-distributes — and requires byte-for-byte agreement
// with the same brute-force model the all-local configurations answer
// to; agreeing with the model exactly, both topologies agree with each
// other.
//
// The layout and cache dimensions ride the same grid: every fourth
// configuration pairs one of {flat, pointer} × {cache off, cache on},
// so the flat query engine, the pointer-trie reference it must equal,
// and the versioned result cache all face the same op sequences. The
// cache is deliberately small (it evicts constantly) and neither knob
// survives a snapshot, so every save/load cycle also checks that
// re-applying them to a freshly loaded index changes no answer.
//
// The storage-tier dimension crosses the whole grid with hot, cold and
// auto tiers: every save/load round trip reopens the snapshot in the
// configuration's tier (cold memory-maps every shard with lazy decode;
// auto uses a threshold small enough that real shard files land on both
// sides of it, and Retier passes move shards between tiers mid-sequence),
// and every subsequent answer must still be byte-identical to the model.
// Cold shards deliberately stay local on Distribute, so the remote×cold
// combinations degrade to local serving after the first round trip —
// remote coverage comes from the hot rows of the grid.
func TestShardedIndexMatchesModel(t *testing.T) {
	const lambda = 0.5
	const cacheEntries = 48
	// autoColdBytes sizes TierAuto's threshold so the harness's small
	// shard files genuinely split across tiers.
	const autoColdBytes = 2048
	type config struct {
		hash    bool
		shards  int
		workers int
		remote  bool
		pointer bool
		cache   bool
		tier    Tier
	}
	var base []config
	for _, hash := range []bool{false, true} {
		for _, shards := range []int{1, 3} {
			for _, workers := range []int{0, 4} {
				combo := len(base) % 4
				base = append(base, config{hash, shards, workers, false,
					combo&1 != 0, combo&2 != 0, TierHot})
			}
		}
	}
	// The remote-topology slice of the grid: both partition schemes at
	// the multi-shard point, sequential and parallel merges, again
	// cycling through the layout × cache combinations.
	for _, hash := range []bool{false, true} {
		for _, workers := range []int{0, 4} {
			combo := len(base) % 4
			base = append(base, config{hash, 3, workers, true,
				combo&1 != 0, combo&2 != 0, TierHot})
		}
	}
	var configs []config
	for _, tier := range []Tier{TierHot, TierCold, TierAuto} {
		for _, c := range base {
			c.tier = tier
			configs = append(configs, c)
		}
	}
	for ci, cfg := range configs {
		cfg := cfg
		name := fmt.Sprintf("hash=%v/shards=%d/workers=%d/remote=%v/pointer=%v/cache=%v/tier=%s",
			cfg.hash, cfg.shards, cfg.workers, cfg.remote, cfg.pointer, cfg.cache, cfg.tier)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			seed := int64(0xC0FFEE + 1000*ci)
			r := rand.New(rand.NewSource(seed))
			dir := filepath.Join(t.TempDir(), "snap")

			distribute := func(ix *ShardedIndex) {}
			if cfg.remote {
				srv1 := shard.NewServer(shard.Build(nil, lambda, &shard.Options{}))
				srv2 := shard.NewServer(shard.Build(nil, lambda, &shard.Options{}))
				peer1 := httptest.NewServer(srv1)
				peer2 := httptest.NewServer(srv2)
				t.Cleanup(peer1.Close)
				t.Cleanup(peer2.Close)
				peers := []string{peer1.URL, peer2.URL}
				distribute = func(ix *ShardedIndex) {
					// KeepLocal false is the strong form: answers must come
					// over the wire, and Save must fetch the bytes back.
					err := ix.Distribute(peers, &DistributeOptions{Replicas: 2, KeepLocal: false})
					if err != nil {
						t.Fatalf("Distribute: %v", err)
					}
					// Placement-GC invariant, re-checked on every pass (the
					// round trips repeatedly re-ship evolved rings): with
					// 2-way replication over two peers, each peer hosts
					// exactly one copy of every remote ring shard — no
					// superseded key from an earlier pass or a previous
					// (pre-Load) life survives.
					st := ix.Stats()
					k1, k2 := srv1.HostedKeys(), srv2.HostedKeys()
					if len(k1) != st.RemoteShards || len(k2) != st.RemoteShards {
						t.Fatalf("peers host %d/%d shards, ring references %d",
							len(k1), len(k2), st.RemoteShards)
					}
					for i := range k1 {
						if k1[i] != k2[i] {
							t.Fatalf("replica sets diverge: %v vs %v", k1, k2)
						}
					}
					if st.PlacementKeys != st.RemoteShards {
						t.Fatalf("placement registry tracks %d keys, ring references %d",
							st.PlacementKeys, st.RemoteShards)
					}
				}
			}

			initial := make([][]uint32, 40)
			for i := range initial {
				initial[i] = genSet(r)
			}
			cacheSize := 0
			if cfg.cache {
				cacheSize = cacheEntries
			}
			model := newRefModel(lambda, initial)
			ix := NewShardedIndex(initial, lambda, &ShardedOptions{
				Shards:         cfg.shards,
				HashPartition:  cfg.hash,
				MergeThreshold: 16,
				Trees:          2,
				LeafSize:       1 << 20, // exact mode: every tree is one scanned leaf
				Seed:           uint64(seed),
				Workers:        cfg.workers,
				PointerLayout:  cfg.pointer,
				CacheSize:      cacheSize,
			})
			distribute(ix)

			// Layout and cache go through the consolidated runtime
			// configuration, which Save persists and Load re-applies — so
			// the explicit re-apply after each round trip is also checking
			// that Configure is idempotent on an already-restored index.
			reconfigure := func(ix *ShardedIndex) {
				if err := ix.Configure(RuntimeOptions{
					PointerLayout: cfg.pointer,
					CacheSize:     cacheSize,
					Tiering:       cfg.tier,
				}); err != nil {
					t.Fatalf("Configure: %v", err)
				}
			}
			reconfigure(ix)

			fail := func(op int, format string, args ...any) {
				t.Helper()
				t.Fatalf("seed=%d op=%d: %s", seed, op, fmt.Sprintf(format, args...))
			}
			checkQuery := func(op int, q []uint32) {
				t.Helper()
				wantID, wantSim, wantOK := model.query(q)
				id, sim, ok, err := ix.QueryErr(q)
				if err != nil {
					fail(op, "QueryErr(%v): %v", q, err)
				}
				if id != wantID || sim != wantSim || ok != wantOK {
					fail(op, "Query(%v) = (%d, %v, %v), model says (%d, %v, %v)",
						q, id, sim, ok, wantID, wantSim, wantOK)
				}
				got, err := ix.QueryAllErr(q)
				if err != nil {
					fail(op, "QueryAllErr(%v): %v", q, err)
				}
				if want := model.queryAll(q); !equalModelMatches(got, want) {
					fail(op, "QueryAll(%v) = %v, model says %v", q, got, want)
				}
			}

			// The containment dimension: the index's containment answers are
			// checked for exactness against the brute-force model — every
			// returned match must be in the model's truth with the exact
			// containment score, in ascending id order — and the Search
			// entry point must agree byte-for-byte with QueryContain. The
			// candidate structure is approximate (recall is a target, not
			// 1.0), so misses are tallied and gated in aggregate at the end
			// instead of per probe.
			var containTruth, containHits int
			checkContain := func(op int, q []uint32) {
				t.Helper()
				for _, th := range []float64{0.5, 1.0} {
					want := model.queryContain(q, th)
					inTruth := make(map[int]float64, len(want))
					for _, m := range want {
						inTruth[m.ID] = m.Sim
					}
					res, err := ix.Search(Query{Set: q, Mode: ModeContainment, Threshold: th})
					if err != nil {
						fail(op, "containment Search(%v, t=%v): %v", q, th, err)
					}
					got := res.Matches
					for i, m := range got {
						if i > 0 && got[i-1].ID >= m.ID {
							fail(op, "containment matches not ascending: %v", got)
						}
						if sim, in := inTruth[m.ID]; !in || sim != m.Sim {
							fail(op, "containment match %+v at t=%v not in model truth %v", m, th, want)
						}
					}
					conv, err := ix.QueryContain(q, th)
					if err != nil {
						fail(op, "QueryContain(%v, t=%v): %v", q, th, err)
					}
					if !equalModelMatches(got, conv) {
						fail(op, "Search containment %v != QueryContain %v", got, conv)
					}
					containTruth += len(want)
					containHits += len(got)
				}
			}

			ops := modelOps()
			for op := 0; op < ops; op++ {
				switch k := r.Intn(100); {
				case k < 35: // Add
					batch := make([][]uint32, 1+r.Intn(8))
					for i := range batch {
						batch[i] = genSet(r)
					}
					wantIDs := model.add(batch)
					ids := ix.Add(batch)
					for i := range ids {
						if ids[i] != wantIDs[i] {
							fail(op, "Add assigned ids %v, model says %v", ids, wantIDs)
						}
					}
				case k < 50: // Delete (live, dead, reclaimed and unknown ids alike)
					for n := 1 + r.Intn(4); n > 0; n-- {
						id := r.Intn(model.next + 2)
						want := model.delete(id)
						if got := ix.Delete(id); got != want {
							fail(op, "Delete(%d) = %v, model says %v", id, got, want)
						}
					}
				case k < 70: // Query + QueryAll + containment
					q := genQuery(r, model)
					checkQuery(op, q)
					checkContain(op, q)
				case k < 80: // QueryBatch
					qs := make([][]uint32, 4+r.Intn(5))
					for i := range qs {
						qs[i] = genQuery(r, model)
					}
					got, err := ix.QueryBatchErr(qs)
					if err != nil {
						fail(op, "QueryBatchErr: %v", err)
					}
					for i, q := range qs {
						if want := model.queryAll(q); !equalModelMatches(got[i], want) {
							fail(op, "QueryBatch[%d](%v) = %v, model says %v", i, q, got[i], want)
						}
					}
				case k < 85: // Flush (+ one auto-tier pass, a no-op off TierAuto)
					ix.Flush()
					if _, _, err := ix.Retier(); err != nil {
						fail(op, "Retier: %v", err)
					}
				case k < 93: // Compact
					res := ix.Compact()
					if res.Merged > 0 {
						st := ix.Stats()
						if st.Compactions < 1 {
							fail(op, "Compact reported %+v but stats say %+v", res, st)
						}
					}
				default: // Save + Load round trip, continuing on the loaded index
					// Containment answers must survive the round trip
					// byte-identically: the snapshot carries the signatures,
					// and the signer's seed is global, so no rebuild may
					// change a single match.
					containProbe := genQuery(r, model)
					preContain, err := ix.QueryContain(containProbe, 0.5)
					if err != nil {
						fail(op, "pre-save QueryContain: %v", err)
					}
					if err := ix.Save(dir); err != nil {
						fail(op, "Save: %v", err)
					}
					loaded, err := LoadShardedIndexWithOptions(dir, LoadOptions{
						Workers:       cfg.workers,
						Tiering:       cfg.tier,
						AutoColdBytes: autoColdBytes,
					})
					if err != nil {
						fail(op, "Load: %v", err)
					}
					ix = loaded
					// Snapshots are topology-free: the loaded index is all
					// local, so a remote configuration re-ships its shards —
					// every round trip exercises placement afresh.
					distribute(ix)
					reconfigure(ix)
					postContain, err := ix.QueryContain(containProbe, 0.5)
					if err != nil {
						fail(op, "post-load QueryContain: %v", err)
					}
					if !equalModelMatches(preContain, postContain) {
						fail(op, "containment answers changed across save/load: %v -> %v",
							preContain, postContain)
					}
				}

				if got, want := ix.Len(), len(model.sets); got != want {
					fail(op, "Len() = %d, model says %d", got, want)
				}
				if op%20 == 19 {
					for p := 0; p < 5; p++ {
						checkQuery(op, genQuery(r, model))
					}
					checkContain(op, genQuery(r, model))
				}
			}

			// Final exhaustive pass: flush, compact, round-trip, and check
			// every live set self-queries correctly plus a probe batch.
			ix.Flush()
			ix.Compact()
			if err := ix.Save(dir); err != nil {
				t.Fatalf("final Save: %v", err)
			}
			loaded, err := LoadShardedIndexWithOptions(dir, LoadOptions{
				Workers:       cfg.workers,
				Tiering:       cfg.tier,
				AutoColdBytes: autoColdBytes,
			})
			if err != nil {
				t.Fatalf("final Load: %v", err)
			}
			ix = loaded
			distribute(ix)
			reconfigure(ix)
			var finals [][]uint32
			for id := 0; id < model.next; id++ {
				if s, live := model.sets[id]; live {
					finals = append(finals, s)
				}
			}
			for p := 0; p < 30; p++ {
				finals = append(finals, genQuery(r, model))
			}
			got, err := ix.QueryBatchErr(finals)
			if err != nil {
				t.Fatalf("seed=%d final: QueryBatchErr: %v", seed, err)
			}
			for i, q := range finals {
				if want := model.queryAll(q); !equalModelMatches(got[i], want) {
					t.Fatalf("seed=%d final: QueryBatch[%d](%v) = %v, model says %v", seed, i, q, got[i], want)
				}
			}
			// Aggregate containment recall over the whole run: the candidate
			// structure is approximate by design, but a broken one (wrong
			// seed plumbing, dropped shards) collapses well below this.
			if containTruth > 0 {
				if recall := float64(containHits) / float64(containTruth); recall < 0.9 {
					t.Fatalf("seed=%d: aggregate containment recall %.3f (%d/%d hits) below 0.9",
						seed, recall, containHits, containTruth)
				}
			}
		})
	}
}
