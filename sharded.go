package ssjoin

import (
	"repro/internal/cpindex"
	"repro/internal/shard"
)

// ShardedOptions configures a ShardedIndex.
type ShardedOptions struct {
	// Shards is the number of primary shards the collection is partitioned
	// into (default 4). Each shard is an independent Chosen Path index.
	Shards int
	// HashPartition assigns sets to shards by a seeded id hash instead of
	// contiguous ranges — use it when the input order is correlated with
	// set structure (e.g. sorted by size) and shards should stay balanced.
	HashPartition bool
	// MergeThreshold is the buffered-append count at which Add seals the
	// side shard into the ring as a full shard (default 1024).
	MergeThreshold int
	// Trees, LeafSize, T, Seed are the per-shard index parameters, as in
	// SearchOptions; shard k is built with seed shard.SeedFor(Seed, k).
	Trees    int
	LeafSize int
	T        int
	Seed     uint64
	// Workers parallelizes construction, sealing and QueryBatch on the
	// shared execution layer: 0 sequential, negative GOMAXPROCS. Results
	// are identical for any worker count.
	Workers int
	// AutoCompact runs Compact in the background after every seal, so a
	// long-lived index reclaims small shards and tombstones on its own.
	AutoCompact bool
	// CompactSmall, CompactMinShards and CompactTombstoneRatio tune the
	// compaction policy (see Compact); zero values select the defaults
	// (2*MergeThreshold, 2 and 0.3).
	CompactSmall          int
	CompactMinShards      int
	CompactTombstoneRatio float64
	// PointerLayout routes queries through the original pointer-trie
	// representation instead of the flat-array engine. Answers are
	// byte-identical either way — this is an escape hatch and a testing
	// hook, not a tuning knob; the flat default is faster.
	PointerLayout bool
	// CacheSize enables the hot-query result cache with room for that
	// many entries (0 disables it). Cached answers are keyed on an
	// internal version bumped by every mutation, so they are always
	// identical to what the uncached path would return.
	CacheSize int
}

// ShardedIndex is a similarity search index partitioned into independently
// built shards — the serving-scale counterpart of SearchIndex. Queries fan
// out across shards and merge with global ids preserved; QueryBatch
// processes query slices as parallel tasks; Add absorbs new sets into a
// side shard without rebuilding (sealed into the ring past a threshold).
// It is safe for concurrent use, including Add concurrent with queries.
type ShardedIndex struct {
	ix *shard.Index
}

// NewShardedIndex builds a sharded search index over the collection for
// similarity threshold lambda. The collection is referenced, not copied.
func NewShardedIndex(sets [][]uint32, lambda float64, opts *ShardedOptions) *ShardedIndex {
	var o *shard.Options
	if opts != nil {
		o = &shard.Options{
			Shards:                opts.Shards,
			MergeThreshold:        opts.MergeThreshold,
			Trees:                 opts.Trees,
			LeafSize:              opts.LeafSize,
			T:                     opts.T,
			Seed:                  opts.Seed,
			Workers:               opts.Workers,
			AutoCompact:           opts.AutoCompact,
			CompactSmall:          opts.CompactSmall,
			CompactMinShards:      opts.CompactMinShards,
			CompactTombstoneRatio: opts.CompactTombstoneRatio,
			CacheSize:             opts.CacheSize,
		}
		if opts.HashPartition {
			o.Partition = shard.PartitionHash
		}
		if opts.PointerLayout {
			o.Layout = cpindex.LayoutPointer
		}
	}
	return &ShardedIndex{ix: shard.Build(sets, lambda, o)}
}

// Query returns the best match across all shards: a global id with
// J(q, result) >= λ and its exact similarity, or ok = false when no shard
// finds one. On a distributed index it panics when a moved shard has no
// live replica; serving paths should use QueryErr there.
//
// Deprecated: use Search (the query-mode API) or QueryErr. Query remains
// only as an all-local-ring convenience, where the panic is structurally
// unreachable.
func (s *ShardedIndex) Query(q []uint32) (id int, sim float64, ok bool) {
	return s.ix.Query(q)
}

// QueryErr is Query with the distributed-topology failure mode surfaced:
// when a shard moved to peers (Distribute without KeepLocal) has no live
// replica, it returns the error instead of a silent partial answer.
// Results are byte-identical to Query whenever both succeed.
func (s *ShardedIndex) QueryErr(q []uint32) (id int, sim float64, ok bool, err error) {
	return s.ix.QueryErr(q)
}

// QueryAll returns every match across all shards (and any buffered
// appends, which are scanned exactly), sorted by id. Panics on a dead
// distributed topology; use QueryAllErr there.
//
// Deprecated: use Search with All set, or QueryAllErr. QueryAll remains
// only as an all-local-ring convenience.
func (s *ShardedIndex) QueryAll(q []uint32) []Match {
	return toMatches(s.ix.QueryAll(q))
}

// QueryAllErr is QueryAll with the distributed-topology failure mode
// surfaced as an error instead of a silent partial merge.
func (s *ShardedIndex) QueryAllErr(q []uint32) ([]Match, error) {
	ms, err := s.ix.QueryAllErr(q)
	if err != nil {
		return nil, err
	}
	return toMatches(ms), nil
}

// QueryBatch answers many queries at once as parallel tasks over a
// read-only snapshot of the shards; results[i] is QueryAll(qs[i]) and the
// output is identical for any worker count. Panics on a dead distributed
// topology; use QueryBatchErr there.
//
// Deprecated: use QueryBatchErr. QueryBatch remains only as an
// all-local-ring convenience.
func (s *ShardedIndex) QueryBatch(qs [][]uint32) [][]Match {
	raw := s.ix.QueryBatch(qs)
	out := make([][]Match, len(raw))
	for i, ms := range raw {
		out[i] = toMatches(ms)
	}
	return out
}

// QueryBatchErr is QueryBatch with the distributed-topology failure mode
// surfaced. Remote shards answer the whole batch in one round trip each;
// an unanswerable shard fails the batch with its error — a batch never
// silently merges partial topology.
func (s *ShardedIndex) QueryBatchErr(qs [][]uint32) ([][]Match, error) {
	raw, err := s.ix.QueryBatchErr(qs)
	if err != nil {
		return nil, err
	}
	out := make([][]Match, len(raw))
	for i, ms := range raw {
		out[i] = toMatches(ms)
	}
	return out, nil
}

// DistributeOptions configure ShardedIndex.Distribute: replication
// factor, whether to retain local copies as last-resort replicas, and an
// optional HTTP client.
type DistributeOptions = shard.DistributeOptions

// Distribute places the index's sealed shards on peer serve instances:
// each shard's snapshot container is shipped (checksum- and
// seed-verified) to Replicas peers in a static round-robin assignment,
// and queries then fan out to those peers with in-order failover — to
// the next replica, then to the retained local copy when KeepLocal is
// set. Results stay byte-identical to the all-local index: peers answer
// from exactly the shipped structure, and global ids and tombstone
// filtering remain coordinator-side. Shards sealed later stay local
// until the next Distribute call.
func (s *ShardedIndex) Distribute(peers []string, opts *DistributeOptions) error {
	return s.ix.Distribute(peers, opts)
}

// PlacementOptions configure the background placement controller: pass
// and probe cadence, the consecutive-failure threshold for active health
// flips, and whether to rebalance replicas away from unhealthy peers.
type PlacementOptions = shard.PlacementOptions

// StartPlacement starts the autonomous placement control plane against
// the given peers: newly sealed shards are shipped automatically under
// opts, compaction-merged shards are re-shipped, superseded hosted
// shards are garbage-collected off peers, and peer health is probed
// actively. Every transition keeps query answers byte-identical to the
// all-local index — placement moves where a shard answers from, never
// what it answers. One controller per index; StopPlacement stops it.
func (s *ShardedIndex) StartPlacement(peers []string, opts *DistributeOptions, po *PlacementOptions) error {
	return s.ix.StartPlacement(peers, opts, po)
}

// StopPlacement stops the placement controller and waits for it to
// exit; a no-op when none is running.
func (s *ShardedIndex) StopPlacement() {
	s.ix.StopPlacement()
}

// Add appends sets (normalized, like the build input) to the index and
// returns their global ids. Appended sets are findable immediately with
// recall 1.0; once MergeThreshold of them accumulate they are sealed into
// a new shard. Empty sets cannot be indexed and cause a panic before any
// state changes.
func (s *ShardedIndex) Add(sets [][]uint32) []int {
	return s.ix.Add(sets)
}

// Flush seals any buffered appends into the shard ring immediately.
func (s *ShardedIndex) Flush() {
	s.ix.Flush()
}

// CompactResult reports what one Compact pass did.
type CompactResult = shard.CompactResult

// Compact runs one compaction pass: small ring shards (sealed appends
// accumulate them) and shards whose tombstone ratio crossed the policy
// threshold are rebuilt — minus their tombstoned sets — into one merged
// shard, which swaps into the ring atomically. Query results are
// provably unchanged: global ids are preserved and only already-deleted
// sets are dropped (their tombstones retire with them). Queries and
// appends proceed concurrently; in-flight queries finish against the old
// ring. Passes serialize; Merged == 0 means nothing was eligible.
func (s *ShardedIndex) Compact() CompactResult {
	return s.ix.Compact()
}

// SetAutoCompact enables or disables background compaction after each
// seal (also settable up front via ShardedOptions.AutoCompact).
//
// Deprecated: use Configure, which applies every runtime option in one
// validated call and persists across Save/Load.
func (s *ShardedIndex) SetAutoCompact(on bool) {
	s.ix.SetAutoCompact(on)
}

// SetPointerLayout switches every shard between the flat-array query
// engine (false, the default) and the pointer-trie reference layout
// (true). A configuration call: apply it before serving, not concurrently
// with queries.
//
// Deprecated: use Configure, which applies every runtime option in one
// validated call and persists across Save/Load (a loaded index resumes
// on the layout it was saved with).
func (s *ShardedIndex) SetPointerLayout(on bool) {
	l := cpindex.LayoutFlat
	if on {
		l = cpindex.LayoutPointer
	}
	s.ix.SetLayout(l)
}

// EnableCache installs (or, with maxEntries <= 0, removes) the hot-query
// result cache on a built or loaded index — the post-Load counterpart of
// ShardedOptions.CacheSize.
//
// Deprecated: use Configure, which applies every runtime option in one
// validated call and persists across Save/Load.
func (s *ShardedIndex) EnableCache(maxEntries int) {
	s.ix.EnableCache(maxEntries)
}

// Delete removes the set with the given global id from all query results,
// reporting whether the id was live. Deletes are tombstones: sealed
// shards are immutable, so the id is filtered out at query-merge time and
// the physical entry is reclaimed when its side buffer seals. Safe to
// call concurrently with queries and Add.
func (s *ShardedIndex) Delete(id int) bool {
	return s.ix.Delete(id)
}

// DeleteBatch deletes many ids at once, returning how many were live;
// unknown and already-deleted ids are skipped.
func (s *ShardedIndex) DeleteBatch(ids []int) int {
	return s.ix.DeleteBatch(ids)
}

// Len returns the number of live indexed sets (buffered appends included,
// deleted sets excluded).
func (s *ShardedIndex) Len() int {
	return s.ix.Len()
}

// Save writes the index to dir: one versioned, checksummed binary file
// per sealed shard plus a JSON manifest (options, counters, buffered
// appends, tombstones). Shard files are written in parallel on the
// execution layer, and the manifest goes last, so an interrupted save
// leaves the previous snapshot readable.
func (s *ShardedIndex) Save(dir string) error {
	return s.ix.Save(dir)
}

// LoadShardedIndex reopens an index saved by Save, loading shard files as
// parallel tasks with the given worker count (which also becomes the
// loaded index's Workers option). The loaded index answers Query,
// QueryAll and QueryBatch identically to the one that was saved, and Add
// continues assigning ids from where it left off. Corrupt, truncated or
// wrong-version snapshots yield descriptive errors, never a panic.
func LoadShardedIndex(dir string, workers int) (*ShardedIndex, error) {
	ix, err := shard.Load(dir, workers)
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{ix: ix}, nil
}

// LoadOptions controls how LoadShardedIndexWithOptions reopens a
// snapshot: shard-load parallelism plus the storage tier shards load
// into (hot decodes fully, cold memory-maps with lazy decode, auto
// splits by shard file size; empty defers to the tier the snapshot was
// saved under).
type LoadOptions = shard.LoadOptions

// LoadShardedIndexWithOptions is LoadShardedIndex with the storage tier
// under caller control. Whatever the tier, the loaded index answers
// queries byte-identically to the one that was saved.
func LoadShardedIndexWithOptions(dir string, opts LoadOptions) (*ShardedIndex, error) {
	ix, err := shard.LoadWithOptions(dir, opts)
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{ix: ix}, nil
}

// Retier runs one auto-tier pass (a no-op unless Tiering is TierAuto),
// promoting cold shards that kept absorbing queries and demoting hot
// shards that sat idle. The placement controller runs this on its own
// cadence; exposing it lets operators and tests drive passes directly.
func (s *ShardedIndex) Retier() (promoted, demoted int, err error) {
	return s.ix.Retier()
}

// ShardStats describes the current shape of a ShardedIndex.
type ShardStats = shard.Stats

// Stats returns a point-in-time snapshot of the index shape: shard count
// and sizes, buffered appends, seal/merge count, tree node totals.
func (s *ShardedIndex) Stats() ShardStats {
	return s.ix.Stats()
}
