package ssjoin

import "testing"

func TestDictionaryIntern(t *testing.T) {
	d := NewDictionary()
	a := d.ID("hello")
	b := d.ID("world")
	if a == b {
		t.Fatal("distinct tokens shared an id")
	}
	if d.ID("hello") != a {
		t.Fatal("re-interning changed the id")
	}
	if d.Name(a) != "hello" || d.Name(b) != "world" {
		t.Fatal("Name() inverse broken")
	}
	if d.Size() != 2 {
		t.Fatalf("Size = %d", d.Size())
	}
	if _, ok := d.Lookup("absent"); ok {
		t.Fatal("Lookup invented a token")
	}
	if id, ok := d.Lookup("world"); !ok || id != b {
		t.Fatal("Lookup failed for interned token")
	}
}

func TestQGrams(t *testing.T) {
	d := NewDictionary()
	g := d.QGrams("ab", 2)
	// Padded "␟ab␟": grams ␟a, ab, b␟ → 3 distinct grams.
	if len(g) != 3 {
		t.Fatalf("QGrams(ab, 2) has %d grams, want 3", len(g))
	}
	// Same string → same set.
	g2 := d.QGrams("AB", 2) // case-insensitive
	if len(g2) != 3 || Jaccard(g, g2) != 1 {
		t.Fatal("case-insensitivity broken")
	}
}

func TestQGramsSimilarity(t *testing.T) {
	d := NewDictionary()
	a := d.QGrams("jonathan smith", 3)
	b := d.QGrams("jonathan smyth", 3) // one substitution
	c := d.QGrams("completely different", 3)
	if Jaccard(a, b) <= Jaccard(a, c) {
		t.Fatalf("typo pair (%v) not more similar than unrelated pair (%v)",
			Jaccard(a, b), Jaccard(a, c))
	}
	if Jaccard(a, b) < 0.5 {
		t.Errorf("single-typo 3-gram similarity %v unexpectedly low", Jaccard(a, b))
	}
}

func TestQGramsEdgeCases(t *testing.T) {
	d := NewDictionary()
	if g := d.QGrams("", 3); g != nil {
		t.Errorf("QGrams(\"\") = %v", g)
	}
	if g := d.QGrams("a", 3); len(g) == 0 {
		t.Error("padded single rune should still produce grams")
	}
	defer func() {
		if recover() == nil {
			t.Error("q=0 did not panic")
		}
	}()
	d.QGrams("x", 0)
}

func TestQGramsUnicode(t *testing.T) {
	d := NewDictionary()
	g := d.QGrams("日本語", 2)
	if len(g) != 4 { // ␟日 日本 本語 語␟
		t.Fatalf("unicode grams = %d, want 4", len(g))
	}
}

func TestWords(t *testing.T) {
	d := NewDictionary()
	w := d.Words("The quick, quick brown Fox! 42")
	// {the, quick, brown, fox, 42} — set semantics dedupes "quick".
	if len(w) != 5 {
		t.Fatalf("Words = %d tokens, want 5", len(w))
	}
	if _, ok := d.Lookup("quick"); !ok {
		t.Error("lowercased word not interned")
	}
}

func TestShingles(t *testing.T) {
	d := NewDictionary()
	s := d.Shingles("a b c d", 2)
	// {a b, b c, c d}
	if len(s) != 3 {
		t.Fatalf("Shingles = %d, want 3", len(s))
	}
	short := d.Shingles("single", 3)
	if len(short) != 1 {
		t.Fatalf("short-input shingle = %d, want 1", len(short))
	}
	if d.Shingles("", 2) != nil {
		t.Error("empty input produced shingles")
	}
}

func TestTokenizeJoinEndToEnd(t *testing.T) {
	// Near-duplicate strings must join; unrelated must not.
	docs := []string{
		"the quick brown fox jumps over the lazy dog",
		"the quick brown fox jumped over the lazy dog",
		"entirely unrelated text about databases and joins",
	}
	d := NewDictionary()
	sets := make([][]uint32, len(docs))
	for i, doc := range docs {
		sets[i] = d.QGrams(doc, 3)
	}
	pairs := BruteForce(sets, 0.5)
	if len(pairs) != 1 || pairs[0] != (Pair{A: 0, B: 1}) {
		t.Fatalf("tokenized join = %v, want [(0,1)]", pairs)
	}
}
