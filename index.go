package ssjoin

import (
	"repro/internal/bayeslsh"
	"repro/internal/core"
	"repro/internal/lshjoin"
	"repro/internal/prep"
)

// Index is the preprocessed form of a collection: MinHash signatures and
// 1-bit minwise sketches. Building it costs one pass of hashing per set;
// afterwards, approximate joins at any threshold reuse it, which is how
// the paper measures join time ("the preprocessing step ... only has to
// be performed once for each set and similarity measure").
//
// An Index is safe for concurrent joins: joins only read it.
type Index struct {
	ix *prep.Index
}

// NewIndex preprocesses a collection with the embedding parameters from
// opts (signature length T, sketch width SketchWords, Seed). With
// opts.Workers set, the per-set hashing runs on the parallel execution
// layer; the built index is identical for any worker count. The
// collection is referenced, not copied; do not mutate it while the index
// is in use.
func NewIndex(sets [][]uint32, opts *Options) *Index {
	return &Index{ix: core.Preprocess(sets, opts.cps())}
}

// Sets returns the underlying collection.
func (ix *Index) Sets() [][]uint32 { return ix.ix.Sets }

// Save persists the index (collection, signatures and sketches) to a file
// in a checksummed binary format, so the preprocessing pass can be reused
// across processes and joins.
func (ix *Index) Save(path string) error {
	return ix.ix.Save(path)
}

// LoadIndex reads an index written by Save. The loaded index is
// self-contained: it carries the collection, so joins can run immediately.
func LoadIndex(path string) (*Index, error) {
	p, err := prep.Load(path)
	if err != nil {
		return nil, err
	}
	return &Index{ix: p}, nil
}

// CPSJoin runs CPSJoin against the index at the given threshold. T and
// SketchWords in opts are ignored (the index fixes them); opts.Workers
// selects the parallelism of the join itself.
func (ix *Index) CPSJoin(lambda float64, opts *Options) ([]Pair, Stats) {
	pairs, c := core.JoinIndexed(ix.ix, lambda, opts.cps())
	return fromPairs(pairs), fromCounters(c)
}

// CPSJoinParallel runs CPSJoin with the given number of worker goroutines
// (0 = GOMAXPROCS).
//
// Deprecated: set Options.Workers and call CPSJoin instead; every join
// algorithm now runs on the same execution layer. This wrapper remains
// for callers of the earlier repetition-level parallelism and is
// equivalent to CPSJoin with Workers set.
func (ix *Index) CPSJoinParallel(lambda float64, opts *Options, workers int) ([]Pair, Stats) {
	o := Options{}
	if opts != nil {
		o = *opts
	}
	if workers <= 0 {
		workers = -1 // negative selects GOMAXPROCS in the execution layer
	}
	o.Workers = workers
	return ix.CPSJoin(lambda, &o)
}

// MinHashJoin runs the MinHash LSH join against the index.
func (ix *Index) MinHashJoin(lambda float64, opts *Options) ([]Pair, Stats) {
	pairs, c := lshjoin.JoinIndexed(ix.ix, lambda, opts.lsh())
	return fromPairs(pairs), fromCounters(c)
}

// BayesLSHJoin runs the BayesLSH-lite join against the index.
func (ix *Index) BayesLSHJoin(lambda float64, opts *Options) ([]Pair, Stats) {
	pairs, c := bayeslsh.JoinIndexed(ix.ix, lambda, opts.bayes())
	return fromPairs(pairs), fromCounters(c)
}
