package ssjoin

// Tests for the unified parallel execution layer: every algorithm accepts
// Options.Workers, and for a fixed seed the result *set* is identical no
// matter how many workers run it — the determinism contract that makes
// parallelism safe to enable by default in the tools.

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"repro/internal/datagen"
)

// parallelWorkload builds a dataset with planted pairs across the
// threshold range plus background noise.
func parallelWorkload(n int, seed uint64) [][]uint32 {
	ds := datagen.Uniform(n, 20, 5000, seed)
	datagen.PlantPairs(ds, n/20, 0.55, seed+1)
	datagen.PlantPairs(ds, n/20, 0.75, seed+2)
	datagen.PlantPairs(ds, n/20, 0.95, seed+3)
	return ds.Sets
}

func sortedPairs(pairs []Pair) []Pair {
	out := append([]Pair(nil), pairs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func equalPairSets(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	a, b = sortedPairs(a), sortedPairs(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var workerCounts = []int{1, 2, 4, runtime.GOMAXPROCS(0)}

// TestParallelDeterminism is the acceptance test of the execution layer:
// CPSJoin, BraunBlanquetJoin and MinHashJoin return identical pair sets
// for a fixed seed at every worker count.
func TestParallelDeterminism(t *testing.T) {
	sets := parallelWorkload(600, 77)
	algorithms := []struct {
		name string
		run  func(workers int) []Pair
	}{
		{"CPSJoin", func(workers int) []Pair {
			p, _ := CPSJoin(sets, 0.5, &Options{Seed: 11, Workers: workers})
			return p
		}},
		{"BraunBlanquetJoin", func(workers int) []Pair {
			p, _ := BraunBlanquetJoin(sets, 0.5, &Options{Seed: 12, Workers: workers})
			return p
		}},
		{"MinHashJoin", func(workers int) []Pair {
			p, _ := MinHashJoin(sets, 0.5, &Options{Seed: 13, Workers: workers})
			return p
		}},
	}
	for _, alg := range algorithms {
		t.Run(alg.name, func(t *testing.T) {
			ref := alg.run(1)
			if len(ref) == 0 {
				t.Fatal("sequential run found no pairs; workload broken")
			}
			for _, workers := range workerCounts[1:] {
				got := alg.run(workers)
				if !equalPairSets(ref, got) {
					t.Errorf("workers=%d: %d pairs differ from sequential %d pairs",
						workers, len(got), len(ref))
				}
			}
		})
	}
}

// TestParallelExactJoins checks that the parallel probe variants of the
// exact algorithms reproduce the sequential pairs and counters exactly.
func TestParallelExactJoins(t *testing.T) {
	sets := parallelWorkload(500, 78)
	t.Run("AllPairs", func(t *testing.T) {
		ref, refStats := AllPairs(sets, 0.5, nil)
		for _, workers := range workerCounts[1:] {
			got, gotStats := AllPairs(sets, 0.5, &Options{Workers: workers})
			if !equalPairSets(ref, got) {
				t.Errorf("workers=%d: pair sets differ", workers)
			}
			if refStats != gotStats {
				t.Errorf("workers=%d: stats %+v != sequential %+v", workers, gotStats, refStats)
			}
		}
	})
	t.Run("PPJoin", func(t *testing.T) {
		ref, refStats := PPJoin(sets, 0.5, nil)
		for _, workers := range workerCounts[1:] {
			got, gotStats := PPJoin(sets, 0.5, &Options{Workers: workers})
			if !equalPairSets(ref, got) {
				t.Errorf("workers=%d: pair sets differ", workers)
			}
			if refStats != gotStats {
				t.Errorf("workers=%d: stats %+v != sequential %+v", workers, gotStats, refStats)
			}
		}
	})
	t.Run("AllPairsRS", func(t *testing.T) {
		r := parallelWorkload(300, 79)
		s := parallelWorkload(300, 80)
		ref, _ := AllPairsRS(r, s, 0.5, nil)
		for _, workers := range workerCounts[1:] {
			got, _ := AllPairsRS(r, s, 0.5, &Options{Workers: workers})
			if !equalPairSets(ref, got) {
				t.Errorf("workers=%d: pair sets differ", workers)
			}
		}
	})
}

// TestParallelBayesLSH covers the remaining approximate algorithm and the
// unified "negative SketchWords disables sketching" convention.
func TestParallelBayesLSH(t *testing.T) {
	sets := parallelWorkload(400, 81)
	ref, _ := BayesLSHJoin(sets, 0.5, &Options{Seed: 9})
	if len(ref) == 0 {
		t.Fatal("sequential BayesLSH found no pairs")
	}
	for _, workers := range workerCounts[1:] {
		got, _ := BayesLSHJoin(sets, 0.5, &Options{Seed: 9, Workers: workers})
		if !equalPairSets(ref, got) {
			t.Errorf("workers=%d: pair sets differ", workers)
		}
	}
	// Sketch pruning disabled: recall can only go up (nothing is pruned
	// before exact verification), precision stays exact.
	noSketch, _ := BayesLSHJoin(sets, 0.5, &Options{Seed: 9, SketchWords: -1})
	if len(noSketch) < len(ref) {
		t.Errorf("disabling sketch pruning lost pairs: %d < %d", len(noSketch), len(ref))
	}
	for _, p := range noSketch {
		if Jaccard(sets[p.A], sets[p.B]) < 0.5 {
			t.Fatal("false positive with sketching disabled")
		}
	}
}

// TestSketchDisabledUniform checks the convention on the other two
// converters at the public API level.
func TestSketchDisabledUniform(t *testing.T) {
	sets := parallelWorkload(300, 82)
	for _, alg := range []Algorithm{AlgCPSJoin, AlgMinHash, AlgBayesLSH} {
		pairs, _, err := Join(sets, 0.5, alg, &Options{Seed: 3, SketchWords: -1})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(pairs) == 0 {
			t.Errorf("%s with sketching disabled found no pairs", alg)
		}
		for _, p := range pairs {
			if Jaccard(sets[p.A], sets[p.B]) < 0.5 {
				t.Fatalf("%s: false positive with sketching disabled", alg)
			}
		}
	}
}

// TestIndexJoinsWithWorkers exercises the Workers path through the
// prebuilt-index API, including the deprecated CPSJoinParallel wrapper.
func TestIndexJoinsWithWorkers(t *testing.T) {
	sets := parallelWorkload(500, 83)
	ix := NewIndex(sets, &Options{Seed: 21})
	ixPar := NewIndex(sets, &Options{Seed: 21, Workers: 4})
	ref, _ := ix.CPSJoin(0.5, &Options{Seed: 21})
	for _, workers := range workerCounts[1:] {
		got, _ := ixPar.CPSJoin(0.5, &Options{Seed: 21, Workers: workers})
		if !equalPairSets(ref, got) {
			t.Errorf("workers=%d: indexed join differs from sequential", workers)
		}
	}
	dep, _ := ix.CPSJoinParallel(0.5, &Options{Seed: 21}, 3)
	if !equalPairSets(ref, dep) {
		t.Error("deprecated CPSJoinParallel differs from sequential CPSJoin")
	}
}

// TestSearchIndexParallelBuild checks that a parallel-built search index
// answers queries identically to a sequential build.
func TestSearchIndexParallelBuild(t *testing.T) {
	sets := parallelWorkload(400, 84)
	seqIx := NewSearchIndex(sets, 0.7, &SearchOptions{Seed: 5})
	parIx := NewSearchIndex(sets, 0.7, &SearchOptions{Seed: 5, Workers: 4})
	misses := 0
	for q := 0; q < 100; q++ {
		a := seqIx.QueryAll(sets[q])
		b := parIx.QueryAll(sets[q])
		sort.Ints(a)
		sort.Ints(b)
		if len(a) != len(b) {
			misses++
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				misses++
				break
			}
		}
	}
	if misses != 0 {
		t.Errorf("%d of 100 queries differ between sequential and parallel builds", misses)
	}
}

// BenchmarkCPSJoinParallel measures the scaling of one CPSJoin run across
// worker counts on a synthetic workload; `make bench` wraps the same
// measurement (via cmd/experiments parallel) into BENCH_parallel.json.
func BenchmarkCPSJoinParallel(b *testing.B) {
	sets := parallelWorkload(4000, 90)
	ix := NewIndex(sets, &Options{Seed: 7, Workers: -1})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := &Options{Seed: 7, Workers: workers}
			for i := 0; i < b.N; i++ {
				ix.CPSJoin(0.5, opts)
			}
		})
	}
}

// BenchmarkBraunBlanquetParallel is the scaling benchmark for the
// reference (raw-set) join.
func BenchmarkBraunBlanquetParallel(b *testing.B) {
	sets := parallelWorkload(1500, 91)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := &Options{Seed: 7, Workers: workers}
			for i := 0; i < b.N; i++ {
				BraunBlanquetJoin(sets, 0.5, opts)
			}
		})
	}
}
