package ssjoin

import "repro/internal/cpindex"

// SearchIndex answers approximate similarity search queries: given a query
// set, find indexed sets with Jaccard similarity at least λ. It is the
// Chosen Path index of Christiani and Pagh (STOC 2017), the structure
// CPSJoin is derived from; use it when queries arrive online instead of as
// a second joinable collection.
type SearchIndex struct {
	ix *cpindex.Index
}

// SearchOptions configures SearchIndex construction.
type SearchOptions struct {
	// Trees is the number of independent search trees; more trees raise
	// per-query recall (default 10).
	Trees int
	// LeafSize stops splitting below this node size (default 32).
	LeafSize int
	// T is the MinHash signature length (default 128).
	T int
	// Seed makes construction reproducible.
	Seed uint64
	// Workers parallelizes construction on the shared execution layer:
	// 0 builds sequentially, negative selects GOMAXPROCS. The built
	// structure is identical for any worker count, and queries against a
	// built index are always safe to run concurrently.
	Workers int
}

// NewSearchIndex builds a search index over the collection for similarity
// threshold lambda. The collection is referenced, not copied.
func NewSearchIndex(sets [][]uint32, lambda float64, opts *SearchOptions) *SearchIndex {
	var o *cpindex.Options
	if opts != nil {
		o = &cpindex.Options{
			Trees:    opts.Trees,
			LeafSize: opts.LeafSize,
			T:        opts.T,
			Seed:     opts.Seed,
			Workers:  opts.Workers,
		}
	}
	return &SearchIndex{ix: cpindex.Build(sets, lambda, o)}
}

// Query returns the id of an indexed set with J(q, result) >= λ and its
// exact similarity, or ok = false when the search finds none. A true
// neighbor is missed only with the residual probability of the (λ, ϕ)
// guarantee.
func (s *SearchIndex) Query(q []uint32) (id int, sim float64, ok bool) {
	return s.ix.Query(q)
}

// QueryAll returns all indexed sets with J(q, y) >= λ that the search
// reaches (high recall with the default tree count; exact-verified, so no
// false positives).
func (s *SearchIndex) QueryAll(q []uint32) []int {
	return s.ix.QueryAll(q)
}
