package ssjoin

import (
	"repro/internal/cpindex"
	"repro/internal/exec"
)

// Match is one similarity search result: the id of an indexed set and its
// exact Jaccard similarity to the query.
type Match struct {
	ID  int     `json:"id"`
	Sim float64 `json:"sim"`
}

// SearchIndex answers approximate similarity search queries: given a query
// set, find indexed sets with Jaccard similarity at least λ. It is the
// Chosen Path index of Christiani and Pagh (STOC 2017), the structure
// CPSJoin is derived from; use it when queries arrive online instead of as
// a second joinable collection.
type SearchIndex struct {
	ix *cpindex.Index
	// workers is the construction-time Workers option, reused as the
	// default parallelism of QueryBatch.
	workers int
}

// SearchOptions configures SearchIndex construction.
type SearchOptions struct {
	// Trees is the number of independent search trees; more trees raise
	// per-query recall (default 10).
	Trees int
	// LeafSize stops splitting below this node size (default 32).
	LeafSize int
	// T is the MinHash signature length (default 128).
	T int
	// Seed makes construction reproducible.
	Seed uint64
	// Workers parallelizes construction on the shared execution layer:
	// 0 builds sequentially, negative selects GOMAXPROCS. The built
	// structure is identical for any worker count, and queries against a
	// built index are always safe to run concurrently.
	Workers int
}

// NewSearchIndex builds a search index over the collection for similarity
// threshold lambda. The collection is referenced, not copied.
func NewSearchIndex(sets [][]uint32, lambda float64, opts *SearchOptions) *SearchIndex {
	var o *cpindex.Options
	workers := 0
	if opts != nil {
		o = &cpindex.Options{
			Trees:    opts.Trees,
			LeafSize: opts.LeafSize,
			T:        opts.T,
			Seed:     opts.Seed,
			Workers:  opts.Workers,
		}
		workers = opts.Workers
	}
	return &SearchIndex{ix: cpindex.Build(sets, lambda, o), workers: workers}
}

// Query returns the id of an indexed set with J(q, result) >= λ and its
// exact similarity, or ok = false when the search finds none. A true
// neighbor is missed only with the residual probability of the (λ, ϕ)
// guarantee.
func (s *SearchIndex) Query(q []uint32) (id int, sim float64, ok bool) {
	return s.ix.Query(q)
}

// QueryAll returns the ids of all indexed sets with J(q, y) >= λ that the
// search reaches (high recall with the default tree count; exact-verified,
// so no false positives). Use QueryAllSims to also get the similarities
// without recomputing them.
func (s *SearchIndex) QueryAll(q []uint32) []int {
	ms := s.ix.QueryAll(q)
	if ms == nil {
		return nil
	}
	ids := make([]int, len(ms))
	for i, m := range ms {
		ids[i] = m.ID
	}
	return ids
}

// QueryAllSims is QueryAll with each match's exact Jaccard similarity —
// already computed during verification, so callers never pay for it twice.
func (s *SearchIndex) QueryAllSims(q []uint32) []Match {
	return toMatches(s.ix.QueryAll(q))
}

// QueryBatch answers many queries at once, fanning them out as tasks on
// the shared execution layer over the read-only index; results[i] is
// QueryAllSims(qs[i]). Parallelism follows the construction-time Workers
// option, and output is identical for any worker count.
func (s *SearchIndex) QueryBatch(qs [][]uint32) [][]Match {
	out := make([][]Match, len(qs))
	exec.RunItems(exec.EffectiveWorkers(s.workers), len(qs), func(i int) {
		out[i] = s.QueryAllSims(qs[i])
	})
	return out
}

// Save writes the built index (trees, hash seeds, options, and the
// collection it points into) to path as one versioned, checksummed
// snapshot file, atomically. A LoadSearchIndex of that file answers
// queries identically to this index, for the cost of reading the bytes
// instead of rebuilding.
func (s *SearchIndex) Save(path string) error {
	return s.ix.Save(path)
}

// LoadSearchIndex reopens an index written by Save. workers sets the
// QueryBatch parallelism of the loaded index (0 = sequential, negative =
// GOMAXPROCS); it does not affect results. Corrupt, truncated or
// wrong-version files yield descriptive errors, never a panic.
func LoadSearchIndex(path string, workers int) (*SearchIndex, error) {
	ix, err := cpindex.Load(path)
	if err != nil {
		return nil, err
	}
	return &SearchIndex{ix: ix, workers: workers}, nil
}

// toMatches converts internal matches to the public type.
func toMatches(ms []cpindex.Match) []Match {
	if ms == nil {
		return nil
	}
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{ID: m.ID, Sim: m.Sim}
	}
	return out
}
