package ssjoin

import (
	"math"
	"path/filepath"
	"testing"
)

// workload builds a test collection with planted similar pairs.
func workload(n int, seed uint64) [][]uint32 {
	sets := GenerateUniform(n, 20, 5000, seed)
	sets, _ = PlantSimilarPairs(sets, n/20, 0.6, seed+1)
	sets, _ = PlantSimilarPairs(sets, n/20, 0.85, seed+2)
	return sets
}

func TestAllAlgorithmsAgreeOnPrecision(t *testing.T) {
	sets := workload(400, 1)
	truth := BruteForce(sets, 0.5)
	truthSet := make(map[Pair]bool, len(truth))
	for _, p := range truth {
		truthSet[p] = true
	}
	for _, alg := range Algorithms() {
		got, _, err := Join(sets, 0.5, alg, &Options{Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for _, p := range got {
			if !truthSet[p] {
				t.Fatalf("%s reported non-result pair %v", alg, p)
			}
		}
	}
}

func TestExactAlgorithmsComplete(t *testing.T) {
	sets := workload(400, 3)
	truth := BruteForce(sets, 0.6)
	for _, alg := range []Algorithm{AlgAllPairs, AlgPPJoin} {
		got, _, err := Join(sets, 0.6, alg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if Recall(got, truth) != 1 {
			t.Errorf("%s is not exact: recall %v", alg, Recall(got, truth))
		}
	}
}

func TestApproximateRecall(t *testing.T) {
	sets := workload(500, 4)
	truth := BruteForce(sets, 0.5)
	if len(truth) == 0 {
		t.Fatal("empty ground truth")
	}
	for _, alg := range []Algorithm{AlgCPSJoin, AlgMinHash} {
		got, _, err := Join(sets, 0.5, alg, &Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if r := Recall(got, truth); r < 0.9 {
			t.Errorf("%s recall %v < 0.9", alg, r)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, _, err := Join(nil, 0.5, "nope", nil); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestJoinRSPublic(t *testing.T) {
	r := [][]uint32{{1, 2, 3, 4}, {50, 51}}
	s := [][]uint32{{1, 2, 3, 5}, {60, 61}}
	got, _ := CPSJoinRS(r, s, 0.5, &Options{Seed: 1, Repetitions: 20})
	found := false
	for _, p := range got {
		if p.A == 0 && p.B == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("CPSJoinRS missed the (0,0) pair: %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	sets := workload(50, 6)
	path := filepath.Join(t.TempDir(), "sets.txt")
	if err := SaveSets(path, sets); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSets(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sets) {
		t.Fatalf("loaded %d sets, saved %d", len(back), len(sets))
	}
}

func TestCleanSets(t *testing.T) {
	sets := [][]uint32{{1, 2}, {1, 2}, {7}, {3, 4}}
	cleaned := CleanSets(sets)
	if len(cleaned) != 2 {
		t.Fatalf("CleanSets left %d sets, want 2", len(cleaned))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([][]uint32{{1, 2, 3}, {1, 2}})
	if s.NumSets != 2 || s.Universe != 3 || s.AvgSetSize != 2.5 || s.MaxSetSize != 3 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestGenerateProfile(t *testing.T) {
	for _, name := range ProfileNames() {
		sets, err := GenerateProfile(name, 500, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(sets) < 300 {
			t.Errorf("%s: only %d sets", name, len(sets))
		}
	}
	if _, err := GenerateProfile("NOPE", 10, 1); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestGenerateTokens(t *testing.T) {
	sets, planted := GenerateTokens(100, 8)
	if len(sets) == 0 || len(planted) == 0 {
		t.Fatal("empty TOKENS dataset")
	}
	for _, p := range planted {
		if p[0] >= len(sets) || p[1] >= len(sets) {
			t.Fatal("planted index out of range")
		}
	}
}

func TestNormalizeSetAndJaccard(t *testing.T) {
	a := NormalizeSet([]uint32{3, 1, 2, 3})
	b := NormalizeSet([]uint32{2, 3, 4})
	if j := Jaccard(a, b); j != 0.5 {
		t.Errorf("Jaccard = %v, want 0.5", j)
	}
}

func TestBraunBlanquetJoinPublic(t *testing.T) {
	sets := workload(400, 30)
	truth := BruteForceBB(sets, 0.5)
	if len(truth) == 0 {
		t.Fatal("no BB ground truth")
	}
	got, _ := BraunBlanquetJoin(sets, 0.5, &Options{Seed: 31})
	truthSet := make(map[Pair]bool, len(truth))
	for _, p := range truth {
		truthSet[p] = true
	}
	hits := 0
	for _, p := range got {
		if !truthSet[p] {
			t.Fatalf("false positive %v (BB=%v)", p, BraunBlanquet(sets[p.A], sets[p.B]))
		}
		hits++
	}
	if float64(hits) < 0.9*float64(len(truth)) {
		t.Errorf("BB recall %d/%d", hits, len(truth))
	}
}

func TestBraunBlanquetMeasure(t *testing.T) {
	a := []uint32{1, 2, 3, 4}
	b := []uint32{1, 2}
	if got := BraunBlanquet(a, b); got != 0.5 {
		t.Errorf("BraunBlanquet = %v, want 0.5", got)
	}
}

func TestCPSJoinParallelPublic(t *testing.T) {
	sets := workload(400, 32)
	ix := NewIndex(sets, &Options{Seed: 33})
	seq, _ := ix.CPSJoin(0.5, &Options{Seed: 33})
	par, _ := ix.CPSJoinParallel(0.5, &Options{Seed: 33}, 4)
	if len(seq) != len(par) {
		t.Fatalf("parallel %d pairs, sequential %d", len(par), len(seq))
	}
	seen := make(map[Pair]bool, len(seq))
	for _, p := range seq {
		seen[p] = true
	}
	for _, p := range par {
		if !seen[p] {
			t.Fatalf("parallel pair %v missing from sequential result", p)
		}
	}
}

func TestEmbedJaccardFamily(t *testing.T) {
	sets := workload(200, 9)
	emb := Embed(sets, 64, 10, JaccardFamily{})
	if len(emb) != len(sets) {
		t.Fatal("embedding changed collection size")
	}
	for _, e := range emb {
		if len(e) != 64 {
			t.Fatalf("embedded size %d, want 64", len(e))
		}
	}
	// Identical sets embed identically.
	dup := Embed([][]uint32{sets[0], sets[0]}, 64, 10, JaccardFamily{})
	if Jaccard(dup[0], dup[1]) != 1 {
		t.Error("identical sets embedded differently")
	}
}

func TestEmbeddedThreshold(t *testing.T) {
	// B = λ ⇔ J = λ/(2-λ). Compare with tolerance: Go folds the expected
	// constant expressions in arbitrary precision.
	if got, want := EmbeddedThreshold(0.5), 0.5/1.5; math.Abs(got-want) > 1e-15 {
		t.Errorf("EmbeddedThreshold(0.5) = %v, want %v", got, want)
	}
	if got, want := EmbeddedThreshold(0.9), 0.9/1.1; math.Abs(got-want) > 1e-15 {
		t.Errorf("EmbeddedThreshold(0.9) = %v, want %v", got, want)
	}
}

func TestEmbeddedJoinFindsSimilarPairs(t *testing.T) {
	// Join via embedding: pairs similar under Jaccard must be found by
	// joining the embedded sets at the converted threshold.
	sets := GenerateUniform(300, 30, 20000, 11)
	sets, planted := PlantSimilarPairs(sets, 20, 0.85, 12)
	emb := Embed(sets, 128, 13, JaccardFamily{})
	got, _ := CPSJoin(emb, EmbeddedThreshold(0.7), &Options{Seed: 14})
	gotSet := make(map[Pair]bool)
	for _, p := range got {
		gotSet[p] = true
	}
	hits := 0
	for _, pl := range planted {
		if gotSet[Pair{A: pl[0], B: pl[1]}] {
			hits++
		}
	}
	if float64(hits) < 0.8*float64(len(planted)) {
		t.Errorf("embedded join found %d/%d planted pairs", hits, len(planted))
	}
}

func TestAngularFamilySimilarSets(t *testing.T) {
	// Two highly overlapping sets should agree on most SimHash bits.
	sets := GenerateUniform(10, 50, 100000, 15)
	sets, planted := PlantSimilarPairs(sets, 5, 0.9, 16)
	emb := Embed(sets, 256, 17, AngularFamily{})
	for _, pl := range planted {
		inter := 0
		a, b := emb[pl[0]], emb[pl[1]]
		m := make(map[uint32]bool)
		for _, v := range a {
			m[v] = true
		}
		for _, v := range b {
			if m[v] {
				inter++
			}
		}
		if frac := float64(inter) / 256; frac < 0.8 {
			t.Errorf("angular embedding agreement %v for J≈0.9 pair", frac)
		}
	}
}
