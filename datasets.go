package ssjoin

import (
	"fmt"
	"io"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

// LoadSets reads a collection from a file in the standard one-set-per-line
// token format (whitespace- or comma-separated non-negative integers).
// Sets are normalized; empty lines are skipped.
func LoadSets(path string) ([][]uint32, error) {
	ds, err := dataset.Load(path)
	if err != nil {
		return nil, err
	}
	return ds.Sets, nil
}

// ReadSets parses a collection from a reader in the same format.
func ReadSets(r io.Reader) ([][]uint32, error) {
	ds, err := dataset.Parse(r)
	if err != nil {
		return nil, err
	}
	return ds.Sets, nil
}

// SaveSets writes a collection to a file, one set per line.
func SaveSets(path string, sets [][]uint32) error {
	return (&dataset.Dataset{Sets: sets}).Save(path)
}

// WriteSets serializes a collection to a writer, one set per line.
func WriteSets(w io.Writer, sets [][]uint32) error {
	return (&dataset.Dataset{Sets: sets}).Write(w)
}

// CleanSets applies the paper's preprocessing: duplicate sets and sets
// with fewer than two tokens are removed. It returns the cleaned
// collection (sharing backing arrays with the input).
func CleanSets(sets [][]uint32) [][]uint32 {
	ds := &dataset.Dataset{Sets: sets}
	ds.Clean()
	return ds.Sets
}

// Summary describes a collection in the terms of Table I of the paper.
type Summary struct {
	NumSets      int
	Universe     int
	AvgSetSize   float64
	MaxSetSize   int
	SetsPerToken float64
}

// Summarize computes collection statistics.
func Summarize(sets [][]uint32) Summary {
	s := (&dataset.Dataset{Sets: sets}).ComputeStats()
	return Summary{
		NumSets:      s.NumSets,
		Universe:     s.Universe,
		AvgSetSize:   s.AvgSetSize,
		MaxSetSize:   s.MaxSetSize,
		SetsPerToken: s.SetsPerToken,
	}
}

// GenerateUniform generates n sets of ~avgSize tokens drawn uniformly from
// a universe of the given size — the UNIFORM workload of the paper, with a
// flat token-frequency distribution that defeats prefix filtering.
func GenerateUniform(n, avgSize, universe int, seed uint64) [][]uint32 {
	return datagen.Uniform(n, avgSize, universe, seed).Sets
}

// GenerateZipf generates n sets of ~avgSize tokens with Zipf(skew) token
// popularity — many rare tokens, the regime where exact prefix-filter
// joins excel.
func GenerateZipf(n, avgSize, universe int, skew float64, seed uint64) [][]uint32 {
	return datagen.Zipf(n, avgSize, universe, skew, seed).Sets
}

// GenerateTokens generates a TOKENS dataset (Section VI-1 of the paper):
// universe of 1000 tokens, each appearing in up to tokenCap sets, with 50
// planted pairs at each expected Jaccard in {0.55, 0.65, 0.75, 0.85, 0.95}
// over a background of expected similarity 0.2. The returned index pairs
// identify the planted pairs. The paper's TOKENS10K/15K/20K use
// tokenCap = 10000, 15000, 20000.
func GenerateTokens(tokenCap int, seed uint64) ([][]uint32, [][2]int) {
	ds, planted := datagen.Tokens(datagen.DefaultTokensConfig(tokenCap, seed))
	return ds.Sets, planted
}

// GenerateClustered generates `clusters` groups of `perCluster`
// near-duplicate sets each: every member mutates a fraction `mutation` of
// its cluster's core tokens. Within-cluster pairs have expected Jaccard
// (1-mutation)²/(2-(1-mutation)²); cross-cluster pairs are nearly
// disjoint. The archetypal entity-resolution workload.
func GenerateClustered(clusters, perCluster, coreSize, universe int, mutation float64, seed uint64) [][]uint32 {
	return datagen.Clustered(clusters, perCluster, coreSize, universe, mutation, seed).Sets
}

// ProfileNames lists the real-dataset profiles available to
// GenerateProfile, matching the datasets of Table I.
func ProfileNames() []string {
	names := make([]string, len(datagen.Profiles))
	for i, p := range datagen.Profiles {
		names[i] = p.Name
	}
	return names
}

// GenerateProfile generates a synthetic analogue of one of the paper's
// real benchmark datasets (see ProfileNames), scaled to n sets while
// preserving average set size and token-frequency structure. See DESIGN.md
// for the substitution rationale.
func GenerateProfile(name string, n int, seed uint64) ([][]uint32, error) {
	p, ok := datagen.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("ssjoin: unknown profile %q (have %v)", name, ProfileNames())
	}
	return p.Generate(n, seed).Sets, nil
}

// PlantSimilarPairs appends `pairs` new set pairs with expected Jaccard
// similarity j to the collection, returning the extended collection and
// the planted index pairs. Useful for building workloads with known
// ground truth.
func PlantSimilarPairs(sets [][]uint32, pairs int, j float64, seed uint64) ([][]uint32, [][2]int) {
	ds := &dataset.Dataset{Sets: sets}
	planted := datagen.PlantPairs(ds, pairs, j, seed)
	return ds.Sets, planted
}
