package ssjoin

// Integration tests: every join algorithm run over a grid of workload
// shapes and thresholds, checking the global invariants of the system:
//
//  1. 100% precision for every algorithm on every input (never report a
//     below-threshold pair).
//  2. Exact algorithms (allpairs, ppjoin, bruteforce) return identical
//     pair sets.
//  3. Approximate algorithms reach their recall contract.
//  4. Results are duplicate-free and normalized.

import (
	"fmt"
	"testing"
)

type gridWorkload struct {
	name string
	sets [][]uint32
}

func integrationGrid() []gridWorkload {
	var grid []gridWorkload

	// Uniform background with planted near-duplicates (the common case).
	u := GenerateUniform(400, 15, 6000, 100)
	u, _ = PlantSimilarPairs(u, 25, 0.7, 101)
	grid = append(grid, gridWorkload{"uniform+planted", u})

	// Zipf-skewed (rare tokens, prefix filtering's home turf).
	z := GenerateZipf(400, 15, 2000, 1.0, 102)
	z, _ = PlantSimilarPairs(z, 25, 0.7, 103)
	grid = append(grid, gridWorkload{"zipf+planted", z})

	// TOKENS-style dense data (no rare tokens at all).
	tk, _ := GenerateTokens(80, 104)
	grid = append(grid, gridWorkload{"tokens", tk})

	// Heavy duplication: many identical and near-identical sets.
	var dup [][]uint32
	base := NormalizeSet([]uint32{1, 2, 3, 4, 5, 6, 7, 8})
	for i := 0; i < 120; i++ {
		dup = append(dup, base)
	}
	dup = append(dup, GenerateUniform(200, 8, 4000, 105)...)
	grid = append(grid, gridWorkload{"duplicates", dup})

	// Extreme size variance.
	var varied [][]uint32
	big := make([]uint32, 400)
	for i := range big {
		big[i] = uint32(i)
	}
	varied = append(varied, big, big[:350], big[:60])
	varied = append(varied, GenerateUniform(200, 10, 4000, 106)...)
	grid = append(grid, gridWorkload{"size-variance", varied})
	return grid
}

func TestIntegrationGrid(t *testing.T) {
	for _, w := range integrationGrid() {
		w := w
		t.Run(w.name, func(t *testing.T) {
			for _, lambda := range []float64{0.5, 0.7, 0.9} {
				truth := BruteForce(w.sets, lambda)
				truthSet := make(map[Pair]bool, len(truth))
				for _, p := range truth {
					truthSet[p] = true
				}
				for _, alg := range Algorithms() {
					got, _, err := Join(w.sets, lambda, alg, &Options{Seed: 7})
					if err != nil {
						t.Fatalf("%s: %v", alg, err)
					}
					seen := make(map[Pair]bool, len(got))
					for _, p := range got {
						if p.A >= p.B {
							t.Fatalf("%s λ=%v: unnormalized pair %v", alg, lambda, p)
						}
						if seen[p] {
							t.Fatalf("%s λ=%v: duplicate pair %v", alg, lambda, p)
						}
						seen[p] = true
						if !truthSet[p] {
							t.Fatalf("%s λ=%v: false positive %v (J=%v)",
								alg, lambda, p, Jaccard(w.sets[p.A], w.sets[p.B]))
						}
					}
					switch alg {
					case AlgAllPairs, AlgPPJoin, AlgBruteForce:
						if len(got) != len(truth) {
							t.Fatalf("%s λ=%v: %d pairs, exact is %d",
								alg, lambda, len(got), len(truth))
						}
					case AlgCPSJoin:
						if r := Recall(got, truth); r < 0.9 && len(truth) >= 10 {
							t.Errorf("%s λ=%v: recall %v < 0.9 (%d/%d)",
								alg, lambda, r, len(got), len(truth))
						}
					case AlgMinHash:
						if r := Recall(got, truth); r < 0.8 && len(truth) >= 10 {
							t.Errorf("%s λ=%v: recall %v < 0.8", alg, lambda, r)
						}
					}
				}
			}
		})
	}
}

// TestIntegrationRSConsistency: the approximate R-S join's results are a
// subset of the exact R-S join's, with high recall.
func TestIntegrationRSConsistency(t *testing.T) {
	r := GenerateUniform(250, 15, 5000, 110)
	s := GenerateUniform(250, 15, 5000, 111)
	// Make some R sets similar to some S sets by cross-planting: copy a
	// few records over with perturbation via PlantSimilarPairs on the
	// concatenation, then split back.
	all := append(append([][]uint32{}, r...), s...)
	all, planted := PlantSimilarPairs(all, 20, 0.8, 112)
	// Planted pairs append two sets each; distribute one to each side.
	for _, p := range planted {
		r = append(r, all[p[0]])
		s = append(s, all[p[1]])
	}

	exact, _ := AllPairsRS(r, s, 0.6, nil)
	exactSet := make(map[Pair]bool, len(exact))
	for _, p := range exact {
		exactSet[p] = true
	}
	approx, _ := CPSJoinRS(r, s, 0.6, &Options{Seed: 113})
	for _, p := range approx {
		if !exactSet[p] {
			t.Fatalf("approximate R-S pair %v not in exact result (J=%v)",
				p, Jaccard(r[p.A], s[p.B]))
		}
	}
	if len(exact) >= 10 {
		hits := 0
		for _, p := range approx {
			if exactSet[p] {
				hits++
			}
		}
		if float64(hits) < 0.85*float64(len(exact)) {
			t.Errorf("R-S recall %d/%d", hits, len(exact))
		}
	}
}

// TestIntegrationThresholdMonotonicity: raising the threshold can only
// shrink the exact result.
func TestIntegrationThresholdMonotonicity(t *testing.T) {
	sets := GenerateUniform(300, 12, 2000, 120)
	sets, _ = PlantSimilarPairs(sets, 30, 0.75, 121)
	prev := -1
	for _, lambda := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		got, _ := AllPairs(sets, lambda, nil)
		if prev >= 0 && len(got) > prev {
			t.Fatalf("result grew when threshold rose: %d -> %d at λ=%v",
				prev, len(got), lambda)
		}
		prev = len(got)
	}
}

// TestIntegrationSeedIndependence: different seeds give different
// randomness but the same correctness contract.
func TestIntegrationSeedIndependence(t *testing.T) {
	sets := GenerateUniform(300, 15, 5000, 130)
	sets, _ = PlantSimilarPairs(sets, 20, 0.8, 131)
	truth := BruteForce(sets, 0.6)
	if len(truth) < 10 {
		t.Skip("too little ground truth")
	}
	for seed := uint64(0); seed < 5; seed++ {
		got, _ := CPSJoin(sets, 0.6, &Options{Seed: seed})
		if r := Recall(got, truth); r < 0.9 {
			t.Errorf("seed %d: recall %v", seed, r)
		}
	}
}

func ExampleJoin_dispatch() {
	sets := [][]uint32{{1, 2, 3}, {1, 2, 4}, {9, 10}}
	for _, alg := range []Algorithm{AlgBruteForce, AlgAllPairs} {
		pairs, _, _ := Join(sets, 0.5, alg, nil)
		fmt.Println(alg, len(pairs))
	}
	// Output:
	// bruteforce 1
	// allpairs 1
}
