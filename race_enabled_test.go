//go:build race

package ssjoin

// raceEnabled reports whether this test binary was built with the race
// detector; the model harness trims its op count so the CI race job (the
// full suite under -race) stays fast.
const raceEnabled = true
