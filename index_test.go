package ssjoin

import (
	"sync"
	"testing"
)

func TestIndexJoinsMatchDirectJoins(t *testing.T) {
	sets := workload(400, 20)
	ix := NewIndex(sets, &Options{Seed: 9})
	for _, lambda := range []float64{0.5, 0.7} {
		direct, _ := CPSJoin(sets, lambda, &Options{Seed: 9})
		indexed, _ := ix.CPSJoin(lambda, &Options{Seed: 9})
		// Same seed, same preprocessing parameters: identical output.
		asSet := func(ps []Pair) map[Pair]bool {
			m := make(map[Pair]bool, len(ps))
			for _, p := range ps {
				m[p] = true
			}
			return m
		}
		d, i := asSet(direct), asSet(indexed)
		if len(d) != len(i) {
			t.Fatalf("λ=%v: direct %d pairs, indexed %d", lambda, len(d), len(i))
		}
		for p := range d {
			if !i[p] {
				t.Fatalf("λ=%v: indexed join missing pair %v", lambda, p)
			}
		}
	}
}

func TestIndexReuseAcrossThresholds(t *testing.T) {
	sets := workload(400, 21)
	ix := NewIndex(sets, &Options{Seed: 3})
	truth05 := BruteForce(sets, 0.5)
	truth09 := BruteForce(sets, 0.9)
	p05, _ := ix.CPSJoin(0.5, &Options{Seed: 3})
	p09, _ := ix.CPSJoin(0.9, &Options{Seed: 3})
	if r := Recall(p05, truth05); r < 0.9 {
		t.Errorf("λ=0.5 recall %v", r)
	}
	if r := Recall(p09, truth09); r < 0.9 {
		t.Errorf("λ=0.9 recall %v", r)
	}
	// Higher thresholds are subsets of the ground truth relationship.
	if len(p09) > len(p05) {
		t.Errorf("more results at λ=0.9 (%d) than 0.5 (%d)", len(p09), len(p05))
	}
}

func TestIndexMinHashAndBayes(t *testing.T) {
	sets := workload(400, 22)
	ix := NewIndex(sets, &Options{Seed: 4})
	truth := BruteForce(sets, 0.5)
	mh, _ := ix.MinHashJoin(0.5, &Options{Seed: 4})
	if r := Recall(mh, truth); r < 0.85 {
		t.Errorf("indexed MinHash recall %v", r)
	}
	by, _ := ix.BayesLSHJoin(0.5, &Options{Seed: 4})
	if r := Recall(by, truth); r < 0.75 {
		t.Errorf("indexed BayesLSH recall %v", r)
	}
	for _, p := range append(mh, by...) {
		if Jaccard(sets[p.A], sets[p.B]) < 0.5 {
			t.Fatal("false positive from indexed join")
		}
	}
}

func TestIndexConcurrentJoins(t *testing.T) {
	sets := workload(300, 23)
	ix := NewIndex(sets, &Options{Seed: 5})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lambda := []float64{0.5, 0.6, 0.7, 0.8}[i%4]
			pairs, _ := ix.CPSJoin(lambda, &Options{Seed: uint64(i)})
			for _, p := range pairs {
				if Jaccard(sets[p.A], sets[p.B]) < lambda {
					t.Errorf("false positive in concurrent join")
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestIndexSaveLoadJoin(t *testing.T) {
	sets := workload(300, 25)
	ix := NewIndex(sets, &Options{Seed: 6})
	path := t.TempDir() + "/ix.cpsidx"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ix.CPSJoin(0.5, &Options{Seed: 6})
	got, _ := loaded.CPSJoin(0.5, &Options{Seed: 6})
	if len(want) != len(got) {
		t.Fatalf("loaded index join: %d pairs, want %d", len(got), len(want))
	}
	seen := make(map[Pair]bool, len(want))
	for _, p := range want {
		seen[p] = true
	}
	for _, p := range got {
		if !seen[p] {
			t.Fatalf("loaded index produced different pair %v", p)
		}
	}
}

func TestIndexSets(t *testing.T) {
	sets := workload(50, 24)
	ix := NewIndex(sets, nil)
	if len(ix.Sets()) != len(sets) {
		t.Fatal("Sets() length mismatch")
	}
}
