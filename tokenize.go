package ssjoin

import (
	"strings"
	"unicode"
)

// Dictionary interns string tokens to dense uint32 ids, turning text
// records into the integer sets the join algorithms operate on. The same
// Dictionary must be used for every record that participates in one join
// so that equal tokens get equal ids.
//
// A Dictionary is not safe for concurrent writes; tokenize all records
// before joining (joins themselves never touch the dictionary).
type Dictionary struct {
	ids   map[string]uint32
	names []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]uint32)}
}

// ID interns tok and returns its id, assigning the next free id on first
// sight.
func (d *Dictionary) ID(tok string) uint32 {
	if id, ok := d.ids[tok]; ok {
		return id
	}
	id := uint32(len(d.names))
	d.ids[tok] = id
	d.names = append(d.names, tok)
	return id
}

// Lookup returns the id of tok without interning.
func (d *Dictionary) Lookup(tok string) (uint32, bool) {
	id, ok := d.ids[tok]
	return id, ok
}

// Name returns the string for an interned id (inverse of ID).
func (d *Dictionary) Name(id uint32) string {
	return d.names[id]
}

// Size returns the number of distinct interned tokens.
func (d *Dictionary) Size() int {
	return len(d.names)
}

// QGrams tokenizes s into its set of character q-grams, padded with q-1
// leading and trailing marker runes so that prefixes and suffixes weigh
// like interior grams — the standard tokenization for typo-robust string
// similarity. Input is lowercased; q must be at least 1.
func (d *Dictionary) QGrams(s string, q int) []uint32 {
	if q < 1 {
		panic("ssjoin: q-gram size must be >= 1")
	}
	// The pad rune (unit separator) cannot appear in normal text, so
	// boundary grams never collide with interior grams.
	const pad = '\x1f'
	runes := []rune(strings.ToLower(s))
	if len(runes) == 0 {
		return nil
	}
	padded := make([]rune, 0, len(runes)+2*(q-1))
	for i := 0; i < q-1; i++ {
		padded = append(padded, pad)
	}
	padded = append(padded, runes...)
	for i := 0; i < q-1; i++ {
		padded = append(padded, pad)
	}
	if len(padded) < q {
		return nil
	}
	out := make([]uint32, 0, len(padded)-q+1)
	for i := 0; i+q <= len(padded); i++ {
		out = append(out, d.ID(string(padded[i:i+q])))
	}
	return NormalizeSet(out)
}

// Words tokenizes s into its set of lowercased words (maximal runs of
// letters and digits).
func (d *Dictionary) Words(s string) []uint32 {
	var out []uint32
	for _, w := range splitWords(s) {
		out = append(out, d.ID(w))
	}
	return NormalizeSet(out)
}

// Shingles tokenizes s into its set of word n-grams ("shingles"), the
// tokenization used for near-duplicate document detection. n must be at
// least 1; strings with fewer than n words yield a single shingle of all
// their words (or nil for empty input).
func (d *Dictionary) Shingles(s string, n int) []uint32 {
	if n < 1 {
		panic("ssjoin: shingle size must be >= 1")
	}
	words := splitWords(s)
	if len(words) == 0 {
		return nil
	}
	if len(words) < n {
		return NormalizeSet([]uint32{d.ID(strings.Join(words, " "))})
	}
	out := make([]uint32, 0, len(words)-n+1)
	for i := 0; i+n <= len(words); i++ {
		out = append(out, d.ID(strings.Join(words[i:i+n], " ")))
	}
	return NormalizeSet(out)
}

func splitWords(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}
