package ssjoin

import (
	"sync"
	"testing"
)

func TestSearchIndexQuery(t *testing.T) {
	sets := GenerateUniform(2000, 25, 50000, 40)
	sets, planted := PlantSimilarPairs(sets, 30, 0.8, 41)
	ix := NewSearchIndex(sets, 0.6, &SearchOptions{Seed: 42})
	for _, p := range planted {
		q := sets[p[0]]
		if Jaccard(q, sets[p[1]]) < 0.6 {
			continue
		}
		id, sim, ok := ix.Query(q)
		if !ok {
			t.Fatalf("query %d found nothing despite an indexed neighbor", p[0])
		}
		if sim < 0.6 || Jaccard(q, sets[id]) < 0.6 {
			t.Fatalf("query %d returned invalid result id=%d sim=%v", p[0], id, sim)
		}
	}
}

func TestSearchIndexQueryAllPrecision(t *testing.T) {
	sets := GenerateUniform(1000, 20, 30000, 43)
	ix := NewSearchIndex(sets, 0.7, &SearchOptions{Seed: 44, Trees: 5})
	for i := 0; i < 40; i++ {
		for _, id := range ix.QueryAll(sets[i]) {
			if Jaccard(sets[i], sets[id]) < 0.7 {
				t.Fatalf("QueryAll returned below-threshold id %d", id)
			}
		}
	}
}

func TestSearchIndexConcurrentQueries(t *testing.T) {
	sets := GenerateClustered(100, 3, 20, 100000, 0.05, 46)
	ix := NewSearchIndex(sets, 0.6, &SearchOptions{Seed: 47})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(sets); i += 8 {
				if _, sim, ok := ix.Query(sets[i]); !ok || sim < 0.6 {
					t.Errorf("self-query %d failed", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestGenerateClustered(t *testing.T) {
	sets := GenerateClustered(50, 4, 20, 100000, 0.1, 48)
	if len(sets) != 200 {
		t.Fatalf("%d sets, want 200", len(sets))
	}
	// Within-cluster pairs join at a moderate threshold.
	truth := BruteForce(sets, 0.5)
	if len(truth) < 150 {
		t.Errorf("only %d within-cluster pairs at λ=0.5", len(truth))
	}
	got, _ := CPSJoin(sets, 0.5, &Options{Seed: 49})
	if r := Recall(got, truth); r < 0.9 {
		t.Errorf("clustered recall %v", r)
	}
}

func TestSearchIndexMiss(t *testing.T) {
	sets := GenerateUniform(500, 20, 30000, 45)
	ix := NewSearchIndex(sets, 0.8, nil)
	q := NormalizeSet([]uint32{1 << 31, 1<<31 + 3, 1<<31 + 9})
	if _, _, ok := ix.Query(q); ok {
		t.Error("query over disjoint tokens found a neighbor")
	}
}
