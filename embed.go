package ssjoin

import (
	"fmt"

	"repro/internal/tabhash"
)

// Hasher is one sampled locality-sensitive hash function: for sets x and y,
// Pr[h(x) = h(y)] equals the similarity the family represents (equation (1)
// of the paper).
type Hasher func(set []uint32) uint32

// Family samples hash functions from an LSHable similarity family. A
// similarity measure sim is LSHable when such a family exists; Section
// II-A of the paper shows how this reduces similarity join under sim to
// set similarity join via a randomized embedding.
type Family interface {
	// Sample returns an independent hash function derived from seed.
	Sample(seed uint64) Hasher
}

// JaccardFamily is the MinHash family: Pr[h(x) = h(y)] = J(x, y).
type JaccardFamily struct{}

// Sample returns a MinHash function backed by tabulation hashing.
func (JaccardFamily) Sample(seed uint64) Hasher {
	table := tabhash.NewTable32(seed)
	return func(set []uint32) uint32 {
		if len(set) == 0 {
			return 0
		}
		best := set[0]
		bestHash := table.Hash(set[0])
		for _, tok := range set[1:] {
			if h := table.Hash(tok); h < bestHash {
				bestHash = h
				best = tok
			}
		}
		return best
	}
}

// AngularFamily is the SimHash family over binary vectors:
// Pr[h(x) = h(y)] = 1 - θ(x, y)/π, the angular similarity of the sets
// viewed as 0/1 vectors. Each sampled function is the sign of a random ±1
// projection.
type AngularFamily struct{}

// Sample returns a one-bit SimHash function.
func (AngularFamily) Sample(seed uint64) Hasher {
	table := tabhash.NewTable32(seed)
	return func(set []uint32) uint32 {
		sum := 0
		for _, tok := range set {
			if table.Hash(tok)&1 == 1 {
				sum++
			} else {
				sum--
			}
		}
		if sum >= 0 {
			return 1
		}
		return 0
	}
}

// Embed maps every input set to a set of exactly t tokens over a fresh
// dense universe, such that the Braun-Blanquet similarity |f(x)∩f(y)|/t of
// two embedded sets is an unbiased estimator of the family's similarity of
// the originals. Combined with EmbeddedThreshold this turns any LSHable
// similarity join into a Jaccard self-join:
//
//	emb := ssjoin.Embed(sets, 128, seed, ssjoin.AngularFamily{})
//	pairs, _ := ssjoin.CPSJoin(emb, ssjoin.EmbeddedThreshold(0.8), nil)
//
// Note that the resulting join is approximate with respect to the original
// measure: the embedding introduces estimation error that the t parameter
// controls (the paper found t = 64 sufficient for thresholds >= 0.5 at
// >90% recall, and uses t = 128).
func Embed(sets [][]uint32, t int, seed uint64, family Family) [][]uint32 {
	if t <= 0 {
		panic(fmt.Sprintf("ssjoin: invalid embedding size %d", t))
	}
	hashers := make([]Hasher, t)
	for i := range hashers {
		hashers[i] = family.Sample(tabhash.Mix64(seed + uint64(i)))
	}
	type pv struct {
		pos uint32
		val uint32
	}
	dict := make(map[pv]uint32)
	out := make([][]uint32, len(sets))
	for si, set := range sets {
		emb := make([]uint32, t)
		for i, h := range hashers {
			key := pv{uint32(i), h(set)}
			id, ok := dict[key]
			if !ok {
				id = uint32(len(dict))
				dict[key] = id
			}
			emb[i] = id
		}
		out[si] = NormalizeSet(emb)
	}
	return out
}

// EmbeddedThreshold converts a similarity threshold λ on the original
// measure into the Jaccard threshold to use on embedded sets. Embedded
// sets have fixed size t, so Braun-Blanquet similarity B = |∩|/t and
// Jaccard J = |∩|/(2t-|∩|) relate by J = B/(2-B), which is monotone; a
// pair meets B >= λ exactly when it meets J >= λ/(2-λ).
func EmbeddedThreshold(lambda float64) float64 {
	if lambda <= 0 || lambda >= 1 {
		panic(fmt.Sprintf("ssjoin: lambda %v out of (0,1)", lambda))
	}
	return lambda / (2 - lambda)
}
