package shard

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cpindex"
	"repro/internal/exec"
	"repro/internal/metrics"
)

// indexMetrics is the instrumentation of one sharded index: latency
// histograms for every serving operation, the candidate-pipeline counters
// shared by all of the index's cpindex shards (sealed, merged, loaded and
// hosted shards all flush into the same three atomics, so the counters
// stay monotone across seals and compaction swaps), per-peer RPC health,
// and scrape-time views of state that already lives elsewhere (cache
// counters, exec totals, index shape). Everything on the query path is a
// plain atomic update — the zero-allocations-per-query contract of the
// flat engine survives instrumentation, enforced by TestQueryMetricsAllocs.
type indexMetrics struct {
	reg *metrics.Registry

	queryBest    *metrics.Histogram // cps_query_seconds{op="query"}
	queryAll     *metrics.Histogram // cps_query_seconds{op="query_all"}
	queryBatch   *metrics.Histogram // cps_query_seconds{op="query_batch"}
	queryContain *metrics.Histogram // cps_query_seconds{op="contain"}
	addLat       *metrics.Histogram // cps_mutation_seconds{op="add"}
	deleteLat    *metrics.Histogram // cps_mutation_seconds{op="delete"}

	queryErrors *metrics.Counter
	slowQueries *metrics.Counter

	compactLat       *metrics.Histogram
	compactMerged    *metrics.Counter
	compactReclaimed *metrics.Counter

	// Placement control plane: reconciliation passes run by the
	// controller, shard uploads, GC evictions (and eviction attempts that
	// failed and will be retried), and rebalance moves.
	placementPasses     *metrics.Counter
	placementErrors     *metrics.Counter
	placementShipped    *metrics.Counter
	placementDeleted    *metrics.Counter
	placementGCErrors   *metrics.Counter
	placementRebalanced *metrics.Counter

	// Storage tiering: shard moves between the hot (decoded) and cold
	// (mapped) tiers, by Configure, Promote/DemoteAll or auto-retier passes.
	tierPromotions *metrics.Counter
	tierDemotions  *metrics.Counter

	// cand is the candidate-pipeline counter set every cpindex shard of
	// this index flushes into (see cpindex.SetCounters).
	cand cpindex.QueryCounters

	// peers holds the lazily created per-peer collectors, keyed by base
	// URL. Created on first contact (or at Distribute time), never removed:
	// a peer that drops out of the ring keeps reporting its last state.
	peerMu sync.Mutex
	peers  map[string]*peerMetrics
}

// peerMetrics is one peer's RPC instrumentation plus its passive health
// bit: healthy flips false on any failed RPC and back on the next success,
// so readiness reflects what queries actually observed, with no extra
// probe traffic.
type peerMetrics struct {
	lat       *metrics.Histogram
	rpcErrors *metrics.Counter
	failovers *metrics.Counter
	// probes / probeFailures count the placement controller's active
	// health checks; the controller flips healthy from them too (false
	// only after its consecutive-failure threshold).
	probes        *metrics.Counter
	probeFailures *metrics.Counter
	healthy       atomic.Bool
}

// observe records one RPC's latency and updates the passive health bit.
func (p *peerMetrics) observe(d time.Duration, err error) {
	if p == nil {
		return
	}
	p.lat.Observe(d)
	if err != nil {
		p.rpcErrors.Inc()
		p.healthy.Store(false)
	} else {
		p.healthy.Store(true)
	}
}

// failover counts one replica skip. Callers count it only when another
// option (a further replica or the local copy) exists — the last resort
// failing is a query error, not a failover.
func (p *peerMetrics) failover() {
	if p != nil {
		p.failovers.Inc()
	}
}

// isHealthy reports the passive health bit; an uninstrumented or
// never-contacted peer counts as healthy (nothing observed against it).
func (p *peerMetrics) isHealthy() bool { return p == nil || p.healthy.Load() }

// newIndexMetrics builds the index's registry and its collectors. Shape
// gauges and the cache/exec counters are scrape-time reads — nothing is
// double-booked on a mutation path.
func newIndexMetrics(x *Index) *indexMetrics {
	reg := metrics.NewRegistry()
	m := &indexMetrics{
		reg:   reg,
		peers: make(map[string]*peerMetrics),

		queryBest:    reg.Histogram("cps_query_seconds", "serving-path query latency by operation", "op", "query"),
		queryAll:     reg.Histogram("cps_query_seconds", "serving-path query latency by operation", "op", "query_all"),
		queryBatch:   reg.Histogram("cps_query_seconds", "serving-path query latency by operation", "op", "query_batch"),
		queryContain: reg.Histogram("cps_query_seconds", "serving-path query latency by operation", "op", "contain"),
		addLat:       reg.Histogram("cps_mutation_seconds", "mutation latency by operation (add includes any seal it triggers)", "op", "add"),
		deleteLat:    reg.Histogram("cps_mutation_seconds", "mutation latency by operation (add includes any seal it triggers)", "op", "delete"),

		queryErrors: reg.Counter("cps_query_errors_total", "queries failed on a dead remote topology"),
		slowQueries: reg.Counter("cps_slow_queries_total", "queries over the configured slow-query threshold"),

		compactLat:       reg.Histogram("cps_compaction_seconds", "duration of completed compaction passes"),
		compactMerged:    reg.Counter("cps_compaction_merged_shards_total", "ring shards removed or rewritten by compaction"),
		compactReclaimed: reg.Counter("cps_compaction_reclaimed_ids_total", "tombstoned entries physically dropped by compaction"),

		placementPasses:     reg.Counter("cps_placement_passes_total", "reconciliation passes run by the placement controller"),
		placementErrors:     reg.Counter("cps_placement_errors_total", "placement passes that ended in an error"),
		placementShipped:    reg.Counter("cps_placement_shipped_total", "shard uploads to peers (initial placement, re-ship and rebalance)"),
		placementDeleted:    reg.Counter("cps_placement_gc_deleted_total", "superseded hosted shards evicted from peers"),
		placementGCErrors:   reg.Counter("cps_placement_gc_errors_total", "hosted-shard evictions that failed and will be retried"),
		placementRebalanced: reg.Counter("cps_placement_rebalanced_total", "shards whose replicas moved away from unhealthy peers"),

		tierPromotions: reg.Counter("cps_tier_promotions_total", "cold shards decoded to the hot tier"),
		tierDemotions:  reg.Counter("cps_tier_demotions_total", "hot shards demoted to the mapped cold tier"),
	}

	// Candidate pipeline: generated by tree traversal, exact-verified, and
	// rejected by verification. (cpindex verifies with an exact Jaccard
	// check — the sketch stage of the paper's join lives in the join
	// algorithms, not the query path — so rejections here are
	// verification rejections.)
	reg.CounterFunc("cps_candidates_total", "candidates generated by shard tree traversals", m.cand.Candidates.Load)
	reg.CounterFunc("cps_verified_total", "candidates exact-verified (Jaccard)", m.cand.Verified.Load)
	reg.CounterFunc("cps_rejected_total", "candidates rejected by exact verification", m.cand.Rejected.Load)

	// Index shape, read under the lock at scrape time.
	reg.GaugeFunc("cps_index_sets", "live indexed sets", func() float64 {
		return float64(x.Len())
	})
	reg.GaugeFunc("cps_index_shards", "ring shards", func() float64 {
		x.mu.RLock()
		defer x.mu.RUnlock()
		return float64(len(x.shards))
	})
	reg.GaugeFunc("cps_index_remote_shards", "ring shards backed by peers", func() float64 {
		x.mu.RLock()
		defer x.mu.RUnlock()
		n := 0
		for _, sh := range x.shards {
			if _, ok := sh.(*remoteShard); ok {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("cps_tier_hot_shards", "local ring shards fully decoded (hot tier)", func() float64 {
		x.mu.RLock()
		defer x.mu.RUnlock()
		n := 0
		for _, sh := range x.shards {
			if _, ok := sh.(*subIndex); ok {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("cps_tier_cold_shards", "local ring shards memory-mapped (cold tier)", func() float64 {
		x.mu.RLock()
		defer x.mu.RUnlock()
		n := 0
		for _, sh := range x.shards {
			if _, ok := sh.(*coldShard); ok {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("cps_index_buffered", "sets in the side buffer and in-flight seals", func() float64 {
		x.mu.RLock()
		defer x.mu.RUnlock()
		n := len(x.side.sets)
		for _, b := range x.sealing {
			n += len(b.sets)
		}
		return float64(n)
	})
	reg.GaugeFunc("cps_index_tombstones", "deleted ids still physically present", func() float64 {
		x.mu.RLock()
		defer x.mu.RUnlock()
		return float64(len(x.tombs))
	})
	reg.GaugeFunc("cps_index_generation", "ring generation (seals, compaction swaps, distributions)", func() float64 {
		x.mu.RLock()
		defer x.mu.RUnlock()
		return float64(x.generation)
	})
	reg.GaugeFunc("cps_index_version", "result version (bumped by every result-affecting mutation)", func() float64 {
		return float64(x.version.Load())
	})
	reg.GaugeFunc("cps_placement_epoch", "placement passes recorded (manual and controller-driven)", func() float64 {
		e, _ := x.placement.stats()
		return float64(e)
	})
	reg.GaugeFunc("cps_placement_tracked_keys", "distinct shard keys the coordinator believes peers host for it", func() float64 {
		_, k := x.placement.stats()
		return float64(k)
	})

	// Result cache, read from whatever cache is installed at scrape time.
	reg.GaugeFunc("cps_cache_entries", "result cache entries (0 when disabled)", func() float64 {
		if c := x.cache.Load(); c != nil {
			n, _, _ := c.stats()
			return float64(n)
		}
		return 0
	})
	reg.CounterFunc("cps_cache_hits_total", "result cache hits", func() uint64 {
		if c := x.cache.Load(); c != nil {
			_, h, _ := c.stats()
			return h
		}
		return 0
	})
	reg.CounterFunc("cps_cache_misses_total", "result cache misses (version-orphaned entries included)", func() uint64 {
		if c := x.cache.Load(); c != nil {
			_, _, mi := c.stats()
			return mi
		}
		return 0
	})

	// Execution layer: process-wide work-stealing pool totals.
	reg.CounterFunc("cps_exec_tasks_total", "tasks completed by the execution layer", func() uint64 {
		return exec.ReadStats().TasksRun
	})
	reg.CounterFunc("cps_exec_steals_total", "tasks stolen between workers", func() uint64 {
		return exec.ReadStats().Steals
	})
	reg.GaugeFunc("cps_exec_queue_depth", "tasks currently queued or executing", func() float64 {
		return float64(exec.ReadStats().QueueDepth)
	})
	return m
}

// peer returns (creating on first use) the collectors for one peer base
// URL. Safe on a nil receiver, so uninstrumented indexes cost only a nil
// check.
func (m *indexMetrics) peer(base string) *peerMetrics {
	if m == nil {
		return nil
	}
	m.peerMu.Lock()
	defer m.peerMu.Unlock()
	pm, ok := m.peers[base]
	if !ok {
		pm = &peerMetrics{
			lat:           m.reg.Histogram("cps_peer_rpc_seconds", "per-peer shard RPC latency", "peer", base),
			rpcErrors:     m.reg.Counter("cps_peer_rpc_errors_total", "failed shard RPCs by peer", "peer", base),
			failovers:     m.reg.Counter("cps_peer_failovers_total", "replica skips by peer (another replica or the local copy took over)", "peer", base),
			probes:        m.reg.Counter("cps_peer_probes_total", "active health probes sent to the peer", "peer", base),
			probeFailures: m.reg.Counter("cps_peer_probe_failures_total", "active health probes the peer failed", "peer", base),
		}
		pm.healthy.Store(true)
		m.reg.GaugeFunc("cps_peer_healthy", "1 when the peer's last shard RPC succeeded", func() float64 {
			if pm.healthy.Load() {
				return 1
			}
			return 0
		}, "peer", base)
		m.peers[base] = pm
	}
	return pm
}

// Metrics returns the index's metric registry — the /metrics endpoint body
// and the hook tests and benchmarks scrape.
func (x *Index) Metrics() *metrics.Registry {
	if x.metrics == nil {
		return nil
	}
	return x.metrics.reg
}

// attachCounters points one cpindex shard at the index's shared candidate
// pipeline counters. Called at every shard creation site — Build, seal,
// compaction merge, snapshot load, hosted-shard registration — before the
// shard is published to queries.
func (x *Index) attachCounters(ix *cpindex.Index) {
	if x.metrics != nil {
		ix.SetCounters(&x.metrics.cand)
	}
}
