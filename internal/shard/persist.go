package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/contain"
	"repro/internal/cpindex"
	"repro/internal/exec"
	"repro/internal/snapshot"
)

// Persistence: a sharded index saves as one directory — a JSON manifest
// (snapshot.Manifest: options, counters, side-shard contents, tombstones,
// shard file list) plus one binary container per sealed shard. Shards are
// independent immutable structures, so saves and loads fan out per shard
// on the execution layer and a restart costs I/O instead of a rebuild.
//
// The manifest is written last: a directory with a manifest always names
// only fully written shard files (each itself written temp-and-rename),
// so a crash mid-save leaves the previous complete snapshot readable.

// shardKind tags a per-shard container: cpindex sections plus the
// local-to-global id map.
const shardKind = "cpshard"

// shardFileName names shard i of save generation gen. Generations make
// overwriting saves atomic at the directory level: a new save never
// renames over a file the current manifest references, so a crash at
// any point leaves the previous manifest naming only intact files.
func shardFileName(gen, i int) string {
	return fmt.Sprintf("shard-g%06d-%04d.cps", gen, i)
}

// nextGeneration scans dir for existing shard files and returns one
// generation past the highest found — derived from the file names, not
// the manifest, so it works even when a previous save crashed or the
// manifest is unreadable.
func nextGeneration(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	maxGen := 0
	for _, e := range entries {
		var g, i int
		if n, _ := fmt.Sscanf(e.Name(), "shard-g%d-%d.cps", &g, &i); n == 2 && g > maxGen {
			maxGen = g
		}
	}
	return maxGen + 1, nil
}

// Save writes the index to dir (created if needed), overwriting any
// snapshot already there. It runs against one read-locked snapshot of
// the index: sealed shards, every exactly-scanned buffer (in-flight
// seals included — they reload as side-shard state), tombstones and
// counters, so a concurrent Add or Delete lands entirely before or
// entirely after the snapshot point. Shard files are written in parallel
// on the execution layer.
func (x *Index) Save(dir string) error {
	// One save at a time per index: concurrent saves into the same
	// directory would race on the generation number and prune each
	// other's files. Queries and Add are not blocked — they synchronize
	// on x.mu, which Save only holds for the in-memory snapshot below.
	x.saveMu.Lock()
	defer x.saveMu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gen, err := nextGeneration(dir)
	if err != nil {
		return err
	}

	x.mu.RLock()
	shards := append([]shardBackend(nil), x.shards...)
	side := snapshot.SideState{}
	for _, b := range x.sealing {
		side.IDs = append(side.IDs, b.ids...)
		side.Sets = append(side.Sets, b.sets...)
	}
	side.IDs = append(side.IDs, x.side.ids...)
	side.Sets = append(side.Sets, x.side.sets...)
	m := &snapshot.Manifest{
		FormatVersion:         snapshot.Version,
		Lambda:                x.lambda,
		Partition:             x.opt.Partition.String(),
		PrimaryShards:         x.opt.Shards,
		MergeThreshold:        x.opt.MergeThreshold,
		Trees:                 x.opt.Trees,
		LeafSize:              x.opt.LeafSize,
		T:                     x.opt.T,
		Seed:                  x.opt.Seed,
		NextSlot:              x.nextSlot,
		Total:                 x.total,
		Appends:               x.appends,
		Merges:                x.merges,
		Deletes:               x.deletes,
		Compactions:           x.compactions,
		CompactedShards:       x.compactedShards,
		RingGeneration:        x.generation,
		CompactSmall:          x.opt.CompactSmall,
		CompactMinShards:      x.opt.CompactMinShards,
		CompactTombstoneRatio: x.opt.CompactTombstoneRatio,
		Side:                  side,
		Tombstones:            sortedTombstones(x.tombs),
		DroppedBitmap:         x.dropped.Bytes(),
	}
	if rt := x.runtime; rt != (RuntimeOptions{}) {
		m.Runtime = &snapshot.RuntimeState{
			AutoCompact:   rt.AutoCompact,
			PointerLayout: rt.PointerLayout,
			CacheSize:     rt.CacheSize,
			Tiering:       string(rt.Tiering),
		}
	}
	x.mu.RUnlock()
	// The placement record rides along so the coordinator's ownership of
	// hosted keys survives a restart (its own mutex; not under mu).
	m.Placement = x.placement.snapshotState()
	copts := x.containOptions()

	// Snapshots are topology-free: a remote-backed shard saves the same
	// cpshard bytes as a local one — from the retained local copy when
	// there is one, otherwise fetched back (and re-verified) from a live
	// replica — so Load always restores a complete all-local index that
	// the operator can re-Distribute.
	m.Shards = make([]snapshot.ShardEntry, len(shards))
	errs := make([]error, len(shards))
	exec.RunItems(exec.EffectiveWorkers(x.opt.Workers), len(shards), func(i int) {
		file := shardFileName(gen, i)
		path := filepath.Join(dir, file)
		switch sh := shards[i].(type) {
		case *subIndex:
			m.Shards[i] = snapshot.ShardEntry{File: file, Seed: sh.ix.Options().Seed, Sets: sh.ix.Len()}
			errs[i] = saveShard(path, sh, copts)
		case *coldShard:
			// A cold shard already holds its canonical container bytes —
			// saving it is a verified file copy, no re-encode.
			m.Shards[i] = snapshot.ShardEntry{File: file, Seed: sh.seed, Sets: len(sh.ids)}
			errs[i] = snapshot.WriteRawFile(path, sh.raw)
		case *remoteShard:
			m.Shards[i] = snapshot.ShardEntry{File: file, Seed: sh.seed, Sets: len(sh.ids)}
			if sh.local != nil {
				errs[i] = saveShard(path, sh.local, copts)
				return
			}
			raw, err := sh.fetchSnapshot()
			if err != nil {
				errs[i] = fmt.Errorf("fetching remote shard %d for save: %w", i, err)
				return
			}
			errs[i] = snapshot.WriteRawFile(path, raw)
		default:
			errs[i] = fmt.Errorf("shard %d: unknown backend %T", i, shards[i])
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := snapshot.WriteManifest(dir, m); err != nil {
		return err
	}
	return pruneUnreferenced(dir, m)
}

func sortedTombstones(ids map[int]struct{}) []int {
	if len(ids) == 0 {
		return nil
	}
	out := make([]int, 0, len(ids))
	for id := range ids {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

func saveShard(path string, sh *subIndex, copts contain.Options) error {
	return snapshot.WriteFile(path, shardKind, func(w *snapshot.Writer) error {
		return encodeShardSections(w, sh, copts)
	})
}

// encodeShardSections writes one shard's container body — cpindex
// sections, the local→global id map, and the containment signatures.
// Shared by disk saves and shard shipping, so a shipped shard is
// bit-for-bit a saved one. Encoding forces the containment side to exist
// (signing is the expensive part; the bucket structure rebuilds on load),
// which is what lets version-2 readers consume the section
// unconditionally: sections are sequential, so presence cannot be probed.
func encodeShardSections(w *snapshot.Writer, sh *subIndex, copts contain.Options) error {
	if err := sh.ix.EncodeSections(w); err != nil {
		return err
	}
	var ids snapshot.Buf
	ids.Uvarint(uint64(len(sh.ids)))
	for _, id := range sh.ids {
		ids.Uvarint(uint64(id))
	}
	if err := w.Section("ids", ids.B); err != nil {
		return err
	}
	c := sh.containIndex(copts)
	var cb snapshot.Buf
	cb.U32(uint32(c.T()))
	cb.U64(c.Seed())
	cb.Uvarint(uint64(c.Len()))
	for _, word := range c.Signatures() {
		cb.U32(word)
	}
	return w.Section("contain", cb.B)
}

// decodeContainSection reads the containment signatures of a version-2
// shard container and rebuilds the candidate structure over the decoded
// cpindex's sets. The section is self-contained (it carries its own T
// and seed), so a peer hosting a shipped shard answers containment
// queries without knowing the coordinator's configuration.
func decodeContainSection(r *snapshot.Reader, ix *cpindex.Index) (*contain.Index, error) {
	raw, err := r.Section("contain")
	if err != nil {
		return nil, err
	}
	return decodeContainPayload(raw, ix.Sets())
}

// decodeContainPayload decodes one containment section body over the given
// sets. Split from decodeContainSection so cold shards — which read the
// section from the mapping, not a sequential Reader — share every guard.
func decodeContainPayload(raw []byte, sets [][]uint32) (*contain.Index, error) {
	c := snapshot.NewCursor("contain", raw)
	t := c.U32()
	seed := c.U64()
	if t == 0 || t > 1<<16 {
		c.Fail("implausible signature length %d", t)
	}
	n := c.Uvarint()
	if uint64(len(sets)) != n {
		c.Fail("containment side covers %d sets, shard holds %d", n, len(sets))
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	words := int(n) * int(t)
	if words*4 != c.Remaining() {
		return nil, fmt.Errorf("%w: section %q: %d signature bytes for %d sets with T=%d",
			snapshot.ErrCorrupt, "contain", c.Remaining(), n, t)
	}
	sigs := make([]uint32, words)
	for i := range sigs {
		sigs[i] = c.U32()
	}
	if err := c.Done(); err != nil {
		return nil, err
	}
	ci, err := contain.FromSignatures(sets, sigs, contain.Options{T: int(t), Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	return ci, nil
}

// pruneUnreferenced deletes every shard file the freshly written
// manifest does not name: earlier generations, shards of a larger
// previous snapshot, and leftovers of crashed saves. It runs only after
// the manifest landed, so nothing the directory's reader could need is
// ever removed.
func pruneUnreferenced(dir string, m *snapshot.Manifest) error {
	keep := make(map[string]bool, len(m.Shards))
	for _, e := range m.Shards {
		keep[e.File] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "shard-") || !strings.HasSuffix(name, ".cps") || keep[name] {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// LoadOptions controls how a snapshot directory reopens.
type LoadOptions struct {
	// Workers is the shard-load parallelism (0 = sequential, negative =
	// GOMAXPROCS); it also becomes the loaded index's Workers option.
	Workers int
	// Tiering picks the storage tier shards load into. Empty defers to the
	// tier the manifest's runtime state recorded (hot when absent): hot
	// fully decodes, cold memory-maps with lazy decode, auto maps shard
	// files of at least AutoColdBytes and decodes smaller ones.
	Tiering Tier
	// AutoColdBytes is TierAuto's size threshold; 0 means
	// DefaultAutoColdBytes.
	AutoColdBytes int64
}

// Load reopens an index saved by Save with the default (hot, or
// manifest-recorded) storage tier. Shard files load as parallel tasks on
// the execution layer with the given worker count (0 = sequential,
// negative = GOMAXPROCS), which also becomes the loaded index's Workers
// option for future seals and batch queries; everything else — options,
// counters, side shard, tombstones — comes from the manifest. A corrupt
// or truncated snapshot returns a descriptive error wrapping
// snapshot.ErrCorrupt (or ErrVersion), never a panic.
func Load(dir string, workers int) (*Index, error) {
	return LoadWithOptions(dir, LoadOptions{Workers: workers})
}

// LoadWithOptions is Load with the storage tier under caller control.
func LoadWithOptions(dir string, lo LoadOptions) (*Index, error) {
	workers := lo.Workers
	m, err := snapshot.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	// Resolve the effective tier before touching shard files: an explicit
	// option wins, then the tier the snapshot was saved under, then hot.
	tierName := string(lo.Tiering)
	if tierName == "" && m.Runtime != nil {
		tierName = m.Runtime.Tiering
	}
	tier, err := ParseTier(tierName)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	autoCold := lo.AutoColdBytes
	if autoCold <= 0 {
		autoCold = DefaultAutoColdBytes
	}
	var part Partition
	switch m.Partition {
	case PartitionContiguous.String():
		part = PartitionContiguous
	case PartitionHash.String():
		part = PartitionHash
	default:
		return nil, fmt.Errorf("%s: %w: unknown partition scheme %q",
			dir, snapshot.ErrCorrupt, m.Partition)
	}
	// The side shard arrives pre-decoded from JSON, so it gets the same
	// invariant checks the binary decoders enforce: non-empty (a seal
	// must be able to MinHash-sign every buffered set) and strictly
	// increasing (what Jaccard verification assumes).
	if err := snapshot.ValidateSets(m.Side.Sets); err != nil {
		return nil, fmt.Errorf("%s: side shard: %w", dir, err)
	}

	// The compaction-policy knobs come from the manifest so a loaded index
	// compacts under the policy it was built with; withDefaults fills them
	// exactly as Build would when they are absent (pre-compaction
	// manifests store zeros).
	opt := (&Options{
		Shards:                m.PrimaryShards,
		Partition:             part,
		MergeThreshold:        m.MergeThreshold,
		Trees:                 m.Trees,
		LeafSize:              m.LeafSize,
		T:                     m.T,
		Seed:                  m.Seed,
		Workers:               workers,
		CompactSmall:          m.CompactSmall,
		CompactMinShards:      m.CompactMinShards,
		CompactTombstoneRatio: m.CompactTombstoneRatio,
	}).withDefaults()
	x := &Index{
		lambda:          m.Lambda,
		opt:             opt,
		side:            &sideBuffer{sets: m.Side.Sets, ids: m.Side.IDs},
		nextSlot:        m.NextSlot,
		total:           m.Total,
		appends:         m.Appends,
		merges:          m.Merges,
		deletes:         m.Deletes,
		compactions:     m.Compactions,
		compactedShards: m.CompactedShards,
		generation:      m.RingGeneration,
	}
	if len(m.Tombstones) > 0 {
		x.tombs = make(map[int]struct{}, len(m.Tombstones))
		for _, id := range m.Tombstones {
			x.tombs[id] = struct{}{}
		}
	}
	// The dropped set arrives as a dense bitmap (or the legacy id list of
	// pre-bitmap snapshots — DroppedIDs reads either). A dropped id is
	// physically absent: it must not double as a tombstone (that would
	// wrongly debit the live count below) or still sit in the side shard.
	if x.dropped = m.DroppedIDs(); x.dropped != nil {
		for _, id := range m.Tombstones {
			if x.dropped.Get(id) {
				return nil, fmt.Errorf("%s: %w: id %d both dropped and tombstoned",
					dir, snapshot.ErrCorrupt, id)
			}
		}
		for _, id := range m.Side.IDs {
			if x.dropped.Get(id) {
				return nil, fmt.Errorf("%s: %w: dropped id %d still in side shard",
					dir, snapshot.ErrCorrupt, id)
			}
		}
	}

	x.shards = make([]shardBackend, len(m.Shards))
	errs := make([]error, len(m.Shards))
	exec.RunItems(exec.EffectiveWorkers(workers), len(m.Shards), func(i int) {
		path := filepath.Join(dir, m.Shards[i].File)
		x.shards[i], errs[i] = loadTieredShard(path, m.Shards[i], m.Total, tier, autoCold)
	})
	for i, err := range errs {
		if err != nil {
			// Name the failing shard file: an unreadable or corrupt shard is
			// a per-shard condition, not manifest corruption, and the
			// operator needs to know which file to restore.
			return nil, fmt.Errorf("shard %q: %w", m.Shards[i].File, err)
		}
	}
	x.metrics = newIndexMetrics(x)
	for _, sh := range x.shards {
		switch b := sh.(type) {
		case *subIndex:
			x.attachCounters(b.ix)
		case *coldShard:
			b.mapped.SetCounters(&x.metrics.cand)
		}
	}
	// One pass over every physically present id checks the remaining
	// cross-invariants: a dropped id must be absent from every shard (a
	// manifest claiming otherwise would resurrect a reclaimed entry as
	// live data that Delete, which skips dropped ids, could never remove),
	// and every tombstone must be physically present somewhere (a ghost
	// tombstone would debit the live count below for an id that does not
	// exist).
	present := 0
	for _, id := range m.Side.IDs {
		if _, dead := x.tombs[id]; dead {
			present++
		}
	}
	for _, sh := range x.shards {
		for _, id := range sh.globalIDs() {
			if x.dropped.Get(id) {
				return nil, fmt.Errorf("%s: %w: dropped id %d still present in a shard",
					dir, snapshot.ErrCorrupt, id)
			}
			if _, dead := x.tombs[id]; dead {
				present++
			}
		}
	}
	if present != len(x.tombs) {
		return nil, fmt.Errorf("%s: %w: %d of %d tombstoned ids not present in any shard",
			dir, snapshot.ErrCorrupt, len(x.tombs)-present, len(x.tombs))
	}

	// live is derived, not stored: every physically present id minus the
	// tombstones (all physically present, per the check above, so the
	// subtraction cannot go negative).
	x.live = len(x.side.ids) - len(x.tombs)
	for _, sh := range x.shards {
		x.live += sh.size()
	}
	// Restore the placement record: the ring reloads all-local (snapshots
	// are topology-free), but the keys the previous life shipped are
	// still hosted on peers, and the next Distribute pass garbage-collects
	// whichever of them the new ring doesn't re-reference.
	x.placement.restore(m.Placement)
	// Re-apply the runtime configuration the index was saved with, so a
	// restart restores tuning (layout, cache, auto-compaction) and not just
	// data. Absent on pre-runtime manifests — defaults then.
	if m.Runtime != nil || tierName != "" {
		ro := RuntimeOptions{}
		if m.Runtime != nil {
			ro.AutoCompact = m.Runtime.AutoCompact
			ro.PointerLayout = m.Runtime.PointerLayout
			ro.CacheSize = m.Runtime.CacheSize
		}
		// The effective tier (explicit option over manifest) wins, so an
		// explicit LoadOptions.Tiering is not undone by the saved state;
		// shards already loaded in the target tier make this re-application
		// a no-op.
		ro.Tiering = Tier(tierName)
		if err := x.Configure(ro); err != nil {
			return nil, fmt.Errorf("%s: %w: saved runtime options: %v", dir, snapshot.ErrCorrupt, err)
		}
	}
	return x, nil
}

// loadTieredShard opens one shard file in the tier the policy picks for
// it: hot fully decodes, cold memory-maps with lazy decode, and auto
// stats the file — containers of at least autoCold bytes map, smaller
// ones decode.
func loadTieredShard(path string, entry snapshot.ShardEntry, total int, tier Tier, autoCold int64) (shardBackend, error) {
	cold := tier == TierCold
	if tier == TierAuto {
		fi, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		cold = fi.Size() >= autoCold
	}
	if cold {
		return openColdShard(path, entry, total)
	}
	return loadShard(path, entry, total)
}

// loadShard reads one per-shard container and cross-checks it against
// its manifest entry.
func loadShard(path string, entry snapshot.ShardEntry, total int) (*subIndex, error) {
	var sub *subIndex
	err := snapshot.ReadFile(path, shardKind, func(r *snapshot.Reader) error {
		var err error
		sub, err = decodeSubIndex(r, entry, total)
		return err
	})
	if err != nil {
		return nil, err
	}
	return sub, nil
}

// decodeSubIndex decodes one cpshard container body and cross-checks it
// against its manifest-level identity: id bounds, id/set count agreement,
// and the build seed. Shared by disk loads and shard shipping, so a peer
// accepting an upload enforces exactly the guards a restart would.
func decodeSubIndex(r *snapshot.Reader, entry snapshot.ShardEntry, total int) (*subIndex, error) {
	ix, err := cpindex.DecodeSections(r)
	if err != nil {
		return nil, err
	}
	raw, err := r.Section("ids")
	if err != nil {
		return nil, err
	}
	c := snapshot.NewCursor("ids", raw)
	n := c.Count(total)
	ids := make([]int, n)
	for i := range ids {
		id := c.Uvarint()
		if id >= uint64(total) {
			c.Fail("global id %d out of [0,%d)", id, total)
			break
		}
		ids[i] = int(id)
	}
	if err := c.Done(); err != nil {
		return nil, err
	}
	if len(ids) != ix.Len() {
		return nil, fmt.Errorf("%w: shard has %d ids for %d sets",
			snapshot.ErrCorrupt, len(ids), ix.Len())
	}
	if ix.Len() != entry.Sets {
		return nil, fmt.Errorf("%w: shard holds %d sets, manifest says %d",
			snapshot.ErrCorrupt, ix.Len(), entry.Sets)
	}
	if got := ix.Options().Seed; got != entry.Seed {
		return nil, fmt.Errorf("%w: shard built with seed %d, manifest says %d (files shuffled?)",
			snapshot.ErrCorrupt, got, entry.Seed)
	}
	sub := &subIndex{ix: ix, ids: ids}
	// Version-2 containers always carry the containment section (sections
	// are sequential, so its presence is a format property, not a choice).
	// Version-1 containers predate containment; the side stays nil and the
	// owning coordinator rebuilds it lazily on first use.
	if r.Version() >= 2 {
		ci, err := decodeContainSection(r, ix)
		if err != nil {
			return nil, err
		}
		sub.contain.Store(ci)
	}
	return sub, nil
}
