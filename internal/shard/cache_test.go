package shard

import (
	"testing"

	"repro/internal/cpindex"
)

// TestCacheIdenticalAnswers pins the cache's core contract: with the
// cache enabled, every entry point answers byte-identically to the
// uncached index — on cold misses, warm hits, and after mutations that
// invalidate by version bump.
func TestCacheIdenticalAnswers(t *testing.T) {
	sets, _ := workload(900, 0.8, 301)
	plain := Build(sets, 0.5, &Options{Shards: 3, Seed: 9, MergeThreshold: 64})
	cached := Build(sets, 0.5, &Options{Shards: 3, Seed: 9, MergeThreshold: 64, CacheSize: 128})

	check := func(stage string) {
		t.Helper()
		qs := sets[:60]
		for pass := 0; pass < 2; pass++ { // cold then warm
			for i, q := range qs {
				wid, wsim, wok := mustQuery(t, plain, q)
				gid, gsim, gok := mustQuery(t, cached, q)
				if wid != gid || wsim != gsim || wok != gok {
					t.Fatalf("%s pass %d Query(%d): cached (%d,%v,%v) != plain (%d,%v,%v)",
						stage, pass, i, gid, gsim, gok, wid, wsim, wok)
				}
				if !equalMatches(t, mustQueryAll(t, cached, q), mustQueryAll(t, plain, q)) {
					t.Fatalf("%s pass %d QueryAll(%d) differs", stage, pass, i)
				}
			}
			wb := mustQueryBatch(t, plain, qs)
			gb := mustQueryBatch(t, cached, qs)
			for i := range wb {
				if !equalMatches(t, gb[i], wb[i]) {
					t.Fatalf("%s pass %d QueryBatch[%d] differs", stage, pass, i)
				}
			}
		}
	}

	check("initial")

	// Mutations must invalidate: the warm cache may not serve pre-Add or
	// pre-Delete answers.
	extra := [][]uint32{sets[0], sets[1]}
	plain.Add(extra)
	cached.Add(extra)
	check("after add")

	plain.DeleteBatch([]int{0, 5, 17})
	cached.DeleteBatch([]int{0, 5, 17})
	check("after delete")

	plain.Flush()
	cached.Flush()
	check("after flush")

	plain.Compact()
	cached.Compact()
	check("after compact")

	st := cached.Stats()
	if !st.CacheEnabled {
		t.Fatal("CacheEnabled false on a cached index")
	}
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("expected both hits and misses, got hits=%d misses=%d", st.CacheHits, st.CacheMisses)
	}
	if plainStats := plain.Stats(); plainStats.CacheEnabled {
		t.Fatal("CacheEnabled true on an uncached index")
	}
}

// TestCacheHitMissCounters exercises hit/miss accounting and version
// invalidation on the raw cache path.
func TestCacheHitMissCounters(t *testing.T) {
	sets, _ := workload(300, 0.8, 311)
	x := Build(sets, 0.5, &Options{Shards: 2, Seed: 11, CacheSize: 32})
	q := sets[3]

	mustQuery(t, x, q) // miss
	mustQuery(t, x, q) // hit
	mustQuery(t, x, q) // hit
	if _, hits, misses := x.cache.Load().stats(); hits != 2 || misses != 1 {
		t.Fatalf("after 3 queries: hits=%d misses=%d, want 2/1", hits, misses)
	}

	// Any mutation bumps the version: the same query misses once, then
	// hits again under the new version.
	x.Delete(7)
	mustQuery(t, x, q)
	mustQuery(t, x, q)
	if _, hits, misses := x.cache.Load().stats(); hits != 3 || misses != 2 {
		t.Fatalf("after delete: hits=%d misses=%d, want 3/2", hits, misses)
	}
}

// TestCacheLRUEviction fills a tiny cache past capacity and checks the
// oldest entry is the one evicted.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	q1, q2, q3 := []uint32{1}, []uint32{2}, []uint32{3}
	c.putBest(1, q1, 10, 0.9, true)
	c.putBest(1, q2, 20, 0.8, true)
	if entries, _, _ := c.stats(); entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
	// Touch q1 so q2 becomes the LRU victim.
	if _, _, _, hit := c.getBest(1, q1); !hit {
		t.Fatal("q1 should hit")
	}
	c.putBest(1, q3, 30, 0.7, true)
	if entries, _, _ := c.stats(); entries != 2 {
		t.Fatalf("entries = %d after eviction, want 2", entries)
	}
	if _, _, _, hit := c.getBest(1, q2); hit {
		t.Fatal("q2 should have been evicted")
	}
	if _, _, _, hit := c.getBest(1, q1); !hit {
		t.Fatal("q1 should still be cached")
	}
	if id, sim, ok, hit := c.getBest(1, q3); !hit || id != 30 || sim != 0.7 || !ok {
		t.Fatalf("q3 = (%d,%v,%v,%v), want (30,0.7,true,true)", id, sim, ok, hit)
	}
	// Same query, different kind: distinct entries.
	c.putAll(1, q3, []cpindex.Match{{ID: 30, Sim: 0.7}})
	if ms, hit := c.getAll(1, q3); !hit || len(ms) != 1 || ms[0].ID != 30 {
		t.Fatalf("getAll(q3) = %v, %v", ms, hit)
	}
	if _, _, _, hit := c.getBest(1, q3); !hit {
		t.Fatal("best entry clobbered by all entry")
	}
}

// TestEnableCacheAfterBuild covers the post-Load path cmd/serve uses.
func TestEnableCacheAfterBuild(t *testing.T) {
	sets, _ := workload(200, 0.8, 321)
	x := Build(sets, 0.5, &Options{Shards: 2, Seed: 13})
	if x.Stats().CacheEnabled {
		t.Fatal("cache on without CacheSize")
	}
	before := mustQueryAll(t, x, sets[0])
	x.EnableCache(16)
	if !x.Stats().CacheEnabled {
		t.Fatal("cache off after EnableCache")
	}
	if !equalMatches(t, mustQueryAll(t, x, sets[0]), before) {
		t.Fatal("answers changed when cache enabled")
	}
	x.EnableCache(0)
	if x.Stats().CacheEnabled {
		t.Fatal("cache on after EnableCache(0)")
	}
}

// TestQueryZeroAllocsAllLocal pins the serving-path allocation contract:
// on an all-local ring with no tombstones and the cache off, Query
// allocates nothing at steady state.
func TestQueryZeroAllocsAllLocal(t *testing.T) {
	sets, _ := workload(1500, 0.8, 331)
	x := Build(sets, 0.5, &Options{Shards: 3, Seed: 15})
	for i := 0; i < 30; i++ { // warm scratch pools
		mustQuery(t, x, sets[i])
	}
	qi := 0
	if n := testing.AllocsPerRun(100, func() {
		mustQuery(t, x, sets[qi%700])
		qi++
	}); n != 0 {
		t.Errorf("shard Query allocates %v/op, want 0", n)
	}
}
