package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cpindex"
	"repro/internal/intset"
	"repro/internal/snapshot"
)

// containThresholds is the threshold grid the containment tests probe.
var containThresholds = []float64{0.5, 0.7, 1.0}

// containProbes derives containment probes from the indexed sets: every
// stride-th set thinned to a deterministic ~2/3 subset, so each probe is
// fully contained by at least its source set. A subset of a sorted set
// stays sorted.
func containProbes(sets [][]uint32, count int) [][]uint32 {
	if count > len(sets) {
		count = len(sets)
	}
	probes := make([][]uint32, 0, count)
	for i := 0; i < count; i++ {
		src := sets[i*len(sets)/count]
		var q []uint32
		for j, tok := range src {
			if j%3 != 0 {
				q = append(q, tok)
			}
		}
		if len(q) == 0 {
			q = src[:1]
		}
		probes = append(probes, q)
	}
	return probes
}

// bruteContain is the reference answer: every live id whose set contains
// at least t of q, with the exact containment score, ascending id.
func bruteContain(sets [][]uint32, dead map[int]bool, q []uint32, t float64) []cpindex.Match {
	var out []cpindex.Match
	for id, s := range sets {
		if dead[id] || s == nil {
			continue
		}
		if sim, ok := intset.ContainmentAtLeast(q, s, t); ok {
			out = append(out, cpindex.Match{ID: id, Sim: sim})
		}
	}
	return out
}

// TestQueryContainAgainstBruteForce pins the containment contract on a
// churned index (sealed primaries, buffered appends, tombstones), for
// both partition schemes and several shard counts:
//   - precision is exactly 1.0: every returned match is in the brute-force
//     truth with the exact containment score, in strictly ascending id
//     order, and never a deleted id;
//   - buffered appends have recall 1.0 (they are scanned exactly);
//   - aggregate recall over the probe grid clears the CI floor by a wide
//     margin (the candidate structure is approximate, so per-probe recall
//     is not 1.0 — but it must not be quietly broken either).
func TestQueryContainAgainstBruteForce(t *testing.T) {
	sets, _ := workload(600, 0.8, 401)
	extra, _ := workload(40, 0.8, 403)
	probes := containProbes(sets, 120)
	probes = append(probes, containProbes(extra, 20)...)

	for _, part := range []Partition{PartitionContiguous, PartitionHash} {
		for _, shards := range []int{1, 4} {
			x := Build(sets, 0.5, &Options{
				Shards: shards, Partition: part, Seed: 17, MergeThreshold: 500, Workers: 2,
			})
			bufferedIDs := x.Add(extra) // stays buffered: threshold not reached
			if st := x.Stats(); st.Buffered != len(extra) {
				t.Fatalf("%v/%d: setup buffered %d, want %d", part, shards, st.Buffered, len(extra))
			}
			all := append(append([][]uint32{}, sets...), extra...)
			dead := map[int]bool{3: true, 77: true, bufferedIDs[5]: true}
			for id := range dead {
				if !x.Delete(id) {
					t.Fatalf("%v/%d: Delete(%d) found nothing", part, shards, id)
				}
			}
			buffered := map[int]bool{}
			for _, id := range bufferedIDs {
				buffered[id] = true
			}

			var truthPairs, hits int
			for pi, q := range probes {
				for _, th := range containThresholds {
					truth := bruteContain(all, dead, q, th)
					inTruth := make(map[int]float64, len(truth))
					for _, m := range truth {
						inTruth[m.ID] = m.Sim
					}
					got, err := x.QueryContain(q, th)
					if err != nil {
						t.Fatalf("%v/%d: probe %d t=%v: %v", part, shards, pi, th, err)
					}
					for i, m := range got {
						if i > 0 && got[i-1].ID >= m.ID {
							t.Fatalf("%v/%d: probe %d t=%v: ids not strictly ascending: %v",
								part, shards, pi, th, got)
						}
						if dead[m.ID] {
							t.Fatalf("%v/%d: probe %d t=%v: deleted id %d returned",
								part, shards, pi, th, m.ID)
						}
						want, ok := inTruth[m.ID]
						if !ok || want != m.Sim {
							t.Fatalf("%v/%d: probe %d t=%v: match %+v not in truth (want sim %v, in truth %v)",
								part, shards, pi, th, m, want, ok)
						}
					}
					returned := make(map[int]bool, len(got))
					for _, m := range got {
						returned[m.ID] = true
					}
					for _, m := range truth {
						truthPairs++
						if returned[m.ID] {
							hits++
						} else if buffered[m.ID] {
							t.Fatalf("%v/%d: probe %d t=%v: buffered id %d missed (buffer scans are exact)",
								part, shards, pi, th, m.ID)
						}
					}
				}
			}
			if truthPairs == 0 {
				t.Fatalf("%v/%d: degenerate workload: empty truth", part, shards)
			}
			if recall := float64(hits) / float64(truthPairs); recall < 0.9 {
				t.Fatalf("%v/%d: aggregate recall %.3f (%d/%d) below 0.9",
					part, shards, recall, hits, truthPairs)
			}
		}
	}
}

// TestQueryContainIdenticalAcrossTopologies pins the determinism leg of
// the contract: with one index seed, containment answers are
// byte-identical for every shard count, partition scheme and worker
// count — the signer is seeded globally (ContainSeed), not per shard, so
// candidacy is a property of (q, y, seed) alone.
func TestQueryContainIdenticalAcrossTopologies(t *testing.T) {
	sets, _ := workload(500, 0.8, 411)
	extra, _ := workload(30, 0.8, 413)
	probes := containProbes(sets, 60)

	type config struct {
		shards  int
		part    Partition
		workers int
	}
	configs := []config{
		{1, PartitionContiguous, 0},
		{4, PartitionContiguous, 4},
		{4, PartitionHash, 0},
		{4, PartitionHash, 4},
	}
	var ref [][]cpindex.Match
	for ci, c := range configs {
		x := Build(sets, 0.5, &Options{
			Shards: c.shards, Partition: c.part, Seed: 23, MergeThreshold: 500, Workers: c.workers,
		})
		x.Add(extra)
		x.Delete(11)
		x.Delete(len(sets) + 7)
		var answers []cpindex.Match
		for _, q := range probes {
			for _, th := range containThresholds {
				ms, err := x.QueryContain(q, th)
				if err != nil {
					t.Fatalf("config %d: %v", ci, err)
				}
				answers = append(answers, ms...)
				answers = append(answers, cpindex.Match{ID: -1}) // probe separator
			}
		}
		if ci == 0 {
			ref = append(ref, answers)
			continue
		}
		if !equalMatches(t, answers, ref[0]) {
			t.Fatalf("config %+v: containment answers differ from single-shard reference", c)
		}
	}
}

// TestQueryContainValidation covers the error surface: thresholds outside
// (0,1] are rejected, empty queries and empty indexes answer empty.
func TestQueryContainValidation(t *testing.T) {
	sets, _ := workload(80, 0.8, 421)
	x := Build(sets, 0.5, &Options{Shards: 2, Seed: 5})
	for _, bad := range []float64{0, -0.5, 1.0001, 2} {
		if _, err := x.QueryContain(sets[0], bad); err == nil ||
			!strings.Contains(err.Error(), "containment threshold") {
			t.Fatalf("threshold %v: error %v, want containment-threshold rejection", bad, err)
		}
	}
	if ms, err := x.QueryContain(nil, 0.5); err != nil || ms != nil {
		t.Fatalf("empty query: (%v, %v), want (nil, nil)", ms, err)
	}
	empty := Build(nil, 0.5, &Options{})
	if ms, err := empty.QueryContain(sets[0], 0.5); err != nil || len(ms) != 0 {
		t.Fatalf("empty index: (%v, %v), want no matches", ms, err)
	}
	// t=1 is valid: exact full containment.
	if _, err := x.QueryContain(sets[0][:5], 1); err != nil {
		t.Fatalf("t=1: %v", err)
	}
}

// TestQueryContainSaveLoadRoundTrip: a version-2 snapshot persists the
// containment signatures, so a loaded index answers byte-identically
// without rebuilding — including for an index that never served a
// containment query before Save (encoding forces the signing).
func TestQueryContainSaveLoadRoundTrip(t *testing.T) {
	sets, _ := workload(400, 0.8, 431)
	extra, _ := workload(25, 0.8, 433)
	probes := containProbes(sets, 50)
	build := func() *Index {
		x := Build(sets, 0.5, &Options{Shards: 3, Seed: 29, MergeThreshold: 500, Workers: 2})
		x.Add(extra)
		x.Delete(9)
		return x
	}

	// never-queried twin: Save must sign, and the loaded answers must equal
	// a fresh index's.
	x := build()
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	y, err := Load(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range y.shards {
		if sh.(*subIndex).contain.Load() == nil {
			t.Fatal("loaded v2 shard has no decoded containment side")
		}
	}
	for pi, q := range probes {
		for _, th := range containThresholds {
			want, err1 := x.QueryContain(q, th)
			got, err2 := y.QueryContain(q, th)
			if err1 != nil || err2 != nil {
				t.Fatalf("probe %d t=%v: errs %v / %v", pi, th, err1, err2)
			}
			if !equalMatches(t, got, want) {
				t.Fatalf("probe %d t=%v: answers differ across save/load", pi, th)
			}
		}
	}
}

// stripContainSection rewrites one cpshard container file as a version-1
// legacy container: walk the section frames (8-byte name, u64 length,
// u32 crc — preceded by alignment padding in version-3 files), drop the
// "contain" section, and re-emit the remaining frames unpadded under a
// version-1 header — byte surgery standing in for a file written by a
// pre-containment build.
func stripContainSection(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const headerLen = 8 + 4 + 8 // magic + version + kind
	version := binary.LittleEndian.Uint32(raw[8:12])
	out := append([]byte(nil), raw[:headerLen]...)
	binary.LittleEndian.PutUint32(out[8:12], 1)
	off := headerLen
	stripped := false
	for off < len(raw) {
		if version >= 3 {
			// Version-3 containers zero-pad before each section header so
			// payloads are 8-aligned; legacy frames are back-to-back.
			off += (8 - (off+20)%8) % 8
		}
		if off+20 > len(raw) {
			t.Fatalf("%s: truncated section header at %d", path, off)
		}
		name := raw[off : off+8]
		length := binary.LittleEndian.Uint64(raw[off+8 : off+16])
		if off+20+int(length) > len(raw) {
			t.Fatalf("%s: truncated section payload at %d", path, off)
		}
		if strings.TrimRight(string(name), "\x00") == "contain" {
			stripped = true
		} else {
			out = append(out, raw[off:off+20+int(length)]...)
		}
		off += 20 + int(length)
	}
	if !stripped {
		t.Fatalf("%s: no contain section found", path)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadLegacyV1RebuildsContainment: a version-1 snapshot (no contain
// sections, pre-containment manifest) still loads, and containment
// queries work by rebuilding the candidate structure lazily — with
// byte-identical answers, because the signer's seed is derived from the
// index seed, not stored state.
func TestLoadLegacyV1RebuildsContainment(t *testing.T) {
	sets, _ := workload(300, 0.8, 441)
	probes := containProbes(sets, 40)
	x := Build(sets, 0.5, &Options{Shards: 2, Seed: 37, Workers: 2})
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}

	// Surgery: strip every shard's contain section and downgrade both the
	// container headers and the manifest to format version 1.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	surgeries := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".cps") {
			stripContainSection(t, filepath.Join(dir, e.Name()))
			surgeries++
		}
	}
	if surgeries == 0 {
		t.Fatal("no shard files found")
	}
	mpath := filepath.Join(dir, snapshot.ManifestFile)
	mraw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	patched := strings.Replace(string(mraw),
		fmt.Sprintf(`"format_version": %d`, snapshot.Version), `"format_version": 1`, 1)
	if patched == string(mraw) {
		t.Fatalf("manifest carries no format_version %d marker:\n%s", snapshot.Version, mraw)
	}
	if err := os.WriteFile(mpath, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}

	y, err := Load(dir, 2)
	if err != nil {
		t.Fatalf("loading legacy v1 snapshot: %v", err)
	}
	for _, sh := range y.shards {
		if sh.(*subIndex).contain.Load() != nil {
			t.Fatal("v1 shard decoded a containment side it cannot contain")
		}
	}
	for pi, q := range probes {
		for _, th := range containThresholds {
			want, err1 := x.QueryContain(q, th)
			got, err2 := y.QueryContain(q, th)
			if err1 != nil || err2 != nil {
				t.Fatalf("probe %d t=%v: errs %v / %v", pi, th, err1, err2)
			}
			if !equalMatches(t, got, want) {
				t.Fatalf("probe %d t=%v: lazily rebuilt answers differ from original", pi, th)
			}
		}
	}
	// The lazy build happened exactly where expected.
	for _, sh := range y.shards {
		if sh.(*subIndex).contain.Load() == nil {
			t.Fatal("containment side not built after first containment query")
		}
	}
}

// TestQueryContainCache: containment answers are cached under their own
// key kind (keyed by threshold too), stay correct across thresholds, and
// invalidate on mutation like every cached answer.
func TestQueryContainCache(t *testing.T) {
	sets, _ := workload(300, 0.8, 451)
	probes := containProbes(sets, 30)
	cached := Build(sets, 0.5, &Options{Shards: 2, Seed: 41, Workers: 2})
	plain := Build(sets, 0.5, &Options{Shards: 2, Seed: 41, Workers: 2})
	if err := cached.Configure(RuntimeOptions{CacheSize: 16}); err != nil {
		t.Fatal(err)
	}

	check := func(stage string) {
		t.Helper()
		for pi, q := range probes {
			for _, th := range containThresholds {
				want, _ := plain.QueryContain(q, th)
				for rep := 0; rep < 2; rep++ { // second rep is the cache hit
					got, err := cached.QueryContain(q, th)
					if err != nil {
						t.Fatalf("%s: probe %d t=%v rep %d: %v", stage, pi, th, rep, err)
					}
					if !equalMatches(t, got, want) {
						t.Fatalf("%s: probe %d t=%v rep %d: cached answers diverge", stage, pi, th, rep)
					}
				}
			}
		}
	}
	check("cold")
	// Mutation bumps the version: stale entries must never resurface.
	for _, id := range []int{2, 55, 121} {
		cached.Delete(id)
		plain.Delete(id)
	}
	check("after delete")
}

// TestQueryContainBuiltRequiresShippedSide: the hosted-shard entry point
// refuses to lazily build — a peer signing with guessed options would
// break the global determinism contract — so a shard without a shipped
// containment side answers with an error.
func TestQueryContainBuiltRequiresShippedSide(t *testing.T) {
	sets, _ := workload(50, 0.8, 461)
	x := Build(sets, 0.5, &Options{Shards: 1, Seed: 3})
	sub := x.shards[0].(*subIndex)
	if sub.contain.Load() != nil {
		t.Fatal("containment side built eagerly; the lazy contract changed")
	}
	if _, err := sub.queryContainBuilt(sets[0], 0.5); err == nil {
		t.Fatal("queryContainBuilt answered without a shipped containment side")
	}
	// After any containment query the side exists and the built path works.
	if _, err := x.QueryContain(sets[0], 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.queryContainBuilt(sets[0], 0.5); err != nil {
		t.Fatalf("queryContainBuilt after build: %v", err)
	}
}

// TestDistributeContainmentEquivalence: a distributed topology answers
// containment queries byte-identically to the all-local twin — shipped
// containers carry the signatures, so peers answer without knowing the
// coordinator's configuration — and failover to a second replica keeps
// the answers intact.
func TestDistributeContainmentEquivalence(t *testing.T) {
	peer1, _ := newPeer(t)
	peer2, _ := newPeer(t)
	local, dist, _ := distributedPair(t, []string{peer1.URL, peer2.URL},
		&DistributeOptions{Replicas: 2, KeepLocal: false})
	probes := containProbes(localSets(t, local), 40)
	probes = append(probes, nil)

	assertContainIdentical := func(stage string) {
		t.Helper()
		for pi, q := range probes {
			for _, th := range containThresholds {
				want, err1 := local.QueryContain(q, th)
				got, err2 := dist.QueryContain(q, th)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s: probe %d t=%v: errs %v / %v", stage, pi, th, err1, err2)
				}
				if !equalMatches(t, got, want) {
					t.Fatalf("%s: probe %d t=%v: distributed containment diverges", stage, pi, th)
				}
			}
		}
	}
	assertContainIdentical("both replicas up")
	peer1.Close() // failover: every query falls to the second replica
	assertContainIdentical("first replica down")
}

// localSets reconstructs the live set collection of an all-local index
// from its shards and side buffer, indexed by global id (nil = absent),
// so tests can derive probes without carrying the build inputs around.
func localSets(t *testing.T, x *Index) [][]uint32 {
	t.Helper()
	x.mu.RLock()
	defer x.mu.RUnlock()
	out := make([][]uint32, x.total)
	for _, sh := range x.shards {
		sub, ok := sh.(*subIndex)
		if !ok {
			t.Fatal("localSets wants an all-local index")
		}
		for local, id := range sub.ids {
			out[id] = sub.ix.Sets()[local]
		}
	}
	for i, id := range x.side.ids {
		out[id] = x.side.sets[i]
	}
	kept := out[:0]
	for _, s := range out {
		if s != nil {
			kept = append(kept, s)
		}
	}
	return kept
}

// TestConfigureValidationAndPersistence: Configure rejects invalid
// options, reports the applied state via Runtime, survives a Save/Load
// cycle, and a manifest smuggling invalid runtime state is rejected as
// corrupt.
func TestConfigureValidationAndPersistence(t *testing.T) {
	sets, _ := workload(200, 0.8, 471)
	x := Build(sets, 0.5, &Options{Shards: 2, Seed: 13, Workers: 2})

	if err := x.Configure(RuntimeOptions{CacheSize: -1}); err == nil {
		t.Fatal("negative cache size accepted")
	}
	want := RuntimeOptions{AutoCompact: true, PointerLayout: true, CacheSize: 32}
	if err := x.Configure(want); err != nil {
		t.Fatal(err)
	}
	if got := x.Runtime(); got != want {
		t.Fatalf("Runtime() = %+v, want %+v", got, want)
	}

	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	y, err := Load(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := y.Runtime(); got != want {
		t.Fatalf("Runtime() after reload = %+v, want %+v", got, want)
	}
	// The restored configuration changes no answer.
	probes := containProbes(sets, 20)
	for pi, q := range probes {
		id1, s1, ok1 := mustQuery(t, x, q)
		id2, s2, ok2 := mustQuery(t, y, q)
		if id1 != id2 || s1 != s2 || ok1 != ok2 {
			t.Fatalf("probe %d: similarity answer changed across configured reload", pi)
		}
	}

	// Back to defaults: a zero runtime is not persisted, and a reload
	// starts on the defaults again.
	if err := y.Configure(RuntimeOptions{}); err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := y.Save(dir2); err != nil {
		t.Fatal(err)
	}
	z, err := Load(dir2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := z.Runtime(); got != (RuntimeOptions{}) {
		t.Fatalf("Runtime() after default reload = %+v, want zero", got)
	}

	// A manifest with invalid runtime state must fail Load as corrupt, not
	// half-apply it.
	mpath := filepath.Join(dir, snapshot.ManifestFile)
	mraw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	patched := strings.Replace(string(mraw), `"cache_size": 32`, `"cache_size": -5`, 1)
	if patched == string(mraw) {
		t.Fatalf("manifest carries no cache_size marker:\n%s", mraw)
	}
	if err := os.WriteFile(mpath, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, 2); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("Load with invalid runtime state: %v, want ErrCorrupt", err)
	}
}
