package shard

import (
	"container/list"
	"math"
	"sync"

	"repro/internal/cpindex"
	"repro/internal/intset"
	"repro/internal/tabhash"
)

// Result kinds a cache entry can hold; part of the key, so a Query, a
// QueryAll and a QueryContain for the same set never collide.
const (
	cacheKindBest uint8 = iota
	cacheKindAll
	cacheKindContain
)

// resultCache is the hot-query result cache: a size-bounded LRU keyed on
// (index version, result kind, query). The version is bumped by every
// result-affecting mutation — appends, deletes, seals, compaction swaps,
// distributions — so invalidation is free: entries computed at an older
// version simply stop being found and age out of the LRU. The map key is
// a 64-bit hash; the entry stores the exact (version, kind, query) it was
// computed for and a lookup verifies them, so a hash collision degrades
// to a miss, never to a wrong answer.
//
// Cached QueryAll slices are returned without copying and must be treated
// as read-only by callers (the public ssjoin wrappers copy; the HTTP
// server only marshals).
type resultCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[uint64]*list.Element
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key     uint64
	version uint64
	kind    uint8
	q       []uint32 // private copy of the query
	// threshold is the containment threshold of a cacheKindContain entry
	// (part of the key: the same query at two thresholds has two answers);
	// zero for the similarity kinds, whose threshold is the index lambda.
	threshold float64
	// cacheKindBest payload.
	id  int
	sim float64
	ok  bool
	// cacheKindAll / cacheKindContain payload.
	all []cpindex.Match
}

func newResultCache(maxEntries int) *resultCache {
	return &resultCache{
		max:     maxEntries,
		ll:      list.New(),
		entries: make(map[uint64]*list.Element),
	}
}

// cacheKey hashes (version, kind, query) with chained avalanche mixing.
// Collisions only cost a miss (lookup verifies the stored tuple).
func cacheKey(version uint64, kind uint8, q []uint32) uint64 {
	h := tabhash.Mix64(version ^ uint64(kind)<<56 ^ 0x9e3779b97f4a7c15)
	for _, w := range q {
		h = tabhash.Mix64(h ^ uint64(w))
	}
	return h ^ uint64(len(q))
}

// cacheKeyContain is cacheKey with the containment threshold mixed in,
// so the same query at two thresholds lands on two slots instead of
// evicting each other.
func cacheKeyContain(version uint64, q []uint32, t float64) uint64 {
	h := tabhash.Mix64(version ^ uint64(cacheKindContain)<<56 ^ 0x9e3779b97f4a7c15)
	h = tabhash.Mix64(h ^ math.Float64bits(t))
	for _, w := range q {
		h = tabhash.Mix64(h ^ uint64(w))
	}
	return h ^ uint64(len(q))
}

// keyFor computes an entry's map key from its stored tuple.
func (e *cacheEntry) keyFor() uint64 {
	if e.kind == cacheKindContain {
		return cacheKeyContain(e.version, e.q, e.threshold)
	}
	return cacheKey(e.version, e.kind, e.q)
}

// lookupKey finds a verified entry under a precomputed key and marks it
// most recently used. Caller holds mu.
func (c *resultCache) lookupKey(key, version uint64, kind uint8, q []uint32, t float64) (*cacheEntry, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.version != version || e.kind != kind || e.threshold != t || !intset.Equal(e.q, q) {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e, true
}

// lookup finds a verified similarity-kind entry (threshold 0 by
// construction) and marks it most recently used. Caller holds mu.
func (c *resultCache) lookup(version uint64, kind uint8, q []uint32) (*cacheEntry, bool) {
	return c.lookupKey(cacheKey(version, kind, q), version, kind, q, 0)
}

// put inserts or replaces the entry for its key and evicts from the LRU
// tail past capacity.
func (c *resultCache) put(e *cacheEntry) {
	e.key = e.keyFor()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) getBest(version uint64, q []uint32) (id int, sim float64, ok bool, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.lookup(version, cacheKindBest, q)
	if !found {
		c.misses++
		return 0, 0, false, false
	}
	c.hits++
	return e.id, e.sim, e.ok, true
}

func (c *resultCache) putBest(version uint64, q []uint32, id int, sim float64, ok bool) {
	c.put(&cacheEntry{
		version: version,
		kind:    cacheKindBest,
		q:       append([]uint32(nil), q...),
		id:      id,
		sim:     sim,
		ok:      ok,
	})
}

func (c *resultCache) getAll(version uint64, q []uint32) ([]cpindex.Match, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.lookup(version, cacheKindAll, q)
	if !found {
		c.misses++
		return nil, false
	}
	c.hits++
	return e.all, true
}

func (c *resultCache) putAll(version uint64, q []uint32, ms []cpindex.Match) {
	c.put(&cacheEntry{
		version: version,
		kind:    cacheKindAll,
		q:       append([]uint32(nil), q...),
		all:     ms,
	})
}

func (c *resultCache) getContain(version uint64, q []uint32, t float64) ([]cpindex.Match, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.lookupKey(cacheKeyContain(version, q, t), version, cacheKindContain, q, t)
	if !found {
		c.misses++
		return nil, false
	}
	c.hits++
	return e.all, true
}

func (c *resultCache) putContain(version uint64, q []uint32, t float64, ms []cpindex.Match) {
	c.put(&cacheEntry{
		version:   version,
		kind:      cacheKindContain,
		q:         append([]uint32(nil), q...),
		threshold: t,
		all:       ms,
	})
}

func (c *resultCache) stats() (entries int, hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.hits, c.misses
}
