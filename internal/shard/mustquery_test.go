package shard

import (
	"testing"

	"repro/internal/cpindex"
)

// Test-side query helpers: every test query routes through the primary
// error-returning API, with a topology error failing the test. They keep
// the compact three-value call shape the tests are written against now
// that the panicking wrappers are deprecated.

func mustQuery(t testing.TB, x *Index, q []uint32) (int, float64, bool) {
	t.Helper()
	id, sim, ok, err := x.QueryErr(q)
	if err != nil {
		t.Fatalf("QueryErr: %v", err)
	}
	return id, sim, ok
}

func mustQueryAll(t testing.TB, x *Index, q []uint32) []cpindex.Match {
	t.Helper()
	ms, err := x.QueryAllErr(q)
	if err != nil {
		t.Fatalf("QueryAllErr: %v", err)
	}
	return ms
}

func mustQueryBatch(t testing.TB, x *Index, qs [][]uint32) [][]cpindex.Match {
	t.Helper()
	out, err := x.QueryBatchErr(qs)
	if err != nil {
		t.Fatalf("QueryBatchErr: %v", err)
	}
	return out
}
