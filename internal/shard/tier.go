package shard

import (
	"fmt"
	"os"

	"repro/internal/snapshot"
)

// Storage tiering: every ring shard is either hot — the fully decoded
// subIndex every query path always used — or cold: the same container
// bytes memory-mapped with lazy decode (coldShard). The two answer every
// query byte-identically (the model harness runs its whole grid across
// tiers); they trade memory for latency. Tier selection happens at load
// time (LoadOptions.Tiering, the manifest's saved runtime state, or the
// auto size policy) and at runtime: Configure moves the whole ring,
// Promote/Demote move one shard, and under TierAuto the placement
// controller retiers on query frequency — shards whose hit gauge stays at
// zero across consecutive passes demote, cold shards that keep absorbing
// hits promote. Transitions swap ring pointers under the compaction
// invariant (compactMu) with a generation bump and no version bump:
// moving where a shard's bytes live never changes what it answers.

// Tier names a shard storage tier policy.
type Tier string

const (
	// TierHot fully decodes every shard — today's default path.
	TierHot Tier = "hot"
	// TierCold memory-maps every shard with lazy decode.
	TierCold Tier = "cold"
	// TierAuto picks per shard: shards at or above the auto threshold load
	// cold, and the placement controller retiers on query frequency.
	TierAuto Tier = "auto"
)

// ParseTier validates a tier name from a flag or manifest. The empty
// string is TierHot: tiering predates nothing — unset always meant hot.
func ParseTier(s string) (Tier, error) {
	switch Tier(s) {
	case "", TierHot:
		return TierHot, nil
	case TierCold:
		return TierCold, nil
	case TierAuto:
		return TierAuto, nil
	}
	return "", fmt.Errorf("shard: unknown storage tier %q (want hot, cold or auto)", s)
}

// DefaultAutoColdBytes is TierAuto's load-time size threshold: shard
// files at least this large open cold, smaller ones decode hot. Small
// shards dominate query fan-out cost but not memory, so they stay hot.
const DefaultAutoColdBytes = 1 << 20

// Auto-retier policy: a cold shard that served at least tierPromoteHits
// queries since the previous pass promotes; a hot shard whose hit gauge
// read zero for tierDemoteIdlePasses consecutive passes demotes.
const (
	tierPromoteHits      = 2
	tierDemoteIdlePasses = 2
)

// applyTiering moves the whole ring to the named tier: hot promotes every
// cold shard, cold demotes every hot one, auto leaves placement to the
// retier passes. Idempotent — shards already in the target tier are
// untouched — so re-applying a loaded configuration is free.
func (x *Index) applyTiering(t Tier) error {
	switch t {
	case TierCold:
		_, err := x.DemoteAll()
		return err
	case TierAuto:
		return nil
	default:
		_, err := x.PromoteAll()
		return err
	}
}

// setTiering records the configured tier (under mu, like the other
// runtime fields).
func (x *Index) setTiering(t Tier) {
	x.mu.Lock()
	x.runtime.Tiering = t
	x.mu.Unlock()
}

// PromoteAll decodes every cold ring shard to hot and returns how many
// moved. Safe on a serving index: the rebuilds run off-lock and the swap
// is atomic under a generation bump.
func (x *Index) PromoteAll() (int, error) {
	return x.retierRing(func(sh shardBackend) (shardBackend, error) {
		if cold, ok := sh.(*coldShard); ok {
			return x.hotFromCold(cold)
		}
		return nil, nil
	})
}

// DemoteAll re-encodes every hot ring shard into a mapped cold shard and
// returns how many moved. Like PromoteAll, serving-safe.
func (x *Index) DemoteAll() (int, error) {
	return x.retierRing(func(sh shardBackend) (shardBackend, error) {
		if sub, ok := sh.(*subIndex); ok {
			return x.coldFromSub(sub)
		}
		return nil, nil
	})
}

// retierRing applies move to a snapshot of the ring (nil result = leave
// the shard alone) and swaps the replacements in atomically. It holds
// compactMu across the pass — ring replacement's serialization point —
// so victim pointer identity stays valid against concurrent compactions
// and distributions.
func (x *Index) retierRing(move func(shardBackend) (shardBackend, error)) (int, error) {
	x.compactMu.Lock()
	defer x.compactMu.Unlock()
	x.mu.RLock()
	shards := append([]shardBackend(nil), x.shards...)
	x.mu.RUnlock()

	swap := make(map[shardBackend]shardBackend)
	for _, sh := range shards {
		next, err := move(sh)
		if err != nil {
			return 0, err
		}
		if next != nil {
			swap[sh] = next
		}
	}
	if len(swap) == 0 {
		return 0, nil
	}
	x.mu.Lock()
	ring := make([]shardBackend, len(x.shards))
	for i, sh := range x.shards {
		if next, ok := swap[sh]; ok {
			ring[i] = next
		} else {
			ring[i] = sh
		}
	}
	x.shards = ring
	// A tier move changes where bytes live, not what queries answer, so
	// the generation (ring identity) bumps and the version (result cache
	// key) deliberately does not.
	x.generation++
	x.mu.Unlock()
	x.countTierMoves(swap)
	return len(swap), nil
}

// countTierMoves books the promotion/demotion counters for one swap set.
func (x *Index) countTierMoves(swap map[shardBackend]shardBackend) {
	m := x.metrics
	if m == nil {
		return
	}
	for old := range swap {
		if _, wasCold := old.(*coldShard); wasCold {
			m.tierPromotions.Inc()
		} else {
			m.tierDemotions.Inc()
		}
	}
}

// hotFromCold decodes a cold shard's retained container bytes into a full
// subIndex — exactly a snapshot load, sharing every decode guard.
func (x *Index) hotFromCold(c *coldShard) (*subIndex, error) {
	sub, err := decodeShardBytes(c.raw, snapshot.ShardEntry{Seed: c.seed, Sets: len(c.ids)}, c.total)
	if err != nil {
		return nil, fmt.Errorf("promoting cold shard: %w", err)
	}
	x.attachCounters(sub.ix)
	return sub, nil
}

// coldFromSub re-encodes one hot shard as its canonical container bytes
// (the same bytes Save would write, so the shard's content identity — and
// any future ship key — is unchanged), spools them through a temp file,
// maps it and unlinks it. The unlinked file stays readable through the
// mapping; nothing is left on disk to clean up.
func (x *Index) coldFromSub(sub *subIndex) (*coldShard, error) {
	raw, err := encodeShardBytes(sub, x.containOptions())
	if err != nil {
		return nil, fmt.Errorf("demoting shard: %w", err)
	}
	x.mu.RLock()
	total := x.total
	x.mu.RUnlock()
	entry := snapshot.ShardEntry{Seed: sub.ix.Options().Seed, Sets: sub.ix.Len()}
	cold, err := coldFromBytes(raw, entry, total)
	if err != nil {
		return nil, fmt.Errorf("demoting shard: %w", err)
	}
	if x.metrics != nil {
		cold.mapped.SetCounters(&x.metrics.cand)
	}
	return cold, nil
}

// coldFromBytes spools container bytes to an unlinked temp file and opens
// them as a cold shard.
func coldFromBytes(raw []byte, entry snapshot.ShardEntry, total int) (*coldShard, error) {
	f, err := os.CreateTemp("", "cpshard-cold-*.cps")
	if err != nil {
		return nil, err
	}
	path := f.Name()
	// The spool file is removed on every path below; the mapping (or the
	// fallback build's heap copy) carries the bytes from here.
	defer os.Remove(path)
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return openColdShard(path, entry, total)
}

// Retier runs one auto-tier pass and reports how many shards moved in
// each direction. A no-op unless the configured tiering is TierAuto. The
// placement controller calls it on its reconciliation cadence; tests (and
// operators) can drive it directly.
func (x *Index) Retier() (promoted, demoted int, err error) {
	x.mu.RLock()
	tier := x.runtime.Tiering
	x.mu.RUnlock()
	if tier != TierAuto {
		return 0, 0, nil
	}
	x.compactMu.Lock()
	defer x.compactMu.Unlock()
	x.mu.RLock()
	shards := append([]shardBackend(nil), x.shards...)
	x.mu.RUnlock()

	if x.tierIdle == nil {
		x.tierIdle = make(map[*subIndex]int)
	}
	live := make(map[*subIndex]bool)
	swap := make(map[shardBackend]shardBackend)
	for _, sh := range shards {
		switch b := sh.(type) {
		case *coldShard:
			if b.hits.Swap(0) >= tierPromoteHits {
				sub, err := x.hotFromCold(b)
				if err != nil {
					return 0, 0, err
				}
				swap[sh] = sub
				promoted++
			}
		case *subIndex:
			live[b] = true
			if b.hits.Swap(0) == 0 {
				x.tierIdle[b]++
				if x.tierIdle[b] >= tierDemoteIdlePasses {
					cold, err := x.coldFromSub(b)
					if err != nil {
						return 0, 0, err
					}
					swap[sh] = cold
					demoted++
					delete(x.tierIdle, b)
					delete(live, b)
				}
			} else {
				delete(x.tierIdle, b)
			}
		}
	}
	// Drop idle bookkeeping for shards that left the ring (compacted,
	// shipped) so the map is bounded by the live hot shard count.
	for sub := range x.tierIdle {
		if !live[sub] {
			delete(x.tierIdle, sub)
		}
	}
	if len(swap) == 0 {
		return 0, 0, nil
	}
	x.mu.Lock()
	ring := make([]shardBackend, len(x.shards))
	for i, sh := range x.shards {
		if next, ok := swap[sh]; ok {
			ring[i] = next
		} else {
			ring[i] = sh
		}
	}
	x.shards = ring
	x.generation++
	x.mu.Unlock()
	x.countTierMoves(swap)
	return promoted, demoted, nil
}
