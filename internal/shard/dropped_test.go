package shard

import (
	"errors"
	"testing"

	"repro/internal/intset"
	"repro/internal/snapshot"
)

// TestDroppedBitmapRoundTrip: a churn-heavy lifetime — seals and
// compactions reclaiming many deleted ids — persists its dropped set as
// a dense bitmap and restores it exactly: the reclaimed count survives,
// re-deleting a reclaimed id stays a no-op, and answers are unchanged.
func TestDroppedBitmapRoundTrip(t *testing.T) {
	x, probes, deleted := churn(t, exactOptions(2, 40, 151))
	x.Compact() // reclaim the sealed tombstones too
	st := x.Stats()
	if st.Reclaimed == 0 {
		t.Fatalf("churn produced no reclaimed ids: %+v", st)
	}
	want := mustQueryBatch(t, x, probes)

	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	m, err := snapshot.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.DroppedBitmap) == 0 {
		t.Fatal("manifest carries no dropped bitmap")
	}
	if len(m.Dropped) != 0 {
		t.Fatalf("new save wrote the legacy dropped list: %v", m.Dropped)
	}
	// The bitmap is bounded by the id space, not the churn volume.
	if max := 8 * len(m.DroppedBitmap); max > 8*((m.Total+7)/8) {
		t.Fatalf("bitmap spans %d bits for %d ids", max, m.Total)
	}
	if got := intset.BitmapFromBytes(m.DroppedBitmap).Count(); got != st.Reclaimed {
		t.Fatalf("bitmap holds %d ids, stats say %d reclaimed", got, st.Reclaimed)
	}

	y, err := Load(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := y.Stats().Reclaimed; got != st.Reclaimed {
		t.Fatalf("reclaimed count %d after load, want %d", got, st.Reclaimed)
	}
	live := y.Len()
	for _, id := range deleted {
		if y.Delete(id) {
			t.Fatalf("re-delete of reclaimed/tombstoned id %d reported live", id)
		}
	}
	if y.Len() != live {
		t.Fatalf("re-deletes moved the live count: %d -> %d", live, y.Len())
	}
	got := mustQueryBatch(t, y, probes)
	for i := range probes {
		if !equalMatches(t, got[i], want[i]) {
			t.Fatalf("probe %d diverges after bitmap round trip", i)
		}
	}
}

// TestLegacyDroppedListStillLoads: snapshots written before the bitmap
// carried the dropped set as a sorted id list; Load must keep reading
// that form identically.
func TestLegacyDroppedListStillLoads(t *testing.T) {
	x, probes, _ := churn(t, exactOptions(2, 40, 157))
	x.Compact()
	want := mustQueryBatch(t, x, probes)
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	m, err := snapshot.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the manifest in the legacy form.
	m.Dropped = intset.BitmapFromBytes(m.DroppedBitmap).Ints()
	m.DroppedBitmap = nil
	if err := snapshot.WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	y, err := Load(dir, 1)
	if err != nil {
		t.Fatalf("legacy manifest failed to load: %v", err)
	}
	if got, wantN := y.Stats().Reclaimed, len(m.Dropped); got != wantN {
		t.Fatalf("reclaimed count %d from legacy list of %d", got, wantN)
	}
	got := mustQueryBatch(t, y, probes)
	for i := range probes {
		if !equalMatches(t, got[i], want[i]) {
			t.Fatalf("probe %d diverges under legacy dropped list", i)
		}
	}
}

// TestDroppedBitmapValidation: manifest-level guards on the bitmap form —
// out-of-range bits and a manifest carrying both representations are
// corruption, and the cross-invariants (dropped ids absent from shards,
// side and tombstones) hold for the bitmap exactly as for the list.
func TestDroppedBitmapValidation(t *testing.T) {
	x, _, _ := churn(t, exactOptions(2, 40, 163))
	x.Compact()
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	m0, err := snapshot.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func(m *snapshot.Manifest)) {
		t.Helper()
		m := *m0
		mutate(&m)
		if err := snapshot.WriteManifest(dir, &m); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir, 1); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	corrupt("bitmap bit beyond the id space", func(m *snapshot.Manifest) {
		bm := intset.BitmapFromBytes(m.DroppedBitmap)
		bm.Set(m.Total)
		m.DroppedBitmap = bm.Bytes()
	})
	corrupt("both dropped representations present", func(m *snapshot.Manifest) {
		m.Dropped = []int{1}
	})
	corrupt("bitmap claims a live shard id", func(m *snapshot.Manifest) {
		// Id 0 was built into a primary shard and never deleted.
		bm := intset.BitmapFromBytes(m.DroppedBitmap)
		bm.Set(0)
		m.DroppedBitmap = bm.Bytes()
	})
	// Pristine manifest still loads.
	if err := snapshot.WriteManifest(dir, m0); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, 1); err != nil {
		t.Errorf("pristine manifest failed to load: %v", err)
	}
}
