package shard

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cpindex"
	"repro/internal/intset"
	"repro/internal/snapshot"
)

// Server wraps a sharded index as an HTTP/JSON query service — the
// serving facade that cmd/serve binds to a listener. All endpoints are
// safe under concurrent requests; /v1/add serializes against queries
// through the index's lock. Every endpoint is mounted twice: at its
// canonical versioned path under /v1/ and at the bare legacy path it had
// before versioning, which aliases the same handler. Errors are uniform
// structured JSON — {"error": "...", "code": NNN} — on every endpoint.
//
//	POST /v1/query        {"set":[...], "mode":"similarity"|"containment",
//	                       "threshold":t, "all":bool, "limit":n, "debug":bool}
//	POST /v1/query_batch  {"sets":[[...],...]}      -> per-query match lists
//	POST /v1/add          {"sets":[[...],...]}      -> assigned global ids
//	POST /v1/delete       {"ids":[...]}             -> tombstone ids
//	POST /v1/compact      (no body)                 -> run one compaction pass
//	GET  /v1/stats                                  -> index shape snapshot
//	GET  /v1/metrics                                -> Prometheus text exposition
//	GET  /v1/healthz                                -> liveness: 200 + health JSON
//	GET  /v1/readyz                                 -> readiness: 503 when a remote shard is unanswerable
//
// /v1/query's default mode ("similarity", or the field absent) answers
// with the best match over the index's similarity threshold, or every
// match with "all":true. Mode "containment" requires "threshold" in
// (0,1] and returns every indexed set whose containment of the query —
// |q ∩ x| / |q| — reaches it, the domain-discovery primitive. "limit",
// when positive, re-ranks the matches by score (ties by id) and keeps
// the top n. "debug":true returns the per-shard trace (timings,
// candidate counts, cache outcome) alongside the answer; with
// ServerOptions.SlowQuery set, every similarity query over the threshold
// additionally emits one structured log line with the same breakdown.
//
// The /v1/shard/* endpoints make any serve instance a peer in a
// distributed topology: a coordinator ships cpshard snapshot files here
// and then fans per-shard queries out to them (see Distribute). They
// operate on the hosted-shard registry, not on the instance's own index,
// so one process can serve its own ring and host replicas for others
// simultaneously.
//
//	POST   /v1/shard/snapshot?shard=K&seed=S&sets=N&total=T  (body: cpshard bytes) -> validated receipt
//	GET    /v1/shard/snapshot?shard=K                        -> the hosted container bytes back
//	DELETE /v1/shard/snapshot?shard=K                        -> evict a hosted shard
//	POST   /v1/shard/query        {"shard":K, "set":[...], "all":bool,
//	                               "mode":"containment", "threshold":t}   -> matches with global ids
//	POST   /v1/shard/query_batch  {"shard":K, "sets":[[...],...]}         -> per-query match lists
type Server struct {
	ix  *Index
	mux *http.ServeMux

	// slowQuery > 0 traces every /query and logs those over the
	// threshold to logger (see ServerOptions).
	slowQuery time.Duration
	logger    *slog.Logger

	// hosted is the peer-side shard registry: shards shipped here by
	// coordinators, keyed by their coordinator-assigned name. The decoded
	// structure answers /shard/query*; the raw container bytes are kept
	// so /shard/snapshot GETs (re-replication, save-time fetch-back,
	// transfer verification) return exactly what was shipped.
	hostedMu sync.RWMutex
	hosted   map[string]*hostedShard
}

// ServerOptions configure the optional observability behavior of a
// Server; the zero value (and a nil pointer) keep every default.
type ServerOptions struct {
	// SlowQuery, when positive, traces every /query request and emits one
	// structured log line for requests whose total latency reaches the
	// threshold: query size, per-shard timings, candidate counts and cache
	// outcome. Tracing allocates per request, so this is a knob, not a
	// default.
	SlowQuery time.Duration
	// Logger receives the slow-query lines (default slog.Default()).
	Logger *slog.Logger
	// DisableMetrics leaves /metrics unregistered — for embedders that
	// mount the registry elsewhere or want no exposition endpoint.
	DisableMetrics bool
}

type hostedShard struct {
	sub *subIndex
	raw []byte
	crc uint32
}

// maxRequestBytes bounds a single request body (64 MiB covers batches of
// hundreds of thousands of typical sets while keeping one malformed
// client from exhausting memory).
const maxRequestBytes = 64 << 20

// maxShardSnapshotBytes bounds one shard container upload. Shards are
// bulk structures, not query batches, so the bound is deliberately much
// larger (1 GiB ≈ hundreds of millions of tokens per shard) — a shard
// the coordinator could build must also be shippable.
const maxShardSnapshotBytes = 1 << 30

// NewServer returns the HTTP handler serving the index with default
// options (metrics on, slow-query log off).
func NewServer(ix *Index) *Server {
	return NewServerOpts(ix, nil)
}

// NewServerOpts returns the HTTP handler serving the index with the given
// observability options.
func NewServerOpts(ix *Index, o *ServerOptions) *Server {
	opt := ServerOptions{}
	if o != nil {
		opt = *o
	}
	if opt.Logger == nil {
		opt.Logger = slog.Default()
	}
	s := &Server{
		ix:        ix,
		mux:       http.NewServeMux(),
		slowQuery: opt.SlowQuery,
		logger:    opt.Logger,
		hosted:    make(map[string]*hostedShard),
	}
	s.route("/query", s.handleQuery)
	s.route("/query_batch", s.handleQueryBatch)
	s.route("/add", s.handleAdd)
	s.route("/delete", s.handleDelete)
	s.route("/compact", s.handleCompact)
	s.route("/stats", s.handleStats)
	s.route("/shard/snapshot", s.handleShardSnapshot)
	s.route("/shard/query", s.handleShardQuery)
	s.route("/shard/query_batch", s.handleShardQueryBatch)
	s.route("/healthz", s.handleHealthz)
	s.route("/readyz", s.handleReadyz)
	if reg := ix.Metrics(); reg != nil && !opt.DisableMetrics {
		reg.GaugeFunc("cps_hosted_shards", "shards hosted here for coordinators", func() float64 {
			return float64(s.HostedShards())
		})
		s.mux.Handle("/v1/metrics", reg)
		s.mux.Handle("/metrics", reg)
	}
	return s
}

// route registers a handler at its canonical /v1 path and at the bare
// legacy path it occupied before API versioning. Both stay live — the
// alias costs nothing and keeps pre-/v1 clients working — but new
// surface area only appears under /v1/.
func (s *Server) route(path string, h http.HandlerFunc) {
	s.mux.HandleFunc("/v1"+path, h)
	s.mux.HandleFunc(path, h)
}

// errorResponse is the uniform error body of every endpoint: the
// message plus the HTTP status it rode in on, so clients that log the
// body alone keep the code.
type errorResponse struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

// writeError emits the structured JSON error body with the matching
// HTTP status. Every handler error funnels through here — no endpoint
// answers with a bare text/plain error.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// handleHealthz is the liveness probe: always 200 (the process serves),
// with the full health report as the body for operators.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ix.Health())
}

// handleReadyz is the readiness probe: 503 with the report when some
// remote-backed shard has no healthy replica and no local copy — the
// state in which queries error — so load balancers drain the node.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.ix.Health()
	w.Header().Set("Content-Type", "application/json")
	if !h.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type queryRequest struct {
	Set []uint32 `json:"set"`
	// Mode selects the search semantics: "" or "similarity" for Jaccard
	// similarity against the index's threshold, "containment" for
	// |q ∩ x| / |q| ≥ Threshold.
	Mode string `json:"mode,omitempty"`
	// Threshold is the containment threshold, required in (0,1] when Mode
	// is "containment"; it must be absent (zero) in similarity mode, whose
	// threshold is fixed at index build time.
	Threshold float64 `json:"threshold,omitempty"`
	// All requests every match instead of the single best one
	// (similarity mode only; containment always returns every match).
	All bool `json:"all"`
	// Limit, when positive, re-ranks matches by score (ties by ascending
	// id) and keeps the top Limit.
	Limit int `json:"limit,omitempty"`
	// Debug requests the per-shard trace in the response.
	Debug bool `json:"debug"`
}

type queryResponse struct {
	Found bool `json:"found"`
	// ID and Sim describe the best match of a non-all query; ID is -1
	// when they don't apply. Always present: id 0 is a legitimate match,
	// so omitempty would be ambiguous on the wire.
	ID      int             `json:"id"`
	Sim     float64         `json:"sim"`
	Matches []cpindex.Match `json:"matches,omitempty"`
	// Trace is present only for "debug":true requests.
	Trace *QueryTrace `json:"trace,omitempty"`
}

type batchRequest struct {
	Sets [][]uint32 `json:"sets"`
}

type batchResponse struct {
	Results [][]cpindex.Match `json:"results"`
}

type addResponse struct {
	IDs      []int `json:"ids"`
	Total    int   `json:"total"`
	Buffered int   `json:"buffered"`
	Shards   int   `json:"shards"`
}

type deleteRequest struct {
	IDs []int `json:"ids"`
}

type deleteResponse struct {
	// Deleted counts ids that were live (unknown and already-deleted ids
	// are skipped, not errors — deletes are idempotent on the wire).
	Deleted    int `json:"deleted"`
	Live       int `json:"live"`
	Tombstones int `json:"tombstones"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	q := intset.Normalize(req.Set)
	switch req.Mode {
	case "", "similarity":
		if req.Threshold != 0 {
			writeError(w, http.StatusBadRequest,
				"bad request: threshold applies to containment mode only (similarity threshold is fixed at build time)")
			return
		}
	case "containment":
		s.handleContainQuery(w, q, req)
		return
	default:
		writeError(w, http.StatusBadRequest,
			"bad request: unknown mode %q (want \"similarity\" or \"containment\")", req.Mode)
		return
	}
	// Trace when the client asked for the breakdown or when the slow-query
	// log might need it — the threshold check can only happen after the
	// fact, so the breakdown must be captured up front. A nil trace is the
	// plain (zero-allocation) path.
	var tr *QueryTrace
	if req.Debug || s.slowQuery > 0 {
		tr = &QueryTrace{}
	}
	resp := queryResponse{ID: -1}
	if req.All {
		ms, err := s.ix.QueryAllTraced(q, tr)
		if err != nil {
			// A dead remote topology (no live replica, no local copy) is a
			// hard serving error, never a silently partial answer.
			writeError(w, http.StatusBadGateway, "%v", err)
			return
		}
		resp.Matches = limitMatches(ms, req.Limit)
		resp.Found = len(resp.Matches) > 0
	} else {
		id, sim, ok, err := s.ix.QueryTraced(q, tr)
		if err != nil {
			writeError(w, http.StatusBadGateway, "%v", err)
			return
		}
		if ok {
			resp.Found, resp.ID, resp.Sim = true, id, sim
		}
	}
	if tr != nil {
		s.logSlow(q, req.All, tr)
		if req.Debug {
			resp.Trace = tr
		}
	}
	writeJSON(w, resp)
}

// handleContainQuery answers the containment arm of /v1/query: every
// indexed set containing at least Threshold of the query, scored by the
// exact containment value.
func (s *Server) handleContainQuery(w http.ResponseWriter, q []uint32, req queryRequest) {
	if req.Threshold <= 0 || req.Threshold > 1 {
		writeError(w, http.StatusBadRequest,
			"bad request: containment mode needs a threshold in (0,1], got %v", req.Threshold)
		return
	}
	ms, err := s.ix.QueryContain(q, req.Threshold)
	if err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	resp := queryResponse{ID: -1, Matches: limitMatches(ms, req.Limit), Found: len(ms) > 0}
	writeJSON(w, resp)
}

// limitMatches applies the query API's "limit" parameter: re-rank by
// score descending (ties by ascending id) and keep the top n. It sorts a
// copy — the input may be a live cache entry, which is read-only by
// contract. Zero (or negative) limit returns the input untouched, in its
// canonical id order.
func limitMatches(ms []cpindex.Match, limit int) []cpindex.Match {
	if limit <= 0 || ms == nil {
		return ms
	}
	ranked := append([]cpindex.Match(nil), ms...)
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Sim != ranked[j].Sim {
			return ranked[i].Sim > ranked[j].Sim
		}
		return ranked[i].ID < ranked[j].ID
	})
	if len(ranked) > limit {
		ranked = ranked[:limit]
	}
	return ranked
}

// logSlow emits the slow-query line when the traced request crossed the
// threshold.
func (s *Server) logSlow(q []uint32, all bool, tr *QueryTrace) {
	if s.slowQuery <= 0 || time.Duration(tr.TotalNs) < s.slowQuery {
		return
	}
	if m := s.ix.metrics; m != nil {
		m.slowQueries.Inc()
	}
	s.logger.Warn("slow query",
		"query_size", len(q),
		"all", all,
		"total_ns", tr.TotalNs,
		"cache_hit", tr.CacheHit,
		"candidates", tr.Candidates,
		"verified", tr.Verified,
		"shards", tr.Shards,
	)
}

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	for i, set := range req.Sets {
		req.Sets[i] = intset.Normalize(set)
	}
	results, err := s.ix.QueryBatchErr(req.Sets)
	if err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	// Empty match lists marshal as [] rather than null so clients can
	// index the results without nil checks.
	for i := range results {
		if results[i] == nil {
			results[i] = []cpindex.Match{}
		}
	}
	writeJSON(w, batchResponse{Results: results})
}

// hostedShardFor resolves a shard RPC's target, writing the 4xx itself
// when the request names no shard or an unknown one.
func (s *Server) hostedShardFor(w http.ResponseWriter, key string) *hostedShard {
	if key == "" {
		writeError(w, http.StatusBadRequest, "bad request: missing shard key")
		return nil
	}
	s.hostedMu.RLock()
	h := s.hosted[key]
	s.hostedMu.RUnlock()
	if h == nil {
		writeError(w, http.StatusNotFound, "shard %q not hosted here", key)
		return nil
	}
	return h
}

// handleShardQuery answers a coordinator's per-shard query against a
// hosted shard, with global ids (the shipped container carries the id
// map). This is the internal shard RPC: queries arrive pre-normalized
// and tombstones stay coordinator-side, exactly as for an in-process
// shard.
func (s *Server) handleShardQuery(w http.ResponseWriter, r *http.Request) {
	var req shardQueryRequest
	if !decode(w, r, &req) {
		return
	}
	h := s.hostedShardFor(w, req.Shard)
	if h == nil {
		return
	}
	resp := queryResponse{ID: -1}
	switch {
	case req.Mode == "containment":
		if req.Threshold <= 0 || req.Threshold > 1 {
			writeError(w, http.StatusBadRequest,
				"bad request: containment mode needs a threshold in (0,1], got %v", req.Threshold)
			return
		}
		// The shipped container must carry its coordinator's containment
		// signatures — a peer must never sign with guessed options, or the
		// global determinism contract breaks — so a shard shipped by a
		// pre-containment build answers with an error and the coordinator
		// fails over to its local copy.
		ms, err := h.sub.queryContainBuilt(req.Set, req.Threshold)
		if err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		resp.Matches = ms
		resp.Found = len(resp.Matches) > 0
	case req.All:
		// Local backends never error.
		resp.Matches, _ = h.sub.queryAll(req.Set)
		resp.Found = len(resp.Matches) > 0
	default:
		if id, sim, ok, _ := h.sub.queryBest(req.Set); ok {
			resp.Found, resp.ID, resp.Sim = true, id, sim
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleShardQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req shardBatchRequest
	if !decodeBulk(w, r, &req) {
		return
	}
	h := s.hostedShardFor(w, req.Shard)
	if h == nil {
		return
	}
	results, _ := h.sub.queryBatch(req.Sets)
	for i := range results {
		if results[i] == nil {
			results[i] = []cpindex.Match{}
		}
	}
	writeJSON(w, batchResponse{Results: results})
}

// handleShardSnapshot is the shard shipping endpoint. POST accepts one
// cpshard container (the body) under the identity the shipper's manifest
// claims (seed, set count, id bound as query parameters), validates it
// with exactly the guards a disk restart enforces — container checksums,
// seed and count cross-checks, id bounds — and only then registers it;
// the receipt echoes the decoded identity plus the CRC-32C of the hosted
// bytes so the shipper verifies the transfer end to end. GET returns the
// hosted bytes unchanged, for re-replication and save-time fetch-back.
func (s *Server) handleShardSnapshot(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("shard")
	switch r.Method {
	case http.MethodGet:
		h := s.hostedShardFor(w, key)
		if h == nil {
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(h.raw)
	case http.MethodPost:
		if key == "" {
			writeError(w, http.StatusBadRequest, "bad request: missing shard key")
			return
		}
		seed, err1 := strconv.ParseUint(r.URL.Query().Get("seed"), 10, 64)
		sets, err2 := strconv.Atoi(r.URL.Query().Get("sets"))
		total, err3 := strconv.Atoi(r.URL.Query().Get("total"))
		if err1 != nil || err2 != nil || err3 != nil || sets < 0 || total < 0 {
			writeError(w, http.StatusBadRequest, "bad request: seed, sets and total must be non-negative integers")
			return
		}
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxShardSnapshotBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		sub, err := decodeShardBytes(raw, snapshot.ShardEntry{Seed: seed, Sets: sets}, total)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad request: shard snapshot rejected: %v", err)
			return
		}
		// Hosted shards answer coordinator RPCs from this process, so their
		// candidate pipeline flushes into this process's counters.
		s.ix.attachCounters(sub.ix)
		h := &hostedShard{sub: sub, raw: raw, crc: crc32.Checksum(raw, castagnoli)}
		s.hostedMu.Lock()
		s.hosted[key] = h
		s.hostedMu.Unlock()
		writeJSON(w, shipReceipt{Shard: key, Seed: seed, Sets: sets, CRC32C: h.crc})
	case http.MethodDelete:
		// Eviction: a coordinator (or operator) retires a hosted shard it
		// no longer routes to — after a re-distribution superseded it, or
		// to unwind a partially failed placement — so long-lived peers
		// don't accumulate dead shards. Idempotent: deleting an unknown
		// key reports removed=false rather than erroring.
		if key == "" {
			writeError(w, http.StatusBadRequest, "bad request: missing shard key")
			return
		}
		s.hostedMu.Lock()
		_, removed := s.hosted[key]
		delete(s.hosted, key)
		s.hostedMu.Unlock()
		writeJSON(w, struct {
			Shard   string `json:"shard"`
			Removed bool   `json:"removed"`
		}{key, removed})
	default:
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

// HostedShards reports how many shipped shards this server currently
// hosts for coordinators.
func (s *Server) HostedShards() int {
	s.hostedMu.RLock()
	defer s.hostedMu.RUnlock()
	return len(s.hosted)
}

// HostedKeys returns the keys of every hosted shard, sorted — what the
// placement tests and the serving bench compare against the
// coordinator's ring to prove the GC sweep leaves no superseded keys.
func (s *Server) HostedKeys() []string {
	s.hostedMu.RLock()
	keys := make([]string, 0, len(s.hosted))
	for k := range s.hosted {
		keys = append(keys, k)
	}
	s.hostedMu.RUnlock()
	sort.Strings(keys)
	return keys
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	for i, set := range req.Sets {
		req.Sets[i] = intset.Normalize(set)
		if len(req.Sets[i]) == 0 {
			writeError(w, http.StatusBadRequest, "bad request: set %d is empty", i)
			return
		}
	}
	ids := s.ix.Add(req.Sets)
	st := s.ix.Stats()
	writeJSON(w, addResponse{IDs: ids, Total: st.Sets, Buffered: st.Buffered, Shards: st.Shards})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req deleteRequest
	if !decode(w, r, &req) {
		return
	}
	deleted := s.ix.DeleteBatch(req.IDs)
	st := s.ix.Stats()
	writeJSON(w, deleteResponse{Deleted: deleted, Live: st.Sets, Tombstones: st.Tombstones})
}

type compactResponse struct {
	CompactResult
	// Shards and Tombstones describe the ring after the pass.
	Shards     int `json:"shards"`
	Tombstones int `json:"tombstones"`
}

// handleCompact runs one synchronous compaction pass; the response says
// what it did (merged=0 means nothing was eligible). Queries and appends
// are served throughout — the pass only swaps the ring at the end — so
// calling this on a live service is safe; concurrent calls serialize.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	res := s.ix.Compact()
	st := s.ix.Stats()
	writeJSON(w, compactResponse{CompactResult: res, Shards: st.Shards, Tombstones: st.Tombstones})
}

// statsResponse is the index shape plus the server-level hosted-shard
// count (shards shipped here by coordinators live in the server's
// registry, not in the index).
type statsResponse struct {
	Stats
	HostedShards int `json:"hosted_shards"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	writeJSON(w, statsResponse{Stats: s.ix.Stats(), HostedShards: s.HostedShards()})
}

// decode reads a POST JSON body into v, writing the HTTP error itself and
// returning false when the request is unusable.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	return decodeLimited(w, r, v, maxRequestBytes)
}

// decodeBulk is decode with the bulk-transfer bound — for the internal
// shard RPCs, where the coordinator ships a whole batch in one request
// per shard: a batch that an all-local ring would answer must not become
// unanswerable just because its shards moved to peers.
func decodeBulk(w http.ResponseWriter, r *http.Request, v any) bool {
	return decodeLimited(w, r, v, maxShardSnapshotBytes)
}

func decodeLimited(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}
