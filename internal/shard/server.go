package shard

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/cpindex"
	"repro/internal/intset"
)

// Server wraps a sharded index as an HTTP/JSON query service — the
// serving facade that cmd/serve binds to a listener. All endpoints are
// safe under concurrent requests; /add serializes against queries through
// the index's lock.
//
//	POST /query        {"set":[...], "all":bool} -> best match or all matches
//	POST /query_batch  {"sets":[[...],...]}      -> per-query match lists
//	POST /add          {"sets":[[...],...]}      -> assigned global ids
//	POST /delete       {"ids":[...]}             -> tombstone ids
//	POST /compact      (no body)                 -> run one compaction pass
//	GET  /stats                                  -> index shape snapshot
//	GET  /healthz                                -> 200 ok
type Server struct {
	ix  *Index
	mux *http.ServeMux
}

// maxRequestBytes bounds a single request body (64 MiB covers batches of
// hundreds of thousands of typical sets while keeping one malformed
// client from exhausting memory).
const maxRequestBytes = 64 << 20

// NewServer returns the HTTP handler serving the index.
func NewServer(ix *Index) *Server {
	s := &Server{ix: ix, mux: http.NewServeMux()}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/query_batch", s.handleQueryBatch)
	s.mux.HandleFunc("/add", s.handleAdd)
	s.mux.HandleFunc("/delete", s.handleDelete)
	s.mux.HandleFunc("/compact", s.handleCompact)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type queryRequest struct {
	Set []uint32 `json:"set"`
	// All requests every match instead of the single best one.
	All bool `json:"all"`
}

type queryResponse struct {
	Found bool `json:"found"`
	// ID and Sim describe the best match of a non-all query; ID is -1
	// when they don't apply. Always present: id 0 is a legitimate match,
	// so omitempty would be ambiguous on the wire.
	ID      int             `json:"id"`
	Sim     float64         `json:"sim"`
	Matches []cpindex.Match `json:"matches,omitempty"`
}

type batchRequest struct {
	Sets [][]uint32 `json:"sets"`
}

type batchResponse struct {
	Results [][]cpindex.Match `json:"results"`
}

type addResponse struct {
	IDs      []int `json:"ids"`
	Total    int   `json:"total"`
	Buffered int   `json:"buffered"`
	Shards   int   `json:"shards"`
}

type deleteRequest struct {
	IDs []int `json:"ids"`
}

type deleteResponse struct {
	// Deleted counts ids that were live (unknown and already-deleted ids
	// are skipped, not errors — deletes are idempotent on the wire).
	Deleted    int `json:"deleted"`
	Live       int `json:"live"`
	Tombstones int `json:"tombstones"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	q := intset.Normalize(req.Set)
	resp := queryResponse{ID: -1}
	if req.All {
		resp.Matches = s.ix.QueryAll(q)
		resp.Found = len(resp.Matches) > 0
	} else if id, sim, ok := s.ix.Query(q); ok {
		resp.Found, resp.ID, resp.Sim = true, id, sim
	}
	writeJSON(w, resp)
}

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	for i, set := range req.Sets {
		req.Sets[i] = intset.Normalize(set)
	}
	results := s.ix.QueryBatch(req.Sets)
	// Empty match lists marshal as [] rather than null so clients can
	// index the results without nil checks.
	for i := range results {
		if results[i] == nil {
			results[i] = []cpindex.Match{}
		}
	}
	writeJSON(w, batchResponse{Results: results})
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	for i, set := range req.Sets {
		req.Sets[i] = intset.Normalize(set)
		if len(req.Sets[i]) == 0 {
			http.Error(w, fmt.Sprintf("bad request: set %d is empty", i), http.StatusBadRequest)
			return
		}
	}
	ids := s.ix.Add(req.Sets)
	st := s.ix.Stats()
	writeJSON(w, addResponse{IDs: ids, Total: st.Sets, Buffered: st.Buffered, Shards: st.Shards})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req deleteRequest
	if !decode(w, r, &req) {
		return
	}
	deleted := s.ix.DeleteBatch(req.IDs)
	st := s.ix.Stats()
	writeJSON(w, deleteResponse{Deleted: deleted, Live: st.Sets, Tombstones: st.Tombstones})
}

type compactResponse struct {
	CompactResult
	// Shards and Tombstones describe the ring after the pass.
	Shards     int `json:"shards"`
	Tombstones int `json:"tombstones"`
}

// handleCompact runs one synchronous compaction pass; the response says
// what it did (merged=0 means nothing was eligible). Queries and appends
// are served throughout — the pass only swaps the ring at the end — so
// calling this on a live service is safe; concurrent calls serialize.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	res := s.ix.Compact()
	st := s.ix.Stats()
	writeJSON(w, compactResponse{CompactResult: res, Shards: st.Shards, Tombstones: st.Tombstones})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.ix.Stats())
}

// decode reads a POST JSON body into v, writing the HTTP error itself and
// returning false when the request is unusable.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
