package shard

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// expositionLine matches every valid line of the Prometheus text format —
// the same shape the metrics package pins for itself, re-checked here on
// the full serving registry.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN))$`)

// scrapeMetrics GETs /metrics and validates status, content type and that
// every line parses as exposition format.
func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	return text
}

// TestMetricsExposition drives every serving operation over the wire and
// checks the scrape covers the whole catalog: latency histograms per
// operation, the candidate pipeline, compaction, cache, exec and shape
// series — and that the query histogram's cumulative buckets are monotone.
func TestMetricsExposition(t *testing.T) {
	sets, _ := workload(300, 0.8, 901)
	ix := Build(sets, 0.5, exactOptions(2, 40, 93))
	ix.EnableCache(16)
	ts := httptest.NewServer(NewServer(ix))
	t.Cleanup(ts.Close)

	post(t, ts.URL+"/query", queryRequest{Set: sets[1]}, nil)
	post(t, ts.URL+"/query", queryRequest{Set: sets[1], All: true}, nil)
	post(t, ts.URL+"/query_batch", batchRequest{Sets: sets[:5]}, nil)
	extra, _ := workload(90, 0.8, 95)
	var added []int
	for i := 0; i < len(extra); i += 40 {
		end := min(i+40, len(extra))
		var ar addResponse
		post(t, ts.URL+"/add", batchRequest{Sets: extra[i:end]}, &ar)
		added = append(added, ar.IDs...)
	}
	// Delete sealed appends: their tombstones are what compaction reclaims.
	post(t, ts.URL+"/delete", deleteRequest{IDs: added[:3]}, nil)
	post(t, ts.URL+"/compact", struct{}{}, nil)

	text := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`cps_query_seconds_count{op="query"}`,
		`cps_query_seconds_count{op="query_all"}`,
		`cps_query_seconds_count{op="query_batch"}`,
		`cps_query_seconds_bucket{op="query",le="`,
		`cps_mutation_seconds_count{op="add"}`,
		`cps_mutation_seconds_count{op="delete"}`,
		"cps_candidates_total",
		"cps_verified_total",
		"cps_rejected_total",
		"cps_query_errors_total",
		"cps_slow_queries_total",
		"cps_compaction_seconds_count",
		"cps_compaction_merged_shards_total",
		"cps_compaction_reclaimed_ids_total",
		"cps_cache_entries",
		"cps_cache_hits_total",
		"cps_cache_misses_total",
		"cps_exec_tasks_total",
		"cps_exec_steals_total",
		"cps_exec_queue_depth",
		"cps_index_sets",
		"cps_index_shards",
		"cps_index_remote_shards",
		"cps_index_buffered",
		"cps_index_tombstones",
		"cps_index_generation",
		"cps_index_version",
		"cps_hosted_shards",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The instrumented traffic must actually land in the series.
	mustSample := func(pattern string, atLeast uint64) {
		t.Helper()
		m := regexp.MustCompile(pattern).FindStringSubmatch(text)
		if m == nil {
			t.Errorf("no sample matches %q", pattern)
			return
		}
		v, _ := strconv.ParseUint(m[1], 10, 64)
		if v < atLeast {
			t.Errorf("sample %q = %d, want >= %d", pattern, v, atLeast)
		}
	}
	mustSample(`(?m)^cps_query_seconds_count\{op="query"\} ([0-9]+)$`, 1)
	mustSample(`(?m)^cps_candidates_total ([0-9]+)$`, 1)
	mustSample(`(?m)^cps_verified_total ([0-9]+)$`, 1)
	mustSample(`(?m)^cps_compaction_merged_shards_total ([0-9]+)$`, 2)
	mustSample(`(?m)^cps_compaction_reclaimed_ids_total ([0-9]+)$`, 3)
	mustSample(`(?m)^cps_index_sets ([0-9]+)$`, uint64(len(sets)))

	// Cumulative histogram buckets must be monotone with increasing bounds.
	bucketLine := regexp.MustCompile(`^cps_query_seconds_bucket\{op="query",le="([^"]+)"\} ([0-9]+)$`)
	prev, prevBound, n := uint64(0), -1.0, 0
	for _, line := range strings.Split(text, "\n") {
		m := bucketLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		n++
		bound := 1e300
		if m[1] != "+Inf" {
			var err error
			if bound, err = strconv.ParseFloat(m[1], 64); err != nil {
				t.Fatalf("bad bucket bound %q: %v", m[1], err)
			}
		}
		if bound <= prevBound {
			t.Errorf("bucket bounds not increasing: %v after %v", bound, prevBound)
		}
		cum, _ := strconv.ParseUint(m[2], 10, 64)
		if cum < prev {
			t.Errorf("cumulative bucket count decreased: %d after %d", cum, prev)
		}
		prev, prevBound = cum, bound
	}
	if n == 0 {
		t.Error("no cps_query_seconds bucket lines found")
	}
}

// TestMetricsCounterDeltas pins that each operation books exactly its own
// histogram and that the candidate pipeline flows into the shared counters.
func TestMetricsCounterDeltas(t *testing.T) {
	sets, _ := workload(400, 0.8, 911)
	x := Build(sets, 0.5, exactOptions(2, 30, 97))
	m := x.metrics
	if m == nil {
		t.Fatal("Build left the index uninstrumented")
	}

	mustQuery(t, x, sets[3])
	if got := m.queryBest.Count(); got != 1 {
		t.Errorf("query histogram count = %d, want 1", got)
	}
	if c, v := m.cand.Candidates.Load(), m.cand.Verified.Load(); c == 0 || v == 0 {
		t.Errorf("candidate pipeline after Query: candidates=%d verified=%d, want both > 0", c, v)
	}

	mustQueryAll(t, x, sets[3])
	if got := m.queryAll.Count(); got != 1 {
		t.Errorf("query_all histogram count = %d, want 1", got)
	}
	mustQueryBatch(t, x, sets[:4])
	if got := m.queryBatch.Count(); got != 1 {
		t.Errorf("query_batch histogram count = %d, want 1 (one batch, not one per query)", got)
	}

	extra, _ := workload(70, 0.8, 99)
	var ids []int
	adds := uint64(0)
	for i := 0; i < len(extra); i += 30 {
		end := min(i+30, len(extra))
		ids = append(ids, x.Add(extra[i:end])...)
		adds++
	}
	if got := m.addLat.Count(); got != adds {
		t.Errorf("add histogram count = %d, want %d (one per Add call)", got, adds)
	}
	x.DeleteBatch(ids[:8])
	if got := m.deleteLat.Count(); got != 1 {
		t.Errorf("delete histogram count = %d, want 1", got)
	}

	res := x.Compact()
	if got := m.compactLat.Count(); got != 1 {
		t.Errorf("compaction histogram count = %d, want 1", got)
	}
	if res.Merged == 0 || res.Reclaimed == 0 {
		t.Fatalf("compaction setup did no work: %+v", res)
	}
	if got := m.compactMerged.Value(); got != uint64(res.Merged) {
		t.Errorf("merged counter = %d, result says %d", got, res.Merged)
	}
	if got := m.compactReclaimed.Value(); got != uint64(res.Reclaimed) {
		t.Errorf("reclaimed counter = %d, result says %d", got, res.Reclaimed)
	}
}

// TestQueryMetricsAllocs pins that instrumentation kept the serving-path
// allocation contract: the flat-layout query path with metrics attached
// (as Build always attaches them now) still allocates nothing at steady
// state — latency observation and the candidate counters are atomic adds
// on fixed storage, and stats ride the pooled scratch.
func TestQueryMetricsAllocs(t *testing.T) {
	sets, _ := workload(1500, 0.8, 921)
	x := Build(sets, 0.5, &Options{Shards: 3, Seed: 17})
	if x.metrics == nil {
		t.Fatal("Build left the index uninstrumented")
	}
	for i := 0; i < 30; i++ {
		mustQuery(t, x, sets[i])
	}
	before := x.metrics.cand.Candidates.Load()
	qi := 0
	if n := testing.AllocsPerRun(100, func() {
		mustQuery(t, x, sets[qi%700])
		qi++
	}); n != 0 {
		t.Errorf("instrumented Query allocates %v/op, want 0", n)
	}
	if x.metrics.cand.Candidates.Load() == before {
		t.Error("candidate counter did not advance during the alloc gate")
	}
	if x.metrics.queryBest.Count() == 0 {
		t.Error("query histogram did not advance during the alloc gate")
	}
}

// TestHealthEndpoints covers the liveness/readiness split on a healthy
// all-local index: /healthz and /readyz both 200, with the health report
// as JSON body.
func TestHealthEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var h HealthStatus
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("%s body: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status %d, want 200", path, resp.StatusCode)
		}
		if !h.Ready || h.Shards != 3 || h.RemoteShards != 0 {
			t.Errorf("%s report %+v, want ready with 3 local shards", path, h)
		}
	}
}

// TestReadyzPeerDeath: with moved shards (KeepLocal=false, one replica), a
// dead peer makes queries error — and the same condition must flip /readyz
// to 503, name the unanswerable shards, and mark the peer unhealthy in the
// health report, while /healthz stays 200 (the process itself is fine).
func TestReadyzPeerDeath(t *testing.T) {
	p1, f1 := newFlakyPeer(t)
	_, dist, probes := distributedPair(t, []string{p1.URL},
		&DistributeOptions{Replicas: 1, KeepLocal: false})
	ts := httptest.NewServer(NewServer(dist))
	t.Cleanup(ts.Close)

	readyz := func() (int, HealthStatus) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthStatus
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	if code, h := readyz(); code != http.StatusOK || !h.Ready {
		t.Fatalf("healthy topology: /readyz = %d, %+v", code, h)
	}

	// Kill the only replica. Health is passive, so unreadiness appears with
	// the first failed RPC, not before.
	f1.broken.Store(true)
	if _, _, _, err := dist.QueryErr(probes[0]); err == nil {
		t.Fatal("query against a dead sole replica succeeded")
	}
	code, h := readyz()
	if code != http.StatusServiceUnavailable || h.Ready {
		t.Fatalf("dead peer: /readyz = %d, %+v, want 503 and ready=false", code, h)
	}
	if len(h.UnreadyShards) == 0 {
		t.Error("no unready shards named in the report")
	}
	if len(h.Peers) != 1 || h.Peers[0].Healthy || h.Peers[0].Errors == 0 {
		t.Errorf("peer report %+v, want the one peer unhealthy with errors", h.Peers)
	}

	// Liveness is unaffected, and the query error is on the counters.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d during unreadiness, want 200", resp.StatusCode)
	}
	text := scrapeMetrics(t, ts.URL)
	if !regexp.MustCompile(`(?m)^cps_query_errors_total [1-9]`).MatchString(text) {
		t.Error("cps_query_errors_total did not count the failed query")
	}
	if !strings.Contains(text, "cps_peer_healthy{peer=") || !strings.Contains(text, "} 0") {
		t.Error("cps_peer_healthy gauge did not go to 0")
	}

	// Recovery: the next successful RPC flips readiness back.
	f1.broken.Store(false)
	if _, _, _, err := dist.QueryErr(probes[0]); err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	if code, h := readyz(); code != http.StatusOK || !h.Ready {
		t.Fatalf("recovered topology: /readyz = %d, %+v", code, h)
	}
}

// TestPeerFailoverMetrics: with 2-way replication and one peer down,
// answers are served by the survivor while the dead peer accrues RPC
// errors and failovers and loses its healthy bit — and the index stays
// ready throughout.
func TestPeerFailoverMetrics(t *testing.T) {
	p1, f1 := newFlakyPeer(t)
	p2, _ := newFlakyPeer(t)
	local, dist, probes := distributedPair(t, []string{p1.URL, p2.URL},
		&DistributeOptions{Replicas: 2, KeepLocal: false})
	f1.broken.Store(true)
	assertIdentical(t, local, dist, probes)

	pm1, pm2 := dist.metrics.peer(p1.URL), dist.metrics.peer(p2.URL)
	if pm1.isHealthy() {
		t.Error("dead peer still marked healthy")
	}
	if !pm2.isHealthy() {
		t.Error("surviving peer marked unhealthy")
	}
	if pm1.rpcErrors.Value() == 0 {
		t.Error("dead peer has no RPC errors")
	}
	if pm1.failovers.Value() == 0 {
		t.Error("no failovers counted despite a live fallback replica")
	}
	if pm2.rpcErrors.Value() != 0 {
		t.Errorf("surviving peer has %d RPC errors", pm2.rpcErrors.Value())
	}
	if h := dist.Health(); !h.Ready {
		t.Errorf("index not ready despite a healthy replica per shard: %+v", h)
	}
}

// TestServerDebugTrace: "debug":true returns the per-shard breakdown with
// the answer, a plain request stays trace-free on the wire, and a cached
// answer's trace reports the hit with no shard entries.
func TestServerDebugTrace(t *testing.T) {
	ts, sets := newTestServer(t)

	var qr queryResponse
	post(t, ts.URL+"/query", queryRequest{Set: sets[7], All: true, Debug: true}, &qr)
	if !qr.Found || qr.Trace == nil {
		t.Fatalf("debug query response %+v", qr)
	}
	tr := qr.Trace
	if tr.CacheHit || tr.TotalNs <= 0 || tr.Candidates == 0 || tr.Verified == 0 {
		t.Errorf("trace totals %+v, want a timed uncached query with candidates", tr)
	}
	// 3 local ring shards plus the trailing buffer entry.
	if len(tr.Shards) != 4 {
		t.Fatalf("%d trace entries, want 4: %+v", len(tr.Shards), tr.Shards)
	}
	locals := 0
	for _, e := range tr.Shards[:3] {
		if e.Kind == "local" {
			locals++
		}
	}
	if locals != 3 || tr.Shards[3].Kind != "buffer" {
		t.Errorf("trace shape wrong: %+v", tr.Shards)
	}

	// The answer must be the normal answer: same matches as an untraced
	// request, and no trace key on the wire without debug.
	b, _ := json.Marshal(queryRequest{Set: sets[7], All: true})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, present := raw["trace"]; present {
		t.Error("trace present on a non-debug response")
	}
	var plain queryResponse
	if err := json.Unmarshal(raw["matches"], &plain.Matches); err != nil {
		t.Fatal(err)
	}
	if len(plain.Matches) != len(qr.Matches) {
		t.Errorf("debug changed the answer: %d vs %d matches", len(qr.Matches), len(plain.Matches))
	}
}

// TestDebugTraceCacheHit: the second identical debug query is answered by
// the result cache — the trace says so and consults no shards.
func TestDebugTraceCacheHit(t *testing.T) {
	sets, _ := workload(300, 0.8, 931)
	ix := Build(sets, 0.5, &Options{Shards: 2, Seed: 19, Workers: 2})
	ix.EnableCache(8)
	ts := httptest.NewServer(NewServer(ix))
	t.Cleanup(ts.Close)

	var first, second queryResponse
	post(t, ts.URL+"/query", queryRequest{Set: sets[2], Debug: true}, &first)
	post(t, ts.URL+"/query", queryRequest{Set: sets[2], Debug: true}, &second)
	if first.Trace == nil || first.Trace.CacheHit {
		t.Fatalf("first trace %+v, want an uncached miss", first.Trace)
	}
	if second.Trace == nil || !second.Trace.CacheHit {
		t.Fatalf("second trace %+v, want a cache hit", second.Trace)
	}
	if len(second.Trace.Shards) != 0 {
		t.Errorf("cache hit consulted shards: %+v", second.Trace.Shards)
	}
	if first.ID != second.ID || first.Sim != second.Sim {
		t.Errorf("cache changed the answer: %+v vs %+v", first, second)
	}
}

// TestSlowQueryLog: with a threshold every real query exceeds, /query
// emits one structured line carrying the breakdown, and the slow-query
// counter advances; without the threshold, nothing is logged.
func TestSlowQueryLog(t *testing.T) {
	sets, _ := workload(300, 0.8, 941)
	ix := Build(sets, 0.5, &Options{Shards: 2, Seed: 23, Workers: 2})
	var buf bytes.Buffer
	srv := NewServerOpts(ix, &ServerOptions{
		SlowQuery: time.Nanosecond,
		Logger:    slog.New(slog.NewTextHandler(&buf, nil)),
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var qr queryResponse
	post(t, ts.URL+"/query", queryRequest{Set: sets[5]}, &qr)
	if !qr.Found {
		t.Fatalf("query response %+v", qr)
	}
	line := buf.String()
	for _, want := range []string{"slow query", "query_size=", "total_ns=", "cache_hit=", "candidates=", "shards="} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query log missing %q in: %s", want, line)
		}
	}
	if got := ix.metrics.slowQueries.Value(); got != 1 {
		t.Errorf("slow query counter = %d, want 1", got)
	}
	// The trace was captured for the log only — not sent to the client.
	if qr.Trace != nil {
		t.Error("slow-query tracing leaked the trace into a non-debug response")
	}

	// A server without the threshold logs nothing for the same traffic.
	var quiet bytes.Buffer
	srv2 := NewServerOpts(ix, &ServerOptions{Logger: slog.New(slog.NewTextHandler(&quiet, nil))})
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)
	post(t, ts2.URL+"/query", queryRequest{Set: sets[5]}, nil)
	if quiet.Len() != 0 {
		t.Errorf("unconfigured server logged: %s", quiet.String())
	}
}

// TestDisableMetrics: DisableMetrics leaves /metrics unregistered while
// the rest of the server works.
func TestDisableMetrics(t *testing.T) {
	sets, _ := workload(100, 0.8, 951)
	ix := Build(sets, 0.5, &Options{Shards: 2, Seed: 29, Workers: 2})
	ts := httptest.NewServer(NewServerOpts(ix, &ServerOptions{DisableMetrics: true}))
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics status %d with metrics disabled, want 404", resp.StatusCode)
	}
	var qr queryResponse
	post(t, ts.URL+"/query", queryRequest{Set: sets[0]}, &qr)
	if !qr.Found {
		t.Errorf("query on a metrics-disabled server: %+v", qr)
	}
}
