package shard

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/snapshot"
)

// Placement: the control plane that turns the static shard-shipping
// substrate (Distribute) into a running fleet. Three latent problems
// follow from one-shot placement — shards sealed after a Distribute stay
// local forever, remote-backed shards can never be compacted, and peers
// retain every key ever shipped to them until an explicit DELETE — and
// all three reduce to the same missing piece: a durable record of what
// this coordinator has shipped where, plus a loop that reconciles it
// against the current ring.
//
// placementState is that record: every (key, peer) pair ever shipped,
// the peers and options of the last Distribute pass, and a pass epoch.
// It is persisted in the manifest, so a restarted coordinator still owns
// (and eventually garbage-collects) the keys of its previous life.
//
// The controller (StartPlacement) is the loop: it re-runs Distribute
// under the recorded options whenever a seal or compaction changes the
// ring — which ships newly sealed and freshly merged shards, and sweeps
// superseded keys off peers — and it probes peer health actively on a
// fixed cadence with per-peer retry backoff, flipping the same
// cps_peer_healthy bit the passive RPC path maintains. With Rebalance
// enabled it also re-ships replicas away from persistently unhealthy
// peers. Every transition preserves the byte-identity contract: shipping
// and recalling move where a shard answers from, never what it answers.

// placementState is the coordinator's record of shipped shards: which
// peers hold which keys, and the parameters of the last placement pass.
// Guarded by its own mutex — it is read by Save and Stats while
// Distribute mutates it.
type placementState struct {
	mu    sync.Mutex
	peers []string
	opts  DistributeOptions
	epoch int
	// shipped maps shard key -> the set of peer bases it was shipped to.
	// Pairs are recorded when an upload begins and removed only when a
	// DELETE against the peer succeeds, so the record errs on the side of
	// "the peer might still hold it".
	shipped map[string]map[string]struct{}
}

// beginPass records the parameters of a placement pass and advances the
// epoch.
func (p *placementState) beginPass(bases []string, opts DistributeOptions) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.peers = append([]string(nil), bases...)
	p.opts = opts
	p.epoch++
}

// recorded returns the peers and options of the last pass (nil peers
// when no pass ever ran).
func (p *placementState) recorded() ([]string, DistributeOptions) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peers, p.opts
}

// record notes that key is (about to be) hosted on peer.
func (p *placementState) record(key, peer string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.shipped == nil {
		p.shipped = make(map[string]map[string]struct{})
	}
	set := p.shipped[key]
	if set == nil {
		set = make(map[string]struct{})
		p.shipped[key] = set
	}
	set[peer] = struct{}{}
}

// forget removes one (key, peer) pair — called only after the peer
// confirmed the eviction.
func (p *placementState) forget(key, peer string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if set := p.shipped[key]; set != nil {
		delete(set, peer)
		if len(set) == 0 {
			delete(p.shipped, key)
		}
	}
}

// pairs snapshots every recorded (key, peer) pair, sorted for
// deterministic sweep order.
func (p *placementState) pairs() [][2]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out [][2]string
	for key, set := range p.shipped {
		for peer := range set {
			out = append(out, [2]string{key, peer})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// stats returns the epoch and the number of distinct tracked keys.
func (p *placementState) stats() (epoch, keys int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch, len(p.shipped)
}

// snapshotState converts the record to its manifest form (nil when no
// placement ever happened — manifests without placement stay as before).
func (p *placementState) snapshotState() *snapshot.PlacementState {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epoch == 0 && len(p.shipped) == 0 {
		return nil
	}
	ps := &snapshot.PlacementState{
		Epoch:     p.epoch,
		Peers:     append([]string(nil), p.peers...),
		Replicas:  p.opts.Replicas,
		KeepLocal: p.opts.KeepLocal,
	}
	for key, set := range p.shipped {
		peers := make([]string, 0, len(set))
		for peer := range set {
			peers = append(peers, peer)
		}
		sort.Strings(peers)
		ps.Shipped = append(ps.Shipped, snapshot.ShippedShard{Key: key, Peers: peers})
	}
	sort.Slice(ps.Shipped, func(i, j int) bool { return ps.Shipped[i].Key < ps.Shipped[j].Key })
	return ps
}

// restore loads the manifest form back — the Load path, so a restarted
// coordinator garbage-collects the keys its previous life shipped once
// it distributes again.
func (p *placementState) restore(ps *snapshot.PlacementState) {
	if ps == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.epoch = ps.Epoch
	p.peers = append([]string(nil), ps.Peers...)
	p.opts = DistributeOptions{Replicas: ps.Replicas, KeepLocal: ps.KeepLocal}
	p.shipped = make(map[string]map[string]struct{}, len(ps.Shipped))
	for _, s := range ps.Shipped {
		set := make(map[string]struct{}, len(s.Peers))
		for _, peer := range s.Peers {
			set[peer] = struct{}{}
		}
		p.shipped[s.Key] = set
	}
}

// placementClient returns the HTTP client placement housekeeping
// (GC deletes, rebalance ships) should use: the recorded Distribute
// client, or the shared default.
func (x *Index) placementClient() *http.Client {
	_, opts := x.placement.recorded()
	if opts.Client != nil {
		return opts.Client
	}
	return defaultRemoteClient
}

// placementGC sweeps superseded hosted shards off peers: every recorded
// (key, peer) pair that the current ring does not reference — because a
// re-distribution shipped new content, a compaction recalled and merged
// the shard, a rebalance moved a replica, or a failed pass orphaned an
// upload — is DELETEd from its peer. A pair is forgotten only when the
// peer confirms, so an unreachable peer's pairs are retried on every
// later sweep; the sweep is idempotent throughout (peer DELETEs are).
// It returns the number of pairs confirmed gone.
func (x *Index) placementGC() int {
	pairs := x.placement.pairs()
	if len(pairs) == 0 {
		return 0
	}
	// Referenced pairs: every replica of every remote-backed ring shard.
	x.mu.RLock()
	ref := make(map[string]map[string]struct{})
	for _, sh := range x.shards {
		r, ok := sh.(*remoteShard)
		if !ok {
			continue
		}
		set := ref[r.key]
		if set == nil {
			set = make(map[string]struct{}, len(r.replicas))
			ref[r.key] = set
		}
		for _, peer := range r.replicas {
			set[peer] = struct{}{}
		}
	}
	x.mu.RUnlock()

	client := x.placementClient()
	deleted := 0
	for _, pr := range pairs {
		key, peer := pr[0], pr[1]
		if set := ref[key]; set != nil {
			if _, live := set[peer]; live {
				continue
			}
		}
		if err := deleteShardSnapshot(client, peer, key); err != nil {
			if m := x.metrics; m != nil {
				m.placementGCErrors.Inc()
			}
			continue
		}
		x.placement.forget(key, peer)
		deleted++
	}
	if deleted > 0 {
		if m := x.metrics; m != nil {
			m.placementDeleted.Add(uint64(deleted))
		}
	}
	return deleted
}

// PlacementOptions configure the background placement controller.
type PlacementOptions struct {
	// Interval is the cadence of unconditional reconciliation passes, a
	// safety net under the event-driven ones (default 30s; negative
	// disables periodic passes, leaving seal/compaction triggers only).
	Interval time.Duration
	// ProbeInterval is the active health-probe cadence (default 5s;
	// negative disables probing).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default 2s).
	ProbeTimeout time.Duration
	// UnhealthyAfter is the number of consecutive probe failures after
	// which a peer's health bit flips false (default 3). Until then the
	// bit is left to the passive RPC path.
	UnhealthyAfter int
	// ProbeBackoffMax caps the per-peer exponential retry backoff a
	// failing peer's probes back off under (default 1m).
	ProbeBackoffMax time.Duration
	// Rebalance re-ships replicas away from peers that stay unhealthy
	// (per UnhealthyAfter) to healthy ones, so replication degrades
	// gracefully instead of silently thinning.
	Rebalance bool
}

func (o *PlacementOptions) withDefaults() PlacementOptions {
	opt := PlacementOptions{}
	if o != nil {
		opt = *o
	}
	if opt.Interval == 0 {
		opt.Interval = 30 * time.Second
	}
	if opt.ProbeInterval == 0 {
		opt.ProbeInterval = 5 * time.Second
	}
	if opt.ProbeTimeout <= 0 {
		opt.ProbeTimeout = 2 * time.Second
	}
	if opt.UnhealthyAfter <= 0 {
		opt.UnhealthyAfter = 3
	}
	if opt.ProbeBackoffMax <= 0 {
		opt.ProbeBackoffMax = time.Minute
	}
	return opt
}

// placementController is the background loop: one goroutine per index
// (single-flight like the auto-compaction goroutine), woken by seal and
// compaction triggers, its own pass ticker, and the probe ticker.
type placementController struct {
	x    *Index
	opt  PlacementOptions
	kick chan struct{}
	stop chan struct{}
	done chan struct{}
	// probeClient is dedicated so probe timeouts never shorten shipping
	// or query deadlines.
	probeClient *http.Client
	// probe holds the controller-goroutine-local per-peer probe state.
	probe map[string]*probeState
}

// probeState is one peer's probe bookkeeping: consecutive failures and
// the capped exponential backoff window before the next attempt.
type probeState struct {
	fails   int
	backoff time.Duration
	next    time.Time
}

// StartPlacement starts the background placement controller against the
// given peers: every seal or compaction triggers a reconciliation pass
// (Distribute under d, which also garbage-collects superseded hosted
// shards), an unconditional pass runs every Interval, and peers are
// health-probed every ProbeInterval. One controller per index; starting
// a second is an error, and StopPlacement stops it.
func (x *Index) StartPlacement(peers []string, d *DistributeOptions, o *PlacementOptions) error {
	bases, err := normalizePeers(peers)
	if err != nil {
		return err
	}
	opts := DistributeOptions{Replicas: 1, KeepLocal: true}
	if d != nil {
		opts = *d
	}
	c := &placementController{
		x:     x,
		opt:   o.withDefaults(),
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		probe: make(map[string]*probeState),
	}
	c.probeClient = &http.Client{Timeout: c.opt.ProbeTimeout}
	if !x.controller.CompareAndSwap(nil, c) {
		return fmt.Errorf("shard: placement controller already running")
	}
	x.placement.mu.Lock()
	x.placement.peers = bases
	x.placement.opts = opts
	x.placement.mu.Unlock()
	// Kick once at start so shards sealed before the controller existed
	// (or recorded state restored by Load) reconcile without waiting for
	// the first tick.
	c.kick <- struct{}{}
	go c.run()
	return nil
}

// StopPlacement stops the controller and waits for its goroutine to
// exit. A no-op when none is running.
func (x *Index) StopPlacement() {
	c := x.controller.Swap(nil)
	if c == nil {
		return
	}
	close(c.stop)
	<-c.done
}

// placementKick nudges the controller (if one runs) to reconcile —
// called after seals and compaction swaps. Non-blocking: a kick landing
// while one is already pending coalesces with it.
func (x *Index) placementKick() {
	if c := x.controller.Load(); c != nil {
		select {
		case c.kick <- struct{}{}:
		default:
		}
	}
}

func (c *placementController) run() {
	defer close(c.done)
	var passC, probeC <-chan time.Time
	if c.opt.Interval > 0 {
		t := time.NewTicker(c.opt.Interval)
		defer t.Stop()
		passC = t.C
	}
	if c.opt.ProbeInterval > 0 {
		t := time.NewTicker(c.opt.ProbeInterval)
		defer t.Stop()
		probeC = t.C
	}
	for {
		select {
		case <-c.stop:
			return
		case <-c.kick:
			c.pass()
			c.retier()
		case <-passC:
			c.pass()
			c.retier()
		case <-probeC:
			c.probePeers()
		}
	}
}

// pass runs one reconciliation: Distribute under the recorded options
// ships every local ring shard (newly sealed ones and compaction-merged
// ones alike) and sweeps superseded keys off peers.
func (c *placementController) pass() {
	x := c.x
	peers, opts := x.placement.recorded()
	if len(peers) == 0 {
		return
	}
	err := x.Distribute(peers, &opts)
	if m := x.metrics; m != nil {
		m.placementPasses.Inc()
		if err != nil {
			m.placementErrors.Inc()
		}
	}
}

// retier runs one auto-tier pass on the controller's reconciliation
// cadence — a no-op unless the index is configured with TierAuto. A
// failed move leaves the shard in its current tier (queries against a
// corrupt cold shard surface the corruption themselves), so the error is
// deliberately not fatal to the controller.
func (c *placementController) retier() {
	c.x.Retier()
}

// probePeers actively checks every recorded peer with a lightweight GET,
// retrying failing peers under capped exponential backoff. The passive
// health bit stays authoritative for flips to healthy (any successful
// RPC or probe); flips to unhealthy need UnhealthyAfter consecutive
// probe failures, so one dropped packet doesn't drain a replica.
func (c *placementController) probePeers() {
	x := c.x
	peers, opts := x.placement.recorded()
	now := time.Now()
	var unhealthy []string
	for _, base := range peers {
		st := c.probe[base]
		if st == nil {
			st = &probeState{}
			c.probe[base] = st
		}
		if now.Before(st.next) {
			if st.fails >= c.opt.UnhealthyAfter {
				unhealthy = append(unhealthy, base)
			}
			continue
		}
		pm := x.metrics.peer(base)
		err := probePeer(c.probeClient, base)
		if pm != nil {
			pm.probes.Inc()
		}
		if err == nil {
			st.fails, st.backoff, st.next = 0, 0, time.Time{}
			if pm != nil {
				pm.healthy.Store(true)
			}
			continue
		}
		st.fails++
		if pm != nil {
			pm.probeFailures.Inc()
		}
		if st.backoff == 0 {
			st.backoff = c.opt.ProbeInterval
		} else {
			st.backoff *= 2
		}
		if st.backoff > c.opt.ProbeBackoffMax {
			st.backoff = c.opt.ProbeBackoffMax
		}
		st.next = now.Add(st.backoff)
		if st.fails >= c.opt.UnhealthyAfter {
			if pm != nil {
				pm.healthy.Store(false)
			}
			unhealthy = append(unhealthy, base)
		}
	}
	if c.opt.Rebalance && len(unhealthy) > 0 {
		bad := make(map[string]bool, len(unhealthy))
		for _, p := range unhealthy {
			bad[p] = true
		}
		x.rebalanceAway(bad, peers, opts)
	}
}

// probePeer is one active health check: a GET of the peer's liveness
// endpoint. Any 200 counts — the probe asks "is the process serving",
// not "is its own ring ready".
func probePeer(client *http.Client, base string) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s/healthz: %s: %s", base, resp.Status, readErrBody(resp.Body))
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	return nil
}

// rebalanceAway re-ships replicas held by persistently unhealthy peers
// to healthy ones: for each remote-backed shard with a bad replica, the
// verified container bytes are recovered (local copy or live-replica
// fetch-back), shipped to replacement peers, and the ring entry is
// swapped for one with the new replica list — same key, seed, checksum
// and id map, so query answers are untouched and the swap needs no
// version bump. The bad peer's pair goes unreferenced and the next GC
// sweep retires it (retrying until the peer is reachable again). Shards
// whose bytes cannot be recovered right now are skipped, not failed —
// the next probe cycle retries.
func (x *Index) rebalanceAway(bad map[string]bool, peers []string, opts DistributeOptions) int {
	var good []string
	for _, p := range peers {
		if !bad[p] {
			good = append(good, p)
		}
	}
	if len(good) == 0 {
		return 0
	}
	client := opts.Client
	if client == nil {
		client = defaultRemoteClient
	}

	// Ring entries are replaced only under compactMu (the compaction and
	// distribution invariant), which also keeps victim pointer-identity
	// stable for any concurrent compaction pass.
	x.compactMu.Lock()
	defer x.compactMu.Unlock()
	defer x.placementGC()
	x.mu.RLock()
	shards := append([]shardBackend(nil), x.shards...)
	x.mu.RUnlock()

	swap := make(map[shardBackend]shardBackend)
	moved := 0
	for _, sh := range shards {
		r, ok := sh.(*remoteShard)
		if !ok {
			continue
		}
		keep := make([]string, 0, len(r.replicas))
		for _, rep := range r.replicas {
			if !bad[rep] {
				keep = append(keep, rep)
			}
		}
		if len(keep) == len(r.replicas) {
			continue
		}
		next := keep
		for _, g := range good {
			if len(next) >= len(r.replicas) {
				break
			}
			if !containsStr(next, g) {
				next = append(next, g)
			}
		}
		if len(next) == 0 || sliceEq(next, keep) {
			// No healthy peer can take the lost replica (all already hold
			// it); leave the shard on its thinned list.
			continue
		}
		raw, err := r.fetchSnapshot()
		if err != nil {
			continue
		}
		shipped := true
		for _, peer := range next {
			if containsStr(r.replicas, peer) {
				continue // already hosts it
			}
			x.placement.record(r.key, peer)
			if err := shipShard(client, peer, r.key, r.seed, len(r.ids), r.total, raw); err != nil {
				shipped = false
				break
			}
			x.metrics.peer(peer)
			if m := x.metrics; m != nil {
				m.placementShipped.Inc()
			}
		}
		if !shipped {
			continue
		}
		nr := &remoteShard{
			key:      r.key,
			seed:     r.seed,
			crc:      r.crc,
			ids:      r.ids,
			total:    r.total,
			replicas: next,
			local:    r.local,
			client:   r.client,
			copts:    r.copts,
			metrics:  r.metrics,
		}
		swap[sh] = nr
		moved++
	}
	if len(swap) == 0 {
		return 0
	}
	x.mu.Lock()
	ring := make([]shardBackend, len(x.shards))
	for i, sh := range x.shards {
		if nr, ok := swap[sh]; ok {
			ring[i] = nr
		} else {
			ring[i] = sh
		}
	}
	x.shards = ring
	x.generation++
	x.mu.Unlock()
	if m := x.metrics; m != nil {
		m.placementRebalanced.Add(uint64(moved))
	}
	return moved
}

func containsStr(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func sliceEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
