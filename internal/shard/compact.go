package shard

import (
	"sort"
	"time"

	"repro/internal/cpindex"
	"repro/internal/snapshot"
)

// Compaction: the background maintenance pass that keeps a long-running
// index from degrading. Every seal appends a small shard to the ring and
// every delete against a sealed shard leaves a tombstone filtered on each
// query — left alone, fan-out and memory grow monotonically (the LSM
// "many small sealed shards" hazard). Compact selects the eligible shards
// — small ones, and any shard whose tombstone ratio crossed the threshold
// — rebuilds them into one merged shard entirely outside the index lock
// on the shared execution layer, then swaps it into the ring atomically
// under a generation bump. Queries never block: in-flight queries finish
// against their snapshot of the old ring, and a query that starts during
// the rebuild simply sees the old shards.
//
// The rewrite preserves the indexed content exactly: global ids are kept
// (the merged shard carries the same local→global map entries, re-sorted
// by global id), live sets are copied verbatim, and only sets that were
// already tombstoned — and therefore already invisible to every query —
// are dropped. Their tombstones retire with them, and the ids join the
// dropped set so a later Delete of the same id stays a no-op. In exact
// mode (LeafSize at or above every shard size) query results are
// therefore byte-identical before and after a pass — the model-based
// harness in the root package pins this across partition schemes, shard
// counts and worker counts. At approximate LeafSize the merged shard's
// fresh seed draws different randomized tries, so individual results can
// shift within recall noise, exactly as rebuilding any index would.

// CompactResult reports what one Compact pass did.
type CompactResult struct {
	// Merged is the number of ring shards removed or rewritten; 0 means
	// the policy found nothing eligible and the ring is unchanged.
	Merged int `json:"merged"`
	// Sets is the live set count of the merged shard (0 when every
	// victim entry was tombstoned and no merged shard was built).
	Sets int `json:"sets"`
	// Reclaimed is the number of tombstoned entries physically dropped;
	// their tombstones are retired permanently.
	Reclaimed int `json:"reclaimed"`
	// Generation is the ring generation after the swap.
	Generation int `json:"generation"`
}

// Compact runs one compaction pass and reports what it did. Passes are
// serialized per index; queries, appends and saves proceed concurrently
// throughout (the rebuild holds no index lock — only the final swap takes
// the write lock briefly). The side buffer is not touched: buffered
// appends reach the ring through seals, which already reclaim their
// deleted entries.
func (x *Index) Compact() CompactResult {
	start := time.Now()
	res := x.compact()
	if m := x.metrics; m != nil {
		m.compactLat.Observe(time.Since(start))
		m.compactMerged.Add(uint64(res.Merged))
		m.compactReclaimed.Add(uint64(res.Reclaimed))
	}
	return res
}

func (x *Index) compact() CompactResult {
	x.compactMu.Lock()
	defer x.compactMu.Unlock()

	selected, tombs := x.selectVictims()
	// Remote-backed victims are recalled first: their verified container
	// bytes come back over the same fetch-back path Save uses (local copy
	// when one was kept, otherwise a checksum- and decode-verified GET
	// from a live replica), so the merge reads exactly the structure the
	// coordinator shipped. A victim whose bytes cannot be recovered right
	// now drops out of the pass — the next pass retries — and the
	// remaining selection is re-checked against the policy so a lone
	// survivor with nothing to reclaim isn't churned.
	victims := x.materializeVictims(selected, tombs)
	if len(victims) == 0 {
		x.mu.RLock()
		gen := x.generation
		x.mu.RUnlock()
		return CompactResult{Generation: gen}
	}

	// Gather the victims' live entries, re-sorted by global id so the
	// merged shard's leaf order — and therefore Query's within-shard
	// tie-break toward the lowest id — is independent of ring order.
	subs := make([]*subIndex, len(victims))
	for i, v := range victims {
		subs[i] = v.sub
	}
	ids, sets, dropped := collectLive(subs, tombs)

	// Build the merged shard off-lock. It claims the next seed slot like
	// a seal does, so its seed is unique for the index's lifetime and
	// Save/Load cross-checks keep working. An all-tombstoned selection
	// builds nothing: the victims simply leave the ring.
	var merged *subIndex
	if len(ids) > 0 {
		x.mu.Lock()
		slot := x.nextSlot
		x.nextSlot++
		x.mu.Unlock()
		ix := cpindex.Build(sets, x.lambda, &cpindex.Options{
			Trees:    x.opt.Trees,
			LeafSize: x.opt.LeafSize,
			T:        x.opt.T,
			Seed:     SeedFor(x.opt.Seed, slot),
			Workers:  x.opt.Workers,
			Layout:   x.opt.Layout,
		})
		x.attachCounters(ix)
		merged = &subIndex{ix: ix, ids: ids}
	}

	// Swap. Between selection and here the ring can only have grown
	// (seals append; removal and replacement happen only under compactMu,
	// which we hold), so every victim is still present and pointer
	// identity selects exactly them. The tombstones of dropped entries
	// are still in x.tombs for the same reason — only this pass may
	// retire them.
	x.mu.Lock()
	gone := make(map[shardBackend]struct{}, len(victims))
	remote := 0
	for _, v := range victims {
		gone[v.backend] = struct{}{}
		if _, ok := v.backend.(*remoteShard); ok {
			remote++
		}
	}
	ring := make([]shardBackend, 0, len(x.shards)-len(victims)+1)
	for _, sh := range x.shards {
		if _, dead := gone[sh]; !dead {
			ring = append(ring, sh)
		}
	}
	if merged != nil {
		ring = append(ring, merged)
	}
	x.shards = ring
	if len(dropped) > 0 {
		// Copy-on-write like Delete: in-flight queries may hold the old
		// map (they would filter the dropped ids anyway, but must never
		// see a map mutate under them).
		next := make(map[int]struct{}, len(x.tombs))
		for id := range x.tombs {
			next[id] = struct{}{}
		}
		for _, id := range dropped {
			delete(next, id)
		}
		if len(next) == 0 {
			x.tombs = nil
		} else {
			x.tombs = next
		}
		x.markDroppedLocked(dropped)
	}
	x.generation++
	x.version.Add(1)
	x.compactions++
	x.compactedShards += len(victims)
	res := CompactResult{
		Merged:     len(victims),
		Sets:       len(ids),
		Reclaimed:  len(dropped),
		Generation: x.generation,
	}
	x.mu.Unlock()
	if remote > 0 {
		// Recalled shards left the ring, so their hosted copies are now
		// unreferenced: sweep them off the peers right away (best-effort;
		// the next pass retries any the sweep couldn't reach).
		x.placementGC()
	}
	// The merged shard is local; nudge the controller (if one runs) to
	// re-ship it under the recorded placement.
	x.placementKick()
	return res
}

// compactVictim pairs a ring entry selected for compaction with its
// materialized local structure: the subIndex itself for local shards,
// the retained local copy or the verified fetched-back decode for
// remote-backed ones.
type compactVictim struct {
	backend shardBackend
	sub     *subIndex
}

// materializeVictims recalls every remote-backed victim's structure and
// re-checks the selection policy over the victims that materialized:
// fetch failures drop victims, and a selection reduced below two shards
// with nothing to reclaim is abandoned rather than churned.
func (x *Index) materializeVictims(victims []shardBackend, tombs map[int]struct{}) []compactVictim {
	out := make([]compactVictim, 0, len(victims))
	for _, v := range victims {
		switch sh := v.(type) {
		case *subIndex:
			out = append(out, compactVictim{backend: v, sub: sh})
		case *coldShard:
			// A cold victim decodes from its retained container bytes —
			// the same path a fetched-back remote shard takes. A decode
			// failure (corrupt mapping) drops the victim, like a fetch
			// failure; queries against it will surface the corruption.
			sub, err := decodeShardBytes(sh.raw, snapshot.ShardEntry{Seed: sh.seed, Sets: len(sh.ids)}, sh.total)
			if err != nil {
				continue
			}
			out = append(out, compactVictim{backend: v, sub: sub})
		case *remoteShard:
			if sh.local != nil {
				out = append(out, compactVictim{backend: v, sub: sh.local})
				continue
			}
			raw, err := sh.fetchSnapshot()
			if err != nil {
				continue
			}
			sub, err := decodeShardBytes(raw, snapshot.ShardEntry{Seed: sh.seed, Sets: len(sh.ids)}, sh.total)
			if err != nil {
				continue
			}
			out = append(out, compactVictim{backend: v, sub: sub})
		}
	}
	if len(out) == len(victims) {
		return out
	}
	// Some victims failed to materialize; keep the pass only if what
	// remains still merges usefully (mirrors selectVictims' final rule).
	if len(out) >= 2 {
		return out
	}
	dead := 0
	for _, v := range out {
		for _, id := range v.sub.ids {
			if _, d := tombs[id]; d {
				dead++
			}
		}
	}
	if dead == 0 {
		return nil
	}
	return out
}

// selectVictims applies the compaction policy to a read snapshot of the
// ring: every shard at or below CompactSmall is a merge candidate
// (merged only when at least CompactMinShards of them exist, since fewer
// cannot shrink the ring), and any shard whose tombstone ratio reaches
// CompactTombstoneRatio is rewritten regardless of size. A single
// candidate with nothing to reclaim is left alone — rewriting it would
// churn bytes without improving anything.
//
// Remote-backed shards are eligible like local ones: the policy reads
// only the coordinator-side id map, and the merge recalls their
// structure over the verified fetch-back path (see materializeVictims).
// The recalled keys go unreferenced when the merged shard swaps in, and
// the placement GC sweep retires them from the peers.
func (x *Index) selectVictims() ([]shardBackend, map[int]struct{}) {
	x.mu.RLock()
	shards := x.shards
	tombs := x.tombs
	x.mu.RUnlock()

	// withDefaults (applied on both the Build and Load paths) guarantees
	// the policy knobs are set.
	small := x.opt.CompactSmall
	minShards := x.opt.CompactMinShards
	ratio := x.opt.CompactTombstoneRatio

	var smalls, heavies []shardBackend
	dead := 0
	for _, sh := range shards {
		n := sh.size()
		shardDead := 0
		// The id scan only pays when deletes exist; the common post-seal
		// pass of a delete-free service stays O(shards).
		if len(tombs) > 0 {
			for _, id := range sh.globalIDs() {
				if _, d := tombs[id]; d {
					shardDead++
				}
			}
		}
		switch {
		case n > 0 && float64(shardDead)/float64(n) >= ratio:
			heavies = append(heavies, sh)
			dead += shardDead
		case n <= small:
			smalls = append(smalls, sh)
			dead += shardDead
		}
	}
	victims := heavies
	if len(smalls) >= minShards {
		victims = append(victims, smalls...)
	}
	if len(victims) == 1 && dead == 0 {
		return nil, tombs
	}
	return victims, tombs
}

// collectLive gathers the victims' non-tombstoned entries sorted by
// global id, plus the ids of the tombstoned entries being dropped.
func collectLive(victims []*subIndex, tombs map[int]struct{}) (ids []int, sets [][]uint32, dropped []int) {
	total := 0
	for _, v := range victims {
		total += len(v.ids)
	}
	ids = make([]int, 0, total)
	order := make([]int, 0, total) // index into flat below, sorted by id
	flat := make([][]uint32, 0, total)
	for _, v := range victims {
		vsets := v.ix.Sets()
		for i, id := range v.ids {
			if _, d := tombs[id]; d {
				dropped = append(dropped, id)
				continue
			}
			ids = append(ids, id)
			order = append(order, len(flat))
			flat = append(flat, vsets[i])
		}
	}
	sort.Sort(&byGlobalID{ids: ids, order: order})
	sets = make([][]uint32, len(order))
	for i, f := range order {
		sets[i] = flat[f]
	}
	sort.Ints(dropped)
	return ids, sets, dropped
}

// byGlobalID co-sorts the id list and the set-permutation by global id.
type byGlobalID struct {
	ids   []int
	order []int
}

func (s *byGlobalID) Len() int           { return len(s.ids) }
func (s *byGlobalID) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *byGlobalID) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.order[i], s.order[j] = s.order[j], s.order[i]
}

// compactAsync runs Compact in a background goroutine — the
// seal-triggered auto-compaction path. At most one goroutine is in
// flight; triggers that arrive while a pass is running are coalesced
// into one follow-up pass rather than dropped, so a shard sealed during
// a running pass is compacted even if append traffic then stops.
func (x *Index) compactAsync() {
	x.compactPending.Store(true)
	if !x.autoCompacting.CompareAndSwap(false, true) {
		return // the in-flight goroutine will observe compactPending
	}
	go func() {
		for {
			for x.compactPending.CompareAndSwap(true, false) {
				x.Compact()
			}
			x.autoCompacting.Store(false)
			// A trigger landing between the last CompareAndSwap and the
			// Store above saw autoCompacting still true and returned; it
			// must not be lost. Re-acquire and loop if one did — unless a
			// newer trigger's own CompareAndSwap won, in which case its
			// goroutine owns the pending flag now.
			if !x.compactPending.Load() || !x.autoCompacting.CompareAndSwap(false, true) {
				return
			}
		}
	}()
}
