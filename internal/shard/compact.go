package shard

import (
	"sort"
	"time"

	"repro/internal/cpindex"
)

// Compaction: the background maintenance pass that keeps a long-running
// index from degrading. Every seal appends a small shard to the ring and
// every delete against a sealed shard leaves a tombstone filtered on each
// query — left alone, fan-out and memory grow monotonically (the LSM
// "many small sealed shards" hazard). Compact selects the eligible shards
// — small ones, and any shard whose tombstone ratio crossed the threshold
// — rebuilds them into one merged shard entirely outside the index lock
// on the shared execution layer, then swaps it into the ring atomically
// under a generation bump. Queries never block: in-flight queries finish
// against their snapshot of the old ring, and a query that starts during
// the rebuild simply sees the old shards.
//
// The rewrite preserves the indexed content exactly: global ids are kept
// (the merged shard carries the same local→global map entries, re-sorted
// by global id), live sets are copied verbatim, and only sets that were
// already tombstoned — and therefore already invisible to every query —
// are dropped. Their tombstones retire with them, and the ids join the
// dropped set so a later Delete of the same id stays a no-op. In exact
// mode (LeafSize at or above every shard size) query results are
// therefore byte-identical before and after a pass — the model-based
// harness in the root package pins this across partition schemes, shard
// counts and worker counts. At approximate LeafSize the merged shard's
// fresh seed draws different randomized tries, so individual results can
// shift within recall noise, exactly as rebuilding any index would.

// CompactResult reports what one Compact pass did.
type CompactResult struct {
	// Merged is the number of ring shards removed or rewritten; 0 means
	// the policy found nothing eligible and the ring is unchanged.
	Merged int `json:"merged"`
	// Sets is the live set count of the merged shard (0 when every
	// victim entry was tombstoned and no merged shard was built).
	Sets int `json:"sets"`
	// Reclaimed is the number of tombstoned entries physically dropped;
	// their tombstones are retired permanently.
	Reclaimed int `json:"reclaimed"`
	// Generation is the ring generation after the swap.
	Generation int `json:"generation"`
}

// Compact runs one compaction pass and reports what it did. Passes are
// serialized per index; queries, appends and saves proceed concurrently
// throughout (the rebuild holds no index lock — only the final swap takes
// the write lock briefly). The side buffer is not touched: buffered
// appends reach the ring through seals, which already reclaim their
// deleted entries.
func (x *Index) Compact() CompactResult {
	start := time.Now()
	res := x.compact()
	if m := x.metrics; m != nil {
		m.compactLat.Observe(time.Since(start))
		m.compactMerged.Add(uint64(res.Merged))
		m.compactReclaimed.Add(uint64(res.Reclaimed))
	}
	return res
}

func (x *Index) compact() CompactResult {
	x.compactMu.Lock()
	defer x.compactMu.Unlock()

	victims, tombs := x.selectVictims()
	if len(victims) == 0 {
		x.mu.RLock()
		gen := x.generation
		x.mu.RUnlock()
		return CompactResult{Generation: gen}
	}

	// Gather the victims' live entries, re-sorted by global id so the
	// merged shard's leaf order — and therefore Query's within-shard
	// tie-break toward the lowest id — is independent of ring order.
	ids, sets, dropped := collectLive(victims, tombs)

	// Build the merged shard off-lock. It claims the next seed slot like
	// a seal does, so its seed is unique for the index's lifetime and
	// Save/Load cross-checks keep working. An all-tombstoned selection
	// builds nothing: the victims simply leave the ring.
	var merged *subIndex
	if len(ids) > 0 {
		x.mu.Lock()
		slot := x.nextSlot
		x.nextSlot++
		x.mu.Unlock()
		ix := cpindex.Build(sets, x.lambda, &cpindex.Options{
			Trees:    x.opt.Trees,
			LeafSize: x.opt.LeafSize,
			T:        x.opt.T,
			Seed:     SeedFor(x.opt.Seed, slot),
			Workers:  x.opt.Workers,
			Layout:   x.opt.Layout,
		})
		x.attachCounters(ix)
		merged = &subIndex{ix: ix, ids: ids}
	}

	// Swap. Between selection and here the ring can only have grown
	// (seals append; removal happens only under compactMu, which we
	// hold), so every victim is still present and pointer identity
	// selects exactly them. The tombstones of dropped entries are still
	// in x.tombs for the same reason — only this pass may retire them.
	x.mu.Lock()
	defer x.mu.Unlock()
	gone := make(map[shardBackend]struct{}, len(victims))
	for _, v := range victims {
		gone[v] = struct{}{}
	}
	ring := make([]shardBackend, 0, len(x.shards)-len(victims)+1)
	for _, sh := range x.shards {
		if _, dead := gone[sh]; !dead {
			ring = append(ring, sh)
		}
	}
	if merged != nil {
		ring = append(ring, merged)
	}
	x.shards = ring
	if len(dropped) > 0 {
		// Copy-on-write like Delete: in-flight queries may hold the old
		// map (they would filter the dropped ids anyway, but must never
		// see a map mutate under them).
		next := make(map[int]struct{}, len(x.tombs))
		for id := range x.tombs {
			next[id] = struct{}{}
		}
		for _, id := range dropped {
			delete(next, id)
		}
		if len(next) == 0 {
			x.tombs = nil
		} else {
			x.tombs = next
		}
		x.markDroppedLocked(dropped)
	}
	x.generation++
	x.version.Add(1)
	x.compactions++
	x.compactedShards += len(victims)
	return CompactResult{
		Merged:     len(victims),
		Sets:       len(ids),
		Reclaimed:  len(dropped),
		Generation: x.generation,
	}
}

// selectVictims applies the compaction policy to a read snapshot of the
// ring: every shard at or below CompactSmall is a merge candidate
// (merged only when at least CompactMinShards of them exist, since fewer
// cannot shrink the ring), and any shard whose tombstone ratio reaches
// CompactTombstoneRatio is rewritten regardless of size. A single
// candidate with nothing to reclaim is left alone — rewriting it would
// churn bytes without improving anything.
func (x *Index) selectVictims() ([]*subIndex, map[int]struct{}) {
	x.mu.RLock()
	shards := x.shards
	tombs := x.tombs
	x.mu.RUnlock()

	// withDefaults (applied on both the Build and Load paths) guarantees
	// the policy knobs are set.
	small := x.opt.CompactSmall
	minShards := x.opt.CompactMinShards
	ratio := x.opt.CompactTombstoneRatio

	var smalls, heavies []*subIndex
	dead := 0
	for _, sh := range shards {
		sub, ok := sh.(*subIndex)
		if !ok {
			// Remote-backed shards are never compaction victims: their
			// sets live on peers, and rewriting them would mean fetching
			// the shard back first. They are full-size primaries by
			// construction (only ring shards present at Distribute time
			// become remote), so the small-shard pressure compaction
			// relieves comes from post-distribution seals, which stay
			// local until the next Distribute.
			continue
		}
		n := sub.ix.Len()
		shardDead := 0
		// The id scan only pays when deletes exist; the common post-seal
		// pass of a delete-free service stays O(shards).
		if len(tombs) > 0 {
			for _, id := range sub.ids {
				if _, d := tombs[id]; d {
					shardDead++
				}
			}
		}
		switch {
		case n > 0 && float64(shardDead)/float64(n) >= ratio:
			heavies = append(heavies, sub)
			dead += shardDead
		case n <= small:
			smalls = append(smalls, sub)
			dead += shardDead
		}
	}
	victims := heavies
	if len(smalls) >= minShards {
		victims = append(victims, smalls...)
	}
	if len(victims) == 1 && dead == 0 {
		return nil, tombs
	}
	return victims, tombs
}

// collectLive gathers the victims' non-tombstoned entries sorted by
// global id, plus the ids of the tombstoned entries being dropped.
func collectLive(victims []*subIndex, tombs map[int]struct{}) (ids []int, sets [][]uint32, dropped []int) {
	total := 0
	for _, v := range victims {
		total += len(v.ids)
	}
	ids = make([]int, 0, total)
	order := make([]int, 0, total) // index into flat below, sorted by id
	flat := make([][]uint32, 0, total)
	for _, v := range victims {
		vsets := v.ix.Sets()
		for i, id := range v.ids {
			if _, d := tombs[id]; d {
				dropped = append(dropped, id)
				continue
			}
			ids = append(ids, id)
			order = append(order, len(flat))
			flat = append(flat, vsets[i])
		}
	}
	sort.Sort(&byGlobalID{ids: ids, order: order})
	sets = make([][]uint32, len(order))
	for i, f := range order {
		sets[i] = flat[f]
	}
	sort.Ints(dropped)
	return ids, sets, dropped
}

// byGlobalID co-sorts the id list and the set-permutation by global id.
type byGlobalID struct {
	ids   []int
	order []int
}

func (s *byGlobalID) Len() int           { return len(s.ids) }
func (s *byGlobalID) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *byGlobalID) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.order[i], s.order[j] = s.order[j], s.order[i]
}

// compactAsync runs Compact in a background goroutine — the
// seal-triggered auto-compaction path. At most one goroutine is in
// flight; triggers that arrive while a pass is running are coalesced
// into one follow-up pass rather than dropped, so a shard sealed during
// a running pass is compacted even if append traffic then stops.
func (x *Index) compactAsync() {
	x.compactPending.Store(true)
	if !x.autoCompacting.CompareAndSwap(false, true) {
		return // the in-flight goroutine will observe compactPending
	}
	go func() {
		for {
			for x.compactPending.CompareAndSwap(true, false) {
				x.Compact()
			}
			x.autoCompacting.Store(false)
			// A trigger landing between the last CompareAndSwap and the
			// Store above saw autoCompacting still true and returned; it
			// must not be lost. Re-acquire and loop if one did — unless a
			// newer trigger's own CompareAndSwap won, in which case its
			// goroutine owns the pending flag now.
			if !x.compactPending.Load() || !x.autoCompacting.CompareAndSwap(false, true) {
				return
			}
		}
	}()
}
