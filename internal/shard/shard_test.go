package shard

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/cpindex"
	"repro/internal/datagen"
	"repro/internal/intset"
)

func sortMatches(ms []cpindex.Match) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
}

// workload returns a collection with planted near-duplicate pairs.
func workload(n int, j float64, seed uint64) ([][]uint32, [][2]int) {
	ds := datagen.Uniform(n, 25, 50000, seed)
	planted := datagen.PlantPairs(ds, 40, j, seed+1)
	return ds.Sets, planted
}

func equalMatches(t *testing.T, a, b []cpindex.Match) bool {
	t.Helper()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedMatchesStandaloneShards pins the subsystem's core contract:
// a sharded index is exactly the union of standalone cpindex builds over
// its partitions with the per-shard seeds from SeedFor — the fan-out and
// merge machinery adds nothing and loses nothing.
func TestShardedMatchesStandaloneShards(t *testing.T) {
	sets, _ := workload(1200, 0.8, 101)
	const lambda, shards = 0.5, 3
	const seed = 7
	x := Build(sets, lambda, &Options{Shards: shards, Seed: seed, Workers: 4})

	ranges := ContiguousRanges(len(sets), shards)
	standalone := make([]*cpindex.Index, shards)
	for k, r := range ranges {
		standalone[k] = cpindex.Build(sets[r[0]:r[1]], lambda, &cpindex.Options{Seed: SeedFor(seed, k)})
	}

	for qi := 0; qi < 200; qi++ {
		q := sets[qi]
		var want []cpindex.Match
		for k, r := range ranges {
			for _, m := range standalone[k].QueryAll(q) {
				want = append(want, cpindex.Match{ID: m.ID + r[0], Sim: m.Sim})
			}
		}
		sortMatches(want)
		if got := mustQueryAll(t, x, q); !equalMatches(t, got, want) {
			t.Fatalf("query %d: sharded QueryAll %v != standalone merge %v", qi, got, want)
		}
	}
}

// TestQueryBatchDeterministic checks the determinism contract: for every
// shard count, the same seed and options yield identical batch results at
// any worker count, and batches equal per-query QueryAll.
func TestQueryBatchDeterministic(t *testing.T) {
	sets, _ := workload(900, 0.8, 103)
	queries := sets[:300]
	for _, shards := range []int{1, 2, 3, 5} {
		var base [][]cpindex.Match
		for _, workers := range []int{0, 1, 2, 4, 8} {
			x := Build(sets, 0.5, &Options{Shards: shards, Seed: 11, Workers: workers})
			got := mustQueryBatch(t, x, queries)
			if len(got) != len(queries) {
				t.Fatalf("shards=%d workers=%d: %d results for %d queries", shards, workers, len(got), len(queries))
			}
			if base == nil {
				base = got
				// The batch must agree with one-at-a-time queries.
				for i, q := range queries[:50] {
					if !equalMatches(t, got[i], mustQueryAll(t, x, q)) {
						t.Fatalf("shards=%d: batch result %d differs from QueryAll", shards, i)
					}
				}
				continue
			}
			for i := range got {
				if !equalMatches(t, got[i], base[i]) {
					t.Fatalf("shards=%d workers=%d: query %d differs from sequential run", shards, workers, i)
				}
			}
		}
	}
}

func TestQueryBestAcrossShards(t *testing.T) {
	sets, planted := workload(1500, 0.85, 105)
	x := Build(sets, 0.6, &Options{Shards: 4, Seed: 13, Workers: 2})
	found := 0
	for _, p := range planted {
		q := sets[p[0]]
		if intset.Jaccard(q, sets[p[1]]) < 0.6 {
			continue
		}
		id, sim, ok := mustQuery(t, x, q)
		if !ok {
			t.Fatalf("query %d found nothing despite an indexed neighbor (itself)", p[0])
		}
		if sim < 0.6 || intset.Jaccard(q, sets[id]) != sim {
			t.Fatalf("query %d: invalid result id=%d sim=%v", p[0], id, sim)
		}
		found++
	}
	if found == 0 {
		t.Fatal("no valid planted queries")
	}
}

func TestHashPartitionCoversAllIDs(t *testing.T) {
	sets, _ := workload(800, 0.8, 107)
	x := Build(sets, 0.7, &Options{Shards: 5, Partition: PartitionHash, Seed: 17})
	st := x.Stats()
	if st.Shards != 5 {
		t.Fatalf("got %d shards, want 5", st.Shards)
	}
	total := 0
	for _, n := range st.ShardSizes {
		total += n
	}
	if total != len(sets) {
		t.Fatalf("shard sizes sum to %d, want %d", total, len(sets))
	}
	// Every set must be reachable under its global id: self-queries reach
	// identical sets with certainty.
	for i := 0; i < len(sets); i += 7 {
		ms := mustQueryAll(t, x, sets[i])
		self := false
		for _, m := range ms {
			if m.ID == i {
				self = true
			}
			if intset.Jaccard(sets[i], sets[m.ID]) != m.Sim {
				t.Fatalf("global id mapping broken: id %d sim %v", m.ID, m.Sim)
			}
		}
		if !self {
			t.Fatalf("self-query %d did not find itself", i)
		}
	}
}

func TestAddBufferSealAndQuery(t *testing.T) {
	sets, _ := workload(600, 0.8, 109)
	extra, _ := workload(150, 0.8, 211)
	x := Build(sets, 0.6, &Options{Shards: 2, Seed: 19, MergeThreshold: 100, Workers: 2})

	// Buffered appends are findable immediately, under their global ids.
	ids := x.Add(extra[:60])
	for i, id := range ids {
		if id != len(sets)+i {
			t.Fatalf("global id %d, want %d", id, len(sets)+i)
		}
	}
	st := x.Stats()
	if st.Shards != 2 || st.Buffered != 60 || st.Merges != 0 {
		t.Fatalf("unexpected stats after buffer: %+v", st)
	}
	for i, q := range extra[:60] {
		id, sim, ok := mustQuery(t, x, q)
		if !ok || sim != 1.0 || id != len(sets)+i {
			t.Fatalf("buffered self-query %d: id=%d sim=%v ok=%v", i, id, sim, ok)
		}
	}

	// Crossing the threshold seals the buffer into a third shard.
	x.Add(extra[60:])
	st = x.Stats()
	if st.Shards != 3 || st.Buffered != 0 || st.Merges != 1 {
		t.Fatalf("unexpected stats after seal: %+v", st)
	}
	if st.Sets != len(sets)+len(extra) {
		t.Fatalf("total %d, want %d", st.Sets, len(sets)+len(extra))
	}
	// Sealed appends stay findable (identical sets share every signature
	// position, so self-queries reach their leaves with certainty).
	for i, q := range extra {
		found := false
		for _, m := range mustQueryAll(t, x, q) {
			if m.ID == len(sets)+i {
				found = true
			}
		}
		if !found {
			t.Fatalf("sealed self-query %d lost", i)
		}
	}

	// Flush seals a fresh partial buffer on demand.
	x.Add(extra[:10])
	x.Flush()
	st = x.Stats()
	if st.Shards != 4 || st.Buffered != 0 || st.Merges != 2 {
		t.Fatalf("unexpected stats after flush: %+v", st)
	}
}

// TestAddDeterministicAcrossWorkers: the same build + Add sequence yields
// identical results for any worker count, including across a seal.
func TestAddDeterministicAcrossWorkers(t *testing.T) {
	sets, _ := workload(500, 0.8, 113)
	extra, _ := workload(120, 0.8, 223)
	var base [][]cpindex.Match
	for _, workers := range []int{0, 3, 8} {
		x := Build(sets, 0.5, &Options{Shards: 3, Seed: 23, MergeThreshold: 80, Workers: workers})
		x.Add(extra)
		got := mustQueryBatch(t, x, append(sets[:100:100], extra...))
		if base == nil {
			base = got
			continue
		}
		for i := range got {
			if !equalMatches(t, got[i], base[i]) {
				t.Fatalf("workers=%d: query %d differs after Add", workers, i)
			}
		}
	}
}

func TestConcurrentAddAndQuery(t *testing.T) {
	sets, _ := workload(400, 0.8, 115)
	extra, _ := workload(200, 0.8, 227)
	x := Build(sets, 0.6, &Options{Shards: 2, Seed: 29, MergeThreshold: 50, Workers: 2})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := range extra {
			x.Add(extra[i : i+1])
		}
	}()
	go func() {
		defer wg.Done()
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < len(sets); i += 5 {
				if _, sim, ok := mustQuery(t, x, sets[i]); !ok || sim < 0.6 {
					t.Errorf("self-query %d failed during concurrent adds", i)
					return
				}
			}
			mustQueryBatch(t, x, sets[:50])
			x.Stats()
		}
	}()
	wg.Wait()
	if st := x.Stats(); st.Sets != len(sets)+len(extra) || st.Merges < 3 {
		t.Fatalf("unexpected final stats: %+v", st)
	}
}

func TestEdgeCases(t *testing.T) {
	// Empty collection: queries miss, Add still works.
	x := Build(nil, 0.5, &Options{Shards: 4, Seed: 31})
	if _, _, ok := mustQuery(t, x, []uint32{1, 2, 3}); ok {
		t.Error("query against empty index found a neighbor")
	}
	if ms := mustQueryAll(t, x, nil); ms != nil {
		t.Errorf("empty QueryAll returned %v", ms)
	}
	ids := x.Add([][]uint32{{1, 2, 3}})
	if len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("Add on empty index assigned ids %v", ids)
	}
	if id, sim, ok := mustQuery(t, x, []uint32{1, 2, 3}); !ok || id != 0 || sim != 1.0 {
		t.Fatalf("buffered set not found: id=%d sim=%v ok=%v", id, sim, ok)
	}

	// More shards than sets: clamped, everything reachable.
	small := [][]uint32{{1, 2}, {3, 4}, {5, 6}}
	y := Build(small, 0.5, &Options{Shards: 16, Seed: 37})
	if st := y.Stats(); st.Shards != 3 {
		t.Fatalf("got %d shards for 3 sets, want 3", st.Shards)
	}
	for i, q := range small {
		if id, _, ok := mustQuery(t, y, q); !ok || id != i {
			t.Fatalf("self-query %d returned id=%d ok=%v", i, id, ok)
		}
	}

	// Invalid lambda panics like cpindex.
	defer func() {
		if recover() == nil {
			t.Error("Build with lambda=1 did not panic")
		}
	}()
	Build(small, 1, nil)
}

// TestAddEmptySetPanicsBeforeMutation: empty sets cannot be MinHash-signed
// at seal time, so Add must refuse them up front and leave no trace.
func TestAddEmptySetPanics(t *testing.T) {
	sets := [][]uint32{{1, 2}, {3, 4}}
	x := Build(sets, 0.5, &Options{Shards: 1, Seed: 43, MergeThreshold: 2})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add of an empty set did not panic")
			}
		}()
		x.Add([][]uint32{{5, 6}, {}})
	}()
	if st := x.Stats(); st.Sets != 2 || st.Buffered != 0 {
		t.Fatalf("rejected Add mutated state: %+v", st)
	}
	// Subsequent valid adds still seal cleanly.
	x.Add([][]uint32{{5, 6}, {7, 8}})
	if st := x.Stats(); st.Merges != 1 || st.Sets != 4 {
		t.Fatalf("seal after rejected Add broken: %+v", st)
	}
}

func TestContiguousRanges(t *testing.T) {
	for _, tc := range []struct{ n, k, want int }{
		{10, 3, 3}, {3, 16, 3}, {0, 4, 1}, {7, 7, 7},
	} {
		ranges := ContiguousRanges(tc.n, tc.k)
		if len(ranges) != tc.want {
			t.Fatalf("ContiguousRanges(%d,%d): %d ranges, want %d", tc.n, tc.k, len(ranges), tc.want)
		}
		next := 0
		for _, r := range ranges {
			if r[0] != next || r[1] < r[0] {
				t.Fatalf("ContiguousRanges(%d,%d): bad range %v", tc.n, tc.k, r)
			}
			next = r[1]
		}
		if next != tc.n {
			t.Fatalf("ContiguousRanges(%d,%d): covers [0,%d), want [0,%d)", tc.n, tc.k, next, tc.n)
		}
	}
}
