package shard

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snapshot"
)

// saveWorkload builds, seals and saves a small multi-shard index and
// returns the original plus its directory and probe queries.
func saveWorkload(t *testing.T) (*Index, string, [][]uint32) {
	t.Helper()
	sets, _ := workload(600, 0.8, 501)
	x := Build(sets, 0.5, &Options{Shards: 3, Seed: 11, MergeThreshold: 100, Workers: 2})
	extra, _ := workload(50, 0.8, 503)
	x.Add(extra)
	x.Flush()
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	queries := append(append([][]uint32{}, sets[:80]...), extra[:40]...)
	return x, dir, queries
}

// assertSameAnswers pins the tentpole contract: y answers every probe
// byte-identically to x, best-of and all-matches alike.
func assertSameAnswers(t *testing.T, x, y *Index, queries [][]uint32) {
	t.Helper()
	for i, q := range queries {
		id1, sim1, ok1 := mustQuery(t, x, q)
		id2, sim2, ok2 := mustQuery(t, y, q)
		if id1 != id2 || sim1 != sim2 || ok1 != ok2 {
			t.Fatalf("query %d: best-of diverges: (%d,%v,%v) vs (%d,%v,%v)",
				i, id1, sim1, ok1, id2, sim2, ok2)
		}
		if !equalMatches(t, mustQueryAll(t, x, q), mustQueryAll(t, y, q)) {
			t.Fatalf("query %d: all-matches diverge across tiers", i)
		}
	}
}

// TestColdTierRoundTrip: a cold-loaded index answers byte-identically to
// the index it was saved from, reports its tier in Stats, and can be
// saved again (raw file copy) and reloaded hot without losing anything.
func TestColdTierRoundTrip(t *testing.T) {
	x, dir, queries := saveWorkload(t)

	cold, err := LoadWithOptions(dir, LoadOptions{Workers: 2, Tiering: TierCold})
	if err != nil {
		t.Fatal(err)
	}
	st := cold.Stats()
	if st.ColdShards == 0 || st.HotShards != 0 {
		t.Fatalf("cold load produced %d cold / %d hot shards", st.ColdShards, st.HotShards)
	}
	assertSameAnswers(t, x, cold, queries)

	// Saving a cold index must not decode it: the shard files are copied
	// raw, and a hot reload of the copy still matches. The cold load
	// persisted its tier in the manifest, so hot must be explicit here.
	dir2 := t.TempDir()
	if err := cold.Save(dir2); err != nil {
		t.Fatal(err)
	}
	hot, err := LoadWithOptions(dir2, LoadOptions{Workers: 2, Tiering: TierHot})
	if err != nil {
		t.Fatal(err)
	}
	if st := hot.Stats(); st.ColdShards != 0 {
		t.Fatalf("hot reload produced %d cold shards", st.ColdShards)
	}
	assertSameAnswers(t, x, hot, queries)
}

// TestPromoteDemoteAll: explicit tier moves swap every shard, keep
// answers identical, and bump the tier-move counters.
func TestPromoteDemoteAll(t *testing.T) {
	x, dir, queries := saveWorkload(t)
	y, err := LoadWithOptions(dir, LoadOptions{Workers: 2, Tiering: TierCold})
	if err != nil {
		t.Fatal(err)
	}
	total := y.Stats().ColdShards

	promoted, err := y.PromoteAll()
	if err != nil {
		t.Fatal(err)
	}
	if promoted != total {
		t.Fatalf("PromoteAll moved %d shards, want %d", promoted, total)
	}
	if st := y.Stats(); st.ColdShards != 0 || st.HotShards != total {
		t.Fatalf("after PromoteAll: %d cold / %d hot, want 0 / %d", st.ColdShards, st.HotShards, total)
	}
	assertSameAnswers(t, x, y, queries)

	demoted, err := y.DemoteAll()
	if err != nil {
		t.Fatal(err)
	}
	if demoted != total {
		t.Fatalf("DemoteAll moved %d shards, want %d", demoted, total)
	}
	if st := y.Stats(); st.HotShards != 0 || st.ColdShards != total {
		t.Fatalf("after DemoteAll: %d cold / %d hot, want %d / 0", st.ColdShards, st.HotShards, total)
	}
	assertSameAnswers(t, x, y, queries)
}

// TestAutoRetier: under TierAuto a cold shard that keeps answering
// queries is promoted by Retier, and a hot shard that sits idle is
// demoted — with answers identical throughout.
func TestAutoRetier(t *testing.T) {
	x, dir, queries := saveWorkload(t)
	// AutoColdBytes 1: every sealed shard starts cold.
	y, err := LoadWithOptions(dir, LoadOptions{Workers: 2, Tiering: TierAuto, AutoColdBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	cold := y.Stats().ColdShards
	if cold == 0 {
		t.Fatal("auto load with AutoColdBytes=1 left no shard cold")
	}

	// Drive traffic into every shard, then retier: the hit counters are
	// past tierPromoteHits, so every cold shard comes back hot.
	for i := 0; i < 2*tierPromoteHits; i++ {
		assertSameAnswers(t, x, y, queries[:4])
	}
	promoted, demoted, err := y.Retier()
	if err != nil {
		t.Fatal(err)
	}
	if promoted != cold || demoted != 0 {
		t.Fatalf("Retier after traffic moved %d up / %d down, want %d / 0", promoted, demoted, cold)
	}
	assertSameAnswers(t, x, y, queries)

	// Now leave everything idle for the demotion window: one extra pass
	// drains the hit counters the equivalence probes just charged, then
	// tierDemoteIdlePasses zero-hit passes trip the demotion.
	var down int
	for i := 0; i < tierDemoteIdlePasses+1; i++ {
		_, d, err := y.Retier()
		if err != nil {
			t.Fatal(err)
		}
		down += d
	}
	if down != promoted {
		t.Fatalf("idle Retier demoted %d shards, want %d", down, promoted)
	}
	assertSameAnswers(t, x, y, queries)
}

// TestLoadShardErrorNamesFile is the regression test for the latent Load
// bug where any unreadable shard file was reported as manifest
// corruption: the error must name the per-shard file and wrap the
// underlying cause.
func TestLoadShardErrorNamesFile(t *testing.T) {
	x, dir, _ := saveWorkload(t)
	_ = x

	var shardFile string
	m, err := snapshot.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) == 0 {
		t.Fatal("saved index has no sealed shards")
	}
	shardFile = m.Shards[0].File

	// A dangling symlink fails at open with the real cause even when the
	// test runs as root (unlike permission bits).
	path := filepath.Join(dir, shardFile)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink("does-not-exist", path); err != nil {
		t.Fatal(err)
	}
	for _, tier := range []Tier{TierHot, TierCold} {
		_, err = LoadWithOptions(dir, LoadOptions{Tiering: tier})
		if err == nil {
			t.Fatalf("%s load of an unreadable shard succeeded", tier)
		}
		if !strings.Contains(err.Error(), shardFile) {
			t.Fatalf("%s load error %q does not name shard file %q", tier, err, shardFile)
		}
		if !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("%s load error %q does not wrap the underlying open error", tier, err)
		}
	}
}

// TestLoadColdCorruptShard: a truncated shard file must fail a cold load
// with ErrCorrupt and the shard file's name — never a panic from the
// mapped decoder.
func TestLoadColdCorruptShard(t *testing.T) {
	_, dir, _ := saveWorkload(t)
	m, err := snapshot.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, m.Shards[0].File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadWithOptions(dir, LoadOptions{Tiering: TierCold})
	if err == nil {
		t.Fatal("cold load of a truncated shard succeeded")
	}
	if !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("cold load error %q does not wrap ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), m.Shards[0].File) {
		t.Fatalf("cold load error %q does not name shard file %q", err, m.Shards[0].File)
	}
}

// TestTieringPersistsInManifest: Configure(Tiering) is saved with the
// index and re-applied on a plain Load, and an explicit LoadOptions tier
// overrides the manifest.
func TestTieringPersistsInManifest(t *testing.T) {
	x, _, queries := saveWorkload(t)
	if err := x.Configure(RuntimeOptions{Tiering: TierCold}); err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := x.Save(dir2); err != nil {
		t.Fatal(err)
	}
	y, err := Load(dir2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st := y.Stats(); st.ColdShards == 0 {
		t.Fatalf("manifest tier ignored: %d cold shards after plain Load", st.ColdShards)
	}
	assertSameAnswers(t, x, y, queries)

	z, err := LoadWithOptions(dir2, LoadOptions{Tiering: TierHot})
	if err != nil {
		t.Fatal(err)
	}
	if st := z.Stats(); st.ColdShards != 0 {
		t.Fatalf("explicit hot load overridden by manifest: %d cold shards", st.ColdShards)
	}
	assertSameAnswers(t, x, z, queries)
}
