package shard

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/snapshot"
)

// newPeer starts an httptest peer: an ordinary serve instance with an
// empty index of its own, hosting shards shipped to /shard/snapshot —
// exactly what `serve -peer` runs.
func newPeer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	srv := NewServer(Build(nil, 0.5, &Options{}))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

// flakyPeer wraps a peer handler with failure injection: while broken is
// set every request gets a 503, and failAfter (when non-negative) breaks
// the peer permanently once that many requests have been served — the
// "peer dies mid-batch" case.
type flakyPeer struct {
	h         http.Handler
	broken    atomic.Bool
	served    atomic.Int64
	failAfter atomic.Int64
}

func newFlakyPeer(t *testing.T) (*httptest.Server, *flakyPeer) {
	t.Helper()
	fp := &flakyPeer{h: NewServer(Build(nil, 0.5, &Options{}))}
	fp.failAfter.Store(-1)
	ts := httptest.NewServer(fp)
	t.Cleanup(ts.Close)
	return ts, fp
}

func (f *flakyPeer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if after := f.failAfter.Load(); after >= 0 && f.served.Load() >= after {
		f.broken.Store(true)
	}
	if f.broken.Load() {
		http.Error(w, "injected failure", http.StatusServiceUnavailable)
		return
	}
	f.served.Add(1)
	f.h.ServeHTTP(w, r)
}

// distributedPair builds two identical exact-mode indexes over the same
// data and distributes one of them across the given peers. Every answer
// of the pair must be byte-identical for the remainder of the test.
func distributedPair(t *testing.T, peers []string, o *DistributeOptions) (local, dist *Index, probes [][]uint32) {
	t.Helper()
	sets, _ := workload(300, 0.8, 701)
	extra, _ := workload(90, 0.8, 703)
	build := func() *Index {
		x := Build(sets, 0.5, exactOptions(3, 30, 71))
		x.Add(extra) // seals side shards: the distributed ring is > 3 shards
		for id := len(sets); id < len(sets)+len(extra); id += 4 {
			x.Delete(id)
		}
		return x
	}
	local, dist = build(), build()
	if err := dist.Distribute(peers, o); err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	probes = append(append([][]uint32{}, sets[:80]...), extra[:40]...)
	probes = append(probes, nil) // empty query goes through the merge too
	return local, dist, probes
}

// assertIdentical checks Query, QueryAll and QueryBatch agree
// byte-for-byte between the all-local and the distributed index.
func assertIdentical(t *testing.T, local, dist *Index, probes [][]uint32) {
	t.Helper()
	for i, q := range probes {
		wantID, wantSim, wantOK := mustQuery(t, local, q)
		id, sim, ok, err := dist.QueryErr(q)
		if err != nil {
			t.Fatalf("probe %d: QueryErr: %v", i, err)
		}
		if id != wantID || sim != wantSim || ok != wantOK {
			t.Fatalf("probe %d: Query = (%d, %v, %v), local says (%d, %v, %v)",
				i, id, sim, ok, wantID, wantSim, wantOK)
		}
		got, err := dist.QueryAllErr(q)
		if err != nil {
			t.Fatalf("probe %d: QueryAllErr: %v", i, err)
		}
		if !equalMatches(t, got, mustQueryAll(t, local, q)) {
			t.Fatalf("probe %d: QueryAll diverges from all-local index", i)
		}
	}
	gotBatch, err := dist.QueryBatchErr(probes)
	if err != nil {
		t.Fatalf("QueryBatchErr: %v", err)
	}
	wantBatch := mustQueryBatch(t, local, probes)
	for i := range probes {
		if !equalMatches(t, gotBatch[i], wantBatch[i]) {
			t.Fatalf("QueryBatch[%d] diverges from all-local index", i)
		}
	}
}

// TestDistributeEquivalence pins the tentpole contract: a mixed
// local/remote topology answers byte-identically (exact mode) to the
// all-local index — shards moved or replicated, deletes before and after
// placement, appends after placement, and the stats reflecting it all.
func TestDistributeEquivalence(t *testing.T) {
	for _, keepLocal := range []bool{true, false} {
		t.Run(fmt.Sprintf("keepLocal=%v", keepLocal), func(t *testing.T) {
			p1, _ := newPeer(t)
			p2, s2 := newPeer(t)
			local, dist, probes := distributedPair(t, []string{p1.URL, p2.URL},
				&DistributeOptions{Replicas: 2, KeepLocal: keepLocal})
			st := dist.Stats()
			if st.RemoteShards == 0 {
				t.Fatalf("no remote shards after Distribute: %+v", st)
			}
			if s2.HostedShards() != st.RemoteShards {
				t.Fatalf("peer hosts %d shards, coordinator placed %d", s2.HostedShards(), st.RemoteShards)
			}
			assertIdentical(t, local, dist, probes)

			// Deletes after placement are coordinator state: filtered at
			// merge time without touching the peers.
			local.Delete(7)
			dist.Delete(7)
			assertIdentical(t, local, dist, probes)

			// Appends after placement stay local (mixed topology) and the
			// answers still agree.
			more, _ := workload(25, 0.8, 707)
			local.Add(more)
			dist.Add(more)
			assertIdentical(t, local, dist, probes)

			// A pass with nothing eligible is a no-op on both indexes.
			local.Compact()
			dist.Compact()
			assertIdentical(t, local, dist, probes)

			// Remote-backed shards are compaction-eligible like local ones:
			// tombstone half of everything so every shard crosses the ratio,
			// and the pass recalls the remote victims (local copy or verified
			// fetch-back), merges them locally, and garbage-collects the
			// recalled copies off the peers. Answers stay byte-identical.
			for id := 0; id < 300+90+len(more); id += 2 {
				local.Delete(id)
				dist.Delete(id)
			}
			local.Compact()
			dist.Compact()
			after := dist.Stats()
			if after.RemoteShards >= st.RemoteShards {
				t.Fatalf("ratio-triggered compaction left remote shards in place: %d -> %d",
					st.RemoteShards, after.RemoteShards)
			}
			if hosted := s2.HostedShards(); hosted != after.RemoteShards {
				t.Fatalf("peer hosts %d shards after compaction GC, ring references %d",
					hosted, after.RemoteShards)
			}
			assertIdentical(t, local, dist, probes)
		})
	}
}

// TestFailoverReplicaDown: with 2-way replication, killing one peer
// changes nothing — every query fails over to the live replica and the
// answers remain byte-identical. Killing both without a local copy is a
// hard error, never a silent partial merge; with KeepLocal the local
// copy serves as the final replica and answers never degrade.
func TestFailoverReplicaDown(t *testing.T) {
	p1, f1 := newFlakyPeer(t)
	p2, f2 := newFlakyPeer(t)
	local, dist, probes := distributedPair(t, []string{p1.URL, p2.URL},
		&DistributeOptions{Replicas: 2, KeepLocal: false})
	assertIdentical(t, local, dist, probes)

	// First replica down: identical answers from the second.
	f1.broken.Store(true)
	assertIdentical(t, local, dist, probes)

	// Both down, no local copy: a clear error from every query path.
	f2.broken.Store(true)
	if _, err := dist.QueryBatchErr(probes); err == nil || !strings.Contains(err.Error(), "no live replica") {
		t.Fatalf("QueryBatchErr with all replicas down = %v, want 'no live replica' error", err)
	}
	if _, _, _, err := dist.QueryErr(probes[0]); err == nil || !strings.Contains(err.Error(), "no live replica") {
		t.Fatalf("QueryErr with all replicas down = %v, want 'no live replica' error", err)
	}
	if _, err := dist.QueryAllErr(probes[0]); err == nil {
		t.Fatal("QueryAllErr with all replicas down succeeded")
	}

	// Peers recover: service resumes with identical answers.
	f1.broken.Store(false)
	f2.broken.Store(false)
	assertIdentical(t, local, dist, probes)

	// A KeepLocal topology rides out the same double failure entirely
	// locally.
	p3, f3 := newFlakyPeer(t)
	local2, dist2, probes2 := distributedPair(t, []string{p3.URL},
		&DistributeOptions{Replicas: 1, KeepLocal: true})
	f3.broken.Store(true)
	assertIdentical(t, local2, dist2, probes2)
}

// TestMidBatchFailover kills a peer partway through a QueryBatch — some
// shard RPCs have already been served, the rest hit the dead peer and
// must fail over to the replica with byte-identical merged results.
func TestMidBatchFailover(t *testing.T) {
	p1, f1 := newFlakyPeer(t)
	p2, _ := newPeer(t)
	local, dist, probes := distributedPair(t, []string{p1.URL, p2.URL},
		&DistributeOptions{Replicas: 2, KeepLocal: false})
	// Let the shipping requests through, then allow exactly one more
	// request before p1 starts failing: the first shard's batch RPC is
	// served, every later one fails over to p2 mid-batch.
	f1.failAfter.Store(f1.served.Load() + 1)
	assertIdentical(t, local, dist, probes)
}

// TestShardSnapshotShipping covers the transfer protocol itself: the
// uploaded container round-trips byte-for-byte through GET, the receipt
// carries the checksum of exactly those bytes, and uploads that disagree
// with their manifest-level identity (seed, set count) or carry
// corrupted bytes are rejected with a 4xx, never accepted quietly.
func TestShardSnapshotShipping(t *testing.T) {
	ts, srv := newPeer(t)
	client := ts.Client()

	sets, _ := workload(120, 0.8, 711)
	x := Build(sets, 0.5, exactOptions(2, 30, 73))
	x.mu.RLock()
	sub := x.shards[0].(*subIndex)
	x.mu.RUnlock()
	raw, err := encodeShardBytes(sub, x.containOptions())
	if err != nil {
		t.Fatal(err)
	}
	seed := sub.ix.Options().Seed
	key := shardKey(seed, crc32.Checksum(raw, castagnoli))

	if err := shipShard(client, ts.URL, key, seed, sub.ix.Len(), len(sets), raw); err != nil {
		t.Fatalf("shipShard: %v", err)
	}
	if srv.HostedShards() != 1 {
		t.Fatalf("peer hosts %d shards, want 1", srv.HostedShards())
	}

	// GET returns the hosted bytes unchanged.
	back, err := getShardSnapshot(client, ts.URL, key)
	if err != nil {
		t.Fatalf("getShardSnapshot: %v", err)
	}
	if !bytes.Equal(back, raw) {
		t.Fatalf("snapshot round trip changed bytes: sent %d, got %d", len(raw), len(back))
	}
	// And the round-tripped bytes decode into a queryable shard that
	// answers exactly like the source.
	rt, err := decodeShardBytes(back, snapshot.ShardEntry{Seed: seed, Sets: sub.ix.Len()}, len(sets))
	if err != nil {
		t.Fatalf("decoding round-tripped shard: %v", err)
	}
	for qi := 0; qi < 40; qi++ {
		a, _ := rt.queryAll(sets[qi])
		b, _ := sub.queryAll(sets[qi])
		if !equalMatches(t, a, b) {
			t.Fatalf("round-tripped shard diverges on query %d", qi)
		}
	}

	// A seed mismatch is the shuffled-files failure mode: rejected.
	if err := shipShard(client, ts.URL, key, seed+1, sub.ix.Len(), len(sets), raw); err == nil {
		t.Fatal("upload with wrong seed accepted")
	}
	// A set-count mismatch likewise.
	if err := shipShard(client, ts.URL, key, seed, sub.ix.Len()+1, len(sets), raw); err == nil {
		t.Fatal("upload with wrong set count accepted")
	}
	// Corrupted bytes fail the container checksums.
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x40
	if err := shipShard(client, ts.URL, key, seed, sub.ix.Len(), len(sets), bad); err == nil {
		t.Fatal("corrupted upload accepted")
	}
	// Unknown shards are a clean 404 on both query and download.
	if _, err := getShardSnapshot(client, ts.URL, "cps-nope"); err == nil {
		t.Fatal("download of unknown shard succeeded")
	}
	var resp queryResponse
	err = postJSON(client, ts.URL+"/shard/query", shardQueryRequest{Shard: "cps-nope", Set: sets[0], All: true}, &resp)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("query of unknown shard = %v, want 404", err)
	}

	// Keys are content-unique: the same options (and thus the same
	// per-shard seed) over a different collection yield a different key,
	// so coordinators sharing a peer can never overwrite each other.
	otherSets, _ := workload(120, 0.8, 719)
	y := Build(otherSets, 0.5, exactOptions(2, 30, 73))
	y.mu.RLock()
	otherSub := y.shards[0].(*subIndex)
	y.mu.RUnlock()
	otherRaw, err := encodeShardBytes(otherSub, y.containOptions())
	if err != nil {
		t.Fatal(err)
	}
	if otherSub.ix.Options().Seed != seed {
		t.Fatal("test premise broken: same options should derive the same shard seed")
	}
	if otherKey := shardKey(seed, crc32.Checksum(otherRaw, castagnoli)); otherKey == key {
		t.Fatal("different collections produced the same shard key")
	}

	// DELETE evicts the hosted shard; repeating it is a no-op, and the
	// evicted key is gone from queries and downloads.
	delURL := ts.URL + "/shard/snapshot?shard=" + key
	req, _ := http.NewRequest(http.MethodDelete, delURL, nil)
	dresp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %s", dresp.Status)
	}
	if srv.HostedShards() != 0 {
		t.Fatalf("peer still hosts %d shards after eviction", srv.HostedShards())
	}
	if _, err := getShardSnapshot(client, ts.URL, key); err == nil {
		t.Fatal("download of evicted shard succeeded")
	}
	req2, _ := http.NewRequest(http.MethodDelete, delURL, nil)
	dresp2, err := client.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat DELETE = %s, want idempotent 200", dresp2.Status)
	}
}

// TestSaveWithRemoteShards: a Save of a ring whose shards were moved to
// peers fetches the bytes back (re-verified) and writes a normal,
// topology-free snapshot — Load restores a fully local index answering
// byte-identically.
func TestSaveWithRemoteShards(t *testing.T) {
	p1, _ := newPeer(t)
	p2, _ := newPeer(t)
	local, dist, probes := distributedPair(t, []string{p1.URL, p2.URL},
		&DistributeOptions{Replicas: 1, KeepLocal: false})
	dir := t.TempDir()
	if err := dist.Save(dir); err != nil {
		t.Fatalf("Save with remote shards: %v", err)
	}
	y, err := Load(dir, 2)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := y.Stats().RemoteShards; got != 0 {
		t.Fatalf("loaded index has %d remote shards, want 0 (snapshots are topology-free)", got)
	}
	assertIdentical(t, local, y, probes)

	// With every peer down the moved shards' bytes are unreachable: Save
	// must fail loudly instead of writing a partial snapshot.
	p1.Close()
	p2.Close()
	if err := dist.Save(t.TempDir()); err == nil {
		t.Fatal("Save with all peers down succeeded")
	} else if !strings.Contains(err.Error(), "no live replica") {
		t.Fatalf("Save error = %v, want 'no live replica'", err)
	}
}

// TestDistributeValidation: bad topologies are rejected up front.
func TestDistributeValidation(t *testing.T) {
	sets, _ := workload(50, 0.8, 721)
	x := Build(sets, 0.5, exactOptions(2, 30, 79))
	if err := x.Distribute(nil, nil); err == nil {
		t.Fatal("Distribute with no peers succeeded")
	}
	if err := x.Distribute([]string{""}, nil); err == nil {
		t.Fatal("Distribute with an empty peer URL succeeded")
	}
	// A dead peer fails the placement; the ring stays fully local and
	// serving continues untouched.
	if err := x.Distribute([]string{"http://127.0.0.1:1"}, nil); err == nil {
		t.Fatal("Distribute to a dead peer succeeded")
	}
	if st := x.Stats(); st.RemoteShards != 0 {
		t.Fatalf("failed Distribute left %d remote shards", st.RemoteShards)
	}
	if _, _, _, err := x.QueryErr(sets[0]); err != nil {
		t.Fatalf("local ring broken after failed Distribute: %v", err)
	}
}

// TestLegacyQueryPanicsOnDeadTopology: the error-free entry points are
// for all-local rings; on a dead distributed ring they must fail loudly
// (documented panic), not return a partial merge.
func TestLegacyQueryPanicsOnDeadTopology(t *testing.T) {
	p1, f1 := newFlakyPeer(t)
	_, dist, probes := distributedPair(t, []string{p1.URL},
		&DistributeOptions{Replicas: 1, KeepLocal: false})
	f1.broken.Store(true)
	defer func() {
		if recover() == nil {
			t.Fatal("Query on a dead topology did not panic")
		}
	}()
	dist.Query(probes[0]) // deliberately the deprecated panicking wrapper
}

// Compile-time checks: both backends satisfy the ring interface.
var (
	_ shardBackend = (*remoteShard)(nil)
	_ shardBackend = (*subIndex)(nil)
)
