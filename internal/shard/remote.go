package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/contain"
	"repro/internal/cpindex"
	"repro/internal/exec"
	"repro/internal/snapshot"
)

// Remote shards: the ring's shards are independent failure and build
// domains behind one facade, so making one remote is a client swap, not a
// redesign. A remoteShard proxies the shardBackend queries over HTTP to
// peer serve instances that host the shard's snapshot — shipped to them
// as the self-contained cpshard container a Save would write, verified by
// the same seed and checksum discipline the manifest enforces on disk.
// Each remote shard carries an ordered replica list and fails over down
// it; with KeepLocal the original in-process shard remains as the
// last-resort replica, so a fully partitioned coordinator still answers
// exactly. Only when no replica is live and no local copy exists does a
// query fail — with an error, never a silent partial merge.
//
// Tombstones, global ids and the fan-out/merge stay coordinator-side and
// unchanged: a peer answers shard-local queries with global ids (the
// shipped container includes the id map) and never sees deletes.

// defaultRemoteClient bounds how long a query waits on an unresponsive
// peer before failing over to the next replica.
var defaultRemoteClient = &http.Client{Timeout: 30 * time.Second}

// remoteShard is a ring shard served by peers. It satisfies shardBackend;
// the coordinator keeps the id map (and optionally the full local copy)
// for bookkeeping, persistence and failover.
type remoteShard struct {
	key      string
	seed     uint64
	crc      uint32 // CRC-32C of the shipped container bytes
	ids      []int
	total    int      // id high-water mark at placement; bounds decode validation on fetch
	replicas []string // peer base URLs, failover order
	local    *subIndex
	client   *http.Client
	// copts are the index-wide containment options, kept so a save-time
	// re-encode of the local copy writes the containment section with the
	// right global seed.
	copts contain.Options
	// metrics is the owning index's instrumentation hub (nil-safe); RPC
	// latency, errors, failovers and passive health are recorded per peer.
	metrics *indexMetrics
}

func (r *remoteShard) size() int        { return len(r.ids) }
func (r *remoteShard) globalIDs() []int { return r.ids }

func (r *remoteShard) httpClient() *http.Client {
	if r.client != nil {
		return r.client
	}
	return defaultRemoteClient
}

// deadErr wraps the last replica failure once every replica (and the
// local fallback, when absent) is exhausted.
func (r *remoteShard) deadErr(last error) error {
	return fmt.Errorf("shard %s: no live replica of %d (%v): %w",
		r.key, len(r.replicas), r.replicas, last)
}

// hasFallback reports whether a failure of replica i leaves the query
// another option — a further replica or the local copy. Only such skips
// count as failovers; the last resort failing is a query error instead.
func (r *remoteShard) hasFallback(i int) bool {
	return i+1 < len(r.replicas) || r.local != nil
}

func (r *remoteShard) queryBest(q []uint32) (int, float64, bool, error) {
	var last error
	for i, base := range r.replicas {
		pm := r.metrics.peer(base)
		start := time.Now()
		var resp queryResponse
		err := postJSON(r.httpClient(), base+"/shard/query",
			shardQueryRequest{Shard: r.key, Set: q}, &resp)
		pm.observe(time.Since(start), err)
		if err != nil {
			last = err
			if r.hasFallback(i) {
				pm.failover()
			}
			continue
		}
		if !resp.Found {
			return -1, 0, false, nil
		}
		return resp.ID, resp.Sim, true, nil
	}
	if r.local != nil {
		return r.local.queryBest(q)
	}
	return -1, 0, false, r.deadErr(last)
}

func (r *remoteShard) queryAll(q []uint32) ([]cpindex.Match, error) {
	var last error
	for i, base := range r.replicas {
		pm := r.metrics.peer(base)
		start := time.Now()
		var resp queryResponse
		err := postJSON(r.httpClient(), base+"/shard/query",
			shardQueryRequest{Shard: r.key, Set: q, All: true}, &resp)
		pm.observe(time.Since(start), err)
		if err != nil {
			last = err
			if r.hasFallback(i) {
				pm.failover()
			}
			continue
		}
		return resp.Matches, nil
	}
	if r.local != nil {
		return r.local.queryAll(q)
	}
	return nil, r.deadErr(last)
}

func (r *remoteShard) queryContain(q []uint32, t float64, opts contain.Options) ([]cpindex.Match, error) {
	var last error
	for i, base := range r.replicas {
		pm := r.metrics.peer(base)
		start := time.Now()
		var resp queryResponse
		err := postJSON(r.httpClient(), base+"/shard/query",
			shardQueryRequest{Shard: r.key, Set: q, Mode: "containment", Threshold: t}, &resp)
		pm.observe(time.Since(start), err)
		if err != nil {
			last = err
			if r.hasFallback(i) {
				pm.failover()
			}
			continue
		}
		return resp.Matches, nil
	}
	if r.local != nil {
		return r.local.queryContain(q, t, opts)
	}
	return nil, r.deadErr(last)
}

func (r *remoteShard) queryBatch(qs [][]uint32) ([][]cpindex.Match, error) {
	var last error
	for i, base := range r.replicas {
		var resp batchResponse
		pm := r.metrics.peer(base)
		start := time.Now()
		err := postJSON(r.httpClient(), base+"/shard/query_batch",
			shardBatchRequest{Shard: r.key, Sets: qs}, &resp)
		if err == nil && len(resp.Results) != len(qs) {
			// A malformed peer answer is a replica failure like any other:
			// fail over rather than mis-slot the merge.
			err = fmt.Errorf("peer %s: %d results for %d queries", base, len(resp.Results), len(qs))
		}
		pm.observe(time.Since(start), err)
		if err != nil {
			last = err
			if r.hasFallback(i) {
				pm.failover()
			}
			continue
		}
		return resp.Results, nil
	}
	if r.local != nil {
		return r.local.queryBatch(qs)
	}
	return nil, r.deadErr(last)
}

// fetchSnapshot downloads the shard's cpshard container from the first
// live replica and validates it — container checksums, seed, set count
// and id map — exactly as a disk load would, so a Save of a moved shard
// writes only verified bytes.
func (r *remoteShard) fetchSnapshot() ([]byte, error) {
	var last error
	for _, base := range r.replicas {
		raw, err := getShardSnapshot(r.httpClient(), base, r.key)
		if err != nil {
			last = err
			continue
		}
		if got := crc32.Checksum(raw, castagnoli); got != r.crc {
			last = fmt.Errorf("peer %s: shard %s bytes changed: crc %08x, shipped %08x", base, r.key, got, r.crc)
			continue
		}
		entry := snapshot.ShardEntry{Seed: r.seed, Sets: len(r.ids)}
		if _, err := decodeShardBytes(raw, entry, r.total); err != nil {
			last = fmt.Errorf("peer %s: %w", base, err)
			continue
		}
		return raw, nil
	}
	if r.local != nil {
		return encodeShardBytes(r.local, r.copts)
	}
	return nil, r.deadErr(last)
}

// shardQueryRequest targets one hosted shard on a peer. Queries arrive
// pre-normalized from the coordinator (this is the internal shard RPC,
// not the public /query API).
type shardQueryRequest struct {
	Shard string   `json:"shard"`
	Set   []uint32 `json:"set"`
	All   bool     `json:"all,omitempty"`
	// Mode "containment" asks for containment matches at Threshold
	// instead of similarity matches; absent means similarity, so the
	// wire stays compatible with pre-containment coordinators.
	Mode      string  `json:"mode,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

type shardBatchRequest struct {
	Shard string     `json:"shard"`
	Sets  [][]uint32 `json:"sets"`
}

// shipReceipt is a peer's acknowledgement of a shard snapshot upload:
// the identity it decoded plus the checksum of the bytes it now hosts,
// so the shipper can verify the transfer end to end.
type shipReceipt struct {
	Shard  string `json:"shard"`
	Seed   uint64 `json:"seed"`
	Sets   int    `json:"sets"`
	CRC32C uint32 `json:"crc32c"`
}

// postJSON posts body as JSON and decodes the 200 response into out; any
// other status is returned as an error carrying the peer's message.
func postJSON(client *http.Client, u string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(u, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", u, resp.Status, readErrBody(resp.Body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// readErrBody returns a bounded snippet of an error response body. It
// drains (a bounded amount of) the remainder so the underlying keep-alive
// connection returns to the client's pool instead of being torn down —
// failover paths hit this on every retry, and re-dialing the next peer
// because the previous error body was left unread is pure waste.
func readErrBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 512))
	io.Copy(io.Discard, io.LimitReader(r, 64<<10))
	return strings.TrimSpace(string(b))
}

// castagnoli is the CRC-32C table shared by shipping verification and
// the hosted-shard registry (the same polynomial the container's
// sections use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// shardKey names a shard on peers: the build seed (unique for an
// index's lifetime — every slot derives a fresh one) plus the CRC-32C
// of the container bytes. The checksum makes the key content-unique
// across coordinators sharing a peer: two indexes built from the same
// default seed over different collections produce different bytes and
// land under different keys instead of silently overwriting each other.
// Re-shipping the same shard reuses the same key (the encoding is
// deterministic), so placement stays idempotent.
func shardKey(seed uint64, crc uint32) string {
	return fmt.Sprintf("cps-%016x-%08x", seed, crc)
}

// encodeShardBytes serializes one local shard as the self-contained
// cpshard container Save writes to disk — the unit of shard shipping.
// copts seed the containment section, so a hosted shard answers
// containment queries from exactly the structure the coordinator built.
func encodeShardBytes(sh *subIndex, copts contain.Options) ([]byte, error) {
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf, shardKind)
	if err != nil {
		return nil, err
	}
	if err := encodeShardSections(w, sh, copts); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeShardBytes validates and decodes a shipped cpshard container
// against its manifest-level identity (seed, set count) and the id bound,
// sharing every guard the disk loader enforces.
func decodeShardBytes(raw []byte, entry snapshot.ShardEntry, total int) (*subIndex, error) {
	r, err := snapshot.NewReader(bytes.NewReader(raw), shardKind)
	if err != nil {
		return nil, err
	}
	return decodeSubIndex(r, entry, total)
}

// shipShard uploads one shard snapshot to a peer and verifies the
// receipt: the peer must echo the seed and set count it decoded and the
// CRC-32C of the bytes it now hosts.
func shipShard(client *http.Client, peer, key string, seed uint64, sets, total int, raw []byte) error {
	u := fmt.Sprintf("%s/shard/snapshot?shard=%s&seed=%d&sets=%d&total=%d",
		peer, url.QueryEscape(key), seed, sets, total)
	resp, err := client.Post(u, "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", u, resp.Status, readErrBody(resp.Body))
	}
	var rec shipReceipt
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return fmt.Errorf("%s: bad receipt: %v", u, err)
	}
	if want := crc32.Checksum(raw, castagnoli); rec.CRC32C != want || rec.Seed != seed || rec.Sets != sets {
		return fmt.Errorf("%s: receipt mismatch: peer decoded seed=%d sets=%d crc=%08x, shipped seed=%d sets=%d crc=%08x",
			u, rec.Seed, rec.Sets, rec.CRC32C, seed, sets, want)
	}
	return nil
}

// getShardSnapshot downloads a hosted shard's raw container bytes,
// bounded at maxShardSnapshotBytes like the upload path — a misbehaving
// peer must not be able to balloon the coordinator's memory during a
// fetch-back.
func getShardSnapshot(client *http.Client, peer, key string) ([]byte, error) {
	u := fmt.Sprintf("%s/shard/snapshot?shard=%s", peer, url.QueryEscape(key))
	resp, err := client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", u, resp.Status, readErrBody(resp.Body))
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxShardSnapshotBytes+1))
	if err != nil {
		return nil, err
	}
	if len(raw) > maxShardSnapshotBytes {
		return nil, fmt.Errorf("%s: snapshot exceeds the %d-byte shard bound", u, maxShardSnapshotBytes)
	}
	return raw, nil
}

// deleteShardSnapshot evicts one hosted shard from a peer. Peers answer
// DELETE idempotently (an unknown key reports removed=false with 200),
// so retrying a delete is always safe.
func deleteShardSnapshot(client *http.Client, peer, key string) error {
	u := fmt.Sprintf("%s/shard/snapshot?shard=%s", peer, url.QueryEscape(key))
	req, err := http.NewRequest(http.MethodDelete, u, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", u, resp.Status, readErrBody(resp.Body))
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	return nil
}

// DistributeOptions configure Index.Distribute.
type DistributeOptions struct {
	// Replicas is the number of peers each shard is shipped to (N-way
	// replication for query availability). Default 1; clamped to the peer
	// count.
	Replicas int
	// KeepLocal retains the in-process copy of every shipped shard as the
	// last-resort replica: queries fail over to it when every peer is
	// down, so distribution can never make answers worse — only a moved
	// shard (KeepLocal false) can become unanswerable.
	KeepLocal bool
	// Client overrides the HTTP client used for shipping and queries
	// (default: a shared client with a 30s timeout).
	Client *http.Client
}

// normalizePeers validates and canonicalizes peer base URLs (trailing
// slashes stripped) — shared by Distribute and StartPlacement.
func normalizePeers(peers []string) ([]string, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("shard: need at least one peer")
	}
	bases := make([]string, len(peers))
	for i, p := range peers {
		bases[i] = strings.TrimRight(p, "/")
		if bases[i] == "" {
			return nil, fmt.Errorf("shard: empty peer URL at index %d", i)
		}
	}
	return bases, nil
}

// Distribute places the ring's local shards on peers: shard i ships its
// cpshard snapshot (the same verified container Save writes) to Replicas
// peers chosen round-robin starting at peers[i mod len(peers)] — a static
// assignment, so the same flags reproduce the same placement — and the
// ring entry becomes a remote-shard client that fans queries out to those
// replicas in order. Query results are byte-identical to the all-local
// ring: peers answer from exactly the shipped structure, global ids and
// tombstone filtering stay coordinator-side.
//
// Shards sealed after Distribute stay local until a later Distribute
// ships them (or the placement controller does — see StartPlacement);
// already-remote shards are left untouched. Shipping runs against a read
// snapshot of the ring and the swap is atomic under a generation bump, so
// queries are served throughout.
//
// Every call records its peers and options as the index's placement
// state and ends with a garbage-collection sweep: hosted (key, peer)
// pairs this coordinator shipped that the post-swap ring no longer
// references are DELETEd from their peers. The sweep runs on the error
// path too — a failed pass leaves the ring unchanged, so everything it
// shipped before failing is unreferenced and is unwound the same way a
// superseded key from an earlier pass is.
func (x *Index) Distribute(peers []string, o *DistributeOptions) error {
	bases, err := normalizePeers(peers)
	if err != nil {
		return err
	}
	opt := DistributeOptions{Replicas: 1, KeepLocal: true}
	if o != nil {
		opt = *o
	}
	if opt.Replicas < 1 {
		opt.Replicas = 1
	}
	if opt.Replicas > len(bases) {
		opt.Replicas = len(bases)
	}
	client := opt.Client
	if client == nil {
		client = defaultRemoteClient
	}

	// Serialize with compaction: compactMu is the only path that removes
	// ring shards, so every shard shipped below is still in the ring at
	// swap time (seals only append).
	x.compactMu.Lock()
	defer x.compactMu.Unlock()
	x.placement.beginPass(bases, opt)
	defer x.placementGC()
	x.mu.RLock()
	shards := append([]shardBackend(nil), x.shards...)
	total := x.total
	x.mu.RUnlock()

	// Shards ship as parallel tasks on the execution layer — like Save's
	// per-shard fan-out, so distribution latency is bounded by the
	// largest shard, not the sum. Within one shard the replicas are
	// shipped in order (the order queries will fail over in).
	remotes := make([]*remoteShard, len(shards))
	errs := make([]error, len(shards))
	exec.RunItems(exec.EffectiveWorkers(x.opt.Workers), len(shards), func(i int) {
		// Only hot shards ship: tiering is a local storage decision, and a
		// cold (mapped) shard stays local — promote it first if it should
		// move to a peer. Already-remote shards are likewise left in place.
		sub, ok := shards[i].(*subIndex)
		if !ok {
			return
		}
		raw, err := encodeShardBytes(sub, x.containOptions())
		if err != nil {
			errs[i] = fmt.Errorf("shard: encoding shard %d: %w", i, err)
			return
		}
		seed := sub.ix.Options().Seed
		crc := crc32.Checksum(raw, castagnoli)
		key := shardKey(seed, crc)
		assigned := make([]string, 0, opt.Replicas)
		for r := 0; r < opt.Replicas; r++ {
			assigned = append(assigned, bases[(i+r)%len(bases)])
		}
		for _, peer := range assigned {
			// Record the pair before the upload, not after: an upload whose
			// acknowledgement was lost may still have registered the shard
			// on the peer, and a pessimistically recorded pair costs only
			// one idempotent DELETE at the next GC sweep.
			x.placement.record(key, peer)
			if err := shipShard(client, peer, key, seed, sub.ix.Len(), total, raw); err != nil {
				errs[i] = fmt.Errorf("shard: shipping shard %d to %s: %w", i, peer, err)
				return
			}
			if m := x.metrics; m != nil {
				m.placementShipped.Inc()
			}
		}
		remote := &remoteShard{
			key:      key,
			seed:     seed,
			crc:      crc,
			ids:      sub.ids,
			total:    total,
			replicas: assigned,
			client:   opt.Client,
			metrics:  x.metrics,
			copts:    x.containOptions(),
		}
		// Pre-create the peer collectors so /metrics and Health cover
		// every replica from placement time, not first contact.
		for _, peer := range assigned {
			x.metrics.peer(peer)
		}
		if opt.KeepLocal {
			remote.local = sub
		}
		remotes[i] = remote
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	swap := make(map[shardBackend]shardBackend)
	for i, r := range remotes {
		if r != nil {
			swap[shards[i]] = r
		}
	}
	if len(swap) == 0 {
		return nil
	}

	x.mu.Lock()
	defer x.mu.Unlock()
	// Copy-on-write like the compaction swap: in-flight queries iterate
	// their snapshot of the old slice.
	ring := make([]shardBackend, len(x.shards))
	for i, sh := range x.shards {
		if r, ok := swap[sh]; ok {
			ring[i] = r
		} else {
			ring[i] = sh
		}
	}
	x.shards = ring
	x.generation++
	x.version.Add(1)
	return nil
}
