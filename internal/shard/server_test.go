package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*httptest.Server, [][]uint32) {
	t.Helper()
	sets, _ := workload(500, 0.8, 301)
	ix := Build(sets, 0.5, &Options{Shards: 3, Seed: 41, MergeThreshold: 64, Workers: 2})
	ts := httptest.NewServer(NewServer(ix))
	t.Cleanup(ts.Close)
	return ts, sets
}

func post(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

func TestServerQuery(t *testing.T) {
	ts, sets := newTestServer(t)

	// Best-match self-query: exact hit on the queried set.
	var qr queryResponse
	if resp := post(t, ts.URL+"/query", queryRequest{Set: sets[7]}, &qr); resp.StatusCode != 200 {
		t.Fatalf("/query status %d", resp.StatusCode)
	}
	if !qr.Found || qr.Sim != 1.0 {
		t.Fatalf("self-query response %+v", qr)
	}

	// all=true returns the match list, sorted by id, including the self hit.
	qr = queryResponse{}
	post(t, ts.URL+"/query", queryRequest{Set: sets[7], All: true}, &qr)
	self := false
	for i, m := range qr.Matches {
		if m.ID == 7 {
			self = true
		}
		if i > 0 && qr.Matches[i-1].ID >= m.ID {
			t.Fatalf("matches not sorted by id: %v", qr.Matches)
		}
	}
	if !qr.Found || !self {
		t.Fatalf("all-query missed self: %+v", qr)
	}

	// id 0 is a legitimate best match and must appear on the wire (no
	// omitempty ambiguity): decode raw to check key presence.
	b, _ := json.Marshal(queryRequest{Set: sets[0]})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var raw0 map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw0); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id, present := raw0["id"]; !present || id != 0.0 {
		t.Fatalf("id-0 match not on the wire: %v", raw0)
	}

	// Unnormalized input (duplicates, unsorted) is normalized server-side.
	qr = queryResponse{}
	raw := append([]uint32{}, sets[7]...)
	raw = append(raw, sets[7][0], sets[7][2])
	post(t, ts.URL+"/query", queryRequest{Set: raw}, &qr)
	if !qr.Found || qr.Sim != 1.0 {
		t.Fatalf("unnormalized self-query response %+v", qr)
	}
}

func TestServerQueryBatch(t *testing.T) {
	ts, sets := newTestServer(t)
	var br batchResponse
	post(t, ts.URL+"/query_batch", batchRequest{Sets: sets[:40]}, &br)
	if len(br.Results) != 40 {
		t.Fatalf("%d results for 40 queries", len(br.Results))
	}
	for i, ms := range br.Results {
		if ms == nil {
			t.Fatalf("result %d is null, want []", i)
		}
		self := false
		for _, m := range ms {
			if m.ID == i {
				self = true
			}
		}
		if !self {
			t.Fatalf("batch query %d missed itself", i)
		}
	}
}

func TestServerAddAndStats(t *testing.T) {
	ts, sets := newTestServer(t)
	novel := []uint32{900001, 900002, 900003, 900004}

	var ar addResponse
	post(t, ts.URL+"/add", batchRequest{Sets: [][]uint32{novel}}, &ar)
	if len(ar.IDs) != 1 || ar.IDs[0] != len(sets) || ar.Total != len(sets)+1 || ar.Buffered != 1 {
		t.Fatalf("add response %+v", ar)
	}

	// The appended set is immediately queryable.
	var qr queryResponse
	post(t, ts.URL+"/query", queryRequest{Set: novel}, &qr)
	if !qr.Found || qr.ID != len(sets) || qr.Sim != 1.0 {
		t.Fatalf("query for appended set: %+v", qr)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Sets != len(sets)+1 || st.Buffered != 1 || st.Shards != 3 || st.Appends != 1 {
		t.Fatalf("stats %+v", st)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
}

func TestServerDelete(t *testing.T) {
	ts, sets := newTestServer(t)

	var dr deleteResponse
	if resp := post(t, ts.URL+"/delete", deleteRequest{IDs: []int{7, 9}}, &dr); resp.StatusCode != 200 {
		t.Fatalf("/delete status %d", resp.StatusCode)
	}
	if dr.Deleted != 2 || dr.Live != len(sets)-2 || dr.Tombstones != 2 {
		t.Fatalf("delete response %+v", dr)
	}

	// The deleted set no longer matches; its near-neighbors still do.
	var qr queryResponse
	post(t, ts.URL+"/query", queryRequest{Set: sets[7], All: true}, &qr)
	for _, m := range qr.Matches {
		if m.ID == 7 || m.ID == 9 {
			t.Fatalf("deleted id %d still served: %+v", m.ID, qr)
		}
	}

	// Idempotent: deleting again (plus an unknown id) deletes nothing and
	// is not an error.
	dr = deleteResponse{}
	post(t, ts.URL+"/delete", deleteRequest{IDs: []int{7, 1 << 30}}, &dr)
	if dr.Deleted != 0 || dr.Live != len(sets)-2 {
		t.Fatalf("repeat delete response %+v", dr)
	}
}

// TestServerCompact drives the maintenance endpoint end to end: churn
// the service with appends and deletes over the wire, compact, and check
// the ring shrank while answers are preserved.
func TestServerCompact(t *testing.T) {
	sets, _ := workload(300, 0.8, 311)
	extra, _ := workload(160, 0.8, 313)
	ix := Build(sets, 0.5, &Options{
		Shards: 2, Seed: 43, MergeThreshold: 40, Workers: 2,
		Trees: 2, LeafSize: 1 << 20, // exact mode: answers comparable bit-for-bit
	})
	ts := httptest.NewServer(NewServer(ix))
	t.Cleanup(ts.Close)

	// Append in merge-threshold-sized chunks so several small sealed
	// shards accumulate — the shape compaction exists to clean up.
	var del []int
	for i := 0; i < len(extra); i += 40 {
		end := i + 40
		if end > len(extra) {
			end = len(extra)
		}
		var ar addResponse
		post(t, ts.URL+"/add", batchRequest{Sets: extra[i:end]}, &ar)
		for j, id := range ar.IDs {
			if j%3 == 0 {
				del = append(del, id)
			}
		}
	}
	var dr deleteResponse
	post(t, ts.URL+"/delete", deleteRequest{IDs: del}, &dr)
	if dr.Deleted != len(del) {
		t.Fatalf("delete response %+v, want %d deleted", dr, len(del))
	}

	var before batchResponse
	post(t, ts.URL+"/query_batch", batchRequest{Sets: extra}, &before)
	var preStats Stats
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&preStats)
	resp.Body.Close()

	// GET must be rejected — compaction is a state change.
	resp, err = http.Get(ts.URL + "/compact")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /compact status %d, want 405", resp.StatusCode)
	}

	var cr compactResponse
	post(t, ts.URL+"/compact", struct{}{}, &cr)
	if cr.Merged == 0 || cr.Reclaimed != len(del) {
		t.Fatalf("compact response %+v, want merged shards and %d reclaimed", cr, len(del))
	}
	if cr.Shards >= preStats.Shards {
		t.Fatalf("ring did not shrink over the wire: %d -> %d", preStats.Shards, cr.Shards)
	}
	if cr.Tombstones != 0 {
		t.Fatalf("tombstones survived compaction: %+v", cr)
	}

	var after batchResponse
	post(t, ts.URL+"/query_batch", batchRequest{Sets: extra}, &after)
	if len(after.Results) != len(before.Results) {
		t.Fatalf("result count changed: %d -> %d", len(before.Results), len(after.Results))
	}
	for i := range after.Results {
		if len(after.Results[i]) != len(before.Results[i]) {
			t.Fatalf("query %d: match count changed across /compact", i)
		}
		for j := range after.Results[i] {
			if after.Results[i][j] != before.Results[i][j] {
				t.Fatalf("query %d match %d changed across /compact", i, j)
			}
		}
	}

	var st Stats
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Compactions != 1 || st.Generation != cr.Generation {
		t.Fatalf("stats after compaction: %+v vs %+v", st, cr)
	}
}

func TestServerErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	// GET on a POST endpoint.
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query status %d, want 405", resp.StatusCode)
	}

	// Malformed JSON.
	resp, err = http.Post(ts.URL+"/query", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d, want 400", resp.StatusCode)
	}

	// Unknown fields are rejected (catches clients hitting the wrong
	// endpoint shape).
	resp, err = http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"sets":[[1,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-shape status %d, want 400", resp.StatusCode)
	}

	// Empty sets are rejected at the boundary (they cannot be indexed
	// when the side shard seals).
	resp, err = http.Post(ts.URL+"/add", "application/json", strings.NewReader(`{"sets":[[1,2],[]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty-set add status %d, want 400", resp.StatusCode)
	}

	// POST on /stats.
	resp, err = http.Post(ts.URL+"/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats status %d, want 405", resp.StatusCode)
	}
}

// decodeError reads a non-200 response's body as the uniform structured
// error shape and checks the embedded code matches the HTTP status.
func decodeError(t *testing.T, resp *http.Response) errorResponse {
	t.Helper()
	defer resp.Body.Close()
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("error body is not structured JSON: %v", err)
	}
	if er.Code != resp.StatusCode {
		t.Fatalf("error body code %d != HTTP status %d", er.Code, resp.StatusCode)
	}
	if er.Error == "" {
		t.Fatal("error body carries no message")
	}
	return er
}

// TestServerV1Aliases: every endpoint serves identically at its /v1
// canonical path and at the bare legacy alias.
func TestServerV1Aliases(t *testing.T) {
	ts, sets := newTestServer(t)

	var v1, legacy queryResponse
	if resp := post(t, ts.URL+"/v1/query", queryRequest{Set: sets[3], All: true}, &v1); resp.StatusCode != 200 {
		t.Fatalf("/v1/query status %d", resp.StatusCode)
	}
	post(t, ts.URL+"/query", queryRequest{Set: sets[3], All: true}, &legacy)
	if len(v1.Matches) == 0 || len(v1.Matches) != len(legacy.Matches) {
		t.Fatalf("/v1/query (%d matches) != /query (%d matches)", len(v1.Matches), len(legacy.Matches))
	}
	for i := range v1.Matches {
		if v1.Matches[i] != legacy.Matches[i] {
			t.Fatalf("match %d differs across /v1 alias", i)
		}
	}

	for _, path := range []string{"/v1/stats", "/v1/healthz", "/v1/readyz", "/v1/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s status %d", path, resp.StatusCode)
		}
	}
}

// TestServerStructuredErrors: every failure answers with the uniform
// {"error", "code"} JSON body, matching the HTTP status.
func TestServerStructuredErrors(t *testing.T) {
	ts, sets := newTestServer(t)

	// Method not allowed.
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query status %d, want 405", resp.StatusCode)
	}
	decodeError(t, resp)

	// Malformed JSON.
	resp, err = http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d, want 400", resp.StatusCode)
	}
	decodeError(t, resp)

	// Mode dispatch errors: unknown mode, similarity with a threshold,
	// containment without one (or out of range).
	for _, req := range []queryRequest{
		{Set: sets[0], Mode: "fuzzy"},
		{Set: sets[0], Threshold: 0.7},
		{Set: sets[0], Mode: "containment"},
		{Set: sets[0], Mode: "containment", Threshold: -0.2},
		{Set: sets[0], Mode: "containment", Threshold: 1.5},
	} {
		b, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("request %+v: status %d, want 400", req, resp.StatusCode)
		}
		decodeError(t, resp)
	}
}

// TestServerContainmentQuery drives the containment arm of /v1/query end
// to end: a thinned probe of an indexed set must surface its source with
// the exact containment score, limit re-ranks, and the answers match the
// index's own QueryContain.
func TestServerContainmentQuery(t *testing.T) {
	sets, _ := workload(400, 0.8, 331)
	ix := Build(sets, 0.5, &Options{Shards: 3, Seed: 47, Workers: 2})
	ts := httptest.NewServer(NewServer(ix))
	t.Cleanup(ts.Close)

	probe := append([]uint32{}, sets[11][:len(sets[11])*2/3]...)
	var qr queryResponse
	if resp := post(t, ts.URL+"/v1/query",
		queryRequest{Set: probe, Mode: "containment", Threshold: 0.6}, &qr); resp.StatusCode != 200 {
		t.Fatalf("containment query status %d", resp.StatusCode)
	}
	want, err := ix.QueryContain(probe, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if !qr.Found || !equalMatches(t, qr.Matches, want) {
		t.Fatalf("wire answer %+v != index answer %v", qr, want)
	}
	self := false
	for _, m := range qr.Matches {
		if m.ID == 11 && m.Sim == 1.0 {
			self = true
		}
	}
	if !self {
		t.Fatalf("probe's source set not a full-containment match: %+v", qr.Matches)
	}

	// limit=1 keeps the single best-scored match (ties to the lowest id).
	var limited queryResponse
	post(t, ts.URL+"/v1/query",
		queryRequest{Set: probe, Mode: "containment", Threshold: 0.6, Limit: 1}, &limited)
	if len(limited.Matches) != 1 {
		t.Fatalf("limit=1 returned %d matches", len(limited.Matches))
	}
	best := limited.Matches[0]
	for _, m := range want {
		if m.Sim > best.Sim || (m.Sim == best.Sim && m.ID < best.ID) {
			t.Fatalf("limit=1 kept %+v, but %+v scores higher", best, m)
		}
	}
}

// TestServerShardQueryContainment covers the internal shard RPC's
// containment arm: a hosted shard answers containment with the shipped
// signatures, and an invalid threshold from a (buggy) coordinator is a
// 400, not a panic.
func TestServerShardQueryContainment(t *testing.T) {
	peerURL, peerSrv := newPeer(t)
	_ = peerSrv
	sets, _ := workload(200, 0.8, 341)
	x := Build(sets, 0.5, &Options{Shards: 2, Seed: 53, Workers: 2})
	if err := x.Distribute([]string{peerURL.URL}, &DistributeOptions{Replicas: 1, KeepLocal: false}); err != nil {
		t.Fatalf("Distribute: %v", err)
	}

	probe := sets[5][:len(sets[5])*2/3]
	want, err := x.QueryContain(probe, 0.6)
	if err != nil {
		t.Fatalf("distributed QueryContain: %v", err)
	}
	found := false
	for _, m := range want {
		if m.ID == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("hosted-shard containment missed the probe's source: %v", want)
	}

	// The peer rejects an out-of-range threshold on the shard RPC itself.
	key := ""
	peerSrv.hostedMu.RLock()
	for k := range peerSrv.hosted {
		key = k
		break
	}
	peerSrv.hostedMu.RUnlock()
	if key == "" {
		t.Fatal("peer hosts no shards after Distribute")
	}
	b, _ := json.Marshal(shardQueryRequest{Shard: key, Set: probe, Mode: "containment", Threshold: 7})
	resp, err := http.Post(peerURL.URL+"/v1/shard/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad shard-RPC threshold: status %d, want 400", resp.StatusCode)
	}
	decodeError(t, resp)
}

// TestServerConcurrentTraffic drives queries, batches and adds from many
// goroutines at once — the serving path the race job guards.
func TestServerConcurrentTraffic(t *testing.T) {
	ts, sets := newTestServer(t)
	postJSON := func(url string, body any, out any) error {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", url, resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := 0; i < 25; i++ {
				switch g % 3 {
				case 0:
					var qr queryResponse
					if err := postJSON(ts.URL+"/query", queryRequest{Set: sets[(g*25+i)%len(sets)]}, &qr); err != nil {
						errc <- err
						return
					}
					if !qr.Found {
						errc <- fmt.Errorf("goroutine %d: self-query %d not found", g, i)
						return
					}
				case 1:
					var br batchResponse
					if err := postJSON(ts.URL+"/query_batch", batchRequest{Sets: sets[:10]}, &br); err != nil {
						errc <- err
						return
					}
					if len(br.Results) != 10 {
						errc <- fmt.Errorf("goroutine %d: bad batch size %d", g, len(br.Results))
						return
					}
				default:
					var ar addResponse
					if err := postJSON(ts.URL+"/add", batchRequest{Sets: [][]uint32{{uint32(1000000 + g*1000 + i)}}}, &ar); err != nil {
						errc <- err
						return
					}
					if len(ar.IDs) != 1 {
						errc <- fmt.Errorf("goroutine %d: bad add response", g)
						return
					}
				}
			}
			errc <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
