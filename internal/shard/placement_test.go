package shard

import (
	"sort"
	"testing"
	"time"

	"repro/internal/snapshot"
)

// waitFor polls cond until it holds or the deadline passes — the
// controller tests' only clock dependence, so they stay fast when the
// condition is already true and robust on slow machines.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// ringPlacement snapshots the current ring's remote-backed placement:
// shard key -> the peers its replicas live on.
func ringPlacement(x *Index) map[string][]string {
	x.mu.RLock()
	defer x.mu.RUnlock()
	out := make(map[string][]string)
	for _, sh := range x.shards {
		if r, ok := sh.(*remoteShard); ok {
			out[r.key] = append([]string(nil), r.replicas...)
		}
	}
	return out
}

// hostedExactly reports whether every peer hosts exactly the keys the
// current ring assigns it — the placement-GC invariant: no superseded
// key survives on any peer, no referenced key is missing.
func hostedExactly(x *Index, servers map[string]*Server) bool {
	placed := ringPlacement(x)
	for base, srv := range servers {
		var want []string
		for key, replicas := range placed {
			if containsStr(replicas, base) {
				want = append(want, key)
			}
		}
		sort.Strings(want)
		got := srv.HostedKeys()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
	}
	return true
}

func assertHostedExactly(t *testing.T, x *Index, servers map[string]*Server) {
	t.Helper()
	if hostedExactly(x, servers) {
		return
	}
	placed := ringPlacement(x)
	for base, srv := range servers {
		t.Logf("peer %s hosts %v", base, srv.HostedKeys())
	}
	t.Fatalf("hosted shards diverge from ring placement %v", placed)
}

// TestPlacementSupersededGC is the regression test for the re-ship leak:
// churn the ring (tombstone, compact — which recalls remote victims —
// then re-distribute the merged result) and every peer must end up
// hosting exactly the keys of the current ring, with zero superseded
// leftovers, while answers stay byte-identical to the all-local twin.
func TestPlacementSupersededGC(t *testing.T) {
	p1, s1 := newPeer(t)
	p2, s2 := newPeer(t)
	peers := []string{p1.URL, p2.URL}
	servers := map[string]*Server{p1.URL: s1, p2.URL: s2}
	opt := &DistributeOptions{Replicas: 2, KeepLocal: true}
	local, dist, probes := distributedPair(t, peers, opt)
	assertHostedExactly(t, dist, servers)

	// Cross the tombstone ratio everywhere so compaction recalls every
	// remote shard, merges them locally, and sweeps the recalled copies.
	for id := 0; id < 390; id += 2 {
		local.Delete(id)
		dist.Delete(id)
	}
	local.Compact()
	dist.Compact()
	assertHostedExactly(t, dist, servers)
	assertIdentical(t, local, dist, probes)

	// Re-distribute the merged ring: the new keys replace the old ones on
	// the peers — a second pass must not leak its predecessors' keys.
	if err := dist.Distribute(peers, opt); err != nil {
		t.Fatalf("re-Distribute: %v", err)
	}
	if dist.Stats().RemoteShards == 0 {
		t.Fatal("re-Distribute placed nothing")
	}
	assertHostedExactly(t, dist, servers)
	assertIdentical(t, local, dist, probes)

	// The sweep is idempotent: a follow-up GC with an unchanged ring has
	// nothing left to delete.
	if n := dist.placementGC(); n != 0 {
		t.Fatalf("second GC sweep deleted %d pairs, want 0", n)
	}
	assertHostedExactly(t, dist, servers)
}

// TestDistributeErrorCleanup: a pass that fails partway leaves the ring
// unchanged and unwinds its successful uploads from reachable peers; the
// unreachable peer's pairs stay recorded (pessimistically) and are
// reconciled once it heals.
func TestDistributeErrorCleanup(t *testing.T) {
	p1, s1 := newPeer(t)
	p2, f2 := newFlakyPeer(t)
	peers := []string{p1.URL, p2.URL}
	sets, _ := workload(300, 0.8, 711)
	x := Build(sets, 0.5, exactOptions(3, 30, 73))
	ref := Build(sets, 0.5, exactOptions(3, 30, 73))

	f2.broken.Store(true)
	if err := x.Distribute(peers, &DistributeOptions{Replicas: 2, KeepLocal: true}); err == nil {
		t.Fatal("Distribute with a broken peer succeeded")
	}
	if st := x.Stats(); st.RemoteShards != 0 {
		t.Fatalf("failed Distribute left %d remote shards in the ring", st.RemoteShards)
	}
	// The healthy peer's orphaned uploads were swept on the error path.
	if n := s1.HostedShards(); n != 0 {
		t.Fatalf("healthy peer still hosts %d orphaned shards after failed pass", n)
	}
	// The broken peer could not confirm its DELETEs, so those pairs stay
	// recorded for a later sweep rather than being forgotten.
	if _, keys := x.placement.stats(); keys == 0 {
		t.Fatal("registry dropped the unreachable peer's pairs")
	}

	// Heal and retry: the pass succeeds and every peer ends up hosting
	// exactly the ring's keys — the stale record reconciles away.
	f2.broken.Store(false)
	if err := x.Distribute(peers, &DistributeOptions{Replicas: 2, KeepLocal: true}); err != nil {
		t.Fatalf("Distribute after heal: %v", err)
	}
	srv2, ok := f2.h.(*Server)
	if !ok {
		t.Fatal("flaky peer does not wrap a *Server")
	}
	assertHostedExactly(t, x, map[string]*Server{p1.URL: s1, p2.URL: srv2})

	probes := append([][]uint32{}, sets[:60]...)
	assertIdentical(t, ref, x, probes)
}

// TestPlacementControllerAutoShip: with a controller running, shards
// sealed after placement are shipped automatically — no explicit
// Distribute call — and a second controller cannot be started.
func TestPlacementControllerAutoShip(t *testing.T) {
	p1, s1 := newPeer(t)
	p2, s2 := newPeer(t)
	peers := []string{p1.URL, p2.URL}
	servers := map[string]*Server{p1.URL: s1, p2.URL: s2}
	sets, _ := workload(300, 0.8, 721)
	local := Build(sets, 0.5, exactOptions(3, 30, 75))
	x := Build(sets, 0.5, exactOptions(3, 30, 75))

	err := x.StartPlacement(peers, &DistributeOptions{Replicas: 2, KeepLocal: true},
		&PlacementOptions{Interval: 20 * time.Millisecond, ProbeInterval: -1})
	if err != nil {
		t.Fatalf("StartPlacement: %v", err)
	}
	defer x.StopPlacement()
	if err := x.StartPlacement(peers, nil, nil); err == nil {
		t.Fatal("second StartPlacement succeeded")
	}

	// The initial kick ships the ring built before the controller existed.
	waitFor(t, "initial placement pass", func() bool {
		st := x.Stats()
		return st.RemoteShards == st.Shards && st.RemoteShards > 0 && hostedExactly(x, servers)
	})

	// Seal new shards: the controller observes the seal kick and ships
	// them without an explicit Distribute.
	extra, _ := workload(60, 0.8, 723)
	local.Add(extra)
	x.Add(extra)
	waitFor(t, "auto-ship of sealed shards", func() bool {
		st := x.Stats()
		return st.Buffered == 0 && st.RemoteShards == st.Shards && hostedExactly(x, servers)
	})

	probes := append(append([][]uint32{}, sets[:60]...), extra[:20]...)
	assertIdentical(t, local, x, probes)
	x.StopPlacement()
	x.StopPlacement() // idempotent no-op
}

// TestPlacementControllerCompactReship: a compaction pass under a
// running controller recalls remote victims, merges them, sweeps the
// recalled keys, and the controller re-ships the merged shard — ending
// with peers hosting exactly the new ring and byte-identical answers.
func TestPlacementControllerCompactReship(t *testing.T) {
	p1, s1 := newPeer(t)
	p2, s2 := newPeer(t)
	peers := []string{p1.URL, p2.URL}
	servers := map[string]*Server{p1.URL: s1, p2.URL: s2}
	opt := &DistributeOptions{Replicas: 2, KeepLocal: true}
	local, dist, probes := distributedPair(t, peers, opt)

	if err := dist.StartPlacement(peers, opt,
		&PlacementOptions{Interval: 20 * time.Millisecond, ProbeInterval: -1}); err != nil {
		t.Fatalf("StartPlacement: %v", err)
	}
	defer dist.StopPlacement()

	for id := 0; id < 390; id += 2 {
		local.Delete(id)
		dist.Delete(id)
	}
	local.Compact()
	dist.Compact()
	waitFor(t, "post-compaction re-ship and GC", func() bool {
		st := dist.Stats()
		return st.RemoteShards == st.Shards && st.RemoteShards > 0 && hostedExactly(dist, servers)
	})
	assertIdentical(t, local, dist, probes)
}

// TestPlacementProbeRebalance: active probes flip the shared health bit
// after UnhealthyAfter consecutive failures, rebalancing (when enabled)
// re-ships the dead peer's replicas to healthy ones without touching
// answers, and a healed peer's first successful probe flips the bit
// back and lets the GC retire its stale copies.
func TestPlacementProbeRebalance(t *testing.T) {
	p1, s1 := newPeer(t)
	p2, f2 := newFlakyPeer(t)
	peers := []string{p1.URL, p2.URL}
	opt := &DistributeOptions{Replicas: 1, KeepLocal: true}
	local, dist, probes := distributedPair(t, peers, opt)
	if err := dist.StartPlacement(peers, opt, &PlacementOptions{
		Interval:        25 * time.Millisecond,
		ProbeInterval:   5 * time.Millisecond,
		UnhealthyAfter:  2,
		ProbeBackoffMax: 10 * time.Millisecond,
		Rebalance:       true,
	}); err != nil {
		t.Fatalf("StartPlacement: %v", err)
	}
	defer dist.StopPlacement()

	waitFor(t, "probe marks live peers healthy", func() bool {
		return dist.metrics.peer(p2.URL).healthy.Load()
	})

	// Kill peer 2: probes flip its health bit and the rebalancer moves
	// its replicas onto peer 1.
	f2.broken.Store(true)
	waitFor(t, "probe flips dead peer unhealthy", func() bool {
		return !dist.metrics.peer(p2.URL).healthy.Load()
	})
	waitFor(t, "replicas rebalanced off the dead peer", func() bool {
		placed := ringPlacement(dist)
		if len(placed) == 0 {
			return false
		}
		for _, replicas := range placed {
			if containsStr(replicas, p2.URL) {
				return false
			}
		}
		return true
	})
	assertIdentical(t, local, dist, probes)

	// Heal: the next successful probe flips the bit back, and the stale
	// copies the dead peer still holds are swept by a later GC pass.
	f2.broken.Store(false)
	waitFor(t, "probe flips healed peer healthy", func() bool {
		return dist.metrics.peer(p2.URL).healthy.Load()
	})
	srv2, ok := f2.h.(*Server)
	if !ok {
		t.Fatal("flaky peer does not wrap a *Server")
	}
	waitFor(t, "stale copies swept from healed peer", func() bool {
		return hostedExactly(dist, map[string]*Server{p1.URL: s1, p2.URL: srv2})
	})
	assertIdentical(t, local, dist, probes)
}

// TestPlacementSaveLoadRoundTrip: the shipped-shard record survives the
// manifest round trip, so a restarted coordinator still owns its
// previous life's keys — a re-distribution after Load reconciles the
// peers to exactly the new ring.
func TestPlacementSaveLoadRoundTrip(t *testing.T) {
	p1, s1 := newPeer(t)
	p2, s2 := newPeer(t)
	peers := []string{p1.URL, p2.URL}
	servers := map[string]*Server{p1.URL: s1, p2.URL: s2}
	opt := &DistributeOptions{Replicas: 2, KeepLocal: true}
	local, dist, probes := distributedPair(t, peers, opt)
	wantEpoch, wantKeys := dist.placement.stats()
	if wantEpoch == 0 || wantKeys == 0 {
		t.Fatalf("no placement state after Distribute (epoch=%d keys=%d)", wantEpoch, wantKeys)
	}

	dir := t.TempDir()
	if err := dist.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	m, err := snapshot.ReadManifest(dir)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if m.Placement == nil || m.Placement.Epoch != wantEpoch || len(m.Placement.Shipped) != wantKeys {
		t.Fatalf("manifest placement = %+v, want epoch %d with %d keys", m.Placement, wantEpoch, wantKeys)
	}

	y, err := Load(dir, 2)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if epoch, keys := y.placement.stats(); epoch != wantEpoch || keys != wantKeys {
		t.Fatalf("loaded placement = (epoch %d, keys %d), want (%d, %d)", epoch, keys, wantEpoch, wantKeys)
	}

	// The loaded index is all-local (snapshots are topology-free), but it
	// still owns the shipped keys: distributing again reconciles the
	// peers against the restored record.
	if err := y.Distribute(peers, opt); err != nil {
		t.Fatalf("Distribute after Load: %v", err)
	}
	assertHostedExactly(t, y, servers)
	assertIdentical(t, local, y, probes)
}

// TestPlacementStats: the coordinator surfaces its placement record in
// Stats — epoch counts passes, keys counts live tracked shards.
func TestPlacementStats(t *testing.T) {
	p1, _ := newPeer(t)
	p2, _ := newPeer(t)
	_, dist, _ := distributedPair(t, []string{p1.URL, p2.URL},
		&DistributeOptions{Replicas: 1, KeepLocal: true})
	st := dist.Stats()
	if st.PlacementEpoch != 1 {
		t.Fatalf("PlacementEpoch = %d after one pass, want 1", st.PlacementEpoch)
	}
	if st.PlacementKeys != st.RemoteShards {
		t.Fatalf("PlacementKeys = %d, ring has %d remote shards", st.PlacementKeys, st.RemoteShards)
	}
	if err := dist.Distribute([]string{p1.URL, p2.URL}, nil); err != nil {
		t.Fatalf("re-Distribute: %v", err)
	}
	if got := dist.Stats().PlacementEpoch; got != 2 {
		t.Fatalf("PlacementEpoch = %d after two passes, want 2", got)
	}
}
