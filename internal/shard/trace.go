package shard

import (
	"fmt"
	"sort"
)

// QueryTrace is the per-query breakdown behind the slow-query log and the
// "debug":true response field: where one query's time went, shard by
// shard, plus its candidate-pipeline totals and cache outcome. Traced
// queries run exactly the normal merge — tracing only times and counts
// around it — so a trace is always of the answer actually returned.
// Tracing allocates (the per-shard entries), which is why it is opt-in
// per request rather than always-on: the plain query path keeps its
// zero-allocation contract.
type QueryTrace struct {
	// CacheHit reports whether the result cache answered; a hit has no
	// shard entries (no shard was consulted).
	CacheHit bool `json:"cache_hit"`
	// TotalNs is the whole call, snapshot to merged answer.
	TotalNs int64 `json:"total_ns"`
	// Candidates and Verified sum the local shards' pipeline counts plus
	// the exact buffer scans. Remote shards' internal counts stay on their
	// peers (visible in the peers' own /metrics).
	Candidates uint64 `json:"candidates"`
	Verified   uint64 `json:"verified"`
	// Shards is one entry per consulted shard in ring order, plus one
	// trailing "buffer" entry covering the exact scans of the side buffer
	// and any in-flight seals.
	Shards []ShardTrace `json:"shards,omitempty"`
}

// ShardTrace is one shard's share of a traced query.
type ShardTrace struct {
	// Shard names the entry: "local-<ring index>", the remote shard key,
	// or "buffer".
	Shard string `json:"shard"`
	// Kind is "local", "remote" or "buffer".
	Kind string `json:"kind"`
	// Ns is the time spent answering this shard. Remote shards are asked
	// in parallel, so the entries can sum to more than TotalNs.
	Ns int64 `json:"ns"`
	// Matches counts the shard's raw matches before tombstone filtering.
	Matches int `json:"matches"`
	// Candidates and Verified are the shard's pipeline counts; zero for
	// remote shards (counted peer-side).
	Candidates uint64 `json:"candidates"`
	Verified   uint64 `json:"verified"`
}

// add appends one shard entry and folds its counts into the totals.
func (tr *QueryTrace) add(e ShardTrace) {
	tr.Candidates += e.Candidates
	tr.Verified += e.Verified
	tr.Shards = append(tr.Shards, e)
}

// shardTraceName names a ring shard for traces.
func shardTraceName(i int, sh shardBackend) (name, kind string) {
	switch b := sh.(type) {
	case *remoteShard:
		return b.key, "remote"
	case *coldShard:
		return fmt.Sprintf("cold-%d", i), "cold"
	}
	return fmt.Sprintf("local-%d", i), "local"
}

// PeerHealth is one peer's serving view in a health report: the passive
// health bit plus its lifetime RPC counters.
type PeerHealth struct {
	Peer      string `json:"peer"`
	Healthy   bool   `json:"healthy"`
	RPCs      uint64 `json:"rpcs"`
	Errors    uint64 `json:"errors"`
	Failovers uint64 `json:"failovers"`
}

// HealthStatus is the readiness report behind /healthz and /readyz. Ready
// is false exactly when some remote-backed shard is unanswerable: every
// replica's last RPC failed and no local copy remains — the condition
// under which QueryErr would return an error. An all-local ring is always
// ready.
type HealthStatus struct {
	Ready        bool   `json:"ready"`
	Generation   int    `json:"generation"`
	Version      uint64 `json:"version"`
	Shards       int    `json:"shards"`
	RemoteShards int    `json:"remote_shards"`
	// UnreadyShards lists the remote shard keys with no healthy replica
	// and no local copy.
	UnreadyShards []string `json:"unready_shards,omitempty"`
	// Peers covers every peer referenced by the current ring, sorted by
	// URL. Health is passive — observed from real query RPCs, not probes —
	// so a never-contacted peer reports healthy.
	Peers []PeerHealth `json:"peers,omitempty"`
}

// Health reports the index's current serving health from the ring and the
// passive per-peer counters.
func (x *Index) Health() HealthStatus {
	x.mu.RLock()
	shards := x.shards
	gen := x.generation
	x.mu.RUnlock()

	st := HealthStatus{
		Ready:      true,
		Generation: gen,
		Version:    x.version.Load(),
		Shards:     len(shards),
	}
	seen := make(map[string]bool)
	for _, sh := range shards {
		r, ok := sh.(*remoteShard)
		if !ok {
			continue
		}
		st.RemoteShards++
		answerable := r.local != nil
		for _, base := range r.replicas {
			pm := x.metrics.peer(base)
			if pm.isHealthy() {
				answerable = true
			}
			if !seen[base] {
				seen[base] = true
				ph := PeerHealth{Peer: base, Healthy: pm.isHealthy()}
				if pm != nil {
					ph.RPCs = pm.lat.Count()
					ph.Errors = pm.rpcErrors.Value()
					ph.Failovers = pm.failovers.Value()
				}
				st.Peers = append(st.Peers, ph)
			}
		}
		if !answerable {
			st.Ready = false
			st.UnreadyShards = append(st.UnreadyShards, r.key)
		}
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].Peer < st.Peers[j].Peer })
	return st
}
