package shard

import (
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/contain"
	"repro/internal/cpindex"
	"repro/internal/intset"
	"repro/internal/mmap"
	"repro/internal/snapshot"
)

// coldShard is the memory-tiered ring shard: the same cpshard container a
// hot shard saves, but memory-mapped and decoded lazily instead of fully
// materialized. Opening one costs the container headers, the meta section
// and the id map — a few KB regardless of shard size — and the bulk sets
// payload stays on untouched pages until a candidate reaches exact
// verification (see cpindex.Mapped). Queries route through the same flat
// traversal and the same verification kernels as the hot path, so a cold
// shard's answers are byte-identical to the subIndex it was demoted from;
// only latency differs (first-touch page faults, per-candidate decode).
//
// A cold shard retains its raw container bytes (aliasing the mapping), so
// Save is a file copy, compaction decodes them like a fetched-back remote
// shard, and promotion to hot is exactly a snapshot load. Corruption in
// any lazily read region surfaces as an error wrapping snapshot.ErrCorrupt
// at first touch — never a panic or a silently wrong answer.
type coldShard struct {
	// raw is the complete container (aliases file.Data); file pins the
	// mapping for the GC — mapped memory is invisible to the collector, so
	// holders of raw sub-slices must keep the coldShard reachable.
	raw    []byte
	file   *mmap.File
	snap   *snapshot.Mapped
	mapped *cpindex.Mapped
	ids    []int // local id -> global id
	total  int   // id high-water mark at open; bounds promotion re-validation
	seed   uint64

	// hits counts queries served since the last retier pass — the
	// query-frequency gauge the auto-tier policy reads (and resets).
	hits atomic.Uint64

	// crcOnce defers the whole-container checksum (it would fault every
	// page in) until something actually needs the shard's content identity.
	crcOnce sync.Once
	crcVal  uint32

	// containMu guards the one-time containment materialization: the
	// candidate structure plus the heap copy of the sets its verification
	// reads. Cold containment therefore warms the shard up — documented
	// cost of querying containment against the cold tier.
	containMu   sync.Mutex
	contain     *contain.Index
	containSets [][]uint32
}

func (c *coldShard) size() int        { return len(c.ids) }
func (c *coldShard) globalIDs() []int { return c.ids }

// rawCRC checksums the container bytes (once), faulting the file in — the
// identity a ship or save-time verification would need.
func (c *coldShard) rawCRC() uint32 {
	c.crcOnce.Do(func() { c.crcVal = crc32.Checksum(c.raw, castagnoli) })
	runtime.KeepAlive(c.file)
	return c.crcVal
}

func (c *coldShard) queryBest(q []uint32) (int, float64, bool, error) {
	c.hits.Add(1)
	local, sim, ok, err := c.mapped.Query(q)
	if err != nil || !ok {
		return -1, 0, false, err
	}
	return c.ids[local], sim, true, nil
}

func (c *coldShard) queryAll(q []uint32) ([]cpindex.Match, error) {
	ms, _, err := c.queryAllStats(q)
	return ms, err
}

// queryAllStats is queryAll with the candidate-pipeline counts exposed,
// for the traced fan-out path.
func (c *coldShard) queryAllStats(q []uint32) ([]cpindex.Match, cpindex.QueryStats, error) {
	c.hits.Add(1)
	ms, st, err := c.mapped.AppendAllWithStats(nil, q)
	if err != nil {
		return nil, st, err
	}
	for i := range ms {
		ms[i].ID = c.ids[ms[i].ID]
	}
	return ms, st, nil
}

func (c *coldShard) queryBatch(qs [][]uint32) ([][]cpindex.Match, error) {
	out := make([][]cpindex.Match, len(qs))
	for i, q := range qs {
		ms, err := c.queryAll(q)
		if err != nil {
			return nil, err
		}
		out[i] = ms
	}
	return out, nil
}

// containSide materializes the shard's containment structure on first
// containment query: the sets are decoded onto the heap (verification
// needs them all) and the persisted signature section — present in every
// v2+ container — rebuilds the candidate structure without re-signing;
// v1 containers fall back to a full build under opts.
func (c *coldShard) containSide(opts contain.Options) (*contain.Index, [][]uint32, error) {
	c.containMu.Lock()
	defer c.containMu.Unlock()
	if c.contain != nil {
		return c.contain, c.containSets, nil
	}
	sets, err := c.mapped.Sets()
	if err != nil {
		return nil, nil, err
	}
	var ci *contain.Index
	if c.snap.Lookup("contain") != nil {
		raw, err := c.snap.Section("contain")
		if err != nil {
			return nil, nil, err
		}
		ci, err = decodeContainPayload(raw, sets)
		if err != nil {
			return nil, nil, err
		}
	} else {
		ci = contain.Build(sets, opts)
	}
	c.contain, c.containSets = ci, sets
	runtime.KeepAlive(c.file)
	return ci, sets, nil
}

func (c *coldShard) queryContain(q []uint32, t float64, opts contain.Options) ([]cpindex.Match, error) {
	c.hits.Add(1)
	ci, sets, err := c.containSide(opts)
	if err != nil {
		return nil, err
	}
	var ms []cpindex.Match
	for _, lid := range ci.Query(q, t) {
		if sim, ok := intset.ContainmentAtLeast(q, sets[lid], t); ok {
			ms = append(ms, cpindex.Match{ID: c.ids[lid], Sim: sim})
		}
	}
	return ms, nil
}

// openColdShard maps one cpshard container file and cross-checks it
// against its manifest entry with exactly decodeSubIndex's guards — id
// bounds, id/set count agreement, the build seed — while leaving the bulk
// sets payload unread. The file may be unlinked after this returns (the
// demotion spool does): the mapping keeps the bytes reachable.
func openColdShard(path string, entry snapshot.ShardEntry, total int) (*coldShard, error) {
	f, err := mmap.Open(path)
	if err != nil {
		return nil, err
	}
	cold, err := openColdFromMapping(f, entry, total)
	if err != nil {
		f.Close()
		return nil, err
	}
	return cold, nil
}

func openColdFromMapping(f *mmap.File, entry snapshot.ShardEntry, total int) (*coldShard, error) {
	snap, err := snapshot.OpenMapped(f.Data, shardKind)
	if err != nil {
		return nil, err
	}
	m, err := cpindex.OpenMapped(snap, f)
	if err != nil {
		return nil, err
	}
	raw, err := snap.Section("ids")
	if err != nil {
		return nil, err
	}
	c := snapshot.NewCursor("ids", raw)
	n := c.Count(total)
	ids := make([]int, n)
	for i := range ids {
		id := c.Uvarint()
		if id >= uint64(total) {
			c.Fail("global id %d out of [0,%d)", id, total)
			break
		}
		ids[i] = int(id)
	}
	if err := c.Done(); err != nil {
		return nil, err
	}
	if len(ids) != m.Len() {
		return nil, fmt.Errorf("%w: shard has %d ids for %d sets",
			snapshot.ErrCorrupt, len(ids), m.Len())
	}
	if m.Len() != entry.Sets {
		return nil, fmt.Errorf("%w: shard holds %d sets, manifest says %d",
			snapshot.ErrCorrupt, m.Len(), entry.Sets)
	}
	if got := m.Options().Seed; got != entry.Seed {
		return nil, fmt.Errorf("%w: shard built with seed %d, manifest says %d (files shuffled?)",
			snapshot.ErrCorrupt, got, entry.Seed)
	}
	return &coldShard{
		raw:    snap.Bytes(),
		file:   f,
		snap:   snap,
		mapped: m,
		ids:    ids,
		total:  total,
		seed:   entry.Seed,
	}, nil
}
