package shard

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cpindex"
)

// exactOptions returns options whose LeafSize exceeds every shard size,
// so each tree is a single exactly-scanned leaf and query results are
// exact (recall 1.0). That makes byte-identical before/after comparisons
// meaningful: any drift is a merge/tombstone bug, never recall noise.
func exactOptions(shards, mergeThreshold int, seed uint64) *Options {
	return &Options{
		Shards:         shards,
		MergeThreshold: mergeThreshold,
		Trees:          2,
		LeafSize:       1 << 20,
		Seed:           seed,
		Workers:        2,
	}
}

// churn builds an index in exact mode, seals several small shards via
// Add, and deletes every third appended id — the workload compaction
// exists for. It returns the index, the probe queries and the deleted
// ids.
func churn(t *testing.T, opt *Options) (*Index, [][]uint32, []int) {
	t.Helper()
	sets, _ := workload(400, 0.8, 301)
	extra, _ := workload(240, 0.8, 303)
	x := Build(sets, 0.5, opt)
	for i := 0; i < len(extra); i += 40 {
		end := i + 40
		if end > len(extra) {
			end = len(extra)
		}
		x.Add(extra[i:end])
	}
	var deleted []int
	for id := len(sets); id < len(sets)+len(extra); id += 3 {
		x.Delete(id)
		deleted = append(deleted, id)
	}
	probes := append(append([][]uint32{}, sets[:120]...), extra...)
	return x, probes, deleted
}

// TestCompactEquivalence pins the tentpole contract: a compaction pass
// shrinks the ring and changes no answers — Query and QueryBatch results
// are byte-identical before and after, the deleted ids stay deleted, and
// the live count is untouched.
func TestCompactEquivalence(t *testing.T) {
	opt := exactOptions(2, 40, 41)
	x, probes, _ := churn(t, opt)

	before := x.Stats()
	if before.Shards < 4 {
		t.Fatalf("churn produced only %d shards, want several seals", before.Shards)
	}
	wantBatch := mustQueryBatch(t, x, probes)
	wantBest := make([][3]any, len(probes))
	for i, q := range probes {
		id, sim, ok := mustQuery(t, x, q)
		wantBest[i] = [3]any{id, sim, ok}
	}

	res := x.Compact()
	if res.Merged < 2 {
		t.Fatalf("Compact merged %d shards, want >= 2 (result %+v)", res.Merged, res)
	}
	if res.Reclaimed == 0 {
		t.Fatal("Compact reclaimed no tombstones despite deletes in sealed shards")
	}
	after := x.Stats()
	if after.Shards >= before.Shards {
		t.Fatalf("ring did not shrink: %d -> %d shards", before.Shards, after.Shards)
	}
	if after.Sets != before.Sets {
		t.Fatalf("live count changed: %d -> %d", before.Sets, after.Sets)
	}
	if after.Tombstones != before.Tombstones-res.Reclaimed {
		t.Fatalf("tombstones %d, want %d-%d", after.Tombstones, before.Tombstones, res.Reclaimed)
	}
	if after.Compactions != 1 || after.CompactedShards != res.Merged || after.Reclaimed < res.Reclaimed {
		t.Fatalf("compaction counters wrong: %+v vs result %+v", after, res)
	}
	if after.Generation <= before.Generation {
		t.Fatalf("generation did not bump: %d -> %d", before.Generation, after.Generation)
	}

	got := mustQueryBatch(t, x, probes)
	for i := range probes {
		if !equalMatches(t, got[i], wantBatch[i]) {
			t.Fatalf("query %d: QueryBatch changed across Compact: %v != %v", i, got[i], wantBatch[i])
		}
		id, sim, ok := mustQuery(t, x, probes[i])
		if w := wantBest[i]; id != w[0] || sim != w[1] || ok != w[2] {
			t.Fatalf("query %d: Query changed across Compact: (%d %v %v) != %v", i, id, sim, ok, w)
		}
	}

	// A second pass finds at most the merged shard, which is no longer
	// small and carries no tombstones: nothing eligible, ring unchanged.
	res2 := x.Compact()
	if st := x.Stats(); res2.Merged != 0 && st.Shards > after.Shards {
		t.Fatalf("second Compact grew the ring: %+v -> %+v", after, st)
	}
}

// TestCompactTombstoneRatioRewritesLargeShard: a shard above CompactSmall
// is still rewritten once enough of it is deleted, reclaiming the
// tombstones without touching answers.
func TestCompactTombstoneRatioRewritesLargeShard(t *testing.T) {
	sets, _ := workload(600, 0.8, 307)
	opt := exactOptions(2, 1<<20, 43)
	opt.CompactSmall = 10 // nothing is "small": only the ratio can trigger
	x := Build(sets, 0.5, opt)
	// Delete 40% of shard 0 (ids 0..299 under the contiguous partition).
	for id := 0; id < 300; id += 5 {
		x.Delete(id)
		x.Delete(id + 1)
	}
	probes := sets[:150]
	want := mustQueryBatch(t, x, probes)

	res := x.Compact()
	if res.Merged != 1 || res.Reclaimed != 120 {
		t.Fatalf("Compact = %+v, want 1 shard rewritten with 120 reclaimed", res)
	}
	st := x.Stats()
	if st.Shards != 2 {
		t.Fatalf("ring has %d shards, want 2 (rewrite, not removal)", st.Shards)
	}
	if st.Tombstones != 0 {
		t.Fatalf("tombstones not reclaimed: %d left", st.Tombstones)
	}
	got := mustQueryBatch(t, x, probes)
	for i := range probes {
		if !equalMatches(t, got[i], want[i]) {
			t.Fatalf("query %d changed across ratio-triggered rewrite", i)
		}
	}
}

// TestCompactAllTombstonedShards: when every set of the victim shards is
// deleted, compaction builds nothing — the victims just leave the ring —
// and queries that used to rescan past dead matches now miss cleanly.
func TestCompactAllTombstonedShards(t *testing.T) {
	sets := [][]uint32{{1, 2, 3}, {1, 2, 4}, {50, 51}, {60, 61}}
	x := Build(sets, 0.5, exactOptions(2, 100, 47))
	x.Delete(0)
	x.Delete(1)
	res := x.Compact()
	if res.Merged == 0 || res.Reclaimed != 2 {
		t.Fatalf("Compact = %+v, want both tombstones reclaimed", res)
	}
	if id, _, ok := mustQuery(t, x, []uint32{1, 2, 3}); ok {
		t.Fatalf("query found id %d in a fully deleted shard", id)
	}
	if id, _, ok := mustQuery(t, x, []uint32{50, 51}); !ok || id != 2 {
		t.Fatalf("live set lost across compaction: id=%d ok=%v", id, ok)
	}
	if st := x.Stats(); st.Sets != 2 || st.Tombstones != 0 {
		t.Fatalf("unexpected stats after all-dead compaction: %+v", st)
	}
	// A no-op follow-up pass still reports the current ring generation,
	// not zero — clients use it as the superseded-snapshot signal.
	if noop := x.Compact(); noop.Merged != 0 || noop.Generation != res.Generation {
		t.Fatalf("no-op Compact = %+v, want merged=0 generation=%d", noop, res.Generation)
	}
}

// TestQueryDeadBestMatchRescan is the regression suite for the Query
// rescan path: when a shard's chosen best match is tombstoned the shard
// is rescanned for its best live match, and when *every* match in the
// shard is tombstoned the shard must contribute no match — never a dead
// id, before or after compaction reclaims the tombstones.
func TestQueryDeadBestMatchRescan(t *testing.T) {
	q := []uint32{1, 2, 3, 4}
	sets := [][]uint32{
		{1, 2, 3, 4},    // 0: sim 1.0 — the best match, to be deleted
		{1, 2, 3, 4, 5}, // 1: sim 0.8 — best live match after the delete
		{90, 91},        // 2: filler so the shard isn't all-matches
	}
	x := Build(sets, 0.5, exactOptions(1, 100, 53))
	x.Delete(0)
	if id, sim, ok := mustQuery(t, x, q); !ok || id != 1 || sim != 0.8 {
		t.Fatalf("rescan past dead best: got id=%d sim=%v ok=%v, want id=1 sim=0.8", id, sim, ok)
	}

	// Every match tombstoned: the shard must report no match.
	x.Delete(1)
	if id, _, ok := mustQuery(t, x, q); ok {
		t.Fatalf("all matches dead, Query still returned id=%d", id)
	}
	if ms := mustQueryAll(t, x, q); len(ms) != 0 {
		t.Fatalf("all matches dead, QueryAll returned %v", ms)
	}

	// Same, with the live answer in a different shard: the dead shard
	// contributes nothing, the live shard's match wins.
	y := Build([][]uint32{{1, 2, 3, 4}, {1, 2, 3, 4, 5, 6}}, 0.5, exactOptions(2, 100, 59))
	y.Delete(0)
	if id, sim, ok := mustQuery(t, y, q); !ok || id != 1 || sim < 0.5 {
		t.Fatalf("live match in other shard lost: id=%d sim=%v ok=%v", id, sim, ok)
	}

	// After compaction reclaims the dead entries the answers must hold.
	x.Compact()
	if id, _, ok := mustQuery(t, x, q); ok {
		t.Fatalf("after compaction, Query resurrected id=%d", id)
	}
	if id, _, ok := mustQuery(t, x, []uint32{90, 91}); !ok || id != 2 {
		t.Fatalf("live filler lost after compaction: id=%d ok=%v", id, ok)
	}
}

// TestDeleteIdempotentAfterReclaim is the regression test for the
// dropped-id accounting bug: once a deleted entry is physically
// reclaimed (by a seal compacting the buffer, or by Compact rewriting a
// shard) its tombstone retires — a second Delete of the same id must be
// a no-op, not a fresh tombstone that corrupts the live count.
func TestDeleteIdempotentAfterReclaim(t *testing.T) {
	// Seal-path reclaim.
	sets := [][]uint32{{1, 2}, {3, 4}}
	x := Build(sets, 0.5, &Options{Shards: 1, Seed: 61, MergeThreshold: 100})
	x.Add([][]uint32{{5, 6}}) // id 2, buffered
	if !x.Delete(2) {
		t.Fatal("first Delete(2) should report live")
	}
	x.Flush() // seal drops the dead entry and retires its tombstone
	if x.Delete(2) {
		t.Error("Delete of a seal-reclaimed id reported live")
	}
	if n := x.Len(); n != 2 {
		t.Errorf("Len()=%d after double delete, want 2", n)
	}
	if st := x.Stats(); st.Reclaimed != 1 || st.Tombstones != 0 {
		t.Errorf("reclaim accounting wrong: %+v", st)
	}

	// Compaction-path reclaim.
	y, _, dead := churn(t, exactOptions(2, 40, 67))
	before := y.Len()
	res := y.Compact()
	if res.Reclaimed == 0 {
		t.Fatal("compaction reclaimed nothing")
	}
	redeleted := 0
	for _, id := range dead {
		if y.Delete(id) {
			redeleted++
		}
	}
	if redeleted != 0 {
		t.Errorf("%d compaction-reclaimed ids accepted a second delete", redeleted)
	}
	if n := y.Len(); n != before {
		t.Errorf("Len drifted %d -> %d across idempotent deletes", before, n)
	}
}

// TestCompactSaveLoad: snapshots taken after — and concurrently with — a
// compaction restore an index that answers identically.
func TestCompactSaveLoad(t *testing.T) {
	x, probes, dead := churn(t, exactOptions(2, 40, 71))
	want := mustQueryBatch(t, x, probes)

	// Save racing the compaction: the snapshot sees the old or the new
	// ring, both of which answer identically.
	dir := t.TempDir()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		x.Compact()
	}()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	mid, err := Load(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := mustQueryBatch(t, mid, probes)
	for i := range probes {
		if !equalMatches(t, got[i], want[i]) {
			t.Fatalf("query %d differs after mid-compaction save/load", i)
		}
	}

	// Save after the compaction: the manifest carries the merged shard,
	// the retired tombstones and the dropped ids.
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	post, err := Load(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	got = mustQueryBatch(t, post, probes)
	for i := range probes {
		if !equalMatches(t, got[i], want[i]) {
			t.Fatalf("query %d differs after post-compaction save/load", i)
		}
	}
	ls, xs := post.Stats(), x.Stats()
	if ls.Shards != xs.Shards || ls.Tombstones != xs.Tombstones ||
		ls.Compactions != xs.Compactions || ls.Reclaimed != xs.Reclaimed ||
		ls.Generation != xs.Generation || ls.Sets != xs.Sets {
		t.Fatalf("loaded stats %+v != live stats %+v", ls, xs)
	}
	// Deleted ids must stay deleted across the round trip — reclaimed
	// ones via the dropped set, unreclaimed ones via their tombstones.
	for _, id := range dead {
		if post.Delete(id) {
			t.Fatalf("deleted id %d deletable again after load: %+v", id, post.Stats())
		}
	}
}

// TestCompactConcurrentServing races queries, batch queries, appends and
// deletes against repeated compactions — the serving guarantee is that
// none of them ever block on a compaction or observe a dead id.
func TestCompactConcurrentServing(t *testing.T) {
	sets, _ := workload(300, 0.8, 401)
	extra, _ := workload(300, 0.8, 403)
	x := Build(sets, 0.5, &Options{Shards: 2, Seed: 73, MergeThreshold: 30, Workers: 2})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := range extra {
			ids := x.Add(extra[i : i+1])
			if i%4 == 0 {
				x.Delete(ids[0])
			}
		}
	}()
	go func() {
		defer wg.Done()
		for pass := 0; pass < 8; pass++ {
			x.Compact()
		}
	}()
	go func() {
		defer wg.Done()
		deadSince := len(sets)
		for pass := 0; pass < 6; pass++ {
			for i := 0; i < len(sets); i += 7 {
				if _, sim, ok := mustQuery(t, x, sets[i]); !ok || sim < 0.5 {
					t.Errorf("self-query %d lost during compaction churn", i)
					return
				}
			}
			for _, ms := range mustQueryBatch(t, x, extra[:40]) {
				for _, m := range ms {
					if m.ID >= deadSince && (m.ID-deadSince)%4 == 0 {
						// The add/delete goroutine may not have deleted it
						// yet; a returned id only proves it was live at
						// snapshot time, so no assertion — this loop is
						// here for the race detector.
						_ = m
					}
				}
			}
		}
	}()
	wg.Wait()
	st := x.Stats()
	if st.Sets != len(sets)+len(extra)-len(extra)/4 {
		t.Fatalf("live count drifted: %+v", st)
	}
	if deleted := x.DeleteBatch([]int{-1, 1 << 30}); deleted != 0 {
		t.Fatalf("out-of-range deletes reported %d live", deleted)
	}
}

// TestAutoCompact: with AutoCompact on, sealing past the policy
// thresholds triggers a background pass that shrinks the ring without
// any Compact call, and answers are unchanged.
func TestAutoCompact(t *testing.T) {
	opt := exactOptions(1, 30, 79)
	opt.AutoCompact = true
	sets, _ := workload(60, 0.8, 405)
	extra, _ := workload(240, 0.8, 407)
	x := Build(sets, 0.5, opt)
	for i := 0; i < len(extra); i += 30 {
		end := i + 30
		if end > len(extra) {
			end = len(extra)
		}
		x.Add(extra[i:end])
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := x.Stats()
		if st.Compactions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-compaction never ran: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Every appended set remains findable under its global id.
	for i, q := range extra {
		found := false
		for _, m := range mustQueryAll(t, x, q) {
			if m.ID == len(sets)+i {
				found = true
			}
		}
		if !found {
			t.Fatalf("appended set %d lost after auto-compaction", i)
		}
	}
}

// TestCompactPreservesStandaloneEquivalence: after compaction the merged
// shard is just another cpindex — rebuilt standalone with the same sets
// and seed it answers identically, pinning the determinism discipline.
func TestCompactPreservesStandaloneEquivalence(t *testing.T) {
	x, _, _ := churn(t, exactOptions(2, 40, 83))
	st := x.Stats()
	res := x.Compact()
	if res.Merged == 0 {
		t.Fatalf("nothing compacted: %+v", st)
	}
	x.mu.RLock()
	merged := x.shards[len(x.shards)-1].(*subIndex)
	x.mu.RUnlock()
	if merged.ix.Len() != res.Sets {
		t.Fatalf("merged shard holds %d sets, result says %d", merged.ix.Len(), res.Sets)
	}
	standalone := cpindex.Build(merged.ix.Sets(), x.Lambda(), &cpindex.Options{
		Trees:    x.opt.Trees,
		LeafSize: x.opt.LeafSize,
		T:        x.opt.T,
		Seed:     merged.ix.Options().Seed,
	})
	for qi := 0; qi < 50; qi++ {
		q := merged.ix.Sets()[qi*merged.ix.Len()/50]
		a, b := merged.ix.QueryAll(q), standalone.QueryAll(q)
		if !equalMatches(t, a, b) {
			t.Fatalf("merged shard diverges from standalone rebuild on query %d", qi)
		}
	}
}
