// Package shard is the sharded serving subsystem: a collection is
// partitioned into K independent Chosen Path search indexes (shards), each
// built as its own task on the shared execution layer, and queries fan out
// across the shards and merge — the LSH Ensemble pattern (Zhu et al.,
// domain search) applied to the CPSJoin substrate.
//
// Sharding buys three serving-layer properties the monolithic index lacks:
//
//   - Build parallelism beyond tree count: K shards × Trees trees are all
//     independent tasks, so construction saturates any core count.
//   - Batch throughput: QueryBatch turns a query slice into tasks over the
//     read-only shards, amortizing scheduling overhead per batch.
//   - Incremental growth: Add buffers new sets in a small side shard that
//     is scanned exactly (recall 1.0 on recent appends) and sealed into
//     the ring as a full shard once it crosses MergeThreshold — the LSM
//     memtable discipline, so a long-running service absorbs updates
//     without ever rebuilding the sealed shards.
//
// Global set ids are preserved across the partition through per-shard id
// maps; every result refers to the caller's original slice. Determinism
// follows the repository-wide contract: per-shard seeds are derived from
// (Seed, shard index) via SeedFor, never from build order, so the same
// seed, options and Add sequence yield identical results for any worker
// count.
package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/contain"
	"repro/internal/cpindex"
	"repro/internal/exec"
	"repro/internal/intset"
	"repro/internal/tabhash"
)

// Partition selects how Build assigns sets to shards.
type Partition int

const (
	// PartitionContiguous splits the id range [0, n) into Shards nearly
	// equal contiguous ranges — cache-friendly and offset-addressable.
	PartitionContiguous Partition = iota
	// PartitionHash assigns each id by a seeded hash — spreads clustered
	// input (e.g. sorted-by-size collections) evenly across shards.
	PartitionHash
)

func (p Partition) String() string {
	switch p {
	case PartitionContiguous:
		return "contiguous"
	case PartitionHash:
		return "hash"
	default:
		return fmt.Sprintf("partition(%d)", int(p))
	}
}

// Options configures a sharded index. The cpindex knobs (Trees, LeafSize,
// T) apply to every shard.
type Options struct {
	// Shards is the number of primary shards (default 4; values < 1 are
	// raised to 1; values above the set count are clamped down so no shard
	// starts empty).
	Shards int
	// Partition selects the id-to-shard assignment (default contiguous).
	Partition Partition
	// MergeThreshold is the side-shard size at which buffered appends are
	// sealed into the ring as a full shard (default 1024).
	MergeThreshold int
	// Trees, LeafSize, T are the per-shard cpindex parameters (defaults
	// as in cpindex: 10, 32, 128).
	Trees    int
	LeafSize int
	T        int
	// Seed makes construction reproducible; shard k derives its seed via
	// SeedFor(Seed, k).
	Seed uint64
	// Workers parallelizes Build, seal, and QueryBatch on the shared
	// execution layer: 0 runs sequentially, negative selects GOMAXPROCS.
	// Results are identical for any worker count.
	Workers int
	// Layout selects the cpindex query representation for every local
	// shard (default cpindex.LayoutFlat). Answers are byte-identical
	// either way.
	Layout cpindex.Layout
	// CacheSize enables the hot-query result cache with room for that
	// many entries (0, the default, disables it). Entries are keyed on
	// the index version, which every mutation bumps, so a cached answer
	// is always the answer the uncached path would give; see resultCache.
	CacheSize int

	// AutoCompact runs Compact in a background goroutine after every seal,
	// so a long-running service reclaims small shards and tombstones
	// without operator intervention. Queries are never blocked either way;
	// see Compact for the policy knobs below.
	AutoCompact bool
	// CompactSmall is the shard size at or below which a ring shard is a
	// merge candidate (default 2*MergeThreshold — sealed side shards
	// qualify, full-size primaries do not).
	CompactSmall int
	// CompactMinShards is the number of small shards required before a
	// size-triggered merge runs (default 2: merging fewer cannot shrink
	// the ring).
	CompactMinShards int
	// CompactTombstoneRatio is the dead fraction at which a shard of any
	// size is rewritten to reclaim its tombstones (default 0.3; values
	// above 1 disable ratio-triggered rewrites).
	CompactTombstoneRatio float64
}

func (o *Options) withDefaults() Options {
	opt := Options{}
	if o != nil {
		opt = *o
	}
	if opt.Shards <= 0 {
		opt.Shards = 4
	}
	if opt.MergeThreshold <= 0 {
		opt.MergeThreshold = 1024
	}
	if opt.CompactSmall <= 0 {
		opt.CompactSmall = 2 * opt.MergeThreshold
	}
	if opt.CompactMinShards <= 0 {
		opt.CompactMinShards = 2
	}
	if opt.CompactTombstoneRatio <= 0 {
		opt.CompactTombstoneRatio = 0.3
	}
	return opt
}

// SeedFor derives the construction seed of shard k from the index seed.
// It is exported so callers can reproduce one shard's structure with a
// standalone cpindex/SearchIndex build (the equivalence the tests pin).
func SeedFor(seed uint64, k int) uint64 {
	return tabhash.DeriveSeed(seed, 0x5a17, uint64(k))
}

// ContainSeed derives the containment-signing seed from the index seed.
// Unlike SeedFor it is deliberately not per-shard: every shard's
// containment side signs with the same hash functions and the same
// global cardinality-band boundaries, so "y is a candidate for q" is a
// property of (q, y, seed) alone — independent of which shard holds y —
// and containment results are byte-identical for any partitioning.
func ContainSeed(seed uint64) uint64 {
	return tabhash.DeriveSeed(seed, 0xC047, 0)
}

// containOptions are the options every shard's containment side builds
// with; defaults (T, TargetProb, KMV size) are filled by the contain
// package.
func (x *Index) containOptions() contain.Options {
	return contain.Options{Seed: ContainSeed(x.opt.Seed)}
}

// ContiguousRanges returns the [lo, hi) ranges of the contiguous
// partition of n sets into k shards: the first n%k ranges are one longer,
// matching Build's assignment exactly.
func ContiguousRanges(n, k int) [][2]int {
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	out := make([][2]int, 0, k)
	lo := 0
	for s := 0; s < k; s++ {
		size := n / k
		if s < n%k {
			size++
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}

// shardBackend is one ring shard as the query merge sees it: an
// independent failure and build domain that answers shard-local queries
// with global ids. The in-process subIndex and the HTTP remoteShard both
// satisfy it, so fan-out, tombstone filtering and the global-id
// discipline are written once and hold for any mix of local and remote
// shards. Backends never apply tombstones — deletes are coordinator
// state, filtered at merge time like always.
//
// Only remote backends can fail; subIndex methods always return a nil
// error, which is what keeps the legacy (error-free) query entry points
// valid on all-local rings.
type shardBackend interface {
	// queryBest returns the shard's best match — highest similarity,
	// then lowest id within the shard's traversal order — as a global id.
	queryBest(q []uint32) (id int, sim float64, ok bool, err error)
	// queryAll returns every match in the shard with global ids,
	// unfiltered and in shard-traversal order (the merge sorts).
	queryAll(q []uint32) ([]cpindex.Match, error)
	// queryBatch answers qs against the shard; results[i] corresponds to
	// qs[i]. Remote backends answer the whole batch in one round trip.
	queryBatch(qs [][]uint32) ([][]cpindex.Match, error)
	// queryContain returns the shard's exact-verified containment matches
	// (C(q, y) >= t) with global ids, in shard-traversal order. opts are
	// the index-wide containment options, threaded through so a shard
	// whose containment side is not built yet (a lazily loaded snapshot)
	// can build it with the right global seed.
	queryContain(q []uint32, t float64, opts contain.Options) ([]cpindex.Match, error)
	// size is the number of physically present sets (tombstoned included).
	size() int
	// globalIDs is the shard's local→global id map, kept coordinator-side
	// even for remote shards (tombstone accounting and persistence).
	globalIDs() []int
}

// subIndex is one sealed shard: a built cpindex over a subset of the
// collection, with the map from shard-local ids back to global ids.
// (The per-shard set slices live inside the cpindex, which verifies
// candidates against them during its own queries.)
type subIndex struct {
	ix  *cpindex.Index
	ids []int // local id -> global id

	// hits counts queries served since the last retier pass — the
	// query-frequency gauge the auto-tier demotion policy reads and resets
	// (see Retier). One atomic add per query; allocation-free.
	hits atomic.Uint64

	// contain is the shard's containment side (LSH Ensemble candidate
	// structure over the same sets), built lazily on the first containment
	// query or encode — similarity-only workloads never pay for it — and
	// decoded directly from version-2 snapshots. containMu serializes the
	// one-time build; readers go through the atomic pointer.
	containMu sync.Mutex
	contain   atomic.Pointer[contain.Index]
}

func (s *subIndex) size() int        { return len(s.ids) }
func (s *subIndex) globalIDs() []int { return s.ids }

// containIndex returns the shard's containment side, building it from
// the cpindex's sets on first use. Double-checked under containMu so
// concurrent first queries build once.
func (s *subIndex) containIndex(opts contain.Options) *contain.Index {
	if c := s.contain.Load(); c != nil {
		return c
	}
	s.containMu.Lock()
	defer s.containMu.Unlock()
	if c := s.contain.Load(); c != nil {
		return c
	}
	c := contain.Build(s.ix.Sets(), opts)
	s.contain.Store(c)
	return c
}

func (s *subIndex) queryContain(q []uint32, t float64, opts contain.Options) ([]cpindex.Match, error) {
	s.hits.Add(1)
	c := s.containIndex(opts)
	sets := s.ix.Sets()
	var ms []cpindex.Match
	for _, lid := range c.Query(q, t) {
		if sim, ok := intset.ContainmentAtLeast(q, sets[lid], t); ok {
			ms = append(ms, cpindex.Match{ID: s.ids[lid], Sim: sim})
		}
	}
	return ms, nil
}

// queryContainBuilt answers containment from an already-built (shipped
// or decoded) containment side, erroring when none exists — the
// hosted-shard path, where the coordinator's containment options are not
// known and a lazy build would break the global-seed contract.
func (s *subIndex) queryContainBuilt(q []uint32, t float64) ([]cpindex.Match, error) {
	if s.contain.Load() == nil {
		return nil, fmt.Errorf("shard: hosted shard has no containment index (shipped by an older build)")
	}
	return s.queryContain(q, t, contain.Options{})
}

func (s *subIndex) queryBest(q []uint32) (int, float64, bool, error) {
	s.hits.Add(1)
	local, sim, ok := s.ix.Query(q)
	if !ok {
		return -1, 0, false, nil
	}
	return s.ids[local], sim, true, nil
}

func (s *subIndex) queryAll(q []uint32) ([]cpindex.Match, error) {
	s.hits.Add(1)
	ms := s.ix.QueryAll(q)
	for i := range ms {
		ms[i].ID = s.ids[ms[i].ID]
	}
	return ms, nil
}

func (s *subIndex) queryBatch(qs [][]uint32) ([][]cpindex.Match, error) {
	out := make([][]cpindex.Match, len(qs))
	for i, q := range qs {
		out[i], _ = s.queryAll(q)
	}
	return out, nil
}

// Index is a sharded Chosen Path search structure. It is safe for
// concurrent use: queries proceed under a shared lock and Add under an
// exclusive one, and sealed shards are immutable.
type Index struct {
	lambda float64
	opt    Options

	// saveMu serializes Save calls (generation numbering and pruning in
	// the target directory); it is never held together with mu writes,
	// so saving stalls neither queries nor appends.
	saveMu sync.Mutex

	// compactMu serializes compactions: one merged-shard rebuild at a time
	// per index. It is held across the off-lock build, never together with
	// a held mu, so compacting stalls neither queries nor appends.
	compactMu sync.Mutex
	// autoCompacting gates the seal-triggered background compaction
	// goroutine (at most one in flight); compactPending coalesces
	// triggers that arrive while a pass is running into one follow-up
	// pass. See compactAsync.
	autoCompacting atomic.Bool
	compactPending atomic.Bool
	// tierIdle counts consecutive zero-hit retier passes per hot shard —
	// the auto-tier demotion gauge. Touched only under compactMu (retier
	// passes are serialized with ring replacement).
	tierIdle map[*subIndex]int

	mu     sync.RWMutex
	shards []shardBackend
	// side buffers appended sets (with their global ids) until sealing;
	// queries scan it exactly, so fresh appends have recall 1.0.
	side *sideBuffer
	// sealing holds buffers whose shard build is in flight. They are
	// still scanned exactly by queries — the build happens outside the
	// lock so a seal never stalls serving — and each is removed when its
	// built shard joins the ring.
	sealing []*sideBuffer
	// nextSlot numbers shard seeds: primary shards take [0, Shards) and
	// every seal claims the next slot at seal start, so seeds are stable
	// for a given Build+Add sequence even with concurrent seals.
	nextSlot int
	// total is the id high-water mark: ids are assigned from it and never
	// reused, even after deletes. live counts non-deleted sets.
	total   int
	live    int
	appends int
	merges  int
	deletes int
	// tombs is the shared tombstone set: global ids deleted but still
	// physically present in a sealed shard or a buffer. It is copy-on-
	// write — Delete publishes a new map, never mutates the old — so
	// query snapshots read it without locks. Sealing compacts away the
	// tombstones whose sets lived in the sealed buffer; tombstones in
	// sealed shards persist until Compact rewrites the shard. nil means
	// no tombstones.
	tombs map[int]struct{}
	// dropped records ids whose physical entries have been reclaimed — by
	// a seal that compacted a deleted buffered entry, or by Compact
	// dropping a tombstoned set from a rewritten shard. Their tombstones
	// are retired, so Delete must consult this set to stay idempotent: a
	// reclaimed id is gone, not live, and re-deleting it must not touch
	// the live count. A dense bitmap over [0, total): the cost is bounded
	// by ids ever assigned, not by lifetime churn. Mutated only under the
	// write lock (queries never read it: dropped ids appear in no shard
	// or buffer); nil until the first reclamation.
	dropped *intset.Bitmap
	// generation counts ring changes (seals and compaction swaps). A
	// bumped generation tells observers the shard set they snapshotted has
	// been superseded; in-flight queries finish against their snapshot.
	generation int
	// version counts every mutation that can change any query's answer:
	// appends, deletes, seals, compaction swaps and distributions. It is
	// the result cache's invalidation key — a cached answer is keyed on
	// the version it was computed at, so a bump orphans every stale entry
	// without scanning anything. Kept separate from generation, which
	// deliberately tracks ring changes only (Add and Delete mutate
	// results without resealing a shard).
	version atomic.Uint64
	// cache is the optional hot-query result cache (nil when disabled).
	// An atomic pointer so EnableCache can install it on a serving index.
	cache atomic.Pointer[resultCache]
	// compactions / compactedShards count completed Compact passes and the
	// shards they removed or rewrote.
	compactions     int
	compactedShards int
	// runtime mirrors the operational knobs currently applied (layout,
	// cache, auto-compaction), whether they arrived through Configure or a
	// legacy setter. Save persists it so Load can re-apply the configured
	// state. Guarded by mu.
	runtime RuntimeOptions

	// metrics is the index's instrumentation hub (latency histograms,
	// candidate counters, per-peer health — see indexMetrics). Set once by
	// Build and Load before the index is published, then immutable, so it
	// is read without the lock.
	metrics *indexMetrics

	// placement is the durable record of shards shipped to peers plus the
	// last Distribute parameters (own mutex; see placement.go), and
	// controller holds the background placement loop when one is running.
	placement  placementState
	controller atomic.Pointer[placementController]
}

type sideBuffer struct {
	sets [][]uint32
	ids  []int
}

// Build constructs a sharded index over the collection for similarity
// threshold lambda. The collection is referenced, not copied. Each
// shard's cpindex is built as an independent task on the execution layer;
// the built structure is identical for any worker count.
func Build(sets [][]uint32, lambda float64, o *Options) *Index {
	if lambda <= 0 || lambda >= 1 {
		panic(fmt.Sprintf("shard: lambda %v out of (0,1)", lambda))
	}
	opt := o.withDefaults()
	if opt.Shards > len(sets) {
		opt.Shards = max(len(sets), 1)
	}
	x := &Index{
		lambda:   lambda,
		opt:      opt,
		side:     &sideBuffer{},
		nextSlot: opt.Shards,
		total:    len(sets),
		live:     len(sets),
	}

	// Assign global ids to shards.
	members := make([][]int, opt.Shards)
	switch opt.Partition {
	case PartitionHash:
		for id := range sets {
			s := int(tabhash.Mix64(opt.Seed^uint64(id)) % uint64(opt.Shards))
			members[s] = append(members[s], id)
		}
	default:
		for s, r := range ContiguousRanges(len(sets), opt.Shards) {
			ids := make([]int, 0, r[1]-r[0])
			for id := r[0]; id < r[1]; id++ {
				ids = append(ids, id)
			}
			members[s] = ids
		}
	}

	x.shards = make([]shardBackend, opt.Shards)
	workers := exec.EffectiveWorkers(opt.Workers)
	// Each shard build is one root task; leftover parallelism (more
	// workers than shards) goes to the inner tree builds, which are
	// deterministic for any inner worker count.
	inner := 0
	if workers > opt.Shards {
		inner = (workers + opt.Shards - 1) / opt.Shards
	}
	tasks := make([]exec.Task, opt.Shards)
	for s := range tasks {
		s := s
		tasks[s] = func(c *exec.Ctx) {
			x.shards[s] = buildShard(sets, members[s], lambda, opt, SeedFor(opt.Seed, s), inner)
		}
	}
	if workers <= 1 {
		for _, t := range tasks {
			t(nil)
		}
	} else {
		exec.Run(workers, tasks...)
	}
	if opt.CacheSize > 0 {
		x.cache.Store(newResultCache(opt.CacheSize))
	}
	x.runtime = RuntimeOptions{
		AutoCompact:   opt.AutoCompact,
		PointerLayout: opt.Layout == cpindex.LayoutPointer,
		CacheSize:     max(opt.CacheSize, 0),
	}
	x.metrics = newIndexMetrics(x)
	for _, sh := range x.shards {
		x.attachCounters(sh.(*subIndex).ix)
	}
	return x
}

// RuntimeOptions are the operational knobs adjustable on a built or
// loaded index without rebuilding anything — as opposed to the
// build-time parameters in Options. Configure applies the whole set
// atomically; Save persists it and Load re-applies it, so a restarted
// service keeps its configured state.
type RuntimeOptions struct {
	// AutoCompact runs Compact in the background after every seal.
	AutoCompact bool
	// PointerLayout routes queries through the pointer-trie representation
	// instead of the flat-array engine (answers are byte-identical; the
	// flat default is faster).
	PointerLayout bool
	// CacheSize installs the hot-query result cache with room for that
	// many entries; 0 removes it. Negative values are rejected.
	CacheSize int
	// Tiering selects the ring's storage tier: TierHot (or "", the
	// default) keeps every shard fully decoded, TierCold memory-maps every
	// shard with lazy decode, TierAuto lets the retier policy move shards
	// on query frequency. Answers are byte-identical across tiers.
	Tiering Tier
}

// Configure applies the runtime options and remembers them as the
// index's configured state. It subsumes the legacy SetAutoCompact /
// SetLayout / EnableCache setters: one validated call instead of three,
// and the applied state is persisted by Save and re-applied by Load.
// Like SetLayout, the layout switch is a configuration call — apply it
// before serving, not concurrently with queries.
func (x *Index) Configure(ro RuntimeOptions) error {
	if ro.CacheSize < 0 {
		return fmt.Errorf("shard: cache size %d must be >= 0", ro.CacheSize)
	}
	tier, err := ParseTier(string(ro.Tiering))
	if err != nil {
		return err
	}
	l := cpindex.LayoutFlat
	if ro.PointerLayout {
		l = cpindex.LayoutPointer
	}
	x.SetLayout(l)
	x.SetAutoCompact(ro.AutoCompact)
	x.EnableCache(ro.CacheSize)
	// Remember the tier exactly as configured ("" stays "", so a runtime
	// state that never mentioned tiering round-trips unchanged), then move
	// the ring to it. Idempotent when the ring is already there.
	x.setTiering(ro.Tiering)
	return x.applyTiering(tier)
}

// Runtime returns the runtime options currently applied.
func (x *Index) Runtime() RuntimeOptions {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.runtime
}

// SetLayout switches every local shard's query representation. Like
// cpindex.SetLayout it is a configuration call: apply it before serving,
// not concurrently with queries. Prefer Configure, which applies every
// runtime knob in one validated call.
func (x *Index) SetLayout(l cpindex.Layout) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.opt.Layout = l
	x.runtime.PointerLayout = l == cpindex.LayoutPointer
	for _, sh := range x.shards {
		switch b := sh.(type) {
		case *subIndex:
			b.ix.SetLayout(l)
		case *remoteShard:
			if b.local != nil {
				b.local.ix.SetLayout(l)
			}
		}
	}
}

// EnableCache installs a result cache with room for maxEntries entries
// (or removes it when maxEntries <= 0). Safe on a serving index: queries
// pick the cache up atomically, and entries are version-keyed, so there
// is no warm-up hazard. Prefer Configure, which applies every runtime
// knob in one validated call.
func (x *Index) EnableCache(maxEntries int) {
	x.mu.Lock()
	x.runtime.CacheSize = max(maxEntries, 0)
	x.mu.Unlock()
	if maxEntries <= 0 {
		x.cache.Store(nil)
		return
	}
	x.cache.Store(newResultCache(maxEntries))
}

// buildShard builds the cpindex of one shard over the given global ids.
func buildShard(sets [][]uint32, ids []int, lambda float64, opt Options, seed uint64, workers int) *subIndex {
	sub := make([][]uint32, len(ids))
	for i, id := range ids {
		sub[i] = sets[id]
	}
	return &subIndex{
		ix: cpindex.Build(sub, lambda, &cpindex.Options{
			Trees:    opt.Trees,
			LeafSize: opt.LeafSize,
			T:        opt.T,
			Seed:     seed,
			Workers:  workers,
			Layout:   opt.Layout,
		}),
		ids: ids,
	}
}

// Lambda returns the similarity threshold the index was built for.
func (x *Index) Lambda() float64 { return x.lambda }

// Len returns the number of live indexed sets (buffered appends included,
// deleted sets excluded).
func (x *Index) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.live
}

// snapshot returns the current sealed shards, exactly-scanned buffers
// (in-flight seals plus the live side buffer) and the tombstone set under
// the read lock. Sealed shards, sealing buffers and the tombstone map are
// immutable (the latter by the copy-on-write discipline), and the side
// buffer's visible prefix is capped with a full slice expression, so the
// snapshot stays valid after the lock is released; entries appended after
// the snapshot are simply not seen — the usual read-committed serving
// semantics. Detached sealing buffers come back as the shared pointers
// (they are frozen) and the live buffer as a capped value, so a snapshot
// allocates nothing — part of the zero-allocation query contract.
func (x *Index) snapshot() ([]shardBackend, []*sideBuffer, sideBuffer, map[int]struct{}) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	sealing := x.sealing[:len(x.sealing):len(x.sealing)]
	side := sideBuffer{
		sets: x.side.sets[:len(x.side.sets):len(x.side.sets)],
		ids:  x.side.ids[:len(x.side.ids):len(x.side.ids)],
	}
	return x.shards, sealing, side, x.tombs
}

// Query returns the best match across all shards: the global id of an
// indexed set with J(q, result) >= λ and its exact similarity, or
// ok = false if no shard finds one. Ties on similarity break toward the
// lower id, so the answer is independent of shard iteration details.
// Tombstoned ids are never returned: if a shard's chosen match turns out
// to be deleted, that shard is rescanned for its best live match, so a
// delete hides exactly one set instead of masking its neighbors.
//
// Query panics if a remote-backed shard has no live replica and no local
// copy — an all-local ring can never fail, and serving paths over a
// distributed ring must use QueryErr, which reports the dead topology as
// an error instead of a silent partial merge.
//
// Deprecated: the error-returning path is the primary API. Query remains
// only as a convenience for all-local rings, where the error is
// structurally impossible; use QueryErr everywhere else.
func (x *Index) Query(q []uint32) (id int, sim float64, ok bool) {
	id, sim, ok, err := x.QueryErr(q)
	if err != nil {
		panic(fmt.Sprintf("shard: %v (use QueryErr on a distributed ring)", err))
	}
	return id, sim, ok
}

// QueryErr is Query with the remote-topology failure mode surfaced: when
// a remote-backed shard cannot be reached on any replica (and keeps no
// local copy), it returns the error rather than merging a partial answer.
// Remote shards are asked concurrently, so a single query's latency is
// bounded by the slowest peer round trip, not their sum.
func (x *Index) QueryErr(q []uint32) (id int, sim float64, ok bool, err error) {
	return x.queryBestTimed(q, nil)
}

// QueryTraced is QueryErr with the per-shard breakdown filled into tr —
// the serving layer's debug and slow-query path. Passing nil tr is
// exactly QueryErr.
func (x *Index) QueryTraced(q []uint32, tr *QueryTrace) (id int, sim float64, ok bool, err error) {
	return x.queryBestTimed(q, tr)
}

// queryBestTimed wraps the cached best-match path with the latency
// histogram; the inline time.Now/Observe pair keeps the hot path free of
// closures and allocations.
func (x *Index) queryBestTimed(q []uint32, tr *QueryTrace) (int, float64, bool, error) {
	start := time.Now()
	id, sim, ok, err := x.queryBestCached(q, tr)
	if m := x.metrics; m != nil {
		m.queryBest.Observe(time.Since(start))
		if err != nil {
			m.queryErrors.Inc()
		}
	}
	if tr != nil {
		tr.TotalNs = time.Since(start).Nanoseconds()
	}
	return id, sim, ok, err
}

func (x *Index) queryBestCached(q []uint32, tr *QueryTrace) (int, float64, bool, error) {
	if len(q) == 0 {
		return -1, 0, false, nil
	}
	if c := x.cache.Load(); c != nil {
		// The version is read before the state snapshot, so the answer
		// computed below reflects a state at least as new as the key
		// claims; a concurrent mutation bumps the version and orphans the
		// entry rather than letting it serve stale.
		v := x.version.Load()
		if id, sim, ok, hit := c.getBest(v, q); hit {
			if tr != nil {
				tr.CacheHit = true
			}
			return id, sim, ok, nil
		}
		id, sim, ok, err := x.queryBest(q, tr)
		if err == nil {
			c.putBest(v, q, id, sim, ok)
		}
		return id, sim, ok, err
	}
	return x.queryBest(q, tr)
}

// bestAnswer carries one shard's prefetched queryBest result.
type bestAnswer struct {
	id    int
	sim   float64
	found bool
	err   error
	ns    int64 // RPC wall time, for traces
}

// queryBest is the uncached QueryErr body. On an all-local ring it
// allocates nothing: the snapshot, the merge and the buffer scans all run
// on pooled or borrowed storage. A non-nil tr turns on per-shard timing
// and candidate counts (and allocates the trace entries); the merge and
// its answer are identical either way.
func (x *Index) queryBest(q []uint32, tr *QueryTrace) (int, float64, bool, error) {
	shards, sealing, side, tombs := x.snapshot()
	// Prefetch every remote shard's best match in parallel; locals are
	// answered inline in the merge loop below (no I/O to overlap). The
	// merge itself stays in ring order, and the (sim desc, id asc) total
	// order makes the answer independent of evaluation order anyway.
	var remoteIdx []int
	for i, sh := range shards {
		if _, remote := sh.(*remoteShard); remote {
			remoteIdx = append(remoteIdx, i)
		}
	}
	var prefetched []bestAnswer
	if len(remoteIdx) > 0 {
		prefetched = make([]bestAnswer, len(shards))
		exec.RunItems(exec.EffectiveWorkers(x.opt.Workers), len(remoteIdx), func(j int) {
			i := remoteIdx[j]
			a := &prefetched[i]
			start := time.Now()
			a.id, a.sim, a.found, a.err = shards[i].queryBest(q)
			a.ns = time.Since(start).Nanoseconds()
		})
	}
	best, bestSim := -1, 0.0
	for i, sh := range shards {
		g := -1
		var s float64
		var found bool
		var err error
		var st cpindex.QueryStats
		var t0 time.Time
		if tr != nil {
			t0 = time.Now()
		}
		if prefetched != nil && contains(remoteIdx, i) {
			a := &prefetched[i]
			g, s, found, err = a.id, a.sim, a.found, a.err
		} else if sub, isLocal := sh.(*subIndex); isLocal && tr != nil {
			// The traced local path goes through the stats variant so the
			// trace carries this shard's candidate pipeline counts.
			var local int
			local, s, found, st = sub.ix.QueryWithStats(q)
			if found {
				g = sub.ids[local]
			}
		} else {
			g, s, found, err = sh.queryBest(q)
		}
		if err != nil {
			return -1, 0, false, err
		}
		matched := 0
		if found {
			matched = 1
		}
		if found {
			if _, dead := tombs[g]; dead {
				// Rare path — the shard's chosen match was deleted — so the
				// full rescan stays a plain serial call.
				ms, err := sh.queryAll(q)
				if err != nil {
					return -1, 0, false, err
				}
				for _, m := range ms {
					if _, dead := tombs[m.ID]; dead {
						continue
					}
					if m.Sim > bestSim || (m.Sim == bestSim && (best < 0 || m.ID < best)) {
						best, bestSim = m.ID, m.Sim
					}
				}
				found = false
			}
		}
		if found && (s > bestSim || (s == bestSim && (best < 0 || g < best))) {
			best, bestSim = g, s
		}
		if tr != nil {
			name, kind := shardTraceName(i, sh)
			e := ShardTrace{Shard: name, Kind: kind, Matches: matched,
				Candidates: st.Candidates, Verified: st.Verified}
			if prefetched != nil && contains(remoteIdx, i) {
				e.Ns = prefetched[i].ns
			} else {
				e.Ns = time.Since(t0).Nanoseconds()
			}
			tr.add(e)
		}
	}
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	scanned := 0
	for _, b := range sealing {
		best, bestSim = scanBufferBest(*b, q, x.lambda, tombs, best, bestSim)
		scanned += len(b.sets)
	}
	best, bestSim = scanBufferBest(side, q, x.lambda, tombs, best, bestSim)
	scanned += len(side.sets)
	if tr != nil {
		tr.add(ShardTrace{Shard: "buffer", Kind: "buffer", Ns: time.Since(t0).Nanoseconds(),
			Candidates: uint64(scanned), Verified: uint64(scanned)})
	}
	return best, bestSim, best >= 0, nil
}

// scanBufferBest folds one exactly-scanned buffer into the running best
// match under the (sim desc, id asc) total order.
func scanBufferBest(b sideBuffer, q []uint32, lambda float64, tombs map[int]struct{}, best int, bestSim float64) (int, float64) {
	for i, set := range b.sets {
		id := b.ids[i]
		if _, dead := tombs[id]; dead {
			continue
		}
		if s, ok := intset.JaccardAtLeast(q, set, lambda); ok &&
			(s > bestSim || (s == bestSim && (best < 0 || id < best))) {
			best, bestSim = id, s
		}
	}
	return best, bestSim
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// QueryAll returns every match across all shards and the side buffer,
// sorted by global id — shards are disjoint, so the merge is a plain
// concatenation with no deduplication. Tombstoned ids are filtered here,
// at merge time. Like Query, it panics on a dead remote topology; use
// QueryAllErr on a distributed ring.
//
// Deprecated: the error-returning path is the primary API. QueryAll
// remains only as a convenience for all-local rings; use QueryAllErr
// everywhere else.
func (x *Index) QueryAll(q []uint32) []cpindex.Match {
	ms, err := x.QueryAllErr(q)
	if err != nil {
		panic(fmt.Sprintf("shard: %v (use QueryAllErr on a distributed ring)", err))
	}
	return ms
}

// QueryAllErr is QueryAll with the remote-topology failure mode surfaced
// as an error instead of a silent partial merge. Remote shards are asked
// concurrently, like QueryErr.
func (x *Index) QueryAllErr(q []uint32) ([]cpindex.Match, error) {
	return x.queryAllTimed(q, nil)
}

// QueryAllTraced is QueryAllErr with the per-shard breakdown filled into
// tr. Passing nil tr is exactly QueryAllErr.
func (x *Index) QueryAllTraced(q []uint32, tr *QueryTrace) ([]cpindex.Match, error) {
	return x.queryAllTimed(q, tr)
}

func (x *Index) queryAllTimed(q []uint32, tr *QueryTrace) ([]cpindex.Match, error) {
	start := time.Now()
	ms, err := x.queryAllCached(q, tr)
	if m := x.metrics; m != nil {
		m.queryAll.Observe(time.Since(start))
		if err != nil {
			m.queryErrors.Inc()
		}
	}
	if tr != nil {
		tr.TotalNs = time.Since(start).Nanoseconds()
	}
	return ms, err
}

func (x *Index) queryAllCached(q []uint32, tr *QueryTrace) ([]cpindex.Match, error) {
	if c := x.cache.Load(); c != nil {
		v := x.version.Load()
		if ms, hit := c.getAll(v, q); hit {
			if tr != nil {
				tr.CacheHit = true
			}
			return ms, nil
		}
		ms, err := x.queryAllUncached(q, tr)
		if err == nil {
			c.putAll(v, q, ms)
		}
		return ms, err
	}
	return x.queryAllUncached(q, tr)
}

func (x *Index) queryAllUncached(q []uint32, tr *QueryTrace) ([]cpindex.Match, error) {
	shards, sealing, side, tombs := x.snapshot()
	if tr != nil {
		return x.queryAllShardwise(shards, sealing, side, tombs, q, tr)
	}
	var locals []shardBackend
	var remotes []shardBackend
	for _, sh := range shards {
		if _, remote := sh.(*remoteShard); remote {
			remotes = append(remotes, sh)
		} else {
			locals = append(locals, sh)
		}
	}
	extra := make([][]cpindex.Match, len(remotes))
	if len(remotes) > 0 {
		errs := make([]error, len(remotes))
		exec.RunItems(exec.EffectiveWorkers(x.opt.Workers), len(remotes), func(i int) {
			extra[i], errs[i] = remotes[i].queryAll(q)
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return mergeQuery(locals, extra, sealing, side, tombs, x.lambda, q)
}

// queryAllShardwise is the traced queryAllUncached body: every shard's
// matches are pre-fetched (remotes in parallel, locals inline through the
// stats variant) with per-shard timing, then handed to the same mergeQuery
// the untraced path uses, so the merged answer is identical.
func (x *Index) queryAllShardwise(shards []shardBackend, sealing []*sideBuffer, side sideBuffer, tombs map[int]struct{}, q []uint32, tr *QueryTrace) ([]cpindex.Match, error) {
	extra := make([][]cpindex.Match, len(shards))
	nss := make([]int64, len(shards))
	stats := make([]cpindex.QueryStats, len(shards))
	errs := make([]error, len(shards))
	var remoteIdx []int
	for i, sh := range shards {
		if _, remote := sh.(*remoteShard); remote {
			remoteIdx = append(remoteIdx, i)
		}
	}
	if len(remoteIdx) > 0 {
		exec.RunItems(exec.EffectiveWorkers(x.opt.Workers), len(remoteIdx), func(j int) {
			i := remoteIdx[j]
			start := time.Now()
			extra[i], errs[i] = shards[i].queryAll(q)
			nss[i] = time.Since(start).Nanoseconds()
		})
	}
	for i, sh := range shards {
		if err := errs[i]; err != nil {
			return nil, err
		}
		switch sub := sh.(type) {
		case *subIndex:
			start := time.Now()
			sub.hits.Add(1)
			var ms []cpindex.Match
			ms, stats[i] = sub.ix.AppendAllWithStats(nil, q)
			for j := range ms {
				ms[j].ID = sub.ids[ms[j].ID]
			}
			extra[i] = ms
			nss[i] = time.Since(start).Nanoseconds()
		case *coldShard:
			start := time.Now()
			ms, st, err := sub.queryAllStats(q)
			if err != nil {
				return nil, err
			}
			extra[i], stats[i] = ms, st
			nss[i] = time.Since(start).Nanoseconds()
		}
	}
	for i, sh := range shards {
		name, kind := shardTraceName(i, sh)
		tr.add(ShardTrace{Shard: name, Kind: kind, Ns: nss[i], Matches: len(extra[i]),
			Candidates: stats[i].Candidates, Verified: stats[i].Verified})
	}
	t0 := time.Now()
	scanned := len(side.sets)
	for _, b := range sealing {
		scanned += len(b.sets)
	}
	out, err := mergeQuery(nil, extra, sealing, side, tombs, x.lambda, q)
	tr.add(ShardTrace{Shard: "buffer", Kind: "buffer", Ns: time.Since(t0).Nanoseconds(),
		Candidates: uint64(scanned), Verified: uint64(scanned)})
	return out, err
}

// mergeQuery is the shared per-query merge: matches from every shard in
// shards (fetched through the backend), plus pre-fetched per-shard match
// lists in extra (the batched remote path), plus the exactly-scanned
// buffers — tombstones filtered throughout, sorted by global id. Shards
// are disjoint and ids unique, so the sort yields one canonical answer
// regardless of which path a shard's matches arrived by.
func mergeQuery(shards []shardBackend, extra [][]cpindex.Match, sealing []*sideBuffer, side sideBuffer, tombs map[int]struct{}, lambda float64, q []uint32) ([]cpindex.Match, error) {
	var out []cpindex.Match
	keep := func(ms []cpindex.Match) {
		for _, m := range ms {
			if _, dead := tombs[m.ID]; dead {
				continue
			}
			out = append(out, m)
		}
	}
	for _, sh := range shards {
		ms, err := sh.queryAll(q)
		if err != nil {
			return nil, err
		}
		keep(ms)
	}
	for _, ms := range extra {
		keep(ms)
	}
	if len(q) > 0 {
		for _, b := range sealing {
			out = appendBufferMatches(out, *b, q, lambda, tombs)
		}
		out = appendBufferMatches(out, side, q, lambda, tombs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// appendBufferMatches exact-scans one buffer and appends its live matches.
func appendBufferMatches(out []cpindex.Match, b sideBuffer, q []uint32, lambda float64, tombs map[int]struct{}) []cpindex.Match {
	for i, set := range b.sets {
		if _, dead := tombs[b.ids[i]]; dead {
			continue
		}
		if sim, ok := intset.JaccardAtLeast(q, set, lambda); ok {
			out = append(out, cpindex.Match{ID: b.ids[i], Sim: sim})
		}
	}
	return out
}

// QueryBatch answers many queries at once: the queries become chunked
// tasks on the execution layer over one read-only snapshot of the shards,
// and the result slice is indexed like the input — results[i] is
// QueryAll(qs[i]) against that snapshot. Output is deterministic for any
// worker count (each query writes only its own slot). Like Query, it
// panics on a dead remote topology; use QueryBatchErr on a distributed
// ring.
//
// Deprecated: the error-returning path is the primary API. QueryBatch
// remains only as a convenience for all-local rings; use QueryBatchErr
// everywhere else.
func (x *Index) QueryBatch(qs [][]uint32) [][]cpindex.Match {
	out, err := x.QueryBatchErr(qs)
	if err != nil {
		panic(fmt.Sprintf("shard: %v (use QueryBatchErr on a distributed ring)", err))
	}
	return out
}

// QueryBatchErr is QueryBatch with the remote-topology failure mode
// surfaced. Remote-backed shards answer the whole batch in one RPC each —
// a batch costs O(remote shards) round trips, not O(queries × shards) —
// while local shards stay on the per-query path, which parallelizes
// across queries on the execution layer. Any shard left unanswerable (no
// live replica, no local copy) fails the whole batch with its error: a
// batch never silently merges partial topology.
func (x *Index) QueryBatchErr(qs [][]uint32) ([][]cpindex.Match, error) {
	start := time.Now()
	out, err := x.queryBatchCached(qs)
	if m := x.metrics; m != nil {
		m.queryBatch.Observe(time.Since(start))
		if err != nil {
			m.queryErrors.Inc()
		}
	}
	return out, err
}

func (x *Index) queryBatchCached(qs [][]uint32) ([][]cpindex.Match, error) {
	c := x.cache.Load()
	if c == nil {
		return x.queryBatchUncached(qs)
	}
	// Per-query cache consult: hits are filled from the cache, misses go
	// through the normal batch machinery together (remote shards still see
	// one RPC for the whole miss set) and are stored back under the
	// version read before the snapshot.
	v := x.version.Load()
	out := make([][]cpindex.Match, len(qs))
	var missIdx []int
	var missQs [][]uint32
	for i, q := range qs {
		if ms, hit := c.getAll(v, q); hit {
			out[i] = ms
		} else {
			missIdx = append(missIdx, i)
			missQs = append(missQs, q)
		}
	}
	if len(missQs) > 0 {
		res, err := x.queryBatchUncached(missQs)
		if err != nil {
			return nil, err
		}
		for j, i := range missIdx {
			out[i] = res[j]
			c.putAll(v, qs[i], res[j])
		}
	}
	return out, nil
}

func (x *Index) queryBatchUncached(qs [][]uint32) ([][]cpindex.Match, error) {
	shards, sealing, side, tombs := x.snapshot()
	workers := exec.EffectiveWorkers(x.opt.Workers)
	var locals, remotes []shardBackend
	for _, sh := range shards {
		if _, ok := sh.(*remoteShard); ok {
			remotes = append(remotes, sh)
		} else {
			locals = append(locals, sh)
		}
	}
	remoteRes := make([][][]cpindex.Match, len(remotes))
	if len(remotes) > 0 {
		errs := make([]error, len(remotes))
		exec.RunItems(workers, len(remotes), func(s int) {
			remoteRes[s], errs[s] = remotes[s].queryBatch(qs)
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	out := make([][]cpindex.Match, len(qs))
	exec.RunItems(workers, len(qs), func(i int) {
		extra := make([][]cpindex.Match, len(remotes))
		for s := range remotes {
			extra[s] = remoteRes[s][i]
		}
		// Local backends cannot fail, so the per-query error is always nil
		// here; remote errors were collected above.
		out[i], _ = mergeQuery(locals, extra, sealing, side, tombs, x.lambda, qs[i])
	})
	return out, nil
}

// QueryContain returns every indexed set whose containment of the query
// C(q, y) = |q ∩ y| / |q| reaches t, with the exact containment score,
// sorted by global id — the domain-discovery workload: "which indexed
// domains cover (almost) all of my query column". Candidates come from
// each shard's LSH Ensemble structure (recall ≈ the contain package's
// TargetProb per true match) and every candidate is exact-verified, so
// precision is 1.0 and, because candidate generation hashes with one
// global seed and global cardinality bands, results are byte-identical
// across shard counts, partition schemes, worker counts and distributed
// topologies. Buffered appends are scanned exactly. The threshold must
// lie in (0, 1]; an unreachable remote shard surfaces as an error like
// the QueryErr family.
func (x *Index) QueryContain(q []uint32, t float64) ([]cpindex.Match, error) {
	start := time.Now()
	ms, err := x.queryContainCached(q, t)
	if m := x.metrics; m != nil {
		m.queryContain.Observe(time.Since(start))
		if err != nil {
			m.queryErrors.Inc()
		}
	}
	return ms, err
}

func (x *Index) queryContainCached(q []uint32, t float64) ([]cpindex.Match, error) {
	if t <= 0 || t > 1 {
		return nil, fmt.Errorf("shard: containment threshold %v out of (0,1]", t)
	}
	if len(q) == 0 {
		return nil, nil
	}
	if c := x.cache.Load(); c != nil {
		v := x.version.Load()
		if ms, hit := c.getContain(v, q, t); hit {
			return ms, nil
		}
		ms, err := x.queryContainUncached(q, t)
		if err == nil {
			c.putContain(v, q, t, ms)
		}
		return ms, err
	}
	return x.queryContainUncached(q, t)
}

func (x *Index) queryContainUncached(q []uint32, t float64) ([]cpindex.Match, error) {
	shards, sealing, side, tombs := x.snapshot()
	opts := x.containOptions()
	var locals, remotes []shardBackend
	for _, sh := range shards {
		if _, ok := sh.(*remoteShard); ok {
			remotes = append(remotes, sh)
		} else {
			locals = append(locals, sh)
		}
	}
	extra := make([][]cpindex.Match, len(remotes))
	if len(remotes) > 0 {
		errs := make([]error, len(remotes))
		exec.RunItems(exec.EffectiveWorkers(x.opt.Workers), len(remotes), func(i int) {
			extra[i], errs[i] = remotes[i].queryContain(q, t, opts)
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	var out []cpindex.Match
	keep := func(ms []cpindex.Match) {
		for _, m := range ms {
			if _, dead := tombs[m.ID]; dead {
				continue
			}
			out = append(out, m)
		}
	}
	for _, sh := range locals {
		ms, err := sh.queryContain(q, t, opts)
		if err != nil {
			return nil, err
		}
		keep(ms)
	}
	for _, ms := range extra {
		keep(ms)
	}
	for _, b := range sealing {
		out = appendBufferContain(out, *b, q, t, tombs)
	}
	out = appendBufferContain(out, side, q, t, tombs)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// appendBufferContain exact-scans one buffer for containment matches —
// buffered appends need no candidate structure, so they keep recall 1.0.
func appendBufferContain(out []cpindex.Match, b sideBuffer, q []uint32, t float64, tombs map[int]struct{}) []cpindex.Match {
	for i, set := range b.sets {
		if _, dead := tombs[b.ids[i]]; dead {
			continue
		}
		if sim, ok := intset.ContainmentAtLeast(q, set, t); ok {
			out = append(out, cpindex.Match{ID: b.ids[i], Sim: sim})
		}
	}
	return out
}

// Add appends sets to the index and returns their global ids. The sets
// are buffered in the side shard (scanned exactly by queries, so they are
// findable immediately with recall 1.0); once the buffer crosses
// MergeThreshold it is sealed: built into a cpindex with seed
// SeedFor(Seed, slot) for the next free shard slot and appended to the
// ring. The build runs outside the lock — concurrent queries keep
// scanning the detached buffer exactly until the shard is swapped in —
// but the Add call itself returns only after its seal completes. Sets
// must be normalized (sorted, unique), like Build's input.
func (x *Index) Add(sets [][]uint32) []int {
	start := time.Now()
	// Reject empty sets up front, before any state changes: they cannot
	// be MinHash-signed, so admitting one would make the eventual seal's
	// cpindex.Build panic long after the bad Add — stranding the buffer.
	for _, s := range sets {
		if len(s) == 0 {
			panic("shard: cannot add an empty set")
		}
	}
	x.mu.Lock()
	ids := make([]int, len(sets))
	for i, s := range sets {
		ids[i] = x.total
		x.total++
		x.side.sets = append(x.side.sets, s)
		x.side.ids = append(x.side.ids, ids[i])
	}
	x.live += len(sets)
	x.appends += len(sets)
	x.version.Add(1)
	var pending *sideBuffer
	slot := 0
	if len(x.side.sets) >= x.opt.MergeThreshold {
		pending, slot = x.beginSealLocked()
	}
	auto := x.opt.AutoCompact
	x.mu.Unlock()
	if pending != nil {
		x.finishSeal(pending, slot)
		if auto {
			x.compactAsync()
		}
		x.placementKick()
	}
	if m := x.metrics; m != nil {
		m.addLat.Observe(time.Since(start))
	}
	return ids
}

// beginSealLocked detaches the side buffer for sealing and claims the
// next shard seed slot. Caller holds the write lock. The detached buffer
// joins x.sealing, so queries keep scanning it exactly while the shard
// build runs outside the lock.
//
// Sealing is also where tombstones are compacted: entries deleted while
// buffered are dropped before the shard is built, and their tombstones
// retire with them — a delete that never reaches a sealed shard costs
// nothing forever after. (Deletes that land after this point still serve
// correctly: the built shard contains the set, but query merges filter
// it through the tombstone set.) If compaction empties the buffer, no
// slot is claimed and no shard is built.
func (x *Index) beginSealLocked() (*sideBuffer, int) {
	b := x.side
	x.side = &sideBuffer{}
	if len(x.tombs) > 0 {
		// Copy-on-write on both sides: in-flight queries may still hold
		// the old buffer slices and the old tombstone map, so filter into
		// fresh slices and publish a fresh map.
		remaining := make(map[int]struct{}, len(x.tombs))
		for id := range x.tombs {
			remaining[id] = struct{}{}
		}
		kept := &sideBuffer{}
		var reclaimed []int
		for i, id := range b.ids {
			if _, dead := remaining[id]; dead {
				delete(remaining, id)
				reclaimed = append(reclaimed, id)
				continue
			}
			kept.sets = append(kept.sets, b.sets[i])
			kept.ids = append(kept.ids, id)
		}
		if len(reclaimed) > 0 {
			b = kept
			if len(remaining) == 0 {
				x.tombs = nil
			} else {
				x.tombs = remaining
			}
			x.markDroppedLocked(reclaimed)
		}
	}
	if len(b.sets) == 0 {
		return nil, 0
	}
	x.sealing = append(x.sealing, b)
	slot := x.nextSlot
	x.nextSlot++
	return b, slot
}

// finishSeal builds the detached buffer into a full shard — outside the
// lock, so serving never stalls on a seal — then swaps it into the ring.
func (x *Index) finishSeal(b *sideBuffer, slot int) {
	ix := cpindex.Build(b.sets, x.lambda, &cpindex.Options{
		Trees:    x.opt.Trees,
		LeafSize: x.opt.LeafSize,
		T:        x.opt.T,
		Seed:     SeedFor(x.opt.Seed, slot),
		Workers:  x.opt.Workers,
		Layout:   x.opt.Layout,
	})
	x.attachCounters(ix)
	x.mu.Lock()
	defer x.mu.Unlock()
	x.shards = append(x.shards, &subIndex{ix: ix, ids: b.ids})
	for i, s := range x.sealing {
		if s == b {
			x.sealing = append(x.sealing[:i:i], x.sealing[i+1:]...)
			break
		}
	}
	x.merges++
	x.generation++
	x.version.Add(1)
}

// markDroppedLocked records ids whose physical entries have just been
// reclaimed, so later deletes of the same ids stay no-ops. Caller holds
// the write lock.
func (x *Index) markDroppedLocked(ids []int) {
	if x.dropped == nil {
		x.dropped = &intset.Bitmap{}
	}
	for _, id := range ids {
		x.dropped.Set(id)
	}
}

// Delete removes the set with the given global id from query results. It
// reports whether the id was live (false for out-of-range or already
// deleted ids). The set is tombstoned, not unbuilt: sealed shards are
// immutable, so query merges filter the id out, and the physical entry
// is reclaimed when its side buffer seals (buffered entries) or when
// Compact rewrites its shard (sealed entries).
func (x *Index) Delete(id int) bool {
	return x.DeleteBatch([]int{id}) == 1
}

// DeleteBatch deletes many ids at once with a single copy of the
// tombstone set, returning how many were live. Unknown and already
// deleted ids are skipped — including ids whose physical entries were
// already reclaimed by a seal or a compaction, which would otherwise be
// re-tombstoned and corrupt the live count.
func (x *Index) DeleteBatch(ids []int) int {
	start := time.Now()
	x.mu.Lock()
	defer x.mu.Unlock()
	defer func() {
		if m := x.metrics; m != nil {
			m.deleteLat.Observe(time.Since(start))
		}
	}()
	var next map[int]struct{}
	deleted := 0
	for _, id := range ids {
		if id < 0 || id >= x.total {
			continue
		}
		if x.dropped.Get(id) {
			continue
		}
		if _, dead := x.tombs[id]; dead {
			continue
		}
		if next == nil {
			next = make(map[int]struct{}, len(x.tombs)+len(ids))
			for t := range x.tombs {
				next[t] = struct{}{}
			}
		}
		if _, dead := next[id]; dead {
			continue
		}
		next[id] = struct{}{}
		deleted++
	}
	if deleted > 0 {
		x.tombs = next
		x.deletes += deleted
		x.live -= deleted
		x.version.Add(1)
	}
	return deleted
}

// Flush seals the side buffer into the ring immediately, regardless of
// MergeThreshold. A no-op when the buffer is empty.
func (x *Index) Flush() {
	x.mu.Lock()
	var pending *sideBuffer
	slot := 0
	if len(x.side.sets) > 0 {
		pending, slot = x.beginSealLocked()
	}
	auto := x.opt.AutoCompact
	x.mu.Unlock()
	if pending != nil {
		x.finishSeal(pending, slot)
		if auto {
			x.compactAsync()
		}
		x.placementKick()
	}
}

// SetAutoCompact enables or disables seal-triggered background compaction
// on a built or loaded index. Prefer Configure, which applies every
// runtime knob in one validated call.
func (x *Index) SetAutoCompact(on bool) {
	x.mu.Lock()
	x.opt.AutoCompact = on
	x.runtime.AutoCompact = on
	x.mu.Unlock()
}

// Stats describes the current shape of a sharded index.
type Stats struct {
	Lambda float64 `json:"lambda"`
	// Sets counts live sets (deleted sets excluded, buffered included).
	Sets       int   `json:"sets"`
	Shards     int   `json:"shards"`
	ShardSizes []int `json:"shard_sizes"`
	Buffered   int   `json:"buffered"`
	Appends    int   `json:"appends"`
	Merges     int   `json:"merges"`
	// Deletes counts lifetime Delete calls that hit a live id;
	// Tombstones counts the deleted ids still physically present (and
	// thus filtered at query time) — seals compact buffered ones away,
	// Compact reclaims the rest.
	Deletes    int `json:"deletes"`
	Tombstones int `json:"tombstones"`
	// Compactions counts completed Compact passes, CompactedShards the
	// ring shards they removed or rewrote, and Reclaimed the deleted ids
	// whose physical entries have been dropped (by seals and compactions)
	// and whose tombstones are retired for good.
	Compactions     int `json:"compactions"`
	CompactedShards int `json:"compacted_shards"`
	Reclaimed       int `json:"reclaimed"`
	// Generation counts ring changes: seals, compaction swaps and remote
	// placements.
	Generation int `json:"generation"`
	// RemoteShards counts ring shards currently backed by peers (placed or
	// replicated via Distribute). Nodes and Leaves cover local structures
	// only — a remote shard's tree lives on its peer.
	RemoteShards int `json:"remote_shards"`
	// HotShards and ColdShards split the local ring by storage tier:
	// fully decoded versus memory-mapped with lazy decode.
	HotShards  int `json:"hot_shards"`
	ColdShards int `json:"cold_shards"`
	// PlacementEpoch counts placement passes (Distribute calls, manual or
	// controller-driven); PlacementKeys is the number of distinct shard
	// keys this coordinator currently believes peers host for it — after a
	// clean GC sweep it equals the ring's remote key count.
	PlacementEpoch int    `json:"placement_epoch"`
	PlacementKeys  int    `json:"placement_keys"`
	Nodes          int    `json:"nodes"`
	Leaves         int    `json:"leaves"`
	Partition      string `json:"partition"`
	Workers        int    `json:"workers"`
	// CacheEnabled reports whether the hot-query result cache is on;
	// when it is, CacheEntries is its current size and CacheHits /
	// CacheMisses its lifetime counters (misses include entries orphaned
	// by a version bump).
	CacheEnabled bool   `json:"cache_enabled"`
	CacheEntries int    `json:"cache_entries"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
}

// Stats returns a point-in-time snapshot of the index shape.
func (x *Index) Stats() Stats {
	x.mu.RLock()
	defer x.mu.RUnlock()
	buffered := len(x.side.sets)
	for _, b := range x.sealing {
		buffered += len(b.sets)
	}
	st := Stats{
		Lambda:          x.lambda,
		Sets:            x.live,
		Shards:          len(x.shards),
		Buffered:        buffered,
		Appends:         x.appends,
		Merges:          x.merges,
		Deletes:         x.deletes,
		Tombstones:      len(x.tombs),
		Compactions:     x.compactions,
		CompactedShards: x.compactedShards,
		Reclaimed:       x.dropped.Count(),
		Generation:      x.generation,
		Partition:       x.opt.Partition.String(),
		Workers:         x.opt.Workers,
	}
	st.PlacementEpoch, st.PlacementKeys = x.placement.stats()
	if c := x.cache.Load(); c != nil {
		st.CacheEnabled = true
		st.CacheEntries, st.CacheHits, st.CacheMisses = c.stats()
	}
	for _, sh := range x.shards {
		st.ShardSizes = append(st.ShardSizes, sh.size())
		switch b := sh.(type) {
		case *subIndex:
			st.HotShards++
			st.Nodes += b.ix.Nodes
			st.Leaves += b.ix.Leaves
		case *coldShard:
			st.ColdShards++
			nodes, leaves := b.mapped.Structure()
			st.Nodes += nodes
			st.Leaves += leaves
		default:
			st.RemoteShards++
		}
	}
	return st
}
