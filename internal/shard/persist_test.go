package shard

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/snapshot"
)

// TestSaveLoadRoundTrip pins the acceptance contract: for contiguous and
// hashed partitioning, any shard count and any worker count,
// Load(Save(idx)) returns byte-identical Query/QueryBatch results to the
// original index — including appends still buffered in the side shard at
// save time.
func TestSaveLoadRoundTrip(t *testing.T) {
	sets, _ := workload(900, 0.8, 301)
	extra, _ := workload(70, 0.8, 303) // 150 sets: workload plants extra pairs
	queries := append(append([][]uint32{}, sets[:150]...), extra...)

	for _, part := range []Partition{PartitionContiguous, PartitionHash} {
		for _, shards := range []int{1, 3, 5} {
			x := Build(sets, 0.5, &Options{
				Shards: shards, Partition: part, Seed: 7, MergeThreshold: 100, Workers: 4,
			})
			// First Add seals into a new shard; second stays buffered, so
			// the save covers sealed appends AND live side-shard state.
			x.Add(extra[:100])
			x.Add(extra[100:])
			if st := x.Stats(); st.Merges != 1 || st.Buffered != len(extra)-100 {
				t.Fatalf("%v/%d: setup produced %+v", part, shards, st)
			}

			dir := t.TempDir()
			if err := x.Save(dir); err != nil {
				t.Fatalf("%v/%d: Save: %v", part, shards, err)
			}
			want := mustQueryBatch(t, x, queries)

			for _, workers := range []int{0, 1, 4, 8} {
				y, err := Load(dir, workers)
				if err != nil {
					t.Fatalf("%v/%d/w=%d: Load: %v", part, shards, workers, err)
				}
				if y.Len() != x.Len() {
					t.Fatalf("%v/%d/w=%d: Len %d != %d", part, shards, workers, y.Len(), x.Len())
				}
				got := mustQueryBatch(t, y, queries)
				for i := range got {
					if !equalMatches(t, got[i], want[i]) {
						t.Fatalf("%v/%d/w=%d: query %d differs after reload", part, shards, workers, i)
					}
				}
				for _, q := range queries[:40] {
					id1, sim1, ok1 := mustQuery(t, x, q)
					id2, sim2, ok2 := mustQuery(t, y, q)
					if id1 != id2 || sim1 != sim2 || ok1 != ok2 {
						t.Fatalf("%v/%d/w=%d: Query differs after reload", part, shards, workers)
					}
				}
			}
		}
	}
}

// TestSaveLoadStatsAndResume: counters survive a reload, and ids keep
// growing from the high-water mark so appends after Load never collide.
func TestSaveLoadStatsAndResume(t *testing.T) {
	sets, _ := workload(300, 0.8, 305)
	extra, _ := workload(120, 0.8, 307)
	x := Build(sets, 0.5, &Options{Shards: 2, Seed: 9, MergeThreshold: 60, Workers: 2})
	x.Add(extra) // crosses the threshold: one seal, 0 buffered

	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	y, err := Load(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := x.Stats(), y.Stats()
	if ys.Sets != xs.Sets || ys.Shards != xs.Shards || ys.Appends != xs.Appends ||
		ys.Merges != xs.Merges || ys.Buffered != xs.Buffered || ys.Partition != xs.Partition {
		t.Fatalf("stats changed across reload:\n  saved  %+v\n  loaded %+v", xs, ys)
	}

	more, _ := workload(80, 0.8, 309)
	gotIDs := y.Add(more)
	wantFirst := len(sets) + len(extra)
	if gotIDs[0] != wantFirst {
		t.Fatalf("first id after reload = %d, want %d", gotIDs[0], wantFirst)
	}
	// The post-reload seal claimed a fresh slot: its seed must differ
	// from every sealed shard's (slots are never reused).
	y.Flush()
	seeds := map[uint64]int{}
	for i, sh := range y.shards {
		s := sh.(*subIndex).ix.Options().Seed
		if prev, dup := seeds[s]; dup {
			t.Fatalf("shards %d and %d share seed %d", prev, i, s)
		}
		seeds[s] = i
	}
}

// TestDeleteTombstones covers the delete semantics end to end: deleted
// ids — sealed or side-buffered — never appear in results, survive a
// save/load cycle, and compact away when the side shard seals.
func TestDeleteTombstones(t *testing.T) {
	sets, _ := workload(400, 0.8, 311)
	extra, _ := workload(30, 0.8, 313)
	x := Build(sets, 0.5, &Options{Shards: 3, Seed: 11, MergeThreshold: 500, Workers: 2})
	ids := x.Add(extra) // all buffered: threshold not reached
	if st := x.Stats(); st.Buffered != len(extra) {
		t.Fatalf("setup: %d buffered, want %d", st.Buffered, len(extra))
	}

	sealedVictim := 17   // lives in a primary shard
	sideVictim := ids[5] // lives in the unsealed side shard
	if !x.Delete(sealedVictim) || !x.Delete(sideVictim) {
		t.Fatal("Delete of live ids returned false")
	}
	if x.Delete(sealedVictim) {
		t.Error("double Delete returned true")
	}
	if x.Delete(-1) || x.Delete(1<<30) {
		t.Error("Delete of unknown ids returned true")
	}
	if st := x.Stats(); st.Deletes != 2 || st.Tombstones != 2 || st.Sets != len(sets)+len(extra)-2 {
		t.Fatalf("stats after delete: %+v", st)
	}

	checkGone := func(t *testing.T, x *Index, label string) {
		t.Helper()
		for _, victim := range []int{sealedVictim, sideVictim} {
			var q []uint32
			if victim < len(sets) {
				q = sets[victim]
			} else {
				q = extra[victim-len(sets)]
			}
			if id, _, ok := mustQuery(t, x, q); ok && id == victim {
				t.Fatalf("%s: Query returned deleted id %d", label, victim)
			}
			for _, m := range mustQueryAll(t, x, q) {
				if m.ID == victim {
					t.Fatalf("%s: QueryAll returned deleted id %d", label, victim)
				}
			}
			for _, ms := range mustQueryBatch(t, x, [][]uint32{q}) {
				for _, m := range ms {
					if m.ID == victim {
						t.Fatalf("%s: QueryBatch returned deleted id %d", label, victim)
					}
				}
			}
		}
	}
	checkGone(t, x, "in-memory")

	// Tombstones persist through save/load.
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	y, err := Load(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkGone(t, y, "reloaded")
	if st := y.Stats(); st.Tombstones != 2 || st.Sets != x.Stats().Sets {
		t.Fatalf("reloaded stats: %+v", st)
	}

	// Sealing compacts the side-shard tombstone away; the sealed-shard
	// tombstone stays until shard compaction exists.
	y.Flush()
	if st := y.Stats(); st.Tombstones != 1 || st.Deletes != 2 {
		t.Fatalf("stats after compacting seal: %+v", st)
	}
	checkGone(t, y, "after seal")
	// The sealed shard must not contain the compacted entry physically:
	// total sealed sizes = all sets minus the one compacted side victim.
	st := y.Stats()
	sealed := 0
	for _, n := range st.ShardSizes {
		sealed += n
	}
	if want := len(sets) + len(extra) - 1; sealed != want {
		t.Fatalf("sealed sizes sum to %d, want %d (victim not compacted)", sealed, want)
	}
}

// TestDeleteEverythingInBuffer: a seal whose buffer compacts to nothing
// must not build an empty shard or leak a seed slot.
func TestDeleteEverythingInBuffer(t *testing.T) {
	sets, _ := workload(200, 0.8, 315)
	extra, _ := workload(10, 0.8, 317)
	x := Build(sets, 0.5, &Options{Shards: 2, Seed: 13, MergeThreshold: 100})
	ids := x.Add(extra)
	if n := x.DeleteBatch(ids); n != len(ids) {
		t.Fatalf("DeleteBatch deleted %d, want %d", n, len(ids))
	}
	before := x.Stats()
	x.Flush()
	after := x.Stats()
	if after.Shards != before.Shards || after.Merges != before.Merges {
		t.Fatalf("empty seal built a shard: %+v -> %+v", before, after)
	}
	if after.Tombstones != 0 || after.Buffered != 0 {
		t.Fatalf("tombstones not fully compacted: %+v", after)
	}
	if after.Sets != len(sets) {
		t.Fatalf("live count %d, want %d", after.Sets, len(sets))
	}
}

// TestQueryFallbackPastTombstone: deleting the best match must not hide
// other matches living in the same shard (Query rescans past a dead best).
func TestQueryFallbackPastTombstone(t *testing.T) {
	// Two identical sets in one shard: both match any self-query with
	// sim 1.0; delete the lower id and the other must still be found.
	base := []uint32{2, 4, 6, 8, 10, 12}
	sets := [][]uint32{base, base, {100, 200, 300}}
	x := Build(sets, 0.5, &Options{Shards: 1, Seed: 17})
	if !x.Delete(0) {
		t.Fatal("Delete(0) failed")
	}
	id, sim, ok := mustQuery(t, x, base)
	if !ok || id != 1 || sim != 1.0 {
		t.Fatalf("Query after deleting best: id=%d sim=%v ok=%v, want id=1 sim=1", id, sim, ok)
	}
}

// TestLoadCorruptionRejected: truncated shard files, flipped bytes and
// wrong format versions all produce descriptive errors from Load — never
// a panic, never a silently wrong index.
func TestLoadCorruptionRejected(t *testing.T) {
	sets, _ := workload(300, 0.8, 319)
	x := Build(sets, 0.5, &Options{Shards: 2, Seed: 19, Workers: 2})
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	m0, err := snapshot.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	shardPath := filepath.Join(dir, m0.Shards[0].File)
	pristine, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(shardPath, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Baseline loads.
	if _, err := Load(dir, 1); err != nil {
		t.Fatalf("pristine snapshot failed to load: %v", err)
	}

	// Truncated shard file.
	if err := os.WriteFile(shardPath, pristine[:len(pristine)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, 1); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("truncated shard file: err = %v, want ErrCorrupt", err)
	}
	restore()

	// Flipped byte (CRC mismatch) in the middle of the shard file.
	bad := append([]byte(nil), pristine...)
	bad[len(bad)/2] ^= 0x01
	if err := os.WriteFile(shardPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, 1); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("flipped byte: err = %v, want ErrCorrupt", err)
	}
	restore()

	// Wrong container format version in the shard file.
	bad = append([]byte(nil), pristine...)
	bad[8] = 0x7f
	if err := os.WriteFile(shardPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, 1); !errors.Is(err, snapshot.ErrVersion) {
		t.Errorf("wrong shard version: err = %v, want ErrVersion", err)
	}
	restore()

	// Shard files swapped: the manifest seed cross-check catches it.
	other, err := os.ReadFile(filepath.Join(dir, m0.Shards[1].File))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shardPath, other, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, 1); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("swapped shard files: err = %v, want ErrCorrupt", err)
	}
	restore()

	// Missing shard file.
	if err := os.Remove(shardPath); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, 1); err == nil {
		t.Error("missing shard file: Load succeeded")
	}
	restore()

	// Wrong manifest version.
	m, err := snapshot.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	m.FormatVersion = 99
	// WriteManifest validates nothing; ReadManifest must reject.
	if err := snapshot.WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, 1); !errors.Is(err, snapshot.ErrVersion) {
		t.Errorf("wrong manifest version: err = %v, want ErrVersion", err)
	}

	// Missing manifest entirely.
	if err := os.Remove(filepath.Join(dir, snapshot.ManifestFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, 1); err == nil {
		t.Error("missing manifest: Load succeeded")
	}
}

// TestLoadPreservesCompactionPolicy: custom compaction knobs survive a
// Save/Load round trip (a ratio above 1 is the documented way to disable
// ratio-triggered rewrites — resetting it to the default on restart
// would compact shards the operator excluded), while zeroed knobs in a
// pre-compaction manifest still select the defaults.
func TestLoadPreservesCompactionPolicy(t *testing.T) {
	sets, _ := workload(40, 0.8, 341)
	x := Build(sets, 0.5, &Options{
		Shards: 2, Seed: 41, MergeThreshold: 10,
		CompactSmall: 7, CompactMinShards: 3, CompactTombstoneRatio: 1.5,
	})
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	y, err := Load(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if y.opt.CompactSmall != 7 || y.opt.CompactMinShards != 3 || y.opt.CompactTombstoneRatio != 1.5 {
		t.Errorf("loaded policy = {%d %d %v}, want {7 3 1.5}",
			y.opt.CompactSmall, y.opt.CompactMinShards, y.opt.CompactTombstoneRatio)
	}

	// A manifest without the knobs (pre-compaction snapshot) defaults.
	m, err := snapshot.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	m.CompactSmall, m.CompactMinShards, m.CompactTombstoneRatio = 0, 0, 0
	if err := snapshot.WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	z, err := Load(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if z.opt.CompactSmall != 2*m.MergeThreshold || z.opt.CompactMinShards != 2 || z.opt.CompactTombstoneRatio != 0.3 {
		t.Errorf("defaulted policy = {%d %d %v}, want {%d 2 0.3}",
			z.opt.CompactSmall, z.opt.CompactMinShards, z.opt.CompactTombstoneRatio, 2*m.MergeThreshold)
	}
}

// TestLoadDroppedInvariantsRejected: the manifest's Dropped list must be
// disjoint from the tombstones, the side shard and every sealed shard's
// ids — a manifest violating any of these would resurrect a reclaimed id
// as live-but-undeletable data or debit the live count twice.
func TestLoadDroppedInvariantsRejected(t *testing.T) {
	sets, _ := workload(60, 0.8, 337)
	extra, _ := workload(10, 0.8, 339)
	x := Build(sets, 0.5, &Options{Shards: 2, Seed: 37, MergeThreshold: 100})
	x.Add(extra) // stays buffered in the side shard
	x.Delete(3)  // a genuine tombstone in a sealed shard
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	m0, err := snapshot.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func(m *snapshot.Manifest)) {
		m := *m0
		mutate(&m)
		if err := snapshot.WriteManifest(dir, &m); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir, 1); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	// Id 0 lives in a sealed shard; claiming it was dropped is corruption.
	corrupt("dropped id present in shard", func(m *snapshot.Manifest) {
		m.Dropped = []int{0}
	})
	// Id 3 is tombstoned; dropped means its tombstone was retired.
	corrupt("id both dropped and tombstoned", func(m *snapshot.Manifest) {
		m.Dropped = []int{3}
	})
	// The first appended id sits in the side shard.
	corrupt("dropped id still in side shard", func(m *snapshot.Manifest) {
		m.Dropped = []int{len(sets)}
	})
	// A ghost tombstone: reclassifying a genuinely absent id (dropped in
	// a real snapshot) as tombstoned would debit the live count for an id
	// that exists nowhere.
	y := Build(sets, 0.5, &Options{Shards: 2, Seed: 37, MergeThreshold: 10})
	ids := y.Add(extra[:4]) // stays buffered (4 < MergeThreshold)
	y.Delete(ids[0])
	y.Flush() // seal reclaims the deleted buffered entry: ids[0] is dropped
	ghostDir := t.TempDir()
	if err := y.Save(ghostDir); err != nil {
		t.Fatal(err)
	}
	gm, err := snapshot.ReadManifest(ghostDir)
	if err != nil {
		t.Fatal(err)
	}
	dropped := gm.DroppedIDs().Ints()
	if len(dropped) != 1 {
		t.Fatalf("expected one dropped id, manifest has %v", dropped)
	}
	gm.Tombstones, gm.DroppedBitmap = dropped, nil
	if err := snapshot.WriteManifest(ghostDir, gm); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(ghostDir, 1); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("ghost tombstone: err = %v, want ErrCorrupt", err)
	}
	// Pristine manifest still loads.
	if err := snapshot.WriteManifest(dir, m0); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, 1); err != nil {
		t.Errorf("pristine manifest failed to load: %v", err)
	}
}

// TestConcurrentSaveDeleteQuery races Save against Add, Delete and
// queries: every snapshot taken must be internally consistent and
// loadable (the race job's guard for the persistence path).
func TestConcurrentSaveDeleteQuery(t *testing.T) {
	sets, _ := workload(300, 0.8, 331)
	extra, _ := workload(100, 0.8, 333)
	x := Build(sets, 0.5, &Options{Shards: 2, Seed: 31, MergeThreshold: 40, Workers: 2})
	dir := t.TempDir()

	done := make(chan error, 3)
	go func() {
		for i := range extra {
			x.Add(extra[i : i+1])
			if i%7 == 0 {
				x.Delete(i % len(sets))
			}
		}
		done <- nil
	}()
	go func() {
		for pass := 0; pass < 6; pass++ {
			if err := x.Save(dir); err != nil {
				done <- err
				return
			}
			if _, err := Load(dir, 2); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for pass := 0; pass < 4; pass++ {
			mustQueryBatch(t, x, sets[:40])
			for i := 0; i < len(sets); i += 11 {
				mustQueryAll(t, x, sets[i])
			}
		}
		done <- nil
	}()
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	// Final save/load reflects the settled state exactly.
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	y, err := Load(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if y.Len() != x.Len() {
		t.Fatalf("final reload Len %d != %d", y.Len(), x.Len())
	}
	want := mustQueryBatch(t, x, sets[:60])
	got := mustQueryBatch(t, y, sets[:60])
	for i := range got {
		if !equalMatches(t, got[i], want[i]) {
			t.Fatalf("query %d differs after settled reload", i)
		}
	}
}

// TestCrashedSaveLeavesPreviousSnapshotReadable: a save that dies after
// writing shard files but before the manifest must not disturb the
// previous snapshot — generations keep new files out of the old
// manifest's namespace, and the next successful save prunes the debris.
func TestCrashedSaveLeavesPreviousSnapshotReadable(t *testing.T) {
	sets, _ := workload(300, 0.8, 341)
	x := Build(sets, 0.5, &Options{Shards: 2, Seed: 37, Workers: 2})
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	want := mustQueryBatch(t, x, sets[:50])

	// Simulate the crash window of a DIFFERENT index's save: its shard
	// files landed (next generation), the manifest write never happened.
	other := Build(sets[:80], 0.5, &Options{Shards: 2, Seed: 99})
	gen, err := nextGeneration(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range other.shards {
		if err := saveShard(filepath.Join(dir, shardFileName(gen, i)), sh.(*subIndex), other.containOptions()); err != nil {
			t.Fatal(err)
		}
	}

	// The previous snapshot still loads, bit-for-bit.
	y, err := Load(dir, 2)
	if err != nil {
		t.Fatalf("snapshot unreadable after crashed save: %v", err)
	}
	got := mustQueryBatch(t, y, sets[:50])
	for i := range got {
		if !equalMatches(t, got[i], want[i]) {
			t.Fatalf("query %d differs after crashed save", i)
		}
	}

	// The next successful save prunes the debris.
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	m, err := snapshot.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cps := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".cps" {
			cps++
		}
	}
	if cps != len(m.Shards) {
		t.Fatalf("%d shard files on disk, manifest names %d (debris not pruned)", cps, len(m.Shards))
	}
}

// TestSaveOverwriteShrinks: saving a smaller index over a larger snapshot
// removes the stale extra shard files.
func TestSaveOverwriteShrinks(t *testing.T) {
	sets, _ := workload(400, 0.8, 321)
	big := Build(sets, 0.5, &Options{Shards: 6, Seed: 23})
	small := Build(sets[:100], 0.5, &Options{Shards: 2, Seed: 23})
	dir := t.TempDir()
	if err := big.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := small.Save(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".cps" {
			files++
		}
	}
	if files != 2 {
		t.Fatalf("%d shard files after shrinking save, want 2", files)
	}
	y, err := Load(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if y.Len() != 100 {
		t.Fatalf("loaded %d sets, want 100", y.Len())
	}
}

// TestSaveLoadEmptyIndex: the degenerate cases survive the cycle.
func TestSaveLoadEmptyIndex(t *testing.T) {
	x := Build(nil, 0.5, &Options{Shards: 4, Seed: 29})
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	y, err := Load(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if y.Len() != 0 {
		t.Fatalf("empty index loaded with %d sets", y.Len())
	}
	if _, _, ok := mustQuery(t, y, []uint32{1, 2, 3}); ok {
		t.Error("reloaded empty index found a match")
	}
	ids := y.Add([][]uint32{{1, 2, 3}})
	if len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("Add after empty reload: ids %v", ids)
	}
	if id, _, ok := mustQuery(t, y, []uint32{1, 2, 3}); !ok || id != 0 {
		t.Fatal("appended set not found after empty reload")
	}
}
