//go:build unix && !nommap

// Package mmap maps files read-only into memory. On unix builds the file
// is memory-mapped, so opening costs a few page-table entries regardless
// of size and untouched regions are never read off disk; elsewhere (or
// under the nommap build tag) Open falls back to reading the whole file
// onto the heap, preserving the API so callers need no build tags of
// their own.
package mmap

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// Supported reports whether this build actually memory-maps files; when
// false, Open reads files onto the heap and lazy-paging benefits vanish.
const Supported = true

// File is one opened file's contents. Data stays valid until the File is
// garbage-collected or explicitly Closed — a finalizer unmaps the region,
// so holders of Data sub-slices must keep the File reachable (mapped
// memory is invisible to the garbage collector; a sub-slice alone does
// not keep the mapping alive).
type File struct {
	Data   []byte
	mapped []byte
}

// Open maps path read-only.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &File{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmap: %s: file too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap: %s: %w", path, err)
	}
	mf := &File{Data: data, mapped: data}
	// Unmap on collection rather than demanding explicit lifecycle calls:
	// queries may still be reading mapped pages when a shard leaves the
	// ring, and the last reader's reachability — not a close call — is
	// what actually bounds the mapping's life.
	runtime.SetFinalizer(mf, (*File).Close)
	return mf, nil
}

// Close unmaps the region. Idempotent; only tests and open-error paths
// need it — normal owners let the finalizer run.
func (f *File) Close() error {
	if f.mapped == nil {
		return nil
	}
	m := f.mapped
	f.mapped, f.Data = nil, nil
	runtime.SetFinalizer(f, nil)
	return syscall.Munmap(m)
}
