//go:build !unix || nommap

package mmap

import "os"

// Supported reports whether this build actually memory-maps files; this
// fallback build reads files onto the heap instead.
const Supported = false

// File is one opened file's contents, heap-backed on this build.
type File struct {
	Data []byte
}

// Open reads path fully onto the heap. The cold tier still functions —
// lazy decode still skips structure builds — but paging benefits vanish.
func Open(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &File{Data: data}, nil
}

// Close releases the buffer reference. Idempotent.
func (f *File) Close() error {
	f.Data = nil
	return nil
}
