// Package metrics is the serving stack's instrumentation substrate:
// atomic counters, gauges and fixed log-bucket latency histograms, plus a
// registry that renders them in the Prometheus text exposition format.
//
// The paper's evaluation is built on measured per-query behavior —
// candidates generated, verifications run, time per repetition — and the
// serving layers grown around cpindex need the same numbers continuously,
// not as a one-off harness. The design constraints come from the query
// path they instrument:
//
//   - Observe/Inc/Add are single atomic RMW operations on fixed storage —
//     no allocation, no locks — so the zero-allocations-per-query contract
//     of the flat query engine survives instrumentation (enforced by
//     AllocsPerRun gates in internal/shard and internal/cpindex).
//   - Histograms use fixed power-of-two nanosecond buckets (1.024µs up to
//     ~8.6s, then +Inf), so bucketing is a bits.Len64, not a search, and
//     two histograms are always mergeable.
//   - Exposition is pull-based text format: a scrape walks the registry
//     and formats current values; nothing is computed on the hot path.
//
// Registration is idempotent per (name, labels) pair — re-registering
// replaces the previous collector — so layers that may be constructed
// more than once over one registry (servers over a shared index) stay
// well-formed.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count: bounds are 1024ns << i for
// i in [0, histBuckets), i.e. 1.024µs up to ~8.6s; slower observations
// land only in the implicit +Inf bucket.
const histBuckets = 24

// histBound returns bucket i's upper bound in nanoseconds.
func histBound(i int) uint64 { return 1024 << uint(i) }

// Histogram is a fixed log-bucket latency histogram. Observe is a few
// atomic adds on fixed arrays — zero allocations, no locks — so it can
// sit on the per-query hot path.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.sumNs.Add(uint64(ns))
	h.count.Add(1)
	if i := bucketIdx(uint64(ns)); i < histBuckets {
		h.buckets[i].Add(1)
	}
}

// bucketIdx returns the index of the first bucket whose bound is >= ns
// (histBuckets when only +Inf qualifies).
func bucketIdx(ns uint64) int {
	if ns <= 1024 {
		return 0
	}
	return bits.Len64(ns-1) - 10
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumSeconds returns the sum of all observed durations in seconds.
func (h *Histogram) SumSeconds() float64 { return float64(h.sumNs.Load()) / 1e9 }

// Collector kinds. Exactly one of the payload fields of an entry is set.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// entry is one registered collector: a name, optional rendered label
// pairs, and the value source.
type entry struct {
	name   string
	help   string
	typ    string
	labels string // rendered `k="v",k2="v2"` form, "" when unlabeled

	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() float64
}

// Registry holds an ordered set of collectors and renders them in the
// Prometheus text format. All methods are safe for concurrent use;
// collection (WritePrometheus) never blocks writers to the collectors
// themselves, only concurrent registration.
type Registry struct {
	mu   sync.Mutex
	ents []*entry
	// byKey indexes entries by name+labels for idempotent registration.
	byKey map[string]*entry
	// typeOf pins the collector type per name — Prometheus forbids one
	// name carrying two types.
	typeOf map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry), typeOf: make(map[string]string)}
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// renderLabels validates and renders alternating key, value label pairs.
// Invalid names and odd pair counts panic: labels are compile-time
// constants or operator-supplied identifiers, so a bad one is a
// programming error, not an input error.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list %q", labels))
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if !labelRe.MatchString(labels[i]) {
			panic(fmt.Sprintf("metrics: invalid label name %q", labels[i]))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// register installs e, replacing any previous collector with the same
// (name, labels) key, and enforces one type per name.
func (r *Registry) register(e *entry) {
	if !nameRe.MatchString(e.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", e.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.typeOf[e.name]; ok && t != e.typ {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", e.name, t, e.typ))
	}
	r.typeOf[e.name] = e.typ
	key := e.name + "{" + e.labels + "}"
	if old, ok := r.byKey[key]; ok {
		*old = *e
		return
	}
	r.byKey[key] = e
	r.ents = append(r.ents, e)
}

// Counter registers and returns a counter. labels are alternating
// key, value pairs baked into every sample line.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(&entry{name: name, help: help, typ: typeCounter, labels: renderLabels(labels), counter: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.register(&entry{name: name, help: help, typ: typeGauge, labels: renderLabels(labels), gauge: g})
	return g
}

// Histogram registers and returns a histogram.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	h := &Histogram{}
	r.register(&entry{name: name, help: help, typ: typeHistogram, labels: renderLabels(labels), hist: h})
	return h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for wiring in counters that already live elsewhere (cache hit
// counts, scheduler totals) without double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...string) {
	r.register(&entry{name: name, help: help, typ: typeCounter, labels: renderLabels(labels), counterFn: fn})
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(&entry{name: name, help: help, typ: typeGauge, labels: renderLabels(labels), gaugeFn: fn})
}

// WritePrometheus renders every registered collector in the text
// exposition format (version 0.0.4): one HELP/TYPE header per metric
// name, then every sample of that name in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ents := append([]*entry(nil), r.ents...)
	r.mu.Unlock()

	// Group samples under one header per name, preserving the order names
	// first appeared in.
	order := make([]string, 0, len(ents))
	byName := make(map[string][]*entry, len(ents))
	for _, e := range ents {
		if _, ok := byName[e.name]; !ok {
			order = append(order, e.name)
		}
		byName[e.name] = append(byName[e.name], e)
	}

	var b strings.Builder
	for _, name := range order {
		group := byName[name]
		if h := group[0].help; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(h))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, group[0].typ)
		for _, e := range group {
			switch {
			case e.counter != nil:
				writeSample(&b, e.name, e.labels, formatUint(e.counter.Value()))
			case e.counterFn != nil:
				writeSample(&b, e.name, e.labels, formatUint(e.counterFn()))
			case e.gauge != nil:
				writeSample(&b, e.name, e.labels, strconv.FormatInt(e.gauge.Value(), 10))
			case e.gaugeFn != nil:
				writeSample(&b, e.name, e.labels, formatFloat(e.gaugeFn()))
			case e.hist != nil:
				writeHistogram(&b, e)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram's cumulative buckets, sum and
// count. Buckets and count are read without a snapshot barrier, so under
// concurrent Observes the +Inf value is clamped to keep the cumulative
// series monotone.
func writeHistogram(b *strings.Builder, e *entry) {
	h := e.hist
	count := h.count.Load()
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		le := formatFloat(float64(histBound(i)) / 1e9)
		writeSample(b, e.name+"_bucket", joinLabels(e.labels, `le="`+le+`"`), formatUint(cum))
	}
	if count < cum {
		count = cum
	}
	writeSample(b, e.name+"_bucket", joinLabels(e.labels, `le="+Inf"`), formatUint(count))
	writeSample(b, e.name+"_sum", e.labels, formatFloat(h.SumSeconds()))
	writeSample(b, e.name+"_count", e.labels, formatUint(count))
}

func writeSample(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// ServeHTTP makes a Registry an http.Handler: GET returns the exposition
// text (the /metrics endpoint body).
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WritePrometheus(w)
}

// Names returns the registered metric names, sorted — a testing and
// documentation hook.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, e := range r.ents {
		if !seen[e.name] {
			seen[e.name] = true
			out = append(out, e.name)
		}
	}
	sort.Strings(out)
	return out
}
