package metrics

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestBucketIdx(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 0}, {1024, 0}, {1025, 1}, {2048, 1}, {2049, 2},
		{histBound(5), 5}, {histBound(5) + 1, 6},
		{histBound(histBuckets - 1), histBuckets - 1},
		{histBound(histBuckets-1) + 1, histBuckets},
	}
	for _, c := range cases {
		if got := bucketIdx(c.ns); got != c.want {
			t.Errorf("bucketIdx(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(3 * time.Microsecond)  // 3000ns -> bucket 2 (bound 4096)
	h.Observe(100 * time.Second)     // beyond the last bound: +Inf only
	h.Observe(-time.Second)          // clamped to 0 -> bucket 0
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.buckets[0].Load(); got != 2 {
		t.Errorf("bucket 0 = %d, want 2", got)
	}
	if got := h.buckets[2].Load(); got != 1 {
		t.Errorf("bucket 2 = %d, want 1", got)
	}
	var inBuckets uint64
	for i := range h.buckets {
		inBuckets += h.buckets[i].Load()
	}
	if inBuckets != 3 {
		t.Errorf("bucketed observations = %d, want 3 (one +Inf only)", inBuckets)
	}
	wantSum := (500*time.Nanosecond + 3*time.Microsecond + 100*time.Second).Seconds()
	if got := h.SumSeconds(); got < wantSum-1e-9 || got > wantSum+1e-9 {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}

// expositionLine matches every valid line of the text format: a HELP or
// TYPE header, or a sample with optional labels and a numeric value.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN))$`)

func checkExposition(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "operations", "op", "query")
	c2 := r.Counter("test_ops_total", "operations", "op", "add")
	g := r.Gauge("test_depth", "queue depth")
	h := r.Histogram("test_latency_seconds", "latency")
	r.GaugeFunc("test_live", "live items", func() float64 { return 42.5 })
	r.CounterFunc("test_fn_total", "from fn", func() uint64 { return 9 })

	c.Add(3)
	c2.Inc()
	g.Set(-2)
	h.Observe(2 * time.Millisecond)
	h.Observe(10 * time.Second)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	checkExposition(t, text)

	for _, want := range []string{
		"# TYPE test_ops_total counter",
		`test_ops_total{op="query"} 3`,
		`test_ops_total{op="add"} 1`,
		"test_depth -2",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="+Inf"} 2`,
		"test_latency_seconds_count 2",
		"test_live 42.5",
		"test_fn_total 9",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// One HELP/TYPE header per name even with two labeled children.
	if n := strings.Count(text, "# TYPE test_ops_total"); n != 1 {
		t.Errorf("TYPE header appears %d times, want 1", n)
	}
}

func TestHistogramBucketMonotonicity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mono_seconds", "latency")
	durs := []time.Duration{
		time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 7 * time.Millisecond, 90 * time.Millisecond,
		time.Second, 20 * time.Second,
	}
	for _, d := range durs {
		h.Observe(d)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	bucketLine := regexp.MustCompile(`^mono_seconds_bucket\{le="([^"]+)"\} ([0-9]+)$`)
	prev := uint64(0)
	prevBound := -1.0
	n := 0
	for _, line := range strings.Split(b.String(), "\n") {
		m := bucketLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		n++
		var bound float64
		if m[1] == "+Inf" {
			bound = 1e300
		} else {
			var err error
			bound, err = strconv.ParseFloat(m[1], 64)
			if err != nil {
				t.Fatalf("bad bound %q: %v", m[1], err)
			}
		}
		if bound <= prevBound {
			t.Errorf("bucket bounds not increasing: %v after %v", bound, prevBound)
		}
		cum, _ := strconv.ParseUint(m[2], 10, 64)
		if cum < prev {
			t.Errorf("cumulative count decreased: %d after %d", cum, prev)
		}
		prev, prevBound = cum, bound
	}
	if n != histBuckets+1 {
		t.Errorf("%d bucket lines, want %d", n, histBuckets+1)
	}
	if prev != uint64(len(durs)) {
		t.Errorf("+Inf bucket = %d, want %d", prev, len(durs))
	}
}

func TestRegistryReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("re_gauge", "first", func() float64 { return 1 })
	r.GaugeFunc("re_gauge", "second", func() float64 { return 2 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "re_gauge 2") {
		t.Errorf("replacement did not take: %s", text)
	}
	if strings.Contains(text, "re_gauge 1") {
		t.Errorf("stale collector still present: %s", text)
	}
	if n := len(regexp.MustCompile(`(?m)^re_gauge `).FindAllString(text, -1)); n != 1 {
		t.Errorf("%d re_gauge samples, want 1", n)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("esc_total", "escaping", "peer", "http://x\"y\\z\n")
	c.Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{peer="http://x\"y\\z\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped sample missing; got:\n%s", b.String())
	}
	checkExposition(t, b.String())
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "")
	for _, f := range []func(){
		func() { r.Counter("0bad", "") },
		func() { r.Counter("ok_total", "", "0bad", "v") },
		func() { r.Counter("ok_total", "", "odd") },
		func() { r.Gauge("ok_total", "") }, // one name, two types
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestObserveAllocs(t *testing.T) {
	var h Histogram
	var c Counter
	if n := testing.AllocsPerRun(100, func() {
		h.Observe(3 * time.Millisecond)
		c.Inc()
	}); n != 0 {
		t.Errorf("Observe/Inc allocate %v/op, want 0", n)
	}
}
