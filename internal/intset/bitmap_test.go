package intset

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBitmapBasics(t *testing.T) {
	var b Bitmap
	if b.Get(0) || b.Count() != 0 || b.Max() != -1 || b.Ints() != nil || b.Bytes() != nil {
		t.Fatal("fresh bitmap not empty")
	}
	for _, id := range []int{0, 1, 63, 64, 65, 1000} {
		b.Set(id)
		if !b.Get(id) {
			t.Fatalf("Get(%d) = false after Set", id)
		}
	}
	b.Set(64) // idempotent
	if got := b.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if got := b.Max(); got != 1000 {
		t.Fatalf("Max = %d, want 1000", got)
	}
	want := []int{0, 1, 63, 64, 65, 1000}
	got := b.Ints()
	if len(got) != len(want) {
		t.Fatalf("Ints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ints = %v, want %v", got, want)
		}
	}
	if b.Get(-1) || b.Get(2000) {
		t.Fatal("out-of-range ids reported as members")
	}
}

func TestBitmapNilReceiverReads(t *testing.T) {
	var b *Bitmap
	if b.Get(3) || b.Count() != 0 || b.Max() != -1 || b.Ints() != nil || b.Bytes() != nil {
		t.Fatal("nil bitmap reads not empty")
	}
}

func TestBitmapSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) did not panic")
		}
	}()
	new(Bitmap).Set(-1)
}

// TestBitmapBytesRoundTrip: Bytes/BitmapFromBytes are inverses and the
// encoding is canonical — independent of how far the word slice grew.
func TestBitmapBytesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		b := &Bitmap{}
		n := r.Intn(200)
		ids := make(map[int]bool, n)
		for i := 0; i < n; i++ {
			id := r.Intn(3000)
			b.Set(id)
			ids[id] = true
		}
		// Probe a high id then leave it unset in a sibling bitmap built
		// from the members: encodings must still agree (trailing zeros
		// trimmed).
		_ = b.Get(1 << 16)
		enc := b.Bytes()
		rt := BitmapFromBytes(enc)
		if rt.Count() != len(ids) {
			t.Fatalf("trial %d: round trip Count = %d, want %d", trial, rt.Count(), len(ids))
		}
		for id := range ids {
			if !rt.Get(id) {
				t.Fatalf("trial %d: round trip lost id %d", trial, id)
			}
		}
		if !bytes.Equal(enc, BitmapFromInts(b.Ints()).Bytes()) {
			t.Fatalf("trial %d: encoding not canonical", trial)
		}
	}
}

func TestBitmapFromInts(t *testing.T) {
	b := BitmapFromInts([]int{5, 2, 900})
	if b.Count() != 3 || !b.Get(2) || !b.Get(5) || !b.Get(900) {
		t.Fatalf("BitmapFromInts wrong members: %v", b.Ints())
	}
	if BitmapFromInts(nil).Count() != 0 {
		t.Fatal("BitmapFromInts(nil) not empty")
	}
}
