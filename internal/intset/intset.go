// Package intset provides primitives on sets represented as strictly
// increasing slices of uint32 tokens.
//
// Every set similarity join in this repository ultimately reduces to
// computing (or bounding) intersection sizes of such sets, so these
// functions are the innermost loops of the whole system. They are written
// for predictable branch behaviour and zero allocation.
package intset

import (
	"math"
	"sort"
)

// IsSet reports whether s is strictly increasing (sorted, duplicate-free).
func IsSet(s []uint32) bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// Normalize sorts s and removes duplicates in place, returning the
// normalized slice. The input slice's backing array is reused.
func Normalize(s []uint32) []uint32 {
	if IsSet(s) {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Contains reports whether set s contains token x, by binary search.
func Contains(s []uint32, x uint32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// Equal reports whether a and b are identical sets.
func Equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IntersectSize returns |a ∩ b| using a linear merge, switching to a
// galloping search when the sizes are very unbalanced.
func IntersectSize(a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	// Galloping pays off when one list is much longer than the other.
	if len(b) >= 32*len(a) {
		return gallopIntersectSize(a, b)
	}
	return mergeIntersectSize(a, b)
}

func mergeIntersectSize(a, b []uint32) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i], b[j]
		if ai == bj {
			n++
			i++
			j++
		} else if ai < bj {
			i++
		} else {
			j++
		}
	}
	return n
}

// gallopIntersectSize intersects a short list a against a long list b by
// exponential search.
func gallopIntersectSize(a, b []uint32) int {
	n := 0
	lo := 0
	for _, x := range a {
		// Exponential probe from lo.
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < x {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		// Binary search in (lo-1, hi].
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if b[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(b) && b[lo] == x {
			n++
			lo++
		}
		if lo >= len(b) {
			break
		}
	}
	return n
}

// IntersectSizeAtLeast reports whether |a ∩ b| >= required, terminating
// early as soon as the bound can no longer be reached (or as soon as it has
// been reached). It returns the exact intersection size if it finished the
// scan, or a value >= required / < required suitable only for threshold
// comparison otherwise. The boolean result is the authoritative answer.
func IntersectSizeAtLeast(a, b []uint32, required int) (int, bool) {
	if required <= 0 {
		return 0, true
	}
	if len(a) < required || len(b) < required {
		return 0, false
	}
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Remaining elements cannot reach the bound: bail out.
		if n+min(len(a)-i, len(b)-j) < required {
			return n, false
		}
		ai, bj := a[i], b[j]
		if ai == bj {
			n++
			if n >= required {
				return n, true
			}
			i++
			j++
		} else if ai < bj {
			i++
		} else {
			j++
		}
	}
	return n, n >= required
}

// UnionSize returns |a ∪ b|.
func UnionSize(a, b []uint32) int {
	return len(a) + len(b) - IntersectSize(a, b)
}

// Jaccard returns |a ∩ b| / |a ∪ b|, with Jaccard(∅, ∅) defined as 0.
func Jaccard(a, b []uint32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	in := IntersectSize(a, b)
	return float64(in) / float64(len(a)+len(b)-in)
}

// JaccardAtLeast reports whether J(a, b) >= lambda and, when it is,
// returns the exact similarity (the same value Jaccard would). Pairs that
// cannot reach lambda are rejected early — first by the size bound, then
// mid-merge as soon as the remaining elements cannot close the gap — so
// the common below-threshold candidate costs a fraction of a full merge.
//
// The accept/reject decision is bit-identical to
// `Jaccard(a, b) >= lambda`: the cutoff intersection size is found by
// binary search over the very float comparison that check performs
// (float division is monotone in the intersection size), never by a
// rearranged inequality that could round differently at the boundary.
func JaccardAtLeast(a, b []uint32, lambda float64) (float64, bool) {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 0, 0 >= lambda
	}
	n := la + lb
	maxC := min(la, lb)
	if float64(maxC)/float64(n-maxC) < lambda {
		return 0, false
	}
	// Smallest intersection size whose similarity passes lambda.
	lo, hi := 0, maxC
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if float64(mid)/float64(n-mid) < lambda {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	cReq := lo
	c := 0
	i, j := 0, 0
	for i < la && j < lb {
		if c+min(la-i, lb-j) < cReq {
			return 0, false
		}
		ai, bj := a[i], b[j]
		if ai == bj {
			c++
			i++
			j++
		} else if ai < bj {
			i++
		} else {
			j++
		}
	}
	if c < cReq {
		return 0, false
	}
	return float64(c) / float64(n-c), true
}

// Containment returns |q ∩ y| / |q|, the fraction of q's tokens present
// in y, with C(∅, y) defined as 0. Unlike Jaccard it is asymmetric: it
// measures how much of the query the candidate covers, regardless of how
// much larger the candidate is — the domain-search semantics of LSH
// Ensemble (Zhu et al., VLDB 2016).
func Containment(q, y []uint32) float64 {
	if len(q) == 0 {
		return 0
	}
	return float64(IntersectSize(q, y)) / float64(len(q))
}

// ContainmentAtLeast reports whether C(q, y) = |q ∩ y| / |q| >= t and,
// when it is, returns the exact containment (the same value Containment
// would). Pairs that cannot reach t are rejected early — first by the
// size bound, then mid-merge as soon as the remaining elements cannot
// close the gap — mirroring JaccardAtLeast.
//
// The accept/reject decision is bit-identical to
// `Containment(q, y) >= t`: the cutoff intersection size is found by
// binary search over the very float comparison that check performs
// (the denominator |q| is fixed, so the division is monotone in the
// intersection size), never by a rearranged inequality that could round
// differently at the boundary.
func ContainmentAtLeast(q, y []uint32, t float64) (float64, bool) {
	lq, ly := len(q), len(y)
	if lq == 0 {
		return 0, 0 >= t
	}
	maxC := min(lq, ly)
	if float64(maxC)/float64(lq) < t {
		return 0, false
	}
	// Smallest intersection size whose containment passes t.
	lo, hi := 0, maxC
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if float64(mid)/float64(lq) < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	cReq := lo
	c := 0
	i, j := 0, 0
	for i < lq && j < ly {
		if c+min(lq-i, ly-j) < cReq {
			return 0, false
		}
		qi, yj := q[i], y[j]
		if qi == yj {
			c++
			i++
			j++
		} else if qi < yj {
			i++
		} else {
			j++
		}
	}
	if c < cReq {
		return 0, false
	}
	return float64(c) / float64(lq), true
}

// BraunBlanquet returns |a ∩ b| / max(|a|, |b|), with BB(∅, ∅) = 0.
func BraunBlanquet(a, b []uint32) float64 {
	m := max(len(a), len(b))
	if m == 0 {
		return 0
	}
	return float64(IntersectSize(a, b)) / float64(m)
}

// CosineSet returns the cosine similarity of two sets viewed as binary
// vectors: |a ∩ b| / sqrt(|a| · |b|).
func CosineSet(a, b []uint32) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return float64(IntersectSize(a, b)) / math.Sqrt(float64(len(a))*float64(len(b)))
}

// JaccardOverlapBound returns the minimum intersection size two sets of the
// given sizes must have so that their Jaccard similarity can reach lambda:
// ceil(lambda/(1+lambda) * (la+lb)).
func JaccardOverlapBound(la, lb int, lambda float64) int {
	t := lambda / (1 + lambda) * float64(la+lb)
	o := int(t)
	if float64(o) < t {
		o++
	}
	if o < 1 {
		o = 1
	}
	return o
}

// JaccardFromOverlap returns the Jaccard similarity implied by an exact
// intersection size.
func JaccardFromOverlap(la, lb, inter int) float64 {
	u := la + lb - inter
	if u == 0 {
		return 0
	}
	return float64(inter) / float64(u)
}
