package intset

import (
	"math/rand"
	"testing"
)

func TestContainmentBasics(t *testing.T) {
	q := []uint32{1, 2, 3, 4}
	y := []uint32{2, 3, 4, 5, 6, 7}
	if got := Containment(q, y); got != 0.75 {
		t.Fatalf("Containment = %v, want 0.75", got)
	}
	// Asymmetric: all of y's overlap with q covers 3/6 of y... but we
	// measure coverage of the first argument.
	if got := Containment(y, q); got != 0.5 {
		t.Fatalf("Containment = %v, want 0.5", got)
	}
	if got := Containment(nil, y); got != 0 {
		t.Fatalf("Containment(∅, y) = %v, want 0", got)
	}
	if got := Containment(q, nil); got != 0 {
		t.Fatalf("Containment(q, ∅) = %v, want 0", got)
	}
}

// TestContainmentAtLeastMatchesReference drives random pairs and random
// thresholds through ContainmentAtLeast and checks the accept/reject
// decision and the returned value are bit-identical to the float
// reference `Containment(q, y) >= t`.
func TestContainmentAtLeastMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20000; i++ {
		q := randomSet(rng, 24, 60)
		y := randomSet(rng, 24, 60)
		var th float64
		switch rng.Intn(4) {
		case 0:
			th = rng.Float64()
		case 1:
			// Exact boundary values: c/|q| for a random feasible c, the
			// case where a rearranged inequality would round differently.
			if len(q) > 0 {
				th = float64(rng.Intn(len(q)+1)) / float64(len(q))
			}
		case 2:
			th = Containment(q, y)
		default:
			th = 1
		}
		wantC := Containment(q, y)
		wantOK := wantC >= th
		gotC, gotOK := ContainmentAtLeast(q, y, th)
		if gotOK != wantOK {
			t.Fatalf("ContainmentAtLeast(%v, %v, %v) ok=%v, reference %v (C=%v)",
				q, y, th, gotOK, wantOK, wantC)
		}
		if gotOK && gotC != wantC {
			t.Fatalf("ContainmentAtLeast(%v, %v, %v) = %v, want exact %v",
				q, y, th, gotC, wantC)
		}
	}
}

func TestContainmentAtLeastEmptyQuery(t *testing.T) {
	y := []uint32{1, 2, 3}
	if _, ok := ContainmentAtLeast(nil, y, 0.5); ok {
		t.Fatal("empty query must not reach a positive threshold")
	}
	if _, ok := ContainmentAtLeast(nil, y, 0); !ok {
		t.Fatal("zero threshold accepts the empty query (0 >= 0)")
	}
}
