package intset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refIntersectSize is the obvious map-based reference implementation.
func refIntersectSize(a, b []uint32) int {
	m := make(map[uint32]bool, len(a))
	for _, x := range a {
		m[x] = true
	}
	n := 0
	for _, x := range b {
		if m[x] {
			n++
		}
	}
	return n
}

func randomSet(rng *rand.Rand, maxLen, universe int) []uint32 {
	n := rng.Intn(maxLen + 1)
	s := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, uint32(rng.Intn(universe)))
	}
	return Normalize(s)
}

func TestIsSet(t *testing.T) {
	cases := []struct {
		in   []uint32
		want bool
	}{
		{nil, true},
		{[]uint32{1}, true},
		{[]uint32{1, 2, 3}, true},
		{[]uint32{1, 1}, false},
		{[]uint32{2, 1}, false},
		{[]uint32{0, 5, 5, 9}, false},
	}
	for _, c := range cases {
		if got := IsSet(c.in); got != c.want {
			t.Errorf("IsSet(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]uint32{5, 1, 5, 3, 1})
	want := []uint32{1, 3, 5}
	if !Equal(got, want) {
		t.Errorf("Normalize = %v, want %v", got, want)
	}
	if !IsSet(got) {
		t.Errorf("Normalize output not a set: %v", got)
	}
	// Already-normalized input is returned unchanged.
	in := []uint32{2, 4, 6}
	if out := Normalize(in); &out[0] != &in[0] || !Equal(out, in) {
		t.Errorf("Normalize of sorted input changed it: %v", out)
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		s := Normalize(append([]uint32(nil), raw...))
		if !IsSet(s) {
			return false
		}
		// Every input element is present, and nothing else.
		for _, x := range raw {
			if !Contains(s, x) {
				return false
			}
		}
		for _, x := range s {
			found := false
			for _, y := range raw {
				if x == y {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	s := []uint32{2, 5, 9, 100, 4000}
	for _, x := range s {
		if !Contains(s, x) {
			t.Errorf("Contains(%v, %d) = false, want true", s, x)
		}
	}
	for _, x := range []uint32{0, 1, 3, 10, 99, 101, 5000} {
		if Contains(s, x) {
			t.Errorf("Contains(%v, %d) = true, want false", s, x)
		}
	}
	if Contains(nil, 1) {
		t.Error("Contains(nil, 1) = true")
	}
}

func TestIntersectSizeAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := randomSet(rng, 60, 120)
		b := randomSet(rng, 60, 120)
		want := refIntersectSize(a, b)
		if got := IntersectSize(a, b); got != want {
			t.Fatalf("IntersectSize(%v, %v) = %d, want %d", a, b, got, want)
		}
		if got := IntersectSize(b, a); got != want {
			t.Fatalf("IntersectSize not symmetric on %v, %v", a, b)
		}
	}
}

func TestGallopIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		small := randomSet(rng, 5, 100000)
		big := randomSet(rng, 4000, 100000)
		want := refIntersectSize(small, big)
		if got := IntersectSize(small, big); got != want {
			t.Fatalf("galloping IntersectSize = %d, want %d", got, want)
		}
	}
}

func TestIntersectSizeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a := randomSet(rng, 40, 60)
		b := randomSet(rng, 40, 60)
		exact := refIntersectSize(a, b)
		for req := 0; req <= 12; req++ {
			_, ok := IntersectSizeAtLeast(a, b, req)
			if want := exact >= req; ok != want {
				t.Fatalf("IntersectSizeAtLeast(|∩|=%d, req=%d) = %v, want %v",
					exact, req, ok, want)
			}
		}
	}
}

func TestIntersectBoundNeverExceedsMin(t *testing.T) {
	f := func(rawA, rawB []uint32) bool {
		a := Normalize(append([]uint32(nil), rawA...))
		b := Normalize(append([]uint32(nil), rawB...))
		in := IntersectSize(a, b)
		return in <= len(a) && in <= len(b) && in >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want float64
	}{
		{nil, nil, 0},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, 1},
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, 0.5},
		{[]uint32{1, 2}, []uint32{3, 4}, 0},
		{[]uint32{1, 2, 3}, nil, 0},
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); got != c.want {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		a := randomSet(rng, 30, 50)
		b := randomSet(rng, 30, 50)
		ab, ba := Jaccard(a, b), Jaccard(b, a)
		if ab != ba {
			t.Fatalf("Jaccard not symmetric: %v vs %v", ab, ba)
		}
		if ab < 0 || ab > 1 {
			t.Fatalf("Jaccard out of range: %v", ab)
		}
		if len(a) > 0 && Jaccard(a, a) != 1 {
			t.Fatalf("Jaccard(a, a) != 1 for %v", a)
		}
	}
}

func TestSimilarityMeasureOrdering(t *testing.T) {
	// For any pair, Jaccard <= CosineSet <= BraunBlanquet is false in
	// general; but Jaccard <= Cosine and BraunBlanquet <= Cosine hold:
	// J = i/(a+b-i) <= i/sqrt(ab) (AM-GM on union), BB = i/max <= i/sqrt(ab).
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		a := randomSet(rng, 30, 40)
		b := randomSet(rng, 30, 40)
		if len(a) == 0 || len(b) == 0 {
			continue
		}
		j, c, bb := Jaccard(a, b), CosineSet(a, b), BraunBlanquet(a, b)
		const eps = 1e-12
		if j > c+eps {
			t.Fatalf("J=%v > cosine=%v for %v %v", j, c, a, b)
		}
		if bb > c+eps {
			t.Fatalf("BB=%v > cosine=%v for %v %v", bb, c, a, b)
		}
	}
}

func TestJaccardOverlapBound(t *testing.T) {
	// The bound must be tight: overlap >= bound iff J can be >= lambda.
	for _, lambda := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		for la := 1; la <= 30; la++ {
			for lb := 1; lb <= 30; lb++ {
				bound := JaccardOverlapBound(la, lb, lambda)
				maxInter := min(la, lb)
				for o := 0; o <= maxInter; o++ {
					j := JaccardFromOverlap(la, lb, o)
					if j >= lambda && o < bound {
						t.Fatalf("bound too high: la=%d lb=%d o=%d j=%v bound=%d",
							la, lb, o, j, bound)
					}
				}
				if bound <= maxInter {
					// At exactly the bound the similarity must reach lambda.
					if j := JaccardFromOverlap(la, lb, bound); j < lambda-1e-9 {
						t.Fatalf("bound too low: la=%d lb=%d bound=%d j=%v",
							la, lb, bound, j)
					}
				}
			}
		}
	}
}

func TestUnionSize(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		a := randomSet(rng, 30, 50)
		b := randomSet(rng, 30, 50)
		union := make(map[uint32]bool)
		for _, x := range a {
			union[x] = true
		}
		for _, x := range b {
			union[x] = true
		}
		if got := UnionSize(a, b); got != len(union) {
			t.Fatalf("UnionSize = %d, want %d", got, len(union))
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(nil, nil) || !Equal([]uint32{1}, []uint32{1}) {
		t.Error("Equal false negative")
	}
	if Equal([]uint32{1}, []uint32{2}) || Equal([]uint32{1}, []uint32{1, 2}) {
		t.Error("Equal false positive")
	}
}

func BenchmarkIntersectMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randomSet(rng, 200, 10000)
	y := randomSet(rng, 200, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectSize(x, y)
	}
}

func BenchmarkIntersectGallop(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := randomSet(rng, 8, 1000000)
	y := randomSet(rng, 20000, 1000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectSize(x, y)
	}
}

func TestJaccardAtLeastAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	lambdas := []float64{0.1, 0.3, 0.5, 0.6, 0.75, 0.9, 0.99}
	for i := 0; i < 3000; i++ {
		// Small universes force overlap, including exact-boundary pairs.
		a := randomSet(rng, 40, 30)
		b := randomSet(rng, 40, 30)
		want := Jaccard(a, b)
		for _, lambda := range lambdas {
			sim, ok := JaccardAtLeast(a, b, lambda)
			if ok != (want >= lambda) {
				t.Fatalf("JaccardAtLeast(%v, %v, %v) ok=%v, Jaccard=%v", a, b, lambda, ok, want)
			}
			if ok && sim != want {
				t.Fatalf("JaccardAtLeast(%v, %v, %v) sim=%v, Jaccard=%v", a, b, lambda, sim, want)
			}
		}
	}
	// Empty-set edges mirror Jaccard's ∅ conventions.
	if sim, ok := JaccardAtLeast(nil, nil, 0.5); ok || sim != 0 {
		t.Errorf("JaccardAtLeast(∅, ∅, 0.5) = %v, %v", sim, ok)
	}
	if _, ok := JaccardAtLeast(nil, []uint32{1}, 0.5); ok {
		t.Error("JaccardAtLeast(∅, {1}, 0.5) accepted")
	}
	if sim, ok := JaccardAtLeast([]uint32{1, 2}, []uint32{1, 2}, 1); !ok || sim != 1 {
		t.Errorf("JaccardAtLeast(identical, 1) = %v, %v", sim, ok)
	}
}
