package intset

import "math/bits"

// Bitmap is a dense bit set over a bounded id space [0, n). The sharded
// serving layer uses it for reclaimed-id bookkeeping: the set of ids whose
// physical entries compaction or sealing dropped grows with lifetime
// churn, but as a bitmap it is bounded by ids ever assigned — total/8
// bytes of RAM and manifest, and O(total/64) scans — instead of by delete
// volume.
//
// Read methods (Get, Count, Max, Ints, Bytes) are nil-receiver safe and
// treat a nil Bitmap as empty, so callers can keep the "nil until first
// use" discipline the tombstone map established.
type Bitmap struct {
	words []uint64
}

// Set marks id as a member, growing the bitmap as needed. Negative ids
// panic: the id space starts at zero by construction.
func (b *Bitmap) Set(id int) {
	if id < 0 {
		panic("intset: negative Bitmap id")
	}
	w := id >> 6
	for w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << (uint(id) & 63)
}

// Get reports whether id is a member. Out-of-range (including negative)
// ids are simply not members.
func (b *Bitmap) Get(id int) bool {
	if b == nil || id < 0 {
		return false
	}
	w := id >> 6
	return w < len(b.words) && b.words[w]&(1<<(uint(id)&63)) != 0
}

// Count returns the number of members.
func (b *Bitmap) Count() int {
	if b == nil {
		return 0
	}
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Max returns the largest member, or -1 when the bitmap is empty.
func (b *Bitmap) Max() int {
	if b == nil {
		return -1
	}
	for w := len(b.words) - 1; w >= 0; w-- {
		if b.words[w] != 0 {
			return w<<6 + 63 - bits.LeadingZeros64(b.words[w])
		}
	}
	return -1
}

// Ints returns the members in ascending order.
func (b *Bitmap) Ints() []int {
	if b == nil {
		return nil
	}
	var out []int
	for wi, w := range b.words {
		for w != 0 {
			out = append(out, wi<<6+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// Bytes returns the canonical serialized form: bit i of the byte stream
// (byte i/8, bit i%8) is membership of id i, with trailing zero bytes
// trimmed so the encoding of a set is unique regardless of growth
// history. An empty (or nil) bitmap encodes as nil.
func (b *Bitmap) Bytes() []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, 0, len(b.words)*8)
	for _, w := range b.words {
		for s := 0; s < 64; s += 8 {
			out = append(out, byte(w>>uint(s)))
		}
	}
	for len(out) > 0 && out[len(out)-1] == 0 {
		out = out[:len(out)-1]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// BitmapFromBytes is the inverse of Bytes. Every byte string is a valid
// bitmap; nil yields an empty bitmap.
func BitmapFromBytes(data []byte) *Bitmap {
	b := &Bitmap{words: make([]uint64, (len(data)+7)/8)}
	for i, by := range data {
		b.words[i>>3] |= uint64(by) << (uint(i&7) * 8)
	}
	return b
}

// BitmapFromInts builds a bitmap holding the given ids (the legacy
// sorted-list manifest form). Negative ids panic, as in Set.
func BitmapFromInts(ids []int) *Bitmap {
	b := &Bitmap{}
	for _, id := range ids {
		b.Set(id)
	}
	return b
}
