package intset

import "testing"

// FuzzIntersect cross-checks the optimized intersection paths against the
// map-based reference on arbitrary byte-derived sets.
func FuzzIntersect(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{255, 255, 1}, []byte{1})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a := fromBytes(rawA)
		b := fromBytes(rawB)
		want := refIntersectSize(a, b)
		if got := IntersectSize(a, b); got != want {
			t.Fatalf("IntersectSize = %d, want %d (a=%v b=%v)", got, want, a, b)
		}
		// Early-termination variant must agree for every bound.
		for req := 0; req <= want+2; req++ {
			if _, ok := IntersectSizeAtLeast(a, b, req); ok != (want >= req) {
				t.Fatalf("IntersectSizeAtLeast(req=%d) = %v, |∩|=%d", req, ok, want)
			}
		}
		// Jaccard stays in range and is symmetric.
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		if j1 != j2 || j1 < 0 || j1 > 1 {
			t.Fatalf("Jaccard broken: %v vs %v", j1, j2)
		}
	})
}

// fromBytes widens bytes (with position salt so duplicates spread) and
// normalizes into a set.
func fromBytes(raw []byte) []uint32 {
	s := make([]uint32, 0, len(raw))
	for i, v := range raw {
		s = append(s, uint32(v)+uint32(i%7)*64)
	}
	return Normalize(s)
}
