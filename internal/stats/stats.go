// Package stats computes recall and precision of a join result against a
// ground-truth result, the quality measures used throughout the paper's
// evaluation (approximate methods are run to >= 90% recall at 100%
// precision).
package stats

import (
	"sort"

	"repro/internal/verify"
)

// Recall returns |got ∩ truth| / |truth|; 1 if truth is empty.
func Recall(got, truth []verify.Pair) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[uint64]struct{}, len(got))
	for _, p := range got {
		set[p.Key()] = struct{}{}
	}
	hit := 0
	for _, p := range truth {
		if _, ok := set[p.Key()]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// Precision returns |got ∩ truth| / |got|; 1 if got is empty.
func Precision(got, truth []verify.Pair) float64 {
	if len(got) == 0 {
		return 1
	}
	set := make(map[uint64]struct{}, len(truth))
	for _, p := range truth {
		set[p.Key()] = struct{}{}
	}
	hit := 0
	for _, p := range got {
		if _, ok := set[p.Key()]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(got))
}

// SortPairs orders pairs lexicographically, for deterministic output and
// comparison in tests.
func SortPairs(pairs []verify.Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
}

// EqualPairSets reports whether two results contain exactly the same pairs.
func EqualPairSets(a, b []verify.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[uint64]struct{}, len(a))
	for _, p := range a {
		set[p.Key()] = struct{}{}
	}
	for _, p := range b {
		if _, ok := set[p.Key()]; !ok {
			return false
		}
	}
	return true
}

// Missing returns the pairs of truth absent from got (the false negatives).
func Missing(got, truth []verify.Pair) []verify.Pair {
	set := make(map[uint64]struct{}, len(got))
	for _, p := range got {
		set[p.Key()] = struct{}{}
	}
	var out []verify.Pair
	for _, p := range truth {
		if _, ok := set[p.Key()]; !ok {
			out = append(out, p)
		}
	}
	return out
}
