package stats

import (
	"testing"

	"repro/internal/verify"
)

func pairs(ps ...[2]uint32) []verify.Pair {
	out := make([]verify.Pair, len(ps))
	for i, p := range ps {
		out[i] = verify.MakePair(p[0], p[1])
	}
	return out
}

func TestRecall(t *testing.T) {
	truth := pairs([2]uint32{1, 2}, [2]uint32{3, 4}, [2]uint32{5, 6})
	got := pairs([2]uint32{1, 2}, [2]uint32{5, 6}, [2]uint32{7, 8})
	if r := Recall(got, truth); r != 2.0/3.0 {
		t.Errorf("Recall = %v, want 2/3", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Errorf("Recall(nil, nil) = %v, want 1", r)
	}
	if r := Recall(nil, truth); r != 0 {
		t.Errorf("Recall(nil, truth) = %v, want 0", r)
	}
	if r := Recall(truth, truth); r != 1 {
		t.Errorf("Recall(x, x) = %v, want 1", r)
	}
}

func TestPrecision(t *testing.T) {
	truth := pairs([2]uint32{1, 2}, [2]uint32{3, 4})
	got := pairs([2]uint32{1, 2}, [2]uint32{9, 10})
	if p := Precision(got, truth); p != 0.5 {
		t.Errorf("Precision = %v, want 0.5", p)
	}
	if p := Precision(nil, truth); p != 1 {
		t.Errorf("Precision(empty) = %v, want 1", p)
	}
}

func TestSortPairs(t *testing.T) {
	ps := pairs([2]uint32{3, 4}, [2]uint32{1, 5}, [2]uint32{1, 2})
	SortPairs(ps)
	want := pairs([2]uint32{1, 2}, [2]uint32{1, 5}, [2]uint32{3, 4})
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("SortPairs = %v", ps)
		}
	}
}

func TestEqualPairSets(t *testing.T) {
	a := pairs([2]uint32{1, 2}, [2]uint32{3, 4})
	b := pairs([2]uint32{3, 4}, [2]uint32{1, 2})
	if !EqualPairSets(a, b) {
		t.Error("order should not matter")
	}
	c := pairs([2]uint32{1, 2}, [2]uint32{3, 5})
	if EqualPairSets(a, c) {
		t.Error("different sets compared equal")
	}
	if EqualPairSets(a, a[:1]) {
		t.Error("different lengths compared equal")
	}
}

func TestMissing(t *testing.T) {
	truth := pairs([2]uint32{1, 2}, [2]uint32{3, 4}, [2]uint32{5, 6})
	got := pairs([2]uint32{3, 4})
	m := Missing(got, truth)
	if len(m) != 2 {
		t.Fatalf("Missing = %v", m)
	}
}
