package bench

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"

	"repro/internal/shard"
)

// MetricsScrape is the observability check recorded alongside the serving
// benchmark rows: the /metrics endpoint of an instrumented, distributed,
// churned index must serve valid Prometheus text exposition covering the
// full metric catalog. CI fails the bench job when OK is false, so a
// regression in the exposition format or a dropped series shows up on the
// PR that caused it.
type MetricsScrape struct {
	OK bool `json:"ok"`
	// Series is the number of sample lines scraped (not counting HELP/TYPE
	// headers).
	Series int `json:"series"`
	// Error says what failed when OK is false.
	Error string `json:"error,omitempty"`
}

// expositionLine matches one valid line of the Prometheus text format.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN))$`)

// scrapeRequired are the series families every instrumented index must
// expose after serving mixed traffic on a distributed topology.
var scrapeRequired = []string{
	"cps_query_seconds",
	"cps_mutation_seconds",
	"cps_candidates_total",
	"cps_verified_total",
	"cps_rejected_total",
	"cps_compaction_seconds",
	"cps_cache_hits_total",
	"cps_exec_tasks_total",
	"cps_index_sets",
	"cps_peer_rpc_seconds",
	"cps_peer_healthy",
}

// CheckMetricsExposition builds a small sharded index over the workload,
// distributes its shards to two in-process peers, drives every mutating
// and querying operation once, and scrapes GET /metrics like a Prometheus
// server would — validating status, content type, every line's syntax and
// the presence of the whole metric catalog (including the per-peer
// series).
func CheckMetricsExposition(w Workload, cfg Config) MetricsScrape {
	const lambda = 0.5
	ix := shard.Build(w.Sets, lambda, &shard.Options{Shards: 2, Seed: cfg.Seed, MergeThreshold: 64})
	ix.EnableCache(64)

	peerA := httptest.NewServer(shard.NewServer(shard.Build(nil, lambda, &shard.Options{})))
	peerB := httptest.NewServer(shard.NewServer(shard.Build(nil, lambda, &shard.Options{})))
	defer peerA.Close()
	defer peerB.Close()
	if err := ix.Distribute([]string{peerA.URL, peerB.URL}, &shard.DistributeOptions{Replicas: 2, KeepLocal: true}); err != nil {
		return MetricsScrape{Error: fmt.Sprintf("distribute: %v", err)}
	}

	// Mixed traffic so every instrument has observations: queries (twice,
	// so the cache answers once), appends past the merge threshold,
	// deletes and one compaction pass.
	probes := w.Sets
	if len(probes) > 50 {
		probes = probes[:50]
	}
	for i := 0; i < 2; i++ {
		if _, err := ix.QueryBatchErr(probes); err != nil {
			return MetricsScrape{Error: fmt.Sprintf("query batch: %v", err)}
		}
	}
	ids := ix.Add(w.Sets[:min(len(w.Sets), 128)])
	ix.DeleteBatch(ids[:min(len(ids), 8)])
	ix.Compact()

	srv := httptest.NewServer(shard.NewServer(ix))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		return MetricsScrape{Error: fmt.Sprintf("scrape: %v", err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return MetricsScrape{Error: fmt.Sprintf("scrape status %d", resp.StatusCode)}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return MetricsScrape{Error: fmt.Sprintf("scrape content type %q", ct)}
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return MetricsScrape{Error: fmt.Sprintf("scrape body: %v", err)}
	}

	text := string(body)
	out := MetricsScrape{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			out.Error = fmt.Sprintf("invalid exposition line: %q", line)
			return out
		}
		if !strings.HasPrefix(line, "#") {
			out.Series++
		}
	}
	for _, name := range scrapeRequired {
		if !strings.Contains(text, name) {
			out.Error = fmt.Sprintf("series %s missing from scrape", name)
			return out
		}
	}
	out.OK = true
	return out
}
