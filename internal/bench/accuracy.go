package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"

	"repro/internal/cpindex"
	"repro/internal/intset"
	"repro/internal/shard"
)

// AccuracyRow is one containment-accuracy measurement: the sharded
// index's containment answers for one (workload, threshold, topology)
// cell scored against brute-force ground truth. Precision is structurally
// 1.0 — every candidate is exact-verified with intset.ContainmentAtLeast
// before it is returned — so the row is really a recall measurement of
// the LSH Ensemble-style candidate structure, plus the determinism flag:
// answers must be byte-identical across shard counts and partition
// schemes (the containment signer is seeded globally, not per shard).
type AccuracyRow struct {
	Dataset   string  `json:"dataset"`
	Threshold float64 `json:"threshold"`
	Shards    int     `json:"shards"`
	Partition string  `json:"partition"`
	// Queries is the probe count; TruthPairs and Returned count
	// (query, set) pairs in the brute-force truth and the index answer.
	Queries    int     `json:"queries"`
	TruthPairs int     `json:"truth_pairs"`
	Returned   int     `json:"returned"`
	Precision  float64 `json:"precision"`
	Recall     float64 `json:"recall"`
	F1         float64 `json:"f1"`
	// Identical reports whether this cell's answers are byte-identical to
	// the reference cell's (1 shard, contiguous partition). One flag name
	// across every bench artifact keeps the CI gate uniform.
	Identical bool `json:"identical_to_sequential"`
}

// DefaultRecallFloor is the containment recall CI gates on. The measured
// recall at smoke scale sits near 1.0 (subset probes always contain
// their source set, and the default bands-per-signature budget is
// generous); the floor leaves room for workload drift without letting a
// broken candidate structure pass.
const DefaultRecallFloor = 0.8

// AccuracyThresholds is the containment-threshold grid of the accuracy
// harness.
var AccuracyThresholds = []float64{0.5, 0.7, 0.9}

// RunAccuracyBench measures containment search accuracy: probes are
// random subsets of indexed sets (so every probe has at least one
// perfect-containment answer), ground truth is a brute-force
// ContainmentAtLeast sweep, and the index answers are scored per
// (workload, threshold) across a topology grid of shard counts ×
// partition schemes. The first cell (1 shard, contiguous) is the
// reference every other cell must answer byte-identically to.
func RunAccuracyBench(workloads []Workload, thresholds []float64, cfg Config, progress io.Writer) []AccuracyRow {
	const lambda = 0.5
	var rows []AccuracyRow
	for _, w := range workloads {
		queries := accuracyProbes(w, cfg.Seed)
		truth := make([][]map[int]bool, len(thresholds))
		for ti, t := range thresholds {
			truth[ti] = bruteForceContainment(w.Sets, queries, t)
		}

		type cell struct {
			shards    int
			partition shard.Partition
		}
		grid := []cell{
			{1, shard.PartitionContiguous},
			{4, shard.PartitionContiguous},
			{4, shard.PartitionHash},
		}
		// reference answers per threshold, from the first (sequential-like)
		// cell, for the byte-identical check.
		var ref [][][]cpindex.Match
		for ci, c := range grid {
			ix := shard.Build(w.Sets, lambda, &shard.Options{
				Shards:    c.shards,
				Partition: c.partition,
				Seed:      cfg.Seed,
				Workers:   cfg.Workers,
			})
			answers := make([][][]cpindex.Match, len(thresholds))
			for ti, t := range thresholds {
				answers[ti] = make([][]cpindex.Match, len(queries))
				for qi, q := range queries {
					ms, err := ix.QueryContain(q, t)
					if err != nil {
						panic(fmt.Sprintf("bench: all-local containment query failed: %v", err))
					}
					answers[ti][qi] = ms
				}
			}
			if ci == 0 {
				ref = answers
			}
			for ti, t := range thresholds {
				row := scoreContainment(w.Name, t, c.shards, c.partition.String(),
					answers[ti], truth[ti])
				row.Identical = equalAnswerSets(answers[ti], ref[ti])
				rows = append(rows, row)
				if progress != nil {
					fmt.Fprintf(progress,
						"accuracy %-12s t=%.2f shards=%d part=%-10s truth=%-5d returned=%-5d P=%.3f R=%.3f F1=%.3f identical=%v\n",
						row.Dataset, row.Threshold, row.Shards, row.Partition,
						row.TruthPairs, row.Returned, row.Precision, row.Recall, row.F1, row.Identical)
				}
			}
		}
	}
	return rows
}

// accuracyProbes derives the containment probes: up to 200 indexed sets,
// each thinned to a random ~60% subset (never empty), so a probe's
// source set contains it fully and near neighbors contain most of it.
// Deterministic in the seed; a subset of a sorted set stays sorted.
func accuracyProbes(w Workload, seed uint64) [][]uint32 {
	rng := rand.New(rand.NewSource(int64(seed)*31 + int64(len(w.Sets))))
	n := len(w.Sets)
	count := 200
	if n < count {
		count = n
	}
	probes := make([][]uint32, 0, count)
	for i := 0; i < count; i++ {
		src := w.Sets[i*n/count]
		var q []uint32
		for _, tok := range src {
			if rng.Float64() < 0.6 {
				q = append(q, tok)
			}
		}
		if len(q) == 0 {
			q = append(q, src[rng.Intn(len(src))])
		}
		probes = append(probes, q)
	}
	return probes
}

// bruteForceContainment computes ground truth: for each probe, the id set
// of every indexed set containing at least t of it.
func bruteForceContainment(sets [][]uint32, queries [][]uint32, t float64) []map[int]bool {
	out := make([]map[int]bool, len(queries))
	for qi, q := range queries {
		hits := make(map[int]bool)
		for id, y := range sets {
			if _, ok := intset.ContainmentAtLeast(q, y, t); ok {
				hits[id] = true
			}
		}
		out[qi] = hits
	}
	return out
}

// scoreContainment folds one cell's answers against truth into a row.
// Empty-truth probes score 1.0 by convention (nothing to find, nothing
// found counts as found).
func scoreContainment(dataset string, t float64, shards int, partition string,
	answers [][]cpindex.Match, truth []map[int]bool) AccuracyRow {
	var truthPairs, returned, hits int
	for qi, ms := range answers {
		truthPairs += len(truth[qi])
		returned += len(ms)
		for _, m := range ms {
			if truth[qi][m.ID] {
				hits++
			}
		}
	}
	row := AccuracyRow{
		Dataset: dataset, Threshold: t, Shards: shards, Partition: partition,
		Queries: len(answers), TruthPairs: truthPairs, Returned: returned,
		Precision: 1, Recall: 1,
	}
	if returned > 0 {
		row.Precision = float64(hits) / float64(returned)
	}
	if truthPairs > 0 {
		row.Recall = float64(hits) / float64(truthPairs)
	}
	if row.Precision+row.Recall > 0 {
		row.F1 = 2 * row.Precision * row.Recall / (row.Precision + row.Recall)
	}
	return row
}

// equalAnswerSets reports whether two per-query answer sets are
// byte-identical: same ids, same exact scores, same order.
func equalAnswerSets(a, b [][]cpindex.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// WriteAccuracyJSON emits the accuracy rows as the BENCH_accuracy.json
// artifact: precision/recall/F1 per cell plus the recall floor CI gates
// on and the usual determinism flags.
func WriteAccuracyJSON(w io.Writer, rows []AccuracyRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		GOMAXPROCS  int           `json:"gomaxprocs"`
		RecallFloor float64       `json:"recall_floor"`
		Rows        []AccuracyRow `json:"rows"`
	}{runtime.GOMAXPROCS(0), DefaultRecallFloor, rows})
}

// PrintAccuracy writes the accuracy table for human consumption.
func PrintAccuracy(w io.Writer, rows []AccuracyRow) {
	fmt.Fprintf(w, "%-12s %9s %6s %-10s %7s %6s %8s %9s %7s %7s %10s\n",
		"Dataset", "threshold", "shards", "partition", "queries", "truth", "returned", "precision", "recall", "f1", "identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %9.2f %6d %-10s %7d %6d %8d %9.3f %7.3f %7.3f %10v\n",
			r.Dataset, r.Threshold, r.Shards, r.Partition, r.Queries,
			r.TruthPairs, r.Returned, r.Precision, r.Recall, r.F1, r.Identical)
	}
}
