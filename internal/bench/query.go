package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/cpindex"
	"repro/internal/shard"
)

// QueryRow is one microbenchmark measurement of the point-query path:
// ns/op and allocs/op for one (scope, op, layout, cache) cell, measured
// with testing.Benchmark so the numbers mean the same thing as
// `go test -bench`. The rows are the BENCH_query.json artifact recorded
// by `make bench-micro` and checked in CI: every cell's answers must be
// identical to the reference configuration's (flat layout, cache off),
// and the cpindex flat Query/QueryAll cells must report zero allocations
// per op — the flat engine's steady-state contract.
type QueryRow struct {
	Dataset string `json:"dataset"`
	// Scope is "cpindex" (one index, the per-shard engine) or "shard"
	// (a ShardedIndex with the full merge/tombstone/cache machinery).
	Scope string `json:"scope"`
	// Op is Query (best match), QueryAll (all matches) or QueryBatch
	// (whole query set in one call; ns/op is per batch, QPS per query).
	Op string `json:"op"`
	// Layout is "flat" (contiguous-array engine, the default) or
	// "pointer" (the pointer-trie reference implementation).
	Layout string `json:"layout"`
	// Cache reports whether the hot-query result cache was enabled; the
	// benchmark loop cycles through the query set repeatedly, so a warm
	// cache answers most ops from memory.
	Cache       bool    `json:"cache"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// QPS is queries answered per second (for QueryBatch, batch size ×
	// batches per second).
	QPS float64 `json:"qps"`
	// Identical reports whether this cell's answers — checked cold and
	// again warm, outside the timed loop — equal the flat, uncached
	// reference cell's. One flag name across every bench artifact keeps
	// the CI gate uniform.
	Identical bool `json:"identical_to_sequential"`
}

// RunQueryBench measures the point-query microbenchmarks: every set of
// each workload queried back against its own index (λ=0.5), across the
// layout dimension at the cpindex level and the cache dimension at the
// shard level. Builds are deterministic, so every cell of a workload
// queries the same logical structure and exact answer comparison is
// meaningful.
func RunQueryBench(workloads []Workload, cfg Config, progress io.Writer) []QueryRow {
	const lambda = 0.5
	var rows []QueryRow
	emit := func(r QueryRow) {
		rows = append(rows, r)
		if progress != nil {
			fmt.Fprintf(progress, "query    %-12s %-7s %-10s layout=%-7s cache=%-5v ns/op=%10.0f allocs/op=%-3d identical=%v\n",
				r.Dataset, r.Scope, r.Op, r.Layout, r.Cache, r.NsPerOp, r.AllocsPerOp, r.Identical)
		}
	}
	for _, w := range workloads {
		queries := w.Sets
		runCpindex(w.Name, queries, lambda, cfg, emit)
		runShard(w.Name, queries, lambda, cfg, emit)
	}
	return rows
}

// queryBest is one Query result captured for equality checks.
type queryBest struct {
	id  int
	sim float64
	ok  bool
}

// runCpindex measures a single cpindex.Index in both layouts against the
// flat reference.
func runCpindex(dataset string, queries [][]uint32, lambda float64, cfg Config, emit func(QueryRow)) {
	ix := cpindex.Build(queries, lambda, &cpindex.Options{Seed: cfg.Seed})

	answers := func() ([]queryBest, [][]cpindex.Match) {
		best := make([]queryBest, len(queries))
		all := make([][]cpindex.Match, len(queries))
		for i, q := range queries {
			id, sim, ok := ix.Query(q)
			best[i] = queryBest{id, sim, ok}
			all[i] = ix.QueryAll(q)
		}
		return best, all
	}
	ix.SetLayout(cpindex.LayoutFlat)
	refBest, refAll := answers()

	for _, layout := range []cpindex.Layout{cpindex.LayoutFlat, cpindex.LayoutPointer} {
		name := "flat"
		if layout == cpindex.LayoutPointer {
			name = "pointer"
		}
		ix.SetLayout(layout)
		gotBest, gotAll := answers() // doubles as scratch-pool warmup
		identical := equalBest(gotBest, refBest) && equalBatches(gotAll, refAll)

		emit(benchCell(dataset, "cpindex", "Query", name, false, identical, 1,
			queries, func(qi int) { ix.Query(queries[qi]) }))
		// QueryAll's steady-state form is AppendAll into a reused buffer —
		// QueryAll itself is AppendAll(nil, q), so the only allocation it
		// adds is the caller-owned result slice this loop amortizes away.
		var dst []cpindex.Match
		emit(benchCell(dataset, "cpindex", "QueryAll", name, false, identical, 1,
			queries, func(qi int) { dst = ix.AppendAll(dst[:0], queries[qi]) }))
	}
}

// runShard measures a ShardedIndex-level shard.Index with the cache off
// and on, all ops, against the cache-off answers.
func runShard(dataset string, queries [][]uint32, lambda float64, cfg Config, emit func(QueryRow)) {
	var refBest []queryBest
	var refAll, refBatch [][]cpindex.Match
	for _, cache := range []bool{false, true} {
		opts := &shard.Options{Shards: 4, Seed: cfg.Seed}
		if cache {
			opts.CacheSize = 2 * len(queries)
		}
		ix := shard.Build(queries, lambda, opts)

		// All-local rings never hit the remote-topology error, so the
		// error-returning primaries are used with the error discarded.
		answers := func() ([]queryBest, [][]cpindex.Match, [][]cpindex.Match) {
			best := make([]queryBest, len(queries))
			all := make([][]cpindex.Match, len(queries))
			for i, q := range queries {
				id, sim, ok, _ := ix.QueryErr(q)
				best[i] = queryBest{id, sim, ok}
				all[i], _ = ix.QueryAllErr(q)
			}
			batch, _ := ix.QueryBatchErr(queries)
			return best, all, batch
		}
		// Two passes: the first is the cold (cache-filling) one, the
		// second answers warm — both must match the uncached reference.
		coldBest, coldAll, coldBatch := answers()
		warmBest, warmAll, warmBatch := answers()
		if !cache {
			refBest, refAll, refBatch = coldBest, coldAll, coldBatch
		}
		identical := equalBest(coldBest, refBest) && equalBatches(coldAll, refAll) &&
			equalBatches(coldBatch, refBatch) &&
			equalBest(warmBest, refBest) && equalBatches(warmAll, refAll) &&
			equalBatches(warmBatch, refBatch)

		emit(benchCell(dataset, "shard", "Query", "flat", cache, identical, 1,
			queries, func(qi int) { ix.QueryErr(queries[qi]) }))
		emit(benchCell(dataset, "shard", "QueryAll", "flat", cache, identical, 1,
			queries, func(qi int) { ix.QueryAllErr(queries[qi]) }))
		emit(benchCell(dataset, "shard", "QueryBatch", "flat", cache, identical, len(queries),
			queries, func(int) { ix.QueryBatchErr(queries) }))
	}
}

// benchCell runs one measurement with testing.Benchmark, cycling op over
// the query indices, and packages the result. queriesPerOp scales QPS
// for batch ops whose single op answers the whole query set.
func benchCell(dataset, scope, op, layout string, cache, identical bool,
	queriesPerOp int, queries [][]uint32, call func(qi int)) QueryRow {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		qi := 0
		for i := 0; i < b.N; i++ {
			call(qi)
			qi++
			if qi == len(queries) {
				qi = 0
			}
		}
	})
	ns := float64(res.NsPerOp())
	row := QueryRow{
		Dataset:     dataset,
		Scope:       scope,
		Op:          op,
		Layout:      layout,
		Cache:       cache,
		NsPerOp:     ns,
		AllocsPerOp: res.AllocsPerOp(),
		Identical:   identical,
	}
	if ns > 0 {
		row.QPS = float64(queriesPerOp) * 1e9 / ns
	}
	return row
}

func equalBest(a, b []queryBest) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteQueryJSON emits the microbenchmark rows as indented JSON — the
// BENCH_query.json artifact of `make bench-micro`. CI fails the bench
// job if any identical_to_sequential flag is false or any cpindex flat
// Query/QueryAll row reports nonzero allocs/op.
func WriteQueryJSON(w io.Writer, rows []QueryRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		GOMAXPROCS int        `json:"gomaxprocs"`
		Rows       []QueryRow `json:"rows"`
	}{runtime.GOMAXPROCS(0), rows})
}

// PrintQuery writes the microbenchmark table for human consumption.
func PrintQuery(w io.Writer, rows []QueryRow) {
	fmt.Fprintf(w, "%-12s %-8s %-10s %-8s %-6s %14s %10s %12s %10s\n",
		"Dataset", "scope", "op", "layout", "cache", "ns/op", "allocs/op", "qps", "identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-8s %-10s %-8s %-6v %14.0f %10d %12.0f %10v\n",
			r.Dataset, r.Scope, r.Op, r.Layout, r.Cache, r.NsPerOp, r.AllocsPerOp, r.QPS, r.Identical)
	}
}
