// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section VI). See DESIGN.md §3 for the
// per-experiment index and §4 for the dataset substitutions.
package bench

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

// Workload is one benchmark dataset instance.
type Workload struct {
	Name string
	Sets [][]uint32
}

// Scale controls workload sizes. The paper runs full-size datasets
// (10⁵–10⁷ sets) on a Xeon with 512 GB RAM; the harness defaults to a
// laptop-friendly scale while preserving each dataset's structure.
type Scale struct {
	// ProfileSets is the number of sets for each real-dataset analogue.
	ProfileSets int
	// UniformSets is the number of sets for the UNIFORM005 analogue.
	UniformSets int
	// TokensCap is the token cap of the smallest TOKENS dataset; the
	// other two use 1.5x and 2x, mirroring TOKENS10K/15K/20K.
	TokensCap int
	// Seed drives all generation.
	Seed uint64
}

// DefaultScale is sized so the full Table II harness completes in minutes.
func DefaultScale() Scale {
	return Scale{ProfileSets: 5000, UniformSets: 5000, TokensCap: 400, Seed: 2018}
}

// PaperScale approximates the paper's dataset sizes. Running Table II at
// this scale takes hours and several GB of memory.
func PaperScale() Scale {
	return Scale{ProfileSets: 100_000, UniformSets: 100_000, TokensCap: 10_000, Seed: 2018}
}

// SmokeScale is the CI bench-smoke scale: the same workload structure as
// DefaultScale, shrunk until the parallel and serving benchmarks finish
// in seconds on a shared two-core runner, while timings stay far enough
// from zero that the recorded trajectory is comparable across PRs.
func SmokeScale() Scale {
	return Scale{ProfileSets: 1200, UniformSets: 1200, TokensCap: 150, Seed: 2018}
}

// ProfileWorkloads generates the synthetic analogues of the ten real
// datasets of Table I.
func ProfileWorkloads(s Scale) []Workload {
	out := make([]Workload, 0, len(datagen.Profiles))
	for i, p := range datagen.Profiles {
		ds := p.Generate(s.ProfileSets, s.Seed+uint64(i)*101)
		out = append(out, Workload{Name: p.Name, Sets: ds.Sets})
	}
	return out
}

// SyntheticWorkloads generates UNIFORM005 and the three TOKENS datasets.
func SyntheticWorkloads(s Scale) []Workload {
	var out []Workload

	// Universe scaled from the paper's 100k sets / 209 tokens, floored so
	// sets (avg size 10) stay well below the universe and remain distinct.
	uni := datagen.Uniform(s.UniformSets, 10, maxInt(s.UniformSets/478, 40), s.Seed+7001)
	// Plant result mass like the profile generator does, so joins at high
	// thresholds are non-trivial.
	for i, j := range []float64{0.55, 0.65, 0.75, 0.85, 0.95} {
		datagen.PlantPairs(uni, s.UniformSets/1000+5, j, s.Seed+uint64(i)+7100)
	}
	uni.Clean()
	out = append(out, Workload{Name: "UNIFORM005", Sets: uni.Sets})

	caps := []struct {
		name string
		mult float64
	}{
		{"TOKENS10K", 1.0},
		{"TOKENS15K", 1.5},
		{"TOKENS20K", 2.0},
	}
	for i, c := range caps {
		cap := int(float64(s.TokensCap) * c.mult)
		cfg := datagen.DefaultTokensConfig(cap, s.Seed+uint64(i)*13+8000)
		// Scale the planted-pair count with the cap so planted sets stay a
		// small fraction of the background (the paper plants 50 pairs per
		// λ' at cap 10000).
		cfg.PairsPerJ = clamp(cap/200, 4, 50)
		ds, _ := datagen.Tokens(cfg)
		out = append(out, Workload{Name: c.name, Sets: ds.Sets})
	}
	return out
}

// AllWorkloads generates every dataset of the evaluation: ten real-dataset
// analogues, UNIFORM005, and TOKENS10K/15K/20K.
func AllWorkloads(s Scale) []Workload {
	return append(ProfileWorkloads(s), SyntheticWorkloads(s)...)
}

// WorkloadByName regenerates a single named workload.
func WorkloadByName(name string, s Scale) (Workload, error) {
	for _, w := range AllWorkloads(s) {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("bench: unknown workload %q", name)
}

// Summary returns Table I statistics for a workload.
func (w Workload) Summary() dataset.Stats {
	return (&dataset.Dataset{Sets: w.Sets}).ComputeStats()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
