package bench

import (
	"fmt"
	"io"

	"repro/internal/cpindex"
	"repro/internal/shard"
)

// CompactionRow is one measurement of the compaction benchmark: an
// add/delete churn workload sealed into many small shards, one Compact
// pass, and a post-compaction batch query — the maintenance cycle a
// long-running service lives through. Two flags guard the correctness
// contracts every run: post-compaction results must equal pre-compaction
// results (compaction changes no answers), and every worker count must
// produce the first worker count's results (the repository-wide
// determinism contract).
type CompactionRow struct {
	Dataset string  `json:"dataset"`
	Lambda  float64 `json:"lambda"`
	Shards  int     `json:"shards"`
	Workers int     `json:"workers"`
	// Appends/Deletes is the churn volume; ShardsBefore/ShardsAfter the
	// ring size around the Compact pass; Reclaimed the tombstones whose
	// entries the pass dropped.
	Appends      int `json:"appends"`
	Deletes      int `json:"deletes"`
	ShardsBefore int `json:"shards_before"`
	ShardsAfter  int `json:"shards_after"`
	Reclaimed    int `json:"reclaimed"`
	// CompactSeconds times the Compact pass; QPS is post-compaction
	// batch-query throughput over Queries queries in Seconds.
	CompactSeconds float64 `json:"compact_seconds"`
	Queries        int     `json:"queries"`
	Seconds        float64 `json:"seconds"`
	QPS            float64 `json:"qps"`
	// IdenticalAfterCompaction: post-compaction results == pre-compaction
	// results. Identical: this cell's results == the first worker count's.
	IdenticalAfterCompaction bool `json:"identical_after_compaction"`
	Identical                bool `json:"identical_to_sequential"`
}

// RunCompactionBench measures the compaction maintenance cycle on each
// workload: build over two thirds of the sets, churn the rest through
// Add in seal-sized batches with every third appended id deleted, then
// Compact and query everything back. The op sequence is identical per
// (dataset, shards) cell across the worker ladder, so result equality is
// meaningful.
//
// The cells run in exact mode (LeafSize above any shard size): rebuilt
// shards use fresh seeds, so at production leaf sizes pre/post result
// lists could differ by recall noise and the flags would be statistics;
// in exact mode they are contracts, checked on every `make bench`.
func RunCompactionBench(workloads []Workload, shardCounts, workerCounts []int, cfg Config, progress io.Writer) []CompactionRow {
	const lambda = 0.5
	var rows []CompactionRow
	for _, w := range workloads {
		base := w.Sets[:2*len(w.Sets)/3]
		extra := w.Sets[2*len(w.Sets)/3:]
		merge := maxInt(len(extra)/12, 8)
		for _, shards := range shardCounts {
			var first [][]cpindex.Match
			for _, workers := range workerCounts {
				opts := &shard.Options{
					Shards:         shards,
					MergeThreshold: merge,
					Trees:          2,
					LeafSize:       1 << 30,
					Seed:           cfg.Seed,
					Workers:        workers,
				}
				ix := shard.Build(base, lambda, opts)
				deletes := 0
				for i := 0; i < len(extra); i += merge {
					end := i + merge
					if end > len(extra) {
						end = len(extra)
					}
					ids := ix.Add(extra[i:end])
					for j := 0; j < len(ids); j += 3 {
						ix.Delete(ids[j])
						deletes++
					}
				}
				before := ix.Stats()
				pre, _ := ix.QueryBatchErr(w.Sets)

				var res shard.CompactResult
				compactT := timed(1, func() { res = ix.Compact() })

				var post [][]cpindex.Match
				d := timed(cfg.Runs, func() { post, _ = ix.QueryBatchErr(w.Sets) })

				row := CompactionRow{
					Dataset:                  w.Name,
					Lambda:                   lambda,
					Shards:                   shards,
					Workers:                  workers,
					Appends:                  len(extra),
					Deletes:                  deletes,
					ShardsBefore:             before.Shards,
					ShardsAfter:              ix.Stats().Shards,
					Reclaimed:                res.Reclaimed,
					CompactSeconds:           compactT.Seconds(),
					Queries:                  len(w.Sets),
					Seconds:                  d.Seconds(),
					QPS:                      float64(len(w.Sets)) / d.Seconds(),
					IdenticalAfterCompaction: equalBatches(pre, post),
				}
				if workers == workerCounts[0] {
					first = post
				}
				row.Identical = equalBatches(first, post)
				rows = append(rows, row)
				if progress != nil {
					fmt.Fprintf(progress, "compaction %-12s shards=%-2d workers=%-2d ring %d->%d reclaimed=%-5d qps=%9.0f stable=%v deterministic=%v\n",
						w.Name, shards, workers, row.ShardsBefore, row.ShardsAfter,
						row.Reclaimed, row.QPS, row.IdenticalAfterCompaction, row.Identical)
				}
			}
		}
	}
	return rows
}

// PrintCompaction writes the compaction table for human consumption.
func PrintCompaction(w io.Writer, rows []CompactionRow) {
	fmt.Fprintf(w, "%-12s %7s %8s %6s %6s %10s %10s %12s %8s %10s\n",
		"Dataset", "shards", "workers", "ring<", "ring>", "reclaimed", "compact_s", "qps", "stable", "identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %7d %8d %6d %6d %10d %10.3f %12.0f %8v %10v\n",
			r.Dataset, r.Shards, r.Workers, r.ShardsBefore, r.ShardsAfter,
			r.Reclaimed, r.CompactSeconds, r.QPS, r.IdenticalAfterCompaction, r.Identical)
	}
}
