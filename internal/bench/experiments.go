package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/allpairs"
	"repro/internal/bayeslsh"
	"repro/internal/core"
	"repro/internal/lshjoin"
	"repro/internal/stats"
	"repro/internal/verify"
)

// Thresholds are the Jaccard thresholds of the paper's evaluation.
var Thresholds = []float64{0.5, 0.6, 0.7, 0.8, 0.9}

// Config tunes experiment execution.
type Config struct {
	// Runs is the number of timed runs per measurement; the minimum is
	// reported (the paper averages five; minimum is steadier at small
	// scale).
	Runs int
	// TargetRecall is the recall the approximate methods must reach
	// (>= 0.9 in Table II, >= 0.8 in Figure 3).
	TargetRecall float64
	// Seed drives the randomized algorithms.
	Seed uint64
	// Workers is the worker count handed to every algorithm (0 =
	// sequential, negative = GOMAXPROCS). Timings change with it; result
	// sets do not.
	Workers int
}

// DefaultConfig mirrors the paper's experimental setup at one run per cell.
func DefaultConfig() Config {
	return Config{Runs: 1, TargetRecall: 0.9, Seed: 42}
}

func timed(runs int, f func()) time.Duration {
	if runs < 1 {
		runs = 1
	}
	best := time.Duration(0)
	for r := 0; r < runs; r++ {
		start := time.Now()
		f()
		d := time.Since(start)
		if r == 0 || d < best {
			best = d
		}
	}
	return best
}

// Table1Row is one row of Table I: dataset statistics.
type Table1Row struct {
	Dataset      string
	NumSets      int
	AvgSetSize   float64
	SetsPerToken float64
}

// RunTable1 computes dataset statistics for every workload.
func RunTable1(workloads []Workload) []Table1Row {
	rows := make([]Table1Row, 0, len(workloads))
	for _, w := range workloads {
		s := w.Summary()
		rows = append(rows, Table1Row{
			Dataset:      w.Name,
			NumSets:      s.NumSets,
			AvgSetSize:   s.AvgSetSize,
			SetsPerToken: s.SetsPerToken,
		})
	}
	return rows
}

// PrintTable1 writes Table I in the paper's layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-12s %10s %14s %14s\n", "Dataset", "# sets", "avg set size", "sets/tokens")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10d %14.1f %14.1f\n", r.Dataset, r.NumSets, r.AvgSetSize, r.SetsPerToken)
	}
}

// Table2Cell is one (dataset, threshold) measurement of Table II.
type Table2Cell struct {
	Dataset   string
	Threshold float64
	// Join times at >= TargetRecall recall for the approximate methods.
	CP, MH, ALL time.Duration
	// Achieved recall of the approximate methods (ALL is exact).
	CPRecall, MHRecall float64
	// Result-set size of the exact join.
	Results int
}

// RunTable2 measures join time for CPSJOIN, MINHASH and ALLPAIRS on every
// workload and threshold — the experiment behind Table II and Figure 2.
// Approximate methods run repetitions until recall >= cfg.TargetRecall
// against the exact result, mirroring Section VI-2. Preprocessing
// (signatures, sketches) is done once per workload and not counted towards
// join time, as in the paper.
func RunTable2(workloads []Workload, thresholds []float64, cfg Config, progress io.Writer) []Table2Cell {
	var cells []Table2Cell
	for _, w := range workloads {
		ix := core.Preprocess(w.Sets, &core.Options{Seed: cfg.Seed, Workers: cfg.Workers})
		for _, lambda := range thresholds {
			cell := Table2Cell{Dataset: w.Name, Threshold: lambda}

			var truth []verify.Pair
			cell.ALL = timed(cfg.Runs, func() {
				truth, _ = allpairs.JoinWorkers(w.Sets, lambda, cfg.Workers)
			})
			cell.Results = len(truth)

			var cpPairs []verify.Pair
			cpOpts := &core.Options{
				Seed:         cfg.Seed,
				Workers:      cfg.Workers,
				GroundTruth:  truth,
				StopAtRecall: cfg.TargetRecall,
			}
			cell.CP = timed(cfg.Runs, func() {
				cpPairs, _ = core.JoinIndexed(ix, lambda, cpOpts)
			})
			cell.CPRecall = stats.Recall(cpPairs, truth)

			var mhPairs []verify.Pair
			mhOpts := &lshjoin.Options{
				Seed:         cfg.Seed,
				Workers:      cfg.Workers,
				TargetRecall: cfg.TargetRecall,
				GroundTruth:  truth,
				StopAtRecall: cfg.TargetRecall,
			}
			cell.MH = timed(cfg.Runs, func() {
				mhPairs, _ = lshjoin.JoinIndexed(ix, lambda, mhOpts)
			})
			cell.MHRecall = stats.Recall(mhPairs, truth)

			if progress != nil {
				fmt.Fprintf(progress, "table2 %-12s λ=%.1f  CP=%8.3fs  MH=%8.3fs  ALL=%8.3fs  recall CP=%.2f MH=%.2f  results=%d\n",
					w.Name, lambda, cell.CP.Seconds(), cell.MH.Seconds(), cell.ALL.Seconds(),
					cell.CPRecall, cell.MHRecall, cell.Results)
			}
			cells = append(cells, cell)
		}
	}
	return cells
}

// PrintTable2 writes Table II in the paper's layout: one row per dataset,
// CP/MH/ALL columns per threshold.
func PrintTable2(w io.Writer, cells []Table2Cell, thresholds []float64) {
	fmt.Fprintf(w, "%-12s", "Dataset")
	for _, t := range thresholds {
		fmt.Fprintf(w, " |    λ=%.1f: CP      MH     ALL", t)
	}
	fmt.Fprintln(w)
	byDataset := map[string][]Table2Cell{}
	var order []string
	for _, c := range cells {
		if _, ok := byDataset[c.Dataset]; !ok {
			order = append(order, c.Dataset)
		}
		byDataset[c.Dataset] = append(byDataset[c.Dataset], c)
	}
	for _, name := range order {
		fmt.Fprintf(w, "%-12s", name)
		for _, t := range thresholds {
			found := false
			for _, c := range byDataset[name] {
				if c.Threshold == t {
					fmt.Fprintf(w, " | %7.2f %7.2f %7.2f", c.CP.Seconds(), c.MH.Seconds(), c.ALL.Seconds())
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(w, " | %7s %7s %7s", "-", "-", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// Fig2Point is one point of Figure 2: CPSJoin speedup over AllPairs.
type Fig2Point struct {
	Dataset   string
	Threshold float64
	Speedup   float64
}

// Fig2FromTable2 derives Figure 2 from Table II measurements.
func Fig2FromTable2(cells []Table2Cell) []Fig2Point {
	out := make([]Fig2Point, 0, len(cells))
	for _, c := range cells {
		if c.CP <= 0 {
			continue
		}
		out = append(out, Fig2Point{
			Dataset:   c.Dataset,
			Threshold: c.Threshold,
			Speedup:   c.ALL.Seconds() / c.CP.Seconds(),
		})
	}
	return out
}

// PrintFig2 writes the Figure 2 series: speedup per dataset per threshold.
func PrintFig2(w io.Writer, points []Fig2Point) {
	fmt.Fprintf(w, "%-12s %9s %9s\n", "Dataset", "λ", "speedup")
	for _, p := range points {
		fmt.Fprintf(w, "%-12s %9.1f %9.2fx\n", p.Dataset, p.Threshold, p.Speedup)
	}
}

// Fig3Point is one point of Figure 3: join time as a function of one
// CPSJoin parameter, with the others at their final settings.
type Fig3Point struct {
	Dataset string
	Param   string
	Value   float64
	Time    time.Duration
	// Relative is the time divided by the time at the index setting
	// (limit=250, ε=0.1, ℓ=8), matching the y-axis of Figure 3.
	Relative float64
}

// Fig3Sweeps mirror the parameter values of Figure 3.
var (
	Fig3Limits   = []int{10, 50, 100, 250, 500}
	Fig3Epsilons = []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5}
	Fig3Words    = []int{1, 2, 4, 8, 16}
)

// RunFig3 sweeps one CPSJoin parameter ("limit", "epsilon" or "words") on
// each workload at λ=0.5 and >= 80% recall, as in Section VI-B.
func RunFig3(workloads []Workload, param string, cfg Config, progress io.Writer) ([]Fig3Point, error) {
	const lambda = 0.5
	target := cfg.TargetRecall
	if target <= 0 || target > 0.9 {
		target = 0.8
	}
	var out []Fig3Point
	for _, w := range workloads {
		truth, _ := allpairs.JoinWorkers(w.Sets, lambda, cfg.Workers)
		base := core.Options{Seed: cfg.Seed, Workers: cfg.Workers, GroundTruth: truth, StopAtRecall: target}

		// Preprocess outside the timed section; the words sweep needs a
		// fresh index per point, the others share one.
		run := func(opt core.Options) time.Duration {
			ix := core.Preprocess(w.Sets, &opt)
			return timed(cfg.Runs, func() {
				core.JoinIndexed(ix, lambda, &opt)
			})
		}

		var values []float64
		var opts []core.Options
		var indexValue float64
		switch param {
		case "limit":
			indexValue = 250
			for _, v := range Fig3Limits {
				opt := base
				opt.Limit = v
				values = append(values, float64(v))
				opts = append(opts, opt)
			}
		case "epsilon":
			indexValue = 0.1
			for _, v := range Fig3Epsilons {
				opt := base
				opt.Epsilon = v
				opt.EpsilonSet = true
				values = append(values, v)
				opts = append(opts, opt)
			}
		case "words":
			indexValue = 8
			for _, v := range Fig3Words {
				opt := base
				opt.SketchWords = v
				values = append(values, float64(v))
				opts = append(opts, opt)
			}
		default:
			return nil, fmt.Errorf("bench: unknown Fig3 parameter %q", param)
		}

		times := make([]time.Duration, len(values))
		var indexTime time.Duration
		for i := range values {
			times[i] = run(opts[i])
			if values[i] == indexValue {
				indexTime = times[i]
			}
			if progress != nil {
				fmt.Fprintf(progress, "fig3 %-12s %s=%v  t=%.3fs\n", w.Name, param, values[i], times[i].Seconds())
			}
		}
		for i := range values {
			rel := 0.0
			if indexTime > 0 {
				rel = times[i].Seconds() / indexTime.Seconds()
			}
			out = append(out, Fig3Point{
				Dataset: w.Name, Param: param, Value: values[i],
				Time: times[i], Relative: rel,
			})
		}
	}
	return out, nil
}

// PrintFig3 writes a Figure 3 panel.
func PrintFig3(w io.Writer, points []Fig3Point) {
	fmt.Fprintf(w, "%-12s %-8s %8s %10s %9s\n", "Dataset", "param", "value", "time", "relative")
	for _, p := range points {
		fmt.Fprintf(w, "%-12s %-8s %8v %9.3fs %9.2f\n", p.Dataset, p.Param, p.Value, p.Time.Seconds(), p.Relative)
	}
}

// Table4Row is one (dataset, threshold, algorithm) row of Table IV.
type Table4Row struct {
	Dataset       string
	Threshold     float64
	Algorithm     string
	PreCandidates int64
	Candidates    int64
	Results       int64
}

// RunTable4 collects pre-candidate/candidate/result counts for ALLPAIRS
// and CPSJOIN at λ in {0.5, 0.7}, as in Table IV.
func RunTable4(workloads []Workload, cfg Config, progress io.Writer) []Table4Row {
	var rows []Table4Row
	for _, w := range workloads {
		ix := core.Preprocess(w.Sets, &core.Options{Seed: cfg.Seed, Workers: cfg.Workers})
		for _, lambda := range []float64{0.5, 0.7} {
			truth, ac := allpairs.JoinWorkers(w.Sets, lambda, cfg.Workers)
			rows = append(rows, Table4Row{
				Dataset: w.Name, Threshold: lambda, Algorithm: "ALL",
				PreCandidates: ac.PreCandidates, Candidates: ac.Candidates, Results: ac.Results,
			})
			_, cc := core.JoinIndexed(ix, lambda, &core.Options{
				Seed: cfg.Seed, Workers: cfg.Workers,
				GroundTruth: truth, StopAtRecall: cfg.TargetRecall,
			})
			rows = append(rows, Table4Row{
				Dataset: w.Name, Threshold: lambda, Algorithm: "CP",
				PreCandidates: cc.PreCandidates, Candidates: cc.Candidates, Results: cc.Results,
			})
			if progress != nil {
				fmt.Fprintf(progress, "table4 %-12s λ=%.1f done\n", w.Name, lambda)
			}
		}
	}
	return rows
}

// PrintTable4 writes Table IV.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "%-12s %5s %5s %14s %14s %12s\n",
		"Dataset", "λ", "alg", "pre-cand", "candidates", "results")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %5.1f %5s %14.2e %14.2e %12.2e\n",
			r.Dataset, r.Threshold, r.Algorithm,
			float64(r.PreCandidates), float64(r.Candidates), float64(r.Results))
	}
}

// AblationRow compares stopping strategies (Section IV-C.5) on one
// workload.
type AblationRow struct {
	Dataset  string
	Strategy string
	Time     time.Duration
	Recall   float64
}

// RunAblation measures adaptive vs global vs individual stopping at λ=0.5.
func RunAblation(workloads []Workload, cfg Config, progress io.Writer) []AblationRow {
	const lambda = 0.5
	strategies := []struct {
		name string
		stop core.Stopping
	}{
		{"adaptive", core.StopAdaptive},
		{"global", core.StopGlobal},
		{"individual", core.StopIndividual},
	}
	var rows []AblationRow
	for _, w := range workloads {
		truth, _ := allpairs.JoinWorkers(w.Sets, lambda, cfg.Workers)
		ix := core.Preprocess(w.Sets, &core.Options{Seed: cfg.Seed, Workers: cfg.Workers})
		for _, s := range strategies {
			opt := &core.Options{
				Seed: cfg.Seed, Workers: cfg.Workers, Stopping: s.stop,
				GroundTruth: truth, StopAtRecall: cfg.TargetRecall,
			}
			var pairs []verify.Pair
			d := timed(cfg.Runs, func() {
				pairs, _ = core.JoinIndexed(ix, lambda, opt)
			})
			rows = append(rows, AblationRow{
				Dataset: w.Name, Strategy: s.name, Time: d,
				Recall: stats.Recall(pairs, truth),
			})
			if progress != nil {
				fmt.Fprintf(progress, "ablation %-12s %-10s t=%.3fs recall=%.2f\n",
					w.Name, s.name, d.Seconds(), stats.Recall(pairs, truth))
			}
		}
	}
	return rows
}

// PrintAblation writes the stopping-strategy comparison.
func PrintAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintf(w, "%-12s %-10s %10s %8s\n", "Dataset", "strategy", "time", "recall")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-10s %9.3fs %8.2f\n", r.Dataset, r.Strategy, r.Time.Seconds(), r.Recall)
	}
}

// TheoryRow instruments one workload's Chosen Path recursion, checking
// the paper's structural bounds: Lemma 4 (explored depth O(log n/ε)) and
// the Remark 9 conjecture (expected working space O(n)).
type TheoryRow struct {
	Dataset      string
	N            int
	MaxDepth     int
	DepthBound   float64 // log(n)/ε reference value
	PeakLiveMass int64
	NodeMass     int64
	Points       int64 // adaptive removals
	Nodes        int64
}

// RunTheory measures recursion statistics at λ=0.5.
func RunTheory(workloads []Workload, cfg Config, progress io.Writer) []TheoryRow {
	var rows []TheoryRow
	for _, w := range workloads {
		ix := core.Preprocess(w.Sets, &core.Options{Seed: cfg.Seed, Workers: cfg.Workers})
		var m core.Metrics
		core.JoinIndexed(ix, 0.5, &core.Options{Seed: cfg.Seed, Metrics: &m})
		rows = append(rows, TheoryRow{
			Dataset:      w.Name,
			N:            len(w.Sets),
			MaxDepth:     m.MaxDepth,
			DepthBound:   math.Log(float64(len(w.Sets))) / 0.1,
			PeakLiveMass: m.PeakLiveMass,
			NodeMass:     m.NodeMass,
			Points:       m.BruteForcedPoints,
			Nodes:        m.Nodes,
		})
		if progress != nil {
			fmt.Fprintf(progress, "theory %-12s depth=%d peak=%d\n", w.Name, m.MaxDepth, m.PeakLiveMass)
		}
	}
	return rows
}

// PrintTheory writes the recursion statistics with the analytical
// reference values.
func PrintTheory(w io.Writer, rows []TheoryRow) {
	fmt.Fprintf(w, "%-12s %8s %9s %12s %12s %12s %10s\n",
		"Dataset", "n", "max depth", "ln(n)/ε", "peak mass", "peak/n", "removals")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8d %9d %12.1f %12d %12.2f %10d\n",
			r.Dataset, r.N, r.MaxDepth, r.DepthBound,
			r.PeakLiveMass, float64(r.PeakLiveMass)/float64(r.N), r.Points)
	}
}

// BayesRow compares BayesLSH-lite against the other methods on one
// workload (Section VI-A.2 reports it uniformly slower).
type BayesRow struct {
	Dataset   string
	Threshold float64
	Bayes     time.Duration
	CP        time.Duration
	Recall    float64
}

// RunBayes measures BayesLSH-lite against CPSJoin.
func RunBayes(workloads []Workload, cfg Config, progress io.Writer) []BayesRow {
	var rows []BayesRow
	for _, w := range workloads {
		ix := core.Preprocess(w.Sets, &core.Options{Seed: cfg.Seed, Workers: cfg.Workers})
		for _, lambda := range []float64{0.5, 0.7} {
			truth, _ := allpairs.JoinWorkers(w.Sets, lambda, cfg.Workers)
			var bp []verify.Pair
			bTime := timed(cfg.Runs, func() {
				bp, _ = bayeslsh.JoinIndexed(ix, lambda, &bayeslsh.Options{Seed: cfg.Seed, Workers: cfg.Workers})
			})
			cpTime := timed(cfg.Runs, func() {
				core.JoinIndexed(ix, lambda, &core.Options{
					Seed: cfg.Seed, Workers: cfg.Workers,
					GroundTruth: truth, StopAtRecall: cfg.TargetRecall,
				})
			})
			rows = append(rows, BayesRow{
				Dataset: w.Name, Threshold: lambda,
				Bayes: bTime, CP: cpTime, Recall: stats.Recall(bp, truth),
			})
			if progress != nil {
				fmt.Fprintf(progress, "bayes %-12s λ=%.1f  bayes=%.3fs cp=%.3fs\n",
					w.Name, lambda, bTime.Seconds(), cpTime.Seconds())
			}
		}
	}
	return rows
}

// PrintBayes writes the BayesLSH comparison.
func PrintBayes(w io.Writer, rows []BayesRow) {
	fmt.Fprintf(w, "%-12s %5s %12s %12s %8s\n", "Dataset", "λ", "BayesLSH", "CPSJoin", "recall")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %5.1f %11.3fs %11.3fs %8.2f\n",
			r.Dataset, r.Threshold, r.Bayes.Seconds(), r.CP.Seconds(), r.Recall)
	}
}
