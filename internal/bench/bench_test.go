package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// tinyScale keeps harness tests fast while exercising every code path.
func tinyScale() Scale {
	return Scale{ProfileSets: 600, UniformSets: 600, TokensCap: 60, Seed: 7}
}

func TestAllWorkloadsGenerate(t *testing.T) {
	ws := AllWorkloads(tinyScale())
	if len(ws) != 14 {
		t.Fatalf("got %d workloads, want 14 (10 profiles + UNIFORM005 + 3 TOKENS)", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Fatalf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
		if len(w.Sets) < 50 {
			t.Errorf("%s: only %d sets", w.Name, len(w.Sets))
		}
	}
	for _, name := range []string{"AOL", "NETFLIX", "UNIFORM005", "TOKENS10K", "TOKENS20K"} {
		if !seen[name] {
			t.Errorf("missing workload %s", name)
		}
	}
}

func TestWorkloadByName(t *testing.T) {
	w, err := WorkloadByName("TOKENS10K", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "TOKENS10K" {
		t.Fatalf("got %s", w.Name)
	}
	if _, err := WorkloadByName("NOPE", tinyScale()); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestTokensProgression(t *testing.T) {
	// TOKENS20K must have roughly twice the token usage of TOKENS10K.
	ws := SyntheticWorkloads(tinyScale())
	var t10, t20 Workload
	for _, w := range ws {
		switch w.Name {
		case "TOKENS10K":
			t10 = w
		case "TOKENS20K":
			t20 = w
		}
	}
	s10, s20 := t10.Summary(), t20.Summary()
	if s20.SetsPerToken < 1.5*s10.SetsPerToken {
		t.Errorf("TOKENS progression broken: sets/token %v vs %v",
			s10.SetsPerToken, s20.SetsPerToken)
	}
}

func TestRunTable1(t *testing.T) {
	rows := RunTable1(AllWorkloads(tinyScale()))
	if len(rows) != 14 {
		t.Fatalf("got %d rows", len(rows))
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "NETFLIX") {
		t.Error("Table 1 output missing NETFLIX row")
	}
}

func TestRunTable2Small(t *testing.T) {
	ws := []Workload{mustWorkload(t, "UNIFORM005"), mustWorkload(t, "TOKENS10K")}
	cfg := DefaultConfig()
	cells := RunTable2(ws, []float64{0.5, 0.7}, cfg, io.Discard)
	if len(cells) != 4 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		if c.CPRecall < cfg.TargetRecall-1e-9 && c.Results > 0 {
			t.Errorf("%s λ=%v: CP recall %v below target", c.Dataset, c.Threshold, c.CPRecall)
		}
		if c.Results == 0 {
			t.Errorf("%s λ=%v: empty exact result; workload has no join mass", c.Dataset, c.Threshold)
		}
	}
	var buf bytes.Buffer
	PrintTable2(&buf, cells, []float64{0.5, 0.7})
	if !strings.Contains(buf.String(), "TOKENS10K") {
		t.Error("Table 2 output missing dataset")
	}
	points := Fig2FromTable2(cells)
	if len(points) != len(cells) {
		t.Fatalf("Fig2 points %d, cells %d", len(points), len(cells))
	}
	PrintFig2(&buf, points)
}

func TestRunFig3(t *testing.T) {
	ws := []Workload{mustWorkload(t, "UNIFORM005")}
	cfg := DefaultConfig()
	cfg.TargetRecall = 0.8
	for _, param := range []string{"limit", "epsilon", "words"} {
		points, err := RunFig3(ws, param, cfg, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if len(points) == 0 {
			t.Fatalf("no points for %s", param)
		}
		hasIndex := false
		for _, p := range points {
			if p.Relative == 1.0 {
				hasIndex = true
			}
		}
		if !hasIndex {
			t.Errorf("%s sweep has no index point with relative time 1.0", param)
		}
	}
	if _, err := RunFig3(ws, "nope", cfg, nil); err == nil {
		t.Error("unknown parameter accepted")
	}
}

func TestRunTable4(t *testing.T) {
	ws := []Workload{mustWorkload(t, "TOKENS10K")}
	rows := RunTable4(ws, DefaultConfig(), io.Discard)
	if len(rows) != 4 { // 2 thresholds x 2 algorithms
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Candidates > r.PreCandidates {
			t.Errorf("%+v: candidates exceed pre-candidates", r)
		}
		if r.Results > r.Candidates {
			t.Errorf("%+v: results exceed candidates", r)
		}
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "CP") {
		t.Error("Table 4 output missing CP rows")
	}
}

func TestRunAblation(t *testing.T) {
	ws := []Workload{mustWorkload(t, "UNIFORM005")}
	rows := RunAblation(ws, DefaultConfig(), io.Discard)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Recall < 0.5 {
			t.Errorf("%s/%s recall %v suspiciously low", r.Dataset, r.Strategy, r.Recall)
		}
	}
	var buf bytes.Buffer
	PrintAblation(&buf, rows)
	if !strings.Contains(buf.String(), "adaptive") {
		t.Error("ablation output missing adaptive row")
	}
}

func TestRunBayes(t *testing.T) {
	ws := []Workload{mustWorkload(t, "UNIFORM005")}
	rows := RunBayes(ws, DefaultConfig(), io.Discard)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	var buf bytes.Buffer
	PrintBayes(&buf, rows)
	if !strings.Contains(buf.String(), "UNIFORM005") {
		t.Error("bayes output missing dataset")
	}
}

// TestTokensShapeClaim checks the paper's central robustness claim at tiny
// scale: on the TOKENS datasets (no rare tokens), CPSJoin examines far
// fewer candidates than AllPairs.
func TestTokensShapeClaim(t *testing.T) {
	ws := []Workload{mustWorkload(t, "TOKENS10K")}
	rows := RunTable4(ws, DefaultConfig(), io.Discard)
	var all, cp Table4Row
	for _, r := range rows {
		if r.Threshold == 0.5 {
			switch r.Algorithm {
			case "ALL":
				all = r
			case "CP":
				cp = r
			}
		}
	}
	if cp.Candidates >= all.Candidates {
		t.Errorf("on TOKENS, CP candidates (%d) should be far below ALL (%d)",
			cp.Candidates, all.Candidates)
	}
}

func mustWorkload(t *testing.T, name string) Workload {
	t.Helper()
	w, err := WorkloadByName(name, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestRunPlacementChurn runs the placement-GC soak at tiny scale: after
// the seal + compact + re-distribute rounds, the peers must host exactly
// the final ring's keys and answers must match the all-local reference —
// the same flags the CI bench gate reads from BENCH_serving.json.
func TestRunPlacementChurn(t *testing.T) {
	w := mustWorkload(t, "UNIFORM005")
	var buf bytes.Buffer
	churn := RunPlacementChurn(w, DefaultConfig(), &buf)
	if !churn.GCClean {
		t.Fatalf("placement churn not GC-clean: %+v\n%s", churn, buf.String())
	}
	if !churn.Identical {
		t.Fatalf("placement churn answers diverged: %+v\n%s", churn, buf.String())
	}
	if churn.RingKeys == 0 || churn.HostedA != churn.RingKeys || churn.HostedB != churn.RingKeys {
		t.Fatalf("placement churn hosted/ring mismatch: %+v", churn)
	}
	var out bytes.Buffer
	if err := WriteServingJSON(&out, nil, nil, nil, &churn, nil); err != nil {
		t.Fatalf("WriteServingJSON: %v", err)
	}
	for _, want := range []string{`"placement_gc_clean": true`, `"identical_to_sequential": true`} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("serving JSON missing %s:\n%s", want, out.String())
		}
	}
}

// TestRunTieringBench runs the storage-tier comparison at tiny scale:
// the cold restore must answer byte-identically to hot and open faster
// than the full decode. The ≥5× speedup floor itself is gated in CI on
// the bench-smoke artifact, where the dataset is large enough for the
// ratio to be stable.
func TestRunTieringBench(t *testing.T) {
	w := mustWorkload(t, "UNIFORM005")
	var buf bytes.Buffer
	r := RunTieringBench(w, DefaultConfig(), &buf)
	if !r.Identical {
		t.Fatalf("tiering answers diverged: %+v\n%s", r, buf.String())
	}
	if r.RestoreSpeedup <= 1 {
		t.Fatalf("cold restore not faster than hot: %+v\n%s", r, buf.String())
	}
	if r.ColdResidentBytes >= r.HotResidentBytes {
		t.Logf("warning: cold resident %d >= hot %d at tiny scale", r.ColdResidentBytes, r.HotResidentBytes)
	}
	var out bytes.Buffer
	if err := WriteServingJSON(&out, nil, nil, nil, nil, &r); err != nil {
		t.Fatalf("WriteServingJSON: %v", err)
	}
	if !strings.Contains(out.String(), `"tiering_identical": true`) {
		t.Fatalf("serving JSON missing tiering flag:\n%s", out.String())
	}
}
