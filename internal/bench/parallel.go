package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/allpairs"
	"repro/internal/core"
	"repro/internal/lshjoin"
	"repro/internal/prep"
	"repro/internal/stats"
	"repro/internal/verify"
)

// ParallelRow is one measurement of the parallel-scaling benchmark: one
// (dataset, algorithm, worker count) cell, with the speedup over the
// single-worker run of the same cell and a determinism check against it.
type ParallelRow struct {
	Dataset   string  `json:"dataset"`
	Algorithm string  `json:"algorithm"`
	Threshold float64 `json:"threshold"`
	Workers   int     `json:"workers"`
	Seconds   float64 `json:"seconds"`
	// Speedup is the single-worker time of this (dataset, algorithm) cell
	// divided by this row's time.
	Speedup float64 `json:"speedup"`
	Pairs   int     `json:"pairs"`
	// Identical reports whether this row's pair set equals the
	// single-worker pair set — the execution layer's determinism
	// contract, verified on every benchmark run.
	Identical bool `json:"identical_to_sequential"`
}

// DefaultWorkerCounts is the scaling ladder measured by `make bench`:
// powers of two up to GOMAXPROCS, always including 1 and GOMAXPROCS.
func DefaultWorkerCounts() []int {
	maxw := runtime.GOMAXPROCS(0)
	counts := []int{1}
	for w := 2; w < maxw; w *= 2 {
		counts = append(counts, w)
	}
	if maxw > 1 {
		counts = append(counts, maxw)
	}
	return counts
}

// RunParallelScaling measures join time against worker count for the
// parallelized algorithms on every workload at λ=0.5. It drives the same
// code paths as the library's Workers option; recall-targeted stopping is
// deliberately off so every run does identical algorithmic work, and the
// shared index is built once per workload outside the timed section — the
// rows measure join scaling only, matching the paper's convention of
// excluding preprocessing from join time.
func RunParallelScaling(workloads []Workload, workerCounts []int, cfg Config, progress io.Writer) []ParallelRow {
	const lambda = 0.5
	type algo struct {
		name string
		run  func(w Workload, ix *prep.Index, workers int) []verify.Pair
	}
	algorithms := []algo{
		{"cpsjoin", func(w Workload, ix *prep.Index, workers int) []verify.Pair {
			pairs, _ := core.JoinIndexed(ix, lambda, &core.Options{Seed: cfg.Seed, Workers: workers})
			return pairs
		}},
		{"braunblanquet", func(w Workload, _ *prep.Index, workers int) []verify.Pair {
			pairs, _ := core.JoinBB(w.Sets, lambda, &core.BBOptions{Seed: cfg.Seed, Workers: workers})
			return pairs
		}},
		{"minhash", func(w Workload, ix *prep.Index, workers int) []verify.Pair {
			pairs, _ := lshjoin.JoinIndexed(ix, lambda, &lshjoin.Options{Seed: cfg.Seed, Workers: workers})
			return pairs
		}},
		{"allpairs", func(w Workload, _ *prep.Index, workers int) []verify.Pair {
			pairs, _ := allpairs.JoinWorkers(w.Sets, lambda, workers)
			return pairs
		}},
	}

	var rows []ParallelRow
	for _, w := range workloads {
		ix := core.Preprocess(w.Sets, &core.Options{Seed: cfg.Seed, Workers: -1})
		for _, alg := range algorithms {
			var base time.Duration
			var basePairs []verify.Pair
			for _, workers := range workerCounts {
				var pairs []verify.Pair
				d := timed(cfg.Runs, func() {
					pairs = alg.run(w, ix, workers)
				})
				row := ParallelRow{
					Dataset:   w.Name,
					Algorithm: alg.name,
					Threshold: lambda,
					Workers:   workers,
					Seconds:   d.Seconds(),
					Pairs:     len(pairs),
				}
				if workers == workerCounts[0] {
					base, basePairs = d, pairs
				}
				if base > 0 {
					row.Speedup = base.Seconds() / d.Seconds()
				}
				row.Identical = stats.EqualPairSets(basePairs, pairs)
				rows = append(rows, row)
				if progress != nil {
					fmt.Fprintf(progress, "parallel %-12s %-13s workers=%-2d t=%8.3fs speedup=%5.2fx identical=%v\n",
						w.Name, alg.name, workers, row.Seconds, row.Speedup, row.Identical)
				}
			}
		}
	}
	return rows
}

// WriteParallelJSON emits the scaling measurements as indented JSON — the
// BENCH_parallel.json artifact recorded by `make bench` so the repo's
// performance trajectory is tracked across PRs.
func WriteParallelJSON(w io.Writer, rows []ParallelRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		GOMAXPROCS int           `json:"gomaxprocs"`
		Rows       []ParallelRow `json:"rows"`
	}{runtime.GOMAXPROCS(0), rows})
}

// PrintParallel writes the scaling table for human consumption.
func PrintParallel(w io.Writer, rows []ParallelRow) {
	fmt.Fprintf(w, "%-12s %-13s %8s %10s %9s %10s\n",
		"Dataset", "algorithm", "workers", "time", "speedup", "identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-13s %8d %9.3fs %8.2fx %10v\n",
			r.Dataset, r.Algorithm, r.Workers, r.Seconds, r.Speedup, r.Identical)
	}
}
