package bench

import (
	"encoding/csv"

	"io"
	"strconv"
)

// CSV writers for every experiment's row type, so results can be loaded
// into plotting tools to regenerate the paper's figures graphically.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', 6, 64) }
func itoa(i int64) string   { return strconv.FormatInt(i, 10) }

// CSVTable1 writes Table I rows as CSV.
func CSVTable1(w io.Writer, rows []Table1Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Dataset, itoa(int64(r.NumSets)), ftoa(r.AvgSetSize), ftoa(r.SetsPerToken)})
	}
	return writeCSV(w, []string{"dataset", "num_sets", "avg_set_size", "sets_per_token"}, out)
}

// CSVTable2 writes Table II cells as CSV.
func CSVTable2(w io.Writer, cells []Table2Cell) error {
	out := make([][]string, 0, len(cells))
	for _, c := range cells {
		out = append(out, []string{
			c.Dataset, ftoa(c.Threshold),
			ftoa(c.CP.Seconds()), ftoa(c.MH.Seconds()), ftoa(c.ALL.Seconds()),
			ftoa(c.CPRecall), ftoa(c.MHRecall), itoa(int64(c.Results)),
		})
	}
	return writeCSV(w, []string{
		"dataset", "threshold", "cp_seconds", "mh_seconds", "all_seconds",
		"cp_recall", "mh_recall", "results",
	}, out)
}

// CSVFig2 writes Figure 2 points as CSV.
func CSVFig2(w io.Writer, points []Fig2Point) error {
	out := make([][]string, 0, len(points))
	for _, p := range points {
		out = append(out, []string{p.Dataset, ftoa(p.Threshold), ftoa(p.Speedup)})
	}
	return writeCSV(w, []string{"dataset", "threshold", "speedup"}, out)
}

// CSVFig3 writes Figure 3 points as CSV.
func CSVFig3(w io.Writer, points []Fig3Point) error {
	out := make([][]string, 0, len(points))
	for _, p := range points {
		out = append(out, []string{
			p.Dataset, p.Param, ftoa(p.Value), ftoa(p.Time.Seconds()), ftoa(p.Relative),
		})
	}
	return writeCSV(w, []string{"dataset", "param", "value", "seconds", "relative"}, out)
}

// CSVTable4 writes Table IV rows as CSV.
func CSVTable4(w io.Writer, rows []Table4Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, ftoa(r.Threshold), r.Algorithm,
			itoa(r.PreCandidates), itoa(r.Candidates), itoa(r.Results),
		})
	}
	return writeCSV(w, []string{
		"dataset", "threshold", "algorithm", "pre_candidates", "candidates", "results",
	}, out)
}

// CSVAblation writes stopping-strategy rows as CSV.
func CSVAblation(w io.Writer, rows []AblationRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Dataset, r.Strategy, ftoa(r.Time.Seconds()), ftoa(r.Recall)})
	}
	return writeCSV(w, []string{"dataset", "strategy", "seconds", "recall"}, out)
}

// CSVTheory writes recursion-bound rows as CSV.
func CSVTheory(w io.Writer, rows []TheoryRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, itoa(int64(r.N)), itoa(int64(r.MaxDepth)), ftoa(r.DepthBound),
			itoa(r.PeakLiveMass), itoa(r.NodeMass), itoa(r.Points), itoa(r.Nodes),
		})
	}
	return writeCSV(w, []string{
		"dataset", "n", "max_depth", "depth_bound", "peak_live_mass",
		"node_mass", "bruteforced_points", "nodes",
	}, out)
}

// CSVBayes writes BayesLSH comparison rows as CSV.
func CSVBayes(w io.Writer, rows []BayesRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, ftoa(r.Threshold), ftoa(r.Bayes.Seconds()), ftoa(r.CP.Seconds()), ftoa(r.Recall),
		})
	}
	return writeCSV(w, []string{"dataset", "threshold", "bayes_seconds", "cp_seconds", "recall"}, out)
}
