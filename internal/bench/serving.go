package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"time"

	"repro/internal/cpindex"
	"repro/internal/shard"
)

// ServingRow is one measurement of the serving benchmark: batch-query
// throughput of a ShardedIndex for one (dataset, shard count, worker
// count) cell, with a determinism check against the single-worker run of
// the same cell.
type ServingRow struct {
	Dataset string  `json:"dataset"`
	Lambda  float64 `json:"lambda"`
	Shards  int     `json:"shards"`
	Workers int     `json:"workers"`
	// Topology is "local" (all shards in-process) or "remote" (every
	// primary shard moved to one of two in-process HTTP peers, 2-way
	// replicated, no local copies — the distributed serving path).
	Topology string  `json:"topology"`
	Queries  int     `json:"queries"`
	Seconds  float64 `json:"seconds"`
	// QPS is batch-query throughput: queries answered per second.
	QPS float64 `json:"qps"`
	// BuildSeconds is the sharded index construction time for this cell
	// (outside the query timing); remote cells include shard shipping.
	BuildSeconds float64 `json:"build_seconds"`
	// Matches is the total match count across the batch.
	Matches int `json:"matches"`
	// Identical reports whether this cell's full result lists equal the
	// single-worker local results of the same (dataset, shards) cell —
	// the serving layer's determinism contract (and, for remote cells,
	// the local/remote equivalence contract), verified every run.
	Identical bool `json:"identical_to_sequential"`
}

// DefaultShardCounts is the shard ladder of the serving benchmark.
func DefaultShardCounts() []int {
	return []int{1, 2, 4, 8}
}

// RunServingBench measures ShardedIndex.QueryBatch throughput: every set
// of each workload is queried back against the sharded index (λ=0.5,
// QueryAll semantics) in one batch, across shard and worker counts and
// both topologies — all-local, and distributed with every primary shard
// moved to one of two in-process HTTP peers (2-way replication, no local
// copies), so the recorded trajectory covers the remote fan-out/merge
// path and its equivalence flag. The index is rebuilt per cell — builds
// are deterministic, so the ladder queries identical structures and
// result equality is meaningful.
func RunServingBench(workloads []Workload, shardCounts, workerCounts []int, cfg Config, progress io.Writer) []ServingRow {
	const lambda = 0.5
	var rows []ServingRow
	for _, w := range workloads {
		for _, shards := range shardCounts {
			var base [][]cpindex.Match
			measure := func(workers int, topology string, build func(opts *shard.Options) (*shard.Index, error)) {
				opts := &shard.Options{Shards: shards, Seed: cfg.Seed, Workers: workers}
				var ix *shard.Index
				var buildErr error
				buildT := timed(1, func() { ix, buildErr = build(opts) })
				var results [][]cpindex.Match
				var queryErr error
				var d time.Duration
				if buildErr == nil {
					d = timed(cfg.Runs, func() {
						results, queryErr = ix.QueryBatchErr(w.Sets)
					})
				}
				if err := buildErr; err != nil || queryErr != nil {
					if err == nil {
						err = queryErr
					}
					// A failed cell still emits its row — with the
					// equivalence flag false, so the CI gate fails loudly
					// instead of silently losing the topology's coverage.
					rows = append(rows, ServingRow{
						Dataset: w.Name, Lambda: lambda, Shards: shards,
						Workers: workers, Topology: topology, Queries: len(w.Sets),
					})
					if progress != nil {
						fmt.Fprintf(progress, "serving  %-12s shards=%-2d workers=%-2d topology=%s FAILED: %v\n",
							w.Name, shards, workers, topology, err)
					}
					return
				}
				row := ServingRow{
					Dataset:      w.Name,
					Lambda:       lambda,
					Shards:       shards,
					Workers:      workers,
					Topology:     topology,
					Queries:      len(w.Sets),
					Seconds:      d.Seconds(),
					QPS:          float64(len(w.Sets)) / d.Seconds(),
					BuildSeconds: buildT.Seconds(),
				}
				for _, ms := range results {
					row.Matches += len(ms)
				}
				if base == nil {
					base = results
				}
				row.Identical = equalBatches(base, results)
				rows = append(rows, row)
				if progress != nil {
					fmt.Fprintf(progress, "serving  %-12s shards=%-2d workers=%-2d topology=%-6s qps=%10.0f matches=%-7d identical=%v\n",
						w.Name, shards, workers, topology, row.QPS, row.Matches, row.Identical)
				}
			}
			for _, workers := range workerCounts {
				measure(workers, "local", func(opts *shard.Options) (*shard.Index, error) {
					return shard.Build(w.Sets, lambda, opts), nil
				})
			}
			// The distributed ladder: two in-process peers, each primary
			// shard shipped to both (2-way replication) with the local
			// copies released, so every answer crosses the wire. The base
			// results are the single-worker local cell's — the Identical
			// flag is the local/remote equivalence contract in CI.
			peerA := httptest.NewServer(shard.NewServer(shard.Build(nil, lambda, &shard.Options{})))
			peerB := httptest.NewServer(shard.NewServer(shard.Build(nil, lambda, &shard.Options{})))
			peers := []string{peerA.URL, peerB.URL}
			for _, workers := range workerCounts {
				measure(workers, "remote", func(opts *shard.Options) (*shard.Index, error) {
					ix := shard.Build(w.Sets, lambda, opts)
					err := ix.Distribute(peers, &shard.DistributeOptions{Replicas: 2, KeepLocal: false})
					return ix, err
				})
			}
			peerA.Close()
			peerB.Close()
		}
	}
	return rows
}

// PlacementChurn is the placement-GC soak recorded alongside the serving
// rows: a distributed index driven through repeated seal + compact +
// re-distribute rounds against two live peers, then audited. GCClean is
// the control-plane contract — after the churn every peer hosts exactly
// the keys of the current ring (no superseded key survives) and the
// coordinator's registry tracks exactly those keys. Identical is the
// usual byte-identity contract against the all-local twin that saw the
// same mutations. CI gates on both flags.
type PlacementChurn struct {
	Dataset string  `json:"dataset"`
	Lambda  float64 `json:"lambda"`
	Rounds  int     `json:"rounds"`
	// RingKeys is the final remote-backed ring size; HostedA/HostedB the
	// key counts actually held by the two peers (each must equal RingKeys
	// under 2-way replication); TrackedKeys the coordinator registry size.
	RingKeys    int `json:"ring_keys"`
	HostedA     int `json:"hosted_a"`
	HostedB     int `json:"hosted_b"`
	TrackedKeys int `json:"tracked_keys"`
	// Seconds is the wall time of the whole churn (builds, shipping,
	// compactions and the final audit queries).
	Seconds   float64 `json:"seconds"`
	GCClean   bool    `json:"placement_gc_clean"`
	Identical bool    `json:"identical_to_sequential"`
}

// RunPlacementChurn drives the placement control plane through the load
// pattern it exists for: build over two thirds of the workload,
// distribute to two in-process peers (2-way replication, no local
// copies), then churn the rest through seal-sized Adds with every third
// id deleted, a Compact — which recalls remote victims over the verified
// fetch-back path and sweeps their hosted copies — and a re-distribution
// of the merged ring, every round. The audit at the end is the PR's
// acceptance criterion in executable form: peers host exactly the
// current ring's keys, and answers are byte-identical to the all-local
// reference index that saw the same mutation sequence.
func RunPlacementChurn(w Workload, cfg Config, progress io.Writer) PlacementChurn {
	const lambda = 0.5
	const rounds = 4
	base := w.Sets[:2*len(w.Sets)/3]
	extra := w.Sets[2*len(w.Sets)/3:]
	slab := maxInt(len(extra)/rounds, 1)
	merge := maxInt(slab/3, 8)
	opts := func() *shard.Options {
		return &shard.Options{
			Shards:         2,
			MergeThreshold: merge,
			Trees:          2,
			LeafSize:       1 << 30,
			Seed:           cfg.Seed,
			Workers:        0,
		}
	}

	srvA := shard.NewServer(shard.Build(nil, lambda, &shard.Options{}))
	srvB := shard.NewServer(shard.Build(nil, lambda, &shard.Options{}))
	peerA := httptest.NewServer(srvA)
	peerB := httptest.NewServer(srvB)
	defer peerA.Close()
	defer peerB.Close()
	peers := []string{peerA.URL, peerB.URL}
	dopt := &shard.DistributeOptions{Replicas: 2, KeepLocal: false}

	out := PlacementChurn{Dataset: w.Name, Lambda: lambda, Rounds: rounds}
	local := shard.Build(base, lambda, opts())
	dist := shard.Build(base, lambda, opts())
	var identical = true
	elapsed := timed(1, func() {
		if err := dist.Distribute(peers, dopt); err != nil {
			if progress != nil {
				fmt.Fprintf(progress, "placement churn FAILED: initial Distribute: %v\n", err)
			}
			return
		}
		for round := 0; round < rounds; round++ {
			lo, hi := round*slab, (round+1)*slab
			if round == rounds-1 || hi > len(extra) {
				hi = len(extra)
			}
			if lo < hi {
				localIDs := local.Add(extra[lo:hi])
				distIDs := dist.Add(extra[lo:hi])
				for j := 0; j < len(localIDs); j += 3 {
					local.Delete(localIDs[j])
					dist.Delete(distIDs[j])
				}
			}
			local.Compact()
			dist.Compact()
			if err := dist.Distribute(peers, dopt); err != nil {
				if progress != nil {
					fmt.Fprintf(progress, "placement churn FAILED: round %d Distribute: %v\n", round, err)
				}
				return
			}
			want, err1 := local.QueryBatchErr(w.Sets)
			got, err2 := dist.QueryBatchErr(w.Sets)
			if err1 != nil || err2 != nil || !equalBatches(want, got) {
				identical = false
			}
		}
	})

	st := dist.Stats()
	keysA, keysB := srvA.HostedKeys(), srvB.HostedKeys()
	out.RingKeys = st.RemoteShards
	out.HostedA, out.HostedB = len(keysA), len(keysB)
	out.TrackedKeys = st.PlacementKeys
	out.Seconds = elapsed.Seconds()
	sameKeys := len(keysA) == len(keysB)
	for i := 0; sameKeys && i < len(keysA); i++ {
		sameKeys = keysA[i] == keysB[i]
	}
	out.GCClean = st.RemoteShards > 0 && sameKeys &&
		len(keysA) == st.RemoteShards &&
		st.PlacementKeys == st.RemoteShards
	out.Identical = identical && st.RemoteShards > 0
	if progress != nil {
		fmt.Fprintf(progress, "placement churn %-12s rounds=%d ring=%d hosted=%d/%d tracked=%d gc_clean=%v identical=%v\n",
			w.Name, out.Rounds, out.RingKeys, out.HostedA, out.HostedB, out.TrackedKeys, out.GCClean, out.Identical)
	}
	return out
}

// equalBatches reports whether two batch results are element-wise equal.
// Both are sorted by global id per query, so equality is positional.
func equalBatches(a, b [][]cpindex.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// WriteServingJSON emits the serving and compaction measurements as
// indented JSON — the BENCH_serving.json artifact recorded by
// `make bench` alongside BENCH_parallel.json. Both row arrays carry
// identical_to_sequential flags; CI fails the bench job if any is false.
// scrape, when non-nil, records the /metrics exposition check (see
// CheckMetricsExposition); CI requires its ok flag too. churn, when
// non-nil, records the placement-GC soak (see RunPlacementChurn); CI
// requires its placement_gc_clean flag. tiering, when non-nil, records
// the hot/cold restore comparison (see RunTieringBench); CI requires its
// tiering_identical flag and a restore_speedup at or above the gate's
// floor.
func WriteServingJSON(w io.Writer, rows []ServingRow, compaction []CompactionRow, scrape *MetricsScrape, churn *PlacementChurn, tiering *TieringReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		GOMAXPROCS int             `json:"gomaxprocs"`
		Rows       []ServingRow    `json:"rows"`
		Compaction []CompactionRow `json:"compaction,omitempty"`
		Metrics    *MetricsScrape  `json:"metrics_scrape,omitempty"`
		Placement  *PlacementChurn `json:"placement_churn,omitempty"`
		Tiering    *TieringReport  `json:"tiering,omitempty"`
	}{runtime.GOMAXPROCS(0), rows, compaction, scrape, churn, tiering})
}

// PrintServing writes the serving table for human consumption.
func PrintServing(w io.Writer, rows []ServingRow) {
	fmt.Fprintf(w, "%-12s %7s %8s %-8s %8s %12s %9s %10s\n",
		"Dataset", "shards", "workers", "topology", "queries", "qps", "matches", "identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %7d %8d %-8s %8d %12.0f %9d %10v\n",
			r.Dataset, r.Shards, r.Workers, r.Topology, r.Queries, r.QPS, r.Matches, r.Identical)
	}
}
