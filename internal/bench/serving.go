package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"repro/internal/cpindex"
	"repro/internal/shard"
)

// ServingRow is one measurement of the serving benchmark: batch-query
// throughput of a ShardedIndex for one (dataset, shard count, worker
// count) cell, with a determinism check against the single-worker run of
// the same cell.
type ServingRow struct {
	Dataset string  `json:"dataset"`
	Lambda  float64 `json:"lambda"`
	Shards  int     `json:"shards"`
	Workers int     `json:"workers"`
	Queries int     `json:"queries"`
	Seconds float64 `json:"seconds"`
	// QPS is batch-query throughput: queries answered per second.
	QPS float64 `json:"qps"`
	// BuildSeconds is the sharded index construction time for this cell
	// (outside the query timing).
	BuildSeconds float64 `json:"build_seconds"`
	// Matches is the total match count across the batch.
	Matches int `json:"matches"`
	// Identical reports whether this cell's full result lists equal the
	// single-worker results of the same (dataset, shards) cell — the
	// serving layer's determinism contract, verified every run.
	Identical bool `json:"identical_to_sequential"`
}

// DefaultShardCounts is the shard ladder of the serving benchmark.
func DefaultShardCounts() []int {
	return []int{1, 2, 4, 8}
}

// RunServingBench measures ShardedIndex.QueryBatch throughput: every set
// of each workload is queried back against the sharded index (λ=0.5,
// QueryAll semantics) in one batch, across shard and worker counts. The
// index is rebuilt per cell — builds are deterministic, so the worker
// ladder queries identical structures and result equality is meaningful.
func RunServingBench(workloads []Workload, shardCounts, workerCounts []int, cfg Config, progress io.Writer) []ServingRow {
	const lambda = 0.5
	var rows []ServingRow
	for _, w := range workloads {
		for _, shards := range shardCounts {
			var base [][]cpindex.Match
			for _, workers := range workerCounts {
				opts := &shard.Options{Shards: shards, Seed: cfg.Seed, Workers: workers}
				var ix *shard.Index
				buildT := timed(1, func() { ix = shard.Build(w.Sets, lambda, opts) })
				var results [][]cpindex.Match
				d := timed(cfg.Runs, func() {
					results = ix.QueryBatch(w.Sets)
				})
				row := ServingRow{
					Dataset:      w.Name,
					Lambda:       lambda,
					Shards:       shards,
					Workers:      workers,
					Queries:      len(w.Sets),
					Seconds:      d.Seconds(),
					QPS:          float64(len(w.Sets)) / d.Seconds(),
					BuildSeconds: buildT.Seconds(),
				}
				for _, ms := range results {
					row.Matches += len(ms)
				}
				if workers == workerCounts[0] {
					base = results
				}
				row.Identical = equalBatches(base, results)
				rows = append(rows, row)
				if progress != nil {
					fmt.Fprintf(progress, "serving  %-12s shards=%-2d workers=%-2d qps=%10.0f matches=%-7d identical=%v\n",
						w.Name, shards, workers, row.QPS, row.Matches, row.Identical)
				}
			}
		}
	}
	return rows
}

// equalBatches reports whether two batch results are element-wise equal.
// Both are sorted by global id per query, so equality is positional.
func equalBatches(a, b [][]cpindex.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// WriteServingJSON emits the serving and compaction measurements as
// indented JSON — the BENCH_serving.json artifact recorded by
// `make bench` alongside BENCH_parallel.json. Both row arrays carry
// identical_to_sequential flags; CI fails the bench job if any is false.
func WriteServingJSON(w io.Writer, rows []ServingRow, compaction []CompactionRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		GOMAXPROCS int             `json:"gomaxprocs"`
		Rows       []ServingRow    `json:"rows"`
		Compaction []CompactionRow `json:"compaction,omitempty"`
	}{runtime.GOMAXPROCS(0), rows, compaction})
}

// PrintServing writes the serving table for human consumption.
func PrintServing(w io.Writer, rows []ServingRow) {
	fmt.Fprintf(w, "%-12s %7s %8s %8s %12s %9s %10s\n",
		"Dataset", "shards", "workers", "queries", "qps", "matches", "identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %7d %8d %8d %12.0f %9d %10v\n",
			r.Dataset, r.Shards, r.Workers, r.Queries, r.QPS, r.Matches, r.Identical)
	}
}
