package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	return rows
}

func TestCSVTable1(t *testing.T) {
	var buf bytes.Buffer
	err := CSVTable1(&buf, []Table1Row{
		{Dataset: "X", NumSets: 10, AvgSetSize: 2.5, SetsPerToken: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 2 || rows[1][0] != "X" || rows[1][1] != "10" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCSVTable2(t *testing.T) {
	var buf bytes.Buffer
	err := CSVTable2(&buf, []Table2Cell{{
		Dataset: "Y", Threshold: 0.5,
		CP: 100 * time.Millisecond, MH: time.Second, ALL: 2 * time.Second,
		CPRecall: 0.95, MHRecall: 0.91, Results: 42,
	}})
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 2 || rows[1][2] != "0.1" || rows[1][7] != "42" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCSVWritersProduceHeaders(t *testing.T) {
	cases := map[string]func(*bytes.Buffer) error{
		"fig2": func(b *bytes.Buffer) error {
			return CSVFig2(b, []Fig2Point{{Dataset: "A", Threshold: 0.5, Speedup: 3}})
		},
		"fig3": func(b *bytes.Buffer) error {
			return CSVFig3(b, []Fig3Point{{Dataset: "A", Param: "limit", Value: 250}})
		},
		"table4": func(b *bytes.Buffer) error {
			return CSVTable4(b, []Table4Row{{Dataset: "A", Threshold: 0.5, Algorithm: "CP"}})
		},
		"ablation": func(b *bytes.Buffer) error {
			return CSVAblation(b, []AblationRow{{Dataset: "A", Strategy: "adaptive"}})
		},
		"theory": func(b *bytes.Buffer) error {
			return CSVTheory(b, []TheoryRow{{Dataset: "A", N: 5}})
		},
		"bayes": func(b *bytes.Buffer) error {
			return CSVBayes(b, []BayesRow{{Dataset: "A", Threshold: 0.5}})
		},
	}
	for name, write := range cases {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) != 2 {
			t.Fatalf("%s: %d lines, want header + 1 row", name, len(lines))
		}
		if !strings.Contains(lines[0], "dataset") {
			t.Errorf("%s: header missing dataset column: %q", name, lines[0])
		}
	}
}

func TestRunTheorySmall(t *testing.T) {
	ws := []Workload{mustWorkload(t, "TOKENS10K")}
	rows := RunTheory(ws, DefaultConfig(), nil)
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	// A workload below the brute-force limit is finished at the root
	// (depth 0, one node per repetition); only the mass accounting is
	// unconditional.
	if r.Nodes == 0 || r.PeakLiveMass < int64(r.N) {
		t.Errorf("implausible theory row: %+v", r)
	}
	var buf bytes.Buffer
	PrintTheory(&buf, rows)
	if !strings.Contains(buf.String(), "TOKENS10K") {
		t.Error("theory output missing dataset")
	}
}
