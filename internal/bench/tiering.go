package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/shard"
)

// TieringReport is the storage-tier measurement recorded with the
// serving rows: the same saved index restored hot (full decode) and cold
// (mmap with lazy decode), comparing restore latency, Go-visible
// resident memory, and — the contract the tiers are allowed to differ on
// nothing else — byte-identity of every query answer. CI gates on
// Identical and on RestoreSpeedup staying at or above the floor a lazy
// open must clear.
type TieringReport struct {
	Dataset string  `json:"dataset"`
	Lambda  float64 `json:"lambda"`
	Shards  int     `json:"shards"`
	Sets    int     `json:"sets"`
	// Restore latency: best-of-N Load of the same directory per tier.
	HotRestoreSeconds  float64 `json:"hot_restore_seconds"`
	ColdRestoreSeconds float64 `json:"cold_restore_seconds"`
	// RestoreSpeedup is hot/cold — how much faster the mmap-backed open
	// is than the full decode.
	RestoreSpeedup float64 `json:"restore_speedup"`
	// Resident heap bytes retained by one loaded index per tier
	// (steady-state HeapAlloc delta after GC). Cold shards keep their
	// bytes in the page cache, not the Go heap, so ColdResidentBytes
	// excludes the mapped containers.
	HotResidentBytes  uint64 `json:"hot_resident_bytes"`
	ColdResidentBytes uint64 `json:"cold_resident_bytes"`
	// Queries ran against both restored indexes; Identical is the
	// tiering equivalence contract: cold answers byte-identical to hot.
	Queries   int  `json:"queries"`
	Identical bool `json:"tiering_identical"`
}

// heapLive forces a collection and reports live heap bytes.
func heapLive() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// RunTieringBench saves one sharded index and restores it hot and cold,
// recording the restore-time and resident-memory trade plus the
// cold-query equivalence flag. Restore timings are best-of-N (N ≥ 3) so
// the speedup ratio is stable at smoke scale.
func RunTieringBench(w Workload, cfg Config, progress io.Writer) TieringReport {
	const lambda = 0.5
	const shards = 4
	out := TieringReport{Dataset: w.Name, Lambda: lambda, Shards: shards, Sets: len(w.Sets), Queries: len(w.Sets)}
	fail := func(err error) TieringReport {
		if progress != nil {
			fmt.Fprintf(progress, "tiering  %-12s FAILED: %v\n", w.Name, err)
		}
		return out
	}

	x := shard.Build(w.Sets, lambda, &shard.Options{Shards: shards, Seed: cfg.Seed, Workers: cfg.Workers})
	x.Flush()
	want, err := x.QueryBatchErr(w.Sets)
	if err != nil {
		return fail(err)
	}
	dir, err := os.MkdirTemp("", "cps-tiering-*")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(dir)
	if err := x.Save(dir); err != nil {
		return fail(err)
	}

	runs := maxInt(cfg.Runs, 3)
	restore := func(tier shard.Tier) (*shard.Index, float64, uint64, error) {
		var ix *shard.Index
		var loadErr error
		d := timed(runs, func() {
			ix, loadErr = shard.LoadWithOptions(dir, shard.LoadOptions{Workers: cfg.Workers, Tiering: tier})
		})
		if loadErr != nil {
			return nil, 0, 0, loadErr
		}
		// Steady-state retention: reload once more across a GC'd baseline
		// so the delta is what one resident index pins, not load churn.
		before := heapLive()
		ix, loadErr = shard.LoadWithOptions(dir, shard.LoadOptions{Workers: cfg.Workers, Tiering: tier})
		if loadErr != nil {
			return nil, 0, 0, loadErr
		}
		resident := heapLive() - before
		runtime.KeepAlive(ix)
		return ix, d.Seconds(), resident, nil
	}

	hot, hotSec, hotRes, err := restore(shard.TierHot)
	if err != nil {
		return fail(err)
	}
	cold, coldSec, coldRes, err := restore(shard.TierCold)
	if err != nil {
		return fail(err)
	}
	out.HotRestoreSeconds, out.HotResidentBytes = hotSec, hotRes
	out.ColdRestoreSeconds, out.ColdResidentBytes = coldSec, coldRes
	if coldSec > 0 {
		out.RestoreSpeedup = hotSec / coldSec
	}
	if st := cold.Stats(); st.ColdShards == 0 || st.HotShards != 0 {
		return fail(fmt.Errorf("cold restore produced %d cold / %d hot shards", st.ColdShards, st.HotShards))
	}

	hotGot, err1 := hot.QueryBatchErr(w.Sets)
	coldGot, err2 := cold.QueryBatchErr(w.Sets)
	if err1 != nil || err2 != nil {
		if err1 == nil {
			err1 = err2
		}
		return fail(err1)
	}
	out.Identical = equalBatches(want, hotGot) && equalBatches(want, coldGot)
	if progress != nil {
		fmt.Fprintf(progress, "tiering  %-12s shards=%d hot=%.4fs cold=%.4fs speedup=%.1fx resident=%d/%d identical=%v\n",
			w.Name, shards, hotSec, coldSec, out.RestoreSpeedup, hotRes, coldRes, out.Identical)
	}
	return out
}

// PrintTiering writes the tiering report for human consumption.
func PrintTiering(w io.Writer, r TieringReport) {
	fmt.Fprintf(w, "%-12s %7s %12s %12s %9s %14s %14s %10s\n",
		"Dataset", "shards", "hot_restore", "cold_restore", "speedup", "hot_resident", "cold_resident", "identical")
	fmt.Fprintf(w, "%-12s %7d %11.4fs %11.4fs %8.1fx %14d %14d %10v\n",
		r.Dataset, r.Shards, r.HotRestoreSeconds, r.ColdRestoreSeconds,
		r.RestoreSpeedup, r.HotResidentBytes, r.ColdResidentBytes, r.Identical)
}
