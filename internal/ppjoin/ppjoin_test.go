package ppjoin

import (
	"math/rand"
	"testing"

	"repro/internal/allpairs"
	"repro/internal/datagen"
	"repro/internal/intset"
	"repro/internal/stats"
	"repro/internal/verify"
)

func randomSets(seed int64, n, maxLen, universe int) [][]uint32 {
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]uint32, n)
	for i := range sets {
		m := 2 + rng.Intn(maxLen-1)
		s := make([]uint32, 0, m)
		for j := 0; j < m; j++ {
			s = append(s, uint32(rng.Intn(universe)))
		}
		s = intset.Normalize(s)
		for len(s) < 2 {
			s = intset.Normalize(append(s, uint32(rng.Intn(universe))))
		}
		sets[i] = s
	}
	return sets
}

func TestExactAgainstBruteForce(t *testing.T) {
	for _, tc := range []struct {
		seed              int64
		n, maxLen, domain int
	}{
		{10, 150, 12, 30},
		{11, 200, 20, 200},
		{12, 100, 40, 60},
		{13, 300, 8, 2000},
	} {
		sets := randomSets(tc.seed, tc.n, tc.maxLen, tc.domain)
		for _, lambda := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
			want := verify.BruteForceJoin(sets, lambda)
			got, counters := Join(sets, lambda)
			if !stats.EqualPairSets(got, want) {
				t.Fatalf("seed=%d λ=%v: PPJoin %d pairs, brute force %d; missing=%v",
					tc.seed, lambda, len(got), len(want), stats.Missing(got, want))
			}
			if counters.Results != int64(len(got)) {
				t.Errorf("Results counter %d != %d pairs", counters.Results, len(got))
			}
		}
	}
}

// TestPositionalFilterPrunes: on dense data PPJoin must verify no more
// candidates than AllPairs (the positional filter only removes candidates).
func TestPositionalFilterPrunes(t *testing.T) {
	ds := datagen.Uniform(600, 12, 80, 19) // dense: long inverted lists
	_, cAll := allpairs.Join(ds.Sets, 0.6)
	_, cPP := Join(ds.Sets, 0.6)
	if cPP.Candidates > cAll.Candidates {
		t.Errorf("PPJoin verified %d candidates, AllPairs %d; positional filter ineffective",
			cPP.Candidates, cAll.Candidates)
	}
	if cPP.Results != cAll.Results {
		t.Errorf("result counts differ: PPJoin %d, AllPairs %d", cPP.Results, cAll.Results)
	}
}

func TestPrunedStateDoesNotLeak(t *testing.T) {
	// Regression-style test: construct a workload with repeated probe
	// patterns so that a leaked `pruned` flag would suppress later results.
	sets := [][]uint32{
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{1, 20, 21, 22, 23, 24, 25, 26, 27, 28}, // shares only token 1: pruned early
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 11},         // J = 9/11 with set 0
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},         // duplicate of set 0
	}
	want := verify.BruteForceJoin(sets, 0.5)
	got, _ := Join(sets, 0.5)
	if !stats.EqualPairSets(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTinyInputs(t *testing.T) {
	if got, _ := Join(nil, 0.5); got != nil {
		t.Errorf("Join(nil) = %v", got)
	}
	got, _ := Join([][]uint32{{1, 2}, {1, 2}}, 0.9)
	if len(got) != 1 {
		t.Errorf("Join(two identical) = %v", got)
	}
}

func TestOnGeneratedWorkloads(t *testing.T) {
	zipf := datagen.Zipf(400, 15, 400, 0.9, 20)
	for _, lambda := range []float64{0.5, 0.7, 0.9} {
		want := verify.BruteForceJoin(zipf.Sets, lambda)
		got, _ := Join(zipf.Sets, lambda)
		if !stats.EqualPairSets(got, want) {
			t.Fatalf("λ=%v: got %d pairs, want %d", lambda, len(got), len(want))
		}
	}
}

func BenchmarkPPJoinUniform(b *testing.B) {
	ds := datagen.Uniform(2000, 10, 300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(ds.Sets, 0.5)
	}
}
