// Package ppjoin implements the PPJoin exact set similarity join of Xiao,
// Wang, Lin, Yu and Wang (TODS 2011): AllPairs-style prefix filtering
// extended with a positional filter that discards candidates whose maximum
// attainable overlap — given the positions at which prefix tokens matched —
// cannot reach the equivalent-overlap threshold.
//
// PPJoin is part of the exact prefix-filter family surveyed by Mann et al.;
// the CPSJoin paper reports that ALLPAIRS is within a small factor of the
// best family member on every dataset. Implementing it gives the benchmark
// harness a second exact baseline and tests the claim locally.
package ppjoin

import (
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/intset"
	"repro/internal/verify"
)

type posting struct {
	id  uint32 // index into size-sorted collection
	pos uint32 // token position within the indexed set's prefix
}

// Join computes the exact self-join at Jaccard threshold lambda. Input sets
// must be normalized; they are not modified. Pairs are returned in original
// indices.
func Join(sets [][]uint32, lambda float64) ([]verify.Pair, verify.Counters) {
	return JoinWorkers(sets, lambda, 1)
}

// JoinWorkers is Join executed with the given worker count on the shared
// execution layer (0 = sequential, negative = GOMAXPROCS). Like the
// parallel AllPairs, it materializes the complete positional prefix index
// up front and probes concurrently against postings of strictly smaller
// ids; the positional filter state is per probe, so pairs and counters
// are identical to the sequential run for any worker count.
func JoinWorkers(sets [][]uint32, lambda float64, workers int) ([]verify.Pair, verify.Counters) {
	if len(sets) < 2 {
		return nil, verify.Counters{}
	}
	if workers = exec.EffectiveWorkers(workers); workers > 1 {
		return joinParallel(sets, lambda, workers)
	}
	var counters verify.Counters
	ds := (&dataset.Dataset{Sets: sets}).Clone()
	ds.RemapByFrequency()
	perm := ds.SortBySize()
	sorted := ds.Sets

	index := make(map[uint32][]posting)
	listStart := make(map[uint32]int)

	// alpha[y] accumulates matched prefix overlap; pruned[y] marks
	// candidates disqualified by the positional filter for the current
	// probe set.
	alpha := make([]int32, len(sorted))
	pruned := make([]bool, len(sorted))
	touched := make([]uint32, 0, 1024)

	var pairs []verify.Pair

	for xi := 0; xi < len(sorted); xi++ {
		x := sorted[xi]
		sx := len(x)
		minsize := int(math.Ceil(lambda * float64(sx)))
		minOverlapProbe := int(math.Ceil(lambda * float64(sx)))
		if minOverlapProbe < 1 {
			minOverlapProbe = 1
		}
		pp := sx - minOverlapProbe + 1 // probe prefix
		touched = touched[:0]

		for p := 0; p < pp; p++ {
			tok := x[p]
			list := index[tok]
			start := listStart[tok]
			for start < len(list) && len(sorted[list[start].id]) < minsize {
				start++
			}
			if start > 0 {
				listStart[tok] = start
			}
			for _, post := range list[start:] {
				counters.PreCandidates++
				yi := post.id
				if pruned[yi] {
					continue
				}
				// A candidate is in touched iff alpha > 0 or pruned, so
				// record first contact before any state change.
				if alpha[yi] == 0 {
					touched = append(touched, yi)
				}
				y := sorted[yi]
				required := intset.JaccardOverlapBound(sx, len(y), lambda)
				// Positional filter: tokens matched so far plus everything
				// that can still match after positions p (in x) and
				// post.pos (in y).
				ubound := int(alpha[yi]) + 1 + min(sx-p-1, len(y)-int(post.pos)-1)
				if ubound < required {
					pruned[yi] = true
					continue
				}
				alpha[yi]++
			}
		}

		for _, yi := range touched {
			alpha[yi] = 0
			if pruned[yi] {
				pruned[yi] = false
				continue
			}
			counters.Candidates++
			y := sorted[yi]
			required := intset.JaccardOverlapBound(sx, len(y), lambda)
			if _, ok := intset.IntersectSizeAtLeast(x, y, required); ok {
				counters.Results++
				pairs = append(pairs, verify.MakePair(uint32(perm[xi]), uint32(perm[yi])))
			}
		}

		// Index the midprefix of x with positions.
		minOverlapIndex := int(math.Ceil(2 * lambda / (1 + lambda) * float64(sx)))
		if minOverlapIndex < 1 {
			minOverlapIndex = 1
		}
		ip := sx - minOverlapIndex + 1
		for p := 0; p < ip; p++ {
			index[x[p]] = append(index[x[p]], posting{id: uint32(xi), pos: uint32(p)})
		}
	}
	return pairs, counters
}

// joinParallel probes all sets concurrently against a fully materialized
// positional prefix index (see the AllPairs analogue for the candidate
// equivalence argument). The probe logic deliberately mirrors the
// sequential loop above — the sequential form is the paper-faithful
// reference, this one its order-independent reformulation — and
// TestParallelExactJoins pins the two in lockstep (pairs and counters).
func joinParallel(sets [][]uint32, lambda float64, workers int) ([]verify.Pair, verify.Counters) {
	ds := (&dataset.Dataset{Sets: sets}).Clone()
	ds.RemapByFrequency()
	perm := ds.SortBySize()
	sorted := ds.Sets
	n := len(sorted)

	index := make(map[uint32][]posting)
	for xi, x := range sorted {
		sx := len(x)
		minOverlapIndex := int(math.Ceil(2 * lambda / (1 + lambda) * float64(sx)))
		if minOverlapIndex < 1 {
			minOverlapIndex = 1
		}
		ip := sx - minOverlapIndex + 1
		for p := 0; p < ip; p++ {
			index[x[p]] = append(index[x[p]], posting{id: uint32(xi), pos: uint32(p)})
		}
	}

	type scratch struct {
		alpha   []int32
		pruned  []bool
		touched []uint32
		pairs   []verify.Pair
		c       verify.Counters
	}
	scr := make([]*scratch, workers)
	for i := range scr {
		scr[i] = &scratch{
			alpha:   make([]int32, n),
			pruned:  make([]bool, n),
			touched: make([]uint32, 0, 1024),
		}
	}

	probe := func(w *scratch, xi int) {
		x := sorted[xi]
		sx := len(x)
		minsize := int(math.Ceil(lambda * float64(sx)))
		minOverlapProbe := minsize
		if minOverlapProbe < 1 {
			minOverlapProbe = 1
		}
		pp := sx - minOverlapProbe + 1
		touched := w.touched[:0]

		for p := 0; p < pp; p++ {
			list := index[x[p]]
			start := sort.Search(len(list), func(i int) bool {
				return len(sorted[list[i].id]) >= minsize
			})
			for _, post := range list[start:] {
				yi := post.id
				if int(yi) >= xi {
					break
				}
				w.c.PreCandidates++
				if w.pruned[yi] {
					continue
				}
				if w.alpha[yi] == 0 {
					touched = append(touched, yi)
				}
				y := sorted[yi]
				required := intset.JaccardOverlapBound(sx, len(y), lambda)
				ubound := int(w.alpha[yi]) + 1 + min(sx-p-1, len(y)-int(post.pos)-1)
				if ubound < required {
					w.pruned[yi] = true
					continue
				}
				w.alpha[yi]++
			}
		}

		for _, yi := range touched {
			w.alpha[yi] = 0
			if w.pruned[yi] {
				w.pruned[yi] = false
				continue
			}
			w.c.Candidates++
			y := sorted[yi]
			required := intset.JaccardOverlapBound(sx, len(y), lambda)
			if _, ok := intset.IntersectSizeAtLeast(x, y, required); ok {
				w.c.Results++
				w.pairs = append(w.pairs, verify.MakePair(uint32(perm[xi]), uint32(perm[yi])))
			}
		}
		w.touched = touched[:0]
	}

	exec.RunChunks(workers, n, 0, func(c *exec.Ctx, lo, hi int) {
		w := scr[c.Worker()]
		for xi := lo; xi < hi; xi++ {
			probe(w, xi)
		}
	})

	var pairs []verify.Pair
	var counters verify.Counters
	for _, w := range scr {
		pairs = append(pairs, w.pairs...)
		counters.Add(w.c)
	}
	return pairs, counters
}
