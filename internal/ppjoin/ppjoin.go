// Package ppjoin implements the PPJoin exact set similarity join of Xiao,
// Wang, Lin, Yu and Wang (TODS 2011): AllPairs-style prefix filtering
// extended with a positional filter that discards candidates whose maximum
// attainable overlap — given the positions at which prefix tokens matched —
// cannot reach the equivalent-overlap threshold.
//
// PPJoin is part of the exact prefix-filter family surveyed by Mann et al.;
// the CPSJoin paper reports that ALLPAIRS is within a small factor of the
// best family member on every dataset. Implementing it gives the benchmark
// harness a second exact baseline and tests the claim locally.
package ppjoin

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/intset"
	"repro/internal/verify"
)

type posting struct {
	id  uint32 // index into size-sorted collection
	pos uint32 // token position within the indexed set's prefix
}

// Join computes the exact self-join at Jaccard threshold lambda. Input sets
// must be normalized; they are not modified. Pairs are returned in original
// indices.
func Join(sets [][]uint32, lambda float64) ([]verify.Pair, verify.Counters) {
	var counters verify.Counters
	if len(sets) < 2 {
		return nil, counters
	}
	ds := (&dataset.Dataset{Sets: sets}).Clone()
	ds.RemapByFrequency()
	perm := ds.SortBySize()
	sorted := ds.Sets

	index := make(map[uint32][]posting)
	listStart := make(map[uint32]int)

	// alpha[y] accumulates matched prefix overlap; pruned[y] marks
	// candidates disqualified by the positional filter for the current
	// probe set.
	alpha := make([]int32, len(sorted))
	pruned := make([]bool, len(sorted))
	touched := make([]uint32, 0, 1024)

	var pairs []verify.Pair

	for xi := 0; xi < len(sorted); xi++ {
		x := sorted[xi]
		sx := len(x)
		minsize := int(math.Ceil(lambda * float64(sx)))
		minOverlapProbe := int(math.Ceil(lambda * float64(sx)))
		if minOverlapProbe < 1 {
			minOverlapProbe = 1
		}
		pp := sx - minOverlapProbe + 1 // probe prefix
		touched = touched[:0]

		for p := 0; p < pp; p++ {
			tok := x[p]
			list := index[tok]
			start := listStart[tok]
			for start < len(list) && len(sorted[list[start].id]) < minsize {
				start++
			}
			if start > 0 {
				listStart[tok] = start
			}
			for _, post := range list[start:] {
				counters.PreCandidates++
				yi := post.id
				if pruned[yi] {
					continue
				}
				// A candidate is in touched iff alpha > 0 or pruned, so
				// record first contact before any state change.
				if alpha[yi] == 0 {
					touched = append(touched, yi)
				}
				y := sorted[yi]
				required := intset.JaccardOverlapBound(sx, len(y), lambda)
				// Positional filter: tokens matched so far plus everything
				// that can still match after positions p (in x) and
				// post.pos (in y).
				ubound := int(alpha[yi]) + 1 + min(sx-p-1, len(y)-int(post.pos)-1)
				if ubound < required {
					pruned[yi] = true
					continue
				}
				alpha[yi]++
			}
		}

		for _, yi := range touched {
			alpha[yi] = 0
			if pruned[yi] {
				pruned[yi] = false
				continue
			}
			counters.Candidates++
			y := sorted[yi]
			required := intset.JaccardOverlapBound(sx, len(y), lambda)
			if _, ok := intset.IntersectSizeAtLeast(x, y, required); ok {
				counters.Results++
				pairs = append(pairs, verify.MakePair(uint32(perm[xi]), uint32(perm[yi])))
			}
		}

		// Index the midprefix of x with positions.
		minOverlapIndex := int(math.Ceil(2 * lambda / (1 + lambda) * float64(sx)))
		if minOverlapIndex < 1 {
			minOverlapIndex = 1
		}
		ip := sx - minOverlapIndex + 1
		for p := 0; p < ip; p++ {
			index[x[p]] = append(index[x[p]], posting{id: uint32(xi), pos: uint32(p)})
		}
	}
	return pairs, counters
}
