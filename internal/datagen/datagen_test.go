package datagen

import (
	"math"
	"testing"

	"repro/internal/intset"
	"repro/internal/tabhash"
)

func TestTokensShape(t *testing.T) {
	cfg := DefaultTokensConfig(200, 1) // scaled-down cap for test speed
	cfg.PairsPerJ = 5
	ds, planted := Tokens(cfg)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Sets) < 100 {
		t.Fatalf("only %d sets generated", len(ds.Sets))
	}
	if len(planted) != 5*len(cfg.PlantedJs) {
		t.Fatalf("planted %d pairs, want %d", len(planted), 5*len(cfg.PlantedJs))
	}
	// Token cap respected.
	usage := make(map[uint32]int)
	for _, set := range ds.Sets {
		for _, tok := range set {
			usage[tok]++
			if int(tok) >= cfg.Universe {
				t.Fatalf("token %d outside universe %d", tok, cfg.Universe)
			}
		}
	}
	for tok, n := range usage {
		if n > cfg.TokenCap {
			t.Fatalf("token %d used %d times, cap %d", tok, n, cfg.TokenCap)
		}
	}
}

func TestTokensPlantedSimilarity(t *testing.T) {
	cfg := DefaultTokensConfig(300, 2)
	cfg.PairsPerJ = 8
	ds, planted := Tokens(cfg)
	// Average Jaccard of planted pairs per target value should be within
	// a few points of the target (they are sampled with that expectation).
	perJ := make(map[float64][]float64)
	for i, pair := range planted {
		target := cfg.PlantedJs[i/cfg.PairsPerJ]
		j := intset.Jaccard(ds.Sets[pair[0]], ds.Sets[pair[1]])
		perJ[target] = append(perJ[target], j)
	}
	for target, js := range perJ {
		sum := 0.0
		for _, j := range js {
			sum += j
		}
		mean := sum / float64(len(js))
		if math.Abs(mean-target) > 0.12 {
			t.Errorf("planted pairs at λ'=%v have mean J %v", target, mean)
		}
	}
}

func TestTokensBackgroundDissimilar(t *testing.T) {
	cfg := DefaultTokensConfig(150, 3)
	cfg.PairsPerJ = 0 // background only
	cfg.PlantedJs = nil
	ds, _ := Tokens(cfg)
	if len(ds.Sets) < 50 {
		t.Fatalf("only %d background sets", len(ds.Sets))
	}
	rng := tabhash.NewSplitMix64(4)
	sum, n := 0.0, 0
	for k := 0; k < 300; k++ {
		i, j := rng.Intn(len(ds.Sets)), rng.Intn(len(ds.Sets))
		if i == j {
			continue
		}
		sum += intset.Jaccard(ds.Sets[i], ds.Sets[j])
		n++
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.2) > 0.08 {
		t.Errorf("background mean Jaccard %v, want ~0.2", mean)
	}
}

func TestUniformStats(t *testing.T) {
	ds := Uniform(2000, 10, 200, 5)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	st := ds.ComputeStats()
	if st.NumSets != 2000 {
		t.Fatalf("NumSets = %d", st.NumSets)
	}
	if math.Abs(st.AvgSetSize-10) > 1 {
		t.Errorf("AvgSetSize = %v, want ~10", st.AvgSetSize)
	}
	if st.Universe > 200 {
		t.Errorf("universe %d exceeds bound", st.Universe)
	}
}

func TestZipfSkewProducesRareTokens(t *testing.T) {
	flat := Uniform(3000, 10, 1000, 6)
	skewed := Zipf(3000, 10, 1000, 1.0, 6)
	rare := func(ds interface{ TokenFrequencies() map[uint32]int }) int {
		n := 0
		for _, f := range ds.TokenFrequencies() {
			if f <= 2 {
				n++
			}
		}
		return n
	}
	rf, rs := rare(flat), rare(skewed)
	if rs <= rf {
		t.Errorf("skewed dataset has %d rare tokens, flat has %d; want more in skewed", rs, rf)
	}
}

func TestZipfValid(t *testing.T) {
	ds := Zipf(500, 8, 300, 0.8, 7)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, set := range ds.Sets {
		if len(set) < 2 {
			t.Fatalf("set too small: %v", set)
		}
	}
}

func TestPlantPairsSimilarity(t *testing.T) {
	ds := Uniform(500, 20, 5000, 8)
	for _, target := range []float64{0.5, 0.7, 0.9} {
		planted := PlantPairs(ds, 20, target, 9)
		if len(planted) == 0 {
			t.Fatalf("no pairs planted at %v", target)
		}
		sum := 0.0
		for _, p := range planted {
			sum += intset.Jaccard(ds.Sets[p[0]], ds.Sets[p[1]])
		}
		mean := sum / float64(len(planted))
		if math.Abs(mean-target) > 0.1 {
			t.Errorf("planted mean J %v, want ~%v", mean, target)
		}
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredStructure(t *testing.T) {
	const (
		clusters   = 30
		perCluster = 4
		mutation   = 0.1
	)
	ds := Clustered(clusters, perCluster, 20, 100000, mutation, 70)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Sets) != clusters*perCluster {
		t.Fatalf("%d sets, want %d", len(ds.Sets), clusters*perCluster)
	}
	// Within-cluster similarity concentrates near the analytical value.
	keep := (1 - mutation) * (1 - mutation)
	wantJ := keep / (2 - keep)
	sumIn, nIn := 0.0, 0
	sumOut, nOut := 0.0, 0
	rng := tabhash.NewSplitMix64(71)
	for k := 0; k < 500; k++ {
		i, j := rng.Intn(len(ds.Sets)), rng.Intn(len(ds.Sets))
		if i == j {
			continue
		}
		jac := intset.Jaccard(ds.Sets[i], ds.Sets[j])
		if i/perCluster == j/perCluster {
			sumIn += jac
			nIn++
		} else {
			sumOut += jac
			nOut++
		}
	}
	if nIn < 10 || nOut < 10 {
		t.Skip("sample too small")
	}
	meanIn, meanOut := sumIn/float64(nIn), sumOut/float64(nOut)
	if math.Abs(meanIn-wantJ) > 0.12 {
		t.Errorf("within-cluster mean J %v, want ~%v", meanIn, wantJ)
	}
	if meanOut > 0.05 {
		t.Errorf("cross-cluster mean J %v, want near 0", meanOut)
	}
}

func TestClusteredJoinRecovers(t *testing.T) {
	// A join at a threshold below the within-cluster similarity must
	// recover the cluster structure.
	ds := Clustered(20, 3, 24, 100000, 0.05, 72)
	pairs := 0
	for i := 0; i < len(ds.Sets); i++ {
		for j := i + 1; j < len(ds.Sets); j++ {
			if intset.Jaccard(ds.Sets[i], ds.Sets[j]) >= 0.6 {
				pairs++
			}
		}
	}
	want := 20 * 3 // 3 pairs per cluster of 3
	if pairs < want*8/10 {
		t.Errorf("only %d/%d within-cluster pairs above 0.6", pairs, want)
	}
}

func TestProfileGenerate(t *testing.T) {
	for _, name := range []string{"NETFLIX", "AOL", "DBLP"} {
		p, ok := ProfileByName(name)
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		ds := p.Generate(3000, 10)
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st := ds.ComputeStats()
		if st.NumSets < 2000 {
			t.Errorf("%s: only %d sets", name, st.NumSets)
		}
		// Average set size should be in the right ballpark (planting and
		// cleaning perturb it slightly).
		if st.AvgSetSize < p.AvgSetSize*0.6 || st.AvgSetSize > p.AvgSetSize*1.6 {
			t.Errorf("%s: avg set size %v, profile says %v", name, st.AvgSetSize, p.AvgSetSize)
		}
	}
}

func TestProfileByNameMissing(t *testing.T) {
	if _, ok := ProfileByName("NOPE"); ok {
		t.Error("ProfileByName returned ok for unknown name")
	}
}

func TestProfileSetsPerTokenPreserved(t *testing.T) {
	p, _ := ProfileByName("NETFLIX") // dense: sets/token should be large
	ds := p.Generate(2000, 11)
	st := ds.ComputeStats()
	sparse, _ := ProfileByName("AOL")
	ds2 := sparse.Generate(2000, 11)
	st2 := ds2.ComputeStats()
	if st.SetsPerToken <= st2.SetsPerToken {
		t.Errorf("NETFLIX sets/token (%v) should exceed AOL (%v) at equal scale",
			st.SetsPerToken, st2.SetsPerToken)
	}
}

func TestDeterminism(t *testing.T) {
	a := Uniform(200, 10, 100, 42)
	b := Uniform(200, 10, 100, 42)
	if len(a.Sets) != len(b.Sets) {
		t.Fatal("non-deterministic set count")
	}
	for i := range a.Sets {
		if !intset.Equal(a.Sets[i], b.Sets[i]) {
			t.Fatal("non-deterministic generation with fixed seed")
		}
	}
	c := Uniform(200, 10, 100, 43)
	same := true
	for i := range a.Sets {
		if !intset.Equal(a.Sets[i], c.Sets[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := tabhash.NewSplitMix64(12)
	for _, lambda := range []float64{3, 10, 100} {
		sum := 0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += poisson(rng, lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.2 {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
}
