// Package datagen generates the synthetic workloads used in the paper's
// evaluation (TOKENS, UNIFORM, ZIPF) plus scaled-down synthetic analogues
// of the real-world benchmark datasets of Mann et al., which are not
// redistributable. See DESIGN.md §4 for the substitution rationale.
package datagen

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/intset"
	"repro/internal/tabhash"
)

// TokensConfig describes a TOKENS-style dataset (Section VI-1 of the
// paper): a small universe where every token appears in a large, capped
// number of sets — the adversarial regime for prefix filtering.
type TokensConfig struct {
	Universe    int // d; the paper uses 1000
	TokenCap    int // max sets a token may appear in (10000/15000/20000)
	BackgroundJ float64
	PlantedJs   []float64 // expected Jaccard of planted pairs
	PairsPerJ   int       // planted pairs per value in PlantedJs
	Seed        uint64
}

// DefaultTokensConfig mirrors the paper's TOKENS generation: d=1000,
// background expected Jaccard 0.2, 100 planted sets (50 pairs) per
// λ' ∈ {0.55, 0.65, 0.75, 0.85, 0.95}.
func DefaultTokensConfig(tokenCap int, seed uint64) TokensConfig {
	return TokensConfig{
		Universe:    1000,
		TokenCap:    tokenCap,
		BackgroundJ: 0.2,
		PlantedJs:   []float64{0.55, 0.65, 0.75, 0.85, 0.95},
		PairsPerJ:   50,
		Seed:        seed,
	}
}

// setSizeFor returns the size of uniformly random subsets of [d] so that
// two independent draws have expected Jaccard similarity j:
// s = (2j/(1+j))·d (Section VI-1 of the paper).
func setSizeFor(j float64, universe int) int {
	s := int(math.Round(2 * j / (1 + j) * float64(universe)))
	if s < 1 {
		s = 1
	}
	if s > universe {
		s = universe
	}
	return s
}

// Tokens generates a TOKENS dataset. The number of sets is determined by
// the token cap: background sets are sampled (rejecting tokens at cap)
// until token budget is exhausted, exactly like the paper's construction.
// The returned plantedPairs lists index pairs with expected Jaccard
// PlantedJs (ground truth seeds for recall experiments).
func Tokens(cfg TokensConfig) (*dataset.Dataset, [][2]int) {
	rng := tabhash.NewSplitMix64(cfg.Seed)
	usage := make([]int, cfg.Universe)
	ds := &dataset.Dataset{Name: fmt.Sprintf("TOKENS-cap%d", cfg.TokenCap)}
	var planted [][2]int

	sampleSet := func(size int) []uint32 {
		// Sample `size` distinct tokens among those under cap. If fewer
		// than `size` remain under cap, take all of them.
		avail := make([]uint32, 0, cfg.Universe)
		for tok := 0; tok < cfg.Universe; tok++ {
			if usage[tok] < cfg.TokenCap {
				avail = append(avail, uint32(tok))
			}
		}
		if len(avail) == 0 {
			return nil
		}
		if size > len(avail) {
			size = len(avail)
		}
		// Partial Fisher-Yates over the availability pool.
		for i := 0; i < size; i++ {
			j := i + rng.Intn(len(avail)-i)
			avail[i], avail[j] = avail[j], avail[i]
		}
		set := append([]uint32(nil), avail[:size]...)
		for _, tok := range set {
			usage[tok]++
		}
		return intset.Normalize(set)
	}

	// Plant similar pairs first so caps don't starve them.
	for _, j := range cfg.PlantedJs {
		size := setSizeFor(j, cfg.Universe)
		for p := 0; p < cfg.PairsPerJ; p++ {
			a := sampleSet(size)
			b := sampleSet(size)
			if len(a) < 2 || len(b) < 2 {
				continue
			}
			ds.Sets = append(ds.Sets, a, b)
			planted = append(planted, [2]int{len(ds.Sets) - 2, len(ds.Sets) - 1})
		}
	}

	// Fill with background sets until the token budget runs out.
	bgSize := setSizeFor(cfg.BackgroundJ, cfg.Universe)
	for {
		set := sampleSet(bgSize)
		if len(set) < bgSize/2 || len(set) < 2 {
			break // caps nearly exhausted; stop like the paper's rejection sampler
		}
		ds.Sets = append(ds.Sets, set)
	}
	return ds, planted
}

// Uniform generates n sets whose tokens are drawn uniformly from a universe
// of the given size, with set sizes Poisson-distributed around avgSize
// (minimum 2). This reproduces the UNIFORM005 dataset shape: a flat token
// frequency distribution with no rare tokens for prefix filters to exploit.
func Uniform(n, avgSize, universe int, seed uint64) *dataset.Dataset {
	rng := tabhash.NewSplitMix64(seed)
	ds := &dataset.Dataset{Name: fmt.Sprintf("UNIFORM-n%d", n)}
	for i := 0; i < n; i++ {
		size := poisson(rng, float64(avgSize))
		if size < 2 {
			size = 2
		}
		if size > universe {
			size = universe
		}
		ds.Sets = append(ds.Sets, sampleDistinct(rng, size, func() uint32 {
			return uint32(rng.Intn(universe))
		}))
	}
	return ds
}

// Zipf generates n sets whose tokens follow a Zipf(s) popularity law over
// the universe. Higher skew produces a few very frequent tokens and a long
// tail of rare ones — the structure that favors prefix filtering.
func Zipf(n, avgSize, universe int, skew float64, seed uint64) *dataset.Dataset {
	rng := tabhash.NewSplitMix64(seed)
	zs := newZipfSampler(rng, universe, skew)
	ds := &dataset.Dataset{Name: fmt.Sprintf("ZIPF-n%d-s%.2f", n, skew)}
	for i := 0; i < n; i++ {
		size := poisson(rng, float64(avgSize))
		if size < 2 {
			size = 2
		}
		if size > universe {
			size = universe
		}
		ds.Sets = append(ds.Sets, sampleDistinct(rng, size, zs.sample))
	}
	return ds
}

// sampleDistinct draws `size` distinct tokens using draw(), which must
// eventually produce enough distinct values.
func sampleDistinct(rng *tabhash.SplitMix64, size int, draw func() uint32) []uint32 {
	seen := make(map[uint32]bool, size)
	set := make([]uint32, 0, size)
	attempts := 0
	for len(set) < size {
		tok := draw()
		if !seen[tok] {
			seen[tok] = true
			set = append(set, tok)
		}
		attempts++
		if attempts > 1000*size {
			break // degenerate distribution; return what we have
		}
	}
	return intset.Normalize(set)
}

// poisson draws from a Poisson distribution with mean lambda (Knuth's
// method for small lambda, normal approximation above 30).
func poisson(rng *tabhash.SplitMix64, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation with continuity correction.
		v := lambda + math.Sqrt(lambda)*gaussian(rng) + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// gaussian draws a standard normal via Box-Muller.
func gaussian(rng *tabhash.SplitMix64) float64 {
	u1 := rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	u2 := rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// zipfSampler draws token ids with P(i) ∝ 1/(i+1)^s via inverse-CDF over a
// precomputed table (universe sizes here are modest).
type zipfSampler struct {
	rng *tabhash.SplitMix64
	cdf []float64
}

func newZipfSampler(rng *tabhash.SplitMix64, universe int, skew float64) *zipfSampler {
	cdf := make([]float64, universe)
	sum := 0.0
	for i := 0; i < universe; i++ {
		sum += 1 / math.Pow(float64(i+1), skew)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfSampler{rng: rng, cdf: cdf}
}

func (z *zipfSampler) sample() uint32 {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(z.cdf) {
		lo = len(z.cdf) - 1
	}
	return uint32(lo)
}

// PlantPairs injects `pairs` additional set pairs with expected Jaccard
// similarity j into ds, by cloning existing sets and resampling a fraction
// of their tokens from the donor's own tokens plus fresh ones drawn by the
// same process that would produce them. It returns the planted index pairs.
// Planting guarantees joinable mass at high thresholds in synthetic data.
func PlantPairs(ds *dataset.Dataset, pairs int, j float64, seed uint64) [][2]int {
	rng := tabhash.NewSplitMix64(seed)
	var planted [][2]int
	if len(ds.Sets) == 0 || pairs <= 0 {
		return planted
	}
	for p := 0; p < pairs; p++ {
		src := ds.Sets[rng.Intn(len(ds.Sets))]
		if len(src) < 2 {
			continue
		}
		// Build b by keeping a fraction of src and replacing the rest with
		// perturbed tokens. For |a|=|b|=s and shared o tokens,
		// J = o/(2s-o), so o = 2sJ/(1+J).
		s := len(src)
		o := int(math.Round(2 * float64(s) * j / (1 + j)))
		if o > s {
			o = s
		}
		a := append([]uint32(nil), src...)
		// Choose o tokens to keep (partial Fisher-Yates).
		perm := append([]uint32(nil), src...)
		for i := 0; i < o; i++ {
			k := i + rng.Intn(len(perm)-i)
			perm[i], perm[k] = perm[k], perm[i]
		}
		b := append([]uint32(nil), perm[:o]...)
		// Fill b back to size s with fresh tokens unlikely to collide.
		seen := make(map[uint32]bool, s)
		for _, tok := range b {
			seen[tok] = true
		}
		for len(b) < s {
			tok := uint32(rng.Next() >> 33) // 31-bit fresh token
			if !seen[tok] {
				seen[tok] = true
				b = append(b, tok)
			}
		}
		ds.Sets = append(ds.Sets, intset.Normalize(a), intset.Normalize(b))
		planted = append(planted, [2]int{len(ds.Sets) - 2, len(ds.Sets) - 1})
	}
	return planted
}

// Clustered generates a dataset of near-duplicate clusters: `clusters`
// groups of `perCluster` sets each, where every member is an independent
// mutation of the cluster's core set (each core token is kept with
// probability 1-mutation and otherwise replaced with a fresh token).
// Two members of one cluster then have expected Jaccard similarity about
// (1-mutation)² / (2 - (1-mutation)²), while members of different clusters
// are nearly disjoint. This is the archetypal entity-resolution workload:
// many small groups of records describing the same entity.
func Clustered(clusters, perCluster, coreSize, universe int, mutation float64, seed uint64) *dataset.Dataset {
	rng := tabhash.NewSplitMix64(seed)
	ds := &dataset.Dataset{Name: fmt.Sprintf("CLUSTERED-%dx%d", clusters, perCluster)}
	if coreSize < 2 {
		coreSize = 2
	}
	for c := 0; c < clusters; c++ {
		core := sampleDistinct(rng, coreSize, func() uint32 {
			return uint32(rng.Intn(universe))
		})
		for m := 0; m < perCluster; m++ {
			member := make([]uint32, 0, len(core))
			seen := make(map[uint32]bool, len(core))
			for _, tok := range core {
				if rng.Float64() >= mutation {
					if !seen[tok] {
						seen[tok] = true
						member = append(member, tok)
					}
					continue
				}
				// Replace with a fresh token outside the shared universe so
				// mutations never collide across members.
				for {
					fresh := uint32(universe) + uint32(rng.Next()>>40)
					if !seen[fresh] {
						seen[fresh] = true
						member = append(member, fresh)
						break
					}
				}
			}
			if len(member) < 2 {
				member = append(member, uint32(rng.Intn(universe)), uint32(universe)+uint32(rng.Next()>>40))
			}
			ds.Sets = append(ds.Sets, intset.Normalize(member))
		}
	}
	return ds
}

// Profile describes the published statistics of one of the real benchmark
// datasets (Table I of the paper) plus a Zipf skew calibrated to its
// rare-token structure. Generate produces a scaled synthetic analogue.
type Profile struct {
	Name         string
	NumSets      int // full-size set count from Table I
	AvgSetSize   float64
	SetsPerToken float64
	Skew         float64 // token popularity skew; 0 = uniform (no rare tokens)
}

// Profiles are the 10 real datasets of Mann et al. as summarized in
// Table I, with skew chosen per the paper's qualitative description:
// datasets where ALLPAIRS wins (AOL, FLICKR, SPOTIFY) have many rare
// tokens (high skew); datasets where CPSJoin wins (NETFLIX, DBLP, UNIFORM)
// have flat token usage (low skew).
var Profiles = []Profile{
	{Name: "AOL", NumSets: 7_350_000, AvgSetSize: 3.8, SetsPerToken: 18.9, Skew: 0.95},
	{Name: "BMS-POS", NumSets: 320_000, AvgSetSize: 9.3, SetsPerToken: 1797.9, Skew: 0.40},
	{Name: "DBLP", NumSets: 100_000, AvgSetSize: 82.7, SetsPerToken: 1204.4, Skew: 0.30},
	{Name: "ENRON", NumSets: 250_000, AvgSetSize: 135.3, SetsPerToken: 29.8, Skew: 0.75},
	{Name: "FLICKR", NumSets: 1_140_000, AvgSetSize: 10.8, SetsPerToken: 16.3, Skew: 0.95},
	{Name: "KOSARAK", NumSets: 590_000, AvgSetSize: 12.2, SetsPerToken: 176.3, Skew: 0.85},
	{Name: "LIVEJ", NumSets: 300_000, AvgSetSize: 37.5, SetsPerToken: 15.0, Skew: 0.70},
	{Name: "NETFLIX", NumSets: 480_000, AvgSetSize: 209.8, SetsPerToken: 5654.4, Skew: 0.15},
	{Name: "ORKUT", NumSets: 2_680_000, AvgSetSize: 122.2, SetsPerToken: 37.5, Skew: 0.55},
	{Name: "SPOTIFY", NumSets: 360_000, AvgSetSize: 15.3, SetsPerToken: 7.4, Skew: 0.90},
}

// ProfileByName returns the profile with the given name, or false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Generate produces a synthetic dataset with the profile's average set size
// and sets-per-token ratio, scaled down to n sets (n <= NumSets; the
// universe is scaled proportionally to preserve the sets/token ratio).
// Pairs with elevated similarity are planted so that joins at the paper's
// thresholds have non-trivial result sets, mimicking the near-duplicate
// mass present in the real data.
func (p Profile) Generate(n int, seed uint64) *dataset.Dataset {
	if n <= 0 || n > p.NumSets {
		n = p.NumSets
	}
	universe := int(math.Round(float64(n) * p.AvgSetSize / p.SetsPerToken))
	// At small scale a dense profile (sets/token >> n) can push the
	// universe below the average set size, which is unsatisfiable. Floor
	// the universe at 3x the average set size: the sets/token ratio is
	// reduced but stays proportional to the profile's, so the relative
	// ordering of profiles (the property the experiments depend on) is
	// preserved, and background pairs keep expected Jaccard ~0.2.
	if min := int(3 * p.AvgSetSize); universe < min {
		universe = min
	}
	if universe < 8 {
		universe = 8
	}
	avg := int(math.Round(p.AvgSetSize))
	if avg < 2 {
		avg = 2
	}
	var ds *dataset.Dataset
	if p.Skew < 0.05 {
		ds = Uniform(n, avg, universe, seed)
	} else {
		ds = Zipf(n, avg, universe, p.Skew, seed)
	}
	ds.Name = p.Name
	// Plant ~0.2% of n as similar pairs across the threshold range.
	per := n / 1000
	if per < 5 {
		per = 5
	}
	for i, j := range []float64{0.55, 0.65, 0.75, 0.85, 0.95} {
		PlantPairs(ds, per, j, seed+uint64(i)+1)
	}
	ds.Clean()
	return ds
}
