package snapshot

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/intset"
)

// ManifestFile is the file name of a sharded-index directory manifest.
const ManifestFile = "manifest.json"

// Manifest is the JSON root of a persisted sharded index: everything
// needed to reopen the directory — shard files and their seeds, the
// partition scheme and build options for future seals, the unsealed
// side-shard contents, tombstones, and the counters that make a restarted
// service indistinguishable from one that never stopped. It is JSON (not
// the binary container) on purpose: the manifest is the part an operator
// inspects and tooling diffs, while the bulk per-shard structures stay
// binary.
type Manifest struct {
	FormatVersion  int     `json:"format_version"`
	Lambda         float64 `json:"lambda"`
	Partition      string  `json:"partition"`
	PrimaryShards  int     `json:"primary_shards"`
	MergeThreshold int     `json:"merge_threshold"`
	Trees          int     `json:"trees"`
	LeafSize       int     `json:"leaf_size"`
	T              int     `json:"t"`
	Seed           uint64  `json:"seed"`
	// NextSlot is the next unclaimed shard seed slot; it only grows, so
	// seeds stay unique across save/load cycles and concurrent seals.
	NextSlot int `json:"next_slot"`
	// Total is the id high-water mark (ids are never reused, even after
	// deletes); Appends/Merges/Deletes are the lifetime counters.
	Total   int `json:"total"`
	Appends int `json:"appends"`
	Merges  int `json:"merges"`
	Deletes int `json:"deletes"`
	// Compactions/CompactedShards count completed compaction passes and
	// the ring shards they removed or rewrote; RingGeneration counts ring
	// changes (seals and compaction swaps). All informational — a reopened
	// index continues the counts rather than restarting them.
	Compactions     int `json:"compactions,omitempty"`
	CompactedShards int `json:"compacted_shards,omitempty"`
	RingGeneration  int `json:"ring_generation,omitempty"`
	// Compaction policy knobs, persisted so a loaded index compacts under
	// the policy it was built with (an operator may have raised the ratio
	// past 1 to disable rewrites, for example). Zero/absent — as in
	// pre-compaction manifests — selects the defaults on load.
	CompactSmall          int     `json:"compact_small,omitempty"`
	CompactMinShards      int     `json:"compact_min_shards,omitempty"`
	CompactTombstoneRatio float64 `json:"compact_tombstone_ratio,omitempty"`
	// Shards lists the sealed shard files in ring order.
	Shards []ShardEntry `json:"shards"`
	// Side is the unsealed side-shard state, stored inline: it is bounded
	// by the merge threshold, so JSON keeps the whole directory readable
	// with one binary format instead of two.
	Side SideState `json:"side"`
	// Tombstones are the deleted ids still physically present in some
	// shard or in Side, sorted ascending. Query merges filter them; a
	// seal compacts away the ones that lived in the sealed buffer and a
	// compaction reclaims the ones in its victim shards.
	Tombstones []int `json:"tombstones,omitempty"`
	// DroppedBitmap records the deleted ids whose physical entries have
	// been reclaimed (their tombstones are retired) as a dense bitmap over
	// [0, Total): byte i/8 bit i%8 set means id i is dropped, trailing
	// zero bytes trimmed (intset.Bitmap's canonical encoding, base64 on
	// the wire via encoding/json). The loaded index needs it so a repeat
	// Delete of a reclaimed id stays a no-op instead of corrupting the
	// live count; a bitmap bounds the cost by ids ever assigned (Total/8
	// bytes) instead of by lifetime delete volume. Disjoint from
	// Tombstones and from Side.IDs by construction.
	DroppedBitmap []byte `json:"dropped_bitmap,omitempty"`
	// Dropped is the legacy sorted-list form of DroppedBitmap, read (and
	// validated) for snapshots written before the bitmap existed; new
	// saves write only the bitmap. At most one of the two may be present.
	Dropped []int `json:"dropped,omitempty"`
	// Runtime carries the runtime options applied to the index via
	// Configure, so a Load re-applies them instead of callers having to
	// remember to. Absent in format-version-1 manifests (defaults apply).
	Runtime *RuntimeState `json:"runtime,omitempty"`
	// Placement is the coordinator's shipped-shard record: the peers and
	// options of the last placement pass plus every (key, peers) pair it
	// has shipped and not yet confirmed evicted. Persisted so a restarted
	// coordinator garbage-collects the keys its previous life placed.
	// Absent when the index never distributed.
	Placement *PlacementState `json:"placement,omitempty"`
}

// PlacementState is the persisted placement record (see Manifest).
type PlacementState struct {
	// Epoch counts placement passes over the index's lifetime.
	Epoch int `json:"epoch"`
	// Peers and Replicas/KeepLocal are the parameters of the last pass,
	// restored so the controller resumes under the same policy.
	Peers     []string `json:"peers,omitempty"`
	Replicas  int      `json:"replicas,omitempty"`
	KeepLocal bool     `json:"keep_local,omitempty"`
	// Shipped lists, per shard key, the peers the coordinator shipped it
	// to and has not yet confirmed evicted.
	Shipped []ShippedShard `json:"shipped,omitempty"`
}

// ShippedShard records one shipped shard key and its hosting peers.
type ShippedShard struct {
	Key   string   `json:"key"`
	Peers []string `json:"peers"`
}

// RuntimeState is the persisted form of the index's runtime options
// (layout, cache, auto-compaction): operational knobs rather than
// build-time parameters, but part of the service's identity across a
// restart all the same.
type RuntimeState struct {
	AutoCompact   bool `json:"auto_compact,omitempty"`
	PointerLayout bool `json:"pointer_layout,omitempty"`
	CacheSize     int  `json:"cache_size,omitempty"`
	// Tiering is the configured shard storage tier ("hot", "cold" or
	// "auto"; empty means hot), restored at load so shards reopen in the
	// tier the service ran with.
	Tiering string `json:"tiering,omitempty"`
}

// DroppedIDs decodes the reclaimed-id set, whichever representation the
// manifest carries.
func (m *Manifest) DroppedIDs() *intset.Bitmap {
	if len(m.DroppedBitmap) > 0 {
		return intset.BitmapFromBytes(m.DroppedBitmap)
	}
	if len(m.Dropped) > 0 {
		return intset.BitmapFromInts(m.Dropped)
	}
	return nil
}

// ShardEntry describes one sealed shard file.
type ShardEntry struct {
	File string `json:"file"`
	Seed uint64 `json:"seed"`
	Sets int    `json:"sets"`
}

// SideState is the persisted unsealed side shard: parallel id/set lists.
type SideState struct {
	IDs  []int      `json:"ids,omitempty"`
	Sets [][]uint32 `json:"sets,omitempty"`
}

// WriteManifest writes dir's manifest atomically (temp file + rename),
// and last: Save orders it after the shard files so a directory with a
// manifest always has every file the manifest names.
func WriteManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return WriteRawFile(filepath.Join(dir, ManifestFile), append(data, '\n'))
}

// ReadManifest reads and validates dir's manifest. Version mismatches
// wrap ErrVersion; structural problems wrap ErrCorrupt.
func ReadManifest(dir string) (*Manifest, error) {
	path := filepath.Join(dir, ManifestFile)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeManifest(path, data)
}

// decodeManifest parses and validates raw manifest bytes; path only
// labels errors. Split from ReadManifest so the fuzz target can drive
// the validation logic without touching the filesystem.
func decodeManifest(path string, data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w: %v", path, ErrCorrupt, err)
	}
	if m.FormatVersion < MinVersion || m.FormatVersion > Version {
		return nil, fmt.Errorf("%s: %w: manifest has version %d, this build reads versions %d..%d",
			path, ErrVersion, m.FormatVersion, MinVersion, Version)
	}
	if m.Lambda <= 0 || m.Lambda >= 1 {
		return nil, fmt.Errorf("%s: %w: lambda %v out of (0,1)", path, ErrCorrupt, m.Lambda)
	}
	if len(m.Side.IDs) != len(m.Side.Sets) {
		return nil, fmt.Errorf("%s: %w: side shard has %d ids for %d sets",
			path, ErrCorrupt, len(m.Side.IDs), len(m.Side.Sets))
	}
	if m.Total < 0 || m.NextSlot < 0 {
		return nil, fmt.Errorf("%s: %w: negative counters (total=%d next_slot=%d)",
			path, ErrCorrupt, m.Total, m.NextSlot)
	}
	for _, id := range m.Tombstones {
		if id < 0 || id >= m.Total {
			return nil, fmt.Errorf("%s: %w: tombstone id %d out of [0,%d)", path, ErrCorrupt, id, m.Total)
		}
	}
	for _, id := range m.Dropped {
		if id < 0 || id >= m.Total {
			return nil, fmt.Errorf("%s: %w: dropped id %d out of [0,%d)", path, ErrCorrupt, id, m.Total)
		}
	}
	if len(m.DroppedBitmap) > 0 && len(m.Dropped) > 0 {
		return nil, fmt.Errorf("%s: %w: manifest carries both dropped and dropped_bitmap", path, ErrCorrupt)
	}
	if hi := intset.BitmapFromBytes(m.DroppedBitmap).Max(); hi >= m.Total {
		return nil, fmt.Errorf("%s: %w: dropped id %d out of [0,%d)", path, ErrCorrupt, hi, m.Total)
	}
	for _, id := range m.Side.IDs {
		if id < 0 || id >= m.Total {
			return nil, fmt.Errorf("%s: %w: side shard id %d out of [0,%d)", path, ErrCorrupt, id, m.Total)
		}
	}
	if p := m.Placement; p != nil {
		if p.Epoch < 0 || p.Replicas < 0 {
			return nil, fmt.Errorf("%s: %w: negative placement counters (epoch=%d replicas=%d)",
				path, ErrCorrupt, p.Epoch, p.Replicas)
		}
		for _, s := range p.Shipped {
			if s.Key == "" {
				return nil, fmt.Errorf("%s: %w: shipped shard with empty key", path, ErrCorrupt)
			}
			for _, peer := range s.Peers {
				if peer == "" {
					return nil, fmt.Errorf("%s: %w: shipped shard %q names an empty peer", path, ErrCorrupt, s.Key)
				}
			}
		}
	}
	return &m, nil
}
