package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Mapped is a read-only view over a complete container held in memory —
// typically an mmap'd file. OpenMapped walks only the fixed-size headers
// (container header plus each 20-byte section header), so a mapped file's
// payload pages are never faulted in until a caller asks for a section.
// That is the property the cold shard tier is built on: opening a mapped
// snapshot costs a few page reads regardless of file size.
//
// Checksums are therefore deferred: Section verifies its payload's CRC on
// every call, while Raw returns the payload bytes unverified for callers
// that want to schedule the (one-time, whole-section) verification
// themselves — see (*Mapped).Verify.
type Mapped struct {
	data     []byte
	version  uint32
	sections []MappedSection
}

// MappedSection locates one section's payload inside the container bytes.
type MappedSection struct {
	Name string
	// Off and Len bound the payload within the container bytes.
	Off, Len int64
	// CRC is the payload's expected CRC-32C, read from the section header.
	CRC uint32
}

// maxMappedSections bounds the section-header walk so a corrupt file full
// of zero-length sections cannot grow the index without bound. Real
// containers carry a handful of sections.
const maxMappedSections = 1 << 10

// OpenMapped validates the container header of data and indexes its
// sections without reading any payload bytes. It accepts every version in
// [MinVersion, Version], applying the v3 alignment-padding rules only to
// v3+ containers. Structural problems wrap ErrCorrupt; version problems
// wrap ErrVersion.
func OpenMapped(data []byte, kind string) (*Mapped, error) {
	k, err := tag(kind)
	if err != nil {
		return nil, err
	}
	const chl = 8 + 4 + 8 // magic + version + kind
	if len(data) < chl {
		return nil, fmt.Errorf("%w: truncated header: %d bytes", ErrCorrupt, len(data))
	}
	if [8]byte(data[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:8])
	}
	v := binary.LittleEndian.Uint32(data[8:12])
	if v < MinVersion || v > Version {
		return nil, fmt.Errorf("%w: file has version %d, this build reads versions %d..%d", ErrVersion, v, MinVersion, Version)
	}
	if [8]byte(data[12:20]) != k {
		return nil, fmt.Errorf("%w: snapshot kind %q, want %q", ErrCorrupt, trimTag(data[12:20]), kind)
	}
	m := &Mapped{data: data, version: v}
	off := int64(chl)
	for off < int64(len(data)) {
		if len(m.sections) >= maxMappedSections {
			return nil, fmt.Errorf("%w: more than %d sections", ErrCorrupt, maxMappedSections)
		}
		if v >= 3 {
			pad := int64(sectionPad(off))
			if off+pad > int64(len(data)) {
				return nil, fmt.Errorf("%w: truncated alignment padding at byte %d", ErrCorrupt, off)
			}
			for _, b := range data[off : off+pad] {
				if b != 0 {
					return nil, fmt.Errorf("%w: nonzero alignment padding at byte %d", ErrCorrupt, off)
				}
			}
			off += pad
		}
		if off+sectionHdrLen > int64(len(data)) {
			return nil, fmt.Errorf("%w: truncated section header at byte %d", ErrCorrupt, off)
		}
		hdr := data[off : off+sectionHdrLen]
		name := trimTag(hdr[:8])
		if name == "" {
			return nil, fmt.Errorf("%w: empty section name at byte %d", ErrCorrupt, off)
		}
		length := binary.LittleEndian.Uint64(hdr[8:16])
		if length > uint64(len(data))-uint64(off+sectionHdrLen) {
			return nil, fmt.Errorf("%w: section %q: length %d exceeds remaining %d bytes",
				ErrCorrupt, name, length, uint64(len(data))-uint64(off+sectionHdrLen))
		}
		m.sections = append(m.sections, MappedSection{
			Name: name,
			Off:  off + sectionHdrLen,
			Len:  int64(length),
			CRC:  binary.LittleEndian.Uint32(hdr[16:20]),
		})
		off += sectionHdrLen + int64(length)
	}
	return m, nil
}

// Version returns the container's format version.
func (m *Mapped) Version() uint32 { return m.version }

// Bytes returns the full underlying container bytes.
func (m *Mapped) Bytes() []byte { return m.data }

// Sections returns the section index in file order.
func (m *Mapped) Sections() []MappedSection { return m.sections }

// Lookup finds a section by name (nil when absent). Names are unique in
// every container this package writes; Lookup returns the first match.
func (m *Mapped) Lookup(name string) *MappedSection {
	for i := range m.sections {
		if m.sections[i].Name == name {
			return &m.sections[i]
		}
	}
	return nil
}

// Raw returns a section's payload bytes without checksum verification —
// the caller owns scheduling Verify before trusting derived answers. The
// returned slice aliases the mapped bytes; callers must not modify it.
func (m *Mapped) Raw(name string) ([]byte, error) {
	s := m.Lookup(name)
	if s == nil {
		return nil, fmt.Errorf("%w: missing section %q", ErrCorrupt, name)
	}
	return m.data[s.Off : s.Off+s.Len], nil
}

// Section returns a section's payload after verifying its checksum.
func (m *Mapped) Section(name string) ([]byte, error) {
	payload, err := m.Raw(name)
	if err != nil {
		return nil, err
	}
	if err := m.Verify(name); err != nil {
		return nil, err
	}
	return payload, nil
}

// Verify checksums one section's payload against its header CRC. This is
// the deferred half of the open-time validation: callers that served Raw
// bytes run it once (faulting the payload pages in) before trusting any
// answer derived from them.
func (m *Mapped) Verify(name string) error {
	s := m.Lookup(name)
	if s == nil {
		return fmt.Errorf("%w: missing section %q", ErrCorrupt, name)
	}
	payload := m.data[s.Off : s.Off+s.Len]
	if got := crc32.Checksum(payload, castagnoli); got != s.CRC {
		return fmt.Errorf("%w: section %q: checksum mismatch (file %08x, data %08x)", ErrCorrupt, name, s.CRC, got)
	}
	return nil
}
