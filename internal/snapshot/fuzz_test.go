package snapshot

import (
	"bytes"
	"encoding/json"
	"testing"
)

// Native fuzz targets for the two decode surfaces of the persistence
// layer: the binary container and the JSON directory manifest. Both are
// fed snapshot bytes an attacker (or a failing disk) controls, and the
// contract under fuzzing is the load-path promise stated in the package
// doc: descriptive errors wrapping ErrCorrupt/ErrVersion — never a
// panic, hang or huge allocation. CI runs each target for a few seconds
// per PR (make fuzz-smoke); the corpus seeds below are valid snapshots,
// so mutation starts from the interesting region of the input space.

// validContainer builds a well-formed two-section container to seed the
// corpus.
func validContainer(t testing.TB) []byte {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "fuzzkind")
	if err != nil {
		t.Fatal(err)
	}
	var meta Buf
	meta.F64(0.5)
	meta.U32(7)
	meta.Uvarint(99)
	if err := w.Section("meta", meta.B); err != nil {
		t.Fatal(err)
	}
	var sets Buf
	EncodeSets(&sets, [][]uint32{{1, 2, 3}, {2, 5}})
	if err := w.Section("sets", sets.B); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzContainer(f *testing.F) {
	valid := validContainer(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncation
	f.Add([]byte("CPSNAP\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), "fuzzkind")
		if err != nil {
			return
		}
		meta, err := r.Section("meta")
		if err != nil {
			return
		}
		c := NewCursor("meta", meta)
		c.F64()
		c.U32()
		c.Uvarint()
		_ = c.Done()
		raw, err := r.Section("sets")
		if err != nil {
			return
		}
		sc := NewCursor("sets", raw)
		n := sc.Count(sc.Remaining())
		DecodeSets(sc, uint64(n))
		_ = sc.Done()
	})
}

func FuzzManifest(f *testing.F) {
	m := &Manifest{
		FormatVersion:  Version,
		Lambda:         0.5,
		Partition:      "contiguous",
		PrimaryShards:  2,
		MergeThreshold: 16,
		Trees:          2,
		LeafSize:       32,
		T:              128,
		Seed:           42,
		NextSlot:       3,
		Total:          5,
		Shards:         []ShardEntry{{File: "shard-g000001-0000.cps", Seed: 7, Sets: 3}},
		Side:           SideState{IDs: []int{3, 4}, Sets: [][]uint32{{1, 2}, {2, 9}}},
		Tombstones:     []int{1},
		Dropped:        []int{2},
	}
	seed, err := json.Marshal(m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"format_version":1,"lambda":0.5}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(ManifestFile, data)
		if err != nil {
			return
		}
		// Whatever validated must honor the invariants the loaders rely on.
		if m.Lambda <= 0 || m.Lambda >= 1 {
			t.Fatalf("ReadManifest accepted lambda %v", m.Lambda)
		}
		if len(m.Side.IDs) != len(m.Side.Sets) {
			t.Fatalf("ReadManifest accepted mismatched side shard (%d ids, %d sets)",
				len(m.Side.IDs), len(m.Side.Sets))
		}
		for _, id := range append(append(append([]int{}, m.Tombstones...), m.Dropped...), m.Side.IDs...) {
			if id < 0 || id >= m.Total {
				t.Fatalf("ReadManifest accepted id %d out of [0,%d)", id, m.Total)
			}
		}
	})
}
