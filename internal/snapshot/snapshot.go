// Package snapshot is the persistence layer shared by the built index
// structures: a versioned, checksummed binary container plus the JSON
// manifest schema of a sharded-index directory.
//
// The Chosen Path structures are static once built — a randomized trie per
// repetition over an immutable collection — which makes them ideal
// snapshot material: serialize once, load many times, and a process
// restart costs I/O instead of a rebuild. The container format is
// deliberately dumb and self-checking:
//
//	magic    [8]byte  "CPSNAP\x00\x00"
//	version  uint32   format version (little-endian, like all integers)
//	kind     [8]byte  zero-padded application tag ("cpindex", "cpshard", ...)
//	sections ...      each: name [8]byte, length uint64, crc uint32, payload
//
// Every section payload carries its own CRC-32C, so a flipped byte is
// pinned to the section it corrupted, and a reader that only needs the
// manifest-level metadata never pays to checksum the bulk data it skips.
// Load paths must return descriptive errors — wrapping ErrCorrupt or
// ErrVersion — for truncated files, checksum mismatches and unsupported
// versions; they must never panic or silently yield a wrong structure.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Version is the current container format version; MinVersion is the
// oldest version this build still reads. Readers reject anything outside
// [MinVersion, Version] with ErrVersion: forward compatibility is
// explicitly out of scope (a snapshot is a cache of a rebuildable
// structure, not an archival format), but old snapshots keep loading —
// decoders branch on Reader.Version for sections that newer versions
// added.
//
// Version history:
//
//	1  initial container (cpindex trees + sets, cpshard manifest/ids)
//	2  cpshard files append a "contain" section (containment-index
//	   signatures); the manifest gains the persisted runtime options
//	3  zero padding precedes each section header so every payload starts
//	   8-byte aligned — the property the mmap-backed cold tier relies on
//	   to overlay fixed-width views onto mapped pages without copying
const (
	Version    = 3
	MinVersion = 1
)

var magic = [8]byte{'C', 'P', 'S', 'N', 'A', 'P', 0, 0}

var (
	// ErrCorrupt is wrapped by every validation failure: bad magic, bad
	// kind, checksum mismatch, truncation, implausible field.
	ErrCorrupt = errors.New("snapshot: corrupt")
	// ErrVersion is wrapped when the container's format version is not the
	// one this build reads.
	ErrVersion = errors.New("snapshot: unsupported format version")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// tag converts a short name to the fixed 8-byte on-disk form.
func tag(name string) ([8]byte, error) {
	var t [8]byte
	if name == "" || len(name) > len(t) {
		return t, fmt.Errorf("snapshot: tag %q must be 1..8 bytes", name)
	}
	copy(t[:], name)
	return t, nil
}

// Writer serializes one container: header first, then sections in call
// order.
type Writer struct {
	bw *bufio.Writer
	n  int64
}

// NewWriter writes the container header (magic, Version, kind) and
// returns the section writer.
func NewWriter(w io.Writer, kind string) (*Writer, error) {
	k, err := tag(kind)
	if err != nil {
		return nil, err
	}
	sw := &Writer{bw: bufio.NewWriterSize(w, 1<<20)}
	if _, err := sw.bw.Write(magic[:]); err != nil {
		return nil, err
	}
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], Version)
	if _, err := sw.bw.Write(ver[:]); err != nil {
		return nil, err
	}
	if _, err := sw.bw.Write(k[:]); err != nil {
		return nil, err
	}
	sw.n = int64(len(magic) + len(ver) + len(k))
	return sw, nil
}

// sectionPad returns the number of zero bytes to insert before a section
// header starting at offset off so the payload (which begins sectionHdrLen
// bytes after the header starts) is 8-byte aligned.
func sectionPad(off int64) int {
	return int((8 - (off+sectionHdrLen)%8) % 8)
}

// sectionHdrLen is the fixed section header size: name + length + crc.
const sectionHdrLen = 8 + 8 + 4

// zeroPad is the scratch source for alignment padding (max 7 bytes).
var zeroPad [8]byte

// Section appends one named, CRC-protected section, preceded (since
// format v3) by zero padding that 8-aligns the payload.
func (w *Writer) Section(name string, payload []byte) error {
	t, err := tag(name)
	if err != nil {
		return err
	}
	if pad := sectionPad(w.n); pad > 0 {
		if _, err := w.bw.Write(zeroPad[:pad]); err != nil {
			return err
		}
		w.n += int64(pad)
	}
	var hdr [sectionHdrLen]byte
	copy(hdr[:8], t[:])
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(payload, castagnoli))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.n += int64(len(hdr)) + int64(len(payload))
	return nil
}

// Count returns the number of bytes written so far (header included).
func (w *Writer) Count() int64 { return w.n }

// Flush drains the internal buffer to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader deserializes a container written by Writer.
type Reader struct {
	br      *bufio.Reader
	version uint32
	// n tracks the stream offset, mirroring Writer.n, so a v3 reader can
	// reproduce the alignment padding the writer inserted.
	n int64
}

// NewReader validates the header: magic, format version, kind. A version
// outside [MinVersion, Version] is reported as ErrVersion (with both
// versions named), every other failure as ErrCorrupt.
func NewReader(r io.Reader, kind string) (*Reader, error) {
	k, err := tag(kind)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [8 + 4 + 8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:8])
	}
	v := binary.LittleEndian.Uint32(hdr[8:12])
	if v < MinVersion || v > Version {
		return nil, fmt.Errorf("%w: file has version %d, this build reads versions %d..%d", ErrVersion, v, MinVersion, Version)
	}
	if [8]byte(hdr[12:20]) != k {
		return nil, fmt.Errorf("%w: snapshot kind %q, want %q", ErrCorrupt, trimTag(hdr[12:20]), kind)
	}
	return &Reader{br: br, version: v, n: int64(len(hdr))}, nil
}

// Version returns the container format version read from the header, so
// decoders can skip sections that the writing build did not emit yet.
func (r *Reader) Version() uint32 { return r.version }

func trimTag(b []byte) string {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	return string(b[:end])
}

// Section reads the next section, which must carry the given name, and
// returns its checksum-verified payload. On format v3+ containers it
// first consumes the alignment padding and requires it to be zero.
func (r *Reader) Section(name string) ([]byte, error) {
	if r.version >= 3 {
		if pad := sectionPad(r.n); pad > 0 {
			var p [8]byte
			if _, err := io.ReadFull(r.br, p[:pad]); err != nil {
				return nil, fmt.Errorf("%w: section %q: truncated padding: %v", ErrCorrupt, name, err)
			}
			for _, b := range p[:pad] {
				if b != 0 {
					return nil, fmt.Errorf("%w: section %q: nonzero alignment padding", ErrCorrupt, name)
				}
			}
			r.n += int64(pad)
		}
	}
	var hdr [sectionHdrLen]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: section %q: truncated header: %v", ErrCorrupt, name, err)
	}
	if got := trimTag(hdr[:8]); got != name {
		return nil, fmt.Errorf("%w: section %q, want %q", ErrCorrupt, got, name)
	}
	length := binary.LittleEndian.Uint64(hdr[8:16])
	want := binary.LittleEndian.Uint32(hdr[16:20])
	payload, err := readPayload(r.br, length)
	if err != nil {
		return nil, fmt.Errorf("%w: section %q: truncated: %v", ErrCorrupt, name, err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: section %q: checksum mismatch (file %08x, data %08x)", ErrCorrupt, name, want, got)
	}
	r.n += int64(len(hdr)) + int64(len(payload))
	return payload, nil
}

// readPayload reads exactly length bytes, growing the buffer in bounded
// steps so a corrupted length field on a truncated file fails at EOF
// instead of attempting one giant allocation.
func readPayload(r io.Reader, length uint64) ([]byte, error) {
	const step = 4 << 20
	if length <= step {
		buf := make([]byte, length)
		_, err := io.ReadFull(r, buf)
		return buf, err
	}
	buf := make([]byte, 0, step)
	for uint64(len(buf)) < length {
		n := length - uint64(len(buf))
		if n > step {
			n = step
		}
		chunk := make([]byte, n)
		if _, err := io.ReadFull(r, chunk); err != nil {
			return nil, err
		}
		buf = append(buf, chunk...)
	}
	return buf, nil
}

// Buf builds a section payload from primitive values. Integers are
// little-endian; Uvarint uses the standard Go varint encoding.
type Buf struct {
	B []byte
}

func (b *Buf) U32(v uint32)     { b.B = binary.LittleEndian.AppendUint32(b.B, v) }
func (b *Buf) U64(v uint64)     { b.B = binary.LittleEndian.AppendUint64(b.B, v) }
func (b *Buf) F64(v float64)    { b.U64(math.Float64bits(v)) }
func (b *Buf) Uvarint(v uint64) { b.B = binary.AppendUvarint(b.B, v) }

// Cursor decodes a section payload. The first malformed read latches an
// error and every later read returns zero values, so decoders can run
// straight through and check Err (or Done) once at the end.
type Cursor struct {
	section string
	b       []byte
	off     int
	err     error
}

// NewCursor returns a cursor over payload; section names the payload in
// error messages.
func NewCursor(section string, payload []byte) *Cursor {
	return &Cursor{section: section, b: payload}
}

func (c *Cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: section %q: %s", ErrCorrupt, c.section, fmt.Sprintf(format, args...))
	}
}

func (c *Cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if c.off+n > len(c.b) {
		c.fail("truncated at byte %d (need %d of %d)", c.off, n, len(c.b))
		return nil
	}
	p := c.b[c.off : c.off+n]
	c.off += n
	return p
}

func (c *Cursor) U32() uint32 {
	if p := c.take(4); p != nil {
		return binary.LittleEndian.Uint32(p)
	}
	return 0
}

func (c *Cursor) U64() uint64 {
	if p := c.take(8); p != nil {
		return binary.LittleEndian.Uint64(p)
	}
	return 0
}

func (c *Cursor) F64() float64 { return math.Float64frombits(c.U64()) }

func (c *Cursor) Uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail("bad varint at byte %d", c.off)
		return 0
	}
	c.off += n
	return v
}

// Count reads a uvarint element count and rejects values above max or
// beyond what the remaining payload could possibly hold — the guard that
// keeps a corrupted count from driving a giant allocation.
func (c *Cursor) Count(max int) int {
	v := c.Uvarint()
	if c.err != nil {
		return 0
	}
	if v > uint64(max) {
		c.fail("implausible count %d (max %d)", v, max)
		return 0
	}
	if v > uint64(len(c.b)-c.off) {
		c.fail("count %d exceeds remaining %d bytes", v, len(c.b)-c.off)
		return 0
	}
	return int(v)
}

// Remaining returns the number of unconsumed payload bytes — the natural
// bound for element counts whose elements take at least one byte each.
func (c *Cursor) Remaining() int { return len(c.b) - c.off }

// Fail latches a decoder-level validation error (with section context),
// unless an earlier error already latched.
func (c *Cursor) Fail(format string, args ...any) {
	c.fail(format, args...)
}

// Err returns the first decoding error, if any.
func (c *Cursor) Err() error { return c.err }

// Done returns Err, or an error if payload bytes remain unconsumed (a
// length drift that a checksum alone cannot catch).
func (c *Cursor) Done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("%w: section %q: %d trailing bytes", ErrCorrupt, c.section, len(c.b)-c.off)
	}
	return nil
}

// EncodeSets appends a collection in the shared sets-section layout: one
// size varint per set, then every token as fixed uint32. DecodeSets is
// the validating inverse; prep and cpindex both store their collections
// this way so the decode guards live in exactly one place.
func EncodeSets(b *Buf, sets [][]uint32) {
	for _, set := range sets {
		b.Uvarint(uint64(len(set)))
	}
	for _, set := range sets {
		for _, tok := range set {
			b.U32(tok)
		}
	}
}

// maxSetSize bounds one set's plausible token count on decode.
const maxSetSize = 1 << 28

// DecodeSets reads n sets written by EncodeSets, enforcing every decode
// guard: the count and each size must fit the remaining payload (so a
// corrupt header can never drive a huge allocation), sizes are capped,
// the size sum is overflow-checked against the payload, and each set
// must be strictly increasing (the normalization invariant every query
// and join assumes). All sets share one backing token array.
func DecodeSets(c *Cursor, n uint64) [][]uint32 {
	if n > uint64(c.Remaining()) { // each size varint takes >= 1 byte
		c.Fail("set count %d exceeds remaining %d bytes", n, c.Remaining())
		return nil
	}
	sizes := make([]uint64, n)
	var total uint64
	for i := range sizes {
		sizes[i] = c.Uvarint()
		if sizes[i] > maxSetSize {
			c.Fail("implausible set size %d", sizes[i])
			return nil
		}
		total += sizes[i] // n <= remaining bytes, sizes <= 2^28: no overflow
	}
	if c.err != nil {
		return nil
	}
	if total*4 > uint64(c.Remaining()) { // every token takes 4 bytes
		c.Fail("%d tokens exceed remaining %d bytes", total, c.Remaining())
		return nil
	}
	sets := make([][]uint32, n)
	tokens := make([]uint32, total)
	for i, size := range sizes {
		set := tokens[:size:size]
		tokens = tokens[size:]
		for j := range set {
			set[j] = c.U32()
			if j > 0 && set[j] <= set[j-1] {
				c.Fail("set %d not strictly increasing", i)
				return nil
			}
		}
		sets[i] = set
	}
	return sets
}

// ValidateSets checks the invariants of sets that arrive pre-decoded
// (e.g. from the JSON manifest): every set non-empty (an empty set
// cannot be MinHash-signed when a side shard seals) and strictly
// increasing (what Jaccard verification assumes). It reports the first
// offending set.
func ValidateSets(sets [][]uint32) error {
	for i, set := range sets {
		if len(set) == 0 {
			return fmt.Errorf("%w: set %d is empty", ErrCorrupt, i)
		}
		for j := 1; j < len(set); j++ {
			if set[j] <= set[j-1] {
				return fmt.Errorf("%w: set %d not strictly increasing", ErrCorrupt, i)
			}
		}
	}
	return nil
}

// WriteFile writes one container to path atomically: the encoder runs
// against a temp file in the same directory, which is synced and renamed
// over path only on success, so a crashed or failed save never leaves a
// half-written snapshot behind.
func WriteFile(path, kind string, encode func(*Writer) error) (err error) {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w, err := NewWriter(f, kind)
	if err != nil {
		return err
	}
	if err = encode(w); err != nil {
		return err
	}
	if err = w.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// WriteRawFile writes pre-serialized bytes to path with the same
// atomicity discipline as WriteFile: temp file in the same directory,
// fsync, rename. Shared by the manifest writer and raw-byte shard saves
// so the crash-safety dance lives in one place.
func WriteRawFile(path string, data []byte) (err error) {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile opens path and runs the decoder over its validated container.
func ReadFile(path, kind string, decode func(*Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := NewReader(f, kind)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := decode(r); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
