package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeContainer(t *testing.T, kind string, sections map[string][]byte, order []string) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, kind)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range order {
		if err := w.Section(name, sections[name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(buf.Len()) {
		t.Fatalf("Count() = %d, wrote %d bytes", w.Count(), buf.Len())
	}
	return buf.Bytes()
}

func TestContainerRoundTrip(t *testing.T) {
	sections := map[string][]byte{
		"meta":  {1, 2, 3},
		"bulk":  bytes.Repeat([]byte{0xab}, 10_000),
		"empty": {},
	}
	raw := writeContainer(t, "testkind", sections, []string{"meta", "bulk", "empty"})
	r, err := NewReader(bytes.NewReader(raw), "testkind")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"meta", "bulk", "empty"} {
		got, err := r.Section(name)
		if err != nil {
			t.Fatalf("section %q: %v", name, err)
		}
		if !bytes.Equal(got, sections[name]) {
			t.Fatalf("section %q: payload mismatch", name)
		}
	}
}

func TestHeaderValidation(t *testing.T) {
	raw := writeContainer(t, "kindA", map[string][]byte{"s": {1}}, []string{"s"})

	// Wrong kind.
	if _, err := NewReader(bytes.NewReader(raw), "kindB"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong kind: err = %v, want ErrCorrupt", err)
	}

	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := NewReader(bytes.NewReader(bad), "kindA"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}

	// Wrong version: must name both versions in the message.
	bad = append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(bad[8:12], 99)
	_, err := NewReader(bytes.NewReader(bad), "kindA")
	if !errors.Is(err, ErrVersion) {
		t.Errorf("future version: err = %v, want ErrVersion", err)
	}
	if err == nil || !strings.Contains(err.Error(), "99") {
		t.Errorf("version error %q does not name the file's version", err)
	}

	// Truncated header.
	if _, err := NewReader(bytes.NewReader(raw[:10]), "kindA"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated header: err = %v, want ErrCorrupt", err)
	}
}

func TestSectionCorruption(t *testing.T) {
	payload := bytes.Repeat([]byte{7}, 500)
	raw := writeContainer(t, "k", map[string][]byte{"data": payload}, []string{"data"})

	read := func(b []byte) error {
		r, err := NewReader(bytes.NewReader(b), "k")
		if err != nil {
			return err
		}
		_, err = r.Section("data")
		return err
	}

	if err := read(raw); err != nil {
		t.Fatalf("pristine container failed: %v", err)
	}

	// Flip every byte position in turn: each must fail (header fields are
	// structurally validated, payload bytes by CRC).
	for pos := 20; pos < len(raw); pos += 13 {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x40
		if err := read(bad); err == nil {
			t.Errorf("flipped byte at %d not detected", pos)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("flipped byte at %d: err = %v, want ErrCorrupt", pos, err)
		}
	}

	// Truncation at every prefix length must fail, never panic.
	for cut := 0; cut < len(raw); cut += 7 {
		if err := read(raw[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}

	// Wrong section name requested.
	r, err := NewReader(bytes.NewReader(raw), "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Section("other"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("section name mismatch: err = %v, want ErrCorrupt", err)
	}
}

func TestHugeLengthOnTruncatedFile(t *testing.T) {
	raw := writeContainer(t, "k", map[string][]byte{"data": {1, 2, 3}}, []string{"data"})
	// Corrupt the section length field to claim an enormous payload: the
	// reader must fail at EOF without attempting the full allocation.
	bad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(bad[28:36], 1<<40)
	r, err := NewReader(bytes.NewReader(bad), "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Section("data"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge length: err = %v, want ErrCorrupt", err)
	}
}

func TestBufCursorRoundTrip(t *testing.T) {
	var b Buf
	b.U32(0xdeadbeef)
	b.U64(1 << 60)
	b.F64(0.625)
	b.Uvarint(300)
	b.Uvarint(0)

	c := NewCursor("t", b.B)
	if v := c.U32(); v != 0xdeadbeef {
		t.Errorf("U32 = %x", v)
	}
	if v := c.U64(); v != 1<<60 {
		t.Errorf("U64 = %x", v)
	}
	if v := c.F64(); v != 0.625 {
		t.Errorf("F64 = %v", v)
	}
	if v := c.Uvarint(); v != 300 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := c.Uvarint(); v != 0 {
		t.Errorf("Uvarint = %d", v)
	}
	if err := c.Done(); err != nil {
		t.Errorf("Done: %v", err)
	}
}

func TestCursorGuards(t *testing.T) {
	// Truncated read latches the error; later reads stay zero.
	c := NewCursor("t", []byte{1, 2})
	if v := c.U32(); v != 0 {
		t.Errorf("truncated U32 = %d", v)
	}
	if c.Err() == nil || !errors.Is(c.Err(), ErrCorrupt) {
		t.Errorf("Err = %v, want ErrCorrupt", c.Err())
	}
	if v := c.U64(); v != 0 {
		t.Errorf("post-error U64 = %d", v)
	}

	// Implausible count rejected both against max and remaining bytes.
	var b Buf
	b.Uvarint(1 << 40)
	c = NewCursor("t", b.B)
	if c.Count(100) != 0 || c.Err() == nil {
		t.Error("count above max accepted")
	}
	b = Buf{}
	b.Uvarint(50)
	c = NewCursor("t", b.B)
	if c.Count(1000) != 0 || c.Err() == nil {
		t.Error("count beyond remaining bytes accepted")
	}

	// Trailing bytes are an error from Done.
	c = NewCursor("t", []byte{1, 2, 3, 4, 5})
	c.U32()
	if err := c.Done(); err == nil {
		t.Error("trailing byte not reported")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.cps")

	// A failing encoder must leave no file behind.
	wantErr := errors.New("boom")
	err := WriteFile(path, "k", func(w *Writer) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatal("failed WriteFile left the target file")
	}
	if left, _ := os.ReadDir(dir); len(left) != 0 {
		t.Fatalf("failed WriteFile left temp files: %v", left)
	}

	// Success round-trips through ReadFile.
	if err := WriteFile(path, "k", func(w *Writer) error {
		return w.Section("s", []byte{9, 9})
	}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := ReadFile(path, "k", func(r *Reader) error {
		var err error
		got, err = r.Section("s")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{9, 9}) {
		t.Fatalf("payload = %v", got)
	}
}

func TestManifestRoundTripAndValidation(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{
		FormatVersion:  Version,
		Lambda:         0.5,
		Partition:      "contiguous",
		PrimaryShards:  4,
		MergeThreshold: 64,
		Trees:          10, LeafSize: 32, T: 128,
		Seed:     7,
		NextSlot: 5,
		Total:    100, Appends: 20, Merges: 1, Deletes: 2,
		Shards:     []ShardEntry{{File: "shard-0000.cps", Seed: 9, Sets: 50}},
		Side:       SideState{IDs: []int{98, 99}, Sets: [][]uint32{{1, 2}, {3}}},
		Tombstones: []int{3, 98},
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != 100 || got.NextSlot != 5 || len(got.Shards) != 1 || len(got.Tombstones) != 2 {
		t.Fatalf("manifest round trip changed fields: %+v", got)
	}

	corrupt := func(mutate func(*Manifest)) error {
		bad := *m
		bad.Side = SideState{
			IDs:  append([]int(nil), m.Side.IDs...),
			Sets: m.Side.Sets,
		}
		bad.Tombstones = append([]int(nil), m.Tombstones...)
		mutate(&bad)
		d := t.TempDir()
		if err := WriteManifest(d, &bad); err != nil {
			t.Fatal(err)
		}
		_, err := ReadManifest(d)
		return err
	}

	if err := corrupt(func(m *Manifest) { m.FormatVersion = 9 }); !errors.Is(err, ErrVersion) {
		t.Errorf("version 9: err = %v, want ErrVersion", err)
	}
	if err := corrupt(func(m *Manifest) { m.Lambda = 1.5 }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad lambda: err = %v, want ErrCorrupt", err)
	}
	if err := corrupt(func(m *Manifest) { m.Side.IDs = m.Side.IDs[:1] }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mismatched side lists: err = %v, want ErrCorrupt", err)
	}
	if err := corrupt(func(m *Manifest) { m.Tombstones[0] = 100 }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("out-of-range tombstone: err = %v, want ErrCorrupt", err)
	}

	// Non-JSON bytes.
	d := t.TempDir()
	if err := os.WriteFile(filepath.Join(d, ManifestFile), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(d); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad JSON: err = %v, want ErrCorrupt", err)
	}
}
