package prep

import (
	"testing"

	"repro/internal/datagen"
)

func TestBuildShape(t *testing.T) {
	sets := datagen.Uniform(50, 10, 500, 1).Sets
	ix := Build(sets, 64, 4, 7)
	if len(ix.Sigs) != 50*64 {
		t.Fatalf("sigs length %d", len(ix.Sigs))
	}
	if len(ix.Sketches) != 50*4 {
		t.Fatalf("sketches length %d", len(ix.Sketches))
	}
	if len(ix.Sig(3)) != 64 || len(ix.Sketch(3)) != 4 {
		t.Fatal("accessor lengths wrong")
	}
}

func TestBuildWithoutSketches(t *testing.T) {
	sets := datagen.Uniform(20, 10, 500, 2).Sets
	ix := Build(sets, 32, 0, 7)
	if ix.Words != 0 || ix.Sketches != nil {
		t.Fatal("sketches built despite words=0")
	}
	defer func() {
		if recover() == nil {
			t.Error("Sketch() on sketchless index did not panic")
		}
	}()
	ix.Sketch(0)
}

func TestBuildDeterministic(t *testing.T) {
	sets := datagen.Uniform(30, 10, 500, 3).Sets
	a := Build(sets, 16, 2, 9)
	b := Build(sets, 16, 2, 9)
	for i := range a.Sigs {
		if a.Sigs[i] != b.Sigs[i] {
			t.Fatal("non-deterministic signatures")
		}
	}
	for i := range a.Sketches {
		if a.Sketches[i] != b.Sketches[i] {
			t.Fatal("non-deterministic sketches")
		}
	}
}

func TestBuildInvalidT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build with t=0 did not panic")
		}
	}()
	Build(nil, 0, 0, 1)
}
