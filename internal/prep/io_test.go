package prep

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/datagen"
	"repro/internal/snapshot"
)

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	sets := datagen.Uniform(80, 12, 2000, 5).Sets
	return Build(sets, 32, 4, 99)
}

func indexesEqual(a, b *Index) bool {
	if a.T != b.T || a.Words != b.Words || a.Seed != b.Seed || len(a.Sets) != len(b.Sets) {
		return false
	}
	for i := range a.Sets {
		if len(a.Sets[i]) != len(b.Sets[i]) {
			return false
		}
		for j := range a.Sets[i] {
			if a.Sets[i][j] != b.Sets[i][j] {
				return false
			}
		}
	}
	if len(a.Sigs) != len(b.Sigs) || len(a.Sketches) != len(b.Sketches) {
		return false
	}
	for i := range a.Sigs {
		if a.Sigs[i] != b.Sigs[i] {
			return false
		}
	}
	for i := range a.Sketches {
		if a.Sketches[i] != b.Sketches[i] {
			return false
		}
	}
	return true
}

func TestIndexRoundTrip(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !indexesEqual(ix, back) {
		t.Fatal("round trip changed the index")
	}
}

func TestIndexRoundTripNoSketches(t *testing.T) {
	sets := datagen.Uniform(40, 10, 1000, 6).Sets
	ix := Build(sets, 16, 0, 7)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Words != 0 || back.Sketches != nil {
		t.Fatal("sketchless index grew sketches on load")
	}
	if !indexesEqual(ix, back) {
		t.Fatal("round trip changed the index")
	}
}

func TestSaveLoadFile(t *testing.T) {
	ix := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "test.cpsidx")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !indexesEqual(ix, back) {
		t.Fatal("file round trip changed the index")
	}
}

func TestCorruptionDetected(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one payload byte: checksum (or set invariant) must catch it.
	for _, pos := range []int{40, len(raw) / 2, len(raw) - 10} {
		mutated := append([]byte(nil), raw...)
		mutated[pos] ^= 0xff
		if _, err := ReadFrom(bytes.NewReader(mutated)); err == nil {
			t.Errorf("corruption at byte %d not detected", pos)
		}
	}
}

func TestBadMagic(t *testing.T) {
	_, err := ReadFrom(bytes.NewReader([]byte("NOTANIDX........................")))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic error = %v", err)
	}
}

func TestWrongVersionRejected(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8] = 0x6e // container version field
	_, err := ReadFrom(bytes.NewReader(raw))
	if !errors.Is(err, ErrCorrupt) || !errors.Is(err, snapshot.ErrVersion) {
		t.Fatalf("wrong version error = %v, want ErrCorrupt wrapping ErrVersion", err)
	}
}

func TestWrongKindRejected(t *testing.T) {
	// A cpindex/shard snapshot handed to prep.Load must be recognized by
	// its kind tag, not half-decoded.
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf, "cpindex")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrom(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong kind error = %v", err)
	}
}

func TestTruncation(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{5, 30, len(raw) / 2, len(raw) - 2} {
		if _, err := ReadFrom(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestMatrixSectionLengthChecked(t *testing.T) {
	// A header claiming a large signature matrix over an empty sigs
	// section must fail on the length check before allocating.
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf, snapshotKind)
	if err != nil {
		t.Fatal(err)
	}
	var meta snapshot.Buf
	meta.U64(0)       // seed
	meta.U64(1 << 25) // n
	meta.U32(1 << 18) // t — n*t*4 would be 32 TiB
	meta.U32(0)       // words
	if err := w.Section("meta", meta.B); err != nil {
		t.Fatal(err)
	}
	var sets snapshot.Buf
	for i := 0; i < 1<<10; i++ { // some sizes, then truncation territory
		sets.Uvarint(0)
	}
	if err := w.Section("sets", sets.B); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrom(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge matrix header accepted: %v", err)
	}
}

func TestImplausibleHeaderRejected(t *testing.T) {
	// Craft a meta section claiming an absurd t: the CRC is valid, so the
	// plausibility check must catch it.
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf, snapshotKind)
	if err != nil {
		t.Fatal(err)
	}
	var meta snapshot.Buf
	meta.U64(0)          // seed
	meta.U64(1)          // n = 1
	meta.U32(0x7fffffff) // t huge
	meta.U32(0)          // words
	if err := w.Section("meta", meta.B); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrom(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("implausible header accepted: %v", err)
	}
}
