package prep

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/datagen"
)

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	sets := datagen.Uniform(80, 12, 2000, 5).Sets
	return Build(sets, 32, 4, 99)
}

func indexesEqual(a, b *Index) bool {
	if a.T != b.T || a.Words != b.Words || a.Seed != b.Seed || len(a.Sets) != len(b.Sets) {
		return false
	}
	for i := range a.Sets {
		if len(a.Sets[i]) != len(b.Sets[i]) {
			return false
		}
		for j := range a.Sets[i] {
			if a.Sets[i][j] != b.Sets[i][j] {
				return false
			}
		}
	}
	if len(a.Sigs) != len(b.Sigs) || len(a.Sketches) != len(b.Sketches) {
		return false
	}
	for i := range a.Sigs {
		if a.Sigs[i] != b.Sigs[i] {
			return false
		}
	}
	for i := range a.Sketches {
		if a.Sketches[i] != b.Sketches[i] {
			return false
		}
	}
	return true
}

func TestIndexRoundTrip(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !indexesEqual(ix, back) {
		t.Fatal("round trip changed the index")
	}
}

func TestIndexRoundTripNoSketches(t *testing.T) {
	sets := datagen.Uniform(40, 10, 1000, 6).Sets
	ix := Build(sets, 16, 0, 7)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Words != 0 || back.Sketches != nil {
		t.Fatal("sketchless index grew sketches on load")
	}
	if !indexesEqual(ix, back) {
		t.Fatal("round trip changed the index")
	}
}

func TestSaveLoadFile(t *testing.T) {
	ix := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "test.cpsidx")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !indexesEqual(ix, back) {
		t.Fatal("file round trip changed the index")
	}
}

func TestCorruptionDetected(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one payload byte: checksum (or set invariant) must catch it.
	for _, pos := range []int{40, len(raw) / 2, len(raw) - 10} {
		mutated := append([]byte(nil), raw...)
		mutated[pos] ^= 0xff
		if _, err := ReadFrom(bytes.NewReader(mutated)); err == nil {
			t.Errorf("corruption at byte %d not detected", pos)
		}
	}
}

func TestBadMagic(t *testing.T) {
	_, err := ReadFrom(bytes.NewReader([]byte("NOTANIDX........................")))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic error = %v", err)
	}
}

func TestTruncation(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{5, 30, len(raw) / 2, len(raw) - 2} {
		if _, err := ReadFrom(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestImplausibleHeaderRejected(t *testing.T) {
	// Craft a header claiming an absurd t.
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write(make([]byte, 8))                // seed
	buf.Write([]byte{1, 0, 0, 0, 0, 0, 0, 0}) // n = 1
	buf.Write([]byte{0xff, 0xff, 0xff, 0x7f}) // t huge
	buf.Write([]byte{0, 0, 0, 0})             // words
	if _, err := ReadFrom(&buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("implausible header accepted: %v", err)
	}
}
