package prep

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Binary index format: preprocessing a large collection costs a full
// hashing pass per record, so production deployments persist the index
// beside the data and reload it across joins (the paper's "preprocessing
// only has to be performed once" measured in practice).
//
// Layout (all little-endian):
//
//	magic   [8]byte  "CPSIDX\x00\x01"
//	seed    uint64
//	n       uint64   number of sets
//	t       uint32   signature length
//	words   uint32   sketch width (0 = none)
//	sizes   n × uint32
//	tokens  sum(sizes) × uint32   concatenated set contents
//	sigs    n*t × uint32
//	sk      n*words × uint64
//	crc     uint32   CRC-32C of everything above
//
// The sets themselves are stored so a loaded index is self-contained: the
// joins verify candidates against the exact token lists.

var magic = [8]byte{'C', 'P', 'S', 'I', 'D', 'X', 0, 1}

// ErrCorrupt is returned when the on-disk index fails validation.
var ErrCorrupt = errors.New("prep: corrupt index file")

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.MakeTable(crc32.Castagnoli), p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.MakeTable(crc32.Castagnoli), p[:n])
	return n, err
}

// WriteTo serializes the index. It returns the number of bytes written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &crcWriter{w: bw}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	if _, err := cw.Write(magic[:]); err != nil {
		return 0, err
	}
	total := int64(0)
	for _, set := range ix.Sets {
		total += int64(len(set))
	}
	header := []any{
		ix.Seed,
		uint64(len(ix.Sets)),
		uint32(ix.T),
		uint32(ix.Words),
	}
	for _, h := range header {
		if err := write(h); err != nil {
			return 0, err
		}
	}
	sizes := make([]uint32, len(ix.Sets))
	for i, set := range ix.Sets {
		sizes[i] = uint32(len(set))
	}
	if err := write(sizes); err != nil {
		return 0, err
	}
	for _, set := range ix.Sets {
		if err := write(set); err != nil {
			return 0, err
		}
	}
	if err := write(ix.Sigs); err != nil {
		return 0, err
	}
	if ix.Words > 0 {
		if err := write(ix.Sketches); err != nil {
			return 0, err
		}
	}
	crc := cw.crc
	if err := binary.Write(bw, binary.LittleEndian, crc); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	// 8 magic + 8 seed + 8 n + 4 t + 4 words + payload + 4 crc.
	bytes := int64(8+8+8+4+4+4) + int64(4*len(sizes)) + 4*total +
		int64(4*len(ix.Sigs)) + int64(8*len(ix.Sketches))
	return bytes, nil
}

// ReadFrom deserializes an index written by WriteTo.
func ReadFrom(r io.Reader) (*Index, error) {
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<20)}
	read := func(v any) error { return binary.Read(cr, binary.LittleEndian, v) }

	var m [8]byte
	if _, err := io.ReadFull(cr, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	var (
		seed  uint64
		n     uint64
		t     uint32
		words uint32
	)
	for _, v := range []any{&seed, &n, &t, &words} {
		if err := read(v); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
		}
	}
	const maxSets = 1 << 31
	if n > maxSets || t == 0 || t > 1<<20 || words > 1<<16 {
		return nil, fmt.Errorf("%w: implausible header (n=%d t=%d words=%d)", ErrCorrupt, n, t, words)
	}
	sizes := make([]uint32, n)
	if err := read(sizes); err != nil {
		return nil, fmt.Errorf("%w: sizes: %v", ErrCorrupt, err)
	}
	ix := &Index{Seed: seed, T: int(t), Words: int(words)}
	ix.Sets = make([][]uint32, n)
	for i, size := range sizes {
		if size > 1<<28 {
			return nil, fmt.Errorf("%w: implausible set size %d", ErrCorrupt, size)
		}
		set := make([]uint32, size)
		if err := read(set); err != nil {
			return nil, fmt.Errorf("%w: set %d: %v", ErrCorrupt, i, err)
		}
		// Enforce the set invariant on load.
		for j := 1; j < len(set); j++ {
			if set[j] <= set[j-1] {
				return nil, fmt.Errorf("%w: set %d not strictly increasing", ErrCorrupt, i)
			}
		}
		ix.Sets[i] = set
	}
	ix.Sigs = make([]uint32, n*uint64(t))
	if err := read(ix.Sigs); err != nil {
		return nil, fmt.Errorf("%w: signatures: %v", ErrCorrupt, err)
	}
	if words > 0 {
		ix.Sketches = make([]uint64, n*uint64(words))
		if err := read(ix.Sketches); err != nil {
			return nil, fmt.Errorf("%w: sketches: %v", ErrCorrupt, err)
		}
	}
	gotCRC := cr.crc
	var wantCRC uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &wantCRC); err != nil {
		return nil, fmt.Errorf("%w: trailer: %v", ErrCorrupt, err)
	}
	if gotCRC != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return ix, nil
}

// Save writes the index to a file.
func (ix *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads an index from a file.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ix, err := ReadFrom(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ix, nil
}
