package prep

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/snapshot"
)

// Persistence: preprocessing a large collection costs a full hashing
// pass per record, so production deployments persist the index beside
// the data and reload it across joins (the paper's "preprocessing only
// has to be performed once" measured in practice).
//
// The index serializes into the repository-wide snapshot container
// (magic, format version, per-section CRC-32C — see internal/snapshot)
// under kind "prepidx", with sections:
//
//	meta      seed, set count, signature length, sketch width
//	sets      set sizes as varints, then all tokens (uint32, LE)
//	sigs      the flattened n×T signature matrix
//	sketches  the flattened n×Words sketch matrix (present iff Words > 0)
//
// The sets themselves are stored so a loaded index is self-contained:
// the joins verify candidates against the exact token lists.

// snapshotKind tags a prep index container.
const snapshotKind = "prepidx"

// ErrCorrupt is wrapped by every validation failure when loading an
// on-disk index (including container-level corruption and version
// mismatches, which also wrap snapshot.ErrCorrupt/ErrVersion).
var ErrCorrupt = errors.New("prep: corrupt index file")

// WriteTo serializes the index. It returns the number of bytes written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	sw, err := snapshot.NewWriter(w, snapshotKind)
	if err != nil {
		return 0, err
	}
	if err := ix.writeSections(sw); err != nil {
		return sw.Count(), err
	}
	return sw.Count(), sw.Flush()
}

// ReadFrom deserializes an index written by WriteTo. Corruption —
// truncation, flipped bytes, wrong format version, implausible headers —
// yields a descriptive error wrapping ErrCorrupt, never a panic.
func ReadFrom(r io.Reader) (*Index, error) {
	sr, err := snapshot.NewReader(r, snapshotKind)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	ix, err := decodeSections(sr)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return ix, nil
}

func decodeSections(sr *snapshot.Reader) (*Index, error) {
	raw, err := sr.Section("meta")
	if err != nil {
		return nil, err
	}
	meta := snapshot.NewCursor("meta", raw)
	seed := meta.U64()
	n := meta.U64()
	t := meta.U32()
	words := meta.U32()
	if err := meta.Done(); err != nil {
		return nil, err
	}
	const maxSets = 1 << 31
	if n > maxSets || t == 0 || t > 1<<20 || words > 1<<16 {
		return nil, fmt.Errorf("implausible header (n=%d t=%d words=%d)", n, t, words)
	}
	ix := &Index{Seed: seed, T: int(t), Words: int(words)}

	raw, err = sr.Section("sets")
	if err != nil {
		return nil, err
	}
	sc := snapshot.NewCursor("sets", raw)
	ix.Sets = snapshot.DecodeSets(sc, n)
	if err := sc.Done(); err != nil {
		return nil, err
	}

	// The matrix sections are fixed-width, so their element counts are
	// implied by the header; check the payload is exactly that long
	// BEFORE allocating, so a corrupt header can never drive a huge
	// allocation from a small file.
	raw, err = sr.Section("sigs")
	if err != nil {
		return nil, err
	}
	if want := n * uint64(t) * 4; uint64(len(raw)) != want {
		return nil, fmt.Errorf("section \"sigs\" has %d bytes, want %d", len(raw), want)
	}
	gc := snapshot.NewCursor("sigs", raw)
	ix.Sigs = make([]uint32, n*uint64(t))
	for i := range ix.Sigs {
		ix.Sigs[i] = gc.U32()
	}
	if err := gc.Done(); err != nil {
		return nil, err
	}

	if words > 0 {
		raw, err = sr.Section("sketches")
		if err != nil {
			return nil, err
		}
		if want := n * uint64(words) * 8; uint64(len(raw)) != want {
			return nil, fmt.Errorf("section \"sketches\" has %d bytes, want %d", len(raw), want)
		}
		kc := snapshot.NewCursor("sketches", raw)
		ix.Sketches = make([]uint64, n*uint64(words))
		for i := range ix.Sketches {
			ix.Sketches[i] = kc.U64()
		}
		if err := kc.Done(); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Save writes the index to a file atomically (temp file + rename).
func (ix *Index) Save(path string) error {
	return snapshot.WriteFile(path, snapshotKind, ix.writeSections)
}

// writeSections mirrors WriteTo against an already-open container writer.
func (ix *Index) writeSections(w *snapshot.Writer) error {
	var meta snapshot.Buf
	meta.U64(ix.Seed)
	meta.U64(uint64(len(ix.Sets)))
	meta.U32(uint32(ix.T))
	meta.U32(uint32(ix.Words))
	if err := w.Section("meta", meta.B); err != nil {
		return err
	}
	var sets snapshot.Buf
	snapshot.EncodeSets(&sets, ix.Sets)
	if err := w.Section("sets", sets.B); err != nil {
		return err
	}
	var sigs snapshot.Buf
	for _, s := range ix.Sigs {
		sigs.U32(s)
	}
	if err := w.Section("sigs", sigs.B); err != nil {
		return err
	}
	if ix.Words > 0 {
		var sk snapshot.Buf
		for _, s := range ix.Sketches {
			sk.U64(s)
		}
		return w.Section("sketches", sk.B)
	}
	return nil
}

// Load reads an index from a file.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ix, err := ReadFrom(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ix, nil
}
