// Package prep builds the shared preprocessing state of the approximate
// join algorithms: MinHash signatures and 1-bit minwise sketches.
//
// The paper's experiments do not count preprocessing towards join time,
// because the embedding and sketches of a collection are computed once and
// reused across joins at different thresholds (Section VI: "the
// preprocessing step of the approximate methods only has to be performed
// once for each set and similarity measure"). This package makes that
// factoring explicit: build an Index once, run many joins against it.
package prep

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/minhash"
	"repro/internal/sketch"
)

// Index is the preprocessed form of a collection.
type Index struct {
	// Sets is the underlying collection (not copied).
	Sets [][]uint32
	// T is the MinHash signature length; Sigs is the flattened n×T
	// signature matrix.
	T    int
	Sigs []uint32
	// Words is the sketch width in 64-bit words (0 = no sketches);
	// Sketches is the flattened n×Words sketch matrix.
	Words    int
	Sketches []uint64
	// Seed is the randomness the index was built with.
	Seed uint64
}

// Build preprocesses a collection: t-dimensional MinHash signatures and,
// if words > 0, 1-bit minwise sketches of the given width.
func Build(sets [][]uint32, t, words int, seed uint64) *Index {
	return BuildParallel(sets, t, words, seed, 1)
}

// BuildParallel is Build with the per-set hashing spread across the given
// number of workers on the shared execution layer. The hash functions are
// fixed by the seed and each set's signature and sketch land in
// preallocated flat slots, so the result is byte-identical to the
// sequential Build for any worker count.
func BuildParallel(sets [][]uint32, t, words int, seed uint64, workers int) *Index {
	if t <= 0 {
		panic(fmt.Sprintf("prep: invalid signature length %d", t))
	}
	ix := &Index{Sets: sets, T: t, Seed: seed}
	signer := minhash.NewSigner(t, seed)
	ix.Sigs = make([]uint32, len(sets)*t)
	var maker *sketch.Maker
	if words > 0 {
		ix.Words = words
		maker = sketch.NewMaker(words, seed+0x51ee7c)
		ix.Sketches = make([]uint64, len(sets)*words)
	}
	sign := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			signer.SignInto(sets[i], ix.Sigs[i*t:(i+1)*t])
			if maker != nil {
				maker.SketchInto(sets[i], ix.Sketches[i*words:(i+1)*words])
			}
		}
	}
	const chunk = 256 // sets per task: tens of ms of hashing each
	if workers <= 1 || len(sets) <= chunk {
		sign(0, len(sets))
		return ix
	}
	exec.RunChunks(workers, len(sets), chunk, func(c *exec.Ctx, lo, hi int) { sign(lo, hi) })
	return ix
}

// Sig returns the signature of set i.
func (ix *Index) Sig(i int) []uint32 {
	return ix.Sigs[i*ix.T : (i+1)*ix.T]
}

// Sketch returns the sketch of set i; it panics if sketches are disabled.
func (ix *Index) Sketch(i int) []uint64 {
	if ix.Words == 0 {
		panic("prep: index built without sketches")
	}
	return ix.Sketches[i*ix.Words : (i+1)*ix.Words]
}
