// Package prep builds the shared preprocessing state of the approximate
// join algorithms: MinHash signatures and 1-bit minwise sketches.
//
// The paper's experiments do not count preprocessing towards join time,
// because the embedding and sketches of a collection are computed once and
// reused across joins at different thresholds (Section VI: "the
// preprocessing step of the approximate methods only has to be performed
// once for each set and similarity measure"). This package makes that
// factoring explicit: build an Index once, run many joins against it.
package prep

import (
	"fmt"

	"repro/internal/minhash"
	"repro/internal/sketch"
)

// Index is the preprocessed form of a collection.
type Index struct {
	// Sets is the underlying collection (not copied).
	Sets [][]uint32
	// T is the MinHash signature length; Sigs is the flattened n×T
	// signature matrix.
	T    int
	Sigs []uint32
	// Words is the sketch width in 64-bit words (0 = no sketches);
	// Sketches is the flattened n×Words sketch matrix.
	Words    int
	Sketches []uint64
	// Seed is the randomness the index was built with.
	Seed uint64
}

// Build preprocesses a collection: t-dimensional MinHash signatures and,
// if words > 0, 1-bit minwise sketches of the given width.
func Build(sets [][]uint32, t, words int, seed uint64) *Index {
	if t <= 0 {
		panic(fmt.Sprintf("prep: invalid signature length %d", t))
	}
	ix := &Index{Sets: sets, T: t, Seed: seed}
	signer := minhash.NewSigner(t, seed)
	ix.Sigs = signer.SignAll(sets)
	if words > 0 {
		ix.Words = words
		maker := sketch.NewMaker(words, seed+0x51ee7c)
		ix.Sketches = maker.SketchAll(sets)
	}
	return ix
}

// Sig returns the signature of set i.
func (ix *Index) Sig(i int) []uint32 {
	return ix.Sigs[i*ix.T : (i+1)*ix.T]
}

// Sketch returns the sketch of set i; it panics if sketches are disabled.
func (ix *Index) Sketch(i int) []uint64 {
	if ix.Words == 0 {
		panic("prep: index built without sketches")
	}
	return ix.Sketches[i*ix.Words : (i+1)*ix.Words]
}
