package allpairs

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/intset"
	"repro/internal/stats"
	"repro/internal/verify"
)

func randomSets(seed int64, n, maxLen, universe int) [][]uint32 {
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]uint32, n)
	for i := range sets {
		m := 2 + rng.Intn(maxLen-1)
		s := make([]uint32, 0, m)
		for j := 0; j < m; j++ {
			s = append(s, uint32(rng.Intn(universe)))
		}
		s = intset.Normalize(s)
		for len(s) < 2 {
			s = intset.Normalize(append(s, uint32(rng.Intn(universe))))
		}
		sets[i] = s
	}
	return sets
}

func TestExactAgainstBruteForce(t *testing.T) {
	for _, tc := range []struct {
		seed              int64
		n, maxLen, domain int
	}{
		{1, 150, 12, 30},  // small dense sets: many results
		{2, 200, 20, 200}, // sparser
		{3, 100, 40, 60},  // large sets, tiny universe: extreme density
		{4, 300, 8, 2000}, // rare tokens: prefix filter's home turf
	} {
		sets := randomSets(tc.seed, tc.n, tc.maxLen, tc.domain)
		for _, lambda := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
			want := verify.BruteForceJoin(sets, lambda)
			got, counters := Join(sets, lambda)
			if !stats.EqualPairSets(got, want) {
				t.Fatalf("seed=%d λ=%v: AllPairs %d pairs, brute force %d; missing=%v",
					tc.seed, lambda, len(got), len(want),
					stats.Missing(got, want))
			}
			if counters.Results != int64(len(got)) {
				t.Errorf("Results counter %d != %d pairs", counters.Results, len(got))
			}
			if counters.Candidates > counters.PreCandidates {
				t.Errorf("candidates %d > pre-candidates %d",
					counters.Candidates, counters.PreCandidates)
			}
		}
	}
}

func TestIdenticalSets(t *testing.T) {
	sets := [][]uint32{
		{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {4, 5, 6},
	}
	got, _ := Join(sets, 0.9)
	if len(got) != 3 { // three identical pairs
		t.Fatalf("got %d pairs, want 3: %v", len(got), got)
	}
}

func TestTinyInputs(t *testing.T) {
	if got, _ := Join(nil, 0.5); got != nil {
		t.Errorf("Join(nil) = %v", got)
	}
	if got, _ := Join([][]uint32{{1, 2}}, 0.5); got != nil {
		t.Errorf("Join(single) = %v", got)
	}
	got, _ := Join([][]uint32{{1, 2}, {1, 2}}, 0.5)
	if len(got) != 1 {
		t.Errorf("Join(two identical) = %v", got)
	}
}

func TestInputNotModified(t *testing.T) {
	sets := [][]uint32{{5, 9, 11}, {5, 9, 12}, {1, 2}}
	orig := make([][]uint32, len(sets))
	for i := range sets {
		orig[i] = append([]uint32(nil), sets[i]...)
	}
	Join(sets, 0.5)
	for i := range sets {
		if !intset.Equal(sets[i], orig[i]) {
			t.Fatalf("input set %d modified: %v -> %v", i, orig[i], sets[i])
		}
	}
}

func TestPrefixLengths(t *testing.T) {
	// probePrefix: a set of size 10 at λ=0.5 needs overlap >= 5 with the
	// smallest partner, so 10-5+1 = 6 prefix tokens suffice.
	if got := probePrefix(10, 0.5); got != 6 {
		t.Errorf("probePrefix(10, 0.5) = %d, want 6", got)
	}
	// indexPrefix: equal-size partner needs overlap >= ceil(2*0.5/1.5*10)=7.
	if got := indexPrefix(10, 0.5); got != 4 {
		t.Errorf("indexPrefix(10, 0.5) = %d, want 4", got)
	}
	// High threshold: prefixes shrink.
	if got := probePrefix(10, 0.9); got != 2 {
		t.Errorf("probePrefix(10, 0.9) = %d, want 2", got)
	}
}

func TestOnGeneratedWorkloads(t *testing.T) {
	uniform := datagen.Uniform(400, 10, 100, 17)
	zipf := datagen.Zipf(400, 10, 500, 1.0, 18)
	for name, ds := range map[string][][]uint32{"uniform": uniform.Sets, "zipf": zipf.Sets} {
		for _, lambda := range []float64{0.5, 0.7} {
			want := verify.BruteForceJoin(ds, lambda)
			got, _ := Join(ds, lambda)
			if !stats.EqualPairSets(got, want) {
				t.Fatalf("%s λ=%v: got %d pairs, want %d", name, lambda, len(got), len(want))
			}
		}
	}
}

func BenchmarkAllPairsUniform(b *testing.B) {
	ds := datagen.Uniform(2000, 10, 300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(ds.Sets, 0.5)
	}
}
