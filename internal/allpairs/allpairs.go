// Package allpairs implements the ALLPAIRS exact set similarity join of
// Bayardo, Ma and Srikant (WWW 2007) for Jaccard thresholds, in the
// optimized formulation of Mann, Augsten and Bouros (VLDB 2016) whose
// implementation the CPSJoin paper uses as the representative
// state-of-the-art exact baseline ("ALL").
//
// The algorithm processes sets in order of increasing size, keeping an
// inverted index over the *prefix* of each processed set. Tokens within a
// set are ordered by increasing global frequency, so prefixes consist of
// the rarest tokens and inverted lists stay short — this is exactly the
// structural assumption ("many rare tokens") whose absence CPSJoin is
// robust to.
package allpairs

import (
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/intset"
	"repro/internal/verify"
)

// probePrefix returns the probing prefix length for a set of the given
// size: tokens outside the prefix cannot be the sole witness of a match
// with any candidate of size >= lambda*size.
func probePrefix(size int, lambda float64) int {
	// Minimum overlap with any join partner is ceil(lambda * size)
	// (achieved when the partner has size lambda*size).
	minOverlap := int(math.Ceil(lambda * float64(size)))
	if minOverlap < 1 {
		minOverlap = 1
	}
	return size - minOverlap + 1
}

// indexPrefix returns the indexing prefix length: only this many tokens
// need to enter the inverted index, because any future probe set is at
// least as large, so the equivalent-overlap bound is at least
// ceil(2*lambda/(1+lambda) * size).
func indexPrefix(size int, lambda float64) int {
	minOverlap := int(math.Ceil(2 * lambda / (1 + lambda) * float64(size)))
	if minOverlap < 1 {
		minOverlap = 1
	}
	return size - minOverlap + 1
}

type posting struct {
	id uint32 // index into the size-sorted collection
}

// Join computes the exact self-join {(i, j) : J(sets[i], sets[j]) >= lambda}
// and returns the pairs (in original indices) together with candidate
// statistics. The input sets must be normalized (sorted, unique); they are
// not modified.
func Join(sets [][]uint32, lambda float64) ([]verify.Pair, verify.Counters) {
	return JoinWorkers(sets, lambda, 1)
}

// JoinWorkers is Join executed with the given worker count on the shared
// execution layer (0 = sequential, negative = GOMAXPROCS). The sequential
// algorithm interleaves probing and indexing (a set only probes smaller
// sets, indexed before it); the parallel variant materializes the complete
// prefix index first, then probes every set concurrently against the
// postings of strictly smaller ids — the same candidate set, so pairs
// *and* counters are identical to the sequential run for any worker count.
func JoinWorkers(sets [][]uint32, lambda float64, workers int) ([]verify.Pair, verify.Counters) {
	if len(sets) < 2 {
		return nil, verify.Counters{}
	}
	if workers = exec.EffectiveWorkers(workers); workers > 1 {
		return joinParallel(sets, lambda, workers)
	}
	var counters verify.Counters
	// Work on a frequency-remapped, size-sorted copy.
	ds := (&dataset.Dataset{Sets: sets}).Clone()
	ds.RemapByFrequency()
	perm := ds.SortBySize()
	sorted := ds.Sets

	index := make(map[uint32][]posting)
	// listStart[token] tracks how far the list head has been pruned by the
	// minsize filter; sizes only grow, so pruning is monotone.
	listStart := make(map[uint32]int)

	overlap := make([]int32, len(sorted)) // candidate overlap accumulator
	touched := make([]uint32, 0, 1024)

	var pairs []verify.Pair

	for xi := 0; xi < len(sorted); xi++ {
		x := sorted[xi]
		sx := len(x)
		minsize := int(math.Ceil(lambda * float64(sx)))
		pp := probePrefix(sx, lambda)
		touched = touched[:0]

		for p := 0; p < pp; p++ {
			tok := x[p]
			list := index[tok]
			start := listStart[tok]
			// Prune candidates below the size filter once and for all:
			// postings are appended in size order.
			for start < len(list) && len(sorted[list[start].id]) < minsize {
				start++
			}
			if start > 0 {
				listStart[tok] = start
			}
			for _, post := range list[start:] {
				counters.PreCandidates++
				if overlap[post.id] == 0 {
					touched = append(touched, post.id)
				}
				overlap[post.id]++
			}
		}

		// Verify unique candidates.
		for _, yi := range touched {
			overlap[yi] = 0
			counters.Candidates++
			y := sorted[yi]
			required := intset.JaccardOverlapBound(sx, len(y), lambda)
			if _, ok := intset.IntersectSizeAtLeast(x, y, required); ok {
				counters.Results++
				pairs = append(pairs, verify.MakePair(uint32(perm[xi]), uint32(perm[yi])))
			}
		}

		// Index the midprefix of x.
		ip := indexPrefix(sx, lambda)
		for p := 0; p < ip; p++ {
			index[x[p]] = append(index[x[p]], posting{id: uint32(xi)})
		}
	}
	return pairs, counters
}

// joinParallel probes all sets concurrently against a fully materialized
// prefix index. Postings are appended in id order, and ids are size
// order, so each probe binary-searches its minsize lower bound and stops
// at the first posting with id >= its own — exactly the candidates the
// incremental index would have held.
func joinParallel(sets [][]uint32, lambda float64, workers int) ([]verify.Pair, verify.Counters) {
	ds := (&dataset.Dataset{Sets: sets}).Clone()
	ds.RemapByFrequency()
	perm := ds.SortBySize()
	sorted := ds.Sets
	n := len(sorted)

	index := make(map[uint32][]uint32)
	for xi, x := range sorted {
		ip := indexPrefix(len(x), lambda)
		for p := 0; p < ip; p++ {
			index[x[p]] = append(index[x[p]], uint32(xi))
		}
	}

	// Per-worker scratch: the overlap accumulator is O(n) per worker, so
	// memory scales with the worker count, not the probe count.
	type scratch struct {
		overlap []int32
		touched []uint32
		pairs   []verify.Pair
		c       verify.Counters
	}
	scr := make([]*scratch, workers)
	for i := range scr {
		scr[i] = &scratch{overlap: make([]int32, n), touched: make([]uint32, 0, 1024)}
	}

	probe := func(w *scratch, xi int) {
		x := sorted[xi]
		sx := len(x)
		minsize := int(math.Ceil(lambda * float64(sx)))
		pp := probePrefix(sx, lambda)
		touched := w.touched[:0]
		for p := 0; p < pp; p++ {
			list := index[x[p]]
			start := sort.Search(len(list), func(i int) bool {
				return len(sorted[list[i]]) >= minsize
			})
			for _, yi := range list[start:] {
				if int(yi) >= xi {
					break
				}
				w.c.PreCandidates++
				if w.overlap[yi] == 0 {
					touched = append(touched, yi)
				}
				w.overlap[yi]++
			}
		}
		for _, yi := range touched {
			w.overlap[yi] = 0
			w.c.Candidates++
			y := sorted[yi]
			required := intset.JaccardOverlapBound(sx, len(y), lambda)
			if _, ok := intset.IntersectSizeAtLeast(x, y, required); ok {
				w.c.Results++
				w.pairs = append(w.pairs, verify.MakePair(uint32(perm[xi]), uint32(perm[yi])))
			}
		}
		w.touched = touched[:0]
	}

	// Default chunking is small enough that stealing balances the skew
	// from size-sorted probes (late ids are the largest sets and the most
	// expensive).
	exec.RunChunks(workers, n, 0, func(c *exec.Ctx, lo, hi int) {
		w := scr[c.Worker()]
		for xi := lo; xi < hi; xi++ {
			probe(w, xi)
		}
	})

	var pairs []verify.Pair
	var counters verify.Counters
	for _, w := range scr {
		pairs = append(pairs, w.pairs...)
		counters.Add(w.c)
	}
	return pairs, counters
}
