package allpairs

import (
	"math"
	"sort"

	"repro/internal/exec"
	"repro/internal/intset"
	"repro/internal/verify"
)

// JoinRS computes the exact R-S join {(i, j) : J(r[i], s[j]) >= lambda}
// with prefix filtering: the collection S is indexed once by its prefixes,
// then every record of R probes the index. Pairs are returned with A
// indexing r and B indexing s.
//
// Prefix soundness for two-collection joins: a qualifying pair needs
// overlap at least ceil(λ/(1+λ)(|x|+|y|)), which is at least
// ceil(λ·|x|) and at least ceil(λ·|y|) for any pair passing the size
// filter λ|x| <= |y| <= |x|/λ; hence prefixes of length
// |x| - ceil(λ|x|) + 1 on both sides must share a token under any common
// global token order.
func JoinRS(r, s [][]uint32, lambda float64) ([]verify.Pair, verify.Counters) {
	return JoinRSWorkers(r, s, lambda, 1)
}

// JoinRSWorkers is JoinRS with the R-side probes spread over the given
// number of workers (0 = sequential, negative = GOMAXPROCS). The S index
// is built once and read-only during probing, and each probe is
// independent, so pairs and counters are identical for any worker count.
func JoinRSWorkers(r, s [][]uint32, lambda float64, workers int) ([]verify.Pair, verify.Counters) {
	if len(r) == 0 || len(s) == 0 {
		return nil, verify.Counters{}
	}
	workers = exec.EffectiveWorkers(workers)

	// Build a shared frequency order over R ∪ S and produce reordered
	// copies (rare tokens first) without touching the inputs.
	freq := make(map[uint32]int)
	for _, x := range r {
		for _, tok := range x {
			freq[tok]++
		}
	}
	for _, y := range s {
		for _, tok := range y {
			freq[tok]++
		}
	}
	rank := rankByFrequency(freq)
	rr := reorder(r, rank)
	ss := reorder(s, rank)

	// Index the prefixes of S.
	prefixLen := func(size int) int {
		mo := int(math.Ceil(lambda * float64(size)))
		if mo < 1 {
			mo = 1
		}
		return size - mo + 1
	}
	index := make(map[uint32][]uint32)
	for yi, y := range ss {
		for p := 0; p < prefixLen(len(y)); p++ {
			index[y[p]] = append(index[y[p]], uint32(yi))
		}
	}

	type scratch struct {
		overlapSeen []bool
		touched     []uint32
		pairs       []verify.Pair
		c           verify.Counters
	}
	scr := make([]*scratch, workers)
	for i := range scr {
		scr[i] = &scratch{overlapSeen: make([]bool, len(ss)), touched: make([]uint32, 0, 256)}
	}

	probe := func(w *scratch, xi int) {
		x := rr[xi]
		touched := w.touched[:0]
		for p := 0; p < prefixLen(len(x)); p++ {
			for _, yi := range index[x[p]] {
				w.c.PreCandidates++
				if w.overlapSeen[yi] {
					continue
				}
				w.overlapSeen[yi] = true
				touched = append(touched, yi)
			}
		}
		for _, yi := range touched {
			w.overlapSeen[yi] = false
			y := ss[yi]
			// Size filter.
			la, lb := len(x), len(y)
			if la > lb {
				la, lb = lb, la
			}
			if float64(la) < lambda*float64(lb) {
				continue
			}
			w.c.Candidates++
			required := intset.JaccardOverlapBound(len(x), len(y), lambda)
			if _, ok := intset.IntersectSizeAtLeast(x, y, required); ok {
				w.c.Results++
				w.pairs = append(w.pairs, verify.Pair{A: uint32(xi), B: yi})
			}
		}
		w.touched = touched[:0]
	}

	if workers <= 1 {
		for xi := range rr {
			probe(scr[0], xi)
		}
	} else {
		exec.RunChunks(workers, len(rr), 0, func(c *exec.Ctx, lo, hi int) {
			w := scr[c.Worker()]
			for xi := lo; xi < hi; xi++ {
				probe(w, xi)
			}
		})
	}

	var pairs []verify.Pair
	var counters verify.Counters
	for _, w := range scr {
		pairs = append(pairs, w.pairs...)
		counters.Add(w.c)
	}
	return pairs, counters
}

// rankByFrequency assigns each token a rank by ascending frequency.
func rankByFrequency(freq map[uint32]int) map[uint32]uint32 {
	tokens := make([]uint32, 0, len(freq))
	for tok := range freq {
		tokens = append(tokens, tok)
	}
	sort.Slice(tokens, func(i, j int) bool {
		fi, fj := freq[tokens[i]], freq[tokens[j]]
		if fi != fj {
			return fi < fj
		}
		return tokens[i] < tokens[j]
	})
	rank := make(map[uint32]uint32, len(tokens))
	for i, tok := range tokens {
		rank[tok] = uint32(i)
	}
	return rank
}

// reorder maps every set through rank and sorts it ascending (rare-first).
func reorder(sets [][]uint32, rank map[uint32]uint32) [][]uint32 {
	out := make([][]uint32, len(sets))
	for i, set := range sets {
		m := make([]uint32, len(set))
		for j, tok := range set {
			m[j] = rank[tok]
		}
		sort.Slice(m, func(a, b int) bool { return m[a] < m[b] })
		out[i] = m
	}
	return out
}
