package allpairs

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/intset"
	"repro/internal/verify"
)

// bruteForceRS is the quadratic reference for the R-S join.
func bruteForceRS(r, s [][]uint32, lambda float64) map[verify.Pair]bool {
	out := make(map[verify.Pair]bool)
	for i, x := range r {
		for j, y := range s {
			if intset.Jaccard(x, y) >= lambda {
				out[verify.Pair{A: uint32(i), B: uint32(j)}] = true
			}
		}
	}
	return out
}

func TestJoinRSExact(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 4; trial++ {
		r := randomSets(rng.Int63(), 120, 15, 80)
		s := randomSets(rng.Int63(), 150, 15, 80)
		for _, lambda := range []float64{0.5, 0.7, 0.9} {
			want := bruteForceRS(r, s, lambda)
			got, counters := JoinRS(r, s, lambda)
			if len(got) != len(want) {
				t.Fatalf("trial %d λ=%v: got %d pairs, want %d", trial, lambda, len(got), len(want))
			}
			for _, p := range got {
				if !want[p] {
					t.Fatalf("unexpected pair %v", p)
				}
			}
			if counters.Results != int64(len(got)) {
				t.Errorf("Results counter mismatch")
			}
		}
	}
}

func TestJoinRSDisjointCollections(t *testing.T) {
	r := [][]uint32{{1, 2, 3}}
	s := [][]uint32{{4, 5, 6}}
	if got, _ := JoinRS(r, s, 0.5); len(got) != 0 {
		t.Fatalf("disjoint collections matched: %v", got)
	}
}

func TestJoinRSIdentity(t *testing.T) {
	sets := randomSets(61, 50, 10, 40)
	got, _ := JoinRS(sets, sets, 0.99)
	// Every set matches itself (J=1); identical duplicates add more.
	if len(got) < len(sets) {
		t.Fatalf("self-identity pairs missing: %d < %d", len(got), len(sets))
	}
	found := make(map[uint32]bool)
	for _, p := range got {
		if p.A == p.B {
			found[p.A] = true
		}
	}
	if len(found) != len(sets) {
		t.Fatalf("only %d/%d identity pairs", len(found), len(sets))
	}
}

func TestJoinRSEmpty(t *testing.T) {
	if got, _ := JoinRS(nil, [][]uint32{{1}}, 0.5); got != nil {
		t.Error("JoinRS(nil, s) returned pairs")
	}
	if got, _ := JoinRS([][]uint32{{1}}, nil, 0.5); got != nil {
		t.Error("JoinRS(r, nil) returned pairs")
	}
}

func TestJoinRSInputsNotModified(t *testing.T) {
	r := [][]uint32{{9, 20, 31}}
	s := [][]uint32{{9, 20, 40}}
	JoinRS(r, s, 0.5)
	if !intset.Equal(r[0], []uint32{9, 20, 31}) || !intset.Equal(s[0], []uint32{9, 20, 40}) {
		t.Fatal("inputs modified")
	}
}

func TestJoinRSOnGenerated(t *testing.T) {
	dr := datagen.Zipf(200, 12, 300, 0.8, 62)
	ds := datagen.Zipf(250, 12, 300, 0.8, 63)
	want := bruteForceRS(dr.Sets, ds.Sets, 0.6)
	got, _ := JoinRS(dr.Sets, ds.Sets, 0.6)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
}
