// Package tabhash implements tabulation (Zobrist) hashing and the small
// deterministic PRNG used to seed it.
//
// The CPSJoin paper uses Zobrist hashing from 32 bits to 64 bits with 8-bit
// characters as the hash family underlying MinHash, and Zobrist hashing to a
// single bit for 1-bit minwise sketches. Simple tabulation hashing has been
// shown to have strong minwise-hashing properties (Pătraşcu & Thorup, JACM
// 2012) and is very fast in practice: a hash evaluation is four table
// lookups and three XORs.
package tabhash

// SplitMix64 is a tiny, high-quality PRNG used to fill tabulation tables and
// to derive per-repetition seeds. It is the seed-expansion generator of
// xoshiro/xoroshiro and passes BigCrush when used this way.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("tabhash: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill here;
	// the modulo bias for n << 2^64 is negligible for our workloads.
	return int(s.Next() % uint64(n))
}

// Mix64 is a stateless avalanche mix of a 64-bit value (the splitmix64
// finalizer). Useful for deriving independent seeds from (seed, index).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed derives a child seed from a parent seed and two stable
// identifiers (e.g. a signature position and a minhash value). The
// recursive algorithms use it to give every tree node randomness that
// depends only on its path from the root, never on sibling traversal
// order or scheduling — the discipline that makes parallel runs
// reproducible.
func DeriveSeed(seed, a, b uint64) uint64 {
	return Mix64(seed ^ (a+1)*0xbf58476d1ce4e5b9 ^ (b+1)*0x94d049bb133111eb)
}

// Table32 is a simple tabulation hash function from 32-bit keys to 64-bit
// values, using four 8-bit characters.
type Table32 struct {
	t0, t1, t2, t3 [256]uint64
}

// NewTable32 returns a tabulation hash function with tables filled from the
// given seed.
func NewTable32(seed uint64) *Table32 {
	rng := NewSplitMix64(seed)
	t := &Table32{}
	for i := 0; i < 256; i++ {
		t.t0[i] = rng.Next()
		t.t1[i] = rng.Next()
		t.t2[i] = rng.Next()
		t.t3[i] = rng.Next()
	}
	return t
}

// Hash returns the 64-bit tabulation hash of x.
func (t *Table32) Hash(x uint32) uint64 {
	return t.t0[byte(x)] ^ t.t1[byte(x>>8)] ^ t.t2[byte(x>>16)] ^ t.t3[byte(x>>24)]
}

// Bit returns a single pseudorandom bit for x, derived from the same
// tabulation tables. Used for the 1-bit minwise hashing of Li and König.
func (t *Table32) Bit(x uint32) uint64 {
	return t.Hash(x) & 1
}

// Table64 is a simple tabulation hash function from 64-bit keys to 64-bit
// values, using eight 8-bit characters. It is used to hash minhash values
// (which are 64-bit) down to sketch bits and bucket keys.
type Table64 struct {
	t [8][256]uint64
}

// NewTable64 returns a tabulation hash function with tables filled from the
// given seed.
func NewTable64(seed uint64) *Table64 {
	rng := NewSplitMix64(seed)
	t := &Table64{}
	for c := 0; c < 8; c++ {
		for i := 0; i < 256; i++ {
			t.t[c][i] = rng.Next()
		}
	}
	return t
}

// Hash returns the 64-bit tabulation hash of x.
func (t *Table64) Hash(x uint64) uint64 {
	return t.t[0][byte(x)] ^
		t.t[1][byte(x>>8)] ^
		t.t[2][byte(x>>16)] ^
		t.t[3][byte(x>>24)] ^
		t.t[4][byte(x>>32)] ^
		t.t[5][byte(x>>40)] ^
		t.t[6][byte(x>>48)] ^
		t.t[7][byte(x>>56)]
}

// Bit returns a single pseudorandom bit for x.
func (t *Table64) Bit(x uint64) uint64 {
	return t.Hash(x) & 1
}
