package tabhash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewSplitMix64(43)
	same := 0
	a = NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/100", same)
	}
}

// Known-answer test pinned to the reference splitmix64 outputs for seed 0
// (Vigna's reference C implementation).
func TestSplitMix64KnownAnswers(t *testing.T) {
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("splitmix64(seed 0) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSplitMix64(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewSplitMix64(10)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewSplitMix64(11)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestTable32Deterministic(t *testing.T) {
	a := NewTable32(5)
	b := NewTable32(5)
	f := func(x uint32) bool { return a.Hash(x) == b.Hash(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTable32Uniformity(t *testing.T) {
	// Each output bit of the tabulation hash should be ~balanced over a
	// range of inputs.
	h := NewTable32(6)
	const n = 1 << 14
	ones := make([]int, 64)
	for x := uint32(0); x < n; x++ {
		v := h.Hash(x)
		for b := 0; b < 64; b++ {
			if v>>uint(b)&1 == 1 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		frac := float64(c) / n
		if frac < 0.45 || frac > 0.55 {
			t.Fatalf("bit %d biased: fraction of ones %v", b, frac)
		}
	}
}

func TestTable32CollisionRate(t *testing.T) {
	h := NewTable32(7)
	seen := make(map[uint64]bool, 1<<16)
	collisions := 0
	for x := uint32(0); x < 1<<16; x++ {
		v := h.Hash(x)
		if seen[v] {
			collisions++
		}
		seen[v] = true
	}
	// 2^16 draws from 2^64 values: expected collisions ~ 2^32/2^65 ≈ 0.
	if collisions > 1 {
		t.Fatalf("too many 64-bit collisions: %d", collisions)
	}
}

func TestTable64Deterministic(t *testing.T) {
	a := NewTable64(5)
	b := NewTable64(5)
	f := func(x uint64) bool { return a.Hash(x) == b.Hash(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitBalance(t *testing.T) {
	h32 := NewTable32(8)
	h64 := NewTable64(8)
	const n = 1 << 14
	ones32, ones64 := 0, 0
	for x := uint32(0); x < n; x++ {
		ones32 += int(h32.Bit(x))
		ones64 += int(h64.Bit(uint64(x) * 0x9e3779b97f4a7c15))
	}
	for name, ones := range map[string]int{"bit32": ones32, "bit64": ones64} {
		frac := float64(ones) / n
		if frac < 0.45 || frac > 0.55 {
			t.Fatalf("%s biased: fraction of ones %v", name, frac)
		}
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~half the output bits on average.
	total := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		x := Mix64(uint64(i) * 0x2545f4914f6cdd1d)
		y := Mix64(x)
		flipped := Mix64(x ^ 1)
		diff := y ^ flipped
		total += popcount(diff)
	}
	mean := float64(total) / trials
	if mean < 28 || mean > 36 {
		t.Fatalf("avalanche mean bit flips = %v, want ~32", mean)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func BenchmarkTable32Hash(b *testing.B) {
	h := NewTable32(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= h.Hash(uint32(i))
	}
	_ = sink
}

func BenchmarkTable64Hash(b *testing.B) {
	h := NewTable64(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= h.Hash(uint64(i))
	}
	_ = sink
}
