package cpindex

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the full index codec with attacker-controlled bytes.
// The decode contract: a corrupt, truncated or wrong-version snapshot
// yields a descriptive error — never a panic, unbounded allocation or a
// structurally invalid index. Anything that does decode must be usable:
// the target runs queries against it, so a decoder that ever let an
// out-of-range leaf id or position through would crash right here.
func FuzzDecode(f *testing.F) {
	// Seed with valid snapshots of two differently shaped indexes, so
	// mutation explores the format rather than rediscovering the magic.
	for _, seed := range []uint64{1, 99} {
		sets := [][]uint32{{1, 2, 3}, {2, 3, 4}, {5, 6}, {1, 9, 12, 40}}
		ix := Build(sets, 0.5, &Options{Trees: 2, LeafSize: 2, Seed: seed})
		var buf bytes.Buffer
		if err := ix.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()*2/3]) // truncation
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A decoded index must answer queries without panicking and obey
		// the result contract (verified sims above lambda).
		for _, q := range [][]uint32{{1, 2, 3}, {5, 6}, {7}} {
			if id, sim, ok := ix.Query(q); ok {
				if id < 0 || id >= ix.Len() || sim < ix.Lambda() {
					t.Fatalf("decoded index returned invalid match (%d, %v)", id, sim)
				}
			}
			for _, m := range ix.QueryAll(q) {
				if m.ID < 0 || m.ID >= ix.Len() || m.Sim < ix.Lambda() {
					t.Fatalf("decoded index returned invalid match %+v", m)
				}
			}
		}
	})
}

// FuzzDecodeLayouts pins the flat/pointer equivalence on decoder output
// rather than builder output: whatever tree shapes a (possibly mutated)
// snapshot decodes into, the flat engine compiled from them must answer
// every probe byte-identically to the pointer walk. Decode flattens
// unconditionally, so any structure the decoder accepts but flatten
// mishandles — span overflow, bucket ordering, leaf detection — surfaces
// here as a divergence or a panic.
func FuzzDecodeLayouts(f *testing.F) {
	for _, seed := range []uint64{7, 1234} {
		sets := [][]uint32{{1, 2, 3}, {2, 3, 4}, {5, 6}, {1, 9, 12, 40}, {3, 4, 5, 6, 7}}
		ix := Build(sets, 0.4, &Options{Trees: 3, LeafSize: 1, Seed: seed})
		var buf bytes.Buffer
		if err := ix.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	probes := [][]uint32{{1, 2, 3}, {2, 3, 4}, {5, 6}, {1, 9, 12, 40}, {3, 4, 5, 6, 7}, {8, 11}, nil}
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, q := range probes {
			ix.SetLayout(LayoutFlat)
			fid, fsim, fok := ix.Query(q)
			fall := ix.QueryAll(q)
			ix.SetLayout(LayoutPointer)
			pid, psim, pok := ix.Query(q)
			pall := ix.QueryAll(q)
			if fid != pid || fsim != psim || fok != pok {
				t.Fatalf("Query(%v): flat (%d, %v, %v) != pointer (%d, %v, %v)",
					q, fid, fsim, fok, pid, psim, pok)
			}
			if len(fall) != len(pall) {
				t.Fatalf("QueryAll(%v): flat %v != pointer %v", q, fall, pall)
			}
			for i := range fall {
				if fall[i] != pall[i] {
					t.Fatalf("QueryAll(%v)[%d]: flat %+v != pointer %+v", q, i, fall[i], pall[i])
				}
			}
		}
	})
}
