package cpindex

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the full index codec with attacker-controlled bytes.
// The decode contract: a corrupt, truncated or wrong-version snapshot
// yields a descriptive error — never a panic, unbounded allocation or a
// structurally invalid index. Anything that does decode must be usable:
// the target runs queries against it, so a decoder that ever let an
// out-of-range leaf id or position through would crash right here.
func FuzzDecode(f *testing.F) {
	// Seed with valid snapshots of two differently shaped indexes, so
	// mutation explores the format rather than rediscovering the magic.
	for _, seed := range []uint64{1, 99} {
		sets := [][]uint32{{1, 2, 3}, {2, 3, 4}, {5, 6}, {1, 9, 12, 40}}
		ix := Build(sets, 0.5, &Options{Trees: 2, LeafSize: 2, Seed: seed})
		var buf bytes.Buffer
		if err := ix.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()*2/3]) // truncation
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A decoded index must answer queries without panicking and obey
		// the result contract (verified sims above lambda).
		for _, q := range [][]uint32{{1, 2, 3}, {5, 6}, {7}} {
			if id, sim, ok := ix.Query(q); ok {
				if id < 0 || id >= ix.Len() || sim < ix.Lambda() {
					t.Fatalf("decoded index returned invalid match (%d, %v)", id, sim)
				}
			}
			for _, m := range ix.QueryAll(q) {
				if m.ID < 0 || m.ID >= ix.Len() || m.Sim < ix.Lambda() {
					t.Fatalf("decoded index returned invalid match %+v", m)
				}
			}
		}
	})
}
