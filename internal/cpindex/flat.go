package cpindex

import (
	"fmt"
	"math"
	"sort"
)

// Layout selects the in-memory representation queries traverse. Both
// layouts answer every query byte-identically (the model harness and the
// fuzz targets enforce this); they differ only in speed.
type Layout int

const (
	// LayoutFlat (the default) traverses the contiguous CSR arrays built
	// by flatten: no pointer chasing, no map lookups, and — together with
	// the pooled query scratch — zero allocations per query.
	LayoutFlat Layout = iota
	// LayoutPointer traverses the original *node trees with per-position
	// map buckets. Kept as the reference implementation for equivalence
	// testing and as the encoding source for persistence.
	LayoutPointer
)

// flatTrees is the contiguous-array form of an index's trees: a CSR-style
// node table whose leaves are spans into one shared id array and whose
// internal nodes are spans of sampled positions, each position owning a
// span of (value, child) bucket entries sorted by value. Queries walk it
// iteratively with an explicit stack instead of recursing through
// pointers, and probe buckets by binary/linear search instead of map
// lookups.
type flatTrees struct {
	roots   []int32      // node index of each tree's root
	nodes   []flatNode   // all nodes of all trees
	leafIDs []uint32     // concatenated leaf id spans
	pos     []flatPos    // concatenated sampled-position spans
	buckets []flatBucket // concatenated per-position bucket spans
}

// flatNode is one node of the flat layout. A node is a leaf iff
// posLo == posHi: internal nodes always sample at least one position
// (Build converts position-less nodes to leaves and the decoder rejects
// internal nodes with zero positions), so the position span doubles as
// the discriminator and no tag byte is needed.
type flatNode struct {
	leafLo, leafHi uint32 // leafIDs[leafLo:leafHi], leaves only
	posLo, posHi   uint32 // pos[posLo:posHi], internal nodes only
}

// flatPos is one sampled signature position of an internal node, with its
// bucket span.
type flatPos struct {
	pos      uint32 // signature position in [0, T)
	bLo, bHi uint32 // buckets[bLo:bHi], sorted by val
}

// flatBucket maps one minhash value at a sampled position to a child node.
type flatBucket struct {
	val   uint32
	child int32
}

// flatten converts pointer trees into the flat layout. Bucket entries are
// emitted in ascending value order (the same canonical order encodeNode
// persists), so the flat structure is a pure function of the logical tree,
// independent of map iteration order.
func flatten(trees []*node) *flatTrees {
	f := &flatTrees{roots: make([]int32, len(trees))}
	for i, tr := range trees {
		f.roots[i] = f.add(tr)
	}
	if len(f.nodes) > math.MaxInt32 || len(f.leafIDs) > math.MaxUint32 ||
		len(f.pos) > math.MaxUint32 || len(f.buckets) > math.MaxUint32 {
		panic(fmt.Sprintf("cpindex: flat layout overflow (%d nodes)", len(f.nodes)))
	}
	return f
}

// add appends n's subtree and returns its node index. The node's spans are
// reserved contiguously before recursing, so children (whose own entries
// land after the reservation) can never fragment them.
func (f *flatTrees) add(n *node) int32 {
	idx := int32(len(f.nodes))
	f.nodes = append(f.nodes, flatNode{})
	if n.leaf != nil {
		lo := uint32(len(f.leafIDs))
		f.leafIDs = append(f.leafIDs, n.leaf...)
		f.nodes[idx] = flatNode{leafLo: lo, leafHi: uint32(len(f.leafIDs))}
		return idx
	}
	posLo := uint32(len(f.pos))
	for _, p := range n.positions {
		f.pos = append(f.pos, flatPos{pos: uint32(p)})
	}
	f.nodes[idx].posLo = posLo
	f.nodes[idx].posHi = uint32(len(f.pos))
	for i := range n.positions {
		m := n.children[i]
		vals := make([]uint32, 0, len(m))
		for v := range m {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		bLo := uint32(len(f.buckets))
		for _, v := range vals {
			f.buckets = append(f.buckets, flatBucket{val: v})
		}
		f.pos[posLo+uint32(i)].bLo = bLo
		f.pos[posLo+uint32(i)].bHi = uint32(len(f.buckets))
		for j, v := range vals {
			f.buckets[bLo+uint32(j)].child = f.add(m[v])
		}
	}
	return idx
}

// findChild probes the bucket span [bLo, bHi) for val: a linear scan for
// short spans, binary search otherwise. Spans are sorted by value.
func (f *flatTrees) findChild(bLo, bHi, val uint32) (int32, bool) {
	if bHi-bLo <= 8 {
		for i := bLo; i < bHi; i++ {
			if f.buckets[i].val == val {
				return f.buckets[i].child, true
			}
		}
		return 0, false
	}
	lo, hi := bLo, bHi
	for lo < hi {
		mid := (lo + hi) / 2
		if f.buckets[mid].val < val {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < bHi && f.buckets[lo].val == val {
		return f.buckets[lo].child, true
	}
	return 0, false
}

// collect walks the tree rooted at root in exactly the depth-first order
// the pointer-path recursion uses and appends every not-yet-visited leaf
// id to sc.cands in visit order, stamping it in the epoch-keyed visited
// array. Candidates are verified (Jaccard) by the caller; separating
// traversal from verification changes nothing because verification has no
// effect on the walk.
func (f *flatTrees) collect(root int32, qsig []uint32, sc *queryScratch) {
	stack := append(sc.stack[:0], root)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &f.nodes[ni]
		if n.posLo == n.posHi { // leaf
			for _, id := range f.leafIDs[n.leafLo:n.leafHi] {
				if sc.visited[id] != sc.epoch {
					sc.visited[id] = sc.epoch
					sc.cands = append(sc.cands, id)
					sc.stats.Candidates++
				}
			}
			continue
		}
		// Push matching children in reverse position order so the LIFO pop
		// explores position 0's child first — the recursion's order.
		for pi := n.posHi; pi > n.posLo; pi-- {
			p := &f.pos[pi-1]
			if child, ok := f.findChild(p.bLo, p.bHi, qsig[p.pos]); ok {
				stack = append(stack, child)
			}
		}
	}
	sc.stack = stack // keep the grown stack for reuse
}

// queryScratch is the per-query working memory both layouts share: the
// signature buffer, the epoch-stamped visited array that replaces the old
// per-query seen map, the traversal stack, and the candidate buffer.
// Instances are pooled per Index, so steady-state queries allocate
// nothing. The stats fields accumulate this query's candidate-pipeline
// counts (reset by getScratch, flushed to the attached QueryCounters and
// returned per call by the WithStats entry points) — riding the pooled
// scratch is what keeps instrumentation off the allocation path.
type queryScratch struct {
	qsig    []uint32 // query signature, len T
	visited []uint32 // visited[id] == epoch ⇔ id already scanned this query
	epoch   uint32
	stack   []int32  // flat traversal stack
	cands   []uint32 // new candidate ids, in visit order
	setBuf  []uint32 // mapped-mode candidate set decode buffer
	stats   QueryStats
}

// getScratch returns a pooled scratch sized for this index with a fresh
// epoch. On epoch wraparound the visited array is cleared, so stale stamps
// from 2^32 queries ago can never alias.
func (ix *Index) getScratch() *queryScratch {
	sc, _ := ix.scratch.Get().(*queryScratch)
	if sc == nil {
		sc = new(queryScratch)
	}
	if len(sc.qsig) != ix.opt.T {
		sc.qsig = make([]uint32, ix.opt.T)
	}
	if len(sc.visited) < len(ix.sets) {
		sc.visited = make([]uint32, len(ix.sets))
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.visited)
		sc.epoch = 1
	}
	sc.cands = sc.cands[:0]
	sc.stats = QueryStats{}
	return sc
}

func (ix *Index) putScratch(sc *queryScratch) { ix.scratch.Put(sc) }
