package cpindex

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/snapshot"
)

// buildContainer encodes a small but non-trivial index (several trees,
// real internal nodes) as a standalone container.
func buildContainer(tb testing.TB, seed uint64) (*Index, []byte) {
	tb.Helper()
	sets := [][]uint32{
		{1, 2, 3}, {2, 3, 4}, {5, 6}, {1, 9, 12, 40},
		{3, 4, 5, 6, 7}, {2, 4, 9}, {7, 8, 9, 10}, {1, 3, 40},
	}
	ix := Build(sets, 0.4, &Options{Trees: 3, LeafSize: 2, Seed: seed})
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		tb.Fatal(err)
	}
	return ix, buf.Bytes()
}

func openMappedBytes(tb testing.TB, data []byte) (*Mapped, error) {
	tb.Helper()
	snap, err := snapshot.OpenMapped(data, SnapshotKind)
	if err != nil {
		return nil, err
	}
	return OpenMapped(snap, nil)
}

var mappedProbes = [][]uint32{
	{1, 2, 3}, {2, 3, 4}, {5, 6}, {1, 9, 12, 40},
	{3, 4, 5, 6, 7}, {8, 11}, {2, 4}, {40}, nil,
}

// TestMappedMatchesIndex pins the tentpole equivalence at the cpindex
// layer: the lazily decoded mapped view answers Query and AppendAll
// byte-identically to the fully decoded index, including the candidate
// pipeline stats (same traversal, same verification kernel).
func TestMappedMatchesIndex(t *testing.T) {
	for _, seed := range []uint64{1, 42, 99} {
		ix, data := buildContainer(t, seed)
		m, err := openMappedBytes(t, data)
		if err != nil {
			t.Fatalf("seed %d: open mapped: %v", seed, err)
		}
		if m.Len() != ix.Len() || m.Lambda() != ix.Lambda() || m.Options() != ix.Options() {
			t.Fatalf("seed %d: mapped meta diverges: %d/%v/%+v vs %d/%v/%+v",
				seed, m.Len(), m.Lambda(), m.Options(), ix.Len(), ix.Lambda(), ix.Options())
		}
		nodes, leaves := m.Structure()
		if nodes != ix.Nodes || leaves != ix.Leaves {
			t.Fatalf("seed %d: mapped structure %d/%d, index %d/%d", seed, nodes, leaves, ix.Nodes, ix.Leaves)
		}
		for _, q := range mappedProbes {
			hid, hsim, hok, hst := ix.QueryWithStats(q)
			cid, csim, cok, cst, err := m.QueryWithStats(q)
			if err != nil {
				t.Fatalf("seed %d: mapped Query(%v): %v", seed, q, err)
			}
			if cid != hid || csim != hsim || cok != hok || cst != hst {
				t.Fatalf("seed %d: Query(%v): mapped (%d,%v,%v,%+v) != hot (%d,%v,%v,%+v)",
					seed, q, cid, csim, cok, cst, hid, hsim, hok, hst)
			}
			hall, hallSt := ix.AppendAllWithStats(nil, q)
			call, callSt, err := m.AppendAllWithStats(nil, q)
			if err != nil {
				t.Fatalf("seed %d: mapped AppendAll(%v): %v", seed, q, err)
			}
			if len(hall) != len(call) || hallSt != callSt {
				t.Fatalf("seed %d: AppendAll(%v): mapped %v/%+v != hot %v/%+v",
					seed, q, call, callSt, hall, hallSt)
			}
			for i := range hall {
				if hall[i] != call[i] {
					t.Fatalf("seed %d: AppendAll(%v)[%d]: mapped %+v != hot %+v", seed, q, i, call[i], hall[i])
				}
			}
		}
		// Set / Sets materialization must round-trip the exact collection.
		sets, err := m.Sets()
		if err != nil {
			t.Fatalf("seed %d: Sets: %v", seed, err)
		}
		for i, want := range ix.Sets() {
			got, err := m.Set(i)
			if err != nil {
				t.Fatalf("seed %d: Set(%d): %v", seed, i, err)
			}
			if len(got) != len(want) || len(sets[i]) != len(want) {
				t.Fatalf("seed %d: set %d lengths diverge", seed, i)
			}
			for j := range want {
				if got[j] != want[j] || sets[i][j] != want[j] {
					t.Fatalf("seed %d: set %d token %d diverges", seed, i, j)
				}
			}
		}
	}
}

// TestMappedTruncated: every proper prefix of a valid container must fail
// with a descriptive error — at open, never a panic and never a decode.
func TestMappedTruncated(t *testing.T) {
	_, data := buildContainer(t, 7)
	for n := 0; n < len(data); n++ {
		m, err := openMappedBytes(t, data[:n])
		if err == nil {
			// The mapped open is lazy, so a truncation that leaves every
			// section header intact can only surface at first query.
			if _, _, _, qerr := m.Query([]uint32{1, 2, 3}); qerr == nil {
				t.Fatalf("truncation to %d/%d bytes opened and queried cleanly", n, len(data))
			}
			continue
		}
		if !errors.Is(err, snapshot.ErrCorrupt) && !errors.Is(err, snapshot.ErrVersion) {
			t.Fatalf("truncation to %d bytes: error %v wraps neither ErrCorrupt nor ErrVersion", n, err)
		}
	}
}

// TestMappedBitFlip: a flipped bit in any section payload must surface as
// ErrCorrupt at open or first touch — never a wrong answer. The sets
// payload is the interesting case: its pages are untouched at open and
// only checksummed when a candidate first reaches exact verification.
func TestMappedBitFlip(t *testing.T) {
	ix, data := buildContainer(t, 13)
	snap, err := snapshot.OpenMapped(data, SnapshotKind)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"meta", "trees", "sets"} {
		s := snap.Lookup(name)
		if s == nil || s.Len == 0 {
			t.Fatalf("valid container has no %q payload", name)
		}
		// Flip the last payload byte: in "sets" that is token data, past the
		// size prefix the lazy open parses unverified.
		corrupt := append([]byte(nil), data...)
		corrupt[s.Off+s.Len-1] ^= 0x40

		m, err := openMappedBytes(t, corrupt)
		if err != nil {
			if !errors.Is(err, snapshot.ErrCorrupt) {
				t.Fatalf("%s flip: open error %v does not wrap ErrCorrupt", name, err)
			}
			continue // caught at open (meta is read eagerly)
		}
		for _, q := range mappedProbes {
			wantID, wantSim, wantOK := ix.Query(q)
			id, sim, ok, err := m.Query(q)
			if err != nil {
				if !errors.Is(err, snapshot.ErrCorrupt) {
					t.Fatalf("%s flip: query error %v does not wrap ErrCorrupt", name, err)
				}
				continue
			}
			// A query that never touched the corrupt bytes may legitimately
			// succeed — but then it must agree with the pristine index.
			if id != wantID || sim != wantSim || ok != wantOK {
				t.Fatalf("%s flip: Query(%v) silently answered (%d,%v,%v), pristine index says (%d,%v,%v)",
					name, q, id, sim, ok, wantID, wantSim, wantOK)
			}
		}
		if name == "sets" {
			// The self-query of every indexed set reaches verification, so
			// at least the deferred sets checksum must have fired.
			if _, err := m.Sets(); err == nil {
				t.Fatalf("sets flip: whole-collection materialization passed the checksum")
			} else if !errors.Is(err, snapshot.ErrCorrupt) {
				t.Fatalf("sets flip: Sets error %v does not wrap ErrCorrupt", err)
			}
		}
	}
}

// TestMappedNonzeroPadding: version-3 alignment padding must be zero; a
// dirty pad byte (a misaligned or hand-edited file) fails at open.
func TestMappedNonzeroPadding(t *testing.T) {
	_, data := buildContainer(t, 21)
	snap, err := snapshot.OpenMapped(data, SnapshotKind)
	if err != nil {
		t.Fatal(err)
	}
	const chl = 8 + 4 + 8
	prevEnd := int64(chl)
	patched := false
	for _, s := range snap.Sections() {
		hdrOff := s.Off - 20
		if hdrOff > prevEnd {
			corrupt := append([]byte(nil), data...)
			corrupt[prevEnd] = 0xFF
			if _, err := openMappedBytes(t, corrupt); !errors.Is(err, snapshot.ErrCorrupt) {
				t.Fatalf("dirty pad byte at %d: error %v does not wrap ErrCorrupt", prevEnd, err)
			}
			patched = true
		}
		prevEnd = s.Off + s.Len
	}
	if !patched {
		t.Fatal("container has no alignment padding to corrupt — section sizes all 8-aligned?")
	}
}

// FuzzMappedDecode drives the lazy mapped decoder with attacker-controlled
// bytes, with the eager decoder as a differential oracle: whatever bytes
// both accept must answer queries identically, anything else must fail
// with an error — never a panic, an unbounded allocation or an invalid
// match.
func FuzzMappedDecode(f *testing.F) {
	for _, seed := range []uint64{1, 99} {
		_, data := buildContainer(f, seed)
		f.Add(data)
		f.Add(data[:len(data)*2/3]) // truncation
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)-1] ^= 0x01 // sets payload flip
		f.Add(flipped)
	}
	probes := [][]uint32{{1, 2, 3}, {5, 6}, {3, 4, 5, 6, 7}, {7}, nil}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := openMappedBytes(t, data)
		if err != nil {
			return
		}
		hot, hotErr := Decode(bytes.NewReader(data))
		for _, q := range probes {
			id, sim, ok, err := m.Query(q)
			if err != nil {
				continue // corruption surfaced at first touch — the contract
			}
			if ok && (id < 0 || id >= m.Len() || sim < m.Lambda()) {
				t.Fatalf("mapped index returned invalid match (%d, %v)", id, sim)
			}
			if hotErr == nil {
				hid, hsim, hok := hot.Query(q)
				if id != hid || sim != hsim || ok != hok {
					t.Fatalf("Query(%v): mapped (%d,%v,%v) != decoded (%d,%v,%v)",
						q, id, sim, ok, hid, hsim, hok)
				}
			}
			ms, err := m.AppendAll(nil, q)
			if err != nil {
				continue
			}
			for _, match := range ms {
				if match.ID < 0 || match.ID >= m.Len() || match.Sim < m.Lambda() {
					t.Fatalf("mapped index returned invalid match %+v", match)
				}
			}
		}
	})
}
