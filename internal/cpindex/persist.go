package cpindex

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/minhash"
	"repro/internal/snapshot"
)

// Snapshot support: a built Index is static — randomized tries over an
// immutable collection — so it serializes into the shared snapshot
// container and loads back in I/O time instead of rebuild time. Three
// sections:
//
//	meta   lambda, options, structure stats, set count
//	sets   the collection (set sizes as varints, then all tokens)
//	trees  the repetition tries, pre-order, bucket values sorted
//
// The MinHash signer is not stored: it is a pure function of (T, Seed)
// and is reconstructed on load. The build-time signature matrix is not
// stored either — queries sign only the query set — so a loaded index
// answers Query/QueryAll byte-identically to the original while the
// snapshot stays proportional to sets + tries.

// SnapshotKind tags a standalone cpindex container; embedders (the shard
// package) use their own kind and splice the sections in via
// EncodeSections/DecodeSections.
const SnapshotKind = "cpindex"

// maxSets bounds the plausible collection size on load.
const maxSets = 1 << 31

// Encode serializes the index as one snapshot container.
func (ix *Index) Encode(w io.Writer) error {
	sw, err := snapshot.NewWriter(w, SnapshotKind)
	if err != nil {
		return err
	}
	if err := ix.EncodeSections(sw); err != nil {
		return err
	}
	return sw.Flush()
}

// Decode deserializes an index written by Encode.
func Decode(r io.Reader) (*Index, error) {
	sr, err := snapshot.NewReader(r, SnapshotKind)
	if err != nil {
		return nil, err
	}
	return DecodeSections(sr)
}

// Save writes the index to path atomically.
func (ix *Index) Save(path string) error {
	return snapshot.WriteFile(path, SnapshotKind, ix.EncodeSections)
}

// Load reads an index saved by Save.
func Load(path string) (*Index, error) {
	var ix *Index
	err := snapshot.ReadFile(path, SnapshotKind, func(r *snapshot.Reader) error {
		var err error
		ix, err = DecodeSections(r)
		return err
	})
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// Options returns the options the index was built with (Workers reflects
// build-time parallelism only; it has no effect on a built index).
func (ix *Index) Options() Options { return ix.opt }

// Lambda returns the similarity threshold the index was built for.
func (ix *Index) Lambda() float64 { return ix.lambda }

// Sets returns the indexed collection (not a copy).
func (ix *Index) Sets() [][]uint32 { return ix.sets }

// EncodeSections writes the index's sections into an open container.
func (ix *Index) EncodeSections(w *snapshot.Writer) error {
	var meta snapshot.Buf
	meta.F64(ix.lambda)
	meta.U32(uint32(ix.opt.T))
	meta.U32(uint32(ix.opt.LeafSize))
	meta.U32(uint32(ix.opt.MaxDepth))
	meta.U32(uint32(ix.opt.Trees))
	meta.U64(ix.opt.Seed)
	meta.U64(uint64(ix.Nodes))
	meta.U64(uint64(ix.Leaves))
	meta.U64(uint64(len(ix.sets)))
	if err := w.Section("meta", meta.B); err != nil {
		return err
	}

	var sets snapshot.Buf
	snapshot.EncodeSets(&sets, ix.sets)
	if err := w.Section("sets", sets.B); err != nil {
		return err
	}

	var trees snapshot.Buf
	for _, tree := range ix.trees {
		encodeNode(&trees, tree)
	}
	return w.Section("trees", trees.B)
}

// encodeNode writes one node pre-order. The tag varint carries the node
// shape in its low bit (1 = leaf) and the element count above it. Bucket
// maps iterate in randomized order, so values are sorted before writing —
// snapshots of the same index are byte-identical.
func encodeNode(b *snapshot.Buf, n *node) {
	if n.leaf != nil {
		b.Uvarint(uint64(len(n.leaf))<<1 | 1)
		for _, id := range n.leaf {
			b.Uvarint(uint64(id))
		}
		return
	}
	b.Uvarint(uint64(len(n.positions)) << 1)
	for i, pos := range n.positions {
		b.Uvarint(uint64(pos))
		m := n.children[i]
		b.Uvarint(uint64(len(m)))
		vals := make([]uint32, 0, len(m))
		for v := range m {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		for _, v := range vals {
			b.Uvarint(uint64(v))
			encodeNode(b, m[v])
		}
	}
}

// DecodeSections reads the index's sections from an open container,
// validating every structural invariant: a corrupt or truncated snapshot
// yields a descriptive error, never a panic or a silently wrong index.
func DecodeSections(r *snapshot.Reader) (*Index, error) {
	metaRaw, err := r.Section("meta")
	if err != nil {
		return nil, err
	}
	meta := snapshot.NewCursor("meta", metaRaw)
	lambda := meta.F64()
	opt := Options{
		T:        int(meta.U32()),
		LeafSize: int(meta.U32()),
		MaxDepth: int(meta.U32()),
		Trees:    int(meta.U32()),
		Seed:     meta.U64(),
	}
	nodes := meta.U64()
	leaves := meta.U64()
	nsets := meta.U64()
	if err := meta.Done(); err != nil {
		return nil, err
	}
	if lambda <= 0 || lambda >= 1 {
		return nil, fmt.Errorf("%w: lambda %v out of (0,1)", snapshot.ErrCorrupt, lambda)
	}
	// MaxDepth bounds the tree decoder's recursion, so it gets a hard cap
	// of its own: a build derives MaxDepth from ln(n), which never gets
	// anywhere near 2^16, while an unchecked value from a crafted file
	// could nest the payload deep enough to overflow the stack.
	if opt.T <= 0 || opt.T > 1<<20 || opt.LeafSize <= 0 ||
		opt.MaxDepth <= 0 || opt.MaxDepth > 1<<16 ||
		opt.Trees <= 0 || opt.Trees > 1<<16 || nsets > maxSets {
		return nil, fmt.Errorf("%w: implausible index meta (T=%d leaf=%d depth=%d trees=%d sets=%d)",
			snapshot.ErrCorrupt, opt.T, opt.LeafSize, opt.MaxDepth, opt.Trees, nsets)
	}

	setsRaw, err := r.Section("sets")
	if err != nil {
		return nil, err
	}
	sc := snapshot.NewCursor("sets", setsRaw)
	sets := snapshot.DecodeSets(sc, nsets)
	if err := sc.Done(); err != nil {
		return nil, err
	}

	treesRaw, err := r.Section("trees")
	if err != nil {
		return nil, err
	}
	tc := snapshot.NewCursor("trees", treesRaw)
	dec := &nodeDecoder{c: tc, nsets: uint64(nsets), t: opt.T, maxDepth: opt.MaxDepth}
	trees := make([]*node, opt.Trees)
	for i := range trees {
		trees[i] = dec.node(0)
		if tc.Err() != nil {
			return nil, tc.Err()
		}
	}
	if err := tc.Done(); err != nil {
		return nil, err
	}

	ix := &Index{
		sets:   sets,
		lambda: lambda,
		opt:    opt,
		signer: minhash.NewSigner(opt.T, opt.Seed),
		trees:  trees,
		Nodes:  int(nodes),
		Leaves: int(leaves),
	}
	// Snapshots persist the pointer trees only; the flat query layout is
	// always rebuilt from them, so it cannot be corrupted independently
	// and decoded indexes start on the (default) flat layout.
	ix.flat = flatten(ix.trees)
	return ix, nil
}

// nodeDecoder rebuilds one trie, enforcing the invariants a valid build
// produces: leaf ids within the collection, positions within [0, T),
// depth within MaxDepth (+1 for the root, so the recursion is bounded by
// trusted meta, not by attacker-controlled payload nesting).
type nodeDecoder struct {
	c        *snapshot.Cursor
	nsets    uint64
	t        int
	maxDepth int
}

func (d *nodeDecoder) node(depth int) *node {
	if d.c.Err() != nil {
		return nil
	}
	if depth > d.maxDepth {
		d.c.Fail("tree deeper than MaxDepth %d", d.maxDepth)
		return nil
	}
	tag := d.c.Uvarint()
	count := int(tag >> 1)
	if tag&1 == 1 { // leaf
		if uint64(count) > d.nsets || count > d.c.Remaining() {
			d.c.Fail("leaf with implausible id count %d", count)
			return nil
		}
		leaf := make([]uint32, count)
		for i := range leaf {
			id := d.c.Uvarint()
			if id >= d.nsets {
				d.c.Fail("leaf id %d out of [0,%d)", id, d.nsets)
				return nil
			}
			leaf[i] = uint32(id)
		}
		return &node{leaf: leaf}
	}
	if count == 0 {
		d.c.Fail("internal node with no positions")
		return nil
	}
	if count > d.t {
		d.c.Fail("internal node with %d positions for T=%d", count, d.t)
		return nil
	}
	n := &node{
		positions: make([]int, 0, count),
		children:  make([]map[uint32]*node, 0, count),
	}
	for i := 0; i < count; i++ {
		pos := d.c.Uvarint()
		if pos >= uint64(d.t) {
			d.c.Fail("position %d out of [0,%d)", pos, d.t)
			return nil
		}
		nbuckets := d.c.Count(int(d.nsets) + 1)
		m := make(map[uint32]*node, nbuckets)
		for j := 0; j < nbuckets; j++ {
			v := d.c.Uvarint()
			if v > 1<<32-1 {
				d.c.Fail("bucket value %d overflows uint32", v)
				return nil
			}
			child := d.node(depth + 1)
			if d.c.Err() != nil {
				return nil
			}
			m[uint32(v)] = child
		}
		n.positions = append(n.positions, int(pos))
		n.children = append(n.children, m)
	}
	return n
}
