// Package cpindex implements the Chosen Path similarity search index of
// Christiani and Pagh (STOC 2017) — reference [5] of the CPSJoin paper
// and the data structure the join algorithm is derived from.
//
// The index answers approximate similarity search: given a query set q,
// return some indexed set y with J(q, y) >= λ if one exists, with
// probability at least ϕ. It materializes the same random splitting trees
// that CPSJoin traverses on the fly (Section IV-B of the paper discusses
// the trade-off: the index stores the trees and supports online queries at
// the cost of O(n^(1+ρ)) space, while CPSJoin streams them in near-linear
// space). Having both makes the relationship concrete and testable.
package cpindex

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/intset"
	"repro/internal/minhash"
	"repro/internal/tabhash"
)

// Options configures index construction.
type Options struct {
	// T is the MinHash signature length (default 128).
	T int
	// LeafSize stops splitting when a node is at most this large
	// (default 32).
	LeafSize int
	// MaxDepth caps tree depth (default ln(n)/ln(1/λ) + 4, the classic
	// worst-case parameterization).
	MaxDepth int
	// Trees is the number of independent trees (repetitions); more trees
	// increase recall (default 10).
	Trees int
	// Seed makes construction reproducible.
	Seed uint64
	// Workers is the worker count of the parallel execution layer used
	// during Build: 0 runs sequentially, negative selects GOMAXPROCS.
	// Signatures are computed in chunked tasks and each tree is built by
	// an independent task (trees are seeded by their index, so the built
	// structure is identical for any worker count). Queries are
	// unaffected: a built Index is read-only and safe for concurrent use.
	Workers int
	// Layout selects the query-time representation (default LayoutFlat).
	// Answers are byte-identical either way; this is a speed knob and a
	// testing hook, and is deliberately not persisted — decoded indexes
	// always start on the flat layout.
	Layout Layout
}

func (o *Options) withDefaults() Options {
	opt := Options{}
	if o != nil {
		opt = *o
	}
	if opt.T <= 0 {
		opt.T = 128
	}
	if opt.LeafSize <= 0 {
		opt.LeafSize = 32
	}
	if opt.Trees <= 0 {
		opt.Trees = 10
	}
	return opt
}

// Index is a built Chosen Path search structure over a collection.
type Index struct {
	sets   [][]uint32
	lambda float64
	opt    Options

	signer *minhash.Signer
	sigs   []uint32
	trees  []*node
	flat   *flatTrees

	// scratch pools queryScratch instances; see getScratch.
	scratch sync.Pool

	// counters is the optional cross-query stats sink (nil when detached);
	// see SetCounters.
	counters *QueryCounters

	// Stats describe the built structure.
	Nodes  int
	Leaves int
}

// QueryStats is one query's candidate-pipeline breakdown — the same
// quantities the paper's evaluation measures per repetition. In this
// index every candidate is verified exactly (there is no intermediate
// sketch filter on the query path; JaccardAtLeast early-exits instead),
// so Verified always equals Candidates and Rejected counts the
// verifications that fell below lambda.
type QueryStats struct {
	// Candidates is the number of distinct leaf ids the tree walk reached
	// (after the per-tree visited dedup).
	Candidates uint64 `json:"candidates"`
	// Verified is the number of exact Jaccard verifications run.
	Verified uint64 `json:"verified"`
	// Rejected is the number of verifications below the threshold.
	Rejected uint64 `json:"rejected"`
}

func (s *QueryStats) add(o QueryStats) {
	s.Candidates += o.Candidates
	s.Verified += o.Verified
	s.Rejected += o.Rejected
}

// QueryCounters aggregates QueryStats across queries (and, when shared,
// across the indexes of a sharded ring): three atomic counters, safe for
// concurrent queries. A sharded index attaches one QueryCounters to every
// shard it builds, loads or compacts, so the totals stay monotone across
// ring changes.
type QueryCounters struct {
	Candidates atomic.Uint64
	Verified   atomic.Uint64
	Rejected   atomic.Uint64
}

// SetCounters attaches (or, with nil, detaches) the cross-query stats
// sink. Attach before serving: the pointer is read on every query without
// synchronization. The per-query cost is three atomic adds at query end —
// the hot path stays allocation-free.
func (ix *Index) SetCounters(c *QueryCounters) { ix.counters = c }

// flushStats publishes one finished query's scratch-accumulated stats to
// the attached counters.
func (ix *Index) flushStats(sc *queryScratch) {
	if c := ix.counters; c != nil {
		c.Candidates.Add(sc.stats.Candidates)
		c.Verified.Add(sc.stats.Verified)
		c.Rejected.Add(sc.stats.Rejected)
	}
}

// node is one vertex of a Chosen Path tree. Leaves hold record ids;
// internal nodes hold, for each sampled signature position, a bucket map
// from minhash value to child.
type node struct {
	leaf      []uint32
	positions []int
	children  []map[uint32]*node
}

// Build constructs the index for similarity threshold lambda. With
// Options.Workers set, signature computation and the independent trees
// are built concurrently on the shared execution layer; the resulting
// structure is identical to a sequential build.
func Build(sets [][]uint32, lambda float64, o *Options) *Index {
	if lambda <= 0 || lambda >= 1 {
		panic(fmt.Sprintf("cpindex: lambda %v out of (0,1)", lambda))
	}
	opt := o.withDefaults()
	if opt.MaxDepth <= 0 {
		opt.MaxDepth = int(math.Ceil(math.Log(float64(len(sets)+1))/math.Log(1/lambda))) + 4
	}
	workers := exec.EffectiveWorkers(opt.Workers)
	ix := &Index{
		sets:   sets,
		lambda: lambda,
		opt:    opt,
		signer: minhash.NewSigner(opt.T, opt.Seed),
	}
	ix.sigs = ix.signAll(sets, workers)

	all := make([]uint32, len(sets))
	for i := range all {
		all[i] = uint32(i)
	}
	splitProb := 1 / (lambda * float64(opt.T))
	ix.trees = make([]*node, opt.Trees)
	counts := make([]treeCounts, opt.Trees)
	buildTree := func(tr int) {
		ix.trees[tr] = ix.build(all, 0, tabhash.Mix64(opt.Seed+uint64(tr)*0xc9f1), splitProb, &counts[tr])
	}
	if workers <= 1 || opt.Trees <= 1 {
		for tr := 0; tr < opt.Trees; tr++ {
			buildTree(tr)
		}
	} else {
		tasks := make([]exec.Task, opt.Trees)
		for tr := range tasks {
			tr := tr
			tasks[tr] = func(c *exec.Ctx) { buildTree(tr) }
		}
		exec.Run(workers, tasks...)
	}
	for _, c := range counts {
		ix.Nodes += c.nodes
		ix.Leaves += c.leaves
	}
	ix.flat = flatten(ix.trees)
	return ix
}

// SetLayout switches the representation subsequent queries traverse. It
// is a configuration call, not a query-path one: do not race it with
// in-flight queries.
func (ix *Index) SetLayout(l Layout) { ix.opt.Layout = l }

// treeCounts accumulates structure statistics per tree task, summed into
// the Index after the pool quiesces.
type treeCounts struct {
	nodes, leaves int
}

// signAll computes the flattened signature matrix, chunked across workers.
func (ix *Index) signAll(sets [][]uint32, workers int) []uint32 {
	t := ix.opt.T
	const chunk = 256
	if workers <= 1 || len(sets) <= chunk {
		return ix.signer.SignAll(sets)
	}
	flat := make([]uint32, len(sets)*t)
	exec.RunChunks(workers, len(sets), chunk, func(c *exec.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			ix.signer.SignInto(sets[i], flat[i*t:(i+1)*t])
		}
	})
	return flat
}

// build constructs the subtree for ids. Each node derives its randomness
// from a seed determined by its path from the root (parent seed plus the
// position/value bucket that formed it), never from the order siblings
// happen to be built in — the same discipline as the CPSJoin recursion in
// internal/core, and what makes the built structure reproducible.
func (ix *Index) build(ids []uint32, depth int, seed uint64, splitProb float64, tc *treeCounts) *node {
	tc.nodes++
	if len(ids) <= ix.opt.LeafSize || depth >= ix.opt.MaxDepth {
		tc.leaves++
		return &node{leaf: ids}
	}
	rng := tabhash.NewSplitMix64(seed)
	n := &node{}
	for pos := 0; pos < ix.opt.T; pos++ {
		if rng.Float64() >= splitProb {
			continue
		}
		buckets := make(map[uint32][]uint32)
		for _, id := range ids {
			v := ix.sigs[int(id)*ix.opt.T+pos]
			buckets[v] = append(buckets[v], id)
		}
		childMap := make(map[uint32]*node, len(buckets))
		for v, bucket := range buckets {
			cseed := tabhash.DeriveSeed(seed, uint64(pos), uint64(v))
			childMap[v] = ix.build(bucket, depth+1, cseed, splitProb, tc)
		}
		n.positions = append(n.positions, pos)
		n.children = append(n.children, childMap)
	}
	if len(n.positions) == 0 {
		// No position sampled: the node dies in the branching process;
		// keep its points reachable as a leaf so recall only improves.
		tc.leaves++
		return &node{leaf: ids}
	}
	return n
}

// Len returns the number of indexed sets.
func (ix *Index) Len() int { return len(ix.sets) }

// Query returns an indexed set with J(q, result) >= lambda if the search
// finds one: the id, its exact similarity, and whether one was found. The
// query set must be normalized. Each true near neighbor is found with
// constant probability per tree, so with the default 10 trees recall is
// high; misses (ok = false despite a neighbor existing) happen with the
// (λ, ϕ) guarantee's residual probability.
func (ix *Index) Query(q []uint32) (int, float64, bool) {
	id, sim, ok, _ := ix.QueryWithStats(q)
	return id, sim, ok
}

// QueryWithStats is Query plus this call's candidate-pipeline breakdown —
// the per-query numbers debug traces and the slow-query log report. The
// stats are also flushed to the attached QueryCounters, and the hot path
// stays allocation-free either way.
func (ix *Index) QueryWithStats(q []uint32) (int, float64, bool, QueryStats) {
	best := -1
	bestSim := 0.0
	if len(q) == 0 {
		return best, bestSim, false, QueryStats{}
	}
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	ix.signer.SignInto(q, sc.qsig)
	if ix.opt.Layout == LayoutPointer {
		for _, tree := range ix.trees {
			ix.search(tree, q, sc, &best, &bestSim)
			if best >= 0 {
				// Any verified neighbor satisfies the contract; returning
				// the best found so far keeps latency low like the original
				// structure (first hit wins). We finish the current tree for
				// a better candidate but do not scan remaining trees.
				break
			}
		}
		ix.flushStats(sc)
		return best, bestSim, best >= 0, sc.stats
	}
	for _, root := range ix.flat.roots {
		sc.cands = sc.cands[:0]
		ix.flat.collect(root, sc.qsig, sc)
		for _, id := range sc.cands {
			sc.stats.Verified++
			if sim, ok := intset.JaccardAtLeast(q, ix.sets[id], ix.lambda); ok {
				if sim > bestSim {
					best = int(id)
					bestSim = sim
				}
			} else {
				sc.stats.Rejected++
			}
		}
		if best >= 0 {
			// Same first-hit-wins contract as the pointer path: finish the
			// tree that produced a hit, skip the rest.
			break
		}
	}
	ix.flushStats(sc)
	return best, bestSim, best >= 0, sc.stats
}

// Match is one QueryAll result: the id of an indexed set and its exact
// Jaccard similarity to the query (already computed during verification,
// so callers never need to recompute it).
type Match struct {
	ID  int     `json:"id"`
	Sim float64 `json:"sim"`
}

// QueryAll returns every distinct indexed set with J(q, y) >= lambda
// reachable through the trees (recall grows with Trees), each with its
// exact similarity. Matches are returned in tree-traversal order; sort by
// ID for a canonical order.
func (ix *Index) QueryAll(q []uint32) []Match {
	return ix.AppendAll(nil, q)
}

// AppendAll is QueryAll with caller-owned result storage: matches are
// appended to dst (which may be reused across queries for allocation-free
// steady state) and the grown slice is returned. Match order is identical
// to QueryAll's.
func (ix *Index) AppendAll(dst []Match, q []uint32) []Match {
	dst, _ = ix.AppendAllWithStats(dst, q)
	return dst
}

// AppendAllWithStats is AppendAll plus this call's candidate-pipeline
// breakdown, flushed to the attached QueryCounters like QueryWithStats.
func (ix *Index) AppendAllWithStats(dst []Match, q []uint32) ([]Match, QueryStats) {
	if len(q) == 0 {
		return dst, QueryStats{}
	}
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	ix.signer.SignInto(q, sc.qsig)
	if ix.opt.Layout == LayoutPointer {
		for _, tree := range ix.trees {
			dst = ix.collect(tree, q, sc, dst)
		}
		ix.flushStats(sc)
		return dst, sc.stats
	}
	for _, root := range ix.flat.roots {
		sc.cands = sc.cands[:0]
		ix.flat.collect(root, sc.qsig, sc)
		for _, id := range sc.cands {
			sc.stats.Verified++
			if sim, ok := intset.JaccardAtLeast(q, ix.sets[id], ix.lambda); ok {
				dst = append(dst, Match{ID: int(id), Sim: sim})
			} else {
				sc.stats.Rejected++
			}
		}
	}
	ix.flushStats(sc)
	return dst, sc.stats
}

func (ix *Index) search(n *node, q []uint32, sc *queryScratch, best *int, bestSim *float64) {
	if n.leaf != nil {
		for _, id := range n.leaf {
			if sc.visited[id] == sc.epoch {
				continue
			}
			sc.visited[id] = sc.epoch
			sc.stats.Candidates++
			sc.stats.Verified++
			if sim, ok := intset.JaccardAtLeast(q, ix.sets[id], ix.lambda); ok {
				if sim > *bestSim {
					*best = int(id)
					*bestSim = sim
				}
			} else {
				sc.stats.Rejected++
			}
		}
		return
	}
	for i, pos := range n.positions {
		if child, ok := n.children[i][sc.qsig[pos]]; ok {
			ix.search(child, q, sc, best, bestSim)
		}
	}
}

func (ix *Index) collect(n *node, q []uint32, sc *queryScratch, out []Match) []Match {
	if n.leaf != nil {
		for _, id := range n.leaf {
			if sc.visited[id] == sc.epoch {
				continue
			}
			sc.visited[id] = sc.epoch
			sc.stats.Candidates++
			sc.stats.Verified++
			if sim, ok := intset.JaccardAtLeast(q, ix.sets[id], ix.lambda); ok {
				out = append(out, Match{ID: int(id), Sim: sim})
			} else {
				sc.stats.Rejected++
			}
		}
		return out
	}
	for i, pos := range n.positions {
		if child, ok := n.children[i][sc.qsig[pos]]; ok {
			out = ix.collect(child, q, sc, out)
		}
	}
	return out
}
