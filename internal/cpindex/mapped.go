package cpindex

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/intset"
	"repro/internal/minhash"
	"repro/internal/snapshot"
)

// Mapped is the cold-tier view of a persisted index: the same sections
// DecodeSections reads, but left in place over the container bytes
// (typically an mmap'd file) and decoded lazily. Opening one costs only
// the meta section — a few dozen bytes — regardless of index size:
//
//   - the trees are decoded and flattened on the first query (one-time,
//     structure-only; the flat walk is then byte-identical to a decoded
//     index's because it IS the same flatTrees code);
//   - the sets payload stays untouched until a candidate reaches exact
//     verification, at which point the whole section is CRC-verified once
//     and candidates are decoded into pooled scratch and verified by the
//     same intset kernels the hot path calls.
//
// Answers are therefore byte-identical to the hot path by construction —
// same traversal arrays, same verification kernel, same tie-breaks — and
// a flipped bit in any section surfaces as ErrCorrupt at open or first
// touch, never as a wrong answer (the model harness and the corruption
// tests in the shard package pin both properties).
//
// All query methods are safe for concurrent use, like Index's.
type Mapped struct {
	snap *snapshot.Mapped
	// retain pins the mapping's owner (an mmap.File) for the GC: the
	// snapshot bytes alias memory the collector cannot see, so every
	// method that touches them ends with a KeepAlive of this reference.
	retain any

	lambda float64
	opt    Options
	nsets  int
	nodes  int
	leaves int

	signer *minhash.Signer

	// structOnce decodes the trees (CRC-verified) and indexes the sets
	// payload's size prefix on first query.
	structOnce sync.Once
	structErr  error
	flat       *flatTrees
	tokenStart []int64 // per-set first token index, len nsets+1
	tokens     []byte  // token region of the sets payload (aliases snap)

	// setsOnce runs the deferred sets-section CRC the first time any
	// candidate reaches verification — the "first touch" of the payload.
	setsOnce sync.Once
	setsErr  error

	scratch  sync.Pool
	counters *QueryCounters
}

// OpenMapped builds the cold view over an already-validated container.
// Only the meta section is read (and CRC-verified) here; retain is held
// for the lifetime of the Mapped to keep the backing mapping alive.
func OpenMapped(snap *snapshot.Mapped, retain any) (*Mapped, error) {
	metaRaw, err := snap.Section("meta")
	if err != nil {
		return nil, err
	}
	meta := snapshot.NewCursor("meta", metaRaw)
	lambda := meta.F64()
	opt := Options{
		T:        int(meta.U32()),
		LeafSize: int(meta.U32()),
		MaxDepth: int(meta.U32()),
		Trees:    int(meta.U32()),
		Seed:     meta.U64(),
	}
	nodes := meta.U64()
	leaves := meta.U64()
	nsets := meta.U64()
	if err := meta.Done(); err != nil {
		return nil, err
	}
	if lambda <= 0 || lambda >= 1 {
		return nil, fmt.Errorf("%w: lambda %v out of (0,1)", snapshot.ErrCorrupt, lambda)
	}
	if opt.T <= 0 || opt.T > 1<<20 || opt.LeafSize <= 0 ||
		opt.MaxDepth <= 0 || opt.MaxDepth > 1<<16 ||
		opt.Trees <= 0 || opt.Trees > 1<<16 || nsets > maxSets {
		return nil, fmt.Errorf("%w: implausible index meta (T=%d leaf=%d depth=%d trees=%d sets=%d)",
			snapshot.ErrCorrupt, opt.T, opt.LeafSize, opt.MaxDepth, opt.Trees, nsets)
	}
	if snap.Lookup("sets") == nil || snap.Lookup("trees") == nil {
		return nil, fmt.Errorf("%w: container missing sets/trees sections", snapshot.ErrCorrupt)
	}
	return &Mapped{
		snap:   snap,
		retain: retain,
		lambda: lambda,
		opt:    opt,
		nsets:  int(nsets),
		nodes:  int(nodes),
		leaves: int(leaves),
		signer: minhash.NewSigner(opt.T, opt.Seed),
	}, nil
}

// Len returns the number of indexed sets.
func (m *Mapped) Len() int { return m.nsets }

// Options returns the options the index was built with.
func (m *Mapped) Options() Options { return m.opt }

// Lambda returns the similarity threshold the index was built for.
func (m *Mapped) Lambda() float64 { return m.lambda }

// Structure returns the persisted node/leaf counts.
func (m *Mapped) Structure() (nodes, leaves int) { return m.nodes, m.leaves }

// SetCounters attaches (or detaches) the cross-query stats sink, exactly
// like Index.SetCounters.
func (m *Mapped) SetCounters(c *QueryCounters) { m.counters = c }

func (m *Mapped) flushStats(sc *queryScratch) {
	if c := m.counters; c != nil {
		c.Candidates.Add(sc.stats.Candidates)
		c.Verified.Add(sc.stats.Verified)
		c.Rejected.Add(sc.stats.Rejected)
	}
}

// ensureStruct decodes the trees (checksummed) and the sets size prefix.
// The prefix is parsed unverified — its guards reject anything the query
// path could trip over, and the deferred whole-section CRC (ensureSets)
// still runs before any answer derived from payload bytes is returned.
func (m *Mapped) ensureStruct() error {
	m.structOnce.Do(func() {
		treesRaw, err := m.snap.Section("trees")
		if err != nil {
			m.structErr = err
			return
		}
		tc := snapshot.NewCursor("trees", treesRaw)
		dec := &nodeDecoder{c: tc, nsets: uint64(m.nsets), t: m.opt.T, maxDepth: m.opt.MaxDepth}
		trees := make([]*node, m.opt.Trees)
		for i := range trees {
			trees[i] = dec.node(0)
			if tc.Err() != nil {
				m.structErr = tc.Err()
				return
			}
		}
		if err := tc.Done(); err != nil {
			m.structErr = err
			return
		}
		// The pointer trees are flattened and dropped: queries only ever
		// walk the flat layout, like a decoded index.
		m.flat = flatten(trees)

		setsRaw, err := m.snap.Raw("sets")
		if err != nil {
			m.structErr = err
			return
		}
		c := snapshot.NewCursor("sets", setsRaw)
		starts := make([]int64, m.nsets+1)
		var total int64
		for i := 0; i < m.nsets; i++ {
			starts[i] = total
			size := c.Uvarint()
			if size > maxMappedSetSize {
				m.structErr = fmt.Errorf("%w: section %q: implausible set size %d", snapshot.ErrCorrupt, "sets", size)
				return
			}
			total += int64(size)
		}
		starts[m.nsets] = total
		if c.Err() != nil {
			m.structErr = c.Err()
			return
		}
		if int64(c.Remaining()) != total*4 {
			m.structErr = fmt.Errorf("%w: section %q: %d tokens for %d remaining bytes",
				snapshot.ErrCorrupt, "sets", total, c.Remaining())
			return
		}
		m.tokenStart = starts
		m.tokens = setsRaw[len(setsRaw)-c.Remaining():]
	})
	runtime.KeepAlive(m.retain)
	return m.structErr
}

// maxMappedSetSize mirrors snapshot.DecodeSets's per-set size cap.
const maxMappedSetSize = 1 << 28

// ensureSets runs the deferred sets-section checksum — the first (and
// only) whole-payload read of the cold path, paid when a candidate first
// reaches verification.
func (m *Mapped) ensureSets() error {
	m.setsOnce.Do(func() { m.setsErr = m.snap.Verify("sets") })
	return m.setsErr
}

// decodeSet decodes set id's tokens into buf (grown as needed),
// revalidating the strictly-increasing invariant verification assumes.
func (m *Mapped) decodeSet(buf []uint32, id uint32) ([]uint32, error) {
	lo, hi := m.tokenStart[id], m.tokenStart[id+1]
	n := int(hi - lo)
	if cap(buf) < n {
		buf = make([]uint32, n)
	}
	buf = buf[:n]
	raw := m.tokens[lo*4 : hi*4]
	for i := range buf {
		buf[i] = binary.LittleEndian.Uint32(raw[i*4:])
		if i > 0 && buf[i] <= buf[i-1] {
			return nil, fmt.Errorf("%w: section %q: set %d not strictly increasing", snapshot.ErrCorrupt, "sets", id)
		}
	}
	return buf, nil
}

// candidateSet returns candidate id's decoded tokens in the scratch
// buffer, running the deferred sets checksum first.
func (m *Mapped) candidateSet(sc *queryScratch, id uint32) ([]uint32, error) {
	if err := m.ensureSets(); err != nil {
		return nil, err
	}
	buf, err := m.decodeSet(sc.setBuf, id)
	if err != nil {
		return nil, err
	}
	sc.setBuf = buf[:cap(buf)]
	return buf, nil
}

// getScratch mirrors Index.getScratch over the mapped index's shape.
func (m *Mapped) getScratch() *queryScratch {
	sc, _ := m.scratch.Get().(*queryScratch)
	if sc == nil {
		sc = new(queryScratch)
	}
	if len(sc.qsig) != m.opt.T {
		sc.qsig = make([]uint32, m.opt.T)
	}
	if len(sc.visited) < m.nsets {
		sc.visited = make([]uint32, m.nsets)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.visited)
		sc.epoch = 1
	}
	sc.cands = sc.cands[:0]
	sc.stats = QueryStats{}
	return sc
}

func (m *Mapped) putScratch(sc *queryScratch) { m.scratch.Put(sc) }

// Query is Index.Query over the mapped structure, with corruption
// surfaced as an error instead of a panic or a wrong answer.
func (m *Mapped) Query(q []uint32) (int, float64, bool, error) {
	id, sim, ok, _, err := m.QueryWithStats(q)
	return id, sim, ok, err
}

// QueryWithStats mirrors Index.QueryWithStats's flat path statement for
// statement — same traversal, same verification kernel, same
// first-hit-wins tree cutoff — so a cold shard's answers are
// byte-identical to the hot path's.
func (m *Mapped) QueryWithStats(q []uint32) (int, float64, bool, QueryStats, error) {
	best := -1
	bestSim := 0.0
	if len(q) == 0 {
		return best, bestSim, false, QueryStats{}, nil
	}
	if err := m.ensureStruct(); err != nil {
		return best, bestSim, false, QueryStats{}, err
	}
	sc := m.getScratch()
	defer m.putScratch(sc)
	m.signer.SignInto(q, sc.qsig)
	for _, root := range m.flat.roots {
		sc.cands = sc.cands[:0]
		m.flat.collect(root, sc.qsig, sc)
		for _, id := range sc.cands {
			sc.stats.Verified++
			set, err := m.candidateSet(sc, id)
			if err != nil {
				return -1, 0, false, QueryStats{}, err
			}
			if sim, ok := intset.JaccardAtLeast(q, set, m.lambda); ok {
				if sim > bestSim {
					best = int(id)
					bestSim = sim
				}
			} else {
				sc.stats.Rejected++
			}
		}
		if best >= 0 {
			// Same first-hit-wins contract as the hot path: finish the
			// tree that produced a hit, skip the rest.
			break
		}
	}
	m.flushStats(sc)
	runtime.KeepAlive(m.retain)
	return best, bestSim, best >= 0, sc.stats, nil
}

// AppendAll mirrors Index.AppendAll (flat path): every distinct match in
// tree-traversal order, appended to dst.
func (m *Mapped) AppendAll(dst []Match, q []uint32) ([]Match, error) {
	dst, _, err := m.AppendAllWithStats(dst, q)
	return dst, err
}

// AppendAllWithStats mirrors Index.AppendAllWithStats's flat path.
func (m *Mapped) AppendAllWithStats(dst []Match, q []uint32) ([]Match, QueryStats, error) {
	if len(q) == 0 {
		return dst, QueryStats{}, nil
	}
	if err := m.ensureStruct(); err != nil {
		return dst, QueryStats{}, err
	}
	sc := m.getScratch()
	defer m.putScratch(sc)
	m.signer.SignInto(q, sc.qsig)
	for _, root := range m.flat.roots {
		sc.cands = sc.cands[:0]
		m.flat.collect(root, sc.qsig, sc)
		for _, id := range sc.cands {
			sc.stats.Verified++
			set, err := m.candidateSet(sc, id)
			if err != nil {
				return dst, QueryStats{}, err
			}
			if sim, ok := intset.JaccardAtLeast(q, set, m.lambda); ok {
				dst = append(dst, Match{ID: int(id), Sim: sim})
			} else {
				sc.stats.Rejected++
			}
		}
	}
	m.flushStats(sc)
	runtime.KeepAlive(m.retain)
	return dst, sc.stats, nil
}

// Set decodes one indexed set into a fresh heap slice, running the
// deferred sets checksum first — the cold containment path's exact
// verification reads sets through this.
func (m *Mapped) Set(id int) ([]uint32, error) {
	if err := m.ensureStruct(); err != nil {
		return nil, err
	}
	if err := m.ensureSets(); err != nil {
		return nil, err
	}
	if id < 0 || id >= m.nsets {
		return nil, fmt.Errorf("%w: set id %d out of [0,%d)", snapshot.ErrCorrupt, id, m.nsets)
	}
	set, err := m.decodeSet(nil, uint32(id))
	runtime.KeepAlive(m.retain)
	return set, err
}

// Sets materializes the whole collection onto the heap (one shared token
// array, like a decoded index). It is the escape hatch for consumers
// that need every set — containment-index construction, compaction
// merges — and deliberately NOT cached: callers own the copy's lifetime.
func (m *Mapped) Sets() ([][]uint32, error) {
	if err := m.ensureStruct(); err != nil {
		return nil, err
	}
	if err := m.ensureSets(); err != nil {
		return nil, err
	}
	total := m.tokenStart[m.nsets]
	tokens := make([]uint32, total)
	sets := make([][]uint32, m.nsets)
	for i := 0; i < m.nsets; i++ {
		lo, hi := m.tokenStart[i], m.tokenStart[i+1]
		set := tokens[lo:hi:hi]
		raw := m.tokens[lo*4 : hi*4]
		for j := range set {
			set[j] = binary.LittleEndian.Uint32(raw[j*4:])
			if j > 0 && set[j] <= set[j-1] {
				return nil, fmt.Errorf("%w: section %q: set %d not strictly increasing", snapshot.ErrCorrupt, "sets", i)
			}
		}
		sets[i] = set
	}
	runtime.KeepAlive(m.retain)
	return sets, nil
}
