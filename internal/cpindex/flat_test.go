package cpindex

import (
	"bytes"
	"fmt"
	"testing"
)

// TestFlatMatchesPointer checks the tentpole equivalence contract: both
// layouts answer Query and QueryAll byte-identically for every query, on
// small and leaf-heavy tree shapes alike.
func TestFlatMatchesPointer(t *testing.T) {
	for _, tc := range []struct {
		n        int
		leafSize int
	}{
		{400, 4}, {1500, 32}, {50, 1}, {0, 32},
	} {
		t.Run(fmt.Sprintf("n=%d/leaf=%d", tc.n, tc.leafSize), func(t *testing.T) {
			sets, _ := buildWorkload(tc.n, 0.8, uint64(tc.n)+21)
			ix := Build(sets, 0.5, &Options{Seed: 22, LeafSize: tc.leafSize, Trees: 6})
			queries := sets
			if len(queries) > 200 {
				queries = queries[:200]
			}
			queries = append(queries, []uint32{1 << 30, 1<<30 + 3}, nil)
			for qi, q := range queries {
				ix.SetLayout(LayoutFlat)
				fid, fsim, fok := ix.Query(q)
				fall := ix.QueryAll(q)
				ix.SetLayout(LayoutPointer)
				pid, psim, pok := ix.Query(q)
				pall := ix.QueryAll(q)
				if fid != pid || fsim != psim || fok != pok {
					t.Fatalf("query %d: flat Query (%d,%v,%v) != pointer (%d,%v,%v)",
						qi, fid, fsim, fok, pid, psim, pok)
				}
				if len(fall) != len(pall) {
					t.Fatalf("query %d: flat QueryAll %d matches, pointer %d", qi, len(fall), len(pall))
				}
				for i := range fall {
					if fall[i] != pall[i] {
						t.Fatalf("query %d match %d: flat %+v != pointer %+v", qi, i, fall[i], pall[i])
					}
				}
			}
		})
	}
}

// TestFlatMatchesPointerAfterDecode re-checks equivalence on an index
// decoded from its snapshot, whose flat layout is rebuilt by
// DecodeSections rather than Build.
func TestFlatMatchesPointerAfterDecode(t *testing.T) {
	sets, _ := buildWorkload(600, 0.8, 31)
	ix := Build(sets, 0.5, &Options{Seed: 32, Trees: 4})
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		q := sets[i]
		dec.SetLayout(LayoutFlat)
		fall := dec.QueryAll(q)
		dec.SetLayout(LayoutPointer)
		pall := dec.QueryAll(q)
		if len(fall) != len(pall) {
			t.Fatalf("query %d: flat %d matches, pointer %d", i, len(fall), len(pall))
		}
		for j := range fall {
			if fall[j] != pall[j] {
				t.Fatalf("query %d match %d: flat %+v != pointer %+v", i, j, fall[j], pall[j])
			}
		}
	}
}

// TestQueryZeroAllocs pins the satellite contract: steady-state Query and
// AppendAll (with a reused destination) allocate nothing on the flat
// layout.
func TestQueryZeroAllocs(t *testing.T) {
	sets, _ := buildWorkload(2000, 0.8, 41)
	ix := Build(sets, 0.5, &Options{Seed: 42})
	var dst []Match
	// Warm the scratch pool and the destination buffer to steady state.
	for i := 0; i < 50; i++ {
		ix.Query(sets[i])
		dst = ix.AppendAll(dst[:0], sets[i])
	}
	qi := 0
	if n := testing.AllocsPerRun(200, func() {
		ix.Query(sets[qi%1000])
		qi++
	}); n != 0 {
		t.Errorf("Query allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		dst = ix.AppendAll(dst[:0], sets[qi%1000])
		qi++
	}); n != 0 {
		t.Errorf("AppendAll allocates %v/op, want 0", n)
	}
}

func benchQueryLayout(b *testing.B, l Layout) {
	sets, _ := buildWorkload(5000, 0.8, 15)
	ix := Build(sets, 0.6, &Options{Seed: 16})
	ix.SetLayout(l)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(sets[i%len(sets)])
	}
}

func benchQueryAllLayout(b *testing.B, l Layout) {
	sets, _ := buildWorkload(5000, 0.8, 15)
	ix := Build(sets, 0.6, &Options{Seed: 16})
	ix.SetLayout(l)
	var dst []Match
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ix.AppendAll(dst[:0], sets[i%len(sets)])
	}
}

func BenchmarkQueryFlat(b *testing.B)       { benchQueryLayout(b, LayoutFlat) }
func BenchmarkQueryPointer(b *testing.B)    { benchQueryLayout(b, LayoutPointer) }
func BenchmarkQueryAllFlat(b *testing.B)    { benchQueryAllLayout(b, LayoutFlat) }
func BenchmarkQueryAllPointer(b *testing.B) { benchQueryAllLayout(b, LayoutPointer) }
