package cpindex

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/datagen"
	"repro/internal/snapshot"
)

func persistWorkload(n int, seed uint64) [][]uint32 {
	return datagen.Uniform(n, 20, 20000, seed).Sets
}

// matchesEqual compares QueryAll outputs exactly.
func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEncodeDecodeRoundTrip pins the persistence contract: a decoded
// index answers Query and QueryAll byte-identically to the index it was
// encoded from, for every query.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	sets := persistWorkload(700, 41)
	ix := Build(sets, 0.5, &Options{Trees: 8, Seed: 9, Workers: 4})

	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ix.Len() || back.Nodes != ix.Nodes || back.Leaves != ix.Leaves {
		t.Fatalf("structure stats changed: %d/%d/%d -> %d/%d/%d",
			ix.Len(), ix.Nodes, ix.Leaves, back.Len(), back.Nodes, back.Leaves)
	}
	// Workers is build-time parallelism, deliberately not persisted.
	want := ix.Options()
	want.Workers = 0
	if back.Lambda() != ix.Lambda() || back.Options() != want {
		t.Fatalf("lambda/options changed: %v %+v -> %v %+v",
			ix.Lambda(), want, back.Lambda(), back.Options())
	}
	for qi := 0; qi < len(sets); qi += 3 {
		q := sets[qi]
		if !matchesEqual(ix.QueryAll(q), back.QueryAll(q)) {
			t.Fatalf("query %d: QueryAll differs after round trip", qi)
		}
		id1, sim1, ok1 := ix.Query(q)
		id2, sim2, ok2 := back.Query(q)
		if id1 != id2 || sim1 != sim2 || ok1 != ok2 {
			t.Fatalf("query %d: Query differs after round trip", qi)
		}
	}
}

// TestSnapshotDeterministic: encoding the same index twice yields the
// same bytes (bucket maps are sorted before writing).
func TestSnapshotDeterministic(t *testing.T) {
	sets := persistWorkload(300, 43)
	ix := Build(sets, 0.6, &Options{Trees: 4, Seed: 5})
	var a, b bytes.Buffer
	if err := ix.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := ix.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same index differ")
	}
}

func TestSaveLoadFile(t *testing.T) {
	sets := persistWorkload(200, 47)
	ix := Build(sets, 0.5, &Options{Trees: 4, Seed: 11})
	path := filepath.Join(t.TempDir(), "ix.cps")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < len(sets); qi += 5 {
		if !matchesEqual(ix.QueryAll(sets[qi]), back.QueryAll(sets[qi])) {
			t.Fatalf("query %d differs after file round trip", qi)
		}
	}
}

// TestCorruptSnapshotRejected: truncation at any point, a flipped byte
// anywhere, and a wrong format version must all return descriptive
// errors — never panic, never a silently wrong index.
func TestCorruptSnapshotRejected(t *testing.T) {
	sets := persistWorkload(150, 53)
	ix := Build(sets, 0.5, &Options{Trees: 3, Seed: 13})
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	decode := func(b []byte) error {
		_, err := Decode(bytes.NewReader(b))
		return err
	}

	for cut := 0; cut < len(raw); cut += 101 {
		if err := decode(raw[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	for pos := 0; pos < len(raw); pos += 89 {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x20
		if err := decode(bad); err == nil {
			t.Errorf("flipped byte at %d accepted", pos)
		}
	}

	// Wrong container version.
	bad := append([]byte(nil), raw...)
	bad[8] = 0xee
	if err := decode(bad); !errors.Is(err, snapshot.ErrVersion) {
		t.Errorf("wrong version: err = %v, want ErrVersion", err)
	}

	// Wrong kind (e.g. pointing Load at a prep index file).
	var other bytes.Buffer
	w, err := snapshot.NewWriter(&other, "prepidx")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := decode(other.Bytes()); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("wrong kind: err = %v, want ErrCorrupt", err)
	}
}

// craftContainer builds a CRC-valid cpindex container from raw section
// payloads — corruption the checksums cannot catch, which the decoder's
// plausibility guards must.
func craftContainer(t *testing.T, meta func(*snapshot.Buf), sets, trees []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf, SnapshotKind)
	if err != nil {
		t.Fatal(err)
	}
	var mb snapshot.Buf
	meta(&mb)
	for _, s := range []struct {
		name string
		b    []byte
	}{{"meta", mb.B}, {"sets", sets}, {"trees", trees}} {
		if err := w.Section(s.name, s.b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCraftedSnapshotsRejected pins the never-panic contract against
// CRC-valid but adversarial payloads: size-sum overflow, allocation
// bombs from tiny files, and stack-overflow-deep recursion all must
// come back as errors.
func TestCraftedSnapshotsRejected(t *testing.T) {
	validMeta := func(b *snapshot.Buf) {
		b.F64(0.5)
		b.U32(4)  // T
		b.U32(32) // LeafSize
		b.U32(8)  // MaxDepth
		b.U32(1)  // Trees
		b.U64(7)  // Seed
		b.U64(0)  // Nodes
		b.U64(0)  // Leaves
		b.U64(2)  // nsets
	}

	// Two set sizes of 2^63 wrap the size sum to 0: the overflow guard,
	// not a slice-bounds panic, must reject it.
	var overflow snapshot.Buf
	overflow.Uvarint(1 << 63)
	overflow.Uvarint(1 << 63)
	raw := craftContainer(t, validMeta, overflow.B, nil)
	if _, err := Decode(bytes.NewReader(raw)); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("size-sum overflow: err = %v, want ErrCorrupt", err)
	}

	// A set count far beyond the payload must fail before allocating.
	bomb := func(b *snapshot.Buf) {
		validMeta(b)
		b.B = b.B[:len(b.B)-8]
		b.U64(1 << 30) // nsets huge, sets payload empty
	}
	raw = craftContainer(t, bomb, nil, nil)
	if _, err := Decode(bytes.NewReader(raw)); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("set-count bomb: err = %v, want ErrCorrupt", err)
	}

	// MaxDepth beyond any plausible build is rejected up front — it
	// bounds the tree decoder's recursion depth.
	deep := func(b *snapshot.Buf) {
		b.F64(0.5)
		b.U32(4)
		b.U32(32)
		b.U32(1 << 30) // MaxDepth absurd
		b.U32(1)
		b.U64(7)
		b.U64(0)
		b.U64(0)
		b.U64(0)
	}
	raw = craftContainer(t, deep, nil, nil)
	if _, err := Decode(bytes.NewReader(raw)); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("absurd MaxDepth: err = %v, want ErrCorrupt", err)
	}
}
