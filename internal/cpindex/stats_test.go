package cpindex

import (
	"fmt"
	"testing"
)

// TestQueryWithStats pins the stats contract on both layouts: the
// counted answer is the normal answer, every candidate is verified
// exactly once, and rejections never exceed verifications.
func TestQueryWithStats(t *testing.T) {
	sets, _ := buildWorkload(500, 0.8, 41)
	ix := Build(sets, 0.5, &Options{Seed: 43, Trees: 4, LeafSize: 8})
	for _, layout := range []Layout{LayoutFlat, LayoutPointer} {
		t.Run(fmt.Sprintf("layout=%d", layout), func(t *testing.T) {
			ix.SetLayout(layout)
			for qi := 0; qi < 100; qi++ {
				q := sets[qi]
				wantID, wantSim, wantOK := ix.Query(q)
				id, sim, ok, st := ix.QueryWithStats(q)
				if id != wantID || sim != wantSim || ok != wantOK {
					t.Fatalf("query %d: QueryWithStats answer (%d,%v,%v) != Query (%d,%v,%v)",
						qi, id, sim, ok, wantID, wantSim, wantOK)
				}
				if ok && st.Candidates == 0 {
					t.Fatalf("query %d: found a match with zero candidates: %+v", qi, st)
				}
				if st.Verified != st.Candidates {
					t.Fatalf("query %d: %d candidates but %d verifications", qi, st.Candidates, st.Verified)
				}
				if st.Rejected > st.Verified {
					t.Fatalf("query %d: %d rejections out of %d verifications", qi, st.Rejected, st.Verified)
				}

				want := ix.QueryAll(q)
				got, ast := ix.AppendAllWithStats(nil, q)
				if len(got) != len(want) {
					t.Fatalf("query %d: AppendAllWithStats %d matches, QueryAll %d", qi, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("query %d match %d: %+v != %+v", qi, i, got[i], want[i])
					}
				}
				// QueryAll scans every tree, so accepted + rejected must
				// account for every verification.
				if ast.Verified != ast.Candidates || ast.Rejected != ast.Verified-uint64(len(got)) {
					t.Fatalf("query %d: inconsistent all-stats %+v with %d matches", qi, ast, len(got))
				}
			}
		})
	}
}

// TestSetCountersFlush checks the cross-query sink: attached counters
// accumulate exactly the per-query stats, and detaching stops the flow.
func TestSetCountersFlush(t *testing.T) {
	sets, _ := buildWorkload(400, 0.8, 47)
	ix := Build(sets, 0.5, &Options{Seed: 53, Trees: 3, LeafSize: 8})
	var c QueryCounters
	ix.SetCounters(&c)

	var sum QueryStats
	for qi := 0; qi < 50; qi++ {
		_, _, _, st := ix.QueryWithStats(sets[qi])
		sum.add(st)
		_, ast := ix.AppendAllWithStats(nil, sets[qi])
		sum.add(ast)
	}
	if c.Candidates.Load() != sum.Candidates || c.Verified.Load() != sum.Verified || c.Rejected.Load() != sum.Rejected {
		t.Fatalf("counters (%d,%d,%d) != summed stats (%d,%d,%d)",
			c.Candidates.Load(), c.Verified.Load(), c.Rejected.Load(),
			sum.Candidates, sum.Verified, sum.Rejected)
	}
	// The plain entry points flush into the same counters.
	before := c.Candidates.Load()
	ix.Query(sets[0])
	ix.QueryAll(sets[0])
	if c.Candidates.Load() <= before {
		t.Error("Query/QueryAll did not flush into the attached counters")
	}

	// Detach: counters freeze.
	ix.SetCounters(nil)
	frozen := c.Candidates.Load()
	ix.Query(sets[1])
	if c.Candidates.Load() != frozen {
		t.Error("detached counters still advanced")
	}
}
