package cpindex

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/intset"
)

// buildWorkload returns a collection plus query/target pairs at the given
// similarity.
func buildWorkload(n int, j float64, seed uint64) ([][]uint32, [][2]int) {
	ds := datagen.Uniform(n, 25, 50000, seed)
	planted := datagen.PlantPairs(ds, 40, j, seed+1)
	return ds.Sets, planted
}

func TestQueryFindsPlantedNeighbors(t *testing.T) {
	sets, planted := buildWorkload(2000, 0.75, 1)
	ix := Build(sets, 0.5, &Options{Seed: 2})
	found := 0
	valid := 0
	for _, p := range planted {
		q, target := sets[p[0]], p[1]
		if intset.Jaccard(q, sets[target]) < 0.5 {
			continue
		}
		valid++
		id, sim, ok := ix.Query(q)
		if !ok {
			continue
		}
		if sim < 0.5 {
			t.Fatalf("Query returned below-threshold result: %v", sim)
		}
		if intset.Jaccard(q, sets[id]) < 0.5 {
			t.Fatalf("Query similarity claim wrong for id %d", id)
		}
		found++
	}
	if valid == 0 {
		t.Fatal("no valid planted queries")
	}
	// Query sets are themselves indexed (J = 1 with themselves), so every
	// query must succeed.
	if found < valid {
		t.Errorf("only %d/%d queries found a neighbor", found, valid)
	}
}

func TestQueryNoNeighbor(t *testing.T) {
	sets, _ := buildWorkload(1000, 0.9, 3)
	ix := Build(sets, 0.8, &Options{Seed: 4})
	// A fresh random set over a disjoint token range has no neighbors.
	q := []uint32{1 << 30, 1<<30 + 5, 1<<30 + 9, 1<<30 + 12}
	if id, sim, ok := ix.Query(q); ok {
		t.Fatalf("found spurious neighbor %d (sim %v)", id, sim)
	}
}

func TestQueryAllRecall(t *testing.T) {
	sets, planted := buildWorkload(1500, 0.8, 5)
	ix := Build(sets, 0.6, &Options{Seed: 6})
	hits, valid := 0, 0
	for _, p := range planted {
		q, target := sets[p[0]], p[1]
		if intset.Jaccard(q, sets[target]) < 0.6 {
			continue
		}
		valid++
		for _, m := range ix.QueryAll(q) {
			if m.ID == target {
				hits++
				break
			}
		}
	}
	if valid == 0 {
		t.Fatal("no valid planted queries")
	}
	if float64(hits) < 0.9*float64(valid) {
		t.Errorf("QueryAll recall %d/%d below 0.9", hits, valid)
	}
}

func TestQueryAllOnlyAboveThreshold(t *testing.T) {
	sets, _ := buildWorkload(800, 0.7, 7)
	ix := Build(sets, 0.6, &Options{Seed: 8})
	for i := 0; i < 50; i++ {
		q := sets[i]
		for _, m := range ix.QueryAll(q) {
			if m.Sim < 0.6 {
				t.Fatalf("QueryAll returned below-threshold id %d", m.ID)
			}
			if got := intset.Jaccard(q, sets[m.ID]); got != m.Sim {
				t.Fatalf("QueryAll sim %v for id %d, exact is %v", m.Sim, m.ID, got)
			}
		}
	}
}

func TestSelfQuery(t *testing.T) {
	sets, _ := buildWorkload(500, 0.7, 9)
	ix := Build(sets, 0.9, &Options{Seed: 10})
	misses := 0
	for i := 0; i < 100; i++ {
		if _, sim, ok := ix.Query(sets[i]); !ok || sim < 0.9 {
			misses++
		}
	}
	// Identical sets share every signature position, so self-queries reach
	// the same leaves with certainty.
	if misses > 0 {
		t.Errorf("%d/100 self-queries missed", misses)
	}
}

func TestEmptyQuery(t *testing.T) {
	sets, _ := buildWorkload(200, 0.7, 11)
	ix := Build(sets, 0.5, &Options{Seed: 12})
	if _, _, ok := ix.Query(nil); ok {
		t.Error("empty query found a neighbor")
	}
	if out := ix.QueryAll(nil); out != nil {
		t.Error("empty QueryAll returned results")
	}
}

func TestBuildStats(t *testing.T) {
	sets, _ := buildWorkload(1000, 0.7, 13)
	ix := Build(sets, 0.5, &Options{Seed: 14, Trees: 3})
	if ix.Nodes == 0 || ix.Leaves == 0 {
		t.Errorf("stats not populated: %+v", ix)
	}
	if ix.Leaves > ix.Nodes {
		t.Errorf("leaves %d > nodes %d", ix.Leaves, ix.Nodes)
	}
}

func TestInvalidLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build with lambda=1 did not panic")
		}
	}()
	Build(nil, 1, nil)
}

func BenchmarkQuery(b *testing.B) {
	sets, _ := buildWorkload(5000, 0.8, 15)
	ix := Build(sets, 0.6, &Options{Seed: 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(sets[i%len(sets)])
	}
}
