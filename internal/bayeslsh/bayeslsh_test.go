package bayeslsh

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/intset"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/verify"
)

func testWorkload(seed uint64) [][]uint32 {
	ds := datagen.Uniform(600, 20, 4000, seed)
	datagen.PlantPairs(ds, 30, 0.6, seed+1)
	datagen.PlantPairs(ds, 30, 0.8, seed+2)
	return ds.Sets
}

func TestPrecisionIsPerfect(t *testing.T) {
	sets := testWorkload(1)
	got, _ := Join(sets, 0.5, &Options{Seed: 2})
	for _, p := range got {
		if j := intset.Jaccard(sets[p.A], sets[p.B]); j < 0.5 {
			t.Fatalf("false positive (%d,%d) J=%v", p.A, p.B, j)
		}
	}
}

func TestRecall(t *testing.T) {
	sets := testWorkload(3)
	for _, lambda := range []float64{0.5, 0.7} {
		truth := verify.BruteForceJoin(sets, lambda)
		if len(truth) == 0 {
			t.Fatalf("no ground truth at λ=%v", lambda)
		}
		got, _ := Join(sets, lambda, &Options{Seed: 4})
		if r := stats.Recall(got, truth); r < 0.8 {
			t.Errorf("λ=%v recall %v (%d/%d); paper reports ~90%% for BayesLSH",
				lambda, r, len(got), len(truth))
		}
	}
}

func TestPrunerMonotoneSlack(t *testing.T) {
	p := NewPruner(8, 0.5, 0.05)
	for w := 2; w <= 8; w++ {
		if p.slack[w] >= p.slack[w-1] {
			t.Fatalf("slack not shrinking: slack[%d]=%v >= slack[%d]=%v",
				w, p.slack[w], w-1, p.slack[w-1])
		}
	}
}

func TestPrunerAcceptsIdentical(t *testing.T) {
	p := NewPruner(8, 0.9, 0.05)
	s := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if !p.Survives(s, s) {
		t.Fatal("identical sketches pruned")
	}
}

func TestPrunerRejectsOpposite(t *testing.T) {
	p := NewPruner(8, 0.5, 0.05)
	a := make([]uint64, 8)
	b := make([]uint64, 8)
	for i := range b {
		b[i] = ^uint64(0)
	}
	if p.Survives(a, b) {
		t.Fatal("fully disagreeing sketches survived")
	}
}

// TestPrunerRarelyDropsTruePairs: pairs at the threshold should survive
// pruning with probability ~ 1 - gamma.
func TestPrunerRarelyDropsTruePairs(t *testing.T) {
	const lambda, gamma = 0.6, 0.05
	p := NewPruner(8, lambda, gamma)
	maker := sketch.NewMaker(8, 7)
	drops, trials := 0, 0
	for trial := 0; trial < 300; trial++ {
		// Build a pair at similarity just above lambda by planting.
		ds := datagen.Uniform(1, 60, 100000, uint64(1000+trial))
		datagen.PlantPairs(ds, 1, lambda+0.1, uint64(trial))
		a, b := ds.Sets[len(ds.Sets)-2], ds.Sets[len(ds.Sets)-1]
		if intset.Jaccard(a, b) < lambda {
			continue
		}
		trials++
		if !p.Survives(maker.Sketch(a), maker.Sketch(b)) {
			drops++
		}
	}
	if trials < 100 {
		t.Fatalf("too few trials: %d", trials)
	}
	if rate := float64(drops) / float64(trials); rate > gamma+0.05 {
		t.Errorf("pruner drops %v of true pairs (budget %v)", rate, gamma)
	}
}

func TestTinyInputs(t *testing.T) {
	if got, _ := Join(nil, 0.5, nil); got != nil {
		t.Error("Join(nil) returned pairs")
	}
}

func TestCountersSane(t *testing.T) {
	sets := testWorkload(5)
	got, c := Join(sets, 0.5, &Options{Seed: 6})
	if c.Results != int64(len(got)) {
		t.Errorf("Results %d != %d", c.Results, len(got))
	}
	if c.Candidates > c.PreCandidates {
		t.Errorf("candidates %d > pre-candidates %d", c.Candidates, c.PreCandidates)
	}
}
