// Package bayeslsh implements a BayesLSH-lite style approximate similarity
// join (Chakrabarti et al., TKDD 2015) as the third comparator of the
// paper's evaluation (Section V-D).
//
// Candidate generation follows the original package's LSH mode: repetitions
// of single-MinHash bucketing (k = 1). Verification processes each
// candidate's sketch incrementally, word by word, pruning as soon as the
// upper confidence bound on the similarity estimate falls below the
// threshold; survivors get an exact similarity computation (the "-lite"
// configuration benchmarked in the paper). The original uses Bayesian
// posterior tail bounds on uniform priors; we use the equivalent Hoeffding
// upper confidence bound on the bit-agreement rate, which prunes at the
// same asymptotic rate and keeps the false-negative probability bounded by
// the same per-stage budget.
//
// The paper found BayesLSH uniformly slower than CPSJoin, MINHASH and
// ALLPAIRS, mostly due to its k = 1 candidate generation; this
// implementation exists to let the benchmark harness test that claim.
package bayeslsh

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/exec"
	"repro/internal/prep"
	"repro/internal/tabhash"
	"repro/internal/verify"
)

// Options configures the BayesLSH-lite join.
type Options struct {
	// L is the number of single-hash repetitions; 0 derives it from
	// TargetRecall: a pair at similarity λ collides per repetition with
	// probability λ, so L = ceil(ln(1/(1-ϕ))/λ).
	L int
	// TargetRecall is the candidate-generation recall ϕ (default 0.95,
	// the BayesLSH package default).
	TargetRecall float64
	// SketchWords is the sketch width used for incremental pruning
	// (default 8 words = 512 bits). Negative disables sketch pruning —
	// the repository-wide convention — in which case candidates go
	// straight from the size filter to exact verification.
	SketchWords int
	// Gamma is the per-stage false-pruning budget (default 0.05).
	Gamma float64
	// T is the MinHash signature pool size (default 128).
	T int
	// Seed makes runs reproducible.
	Seed uint64
	// Workers is the worker count of the parallel execution layer
	// (internal/exec): repetitions run as independent tasks merging into a
	// shared concurrent result set. 0 runs sequentially, negative selects
	// GOMAXPROCS. Each repetition's bucket position is drawn before any
	// task starts, so the result set is identical across worker counts
	// for a fixed Seed.
	Workers int
}

func (o *Options) withDefaults() Options {
	opt := Options{}
	if o != nil {
		opt = *o
	}
	if opt.TargetRecall <= 0 || opt.TargetRecall >= 1 {
		opt.TargetRecall = 0.95
	}
	if opt.SketchWords == 0 {
		opt.SketchWords = 8
	}
	if opt.Gamma <= 0 || opt.Gamma >= 1 {
		opt.Gamma = 0.05
	}
	if opt.T <= 0 {
		opt.T = 128
	}
	return opt
}

// Join computes an approximate self-join at Jaccard threshold lambda.
func Join(sets [][]uint32, lambda float64, o *Options) ([]verify.Pair, verify.Counters) {
	opt := o.withDefaults()
	if len(sets) < 2 {
		return nil, verify.Counters{}
	}
	words := opt.SketchWords
	if words < 0 {
		words = 0
	}
	ix := prep.BuildParallel(sets, opt.T, words, opt.Seed, exec.EffectiveWorkers(opt.Workers))
	return JoinIndexed(ix, lambda, o)
}

// JoinIndexed runs the join against a prebuilt index, excluding
// preprocessing from the join work. The index fixes T and the sketch
// width; an index without sketches (or a negative SketchWords) disables
// the incremental pruner.
func JoinIndexed(ix *prep.Index, lambda float64, o *Options) ([]verify.Pair, verify.Counters) {
	opt := o.withDefaults()
	opt.T = ix.T
	if opt.SketchWords > 0 && ix.Words > 0 {
		opt.SketchWords = ix.Words
	} else {
		opt.SketchWords = -1
	}
	sets := ix.Sets
	if len(sets) < 2 {
		return nil, verify.Counters{}
	}
	if lambda <= 0 || lambda >= 1 {
		panic(fmt.Sprintf("bayeslsh: lambda %v out of (0,1)", lambda))
	}
	l := opt.L
	if l <= 0 {
		l = int(math.Ceil(math.Log(1/(1-opt.TargetRecall)) / lambda))
		if l < 1 {
			l = 1
		}
	}

	sigs := ix.Sigs
	var sketches []uint64
	var pruner *Pruner
	w := 0
	if opt.SketchWords > 0 {
		w = opt.SketchWords
		sketches = ix.Sketches
		pruner = NewPruner(w, lambda, opt.Gamma)
	}

	// Draw every repetition's bucket position up front so the join's
	// randomness is fixed before any task starts (identical result sets
	// across worker counts).
	rng := tabhash.NewSplitMix64(opt.Seed + 0x1717)
	positions := make([]int, l)
	for rep := range positions {
		positions[rep] = rng.Intn(opt.T)
	}

	workers := exec.EffectiveWorkers(opt.Workers)
	res := verify.NewSink(workers)
	v := verify.NewVerifier(sets, lambda, nil)
	var atomics verify.AtomicCounters

	runRep := func(rep int) {
		var pre, cand int64
		pos := positions[rep]
		buckets := make(map[uint32][]uint32, len(sets)/4+1)
		for id := range sets {
			val := sigs[id*opt.T+pos]
			buckets[val] = append(buckets[val], uint32(id))
		}
		for _, bucket := range buckets {
			if len(bucket) < 2 {
				continue
			}
			for i := 0; i < len(bucket); i++ {
				for k := i + 1; k < len(bucket); k++ {
					a, b := bucket[i], bucket[k]
					pre++
					if res.Contains(a, b) {
						continue
					}
					if !v.SizeCompatible(len(sets[a]), len(sets[b])) {
						continue
					}
					if pruner != nil {
						sa := sketches[int(a)*w : (int(a)+1)*w]
						sb := sketches[int(b)*w : (int(b)+1)*w]
						if !pruner.Survives(sa, sb) {
							continue
						}
					}
					cand++
					if v.Verify(a, b) {
						res.Add(a, b)
					}
				}
			}
		}
		atomics.Add(pre, cand)
	}

	if workers <= 1 {
		for rep := 0; rep < l; rep++ {
			runRep(rep)
		}
	} else {
		roots := make([]exec.Task, l)
		for rep := range roots {
			rep := rep
			roots[rep] = func(c *exec.Ctx) { runRep(rep) }
		}
		exec.Run(workers, roots...)
	}
	counters := atomics.Counters()
	counters.Results = int64(res.Len())
	return res.Pairs(), counters
}

// Pruner performs incremental sketch comparison with early termination:
// after each 64-bit word, the candidate is dropped if even an optimistic
// (upper confidence bound) read of the agreement rate cannot reach the
// threshold.
type Pruner struct {
	words  int
	lambda float64
	// slack[w] is the confidence radius after w words.
	slack []float64
}

// NewPruner builds a pruner for the given sketch width, threshold, and
// per-stage error budget gamma.
func NewPruner(words int, lambda, gamma float64) *Pruner {
	p := &Pruner{words: words, lambda: lambda, slack: make([]float64, words+1)}
	// Hoeffding: Pr[p̂ < p - eps] <= exp(-2 eps² m). Budget gamma/words
	// per stage keeps the total false-pruning probability below gamma.
	perStage := gamma / float64(words)
	for w := 1; w <= words; w++ {
		m := float64(64 * w)
		p.slack[w] = math.Sqrt(math.Log(1/perStage) / (2 * m))
	}
	return p
}

// Survives reports whether the candidate survives incremental pruning.
func (p *Pruner) Survives(a, b []uint64) bool {
	need := (1 + p.lambda) / 2 // required bit-agreement rate
	agree := 0
	for w := 0; w < p.words; w++ {
		agree += 64 - bits.OnesCount64(a[w]^b[w])
		m := float64(64 * (w + 1))
		ucb := float64(agree)/m + p.slack[w+1]
		if ucb < need {
			return false
		}
	}
	return true
}
