package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics, and that anything it
// accepts round-trips through Write/Parse unchanged.
func FuzzParse(f *testing.F) {
	f.Add("1 2 3\n4 5\n")
	f.Add("")
	f.Add("0\n")
	f.Add("4294967295 0\n")
	f.Add("1,2,3\r\n")
	f.Add("   \n\t\n")
	f.Add("1 1 1 1\n")
	f.Add("x\n")
	f.Add("99999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := Parse(strings.NewReader(input))
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if err := dsValidateLoose(ds); err != nil {
			t.Fatalf("parsed dataset invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := ds.Write(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if len(back.Sets) != len(ds.Sets) {
			t.Fatalf("round trip changed set count %d -> %d", len(ds.Sets), len(back.Sets))
		}
		for i := range ds.Sets {
			if len(back.Sets[i]) != len(ds.Sets[i]) {
				t.Fatalf("set %d changed length", i)
			}
			for j := range ds.Sets[i] {
				if back.Sets[i][j] != ds.Sets[i][j] {
					t.Fatalf("set %d token %d changed", i, j)
				}
			}
		}
	})
}

// dsValidateLoose allows empty sets (Parse skips blank lines but a line
// of separators yields nothing and is skipped too) while still requiring
// sortedness.
func dsValidateLoose(d *Dataset) error {
	for _, set := range d.Sets {
		for i := 1; i < len(set); i++ {
			if set[i] <= set[i-1] {
				return errNotSorted
			}
		}
	}
	return nil
}

var errNotSorted = ErrBadToken
