// Package dataset defines the collection-of-sets data model shared by every
// join algorithm in this repository, together with IO in the one-set-per-line
// token format used by the benchmark framework of Mann et al. (VLDB 2016)
// and the dataset statistics reported in Table I of the CPSJoin paper.
package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"repro/internal/intset"
)

// Dataset is a collection of sets ("records") over a token universe.
// Each set is a strictly increasing []uint32.
type Dataset struct {
	Sets [][]uint32
	// Name is an optional label used in experiment output.
	Name string
}

// ErrBadToken is returned when parsing encounters a non-integer token.
var ErrBadToken = errors.New("dataset: malformed token")

// Parse reads a dataset in the Mann et al. format: one set per line,
// whitespace-separated non-negative integer tokens. Empty lines are skipped.
// Sets are normalized (sorted, duplicate tokens removed).
func Parse(r io.Reader) (*Dataset, error) {
	ds := &Dataset{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		set, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if set == nil {
			continue
		}
		ds.Sets = append(ds.Sets, intset.Normalize(set))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ds, nil
}

func parseLine(line []byte) ([]uint32, error) {
	var set []uint32
	i := 0
	for i < len(line) {
		// Skip whitespace.
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r' || line[i] == ',') {
			i++
		}
		if i >= len(line) {
			break
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' && line[j] != '\r' && line[j] != ',' {
			j++
		}
		v, err := strconv.ParseUint(string(line[i:j]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: %q", ErrBadToken, line[i:j])
		}
		set = append(set, uint32(v))
		i = j
	}
	return set, nil
}

// Load reads a dataset from a file.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := Parse(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	ds.Name = path
	return ds, nil
}

// Write serializes the dataset, one set per line of space-separated tokens.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	buf := make([]byte, 0, 16)
	for _, set := range d.Sets {
		for i, tok := range set {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			buf = strconv.AppendUint(buf[:0], uint64(tok), 10)
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Save writes the dataset to a file.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Clean applies the preprocessing from the paper's experiments: duplicate
// records are removed and records containing fewer than two tokens are
// dropped. It returns the number of sets removed.
func (d *Dataset) Clean() int {
	before := len(d.Sets)
	seen := make(map[string]bool, len(d.Sets))
	out := d.Sets[:0]
	key := make([]byte, 0, 256)
	for _, set := range d.Sets {
		if len(set) < 2 {
			continue
		}
		key = key[:0]
		for _, tok := range set {
			key = append(key, byte(tok), byte(tok>>8), byte(tok>>16), byte(tok>>24))
		}
		k := string(key)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, set)
	}
	d.Sets = out
	return before - len(d.Sets)
}

// Stats summarizes a dataset in the terms of Table I of the paper.
type Stats struct {
	NumSets       int
	Universe      int     // number of distinct tokens
	AvgSetSize    float64 // average record length
	MaxSetSize    int
	SetsPerToken  float64 // average number of sets containing a token
	TotalTokens   int64   // sum of set sizes
	MedianSetSize int
}

// ComputeStats scans the dataset once and returns its summary statistics.
func (d *Dataset) ComputeStats() Stats {
	var s Stats
	s.NumSets = len(d.Sets)
	freq := make(map[uint32]int)
	sizes := make([]int, 0, len(d.Sets))
	for _, set := range d.Sets {
		s.TotalTokens += int64(len(set))
		if len(set) > s.MaxSetSize {
			s.MaxSetSize = len(set)
		}
		sizes = append(sizes, len(set))
		for _, tok := range set {
			freq[tok]++
		}
	}
	s.Universe = len(freq)
	if s.NumSets > 0 {
		s.AvgSetSize = float64(s.TotalTokens) / float64(s.NumSets)
		sort.Ints(sizes)
		s.MedianSetSize = sizes[len(sizes)/2]
	}
	if s.Universe > 0 {
		s.SetsPerToken = float64(s.TotalTokens) / float64(s.Universe)
	}
	return s
}

// TokenFrequencies returns a map from token to the number of sets that
// contain it.
func (d *Dataset) TokenFrequencies() map[uint32]int {
	freq := make(map[uint32]int)
	for _, set := range d.Sets {
		for _, tok := range set {
			freq[tok]++
		}
	}
	return freq
}

// RemapByFrequency relabels tokens so that token ids are assigned in order
// of increasing document frequency (ties broken by original id). After
// remapping, the natural ascending order of each set is exactly the
// rare-tokens-first order required by prefix-filtering joins, so AllPairs
// and PPJoin can use the sets directly. Returns the mapping old->new.
func (d *Dataset) RemapByFrequency() map[uint32]uint32 {
	freq := d.TokenFrequencies()
	tokens := make([]uint32, 0, len(freq))
	for tok := range freq {
		tokens = append(tokens, tok)
	}
	sort.Slice(tokens, func(i, j int) bool {
		fi, fj := freq[tokens[i]], freq[tokens[j]]
		if fi != fj {
			return fi < fj
		}
		return tokens[i] < tokens[j]
	})
	remap := make(map[uint32]uint32, len(tokens))
	for newID, tok := range tokens {
		remap[tok] = uint32(newID)
	}
	for i, set := range d.Sets {
		for j, tok := range set {
			set[j] = remap[tok]
		}
		sort.Slice(set, func(a, b int) bool { return set[a] < set[b] })
		d.Sets[i] = set
	}
	return remap
}

// SortBySize orders the sets by increasing size (ties by first differing
// token, then by length) — the processing order required by AllPairs-style
// algorithms. It returns a permutation p such that new index i holds the set
// previously at p[i], so callers can translate result pairs back if needed.
func (d *Dataset) SortBySize() []int {
	perm := make([]int, len(d.Sets))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return len(d.Sets[perm[a]]) < len(d.Sets[perm[b]])
	})
	sorted := make([][]uint32, len(d.Sets))
	for i, p := range perm {
		sorted[i] = d.Sets[p]
	}
	d.Sets = sorted
	return perm
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Name: d.Name, Sets: make([][]uint32, len(d.Sets))}
	for i, set := range d.Sets {
		out.Sets[i] = append([]uint32(nil), set...)
	}
	return out
}

// Validate checks the dataset invariants: every set is strictly increasing
// and non-empty. It returns the first violation found.
func (d *Dataset) Validate() error {
	for i, set := range d.Sets {
		if len(set) == 0 {
			return fmt.Errorf("dataset: set %d is empty", i)
		}
		if !intset.IsSet(set) {
			return fmt.Errorf("dataset: set %d is not sorted/unique", i)
		}
	}
	return nil
}
