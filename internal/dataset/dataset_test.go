package dataset

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	in := "1 2 3\n4 5\n\n7 7 6\n"
	ds, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Sets) != 3 {
		t.Fatalf("got %d sets, want 3", len(ds.Sets))
	}
	want := [][]uint32{{1, 2, 3}, {4, 5}, {6, 7}}
	for i := range want {
		if len(ds.Sets[i]) != len(want[i]) {
			t.Fatalf("set %d = %v, want %v", i, ds.Sets[i], want[i])
		}
		for j := range want[i] {
			if ds.Sets[i][j] != want[i][j] {
				t.Fatalf("set %d = %v, want %v", i, ds.Sets[i], want[i])
			}
		}
	}
}

func TestParseSeparators(t *testing.T) {
	ds, err := Parse(strings.NewReader("1,2,3\n4\t5\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Sets) != 2 || len(ds.Sets[0]) != 3 || len(ds.Sets[1]) != 2 {
		t.Fatalf("unexpected parse: %v", ds.Sets)
	}
}

func TestParseBadToken(t *testing.T) {
	_, err := Parse(strings.NewReader("1 2\n3 x 4\n"))
	if err == nil {
		t.Fatal("expected error for malformed token")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name the line: %v", err)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := &Dataset{}
	for i := 0; i < 100; i++ {
		n := 2 + rng.Intn(20)
		set := make([]uint32, 0, n)
		for j := 0; j < n; j++ {
			set = append(set, uint32(rng.Intn(1000)))
		}
		ds.Sets = append(ds.Sets, set)
	}
	for i := range ds.Sets {
		ds.Sets[i] = normalizeCopy(ds.Sets[i])
	}
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sets) != len(ds.Sets) {
		t.Fatalf("round trip set count %d, want %d", len(back.Sets), len(ds.Sets))
	}
	for i := range ds.Sets {
		if len(back.Sets[i]) != len(ds.Sets[i]) {
			t.Fatalf("set %d mismatch", i)
		}
		for j := range ds.Sets[i] {
			if back.Sets[i][j] != ds.Sets[i][j] {
				t.Fatalf("set %d token %d mismatch", i, j)
			}
		}
	}
}

func normalizeCopy(s []uint32) []uint32 {
	m := make(map[uint32]bool)
	for _, v := range s {
		m[v] = true
	}
	out := make([]uint32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.txt")
	ds := &Dataset{Sets: [][]uint32{{1, 2}, {3, 4, 5}}}
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sets) != 2 {
		t.Fatalf("got %d sets", len(back.Sets))
	}
}

func TestClean(t *testing.T) {
	ds := &Dataset{Sets: [][]uint32{
		{1, 2, 3},
		{7},       // too small: dropped
		{1, 2, 3}, // duplicate: dropped
		{4, 5},
	}}
	removed := ds.Clean()
	if removed != 2 {
		t.Fatalf("removed %d, want 2", removed)
	}
	if len(ds.Sets) != 2 {
		t.Fatalf("%d sets remain, want 2", len(ds.Sets))
	}
}

func TestComputeStats(t *testing.T) {
	ds := &Dataset{Sets: [][]uint32{
		{1, 2, 3, 4}, // size 4
		{1, 2},       // size 2
		{5, 6, 7},    // size 3
	}}
	s := ds.ComputeStats()
	if s.NumSets != 3 {
		t.Errorf("NumSets = %d", s.NumSets)
	}
	if s.Universe != 7 {
		t.Errorf("Universe = %d, want 7", s.Universe)
	}
	if s.AvgSetSize != 3 {
		t.Errorf("AvgSetSize = %v, want 3", s.AvgSetSize)
	}
	if s.MaxSetSize != 4 {
		t.Errorf("MaxSetSize = %d, want 4", s.MaxSetSize)
	}
	if want := 9.0 / 7.0; s.SetsPerToken != want {
		t.Errorf("SetsPerToken = %v, want %v", s.SetsPerToken, want)
	}
	if s.MedianSetSize != 3 {
		t.Errorf("MedianSetSize = %d, want 3", s.MedianSetSize)
	}
}

func TestRemapByFrequency(t *testing.T) {
	ds := &Dataset{Sets: [][]uint32{
		{10, 20, 30},
		{20, 30},
		{30},
	}}
	// Frequencies: 10->1, 20->2, 30->3. After remap ascending frequency:
	// 10->0, 20->1, 30->2.
	remap := ds.RemapByFrequency()
	if remap[10] != 0 || remap[20] != 1 || remap[30] != 2 {
		t.Fatalf("remap = %v", remap)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rare-first order within each set means ascending new ids.
	if ds.Sets[0][0] != 0 || ds.Sets[0][1] != 1 || ds.Sets[0][2] != 2 {
		t.Fatalf("set 0 after remap: %v", ds.Sets[0])
	}
}

func TestRemapPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := &Dataset{}
	for i := 0; i < 200; i++ {
		n := 2 + rng.Intn(15)
		set := make([]uint32, 0, n)
		for j := 0; j < n; j++ {
			set = append(set, uint32(rng.Intn(500)))
		}
		ds.Sets = append(ds.Sets, normalizeCopy(set))
	}
	orig := ds.Clone()
	ds.RemapByFrequency()
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sizes are preserved (bijection on tokens).
	for i := range ds.Sets {
		if len(ds.Sets[i]) != len(orig.Sets[i]) {
			t.Fatalf("set %d changed size after remap", i)
		}
	}
	// Intersection sizes are preserved for a sample of pairs.
	for k := 0; k < 200; k++ {
		i, j := rng.Intn(len(ds.Sets)), rng.Intn(len(ds.Sets))
		if got, want := intersect(ds.Sets[i], ds.Sets[j]), intersect(orig.Sets[i], orig.Sets[j]); got != want {
			t.Fatalf("pair (%d,%d) intersection %d, want %d", i, j, got, want)
		}
	}
}

func intersect(a, b []uint32) int {
	m := make(map[uint32]bool)
	for _, v := range a {
		m[v] = true
	}
	n := 0
	for _, v := range b {
		if m[v] {
			n++
		}
	}
	return n
}

func TestSortBySize(t *testing.T) {
	ds := &Dataset{Sets: [][]uint32{
		{1, 2, 3, 4},
		{1, 2},
		{5, 6, 7},
	}}
	perm := ds.SortBySize()
	if len(ds.Sets[0]) != 2 || len(ds.Sets[1]) != 3 || len(ds.Sets[2]) != 4 {
		t.Fatalf("not sorted by size: %v", ds.Sets)
	}
	if perm[0] != 1 || perm[1] != 2 || perm[2] != 0 {
		t.Fatalf("perm = %v", perm)
	}
}

func TestValidate(t *testing.T) {
	good := &Dataset{Sets: [][]uint32{{1, 2}, {3}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	for _, bad := range []*Dataset{
		{Sets: [][]uint32{{}}},
		{Sets: [][]uint32{{2, 1}}},
		{Sets: [][]uint32{{1, 1}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid dataset %v accepted", bad.Sets)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := &Dataset{Sets: [][]uint32{{1, 2, 3}}}
	cp := ds.Clone()
	cp.Sets[0][0] = 99
	if ds.Sets[0][0] != 1 {
		t.Fatal("Clone shares backing arrays")
	}
}
