package sketch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/intset"
)

func randomSet(rng *rand.Rand, size, universe int) []uint32 {
	m := make(map[uint32]bool, size)
	for len(m) < size {
		m[uint32(rng.Intn(universe))] = true
	}
	out := make([]uint32, 0, size)
	for v := range m {
		out = append(out, v)
	}
	return intset.Normalize(out)
}

func overlappingPair(rng *rand.Rand, size, shared, universe int) ([]uint32, []uint32) {
	pool := randomSet(rng, 2*size-shared, universe)
	a := append([]uint32(nil), pool[:size]...)
	b := append([]uint32(nil), pool[size-shared:]...)
	return intset.Normalize(a), intset.Normalize(b)
}

func TestSketchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	set := randomSet(rng, 30, 1000)
	a := NewMaker(4, 9).Sketch(set)
	b := NewMaker(4, 9).Sketch(set)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different sketches")
		}
	}
}

func TestIdenticalSetsZeroHamming(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMaker(8, 3)
	set := randomSet(rng, 50, 5000)
	if d := Hamming(m.Sketch(set), m.Sketch(set)); d != 0 {
		t.Fatalf("Hamming(x, x) = %d", d)
	}
	if j := EstimateJaccard(m.Sketch(set), m.Sketch(set)); j != 1 {
		t.Fatalf("EstimateJaccard(x, x) = %v", j)
	}
}

func TestHamming(t *testing.T) {
	a := []uint64{0xF0, 0x01}
	b := []uint64{0x0F, 0x01}
	if d := Hamming(a, b); d != 8 {
		t.Fatalf("Hamming = %d, want 8", d)
	}
	if g := AgreeBits(a, b); g != 120 {
		t.Fatalf("AgreeBits = %d, want 120", g)
	}
}

// TestEstimatorAccuracy: the sketch similarity estimate should concentrate
// around the true Jaccard similarity. Bit agreement probability is
// (1+J)/2, so with 512*reps bits the estimator is tight.
func TestEstimatorAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	size := 100
	for _, wantJ := range []float64{0.25, 0.5, 0.75} {
		shared := int(math.Round(2 * wantJ / (1 + wantJ) * float64(size)))
		a, b := overlappingPair(rng, size, shared, 100000)
		trueJ := intset.Jaccard(a, b)
		est := 0.0
		const reps = 8
		for r := 0; r < reps; r++ {
			m := NewMaker(8, uint64(100+r))
			est += EstimateJaccard(m.Sketch(a), m.Sketch(b))
		}
		est /= reps
		if math.Abs(est-trueJ) > 0.06 {
			t.Errorf("sketch estimate %v too far from true J %v", est, trueJ)
		}
	}
}

func TestSketchAllLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sets := make([][]uint32, 15)
	for i := range sets {
		sets[i] = randomSet(rng, 2+rng.Intn(30), 1000)
	}
	m := NewMaker(2, 6)
	flat := m.SketchAll(sets)
	if len(flat) != 15*2 {
		t.Fatalf("flat length %d", len(flat))
	}
	for i, set := range sets {
		want := m.Sketch(set)
		got := flat[i*2 : (i+1)*2]
		if got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("SketchAll disagrees with Sketch for set %d", i)
		}
	}
}

func TestFilterThresholdMonotoneInDelta(t *testing.T) {
	// Smaller delta (fewer false negatives allowed) must lower the
	// agreement bar.
	prev := -1
	for _, delta := range []float64{0.5, 0.2, 0.05, 0.01, 0.001} {
		f := NewFilter(8, 0.5, delta)
		if prev != -1 && f.MinAgree > prev {
			t.Fatalf("MinAgree increased when delta decreased: %d -> %d",
				prev, f.MinAgree)
		}
		prev = f.MinAgree
	}
}

func TestFilterThresholdMonotoneInLambda(t *testing.T) {
	prev := -1
	for _, lambda := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		f := NewFilter(8, lambda, 0.05)
		if f.MinAgree < prev {
			t.Fatalf("MinAgree decreased when lambda increased")
		}
		prev = f.MinAgree
	}
}

func TestFilterCalibration(t *testing.T) {
	// Check the binomial calibration directly: at the chosen MinAgree,
	// the miss probability is <= delta, and MinAgree+1 would exceed it.
	for _, lambda := range []float64{0.5, 0.7, 0.9} {
		for _, words := range []int{1, 4, 8} {
			f := NewFilter(words, lambda, 0.05)
			n := 64 * words
			p := (1 + lambda) / 2
			if miss := BinomTail(n, f.MinAgree, p); miss > 0.05+1e-9 {
				t.Errorf("words=%d λ=%v: miss prob %v > δ", words, lambda, miss)
			}
			if miss := BinomTail(n, f.MinAgree+1, p); miss <= 0.05 {
				t.Errorf("words=%d λ=%v: MinAgree not maximal", words, lambda)
			}
		}
	}
}

// TestFilterFalseNegativeRate: empirical false-negative rate on pairs at
// exactly the threshold similarity must respect delta.
func TestFilterFalseNegativeRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const lambda, delta = 0.5, 0.05
	size := 60
	shared := int(math.Round(2 * lambda / (1 + lambda) * float64(size)))
	// A pool of independent sketch functions keeps the test honest without
	// paying table construction for every trial.
	makers := make([]*Maker, 24)
	for i := range makers {
		makers[i] = NewMaker(8, uint64(i))
	}
	f := NewFilter(8, lambda, delta)
	misses, trials := 0, 0
	for r := 0; r < 400; r++ {
		a, b := overlappingPair(rng, size, shared, 100000)
		if intset.Jaccard(a, b) < lambda {
			continue // only count pairs actually above the threshold
		}
		m := makers[r%len(makers)]
		trials++
		if !f.Accept(m.Sketch(a), m.Sketch(b)) {
			misses++
		}
	}
	if trials < 100 {
		t.Fatalf("too few valid trials: %d", trials)
	}
	rate := float64(misses) / float64(trials)
	// Allow generous sampling slack over delta.
	if rate > delta+0.05 {
		t.Errorf("false negative rate %v (misses %d/%d) exceeds δ=%v",
			rate, misses, trials, delta)
	}
}

// TestFilterRejectsDissimilar: pairs far below the threshold should
// overwhelmingly fail the filter.
func TestFilterRejectsDissimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewMaker(8, 1)
	f := NewFilter(8, 0.7, 0.05)
	accepted := 0
	const trials = 200
	for r := 0; r < trials; r++ {
		a := randomSet(rng, 60, 1000000)
		b := randomSet(rng, 60, 1000000)
		if f.Accept(m.Sketch(a), m.Sketch(b)) {
			accepted++
		}
	}
	if accepted > trials/10 {
		t.Errorf("filter accepted %d/%d near-disjoint pairs", accepted, trials)
	}
}

func TestBinomTail(t *testing.T) {
	// Pr[Binom(4, 0.5) < 3] = (1 + 4 + 6) / 16 = 0.6875.
	if got := BinomTail(4, 3, 0.5); math.Abs(got-0.6875) > 1e-12 {
		t.Fatalf("BinomTail(4, 3, 0.5) = %v, want 0.6875", got)
	}
	if got := BinomTail(10, 0, 0.3); got != 0 {
		t.Fatalf("empty tail = %v", got)
	}
	if got := BinomTail(10, 11, 0.3); math.Abs(got-1) > 1e-9 {
		t.Fatalf("full tail = %v", got)
	}
}

func TestNewFilterValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewFilter(0, 0.5, 0.05) },
		func() { NewFilter(8, 0, 0.05) },
		func() { NewFilter(8, 1, 0.05) },
		func() { NewFilter(8, 0.5, 0) },
		func() { NewFilter(8, 0.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewFilter args did not panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkSketch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	set := randomSet(rng, 100, 100000)
	m := NewMaker(8, 1)
	out := make([]uint64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SketchInto(set, out)
	}
}

func BenchmarkHamming(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := NewMaker(8, 1)
	x := m.Sketch(randomSet(rng, 100, 100000))
	y := m.Sketch(randomSet(rng, 100, 100000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hamming(x, y)
	}
}
