// Package sketch implements the 1-bit minwise hashing sketches of Li and
// König (CACM 2011) used by CPSJoin for fast similarity estimation.
//
// A sketch of a set x is a vector of 64*W bits where bit i is b_i(h_i(x)):
// an independent MinHash h_i of x, hashed down to one bit by an independent
// hash b_i. For two sets with Jaccard similarity J, each bit position
// agrees independently with probability (1+J)/2, so the similarity can be
// estimated from the Hamming distance of two sketches — computed word by
// word with XOR and popcount, a handful of instructions total.
package sketch

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/tabhash"
)

// Maker builds 1-bit minwise sketches of a fixed width.
type Maker struct {
	words  int
	minvs  []*tabhash.Table32 // one MinHash (value hash) per bit
	bitfns []*tabhash.Table64 // one 64->1 bit hash per bit
}

// NewMaker returns a Maker producing sketches of the given number of 64-bit
// words (the paper uses words = 8, i.e. 512 bits). It panics if words <= 0.
func NewMaker(words int, seed uint64) *Maker {
	if words <= 0 {
		panic(fmt.Sprintf("sketch: invalid word count %d", words))
	}
	nbits := 64 * words
	m := &Maker{
		words:  words,
		minvs:  make([]*tabhash.Table32, nbits),
		bitfns: make([]*tabhash.Table64, nbits),
	}
	for i := 0; i < nbits; i++ {
		m.minvs[i] = tabhash.NewTable32(tabhash.Mix64((seed ^ 0xa5a5a5a5a5a5a5a5) + uint64(i)*2))
		m.bitfns[i] = tabhash.NewTable64(tabhash.Mix64((seed ^ 0x5a5a5a5a5a5a5a5a) + uint64(i)*2 + 1))
	}
	return m
}

// Words returns the sketch width in 64-bit words.
func (m *Maker) Words() int { return m.words }

// Bits returns the sketch width in bits.
func (m *Maker) Bits() int { return 64 * m.words }

// Sketch computes the sketch of set. It panics on an empty set.
func (m *Maker) Sketch(set []uint32) []uint64 {
	out := make([]uint64, m.words)
	m.SketchInto(set, out)
	return out
}

// SketchInto computes the sketch of set into out, which must have length
// Words().
func (m *Maker) SketchInto(set []uint32, out []uint64) {
	if len(set) == 0 {
		panic("sketch: cannot sketch an empty set")
	}
	if len(out) != m.words {
		panic(fmt.Sprintf("sketch: out length %d, want %d", len(out), m.words))
	}
	for w := 0; w < m.words; w++ {
		var word uint64
		base := w * 64
		for b := 0; b < 64; b++ {
			table := m.minvs[base+b]
			best := table.Hash(set[0])
			for _, tok := range set[1:] {
				if h := table.Hash(tok); h < best {
					best = h
				}
			}
			word |= m.bitfns[base+b].Bit(best) << uint(b)
		}
		out[w] = word
	}
}

// SketchAll sketches every set into a single flattened slice of length
// len(sets)*Words(); the sketch of set i occupies [i*W, (i+1)*W).
func (m *Maker) SketchAll(sets [][]uint32) []uint64 {
	flat := make([]uint64, len(sets)*m.words)
	for i, set := range sets {
		m.SketchInto(set, flat[i*m.words:(i+1)*m.words])
	}
	return flat
}

// Hamming returns the number of differing bits between two sketches.
func Hamming(a, b []uint64) int {
	d := 0
	for i := range a {
		d += bits.OnesCount64(a[i] ^ b[i])
	}
	return d
}

// AgreeBits returns the number of agreeing bits between two equal-length
// sketches.
func AgreeBits(a, b []uint64) int {
	return 64*len(a) - Hamming(a, b)
}

// EstimateJaccard estimates the Jaccard similarity of the sets underlying
// two sketches: if a fraction p of the bits agree, J ≈ 2p - 1 (clamped to
// [0, 1]).
func EstimateJaccard(a, b []uint64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		panic("sketch: length mismatch")
	}
	p := float64(AgreeBits(a, b)) / float64(64*len(a))
	j := 2*p - 1
	if j < 0 {
		return 0
	}
	return j
}

// Filter is a precomputed accept/reject rule: a candidate pair passes when
// its sketches agree in at least MinAgree bits. It is calibrated so that a
// pair with true Jaccard similarity >= Lambda is rejected with probability
// at most Delta (the sketch false-negative probability of Section V-A.2).
type Filter struct {
	Words    int
	Lambda   float64
	Delta    float64
	MinAgree int
}

// NewFilter computes the agreement threshold for sketches of the given
// width. For a pair with J >= lambda each bit agrees independently with
// probability >= (1+lambda)/2; MinAgree is the largest m such that
// Pr[Binomial(bits, (1+lambda)/2) < m] <= delta.
func NewFilter(words int, lambda, delta float64) *Filter {
	if words <= 0 {
		panic("sketch: invalid word count")
	}
	if lambda <= 0 || lambda >= 1 {
		panic(fmt.Sprintf("sketch: lambda %v out of (0,1)", lambda))
	}
	if delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("sketch: delta %v out of (0,1)", delta))
	}
	n := 64 * words
	p := (1 + lambda) / 2
	// Find the largest m with BinomCDF(m-1; n, p) <= delta. CDF is
	// increasing in m, so scan from below; n <= a few thousand, so the
	// direct scan over the log-space pmf is exact and cheap.
	cdf := 0.0
	minAgree := 0
	for k := 0; k <= n; k++ {
		cdf += math.Exp(logBinomPMF(n, k, p))
		if cdf > delta {
			minAgree = k
			break
		}
	}
	return &Filter{Words: words, Lambda: lambda, Delta: delta, MinAgree: minAgree}
}

// Accept reports whether the pair with the given sketches passes the filter.
func (f *Filter) Accept(a, b []uint64) bool {
	return AgreeBits(a, b) >= f.MinAgree
}

// EstimateThreshold returns the effective similarity threshold λ̂ implied by
// MinAgree: pairs whose *estimated* similarity is below λ̂ are rejected.
func (f *Filter) EstimateThreshold() float64 {
	p := float64(f.MinAgree) / float64(64*f.Words)
	return 2*p - 1
}

// logBinomPMF returns log Pr[Binomial(n, p) = k].
func logBinomPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k) +
		float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
}

// BinomTail returns Pr[Binomial(n, p) < m], the exact lower tail used by
// the filter calibration; exported for tests and for the BayesLSH-style
// incremental pruning.
func BinomTail(n, m int, p float64) float64 {
	cdf := 0.0
	for k := 0; k < m; k++ {
		cdf += math.Exp(logBinomPMF(n, k, p))
	}
	return cdf
}
