package sketch

import (
	"math"
	"testing"
)

func TestKMVExactBelowK(t *testing.T) {
	s := NewKMV(64, 7)
	for i := 0; i < 50; i++ {
		s.Add(uint32(i))
	}
	// Duplicates never move the estimate.
	for i := 0; i < 50; i++ {
		s.Add(uint32(i))
	}
	if got := s.Estimate(); got != 50 {
		t.Fatalf("Estimate = %v, want exact 50 below k", got)
	}
}

// TestKMVErrorBound checks the estimator against the textbook bound:
// over many independent sketches (different seeds), the mean relative
// error stays within a small multiple of 1/sqrt(k-2).
func TestKMVErrorBound(t *testing.T) {
	const (
		k      = 128
		n      = 20000
		trials = 30
	)
	var sumAbs, sumRel float64
	worst := 0.0
	for trial := 0; trial < trials; trial++ {
		s := NewKMV(k, uint64(1000+trial))
		for i := 0; i < n; i++ {
			s.Add(uint32(i * 7919)) // distinct tokens, arbitrary spread
		}
		rel := math.Abs(s.Estimate()-float64(n)) / float64(n)
		sumAbs += s.Estimate()
		sumRel += rel
		if rel > worst {
			worst = rel
		}
	}
	bound := 1 / math.Sqrt(k-2) // ≈ 0.089 for k=128
	if mean := sumRel / trials; mean > 2*bound {
		t.Fatalf("mean relative error %.4f exceeds 2/sqrt(k-2) = %.4f", mean, 2*bound)
	}
	if worst > 6*bound {
		t.Fatalf("worst relative error %.4f exceeds 6/sqrt(k-2) = %.4f", worst, 6*bound)
	}
	// The estimator is near-unbiased: the mean over trials lands close
	// to the truth.
	if meanEst := sumAbs / trials; math.Abs(meanEst-n)/n > bound {
		t.Fatalf("mean estimate %.1f deviates from %d beyond one standard error", meanEst, n)
	}
}

func TestKMVDeterministic(t *testing.T) {
	a, b := NewKMV(32, 42), NewKMV(32, 42)
	set := []uint32{9, 1, 4, 7, 1, 9, 300, 2}
	a.AddSet(set)
	for _, tok := range set {
		b.Add(tok)
	}
	if a.Estimate() != b.Estimate() {
		t.Fatalf("same inputs, same seed: estimates differ (%v vs %v)", a.Estimate(), b.Estimate())
	}
}

func TestKMVMerge(t *testing.T) {
	const k = 64
	whole := NewKMV(k, 11)
	left, right := NewKMV(k, 11), NewKMV(k, 11)
	for i := 0; i < 5000; i++ {
		tok := uint32(i * 2654435761)
		whole.Add(tok)
		if i%2 == 0 {
			left.Add(tok)
		} else {
			right.Add(tok)
		}
	}
	// Overlap too: both halves see a shared block.
	for i := 0; i < 100; i++ {
		left.Add(uint32(i))
		right.Add(uint32(i))
		whole.Add(uint32(i))
	}
	left.Merge(right)
	if left.Estimate() != whole.Estimate() {
		t.Fatalf("merged estimate %v != whole-stream estimate %v", left.Estimate(), whole.Estimate())
	}
}

func TestKMVPanicsOnTinyK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewKMV(1, ...) must panic")
		}
	}()
	NewKMV(1, 0)
}
