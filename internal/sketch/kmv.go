// KMV cardinality sketches (Bar-Yossef et al., RANDOM 2002; Beyer et
// al., SIGMOD 2007): keep the k smallest distinct hash values seen. If
// the k-th smallest of n distinct uniform hashes is v, then v/2^64 ≈
// k/n, so n̂ = (k-1)·2^64/v is (almost) unbiased with relative standard
// error ≈ 1/sqrt(k-2). LSH Ensemble (Zhu et al., VLDB 2016) uses these
// sketches to estimate domain cardinalities when exact sizes are too
// expensive to maintain; the containment index uses them to summarize
// the distinct-token universe of each cardinality partition.

package sketch

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tabhash"
)

// KMV is a k-minimum-values cardinality sketch over uint32 tokens. The
// zero value is not usable; construct with NewKMV. Adding the same
// token twice never changes the sketch, so Estimate counts *distinct*
// tokens. Not safe for concurrent use.
type KMV struct {
	k    int
	hash *tabhash.Table32
	vals []uint64 // the k smallest distinct hash values, sorted ascending
}

// NewKMV returns a sketch keeping the k smallest hash values, hashing
// tokens with a tabulation hash derived from seed. It panics if k < 2
// (the estimator needs at least two retained values to be defined).
func NewKMV(k int, seed uint64) *KMV {
	if k < 2 {
		panic(fmt.Sprintf("sketch: KMV size %d, need >= 2", k))
	}
	return &KMV{
		k:    k,
		hash: tabhash.NewTable32(tabhash.Mix64(seed ^ 0x6b6d762d6b6d762d)), // "kmv-kmv-"
		vals: make([]uint64, 0, k),
	}
}

// K returns the sketch size.
func (s *KMV) K() int { return s.k }

// Add folds one token into the sketch.
func (s *KMV) Add(tok uint32) {
	h := s.hash.Hash(tok)
	i := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= h })
	if i < len(s.vals) && s.vals[i] == h {
		return // duplicate token (or full hash collision): idempotent
	}
	if len(s.vals) == s.k {
		if i == s.k {
			return // larger than the current k-th minimum
		}
		s.vals = s.vals[:s.k-1] // drop the largest to make room
	}
	s.vals = append(s.vals, 0)
	copy(s.vals[i+1:], s.vals[i:])
	s.vals[i] = h
}

// AddSet folds every token of set into the sketch.
func (s *KMV) AddSet(set []uint32) {
	for _, tok := range set {
		s.Add(tok)
	}
}

// Estimate returns the estimated number of distinct tokens added. While
// fewer than k distinct hash values have been seen the count is exact;
// beyond that it is the (k-1)·2^64/v_k estimator with relative standard
// error ≈ 1/sqrt(k-2).
func (s *KMV) Estimate() float64 {
	if len(s.vals) < s.k {
		return float64(len(s.vals))
	}
	vk := s.vals[s.k-1]
	// v_k as a fraction of the hash space; vk is never 0 here in
	// practice, but guard the division anyway.
	frac := float64(vk) / float64(1<<63) / 2
	if frac <= 0 {
		return float64(s.k)
	}
	return float64(s.k-1) / frac
}

// RelativeError returns the expected relative standard error of
// Estimate for this sketch size, 1/sqrt(k-2).
func (s *KMV) RelativeError() float64 {
	return 1 / math.Sqrt(float64(s.k-2))
}

// Merge folds another sketch built with the SAME k and seed into s, so
// per-partition sketches can be combined into a global one. It panics
// on a size mismatch (different seeds are not detectable and yield
// garbage estimates; callers derive all sketches from one seed).
func (s *KMV) Merge(o *KMV) {
	if s.k != o.k {
		panic(fmt.Sprintf("sketch: KMV merge size mismatch %d != %d", s.k, o.k))
	}
	merged := make([]uint64, 0, s.k)
	i, j := 0, 0
	for len(merged) < s.k && (i < len(s.vals) || j < len(o.vals)) {
		switch {
		case i == len(s.vals):
			merged = append(merged, o.vals[j])
			j++
		case j == len(o.vals):
			merged = append(merged, s.vals[i])
			i++
		case s.vals[i] < o.vals[j]:
			merged = append(merged, s.vals[i])
			i++
		case s.vals[i] > o.vals[j]:
			merged = append(merged, o.vals[j])
			j++
		default:
			merged = append(merged, s.vals[i])
			i++
			j++
		}
	}
	s.vals = merged
}
