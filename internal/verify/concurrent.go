package verify

import (
	"math"
	"sync"
	"sync/atomic"
)

// PairSink abstracts result-pair collection so the join algorithms can run
// against the single-threaded ResultSet or the sharded ConcurrentResultSet
// without branching at every emission site.
type PairSink interface {
	// Add inserts the pair (i, j), returning true if it was new.
	Add(i, j uint32) bool
	// Contains reports whether the pair is present.
	Contains(i, j uint32) bool
	// Len returns the number of distinct pairs.
	Len() int
	// Pairs returns the pairs in unspecified order.
	Pairs() []Pair
}

var (
	_ PairSink = (*ResultSet)(nil)
	_ PairSink = (*ConcurrentResultSet)(nil)
)

// ConcurrentResultSet is a sharded, lock-striped result set safe for
// concurrent use by the workers of a parallel join. Pairs are routed to
// shards by a mixed hash of the packed pair key, so contention spreads
// evenly no matter how the input ids cluster.
//
// The final pair *set* is independent of interleaving: Add is idempotent
// and the shard map dedups, which is what lets the parallel joins promise
// identical result sets across worker counts.
type ConcurrentResultSet struct {
	shards []resultShard
	mask   uint64
	n      atomic.Int64
}

type resultShard struct {
	mu sync.Mutex
	m  map[uint64]struct{}
	_  [48]byte // pad to 64 bytes: one shard lock per cache line
}

// NewConcurrentResultSet returns a result set striped over at least the
// given number of shards (rounded up to a power of two, minimum 8).
func NewConcurrentResultSet(shards int) *ConcurrentResultSet {
	n := 8
	for n < shards && n < 1<<16 {
		n <<= 1
	}
	r := &ConcurrentResultSet{shards: make([]resultShard, n), mask: uint64(n - 1)}
	for i := range r.shards {
		r.shards[i].m = make(map[uint64]struct{})
	}
	return r
}

// shard routes a packed pair key to its stripe. The multiply-xorshift mix
// decorrelates the stripe index from the low bits of B (which would
// otherwise concentrate consecutive ids on few stripes).
func (r *ConcurrentResultSet) shard(key uint64) *resultShard {
	h := key * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return &r.shards[h&r.mask]
}

// Add inserts the pair (i, j); it returns true if the pair was new.
func (r *ConcurrentResultSet) Add(i, j uint32) bool {
	key := MakePair(i, j).Key()
	s := r.shard(key)
	s.mu.Lock()
	if _, ok := s.m[key]; ok {
		s.mu.Unlock()
		return false
	}
	s.m[key] = struct{}{}
	s.mu.Unlock()
	r.n.Add(1)
	return true
}

// Contains reports whether the pair is present.
func (r *ConcurrentResultSet) Contains(i, j uint32) bool {
	key := MakePair(i, j).Key()
	s := r.shard(key)
	s.mu.Lock()
	_, ok := s.m[key]
	s.mu.Unlock()
	return ok
}

// Len returns the number of distinct pairs added so far.
func (r *ConcurrentResultSet) Len() int { return int(r.n.Load()) }

// Pairs returns the pairs in unspecified order. It must not race with
// concurrent Adds if a consistent snapshot is required; the joins call it
// only after the pool has quiesced.
func (r *ConcurrentResultSet) Pairs() []Pair {
	out := make([]Pair, 0, r.Len())
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for k := range s.m {
			out = append(out, PairFromKey(k))
		}
		s.mu.Unlock()
	}
	return out
}

// NewSink returns a PairSink appropriate for the given worker count: the
// plain ResultSet when a single worker runs (no locking overhead), a
// ConcurrentResultSet striped a few times wider than the worker count
// otherwise.
func NewSink(workers int) PairSink {
	if workers <= 1 {
		return NewResultSet()
	}
	return NewConcurrentResultSet(workers * 8)
}

// RecallTracker gives the workers of a parallel join a shared atomic view
// of how much of a known ground truth they have accumulated, fixing the
// weakness of the earlier per-worker StopAtRecall accounting: each worker
// saw only its own results, so the ensemble kept running long after the
// union had reached the target.
//
// Workers report every newly added pair through Hit; once the hit count
// reaches ceil(target * |truth|), Reached flips permanently and all
// workers wind down. The check is O(1) per added pair — no rescans of the
// truth set.
type RecallTracker struct {
	truth map[uint64]struct{}
	need  int64
	hits  atomic.Int64
	done  atomic.Bool
}

// NewRecallTracker returns a tracker for the given ground truth and recall
// target, or nil (a no-op tracker) when the stopping rule is disabled.
// The nil receiver is valid for all methods.
func NewRecallTracker(truth []Pair, target float64) *RecallTracker {
	if target <= 0 || truth == nil {
		return nil
	}
	t := &RecallTracker{truth: make(map[uint64]struct{}, len(truth))}
	for _, p := range truth {
		t.truth[p.Key()] = struct{}{}
	}
	t.need = int64(math.Ceil(target * float64(len(t.truth))))
	if t.need <= 0 {
		// Empty ground truth: the target is vacuously met, so the join
		// stops before doing any work at all.
		t.done.Store(true)
	}
	return t
}

// Hit records a newly reported pair; call it only for pairs that were
// actually added (Add returned true), so each truth pair counts once.
func (t *RecallTracker) Hit(i, j uint32) {
	if t == nil || t.done.Load() {
		return
	}
	if _, ok := t.truth[MakePair(i, j).Key()]; !ok {
		return
	}
	if t.hits.Add(1) >= t.need {
		t.done.Store(true)
	}
}

// Reached reports whether the recall target has been met.
func (t *RecallTracker) Reached() bool {
	return t != nil && t.done.Load()
}
