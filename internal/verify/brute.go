package verify

// BruteForceJoin computes the exact self-join by verifying all O(n²)
// pairs. It is the ground truth against which every other algorithm in
// this repository is tested, and the recall denominator in experiments.
func BruteForceJoin(sets [][]uint32, lambda float64) []Pair {
	var out []Pair
	v := NewVerifier(sets, lambda, nil)
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			if !v.SizeCompatible(len(sets[i]), len(sets[j])) {
				continue
			}
			if v.Verify(uint32(i), uint32(j)) {
				out = append(out, Pair{A: uint32(i), B: uint32(j)})
			}
		}
	}
	return out
}
