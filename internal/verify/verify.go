// Package verify provides exact similarity verification with early
// termination, result-pair bookkeeping, and the pre-candidate/candidate/
// result accounting reported in Table IV of the paper.
package verify

import (
	"sync/atomic"

	"repro/internal/intset"
)

// Pair is an unordered result pair of set indices, normalized so A < B.
type Pair struct {
	A, B uint32
}

// MakePair returns the normalized pair for indices i and j.
func MakePair(i, j uint32) Pair {
	if i > j {
		i, j = j, i
	}
	return Pair{A: i, B: j}
}

// Key packs the pair into a single uint64 map key.
func (p Pair) Key() uint64 {
	return uint64(p.A)<<32 | uint64(p.B)
}

// PairFromKey inverts Key.
func PairFromKey(k uint64) Pair {
	return Pair{A: uint32(k >> 32), B: uint32(k)}
}

// Counters tracks the candidate-generation statistics of a join run, in
// the terms of Table IV:
//
//   - PreCandidates: every pair the algorithm looked at (inverted-list hits
//     for AllPairs; pairs considered by BRUTEFORCEPAIRS/POINT for CPSJoin).
//   - Candidates: pairs that survived the cheap checks (size bounds, 1-bit
//     sketch filter) and were passed to exact verification.
//   - Results: verified pairs with similarity >= lambda.
type Counters struct {
	PreCandidates int64
	Candidates    int64
	Results       int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.PreCandidates += other.PreCandidates
	c.Candidates += other.Candidates
	c.Results += other.Results
}

// AtomicCounters accumulates pre-candidate/candidate counts from
// concurrent workers. Tasks batch counts locally and publish them with one
// Add per task, so the atomics stay off the hot path.
type AtomicCounters struct {
	pre  atomic.Int64
	cand atomic.Int64
}

// Add accumulates a task's local counts.
func (a *AtomicCounters) Add(pre, cand int64) {
	if pre != 0 {
		a.pre.Add(pre)
	}
	if cand != 0 {
		a.cand.Add(cand)
	}
}

// Counters returns the accumulated totals (Results is left for the caller,
// which knows the result sink).
func (a *AtomicCounters) Counters() Counters {
	return Counters{PreCandidates: a.pre.Load(), Candidates: a.cand.Load()}
}

// Verifier performs exact Jaccard verification over a fixed collection.
type Verifier struct {
	Sets   [][]uint32
	Lambda float64
	// Count, when non-nil, receives candidate accounting.
	Count *Counters
}

// NewVerifier returns a Verifier for the collection at threshold lambda.
func NewVerifier(sets [][]uint32, lambda float64, count *Counters) *Verifier {
	return &Verifier{Sets: sets, Lambda: lambda, Count: count}
}

// Verify computes whether J(sets[i], sets[j]) >= lambda exactly, using the
// equivalent overlap bound with an early-terminating merge.
func (v *Verifier) Verify(i, j uint32) bool {
	if v.Count != nil {
		v.Count.Candidates++
	}
	a, b := v.Sets[i], v.Sets[j]
	required := intset.JaccardOverlapBound(len(a), len(b), v.Lambda)
	_, ok := intset.IntersectSizeAtLeast(a, b, required)
	if ok && v.Count != nil {
		v.Count.Results++
	}
	return ok
}

// SizeCompatible reports whether two sets of the given sizes can possibly
// reach the threshold: lambda*|a| <= |b| <= |a|/lambda (assuming |a|<=|b|
// gives J <= |a|/|b|).
func (v *Verifier) SizeCompatible(la, lb int) bool {
	if la > lb {
		la, lb = lb, la
	}
	return float64(la) >= v.Lambda*float64(lb)
}

// ResultSet collects result pairs with deduplication. Approximate joins
// can emit the same pair from multiple subproblems or repetitions; the
// set ensures each pair is reported once.
type ResultSet struct {
	pairs map[uint64]struct{}
}

// NewResultSet returns an empty result set.
func NewResultSet() *ResultSet {
	return &ResultSet{pairs: make(map[uint64]struct{})}
}

// Add inserts the pair (i, j); it returns true if the pair was new.
func (r *ResultSet) Add(i, j uint32) bool {
	k := MakePair(i, j).Key()
	if _, ok := r.pairs[k]; ok {
		return false
	}
	r.pairs[k] = struct{}{}
	return true
}

// Contains reports whether the pair is present.
func (r *ResultSet) Contains(i, j uint32) bool {
	_, ok := r.pairs[MakePair(i, j).Key()]
	return ok
}

// Len returns the number of pairs.
func (r *ResultSet) Len() int { return len(r.pairs) }

// Pairs returns the pairs in unspecified order.
func (r *ResultSet) Pairs() []Pair {
	out := make([]Pair, 0, len(r.pairs))
	for k := range r.pairs {
		out = append(out, PairFromKey(k))
	}
	return out
}
