package verify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/intset"
)

func TestMakePairNormalizes(t *testing.T) {
	if MakePair(5, 2) != (Pair{A: 2, B: 5}) {
		t.Error("MakePair did not normalize")
	}
	if MakePair(2, 5) != (Pair{A: 2, B: 5}) {
		t.Error("MakePair changed ordered input")
	}
}

func TestPairKeyRoundTrip(t *testing.T) {
	f := func(a, b uint32) bool {
		p := MakePair(a, b)
		return PairFromKey(p.Key()) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomSet(rng *rand.Rand, size, universe int) []uint32 {
	s := make([]uint32, 0, size)
	for i := 0; i < size; i++ {
		s = append(s, uint32(rng.Intn(universe)))
	}
	return intset.Normalize(s)
}

func TestVerifyMatchesDirectJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sets := make([][]uint32, 60)
	for i := range sets {
		sets[i] = randomSet(rng, 2+rng.Intn(25), 40)
	}
	for _, lambda := range []float64{0.5, 0.7, 0.9} {
		var c Counters
		v := NewVerifier(sets, lambda, &c)
		for i := 0; i < len(sets); i++ {
			for j := i + 1; j < len(sets); j++ {
				want := intset.Jaccard(sets[i], sets[j]) >= lambda
				if got := v.Verify(uint32(i), uint32(j)); got != want {
					t.Fatalf("Verify(%d, %d) = %v, want %v (J=%v, λ=%v)",
						i, j, got, want, intset.Jaccard(sets[i], sets[j]), lambda)
				}
			}
		}
		if c.Candidates == 0 || c.Results > c.Candidates {
			t.Fatalf("counter accounting broken: %+v", c)
		}
	}
}

func TestSizeCompatible(t *testing.T) {
	v := &Verifier{Lambda: 0.5}
	cases := []struct {
		la, lb int
		want   bool
	}{
		{10, 10, true},
		{10, 20, true},  // J can be 10/20 = 0.5
		{10, 21, false}, // J at most 10/21 < 0.5
		{21, 10, false}, // symmetric
		{5, 2, false},
		{4, 2, true},
	}
	for _, c := range cases {
		if got := v.SizeCompatible(c.la, c.lb); got != c.want {
			t.Errorf("SizeCompatible(%d, %d) = %v, want %v", c.la, c.lb, got, c.want)
		}
	}
}

func TestResultSetDedup(t *testing.T) {
	r := NewResultSet()
	if !r.Add(3, 1) {
		t.Error("first Add returned false")
	}
	if r.Add(1, 3) {
		t.Error("duplicate Add (reversed) returned true")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if !r.Contains(3, 1) || !r.Contains(1, 3) {
		t.Error("Contains failed")
	}
	pairs := r.Pairs()
	if len(pairs) != 1 || pairs[0] != (Pair{A: 1, B: 3}) {
		t.Errorf("Pairs = %v", pairs)
	}
}

func TestBruteForceJoinGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sets := make([][]uint32, 80)
	for i := range sets {
		sets[i] = randomSet(rng, 2+rng.Intn(15), 30)
	}
	for _, lambda := range []float64{0.5, 0.8} {
		got := BruteForceJoin(sets, lambda)
		// Reference: direct Jaccard on all pairs.
		want := 0
		for i := 0; i < len(sets); i++ {
			for j := i + 1; j < len(sets); j++ {
				if intset.Jaccard(sets[i], sets[j]) >= lambda {
					want++
				}
			}
		}
		if len(got) != want {
			t.Fatalf("λ=%v: BruteForceJoin found %d pairs, want %d", lambda, len(got), want)
		}
		// All pairs normalized and above threshold.
		for _, p := range got {
			if p.A >= p.B {
				t.Fatalf("unnormalized pair %v", p)
			}
			if intset.Jaccard(sets[p.A], sets[p.B]) < lambda {
				t.Fatalf("false positive %v", p)
			}
		}
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{PreCandidates: 1, Candidates: 2, Results: 3}
	a.Add(Counters{PreCandidates: 10, Candidates: 20, Results: 30})
	if a.PreCandidates != 11 || a.Candidates != 22 || a.Results != 33 {
		t.Errorf("Add result %+v", a)
	}
}
