package verify

import (
	"sync"
	"testing"
)

func TestConcurrentResultSetBasics(t *testing.T) {
	r := NewConcurrentResultSet(4)
	if !r.Add(3, 1) {
		t.Error("first Add returned false")
	}
	if r.Add(1, 3) {
		t.Error("duplicate Add (swapped order) returned true")
	}
	if !r.Contains(1, 3) || !r.Contains(3, 1) {
		t.Error("Contains failed for added pair")
	}
	if r.Contains(1, 2) {
		t.Error("Contains true for absent pair")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	pairs := r.Pairs()
	if len(pairs) != 1 || pairs[0] != (Pair{A: 1, B: 3}) {
		t.Errorf("Pairs = %v", pairs)
	}
}

// TestConcurrentResultSetContention hammers one set from many goroutines
// with overlapping pair ranges; run under -race this is the contention
// check the parallel joins rely on.
func TestConcurrentResultSetContention(t *testing.T) {
	r := NewConcurrentResultSet(8)
	const (
		goroutines = 16
		pairsEach  = 2000
		overlap    = 500 // every goroutine also inserts these shared pairs
	)
	var wg sync.WaitGroup
	newCount := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for i := 0; i < pairsEach; i++ {
				// Unique range per goroutine.
				a := uint32(g*pairsEach + i)
				if r.Add(a, a+1_000_000) {
					n++
				}
				// Shared range: contended dedup.
				s := uint32(i % overlap)
				if r.Add(s, s+2_000_000) {
					n++
				}
				r.Contains(s, s+2_000_000)
			}
			newCount[g] = n
		}(g)
	}
	wg.Wait()

	total := 0
	for _, n := range newCount {
		total += n
	}
	want := goroutines*pairsEach + overlap
	if total != want {
		t.Errorf("sum of new-pair Adds = %d, want %d (Add not linearizable)", total, want)
	}
	if r.Len() != want {
		t.Errorf("Len = %d, want %d", r.Len(), want)
	}
	if got := len(r.Pairs()); got != want {
		t.Errorf("len(Pairs) = %d, want %d", got, want)
	}
}

func TestNewSinkSelectsImplementation(t *testing.T) {
	if _, ok := NewSink(1).(*ResultSet); !ok {
		t.Error("NewSink(1) is not a plain ResultSet")
	}
	if _, ok := NewSink(4).(*ConcurrentResultSet); !ok {
		t.Error("NewSink(4) is not a ConcurrentResultSet")
	}
}

func TestRecallTrackerNil(t *testing.T) {
	var tr *RecallTracker
	tr.Hit(1, 2) // must not panic
	if tr.Reached() {
		t.Error("nil tracker reports reached")
	}
	if NewRecallTracker(nil, 0.9) != nil {
		t.Error("nil truth should disable the tracker")
	}
	if NewRecallTracker([]Pair{{A: 1, B: 2}}, 0) != nil {
		t.Error("zero target should disable the tracker")
	}
}

func TestRecallTrackerReaches(t *testing.T) {
	truth := []Pair{{A: 0, B: 1}, {A: 2, B: 3}, {A: 4, B: 5}, {A: 6, B: 7}}
	tr := NewRecallTracker(truth, 0.75) // needs 3 of 4
	tr.Hit(9, 10)                       // not in truth
	tr.Hit(0, 1)
	tr.Hit(2, 3)
	if tr.Reached() {
		t.Error("reached after 2 of 3 required hits")
	}
	tr.Hit(5, 4) // unordered must normalize
	if !tr.Reached() {
		t.Error("not reached after 3 hits")
	}
}

func TestRecallTrackerEmptyTruth(t *testing.T) {
	tr := NewRecallTracker([]Pair{}, 0.9)
	if !tr.Reached() {
		t.Error("empty ground truth must be vacuously reached")
	}
}

func TestRecallTrackerConcurrent(t *testing.T) {
	truth := make([]Pair, 1000)
	for i := range truth {
		truth[i] = Pair{A: uint32(2 * i), B: uint32(2*i + 1)}
	}
	tr := NewRecallTracker(truth, 0.9)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(truth); i += 8 {
				tr.Hit(truth[i].A, truth[i].B)
			}
		}(g)
	}
	wg.Wait()
	if !tr.Reached() {
		t.Error("tracker did not reach target after all truth pairs hit")
	}
}
