// Package contain implements LSH Ensemble-style Jaccard containment
// search (Zhu, Nargesian, Pu & Miller, "LSH Ensemble: Internet-Scale
// Domain Search", VLDB 2016): given a query set q and a threshold t,
// find indexed sets y with containment C(q, y) = |q ∩ y| / |q| >= t.
//
// Containment is not directly LSHable, but for sets whose cardinality
// is bounded above by u it translates into an equivalent Jaccard
// threshold
//
//	ξ(|q|, u, t) = t·|q| / (|q| + u − t·|q|)
//
// (any y with |y| <= u and C(q, y) >= t has J(q, y) >= ξ). So the index
// partitions sets into geometric cardinality bands — band j holds sets
// with |y| in [2^j, 2^(j+1))— and banding-based MinHash LSH answers a
// Jaccard query per band, with (b, r) tuned *per query and per band*
// from the band's upper bound: the signature is cut into b bands of r
// rows each, and a set collides when any band of r minhash values
// matches exactly. At query time the largest r whose collision
// probability 1 − (1 − ξ^r)^b still reaches TargetProb is selected, so
// bands close to the threshold are probed precisely while permissive
// bands stay cheap.
//
// Candidates are approximate (recall ~ TargetProb, possible false
// positives from banding); callers verify each candidate exactly with
// intset.ContainmentAtLeast, which makes final results exact-precision
// and deterministic regardless of how a collection is sharded — every
// shard builds with the same seed and the same global band boundaries,
// so the union of per-shard candidate sets always covers the same true
// matches.
//
// A KMV sketch per cardinality band summarizes the band's distinct
// token universe (the LSH Ensemble cardinality-estimation device),
// exposed through Stats for capacity planning and the accuracy harness.
package contain

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/minhash"
	"repro/internal/sketch"
)

// Defaults for Options fields left zero.
const (
	DefaultT          = 64
	DefaultTargetProb = 0.9
	DefaultKMVSize    = 128
)

// maxBands bounds the geometric cardinality partition: band j covers
// set sizes [2^j, 2^(j+1)), so 32 bands cover every possible set.
const maxBands = 32

// Options configures a containment index.
type Options struct {
	// T is the MinHash signature length (default DefaultT). Larger T
	// raises recall resolution at proportional signing cost.
	T int
	// Seed derives every hash function. Two indexes built with equal
	// seeds produce identical candidates for identical inputs; shards
	// of one logical index must share a seed so candidate generation
	// is independent of the partitioning.
	Seed uint64
	// TargetProb is the per-band collision probability the query-time
	// (b, r) tuning aims for at the equivalent Jaccard threshold
	// (default DefaultTargetProb). It lower-bounds the recall of
	// candidate generation for true matches.
	TargetProb float64
	// KMVSize is the size of the per-band KMV cardinality sketch
	// (default DefaultKMVSize).
	KMVSize int
}

func (o Options) withDefaults() Options {
	if o.T <= 0 {
		o.T = DefaultT
	}
	if o.TargetProb <= 0 || o.TargetProb >= 1 {
		o.TargetProb = DefaultTargetProb
	}
	if o.KMVSize < 2 {
		o.KMVSize = DefaultKMVSize
	}
	return o
}

// band is one cardinality partition: the sets whose size falls in
// [lo, hi], with one bucket map per probe-able row count r.
type band struct {
	lo, hi  int
	members []int32
	// buckets[ri] maps a hashed (band index, r signature rows) key to
	// the members that produced it, in insertion order; ri indexes the
	// index-wide rs slice.
	buckets []map[uint64][]int32
	kmv     *sketch.KMV
}

// Index is an immutable containment index over a collection of sets.
// Build it once; concurrent Query calls are safe.
type Index struct {
	opt    Options
	signer *minhash.Signer
	n      int
	sigs   []uint32 // n*T flattened signatures; empty sets hold zeros
	lens   []int    // set sizes (band assignment + persistence checks)
	rs     []int    // probe-able row counts: 1, 2, 4, ... <= T
	bands  [maxBands]*band
}

// Build indexes the collection. Empty sets are tolerated and simply
// never returned as candidates. The input slices are not retained.
func Build(sets [][]uint32, opts Options) *Index {
	opts = opts.withDefaults()
	signer := minhash.NewSigner(opts.T, opts.Seed)
	sigs := make([]uint32, len(sets)*opts.T)
	for i, set := range sets {
		if len(set) == 0 {
			continue
		}
		signer.SignInto(set, sigs[i*opts.T:(i+1)*opts.T])
	}
	ix, err := FromSignatures(sets, sigs, opts)
	if err != nil {
		// Impossible: the signatures were just produced at the right length.
		panic(err)
	}
	return ix
}

// FromSignatures builds the index from precomputed flattened signatures
// (the persistence path: signing is the expensive part of Build, so
// snapshots store signatures and rebuild the cheap bucket structure on
// load). sets supplies cardinalities and KMV tokens and must be the
// same collection the signatures were computed from, in the same order
// and with the same T and Seed.
func FromSignatures(sets [][]uint32, sigs []uint32, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if len(sigs) != len(sets)*opts.T {
		return nil, fmt.Errorf("contain: %d signature words for %d sets with T=%d (want %d)",
			len(sigs), len(sets), opts.T, len(sets)*opts.T)
	}
	ix := &Index{
		opt:    opts,
		signer: minhash.NewSigner(opts.T, opts.Seed),
		n:      len(sets),
		sigs:   sigs,
		lens:   make([]int, len(sets)),
	}
	for r := 1; r <= opts.T; r <<= 1 {
		ix.rs = append(ix.rs, r)
	}
	for i, set := range sets {
		ix.lens[i] = len(set)
		if len(set) == 0 {
			continue
		}
		ix.insert(int32(i), set)
	}
	return ix, nil
}

// bandFor returns the cardinality band index of a set of size n >= 1:
// the j with n in [2^j, 2^(j+1)).
func bandFor(n int) int {
	return bits.Len(uint(n)) - 1
}

func (ix *Index) insert(lid int32, set []uint32) {
	j := bandFor(len(set))
	b := ix.bands[j]
	if b == nil {
		b = &band{
			lo:      1 << j,
			hi:      1<<(j+1) - 1,
			buckets: make([]map[uint64][]int32, len(ix.rs)),
			kmv:     sketch.NewKMV(ix.opt.KMVSize, ix.opt.Seed),
		}
		for ri := range b.buckets {
			b.buckets[ri] = make(map[uint64][]int32)
		}
		ix.bands[j] = b
	}
	b.members = append(b.members, lid)
	b.kmv.AddSet(set)
	sig := ix.sigs[int(lid)*ix.opt.T : (int(lid)+1)*ix.opt.T]
	for ri, r := range ix.rs {
		nb := ix.opt.T / r
		for bi := 0; bi < nb; bi++ {
			key := bucketHash(bi, sig[bi*r:(bi+1)*r])
			b.buckets[ri][key] = append(b.buckets[ri][key], lid)
		}
	}
}

// bucketHash hashes one LSH band (r consecutive signature words plus
// the band position) to a bucket key, FNV-1a style. Cross-band key
// collisions only ever add candidates, which exact verification
// removes, so a single map per r suffices.
func bucketHash(bandIdx int, words []uint32) uint64 {
	h := uint64(14695981039346656037)
	h ^= uint64(bandIdx)
	h *= 1099511628211
	for _, w := range words {
		h ^= uint64(w)
		h *= 1099511628211
	}
	return h
}

// EquivalentJaccard returns ξ(qlen, upper, t): the Jaccard threshold
// equivalent to containment threshold t for a query of qlen tokens
// against sets of cardinality at most upper. Using a band's upper
// bound makes ξ a lower bound over the band, which is the recall-safe
// direction.
func EquivalentJaccard(qlen, upper int, t float64) float64 {
	return t * float64(qlen) / (float64(qlen+upper) - t*float64(qlen))
}

// CollisionProb returns the probability 1 − (1 − s^r)^b that banding
// with b bands of r rows emits a pair with Jaccard similarity s.
func CollisionProb(s float64, r, b int) float64 {
	return 1 - math.Pow(1-math.Pow(s, float64(r)), float64(b))
}

// Query returns the local ids of candidate sets whose containment of q
// may reach t, sorted ascending and duplicate-free. Callers must verify
// each candidate exactly (intset.ContainmentAtLeast); recall of true
// matches is approximately TargetProb per matching set. It panics if t
// is outside (0, 1]. An empty query has no candidates.
func (ix *Index) Query(q []uint32, t float64) []int32 {
	if t <= 0 || t > 1 {
		panic(fmt.Sprintf("contain: threshold %v out of (0,1]", t))
	}
	if len(q) == 0 || ix.n == 0 {
		return nil
	}
	sig := ix.signer.Sign(q)
	var out []int32
	var seen map[int32]bool
	lq := len(q)
	for _, b := range ix.bands {
		if b == nil {
			continue
		}
		// No member of this band can pass exact verification: the best
		// possible intersection is min(|q|, hi) tokens.
		if float64(min(lq, b.hi))/float64(lq) < t {
			continue
		}
		xi := EquivalentJaccard(lq, b.hi, t)
		ri := ix.chooseR(xi)
		r := ix.rs[ri]
		nb := ix.opt.T / r
		for bi := 0; bi < nb; bi++ {
			key := bucketHash(bi, sig[bi*r:(bi+1)*r])
			for _, lid := range b.buckets[ri][key] {
				if seen == nil {
					seen = make(map[int32]bool, 16)
				}
				if !seen[lid] {
					seen[lid] = true
					out = append(out, lid)
				}
			}
		}
	}
	sortInt32(out)
	return out
}

// chooseR picks the largest probe-able row count whose collision
// probability at the equivalent Jaccard threshold xi still reaches
// TargetProb, falling back to r=1 (probe everything that shares a
// single minhash) when even that is too selective.
func (ix *Index) chooseR(xi float64) int {
	best := 0
	for ri, r := range ix.rs {
		if CollisionProb(xi, r, ix.opt.T/r) >= ix.opt.TargetProb {
			best = ri
		}
	}
	return best
}

// Len returns the number of indexed sets (including empty ones).
func (ix *Index) Len() int { return ix.n }

// T returns the signature length.
func (ix *Index) T() int { return ix.opt.T }

// Seed returns the seed the index hashes with.
func (ix *Index) Seed() uint64 { return ix.opt.Seed }

// Signatures returns the flattened n*T signature matrix backing the
// index. The slice is shared, not copied; callers must not mutate it.
func (ix *Index) Signatures() []uint32 { return ix.sigs }

// BandStats describes one cardinality partition.
type BandStats struct {
	Lo, Hi int
	// Sets is the number of member sets.
	Sets int
	// DistinctTokens is the KMV estimate of the band's token universe.
	DistinctTokens float64
}

// Stats summarizes the partition structure.
type Stats struct {
	Sets  int
	T     int
	Bands []BandStats
}

// Stats returns the partition summary, band order ascending by
// cardinality range.
func (ix *Index) Stats() Stats {
	st := Stats{Sets: ix.n, T: ix.opt.T}
	for _, b := range ix.bands {
		if b == nil {
			continue
		}
		st.Bands = append(st.Bands, BandStats{
			Lo:             b.lo,
			Hi:             b.hi,
			Sets:           len(b.members),
			DistinctTokens: b.kmv.Estimate(),
		})
	}
	return st
}

func sortInt32(s []int32) {
	// Insertion sort: candidate lists are short and nearly sorted
	// (bands emit in ascending member order).
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
