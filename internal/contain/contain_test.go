package contain

import (
	"math/rand"
	"testing"

	"repro/internal/intset"
)

func randomSet(rng *rand.Rand, minLen, maxLen, universe int) []uint32 {
	n := minLen + rng.Intn(maxLen-minLen+1)
	s := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, uint32(rng.Intn(universe)))
	}
	return intset.Normalize(s)
}

// subsetOf returns a random subset of set covering roughly frac of it.
func subsetOf(rng *rand.Rand, set []uint32, frac float64) []uint32 {
	out := make([]uint32, 0, len(set))
	for _, tok := range set {
		if rng.Float64() < frac {
			out = append(out, tok)
		}
	}
	return out
}

func buildCorpus(rng *rand.Rand, n int) [][]uint32 {
	sets := make([][]uint32, 0, n)
	for i := 0; i < n; i++ {
		// Spread across cardinality bands: sizes 2..200.
		sets = append(sets, randomSet(rng, 2, 200, 4000))
	}
	return sets
}

func TestBandFor(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1023: 9, 1024: 10}
	for n, want := range cases {
		if got := bandFor(n); got != want {
			t.Errorf("bandFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestEquivalentJaccard(t *testing.T) {
	// t=1, u=|q|: only exact duplicates qualify, ξ = 1.
	if xi := EquivalentJaccard(10, 10, 1); xi != 1 {
		t.Fatalf("ξ(10,10,1) = %v, want 1", xi)
	}
	// Larger upper bounds relax the equivalent Jaccard threshold.
	hi, lo := EquivalentJaccard(10, 10, 0.5), EquivalentJaccard(10, 1000, 0.5)
	if lo >= hi {
		t.Fatalf("ξ must decrease with the upper bound: ξ(u=10)=%v ξ(u=1000)=%v", hi, lo)
	}
	// Soundness on random instances: any y with |y| <= u and
	// C(q,y) >= t has J(q,y) >= ξ.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		q := randomSet(rng, 2, 40, 200)
		y := randomSet(rng, 1, 60, 200)
		if len(q) == 0 || len(y) == 0 {
			continue
		}
		th := 0.1 + 0.9*rng.Float64()
		c := intset.Containment(q, y)
		if c < th {
			continue
		}
		xi := EquivalentJaccard(len(q), len(y), th)
		if j := intset.Jaccard(q, y); j < xi-1e-12 {
			t.Fatalf("C=%v >= t=%v but J=%v < ξ=%v (|q|=%d |y|=%d)", c, th, j, xi, len(q), len(y))
		}
	}
}

// TestQueryRecall checks candidate generation against brute-force
// ground truth: precision is not promised (callers verify), but recall
// of true matches must land near TargetProb.
func TestQueryRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sets := buildCorpus(rng, 1500)
	ix := Build(sets, Options{Seed: 99})
	truth, hit := 0, 0
	for i := 0; i < 300; i++ {
		// Queries are subsets of indexed sets — the domain-discovery
		// workload — so true matches exist.
		base := sets[rng.Intn(len(sets))]
		q := subsetOf(rng, base, 0.8)
		if len(q) == 0 {
			continue
		}
		th := 0.5 + 0.4*rng.Float64()
		cands := make(map[int32]bool)
		for _, lid := range ix.Query(q, th) {
			cands[lid] = true
		}
		for j, y := range sets {
			if _, ok := intset.ContainmentAtLeast(q, y, th); ok {
				truth++
				if cands[int32(j)] {
					hit++
				}
			}
		}
	}
	if truth == 0 {
		t.Fatal("ground truth is empty; workload generator broken")
	}
	recall := float64(hit) / float64(truth)
	if recall < 0.85 {
		t.Fatalf("candidate recall %.3f below 0.85 (%d/%d)", recall, hit, truth)
	}
	t.Logf("candidate recall %.3f (%d/%d true matches)", recall, hit, truth)
}

// TestQueryDeterministicAcrossPartitions pins the sharding contract:
// because seeds and cardinality-band boundaries are global, whether a
// given set is a candidate for a given query is independent of which
// partition of the collection it is indexed in.
func TestQueryDeterministicAcrossPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sets := buildCorpus(rng, 600)
	opts := Options{Seed: 123}
	whole := Build(sets, opts)
	// Partition round-robin into 3 sub-indexes.
	var parts [3][][]uint32
	var gids [3][]int
	for i, s := range sets {
		parts[i%3] = append(parts[i%3], s)
		gids[i%3] = append(gids[i%3], i)
	}
	var subs [3]*Index
	for p := range parts {
		subs[p] = Build(parts[p], opts)
	}
	for i := 0; i < 100; i++ {
		q := subsetOf(rng, sets[rng.Intn(len(sets))], 0.7)
		if len(q) == 0 {
			continue
		}
		th := 0.4 + 0.5*rng.Float64()
		want := make(map[int]bool)
		for _, lid := range whole.Query(q, th) {
			want[int(lid)] = true
		}
		got := make(map[int]bool)
		for p := range subs {
			for _, lid := range subs[p].Query(q, th) {
				got[gids[p][lid]] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("candidate sets differ across partitioning: %d vs %d", len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("candidate %d missing from partitioned indexes", id)
			}
		}
	}
}

func TestQueryInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sets := buildCorpus(rng, 400)
	sets = append(sets, nil) // empty set rides along, never a candidate
	ix := Build(sets, Options{Seed: 17})
	for i := 0; i < 200; i++ {
		q := randomSet(rng, 1, 50, 4000)
		th := 0.2 + 0.8*rng.Float64()
		cands := ix.Query(q, th)
		for j := 1; j < len(cands); j++ {
			if cands[j] <= cands[j-1] {
				t.Fatalf("candidates not sorted/deduped: %v", cands)
			}
		}
		for _, lid := range cands {
			if int(lid) == len(sets)-1 {
				t.Fatal("empty set emitted as a candidate")
			}
		}
	}
	if got := ix.Query(nil, 0.5); got != nil {
		t.Fatalf("empty query returned candidates: %v", got)
	}
}

func TestFromSignaturesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sets := buildCorpus(rng, 300)
	opts := Options{Seed: 55, T: 32}
	a := Build(sets, opts)
	b, err := FromSignatures(sets, a.Signatures(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		q := subsetOf(rng, sets[rng.Intn(len(sets))], 0.7)
		if len(q) == 0 {
			continue
		}
		ca, cb := a.Query(q, 0.6), b.Query(q, 0.6)
		if len(ca) != len(cb) {
			t.Fatalf("rebuilt index differs: %v vs %v", ca, cb)
		}
		for j := range ca {
			if ca[j] != cb[j] {
				t.Fatalf("rebuilt index differs at %d: %v vs %v", j, ca, cb)
			}
		}
	}
	if _, err := FromSignatures(sets, a.Signatures()[:1], opts); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestStats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sets := buildCorpus(rng, 500)
	ix := Build(sets, Options{Seed: 1})
	st := ix.Stats()
	if st.Sets != 500 || st.T != DefaultT {
		t.Fatalf("Stats header wrong: %+v", st)
	}
	total := 0
	for _, b := range st.Bands {
		if b.Lo > b.Hi || b.Sets <= 0 {
			t.Fatalf("degenerate band: %+v", b)
		}
		if b.DistinctTokens <= 0 {
			t.Fatalf("band KMV estimate missing: %+v", b)
		}
		total += b.Sets
	}
	if total != 500 {
		t.Fatalf("bands hold %d sets, want 500", total)
	}
}

func TestQueryPanicsOnBadThreshold(t *testing.T) {
	ix := Build([][]uint32{{1, 2}}, Options{})
	for _, bad := range []float64{0, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("threshold %v must panic", bad)
				}
			}()
			ix.Query([]uint32{1}, bad)
		}()
	}
}
