package core

import (
	"math"
	"testing"

	"repro/internal/datagen"
)

// TestDepthBoundLemma4: the explored depth of the Chosen Path recursion
// should grow like O(log n / ε), not linearly in n.
func TestDepthBoundLemma4(t *testing.T) {
	depths := map[int]int{}
	for _, n := range []int{500, 2000, 8000} {
		ds := datagen.Uniform(n, 20, 10*n, uint64(n))
		var m Metrics
		Join(ds.Sets, 0.5, &Options{Seed: 1, Repetitions: 3, Metrics: &m})
		depths[n] = m.MaxDepth
		// Generous absolute sanity bound: 6*ln(n)/eps with eps=0.1.
		bound := int(6*math.Log(float64(n))/0.1) + 10
		if m.MaxDepth > bound {
			t.Errorf("n=%d: max depth %d exceeds O(log n/ε) bound %d", n, m.MaxDepth, bound)
		}
	}
	// Depth at 16x the points should grow by far less than 16x.
	if depths[8000] > 8*depths[500]+8 {
		t.Errorf("depth scaling looks superlogarithmic: %v", depths)
	}
}

// TestWorkingSpaceRemark9: peak live node mass on the recursion stack
// should stay within a small multiple of n (the paper conjectures O(n)
// expected working space; Lemma 8 proves O(n log n / ε) w.h.p.).
func TestWorkingSpaceRemark9(t *testing.T) {
	for _, n := range []int{1000, 4000} {
		ds := datagen.Uniform(n, 20, 10*n, uint64(n)+77)
		var m Metrics
		// Ten repetitions: the accounting must not drift across runs.
		Join(ds.Sets, 0.5, &Options{Seed: 2, Repetitions: 10, Metrics: &m})
		if m.PeakLiveMass > int64(4*n) {
			t.Errorf("n=%d: peak live mass %d exceeds 4n", n, m.PeakLiveMass)
		}
		if m.PeakLiveMass < int64(n) {
			t.Errorf("n=%d: peak live mass %d below n — accounting broken", n, m.PeakLiveMass)
		}
	}
}

func TestMetricsPopulated(t *testing.T) {
	sets := testWorkload(400, 50)
	var m Metrics
	Join(sets, 0.5, &Options{Seed: 3, Metrics: &m})
	if m.Nodes == 0 || m.NodeMass == 0 {
		t.Errorf("metrics not populated: %+v", m)
	}
	if m.BruteForcedNodes == 0 {
		t.Errorf("no brute-forced nodes recorded: %+v", m)
	}
	if m.NodeMass < m.PeakLiveMass {
		t.Errorf("node mass %d < peak live mass %d", m.NodeMass, m.PeakLiveMass)
	}
}

// TestAdaptiveRemovesDensePoints: on a dataset with a dense similar
// cluster, the adaptive rule must fire (BruteForcedPoints > 0), removing
// cluster members instead of recursing on them forever.
func TestAdaptiveRemovesDensePoints(t *testing.T) {
	ds := datagen.Uniform(400, 20, 4000, 51)
	// A cluster of 300 near-identical sets, well above limit=250.
	clusterBase := ds.Sets[0]
	for i := 0; i < 300; i++ {
		ds.Sets = append(ds.Sets, clusterBase)
	}
	var m Metrics
	Join(ds.Sets, 0.5, &Options{Seed: 4, Repetitions: 2, Metrics: &m})
	if m.BruteForcedPoints == 0 {
		t.Errorf("adaptive rule never fired on a dense cluster: %+v", m)
	}
}
