package core

import (
	"repro/internal/prep"
	"repro/internal/verify"
)

// JoinParallel runs CPSJoin with the given number of workers.
//
// Deprecated: set Options.Workers and call JoinIndexed instead. This
// wrapper predates the unified parallel execution layer (internal/exec),
// which parallelizes within repetitions — not just across them — and
// shares one atomic result view between workers, so StopAtRecall now
// stops globally. It is kept so older callers continue to compile; the
// result-set contract is unchanged (identical pairs for identical seed
// and options, any worker count).
//
// workers <= 0 selects GOMAXPROCS.
func JoinParallel(ix *prep.Index, lambda float64, o *Options, workers int) ([]verify.Pair, verify.Counters) {
	opt := Options{}
	if o != nil {
		opt = *o
	}
	if workers <= 0 {
		workers = -1 // EffectiveWorkers maps negative to GOMAXPROCS
	}
	opt.Workers = workers
	return JoinIndexed(ix, lambda, &opt)
}
