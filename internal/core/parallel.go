package core

import (
	"runtime"
	"sync"

	"repro/internal/prep"
	"repro/internal/verify"
)

// JoinParallel runs the CPSJoin repetitions concurrently across workers
// and merges their results. Section VII of the paper observes that
// "recursive methods such as ours lend themselves well to parallel and
// distributed implementations since most of the computation happens in
// independent, recursive calls"; independent repetitions are the
// coarsest such grain and parallelize with no coordination beyond the
// final merge.
//
// The output distribution is identical to the sequential JoinIndexed with
// the same options: repetition seeds depend only on the repetition index,
// not on the worker that runs it. StopAtRecall, which requires a global
// view of the accumulated result, is applied per worker only and is
// therefore weaker than in the sequential run; leave it unset for
// parallel joins.
//
// workers <= 0 selects GOMAXPROCS.
func JoinParallel(ix *prep.Index, lambda float64, o *Options, workers int) ([]verify.Pair, verify.Counters) {
	opt := o.withDefaults()
	if len(ix.Sets) < 2 {
		return nil, verify.Counters{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opt.Repetitions {
		workers = opt.Repetitions
	}
	if workers <= 1 {
		return JoinIndexed(ix, lambda, &opt)
	}

	// Partition repetition indices round-robin.
	parts := make([][]int, workers)
	for rep := 0; rep < opt.Repetitions; rep++ {
		parts[rep%workers] = append(parts[rep%workers], rep)
	}

	joiners := make([]*joiner, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		optCopy := opt
		jw := newJoiner(ix.Sets, nil, lambda, &optCopy, ix)
		joiners[w] = jw
		wg.Add(1)
		go func(jw *joiner, reps []int) {
			defer wg.Done()
			jw.runReps(reps)
		}(jw, parts[w])
	}
	wg.Wait()

	// Merge: pairs dedup across workers; pre-candidate and candidate
	// counts are additive (duplicates across repetitions are inherent to
	// the method and counted, as in the paper's Table IV).
	merged := verify.NewResultSet()
	var counters verify.Counters
	for _, jw := range joiners {
		counters.PreCandidates += jw.counters.PreCandidates
		counters.Candidates += jw.counters.Candidates
		for _, p := range jw.res.Pairs() {
			merged.Add(p.A, p.B)
		}
	}
	counters.Results = int64(merged.Len())
	return merged.Pairs(), counters
}
