package core

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/intset"
	"repro/internal/stats"
	"repro/internal/verify"
)

// testWorkload builds a dataset with planted similar pairs across the
// threshold range plus uniform background noise.
func testWorkload(n int, seed uint64) [][]uint32 {
	ds := datagen.Uniform(n, 20, 5000, seed)
	datagen.PlantPairs(ds, n/20, 0.55, seed+1)
	datagen.PlantPairs(ds, n/20, 0.75, seed+2)
	datagen.PlantPairs(ds, n/20, 0.95, seed+3)
	return ds.Sets
}

// denseWorkload is TOKENS-like: small universe, every token frequent.
func denseWorkload(seed uint64) [][]uint32 {
	cfg := datagen.DefaultTokensConfig(150, seed)
	cfg.PairsPerJ = 10
	ds, _ := datagen.Tokens(cfg)
	return ds.Sets
}

func TestPrecisionIsPerfect(t *testing.T) {
	sets := testWorkload(600, 1)
	got, _ := Join(sets, 0.5, &Options{Seed: 7})
	for _, p := range got {
		if j := intset.Jaccard(sets[p.A], sets[p.B]); j < 0.5 {
			t.Fatalf("false positive (%d,%d) with J=%v", p.A, p.B, j)
		}
	}
}

func TestRecallAcrossThresholds(t *testing.T) {
	sets := testWorkload(600, 2)
	for _, lambda := range []float64{0.5, 0.7, 0.9} {
		truth := verify.BruteForceJoin(sets, lambda)
		if len(truth) == 0 {
			t.Fatalf("no ground truth at λ=%v", lambda)
		}
		got, _ := Join(sets, lambda, &Options{Seed: 13})
		if r := stats.Recall(got, truth); r < 0.9 {
			t.Errorf("λ=%v: recall %v < 0.9 (%d/%d)", lambda, r, len(got), len(truth))
		}
	}
}

func TestRecallOnDenseData(t *testing.T) {
	// The TOKENS regime: no rare tokens at all. CPSJoin's home turf.
	sets := denseWorkload(3)
	truth := verify.BruteForceJoin(sets, 0.5)
	if len(truth) == 0 {
		t.Fatal("dense workload has no results")
	}
	got, _ := Join(sets, 0.5, &Options{Seed: 17})
	if r := stats.Recall(got, truth); r < 0.9 {
		t.Errorf("dense recall %v < 0.9 (%d/%d)", r, len(got), len(truth))
	}
	for _, p := range got {
		if intset.Jaccard(sets[p.A], sets[p.B]) < 0.5 {
			t.Fatal("false positive on dense data")
		}
	}
}

func TestNoDuplicatePairs(t *testing.T) {
	sets := testWorkload(400, 4)
	got, _ := Join(sets, 0.5, &Options{Seed: 5})
	seen := make(map[uint64]bool)
	for _, p := range got {
		if p.A >= p.B {
			t.Fatalf("unnormalized pair %v", p)
		}
		if seen[p.Key()] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p.Key()] = true
	}
}

func TestMoreRepetitionsMoreRecall(t *testing.T) {
	sets := testWorkload(800, 6)
	truth := verify.BruteForceJoin(sets, 0.6)
	if len(truth) < 10 {
		t.Skip("too few ground-truth pairs")
	}
	r1, _ := Join(sets, 0.6, &Options{Seed: 1, Repetitions: 1})
	r10, _ := Join(sets, 0.6, &Options{Seed: 1, Repetitions: 10})
	rec1, rec10 := stats.Recall(r1, truth), stats.Recall(r10, truth)
	if rec10 < rec1 {
		t.Errorf("recall decreased with repetitions: %v -> %v", rec1, rec10)
	}
	if rec10 < 0.9 {
		t.Errorf("10-repetition recall %v < 0.9", rec10)
	}
}

func TestStrictBruteForceAgrees(t *testing.T) {
	// The literal Algorithm 2 and the sampled heuristic must both deliver
	// the recall contract; results are random but both subsets of truth.
	sets := testWorkload(300, 7)
	truth := verify.BruteForceJoin(sets, 0.6)
	fast, _ := Join(sets, 0.6, &Options{Seed: 3})
	strict, _ := Join(sets, 0.6, &Options{Seed: 3, StrictBruteForce: true})
	if r := stats.Recall(strict, truth); r < 0.9 {
		t.Errorf("strict recall %v", r)
	}
	if r := stats.Recall(fast, truth); r < 0.9 {
		t.Errorf("fast recall %v", r)
	}
	for _, p := range strict {
		if intset.Jaccard(sets[p.A], sets[p.B]) < 0.6 {
			t.Fatal("strict produced a false positive")
		}
	}
}

func TestStoppingStrategies(t *testing.T) {
	sets := testWorkload(500, 8)
	truth := verify.BruteForceJoin(sets, 0.6)
	for name, opt := range map[string]*Options{
		"global":     {Seed: 4, Stopping: StopGlobal},
		"globalK3":   {Seed: 4, Stopping: StopGlobal, GlobalDepth: 3},
		"individual": {Seed: 4, Stopping: StopIndividual},
	} {
		got, _ := Join(sets, 0.6, opt)
		for _, p := range got {
			if intset.Jaccard(sets[p.A], sets[p.B]) < 0.6 {
				t.Fatalf("%s: false positive", name)
			}
		}
		if r := stats.Recall(got, truth); r < 0.8 {
			t.Errorf("%s: recall %v < 0.8", name, r)
		}
	}
}

func TestSketchDisabled(t *testing.T) {
	sets := testWorkload(300, 9)
	truth := verify.BruteForceJoin(sets, 0.5)
	got, _ := Join(sets, 0.5, &Options{Seed: 5, SketchWords: -1})
	if r := stats.Recall(got, truth); r < 0.9 {
		t.Errorf("recall without sketch filter %v", r)
	}
}

func TestEpsilonZeroExpressible(t *testing.T) {
	sets := testWorkload(300, 10)
	got, _ := Join(sets, 0.5, &Options{Seed: 6, Epsilon: 0, EpsilonSet: true})
	truth := verify.BruteForceJoin(sets, 0.5)
	if r := stats.Recall(got, truth); r < 0.9 {
		t.Errorf("ε=0 recall %v", r)
	}
}

func TestSmallLimit(t *testing.T) {
	sets := testWorkload(400, 11)
	truth := verify.BruteForceJoin(sets, 0.5)
	got, _ := Join(sets, 0.5, &Options{Seed: 7, Limit: 10})
	if r := stats.Recall(got, truth); r < 0.85 {
		t.Errorf("limit=10 recall %v", r)
	}
}

func TestTinyInputs(t *testing.T) {
	if got, _ := Join(nil, 0.5, nil); got != nil {
		t.Error("Join(nil) returned pairs")
	}
	if got, _ := Join([][]uint32{{1, 2}}, 0.5, nil); got != nil {
		t.Error("Join(single) returned pairs")
	}
	got, _ := Join([][]uint32{{1, 2, 3}, {1, 2, 3}}, 0.5, &Options{Seed: 1})
	if len(got) != 1 {
		t.Errorf("two identical sets: %v", got)
	}
}

func TestInvalidLambdaPanics(t *testing.T) {
	for _, bad := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("lambda=%v did not panic", bad)
				}
			}()
			Join([][]uint32{{1, 2}, {3, 4}}, bad, nil)
		}()
	}
}

func TestJoinRS(t *testing.T) {
	r := [][]uint32{{1, 2, 3, 4}, {10, 11, 12, 13}, {20, 21}}
	s := [][]uint32{{1, 2, 3, 5}, {30, 31, 32}, {10, 11, 12, 13}}
	// True cross pairs at λ=0.5: (r0, s0) J=3/5=0.6, (r1, s2) J=1.
	got, _ := JoinRS(r, s, 0.5, &Options{Seed: 8, Repetitions: 20})
	want := map[verify.Pair]bool{
		{A: 0, B: 0}: true,
		{A: 1, B: 2}: true,
	}
	if len(got) > len(want) {
		t.Fatalf("too many pairs: %v", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("unexpected pair %v", p)
		}
	}
	if len(got) < 2 {
		t.Errorf("missed cross pairs: got %v", got)
	}
}

func TestJoinRSNoWithinSidePairs(t *testing.T) {
	// Two identical sets on the same side must not be reported.
	r := [][]uint32{{1, 2, 3}, {1, 2, 3}}
	s := [][]uint32{{7, 8, 9}, {7, 8, 9}}
	got, _ := JoinRS(r, s, 0.5, &Options{Seed: 9, Repetitions: 20})
	if len(got) != 0 {
		t.Fatalf("reported within-side pairs: %v", got)
	}
}

func TestCountersSane(t *testing.T) {
	sets := testWorkload(400, 12)
	got, c := Join(sets, 0.5, &Options{Seed: 10})
	if c.Results != int64(len(got)) {
		t.Errorf("Results %d != %d", c.Results, len(got))
	}
	if c.Candidates > c.PreCandidates {
		t.Errorf("candidates %d > pre-candidates %d", c.Candidates, c.PreCandidates)
	}
	if c.PreCandidates == 0 {
		t.Error("no pre-candidates counted")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	sets := testWorkload(300, 13)
	a, _ := Join(sets, 0.6, &Options{Seed: 42})
	b, _ := Join(sets, 0.6, &Options{Seed: 42})
	if !stats.EqualPairSets(a, b) {
		t.Error("same seed produced different results")
	}
}

func TestManyDuplicateSets(t *testing.T) {
	// Stress the recursion's duplicate handling: many identical sets form
	// nodes that can never be separated by splitting; the adaptive rule
	// must brute force them rather than recurse forever.
	sets := make([][]uint32, 0, 300)
	for i := 0; i < 300; i++ {
		sets = append(sets, []uint32{1, 2, 3, 4, 5})
	}
	got, _ := Join(sets, 0.9, &Options{Seed: 14, Repetitions: 2, Limit: 50})
	want := 300 * 299 / 2
	if len(got) != want {
		t.Fatalf("duplicate-set join found %d pairs, want %d", len(got), want)
	}
}
