package core

import (
	"fmt"
	"math"

	"repro/internal/tabhash"
	"repro/internal/verify"
)

// This file implements the *reference* CPSJoin: Algorithms 1 and 2 of the
// paper executed literally on the raw token sets under general
// Braun-Blanquet similarity BB(x, y) = |x∩y| / max(|x|, |y|), without the
// fixed-size embedding or the sampling/sketching heuristics of Section V.
//
// The paper's implementation assumes all sets have a fixed size t (the
// embedded form) and notes "it is easy to extend to general Braun-Blanquet
// similarity" — this is that extension. Each set x chooses token j with
// probability 1/(λ|x|), so a pair (x, y) with BB(x, y) >= λ lands in a
// common subproblem with expected multiplicity
// |x∩y|/(λ·max(|x|,|y|)) >= 1 per level, preserving the branching-process
// guarantee of Section IV. It doubles as a cross-check for the optimized
// implementation: slower by the Θ(|x|) splitting overhead the heuristics
// remove, but identical in output distribution guarantees.

// BBOptions configures the reference Braun-Blanquet join.
type BBOptions struct {
	// Limit is the brute-force size threshold (default 250).
	Limit int
	// Epsilon is the brute-force aggressiveness (default 0.1); set
	// EpsilonSet to use 0.
	Epsilon    float64
	EpsilonSet bool
	// Repetitions is the number of independent runs (default 10).
	Repetitions int
	// Seed makes runs reproducible.
	Seed uint64
	// MaxDepth caps recursion (0 = derive from n and ε).
	MaxDepth int
}

func (o *BBOptions) withDefaults() BBOptions {
	opt := BBOptions{}
	if o != nil {
		opt = *o
	}
	if opt.Limit <= 0 {
		opt.Limit = 250
	}
	if !opt.EpsilonSet {
		opt.Epsilon = 0.1
	}
	if opt.Repetitions <= 0 {
		opt.Repetitions = 10
	}
	return opt
}

// JoinBB computes an approximate self-join under Braun-Blanquet similarity:
// pairs with |x∩y|/max(|x|,|y|) >= lambda, each reported with probability
// >= ϕ per the CPSJoin guarantee, at 100% precision.
func JoinBB(sets [][]uint32, lambda float64, o *BBOptions) ([]verify.Pair, verify.Counters) {
	if lambda <= 0 || lambda >= 1 {
		panic(fmt.Sprintf("core: lambda %v out of (0,1)", lambda))
	}
	var counters verify.Counters
	if len(sets) < 2 {
		return nil, counters
	}
	opt := o.withDefaults()
	j := &bbJoiner{
		sets:   sets,
		lambda: lambda,
		opt:    opt,
		res:    verify.NewResultSet(),
	}
	j.maxDepth = opt.MaxDepth
	if j.maxDepth <= 0 {
		eps := opt.Epsilon
		if eps < 0.05 {
			eps = 0.05
		}
		j.maxDepth = int(4*math.Log(float64(len(sets)+1))/eps) + 8
	}
	for rep := 0; rep < opt.Repetitions; rep++ {
		j.rng = tabhash.NewSplitMix64(tabhash.Mix64(opt.Seed + uint64(rep)*0xb1e55))
		root := make([]uint32, len(sets))
		for i := range root {
			root[i] = uint32(i)
		}
		j.recurse(root, 0)
	}
	j.counters.Results = int64(j.res.Len())
	return j.res.Pairs(), j.counters
}

// BruteForceJoinBB is the exact Braun-Blanquet self-join by exhaustive
// verification — the ground truth for JoinBB.
func BruteForceJoinBB(sets [][]uint32, lambda float64) []verify.Pair {
	var out []verify.Pair
	for i := 0; i < len(sets); i++ {
		for k := i + 1; k < len(sets); k++ {
			if bbAtLeast(sets[i], sets[k], lambda) {
				out = append(out, verify.Pair{A: uint32(i), B: uint32(k)})
			}
		}
	}
	return out
}

// bbAtLeast reports whether BB(a, b) >= lambda, via the overlap bound
// |a∩b| >= ceil(lambda * max(|a|, |b|)).
func bbAtLeast(a, b []uint32, lambda float64) bool {
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	required := int(math.Ceil(lambda * float64(m)))
	if required < 1 {
		required = 1
	}
	n := 0
	i, k := 0, 0
	for i < len(a) && k < len(b) {
		if n+min(len(a)-i, len(b)-k) < required {
			return false
		}
		switch {
		case a[i] == b[k]:
			n++
			if n >= required {
				return true
			}
			i++
			k++
		case a[i] < b[k]:
			i++
		default:
			k++
		}
	}
	return n >= required
}

type bbJoiner struct {
	sets     [][]uint32
	lambda   float64
	opt      BBOptions
	res      *verify.ResultSet
	counters verify.Counters
	rng      *tabhash.SplitMix64
	maxDepth int
}

// recurse is Algorithm 1, verbatim: BRUTEFORCE, then split on a fresh
// random hash over the token universe.
func (j *bbJoiner) recurse(node []uint32, depth int) {
	node = j.bruteForce(node)
	if len(node) < 2 {
		return
	}
	if depth >= j.maxDepth {
		j.bruteForcePairs(node)
		return
	}
	// Line 3: r <- SEEDHASHFUNCTION(). A tabulation hash to [0,1) shared
	// by the whole node.
	r := tabhash.NewTable32(j.rng.Next())
	const scale = 1.0 / (1 << 64)
	buckets := make(map[uint32][]uint32)
	for _, id := range node {
		x := j.sets[id]
		threshold := 1 / (j.lambda * float64(len(x)))
		for _, tok := range x {
			// Line 6: if r(j) < 1/(λ|x|) then S_j <- S_j ∪ {x}.
			if float64(r.Hash(tok))*scale < threshold {
				buckets[tok] = append(buckets[tok], id)
			}
		}
	}
	// Line 7: recurse on each non-empty S_j.
	for _, child := range buckets {
		if len(child) >= 2 {
			j.recurse(child, depth+1)
		}
	}
}

// bruteForce is Algorithm 2, verbatim: exact token counts over the node,
// recomputed after each removal.
func (j *bbJoiner) bruteForce(node []uint32) []uint32 {
	for {
		if len(node) <= j.opt.Limit {
			j.bruteForcePairs(node)
			return nil
		}
		// Lines 5-7: count[j] over the node.
		counts := make(map[uint32]int32)
		for _, id := range node {
			for _, tok := range j.sets[id] {
				counts[tok]++
			}
		}
		threshold := (1 - j.opt.Epsilon) * j.lambda
		removed := false
		// Lines 8-11.
		for idx, id := range node {
			x := j.sets[id]
			sum := int64(0)
			for _, tok := range x {
				sum += int64(counts[tok] - 1)
			}
			// Average of |x∩y|/|x| over y in the node, an upper bound on
			// the average Braun-Blanquet similarity.
			avg := float64(sum) / (float64(len(x)) * float64(len(node)-1))
			if avg > threshold {
				j.bruteForcePoint(id, node[:idx])
				j.bruteForcePoint(id, node[idx+1:])
				node = append(append([]uint32{}, node[:idx]...), node[idx+1:]...)
				removed = true
				break
			}
		}
		if !removed {
			return node
		}
	}
}

func (j *bbJoiner) checkPair(a, b uint32) {
	j.counters.PreCandidates++
	if j.res.Contains(a, b) {
		return
	}
	// Size filter under Braun-Blanquet: |small| >= lambda * |large|.
	la, lb := len(j.sets[a]), len(j.sets[b])
	if la > lb {
		la, lb = lb, la
	}
	if float64(la) < j.lambda*float64(lb) {
		return
	}
	j.counters.Candidates++
	if bbAtLeast(j.sets[a], j.sets[b], j.lambda) {
		j.res.Add(a, b)
	}
}

func (j *bbJoiner) bruteForcePairs(node []uint32) {
	for i := 0; i < len(node); i++ {
		for k := i + 1; k < len(node); k++ {
			j.checkPair(node[i], node[k])
		}
	}
}

func (j *bbJoiner) bruteForcePoint(id uint32, others []uint32) {
	for _, other := range others {
		if other != id {
			j.checkPair(id, other)
		}
	}
}
