package core

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/tabhash"
	"repro/internal/verify"
)

// This file implements the *reference* CPSJoin: Algorithms 1 and 2 of the
// paper executed literally on the raw token sets under general
// Braun-Blanquet similarity BB(x, y) = |x∩y| / max(|x|, |y|), without the
// fixed-size embedding or the sampling/sketching heuristics of Section V.
//
// The paper's implementation assumes all sets have a fixed size t (the
// embedded form) and notes "it is easy to extend to general Braun-Blanquet
// similarity" — this is that extension. Each set x chooses token j with
// probability 1/(λ|x|), so a pair (x, y) with BB(x, y) >= λ lands in a
// common subproblem with expected multiplicity
// |x∩y|/(λ·max(|x|,|y|)) >= 1 per level, preserving the branching-process
// guarantee of Section IV. It doubles as a cross-check for the optimized
// implementation: slower by the Θ(|x|) splitting overhead the heuristics
// remove, but identical in output distribution guarantees.
//
// The recursion runs on the same work-stealing scheduler as the optimized
// join (internal/exec) under the same discipline: per-node seeds derived
// from the path, subtrees of large nodes spawned as tasks, results merged
// through a concurrent sink — so the reference implementation, too, is
// deterministic across worker counts.

// BBOptions configures the reference Braun-Blanquet join.
type BBOptions struct {
	// Limit is the brute-force size threshold (default 250).
	Limit int
	// Epsilon is the brute-force aggressiveness (default 0.1); set
	// EpsilonSet to use 0.
	Epsilon    float64
	EpsilonSet bool
	// Repetitions is the number of independent runs (default 10).
	Repetitions int
	// Seed makes runs reproducible.
	Seed uint64
	// Workers is the worker count of the parallel execution layer: 0 runs
	// sequentially, negative selects GOMAXPROCS. Result sets are identical
	// across worker counts for a fixed Seed.
	Workers int
	// MaxDepth caps recursion (0 = derive from n and ε).
	MaxDepth int
}

func (o *BBOptions) withDefaults() BBOptions {
	opt := BBOptions{}
	if o != nil {
		opt = *o
	}
	if opt.Limit <= 0 {
		opt.Limit = 250
	}
	if !opt.EpsilonSet {
		opt.Epsilon = 0.1
	}
	if opt.Repetitions <= 0 {
		opt.Repetitions = 10
	}
	return opt
}

// JoinBB computes an approximate self-join under Braun-Blanquet similarity:
// pairs with |x∩y|/max(|x|,|y|) >= lambda, each reported with probability
// >= ϕ per the CPSJoin guarantee, at 100% precision.
func JoinBB(sets [][]uint32, lambda float64, o *BBOptions) ([]verify.Pair, verify.Counters) {
	if lambda <= 0 || lambda >= 1 {
		panic(fmt.Sprintf("core: lambda %v out of (0,1)", lambda))
	}
	if len(sets) < 2 {
		return nil, verify.Counters{}
	}
	opt := o.withDefaults()
	workers := exec.EffectiveWorkers(opt.Workers)
	j := &bbJoiner{
		sets:    sets,
		lambda:  lambda,
		opt:     opt,
		workers: workers,
		res:     verify.NewSink(workers),
	}
	j.spawnCutoff = 4 * opt.Limit
	if j.spawnCutoff < 1024 {
		j.spawnCutoff = 1024
	}
	j.maxDepth = opt.MaxDepth
	if j.maxDepth <= 0 {
		eps := opt.Epsilon
		if eps < 0.05 {
			eps = 0.05
		}
		j.maxDepth = int(4*math.Log(float64(len(sets)+1))/eps) + 8
	}
	j.run()
	counters := j.atomics.Counters()
	counters.Results = int64(j.res.Len())
	return j.res.Pairs(), counters
}

// BruteForceJoinBB is the exact Braun-Blanquet self-join by exhaustive
// verification — the ground truth for JoinBB.
func BruteForceJoinBB(sets [][]uint32, lambda float64) []verify.Pair {
	var out []verify.Pair
	for i := 0; i < len(sets); i++ {
		for k := i + 1; k < len(sets); k++ {
			if bbAtLeast(sets[i], sets[k], lambda) {
				out = append(out, verify.Pair{A: uint32(i), B: uint32(k)})
			}
		}
	}
	return out
}

// bbAtLeast reports whether BB(a, b) >= lambda, via the overlap bound
// |a∩b| >= ceil(lambda * max(|a|, |b|)).
func bbAtLeast(a, b []uint32, lambda float64) bool {
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	required := int(math.Ceil(lambda * float64(m)))
	if required < 1 {
		required = 1
	}
	n := 0
	i, k := 0, 0
	for i < len(a) && k < len(b) {
		if n+min(len(a)-i, len(b)-k) < required {
			return false
		}
		switch {
		case a[i] == b[k]:
			n++
			if n >= required {
				return true
			}
			i++
			k++
		case a[i] < b[k]:
			i++
		default:
			k++
		}
	}
	return n >= required
}

type bbJoiner struct {
	sets        [][]uint32
	lambda      float64
	opt         BBOptions
	res         verify.PairSink
	atomics     verify.AtomicCounters
	workers     int
	spawnCutoff int
	maxDepth    int
}

func (j *bbJoiner) run() {
	n := len(j.sets)
	root := func() []uint32 {
		ids := make([]uint32, n)
		for i := range ids {
			ids[i] = uint32(i)
		}
		return ids
	}
	if j.workers <= 1 {
		ts := &bbTask{j: j}
		for rep := 0; rep < j.opt.Repetitions; rep++ {
			ts.recurse(nil, root(), 0, bbRepSeed(j.opt.Seed, rep))
		}
		ts.flush()
		return
	}
	roots := make([]exec.Task, j.opt.Repetitions)
	for rep := range roots {
		seed := bbRepSeed(j.opt.Seed, rep)
		roots[rep] = func(c *exec.Ctx) {
			ts := &bbTask{j: j}
			ts.recurse(c, root(), 0, seed)
			ts.flush()
		}
	}
	exec.Run(j.workers, roots...)
}

func bbRepSeed(seed uint64, rep int) uint64 {
	return tabhash.Mix64(seed + uint64(rep)*0xb1e55)
}

// bbChildSeed derives a child node's seed from the parent seed and the
// token whose bucket formed the child — stable under any scheduling.
func bbChildSeed(seed uint64, tok uint32) uint64 {
	return tabhash.DeriveSeed(seed, 0, uint64(tok))
}

// bbTask is the per-task context: locally batched counters.
type bbTask struct {
	j         *bbJoiner
	pre, cand int64
}

func (ts *bbTask) flush() {
	ts.j.atomics.Add(ts.pre, ts.cand)
	ts.pre, ts.cand = 0, 0
}

// recurse is Algorithm 1, verbatim: BRUTEFORCE, then split on a fresh
// random hash over the token universe. The hash is seeded per node from
// the path, so the tree is independent of execution order.
func (ts *bbTask) recurse(c *exec.Ctx, node []uint32, depth int, seed uint64) {
	j := ts.j
	node = ts.bruteForce(node)
	if len(node) < 2 {
		return
	}
	if depth >= j.maxDepth {
		ts.bruteForcePairs(node)
		return
	}
	// Line 3: r <- SEEDHASHFUNCTION(). A tabulation hash to [0,1) shared
	// by the whole node.
	r := tabhash.NewTable32(tabhash.NewSplitMix64(seed).Next())
	const scale = 1.0 / (1 << 64)
	buckets := make(map[uint32][]uint32)
	for _, id := range node {
		x := j.sets[id]
		threshold := 1 / (j.lambda * float64(len(x)))
		for _, tok := range x {
			// Line 6: if r(j) < 1/(λ|x|) then S_j <- S_j ∪ {x}.
			if float64(r.Hash(tok))*scale < threshold {
				buckets[tok] = append(buckets[tok], id)
			}
		}
	}
	// Line 7: recurse on each non-empty S_j.
	spawn := c != nil && len(node) > j.spawnCutoff
	for tok, child := range buckets {
		if len(child) < 2 {
			continue
		}
		cseed := bbChildSeed(seed, tok)
		if spawn {
			child := child
			c.Spawn(func(c *exec.Ctx) {
				sub := &bbTask{j: j}
				sub.recurse(c, child, depth+1, cseed)
				sub.flush()
			})
		} else {
			ts.recurse(c, child, depth+1, cseed)
		}
	}
}

// bruteForce is Algorithm 2, verbatim: exact token counts over the node,
// recomputed after each removal.
func (ts *bbTask) bruteForce(node []uint32) []uint32 {
	j := ts.j
	for {
		if len(node) <= j.opt.Limit {
			ts.bruteForcePairs(node)
			return nil
		}
		// Lines 5-7: count[j] over the node.
		counts := make(map[uint32]int32)
		for _, id := range node {
			for _, tok := range j.sets[id] {
				counts[tok]++
			}
		}
		threshold := (1 - j.opt.Epsilon) * j.lambda
		removed := false
		// Lines 8-11.
		for idx, id := range node {
			x := j.sets[id]
			sum := int64(0)
			for _, tok := range x {
				sum += int64(counts[tok] - 1)
			}
			// Average of |x∩y|/|x| over y in the node, an upper bound on
			// the average Braun-Blanquet similarity.
			avg := float64(sum) / (float64(len(x)) * float64(len(node)-1))
			if avg > threshold {
				ts.bruteForcePoint(id, node[:idx])
				ts.bruteForcePoint(id, node[idx+1:])
				node = append(append([]uint32{}, node[:idx]...), node[idx+1:]...)
				removed = true
				break
			}
		}
		if !removed {
			return node
		}
	}
}

func (ts *bbTask) checkPair(a, b uint32) {
	j := ts.j
	ts.pre++
	if j.res.Contains(a, b) {
		return
	}
	// Size filter under Braun-Blanquet: |small| >= lambda * |large|.
	la, lb := len(j.sets[a]), len(j.sets[b])
	if la > lb {
		la, lb = lb, la
	}
	if float64(la) < j.lambda*float64(lb) {
		return
	}
	ts.cand++
	if bbAtLeast(j.sets[a], j.sets[b], j.lambda) {
		j.res.Add(a, b)
	}
}

func (ts *bbTask) bruteForcePairs(node []uint32) {
	for i := 0; i < len(node); i++ {
		for k := i + 1; k < len(node); k++ {
			ts.checkPair(node[i], node[k])
		}
	}
}

func (ts *bbTask) bruteForcePoint(id uint32, others []uint32) {
	for _, other := range others {
		if other != id {
			ts.checkPair(id, other)
		}
	}
}
