package core

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/intset"
	"repro/internal/stats"
)

func TestBBAtLeastMatchesDirect(t *testing.T) {
	ds := datagen.Uniform(100, 15, 50, 31)
	sets := ds.Sets
	for _, lambda := range []float64{0.3, 0.5, 0.7, 0.9} {
		for i := 0; i < len(sets); i++ {
			for k := i + 1; k < len(sets); k++ {
				want := intset.BraunBlanquet(sets[i], sets[k]) >= lambda
				if got := bbAtLeast(sets[i], sets[k], lambda); got != want {
					t.Fatalf("bbAtLeast(%v) = %v, want %v (BB=%v)",
						lambda, got, want, intset.BraunBlanquet(sets[i], sets[k]))
				}
			}
		}
	}
}

func TestJoinBBPrecision(t *testing.T) {
	ds := datagen.Uniform(500, 20, 4000, 32)
	datagen.PlantPairs(ds, 25, 0.7, 33)
	got, _ := JoinBB(ds.Sets, 0.5, &BBOptions{Seed: 1})
	for _, p := range got {
		if bb := intset.BraunBlanquet(ds.Sets[p.A], ds.Sets[p.B]); bb < 0.5 {
			t.Fatalf("false positive (%d,%d) BB=%v", p.A, p.B, bb)
		}
	}
}

func TestJoinBBRecall(t *testing.T) {
	ds := datagen.Uniform(500, 20, 4000, 34)
	datagen.PlantPairs(ds, 20, 0.6, 35)
	datagen.PlantPairs(ds, 20, 0.85, 36)
	for _, lambda := range []float64{0.5, 0.7} {
		truth := BruteForceJoinBB(ds.Sets, lambda)
		if len(truth) == 0 {
			t.Fatalf("no BB ground truth at λ=%v", lambda)
		}
		got, _ := JoinBB(ds.Sets, lambda, &BBOptions{Seed: 2})
		if r := stats.Recall(got, truth); r < 0.9 {
			t.Errorf("λ=%v: BB recall %v < 0.9 (%d/%d)", lambda, r, len(got), len(truth))
		}
	}
}

// TestJoinBBVariableSizes exercises the generalization beyond the paper's
// fixed-size setting: collections with wildly varying set sizes.
func TestJoinBBVariableSizes(t *testing.T) {
	var sets [][]uint32
	// Small sets contained in big sets: BB = |small|/|big|.
	base := make([]uint32, 0, 100)
	for i := uint32(0); i < 100; i++ {
		base = append(base, i)
	}
	sets = append(sets, base)                    // 0: {0..99}
	sets = append(sets, base[:60])               // 1: BB(0,1) = 0.6
	sets = append(sets, base[:30])               // 2: BB(0,2) = 0.3, BB(1,2) = 0.5
	sets = append(sets, []uint32{200, 201, 202}) // 3: unrelated
	// Pad with noise so the collection is non-trivial.
	noise := datagen.Uniform(300, 10, 100000, 37)
	sets = append(sets, noise.Sets...)

	got, _ := JoinBB(sets, 0.55, &BBOptions{Seed: 3, Repetitions: 20})
	found := false
	for _, p := range got {
		if p.A == 0 && p.B == 1 {
			found = true
		}
		if bb := intset.BraunBlanquet(sets[p.A], sets[p.B]); bb < 0.55 {
			t.Fatalf("false positive BB=%v", bb)
		}
	}
	if !found {
		t.Error("missed the contained-set pair (0,1) with BB=0.6")
	}
}

// TestJoinBBAgreesWithEmbeddedOnFixedSize: on a fixed-size collection,
// Braun-Blanquet and the embedded Jaccard join target the same pairs (for
// equal-size sets, BB >= λ ⇔ J >= λ/(2-λ)), so the reference and the
// optimized implementation can be cross-checked.
func TestJoinBBAgreesWithEmbeddedOnFixedSize(t *testing.T) {
	// Build sets of exactly size 24.
	ds := datagen.Uniform(400, 24, 8000, 38)
	var sets [][]uint32
	for _, s := range ds.Sets {
		if len(s) == 24 {
			sets = append(sets, s)
		}
	}
	if len(sets) < 100 {
		t.Skip("not enough fixed-size sets")
	}
	const bbLambda = 0.6
	jLambda := bbLambda / (2 - bbLambda)
	truthBB := BruteForceJoinBB(sets, bbLambda)
	truthJ := make(map[uint64]bool)
	for i := 0; i < len(sets); i++ {
		for k := i + 1; k < len(sets); k++ {
			if intset.Jaccard(sets[i], sets[k]) >= jLambda-1e-12 {
				truthJ[uint64(i)<<32|uint64(k)] = true
			}
		}
	}
	if len(truthBB) != len(truthJ) {
		t.Fatalf("BB and converted-Jaccard ground truths differ: %d vs %d",
			len(truthBB), len(truthJ))
	}
	for _, p := range truthBB {
		if !truthJ[uint64(p.A)<<32|uint64(p.B)] {
			t.Fatalf("pair %v in BB truth but not J truth", p)
		}
	}
}

func TestJoinBBTinyInputs(t *testing.T) {
	if got, _ := JoinBB(nil, 0.5, nil); got != nil {
		t.Error("JoinBB(nil) returned pairs")
	}
	got, _ := JoinBB([][]uint32{{1, 2, 3}, {1, 2, 3}}, 0.9, &BBOptions{Seed: 4})
	if len(got) != 1 {
		t.Errorf("identical pair not found: %v", got)
	}
}

func TestJoinBBInvalidLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for lambda=0")
		}
	}()
	JoinBB([][]uint32{{1}, {2}}, 0, nil)
}
