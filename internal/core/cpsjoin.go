// Package core implements CPSJoin — the Chosen Path Similarity Join of
// Christiani, Pagh and Sivertsen (ICDE 2018) — the primary contribution of
// the paper this repository reproduces.
//
// CPSJoin solves the (λ, ϕ)-set similarity join: every pair with Jaccard
// similarity at least λ is reported with probability at least ϕ, at 100%
// precision. The algorithm recursively splits the collection along sampled
// MinHash positions (the Chosen Path Tree), so that the probability of a
// pair meeting in a subproblem grows with its similarity; an adaptive
// brute-force rule removes a point from the branching process exactly when
// continuing would cost more comparisons than finishing it directly
// (Algorithm 2 of the paper), which is what makes the method parameter-free
// and robust on data without rare tokens.
//
// Parallelism follows Section VII's observation that "most of the
// computation happens in independent, recursive calls": with Workers > 1
// the recursion runs on the shared work-stealing pool of internal/exec.
// Whole repetitions are root tasks, and within a repetition every subtree
// hanging off a large node is spawned as its own task, so a single
// repetition saturates all workers. Every node derives its randomness from
// a seed that depends only on its path from the root, so the tree ensemble
// — and therefore the result set — is identical regardless of worker count
// or scheduling.
package core

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/prep"
	"repro/internal/sketch"
	"repro/internal/tabhash"
	"repro/internal/verify"
)

// Stopping selects the strategy that decides when a point leaves the
// branching process and is compared directly (Section IV-C.5).
type Stopping int

const (
	// StopAdaptive removes a point when the expected number of comparisons
	// is non-decreasing in the tree depth — the paper's contribution and
	// the default.
	StopAdaptive Stopping = iota
	// StopGlobal recurses to a fixed depth k for every point, then brute
	// forces each node (classic LSH-style parameterization).
	StopGlobal
	// StopIndividual fixes a per-point depth k_x estimated from sampled
	// similarities (Ahle et al. SODA 2017 style).
	StopIndividual
)

// Options configures CPSJoin. The zero value selects the paper's final
// parameters (Table III): t=128, limit=250, ε=0.1, ℓ=8 words, δ=0.05,
// 10 repetitions, adaptive stopping, sequential execution.
type Options struct {
	// T is the MinHash signature length (embedded set size).
	T int
	// Limit is the brute-force size threshold of Algorithm 2.
	Limit int
	// Epsilon is the brute-force aggressiveness of Algorithm 2.
	// It is only consulted when EpsilonSet is true, so that ε=0.0 (a value
	// the paper's Figure 3(b) sweeps) is expressible.
	Epsilon    float64
	EpsilonSet bool
	// SketchWords is the 1-bit minwise sketch width in 64-bit words;
	// negative disables the sketch filter entirely.
	SketchWords int
	// Delta is the sketch false-negative probability.
	Delta float64
	// Repetitions is the number of independent runs (the paper fixes 10,
	// which achieved >90% recall on all datasets and thresholds).
	Repetitions int
	// Seed makes runs reproducible.
	Seed uint64
	// Workers is the number of worker goroutines of the parallel execution
	// layer (internal/exec): 0 runs sequentially, negative selects
	// GOMAXPROCS. The result set is identical across worker counts for a
	// fixed Seed and options; only the candidate counters (and, with
	// StopAtRecall, the early-stopping point) depend on scheduling.
	// A non-nil Metrics forces sequential execution, as the recursion
	// statistics it collects are properties of the depth-first traversal.
	Workers int
	// Stopping selects the stopping strategy (ablation of Section IV-C.5).
	Stopping Stopping
	// GlobalDepth is the fixed depth for StopGlobal; 0 derives
	// k = ln(n)/ln(1/λ), the value balancing tree size against node count.
	GlobalDepth int
	// StrictBruteForce uses the literal Algorithm 2 (exact token counts,
	// recomputed after every removal) instead of the sampled node-sketch
	// heuristic of Section V-A.4. Exponentially slower; for tests and
	// ablations.
	StrictBruteForce bool
	// MaxDepth caps recursion depth as a safety net; 0 derives a bound
	// from n and ε following Lemma 4.
	MaxDepth int
	// GroundTruth, when non-nil together with StopAtRecall > 0, enables
	// the paper's experimental procedure (Section VI-2): the join stops as
	// soon as recall against the known exact result reaches StopAtRecall.
	// All workers share one atomic view of the accumulated results
	// (verify.RecallTracker), so the stopping decision is global rather
	// than per worker. Repetitions remains the upper bound.
	GroundTruth  []verify.Pair
	StopAtRecall float64
	// Metrics, when non-nil, receives recursion statistics (explored tree
	// depth, node counts, peak live node mass) for validating the
	// theoretical bounds of Section IV (Lemma 4, Lemma 8, Remark 9).
	Metrics *Metrics
}

// Metrics instruments the Chosen Path recursion.
type Metrics struct {
	// MaxDepth is the deepest node explored across all repetitions;
	// Lemma 4 bounds it by O(log(n)/ε) with high probability.
	MaxDepth int
	// Nodes is the number of recursion nodes visited.
	Nodes int64
	// NodeMass is the sum of node sizes over all visited nodes — the
	// total splitting work.
	NodeMass int64
	// PeakLiveMass is the maximum, over the depth-first traversal, of the
	// total size of nodes on the recursion stack: the working-space
	// measure of Lemma 8 and the O(n) conjecture of Remark 9.
	PeakLiveMass int64
	// BruteForcedPoints counts points removed by the adaptive rule
	// (BRUTEFORCEPOINT calls); BruteForcedNodes counts nodes finished by
	// BRUTEFORCEPAIRS.
	BruteForcedPoints int64
	BruteForcedNodes  int64
}

func (o *Options) withDefaults() Options {
	opt := Options{}
	if o != nil {
		opt = *o
	}
	if opt.T <= 0 {
		opt.T = 128
	}
	if opt.Limit <= 0 {
		opt.Limit = 250
	}
	if !opt.EpsilonSet {
		opt.Epsilon = 0.1
	}
	if opt.SketchWords == 0 {
		opt.SketchWords = 8
	}
	if opt.Delta <= 0 || opt.Delta >= 1 {
		opt.Delta = 0.05
	}
	if opt.Repetitions <= 0 {
		opt.Repetitions = 10
	}
	return opt
}

// Join computes an approximate self-join at Jaccard threshold lambda.
// Returned pairs are deduplicated, exact-verified (100% precision), and in
// input indices.
func Join(sets [][]uint32, lambda float64, o *Options) ([]verify.Pair, verify.Counters) {
	j := newJoiner(sets, nil, lambda, o, nil)
	if j == nil {
		return nil, verify.Counters{}
	}
	j.run()
	return j.res.Pairs(), j.counters
}

// Preprocess builds the reusable index (signatures and sketches) for a
// collection with the given options. Joins at any threshold can then run
// against it without repeating the embedding work, which is how the
// paper's experiments measure join time. With Workers set, the per-set
// hashing is spread across the execution layer.
func Preprocess(sets [][]uint32, o *Options) *prep.Index {
	opt := o.withDefaults()
	words := opt.SketchWords
	if words < 0 {
		words = 0
	}
	return prep.BuildParallel(sets, opt.T, words, opt.Seed, exec.EffectiveWorkers(opt.Workers))
}

// JoinIndexed runs a self-join against a prebuilt index. The index
// determines the signature length and sketch width; other options apply
// unchanged.
func JoinIndexed(ix *prep.Index, lambda float64, o *Options) ([]verify.Pair, verify.Counters) {
	j := newJoiner(ix.Sets, nil, lambda, o, ix)
	if j == nil {
		return nil, verify.Counters{}
	}
	j.run()
	return j.res.Pairs(), j.counters
}

// JoinRS computes an approximate R-S join: pairs (i, k) with
// J(r[i], s[k]) >= lambda, reported as Pair{A: i, B: k} where A indexes r
// and B indexes s. Implemented, as in Section IV of the paper, by a
// self-join over R ∪ S restricted to cross pairs.
func JoinRS(r, s [][]uint32, lambda float64, o *Options) ([]verify.Pair, verify.Counters) {
	all := make([][]uint32, 0, len(r)+len(s))
	all = append(all, r...)
	all = append(all, s...)
	owners := make([]uint8, len(all))
	for i := len(r); i < len(all); i++ {
		owners[i] = 1
	}
	j := newJoiner(all, owners, lambda, o, nil)
	if j == nil {
		return nil, verify.Counters{}
	}
	j.run()
	nR := uint32(len(r))
	pairs := j.res.Pairs()
	out := make([]verify.Pair, 0, len(pairs))
	for _, p := range pairs {
		// Normalized pairs have A < B; cross pairs have exactly one side
		// >= nR, and since all R ids precede S ids, A is the R side.
		out = append(out, verify.Pair{A: p.A, B: p.B - nR})
	}
	j.counters.Results = int64(len(out))
	return out, j.counters
}

type joiner struct {
	sets   [][]uint32
	owners []uint8 // nil for self-join
	lambda float64
	opt    Options

	t        int
	sigs     []uint32 // flattened n × t signatures
	w        int      // sketch words; 0 if disabled
	sketches []uint64 // flattened n × w sketches
	filter   *sketch.Filter

	verifier *verify.Verifier
	res      verify.PairSink
	tracker  *verify.RecallTracker
	counters verify.Counters
	atomics  verify.AtomicCounters

	workers     int
	spawnCutoff int // node size above which child subtrees become tasks

	splitProb float64
	maxDepth  int
	kx        []int // per-point stopping depth for StopIndividual

	liveMass int64 // total size of nodes on the recursion stack (Metrics)
}

func newJoiner(sets [][]uint32, owners []uint8, lambda float64, o *Options, ix *prep.Index) *joiner {
	if lambda <= 0 || lambda >= 1 {
		panic(fmt.Sprintf("core: lambda %v out of (0,1)", lambda))
	}
	if len(sets) < 2 {
		return nil
	}
	opt := o.withDefaults()
	if ix != nil {
		// A prebuilt index fixes the embedding parameters.
		opt.T = ix.T
		if ix.Words > 0 && opt.SketchWords > 0 {
			opt.SketchWords = ix.Words
		} else {
			opt.SketchWords = -1
		}
	}
	j := &joiner{
		sets:   sets,
		owners: owners,
		lambda: lambda,
		opt:    opt,
		t:      opt.T,
	}
	j.workers = exec.EffectiveWorkers(opt.Workers)
	if opt.Metrics != nil {
		// Recursion statistics (stack mass, traversal depth) are
		// properties of the sequential depth-first walk.
		j.workers = 1
	}
	// A subtree is one task once its root fits within a few brute-force
	// limits: large enough to amortize scheduling, small enough that a
	// single repetition decomposes into many tasks.
	j.spawnCutoff = 4 * opt.Limit
	if j.spawnCutoff < 1024 {
		j.spawnCutoff = 1024
	}
	if ix == nil {
		words := opt.SketchWords
		if words < 0 {
			words = 0
		}
		ix = prep.BuildParallel(sets, opt.T, words, opt.Seed, j.workers)
	}
	j.sigs = ix.Sigs
	if opt.SketchWords > 0 {
		j.w = ix.Words
		j.sketches = ix.Sketches
		j.filter = sketch.NewFilter(j.w, lambda, opt.Delta)
	}
	j.verifier = verify.NewVerifier(sets, lambda, nil)
	j.res = verify.NewSink(j.workers)
	j.tracker = verify.NewRecallTracker(opt.GroundTruth, opt.StopAtRecall)
	j.splitProb = 1 / (lambda * float64(opt.T))
	j.maxDepth = opt.MaxDepth
	if j.maxDepth <= 0 {
		// Lemma 4: explored depth is O(log n / ε) w.h.p.; use a generous
		// constant and treat ε=0 as ε=0.05 for the bound only.
		eps := opt.Epsilon
		if eps < 0.05 {
			eps = 0.05
		}
		j.maxDepth = int(4*math.Log(float64(len(sets)+1))/eps) + 8
	}
	return j
}

// repSeed derives the root seed of one repetition; it depends only on the
// repetition index, never on which worker runs it.
func repSeed(seed uint64, rep int) uint64 {
	return tabhash.Mix64(seed + uint64(rep)*0x9d5)
}

// childSeed derives a child node's seed from its parent's seed and the
// (position, minhash value) bucket that formed it. Both inputs are stable
// properties of the tree, so the full ensemble of recursion trees is
// deterministic no matter which worker expands which subtree — map
// iteration order and task scheduling never enter the derivation.
func childSeed(seed uint64, pos int, v uint32) uint64 {
	return tabhash.DeriveSeed(seed, uint64(pos), uint64(v))
}

func (j *joiner) rootNode() []uint32 {
	root := make([]uint32, len(j.sets))
	for i := range root {
		root[i] = uint32(i)
	}
	return root
}

func (j *joiner) run() {
	if j.opt.Stopping == StopIndividual {
		j.computeIndividualDepths()
	}
	if j.workers <= 1 {
		ts := j.newTaskState()
		for rep := 0; rep < j.opt.Repetitions; rep++ {
			if j.tracker.Reached() {
				break
			}
			ts.recurse(nil, j.rootNode(), 0, repSeed(j.opt.Seed, rep))
		}
		ts.flush()
	} else {
		roots := make([]exec.Task, j.opt.Repetitions)
		for rep := range roots {
			seed := repSeed(j.opt.Seed, rep)
			roots[rep] = func(c *exec.Ctx) {
				if j.tracker.Reached() {
					return
				}
				ts := j.newTaskState()
				ts.recurse(c, j.rootNode(), 0, seed)
				ts.flush()
			}
		}
		exec.Run(j.workers, roots...)
	}
	j.counters = j.atomics.Counters()
	j.counters.Results = int64(j.res.Len())
}

// taskState is the per-task execution context: candidate counters batched
// locally (flushed atomically once per task) and scratch buffers. Each
// task owns one; the joiner itself is read-only while tasks run, except
// for the concurrent result sink and the atomic counters.
type taskState struct {
	j         *joiner
	pre, cand int64
	scratch   []uint64 // node sketch buffer
}

func (j *joiner) newTaskState() *taskState {
	ts := &taskState{j: j}
	if j.w > 0 {
		ts.scratch = make([]uint64, j.w)
	}
	return ts
}

// flush publishes the task-local counters into the shared atomics.
func (ts *taskState) flush() {
	ts.j.atomics.Add(ts.pre, ts.cand)
	ts.pre, ts.cand = 0, 0
}

// recurse processes one node of the Chosen Path Tree (Algorithm 1). In
// parallel runs (c != nil), child subtrees of nodes larger than the spawn
// cutoff become independent tasks; subtrees at or below the cutoff run
// inline as one sequential task.
func (ts *taskState) recurse(c *exec.Ctx, node []uint32, depth int, seed uint64) {
	j := ts.j
	if j.tracker.Reached() {
		return
	}
	if m := j.opt.Metrics; m != nil {
		if depth > m.MaxDepth {
			m.MaxDepth = depth
		}
		m.Nodes++
		// Capture the entry size: node is reassigned below when the
		// brute-force step removes points, and the deferred decrement must
		// mirror the increment exactly.
		size := int64(len(node))
		m.NodeMass += size
		j.liveMass += size
		if j.liveMass > m.PeakLiveMass {
			m.PeakLiveMass = j.liveMass
		}
		defer func() { j.liveMass -= size }()
	}
	// Every node draws from its own generator, seeded by its path from
	// the root: first the stopping step (node-sketch sampling), then the
	// splitting step, exactly as in the sequential traversal.
	rng := tabhash.NewSplitMix64(seed)
	switch j.opt.Stopping {
	case StopGlobal:
		gd := j.opt.GlobalDepth
		if gd <= 0 {
			gd = j.defaultGlobalDepth()
		}
		if depth >= gd || len(node) <= 2 {
			ts.bruteForcePairs(node)
			return
		}
	case StopIndividual:
		node = ts.individualStep(node, depth)
		if len(node) < 2 {
			return
		}
		if depth >= j.maxDepth {
			ts.bruteForcePairs(node)
			return
		}
	default: // StopAdaptive
		if j.opt.StrictBruteForce {
			node = ts.bruteForceStrict(node)
		} else {
			node = ts.bruteForceStep(node, rng)
		}
		if len(node) < 2 {
			return
		}
		if depth >= j.maxDepth {
			ts.bruteForcePairs(node)
			return
		}
	}

	// Splitting step: sample each signature position with probability
	// 1/(λt) (expected 1/λ positions) and split the node by the minhash
	// value at each sampled position (Section V-A.3).
	spawn := c != nil && len(node) > j.spawnCutoff
	for pos := 0; pos < j.t; pos++ {
		if rng.Float64() >= j.splitProb {
			continue
		}
		buckets := make(map[uint32][]uint32, len(node)/2+1)
		for _, id := range node {
			v := j.sigs[int(id)*j.t+pos]
			buckets[v] = append(buckets[v], id)
		}
		for v, child := range buckets {
			if len(child) < 2 {
				continue
			}
			cseed := childSeed(seed, pos, v)
			if spawn {
				child := child
				c.Spawn(func(c *exec.Ctx) {
					sub := j.newTaskState()
					sub.recurse(c, child, depth+1, cseed)
					sub.flush()
				})
			} else {
				ts.recurse(c, child, depth+1, cseed)
			}
		}
	}
}

func (j *joiner) defaultGlobalDepth() int {
	// Balance n(1/λ)^k tree cost against within-node comparisons:
	// k = ln(n)/ln(1/λ).
	k := int(math.Ceil(math.Log(float64(len(j.sets))) / math.Log(1/j.lambda)))
	if k < 1 {
		k = 1
	}
	return k
}

// bruteForceStep is the implementation heuristic of Section V-A.4: a
// single pass that estimates, via a sampled node sketch, each point's
// average similarity to the node, brute-forces every point above
// (1-ε)λ, and returns the remainder.
func (ts *taskState) bruteForceStep(node []uint32, rng *tabhash.SplitMix64) []uint32 {
	j := ts.j
	if len(node) <= j.opt.Limit {
		ts.bruteForcePairs(node)
		return nil
	}
	if j.w == 0 {
		// No sketches: fall back to the exact count-based rule.
		return ts.bruteForceStrict(node)
	}

	// Node sketch ŝ: bit i is bit i of the sketch of a uniformly sampled
	// member, so agreement between x̂ and ŝ estimates the average
	// similarity of x to the node.
	nodeSketch := ts.scratch
	for wd := 0; wd < j.w; wd++ {
		var word uint64
		for b := 0; b < 64; b++ {
			member := node[rng.Intn(len(node))]
			bit := (j.sketches[int(member)*j.w+wd] >> uint(b)) & 1
			word |= bit << uint(b)
		}
		nodeSketch[wd] = word
	}

	threshold := (1 - j.opt.Epsilon) * j.lambda
	var marked, rest []uint32
	for _, id := range node {
		xs := j.sketches[int(id)*j.w : (int(id)+1)*j.w]
		if sketch.EstimateJaccard(xs, nodeSketch) > threshold {
			marked = append(marked, id)
		} else {
			rest = append(rest, id)
		}
	}
	if len(marked) == 0 {
		return node
	}
	if m := j.opt.Metrics; m != nil {
		m.BruteForcedPoints += int64(len(marked))
	}
	// Marked points are compared against everything in the node exactly
	// once: each against the survivors, plus all pairs among themselves.
	for _, id := range marked {
		ts.bruteForcePoint(id, rest)
	}
	ts.bruteForcePairs(marked)
	return rest
}

// bruteForceStrict is the literal Algorithm 2: exact average Braun-Blanquet
// similarity from token counts over the embedded sets, recomputed after
// every removal. Used with StrictBruteForce and when sketches are disabled.
func (ts *taskState) bruteForceStrict(node []uint32) []uint32 {
	j := ts.j
	for {
		if len(node) <= j.opt.Limit {
			ts.bruteForcePairs(node)
			return nil
		}
		counts := make(map[uint64]int32, len(node)*j.t/4)
		for _, id := range node {
			sig := j.sigs[int(id)*j.t : (int(id)+1)*j.t]
			for pos, v := range sig {
				counts[uint64(pos)<<32|uint64(v)]++
			}
		}
		threshold := (1 - j.opt.Epsilon) * j.lambda
		removed := false
		for idx, id := range node {
			sig := j.sigs[int(id)*j.t : (int(id)+1)*j.t]
			sum := int64(0)
			for pos, v := range sig {
				sum += int64(counts[uint64(pos)<<32|uint64(v)] - 1)
			}
			avg := float64(sum) / (float64(j.t) * float64(len(node)-1))
			if avg > threshold {
				ts.bruteForcePoint(id, node[:idx])
				ts.bruteForcePoint(id, node[idx+1:])
				node = append(append([]uint32{}, node[:idx]...), node[idx+1:]...)
				removed = true
				break
			}
		}
		if !removed {
			return node
		}
	}
}

// individualStep removes points whose precomputed stopping depth has been
// reached, comparing them against the whole node.
func (ts *taskState) individualStep(node []uint32, depth int) []uint32 {
	j := ts.j
	if len(node) <= 2 {
		ts.bruteForcePairs(node)
		return nil
	}
	var marked, rest []uint32
	for _, id := range node {
		if depth >= j.kx[id] {
			marked = append(marked, id)
		} else {
			rest = append(rest, id)
		}
	}
	if len(marked) == 0 {
		return node
	}
	for _, id := range marked {
		ts.bruteForcePoint(id, rest)
	}
	ts.bruteForcePairs(marked)
	return rest
}

// computeIndividualDepths estimates, for every point, the depth k_x
// minimizing (1/λ)^k + Σ_y (sim(x,y)/λ)^k, with the sum estimated from a
// sample of sketch similarities (the individual strategy of Ahle et al.).
// It runs once, before any task starts; kx is read-only afterwards.
func (j *joiner) computeIndividualDepths() {
	n := len(j.sets)
	j.kx = make([]int, n)
	if j.w == 0 {
		for i := range j.kx {
			j.kx[i] = j.defaultGlobalDepth()
		}
		return
	}
	rng := tabhash.NewSplitMix64(j.opt.Seed + 0xdead)
	sample := 32
	if sample > n-1 {
		sample = n - 1
	}
	kMax := j.defaultGlobalDepth() + 4
	sims := make([]float64, 0, sample)
	for x := 0; x < n; x++ {
		sims = sims[:0]
		xs := j.sketches[x*j.w : (x+1)*j.w]
		for s := 0; s < sample; s++ {
			y := rng.Intn(n)
			if y == x {
				continue
			}
			ys := j.sketches[y*j.w : (y+1)*j.w]
			sims = append(sims, sketch.EstimateJaccard(xs, ys))
		}
		scale := float64(n-1) / float64(max(len(sims), 1))
		bestK, bestCost := 1, math.Inf(1)
		for k := 1; k <= kMax; k++ {
			cost := math.Pow(1/j.lambda, float64(k))
			for _, s := range sims {
				cost += scale * math.Pow(s/j.lambda, float64(k))
			}
			if cost < bestCost {
				bestCost = cost
				bestK = k
			}
		}
		j.kx[x] = bestK
	}
}

// crossPair reports whether the pair should be emitted given ownership
// (always true for self-joins).
func (j *joiner) crossPair(a, b uint32) bool {
	return j.owners == nil || j.owners[a] != j.owners[b]
}

// checkPair runs the candidate pipeline on one pair: ownership, size
// filter, sketch filter, dedup, exact verification. The cheap constant-time
// filters run before the dedup lookup because the overwhelming majority of
// pre-candidates die in them. In parallel runs two tasks can race past the
// dedup check and verify the same pair; the sink's Add keeps the result
// set exact, so only the Candidates counter can drift by the handful of
// double-verified pairs.
func (ts *taskState) checkPair(a, b uint32) {
	j := ts.j
	ts.pre++
	if !j.crossPair(a, b) {
		return
	}
	if !j.verifier.SizeCompatible(len(j.sets[a]), len(j.sets[b])) {
		return
	}
	if j.filter != nil {
		sa := j.sketches[int(a)*j.w : (int(a)+1)*j.w]
		sb := j.sketches[int(b)*j.w : (int(b)+1)*j.w]
		if !j.filter.Accept(sa, sb) {
			return
		}
	}
	if j.res.Contains(a, b) {
		return
	}
	ts.cand++
	if j.verifier.Verify(a, b) {
		if j.res.Add(a, b) {
			j.tracker.Hit(a, b)
		}
	}
}

// bruteForcePairs reports all qualifying pairs within the node
// (BRUTEFORCEPAIRS in Algorithm 2).
func (ts *taskState) bruteForcePairs(node []uint32) {
	if m := ts.j.opt.Metrics; m != nil && len(node) > 1 {
		m.BruteForcedNodes++
	}
	for i := 0; i < len(node); i++ {
		for k := i + 1; k < len(node); k++ {
			ts.checkPair(node[i], node[k])
		}
	}
}

// bruteForcePoint compares one point against a list of others
// (BRUTEFORCEPOINT in Algorithm 2).
func (ts *taskState) bruteForcePoint(id uint32, others []uint32) {
	for _, other := range others {
		if other != id {
			ts.checkPair(id, other)
		}
	}
}
