package core

import (
	"testing"

	"repro/internal/intset"
	"repro/internal/stats"
	"repro/internal/verify"
)

func TestParallelMatchesSequential(t *testing.T) {
	sets := testWorkload(500, 40)
	ix := Preprocess(sets, &Options{Seed: 5})
	seq, _ := JoinIndexed(ix, 0.5, &Options{Seed: 5})
	par, _ := JoinParallel(ix, 0.5, &Options{Seed: 5}, 4)
	if !stats.EqualPairSets(seq, par) {
		t.Fatalf("parallel (%d pairs) differs from sequential (%d pairs)",
			len(par), len(seq))
	}
}

func TestParallelPrecisionAndRecall(t *testing.T) {
	sets := testWorkload(600, 41)
	ix := Preprocess(sets, &Options{Seed: 6})
	truth := verify.BruteForceJoin(sets, 0.5)
	got, c := JoinParallel(ix, 0.5, &Options{Seed: 6}, 8)
	for _, p := range got {
		if intset.Jaccard(sets[p.A], sets[p.B]) < 0.5 {
			t.Fatal("false positive from parallel join")
		}
	}
	if r := stats.Recall(got, truth); r < 0.9 {
		t.Errorf("parallel recall %v", r)
	}
	if c.Results != int64(len(got)) {
		t.Errorf("Results counter %d != %d", c.Results, len(got))
	}
}

func TestParallelWorkerCounts(t *testing.T) {
	sets := testWorkload(300, 42)
	ix := Preprocess(sets, &Options{Seed: 7})
	ref, _ := JoinParallel(ix, 0.6, &Options{Seed: 7}, 1)
	for _, workers := range []int{2, 3, 16, 0 /* GOMAXPROCS */} {
		got, _ := JoinParallel(ix, 0.6, &Options{Seed: 7}, workers)
		if !stats.EqualPairSets(ref, got) {
			t.Errorf("workers=%d: results differ from single-worker run", workers)
		}
	}
}

func TestParallelTinyInput(t *testing.T) {
	ix := Preprocess([][]uint32{{1, 2}}, &Options{Seed: 1})
	if got, _ := JoinParallel(ix, 0.5, nil, 4); got != nil {
		t.Error("parallel join of single set returned pairs")
	}
}
