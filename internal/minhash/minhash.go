// Package minhash implements minwise hashing signatures and the randomized
// embedding of Section II-A of the CPSJoin paper.
//
// A MinHash function h is sampled by drawing a random tabulation hash
// g: [d] -> [2^64] and letting h(x) = argmin_{j in x} g(j). For two sets
// Pr[h(x) = h(y)] = J(x, y), so the number of agreeing positions in two
// t-dimensional signatures is a binomially concentrated estimator of the
// Jaccard similarity.
//
// The embedding f(x) = {(i, h_i(x)) : i = 1..t} maps an arbitrary set to a
// set of exactly t tokens such that the Braun-Blanquet similarity
// |f(x) ∩ f(y)| / t estimates J(x, y); this is what makes CPSJoin
// applicable to any LSHable similarity measure.
package minhash

import (
	"fmt"

	"repro/internal/tabhash"
)

// Signer computes t-dimensional MinHash signatures.
type Signer struct {
	t      int
	tables []*tabhash.Table32
}

// NewSigner returns a Signer with t independent MinHash functions derived
// from seed. It panics if t <= 0.
func NewSigner(t int, seed uint64) *Signer {
	if t <= 0 {
		panic(fmt.Sprintf("minhash: invalid signature length %d", t))
	}
	s := &Signer{t: t, tables: make([]*tabhash.Table32, t)}
	for i := range s.tables {
		s.tables[i] = tabhash.NewTable32(tabhash.Mix64(seed + uint64(i)))
	}
	return s
}

// T returns the signature length.
func (s *Signer) T() int { return s.t }

// Sign computes the signature of set: for each of the t hash functions, the
// token of set minimizing the hash value. The result has length t. Sign
// panics on an empty set (a MinHash of nothing is undefined).
func (s *Signer) Sign(set []uint32) []uint32 {
	sig := make([]uint32, s.t)
	s.SignInto(set, sig)
	return sig
}

// SignInto computes the signature of set into sig, which must have length t.
func (s *Signer) SignInto(set []uint32, sig []uint32) {
	if len(set) == 0 {
		panic("minhash: cannot sign an empty set")
	}
	if len(sig) != s.t {
		panic(fmt.Sprintf("minhash: sig length %d, want %d", len(sig), s.t))
	}
	for i, table := range s.tables {
		best := set[0]
		bestHash := table.Hash(set[0])
		for _, tok := range set[1:] {
			if h := table.Hash(tok); h < bestHash {
				bestHash = h
				best = tok
			}
		}
		sig[i] = best
	}
}

// SignAll computes signatures for every set, returned as a single flattened
// slice of length len(sets)*t; the signature of set i occupies
// [i*t, (i+1)*t). A flattened layout keeps the per-record overhead at one
// slice header for the whole collection and gives sequential memory access
// in the join inner loops.
func (s *Signer) SignAll(sets [][]uint32) []uint32 {
	flat := make([]uint32, len(sets)*s.t)
	for i, set := range sets {
		s.SignInto(set, flat[i*s.t:(i+1)*s.t])
	}
	return flat
}

// Estimate returns the fraction of agreeing positions of two signatures,
// an unbiased estimator of the Jaccard similarity of the underlying sets.
func Estimate(a, b []uint32) float64 {
	if len(a) != len(b) || len(a) == 0 {
		panic("minhash: signature length mismatch")
	}
	agree := 0
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(a))
}

// Embedding is the result of embedding a collection of sets: each input set
// becomes a set of exactly T tokens over a fresh dense universe, where
// matching tokens correspond to agreeing MinHash positions. Braun-Blanquet
// similarity of two embedded sets (intersection divided by T) estimates the
// Jaccard similarity of the originals.
type Embedding struct {
	T        int
	Sets     [][]uint32
	Universe int
}

// Embed embeds every input set into a t-token set. Token ids are assigned
// densely per (position, minhash value) pair, so there are no collisions:
// two embedded sets share a token exactly when their MinHash signatures
// agree at that position.
func Embed(sets [][]uint32, t int, seed uint64) *Embedding {
	signer := NewSigner(t, seed)
	flat := signer.SignAll(sets)
	type pv struct {
		pos uint32
		val uint32
	}
	dict := make(map[pv]uint32)
	emb := &Embedding{T: t, Sets: make([][]uint32, len(sets))}
	for i := range sets {
		sig := flat[i*t : (i+1)*t]
		out := make([]uint32, t)
		for p, v := range sig {
			key := pv{uint32(p), v}
			id, ok := dict[key]
			if !ok {
				id = uint32(len(dict))
				dict[key] = id
			}
			out[p] = id
		}
		// Tokens at different positions get distinct ids, and within one
		// signature each position yields one token, so out has t distinct
		// values; sort for the set invariant.
		sortUint32(out)
		emb.Sets[i] = out
	}
	emb.Universe = len(dict)
	return emb
}

func sortUint32(s []uint32) {
	// Insertion sort: t is small (64-256) and signatures are nearly random,
	// but more importantly this avoids a sort.Slice closure allocation in a
	// loop over the whole collection.
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
