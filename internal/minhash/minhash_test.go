package minhash

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/intset"
)

func randomSet(rng *rand.Rand, size, universe int) []uint32 {
	m := make(map[uint32]bool, size)
	for len(m) < size {
		m[uint32(rng.Intn(universe))] = true
	}
	out := make([]uint32, 0, size)
	for v := range m {
		out = append(out, v)
	}
	return intset.Normalize(out)
}

// overlappingPair builds two sets of the given size with exactly `shared`
// common tokens.
func overlappingPair(rng *rand.Rand, size, shared, universe int) ([]uint32, []uint32) {
	pool := randomSet(rng, 2*size-shared, universe)
	a := append([]uint32(nil), pool[:size]...)
	b := append([]uint32(nil), pool[size-shared:]...)
	return intset.Normalize(a), intset.Normalize(b)
}

func TestSignDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s1 := NewSigner(64, 77)
	s2 := NewSigner(64, 77)
	set := randomSet(rng, 30, 1000)
	a, b := s1.Sign(set), s2.Sign(set)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different signatures")
		}
	}
}

func TestSignMemberOfSet(t *testing.T) {
	// Each signature entry must be a member of the set (it is the argmin
	// token).
	rng := rand.New(rand.NewSource(2))
	s := NewSigner(32, 3)
	for i := 0; i < 50; i++ {
		set := randomSet(rng, 1+rng.Intn(40), 500)
		for _, v := range s.Sign(set) {
			if !intset.Contains(set, v) {
				t.Fatalf("signature value %d not in set %v", v, set)
			}
		}
	}
}

func TestSignIdenticalSetsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSigner(64, 4)
	set := randomSet(rng, 25, 400)
	if Estimate(s.Sign(set), s.Sign(set)) != 1 {
		t.Fatal("identical sets must have estimate 1")
	}
}

func TestSignEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sign(empty) did not panic")
		}
	}()
	NewSigner(8, 1).Sign(nil)
}

// TestEstimatorUnbiased checks that the MinHash collision rate matches the
// true Jaccard similarity within binomial confidence bounds. This is the
// statistical correctness of equation (1) of the paper.
func TestEstimatorUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const t512 = 512
	for _, wantJ := range []float64{0.2, 0.5, 0.8} {
		size := 100
		shared := int(math.Round(2 * wantJ / (1 + wantJ) * float64(size)))
		a, b := overlappingPair(rng, size, shared, 100000)
		trueJ := intset.Jaccard(a, b)
		// Average over several independent signers to tighten the bound.
		est := 0.0
		const reps = 8
		for r := 0; r < reps; r++ {
			s := NewSigner(t512, uint64(1000+r))
			est += Estimate(s.Sign(a), s.Sign(b))
		}
		est /= reps
		// Std dev of mean ≈ sqrt(J(1-J)/(t*reps)) <= 0.008; 5 sigma bound.
		if math.Abs(est-trueJ) > 0.045 {
			t.Errorf("estimate %v too far from true J %v", est, trueJ)
		}
	}
}

func TestSignAllLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sets := make([][]uint32, 20)
	for i := range sets {
		sets[i] = randomSet(rng, 2+rng.Intn(20), 300)
	}
	s := NewSigner(16, 7)
	flat := s.SignAll(sets)
	if len(flat) != 20*16 {
		t.Fatalf("flat length %d", len(flat))
	}
	for i, set := range sets {
		want := s.Sign(set)
		got := flat[i*16 : (i+1)*16]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("SignAll disagrees with Sign for set %d", i)
			}
		}
	}
}

func TestEstimatePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Estimate with mismatched lengths did not panic")
		}
	}()
	Estimate([]uint32{1, 2}, []uint32{1})
}

func TestEmbedShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sets := make([][]uint32, 50)
	for i := range sets {
		sets[i] = randomSet(rng, 2+rng.Intn(30), 1000)
	}
	const tEmb = 64
	emb := Embed(sets, tEmb, 99)
	if len(emb.Sets) != len(sets) {
		t.Fatalf("embedded %d sets, want %d", len(emb.Sets), len(sets))
	}
	for i, e := range emb.Sets {
		if len(e) != tEmb {
			t.Fatalf("embedded set %d has size %d, want %d", i, len(e), tEmb)
		}
		if !intset.IsSet(e) {
			t.Fatalf("embedded set %d is not sorted/unique", i)
		}
	}
	if emb.Universe == 0 || emb.Universe > len(sets)*tEmb {
		t.Fatalf("implausible universe %d", emb.Universe)
	}
}

// TestEmbedPreservesSimilarity: Braun-Blanquet similarity of embedded sets
// (|∩|/t) estimates Jaccard of the originals.
func TestEmbedPreservesSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	size := 80
	for _, wantJ := range []float64{0.3, 0.6, 0.9} {
		shared := int(math.Round(2 * wantJ / (1 + wantJ) * float64(size)))
		a, b := overlappingPair(rng, size, shared, 50000)
		trueJ := intset.Jaccard(a, b)
		const tEmb = 512
		est := 0.0
		const reps = 4
		for r := 0; r < reps; r++ {
			emb := Embed([][]uint32{a, b}, tEmb, uint64(500+r))
			est += float64(intset.IntersectSize(emb.Sets[0], emb.Sets[1])) / tEmb
		}
		est /= reps
		if math.Abs(est-trueJ) > 0.05 {
			t.Errorf("embedded similarity %v too far from true J %v", est, trueJ)
		}
	}
}

// TestEmbedExactIdentity: identical input sets embed to identical token
// sets (intersection t), disjoint unrelated sets to nearly disjoint ones.
func TestEmbedExactIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomSet(rng, 40, 10000)
	b := append([]uint32(nil), a...)
	c := randomSet(rng, 40, 10000)
	for intset.IntersectSize(a, c) > 0 {
		c = randomSet(rng, 40, 10000)
	}
	emb := Embed([][]uint32{a, b, c}, 128, 11)
	if got := intset.IntersectSize(emb.Sets[0], emb.Sets[1]); got != 128 {
		t.Fatalf("identical sets share %d/128 embedded tokens", got)
	}
	if got := intset.IntersectSize(emb.Sets[0], emb.Sets[2]); got > 8 {
		t.Fatalf("disjoint sets share %d/128 embedded tokens", got)
	}
}

func BenchmarkSign(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	set := randomSet(rng, 100, 100000)
	s := NewSigner(128, 1)
	sig := make([]uint32, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SignInto(set, sig)
	}
}

func BenchmarkEstimate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := NewSigner(128, 1)
	x := s.Sign(randomSet(rng, 100, 100000))
	y := s.Sign(randomSet(rng, 100, 100000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Estimate(x, y)
	}
}
