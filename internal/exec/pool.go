// Package exec is the shared parallel execution layer of the join
// algorithms: a bounded work-stealing task pool.
//
// Section VII of the CPSJoin paper observes that "recursive methods such
// as ours lend themselves well to parallel and distributed implementations
// since most of the computation happens in independent, recursive calls".
// This package turns that observation into infrastructure: algorithms
// decompose their work — whole repetitions, recursion subtrees, probe
// ranges — into Tasks, and the pool executes them on a fixed set of
// workers. Tasks spawned by a running task go to that worker's local deque
// (LIFO, preserving the depth-first locality of the recursion they came
// from); idle workers steal from the opposite end of other workers' deques
// (FIFO, so the largest still-undecomposed subtrees migrate first).
//
// The pool makes no ordering promises. Algorithms that must produce
// identical results regardless of worker count derive all randomness from
// per-task seeds and publish results into order-insensitive sinks (see
// verify.ConcurrentResultSet); every algorithm in this repository follows
// that discipline.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is one unit of work. Tasks may spawn further tasks through the Ctx;
// the pool runs until every spawned task has completed.
type Task func(c *Ctx)

// Package-level execution counters, aggregated across every pool (pools in
// this repository are ephemeral — one per Run call — so per-pool counters
// would vanish before anyone could read them). All updates are single
// atomic RMWs on the existing queue-operation paths, which are already far
// off the hot path (see deque).
var (
	tasksRun   atomic.Uint64
	steals     atomic.Uint64
	queueDepth atomic.Int64
)

// Stats is a point-in-time snapshot of the package-level execution
// counters.
type Stats struct {
	TasksRun   uint64 // tasks completed, across all pools since process start
	Steals     uint64 // tasks taken from another worker's deque
	QueueDepth int64  // tasks currently queued or executing
}

// ReadStats returns the current package-level execution counters.
func ReadStats() Stats {
	return Stats{
		TasksRun:   tasksRun.Load(),
		Steals:     steals.Load(),
		QueueDepth: queueDepth.Load(),
	}
}

// EffectiveWorkers maps the Workers knob shared by every join Options
// struct to an actual worker count: 0 (the zero value) runs sequentially,
// negative selects GOMAXPROCS, positive is taken as given.
func EffectiveWorkers(w int) int {
	if w == 0 {
		return 1
	}
	if w < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// Ctx is passed to every running task: it identifies the executing worker
// and is the handle for spawning subtasks.
type Ctx struct {
	pool   *Pool
	worker int
}

// Worker returns the index of the executing worker in [0, Workers()).
// Algorithms use it to address per-worker scratch space without locking.
func (c *Ctx) Worker() int { return c.worker }

// Workers returns the pool's worker count.
func (c *Ctx) Workers() int { return c.pool.workers }

// Spawn schedules t for execution. The task lands on the executing
// worker's own deque and is typically run by that worker next (LIFO),
// unless another worker steals it.
func (c *Ctx) Spawn(t Task) { c.pool.push(c.worker, t) }

// Pool is a bounded work-stealing task pool: a fixed number of workers,
// one deque per worker, and a global quiescence count. A Pool executes one
// batch of root tasks (plus everything they spawn) per Run call.
type Pool struct {
	workers int
	deques  []deque
	pending atomic.Int64 // tasks spawned but not yet completed
	wake    chan struct{}
	done    chan struct{}
	once    sync.Once
}

// deque is one worker's task queue. A mutex-guarded slice is deliberately
// simple: tasks in this repository are coarse enough (whole subtrees,
// probe chunks) that queue operations are far off the critical path, and
// the single implementation is easy to reason about under -race.
type deque struct {
	mu sync.Mutex
	q  []Task
	_  [32]byte // keep neighboring deques off one cache line
}

// NewPool returns a pool with the given number of workers; workers <= 0
// selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		workers: workers,
		deques:  make([]deque, workers),
		wake:    make(chan struct{}, workers),
		done:    make(chan struct{}),
	}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Run executes the root tasks and everything they spawn, blocking until
// the pool is quiescent. It must be called at most once per Pool.
func (p *Pool) Run(roots ...Task) {
	if len(roots) == 0 {
		return
	}
	// Seed round-robin before any worker starts, so pending can only hit
	// zero when all work is truly done.
	for i, t := range roots {
		p.push(i%p.workers, t)
	}
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p.work(id)
		}(w)
	}
	wg.Wait()
}

// Run executes the root tasks on a fresh pool of the given size; it is the
// package's main entry point. workers <= 0 selects GOMAXPROCS.
func Run(workers int, roots ...Task) {
	NewPool(workers).Run(roots...)
}

// RunChunks partitions [0, n) into contiguous chunks and runs f over them
// on a pool of the given size — the shared fan-out shape of the
// data-parallel stages (index probing, signature computation). chunk <= 0
// derives a size that yields roughly 16 chunks per worker with a floor of
// 64, small enough that stealing rebalances skewed per-item cost.
func RunChunks(workers, n, chunk int, f func(c *Ctx, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = n / (max(workers, 1) * 16)
		if chunk < 64 {
			chunk = 64
		}
	}
	tasks := make([]Task, 0, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		lo, hi := lo, lo+chunk
		if hi > n {
			hi = n
		}
		tasks = append(tasks, func(c *Ctx) { f(c, lo, hi) })
	}
	Run(workers, tasks...)
}

// RunItems runs f for every i in [0, n) on a pool of the given size,
// inline when workers <= 1. Chunks are an eighth of an even split —
// finer than RunChunks' default — for fan-outs with skewed per-item cost
// (e.g. batch queries, where result-heavy items verify more candidates),
// so stealing can rebalance. Each item must write only its own slot of
// any shared output; the call returns after all items complete.
func RunItems(workers, n int, f func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	RunChunks(workers, n, chunk, func(c *Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

func (p *Pool) push(worker int, t Task) {
	p.pending.Add(1)
	queueDepth.Add(1)
	d := &p.deques[worker]
	d.mu.Lock()
	d.q = append(d.q, t)
	d.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// popLocal takes the newest task from the worker's own deque (LIFO).
func (p *Pool) popLocal(worker int) Task {
	d := &p.deques[worker]
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.q)
	if n == 0 {
		return nil
	}
	t := d.q[n-1]
	d.q[n-1] = nil
	d.q = d.q[:n-1]
	return t
}

// steal takes the oldest task from some other worker's deque (FIFO).
func (p *Pool) steal(worker int) Task {
	for i := 1; i < p.workers; i++ {
		d := &p.deques[(worker+i)%p.workers]
		d.mu.Lock()
		if len(d.q) > 0 {
			t := d.q[0]
			copy(d.q, d.q[1:])
			d.q[len(d.q)-1] = nil
			d.q = d.q[:len(d.q)-1]
			d.mu.Unlock()
			steals.Add(1)
			return t
		}
		d.mu.Unlock()
	}
	return nil
}

func (p *Pool) work(id int) {
	c := &Ctx{pool: p, worker: id}
	idle := 0
	for {
		t := p.popLocal(id)
		if t == nil {
			t = p.steal(id)
		}
		if t == nil {
			if p.pending.Load() == 0 {
				return
			}
			// Work exists or is in flight elsewhere. Spin briefly (a
			// spawning task usually follows within microseconds), then
			// park on the wake channel.
			idle++
			if idle < 4 {
				runtime.Gosched()
				continue
			}
			select {
			case <-p.wake:
			case <-p.done:
				return
			}
			continue
		}
		idle = 0
		t(c)
		tasksRun.Add(1)
		queueDepth.Add(-1)
		if p.pending.Add(-1) == 0 {
			// Last task: release every parked worker.
			p.once.Do(func() { close(p.done) })
			return
		}
	}
}
