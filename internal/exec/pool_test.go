package exec

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunExecutesAllRoots(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		var count atomic.Int64
		roots := make([]Task, 100)
		for i := range roots {
			roots[i] = func(c *Ctx) { count.Add(1) }
		}
		Run(workers, roots...)
		if got := count.Load(); got != 100 {
			t.Errorf("workers=%d: ran %d of 100 roots", workers, got)
		}
	}
}

func TestSpawnedTasksComplete(t *testing.T) {
	// A three-level fan-out: 8 roots each spawn 8 children, each child
	// spawns 8 grandchildren. All 8 + 64 + 512 tasks must run.
	for _, workers := range []int{1, 3, 7} {
		var count atomic.Int64
		roots := make([]Task, 8)
		for i := range roots {
			roots[i] = func(c *Ctx) {
				count.Add(1)
				for j := 0; j < 8; j++ {
					c.Spawn(func(c *Ctx) {
						count.Add(1)
						for k := 0; k < 8; k++ {
							c.Spawn(func(c *Ctx) { count.Add(1) })
						}
					})
				}
			}
		}
		Run(workers, roots...)
		if got := count.Load(); got != 8+64+512 {
			t.Errorf("workers=%d: ran %d of %d tasks", workers, got, 8+64+512)
		}
	}
}

func TestDeepRecursiveSpawn(t *testing.T) {
	// A single chain of depth 10000: each task spawns exactly one
	// successor. Exercises quiescence detection when the pool is mostly
	// idle.
	var depth atomic.Int64
	var chain func(d int) Task
	chain = func(d int) Task {
		return func(c *Ctx) {
			depth.Add(1)
			if d > 0 {
				c.Spawn(chain(d - 1))
			}
		}
	}
	Run(4, chain(9999))
	if got := depth.Load(); got != 10000 {
		t.Errorf("chain ran %d of 10000 links", got)
	}
}

func TestWorkerIndexInRange(t *testing.T) {
	const workers = 4
	var bad atomic.Int64
	roots := make([]Task, 64)
	for i := range roots {
		roots[i] = func(c *Ctx) {
			if c.Worker() < 0 || c.Worker() >= workers || c.Workers() != workers {
				bad.Add(1)
			}
		}
	}
	Run(workers, roots...)
	if bad.Load() != 0 {
		t.Errorf("%d tasks saw an out-of-range worker index", bad.Load())
	}
}

func TestWorkStealingSpreadsLoad(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs to observe stealing reliably")
	}
	// One root spawns many tasks onto its own deque; with stealing, other
	// workers should execute some of them.
	const workers = 4
	var perWorker [workers]atomic.Int64
	root := func(c *Ctx) {
		for i := 0; i < 1000; i++ {
			c.Spawn(func(c *Ctx) {
				perWorker[c.Worker()].Add(1)
				// A little work so the spawner does not finish everything
				// before anyone can steal.
				s := 0
				for k := 0; k < 1000; k++ {
					s += k
				}
				_ = s
			})
		}
	}
	Run(workers, root)
	busy := 0
	for i := range perWorker {
		if perWorker[i].Load() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d of %d workers executed tasks; stealing ineffective", busy, workers)
	}
}

func TestZeroWorkersSelectsGOMAXPROCS(t *testing.T) {
	ran := false
	Run(0, func(c *Ctx) { ran = true })
	if !ran {
		t.Error("root did not run")
	}
	if p := NewPool(0); p.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("NewPool(0).Workers() = %d, want GOMAXPROCS", p.Workers())
	}
}

func TestEmptyRun(t *testing.T) {
	Run(4) // must not hang
}

func TestRunItemsCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			hits := make([]int32, n)
			RunItems(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestReadStats(t *testing.T) {
	before := ReadStats()
	tasks := make([]Task, 64)
	for i := range tasks {
		tasks[i] = func(c *Ctx) {}
	}
	Run(4, tasks...)
	after := ReadStats()
	if got := after.TasksRun - before.TasksRun; got < 64 {
		t.Errorf("TasksRun delta = %d, want >= 64", got)
	}
	if after.QueueDepth != 0 {
		t.Errorf("QueueDepth = %d after quiescence, want 0", after.QueueDepth)
	}
	if after.Steals < before.Steals {
		t.Errorf("Steals decreased: %d -> %d", before.Steals, after.Steals)
	}
}
