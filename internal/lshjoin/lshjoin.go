// Package lshjoin implements the MINHASH locality-sensitive hashing
// similarity join of Algorithm 3 in the CPSJoin paper: L independent
// repetitions of bucketing on k concatenated MinHash values, followed by
// brute-force verification within buckets, sharing the 1-bit minwise
// sketch pre-filter with the CPSJoin implementation.
//
// The number of concatenated hash functions k is chosen per dataset and
// threshold by estimating the combined cost of bucket lookups and bucket
// pair verification for k in {2, ..., 10}, as sketched by Cohen et al. and
// described in Section V-B of the paper. The repetition count follows from
// the target recall: a pair at similarity λ collides with probability λᵏ
// per repetition, so L = ceil(ln(1/(1-ϕ)) / λᵏ).
package lshjoin

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/prep"
	"repro/internal/sketch"
	"repro/internal/tabhash"
	"repro/internal/verify"
)

// Options configures the MinHash LSH join.
type Options struct {
	// K is the number of concatenated MinHash values per bucket key.
	// 0 selects K automatically by cost estimation over {2..10}.
	K int
	// L is the number of repetitions. 0 derives L from TargetRecall and K.
	L int
	// MaxL caps the derived repetition count (guards against tiny λᵏ).
	MaxL int
	// TargetRecall is the per-pair recall probability ϕ (default 0.9).
	TargetRecall float64
	// T is the signature length used as the pool of MinHash values
	// (default 128, as in the paper's implementation).
	T int
	// SketchWords is the 1-bit minwise sketch width in 64-bit words
	// (default 8). 0 keeps the default; negative disables the filter.
	SketchWords int
	// Delta is the sketch false-negative probability (default 0.05).
	Delta float64
	// Seed makes runs reproducible.
	Seed uint64
	// Workers is the worker count of the parallel execution layer
	// (internal/exec): repetitions run as independent tasks merging into a
	// shared concurrent result set. 0 runs sequentially, negative selects
	// GOMAXPROCS. The bucket positions of every repetition are drawn
	// before any task starts, so the result set is identical across worker
	// counts for a fixed Seed (StopAtRecall excepted: the early-stopping
	// point depends on scheduling).
	Workers int
	// GroundTruth, when non-nil together with StopAtRecall > 0, stops
	// repetitions as soon as recall against the known exact result reaches
	// StopAtRecall (the paper's experimental procedure, Section VI-2). All
	// workers share one atomic view of the accumulated recall.
	GroundTruth  []verify.Pair
	StopAtRecall float64
}

func (o *Options) withDefaults() Options {
	opt := Options{}
	if o != nil {
		opt = *o
	}
	if opt.TargetRecall <= 0 || opt.TargetRecall >= 1 {
		opt.TargetRecall = 0.9
	}
	if opt.T <= 0 {
		opt.T = 128
	}
	if opt.SketchWords == 0 {
		opt.SketchWords = 8
	}
	if opt.Delta <= 0 || opt.Delta >= 1 {
		opt.Delta = 0.05
	}
	if opt.MaxL <= 0 {
		opt.MaxL = 512
	}
	return opt
}

// Join computes an approximate self-join at Jaccard threshold lambda,
// reporting each true result pair with probability at least TargetRecall.
// Returned pairs are deduplicated and exact-verified (100% precision).
func Join(sets [][]uint32, lambda float64, o *Options) ([]verify.Pair, verify.Counters) {
	opt := o.withDefaults()
	words := opt.SketchWords
	if words < 0 {
		words = 0
	}
	if len(sets) < 2 {
		return nil, verify.Counters{}
	}
	ix := prep.BuildParallel(sets, opt.T, words, opt.Seed, exec.EffectiveWorkers(opt.Workers))
	return JoinIndexed(ix, lambda, o)
}

// JoinIndexed runs the join against a prebuilt index (signatures and
// sketches), excluding preprocessing from the join work, as in the paper's
// measurements. The index fixes T and the sketch width.
func JoinIndexed(ix *prep.Index, lambda float64, o *Options) ([]verify.Pair, verify.Counters) {
	opt := o.withDefaults()
	opt.T = ix.T
	sets := ix.Sets
	var counters verify.Counters
	if len(sets) < 2 {
		return nil, counters
	}
	if lambda <= 0 || lambda >= 1 {
		panic(fmt.Sprintf("lshjoin: lambda %v out of (0,1)", lambda))
	}

	sigs := ix.Sigs

	var sketches []uint64
	var filter *sketch.Filter
	if opt.SketchWords > 0 && ix.Words > 0 {
		opt.SketchWords = ix.Words
		sketches = ix.Sketches
		filter = sketch.NewFilter(opt.SketchWords, lambda, opt.Delta)
	}

	rng := tabhash.NewSplitMix64(opt.Seed + 0x1f1f)

	k := opt.K
	if k <= 0 {
		k = chooseK(sets, sigs, opt.T, lambda, opt.TargetRecall, rng)
	}
	l := opt.L
	if l <= 0 {
		l = Repetitions(lambda, k, opt.TargetRecall)
		if l > opt.MaxL {
			l = opt.MaxL
		}
	}

	// Draw every repetition's bucket positions up front, from the same
	// stream and in the same order as a sequential run would: the join's
	// only randomness is then fixed before any task starts, which is what
	// makes the result set identical across worker counts.
	allPositions := make([][]int, l)
	for rep := 0; rep < l; rep++ {
		allPositions[rep] = make([]int, k)
		samplePositions(rng, allPositions[rep], opt.T)
	}

	workers := exec.EffectiveWorkers(opt.Workers)
	res := verify.NewSink(workers)
	tracker := verify.NewRecallTracker(opt.GroundTruth, opt.StopAtRecall)
	v := verify.NewVerifier(sets, lambda, nil)
	hasher := tabhash.NewTable64(opt.Seed + 0x7e7e)
	var atomics verify.AtomicCounters

	runRep := func(rep int) {
		if tracker.Reached() {
			return
		}
		j := &lshTask{
			sets: sets, sigs: sigs, t: opt.T,
			sketches: sketches, filter: filter, words: opt.SketchWords,
			v: v, res: res, tracker: tracker,
		}
		buckets := bucketize(sets, sigs, opt.T, allPositions[rep], hasher)
		for _, bucket := range buckets {
			if tracker.Reached() {
				break
			}
			j.bruteForceBucket(bucket)
		}
		atomics.Add(j.pre, j.cand)
	}

	if workers <= 1 {
		for rep := 0; rep < l; rep++ {
			if tracker.Reached() {
				break
			}
			runRep(rep)
		}
	} else {
		roots := make([]exec.Task, l)
		for rep := range roots {
			rep := rep
			roots[rep] = func(c *exec.Ctx) { runRep(rep) }
		}
		exec.Run(workers, roots...)
	}
	counters = atomics.Counters()
	counters.Results = int64(res.Len())
	return res.Pairs(), counters
}

// Repetitions returns the repetition count needed for per-pair recall phi
// at bucket collision probability lambda^k.
func Repetitions(lambda float64, k int, phi float64) int {
	p := math.Pow(lambda, float64(k))
	l := int(math.Ceil(math.Log(1/(1-phi)) / p))
	if l < 1 {
		l = 1
	}
	return l
}

// samplePositions fills pos with k distinct indices from [t].
func samplePositions(rng *tabhash.SplitMix64, pos []int, t int) {
	seen := make(map[int]bool, len(pos))
	for i := range pos {
		for {
			p := rng.Intn(t)
			if !seen[p] {
				seen[p] = true
				pos[i] = p
				break
			}
		}
	}
}

// bucketize groups set ids by the hash of their signature values at the
// sampled positions.
func bucketize(sets [][]uint32, sigs []uint32, t int, positions []int, hasher *tabhash.Table64) map[uint64][]uint32 {
	buckets := make(map[uint64][]uint32, len(sets)/2)
	for id := range sets {
		sig := sigs[id*t : (id+1)*t]
		key := uint64(0x9e3779b97f4a7c15)
		for _, p := range positions {
			key = hasher.Hash(key ^ uint64(sig[p]))
		}
		buckets[key] = append(buckets[key], uint32(id))
	}
	return buckets
}

// lshTask is the per-repetition execution context: locally batched
// counters around the shared read-only state and concurrent sink.
type lshTask struct {
	sets      [][]uint32
	sigs      []uint32
	t         int
	sketches  []uint64
	filter    *sketch.Filter
	words     int
	v         *verify.Verifier
	res       verify.PairSink
	tracker   *verify.RecallTracker
	pre, cand int64
}

// bruteForceBucket verifies all pairs within a bucket, applying the size
// filter and the sketch filter before exact verification.
func (j *lshTask) bruteForceBucket(bucket []uint32) {
	if len(bucket) < 2 {
		return
	}
	for i := 0; i < len(bucket); i++ {
		for k := i + 1; k < len(bucket); k++ {
			a, b := bucket[i], bucket[k]
			j.pre++
			if j.res.Contains(a, b) {
				continue // already reported in an earlier repetition
			}
			if !j.v.SizeCompatible(len(j.sets[a]), len(j.sets[b])) {
				continue
			}
			if j.filter != nil {
				sa := j.sketches[int(a)*j.words : (int(a)+1)*j.words]
				sb := j.sketches[int(b)*j.words : (int(b)+1)*j.words]
				if !j.filter.Accept(sa, sb) {
					continue
				}
			}
			j.cand++
			if j.v.Verify(a, b) {
				if j.res.Add(a, b) {
					j.tracker.Hit(a, b)
				}
			}
		}
	}
}

// chooseK estimates, for each k in {2..10}, the total cost of the splitting
// step (bucket construction) plus within-bucket comparisons across the
// L(k) repetitions required for the target recall, by performing one
// trial split per k and counting bucket sizes. It returns the k with the
// lowest estimate (Section V-B of the paper).
func chooseK(sets [][]uint32, sigs []uint32, t int, lambda, phi float64, rng *tabhash.SplitMix64) int {
	const (
		costLookup  = 1.0 // relative cost of placing one set in a bucket
		costCompare = 0.4 // relative cost of one sketch comparison
	)
	hasher := tabhash.NewTable64(rng.Next())
	bestK, bestCost := 2, math.Inf(1)
	for k := 2; k <= 10; k++ {
		positions := make([]int, k)
		samplePositions(rng, positions, t)
		buckets := bucketize(sets, sigs, t, positions, hasher)
		pairs := 0.0
		for _, b := range buckets {
			n := float64(len(b))
			pairs += n * (n - 1) / 2
		}
		l := float64(Repetitions(lambda, k, phi))
		cost := l * (costLookup*float64(len(sets)) + costCompare*pairs)
		if cost < bestCost {
			bestCost = cost
			bestK = k
		}
	}
	return bestK
}
