package lshjoin

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/intset"
	"repro/internal/stats"
	"repro/internal/tabhash"
	"repro/internal/verify"
)

// testWorkload builds a dataset with known similar pairs.
func testWorkload(seed uint64) [][]uint32 {
	ds := datagen.Uniform(800, 20, 4000, seed)
	datagen.PlantPairs(ds, 40, 0.6, seed+1)
	datagen.PlantPairs(ds, 40, 0.8, seed+2)
	return ds.Sets
}

func TestPrecisionIsPerfect(t *testing.T) {
	sets := testWorkload(1)
	got, _ := Join(sets, 0.5, &Options{Seed: 7})
	for _, p := range got {
		if j := intset.Jaccard(sets[p.A], sets[p.B]); j < 0.5 {
			t.Fatalf("false positive (%d,%d) with J=%v", p.A, p.B, j)
		}
	}
}

func TestRecallMeetsTarget(t *testing.T) {
	sets := testWorkload(2)
	for _, lambda := range []float64{0.5, 0.7} {
		truth := verify.BruteForceJoin(sets, lambda)
		if len(truth) == 0 {
			t.Fatalf("workload has no results at λ=%v", lambda)
		}
		got, _ := Join(sets, lambda, &Options{Seed: 11, TargetRecall: 0.9})
		r := stats.Recall(got, truth)
		if r < 0.85 { // small slack: per-pair guarantee, finite sample
			t.Errorf("λ=%v: recall %v < 0.85 (%d/%d pairs)", lambda, r, len(got), len(truth))
		}
	}
}

func TestNoDuplicatePairs(t *testing.T) {
	sets := testWorkload(3)
	got, _ := Join(sets, 0.5, &Options{Seed: 3})
	seen := make(map[uint64]bool)
	for _, p := range got {
		if p.A >= p.B {
			t.Fatalf("unnormalized pair %v", p)
		}
		if seen[p.Key()] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p.Key()] = true
	}
}

func TestRepetitions(t *testing.T) {
	// L = ceil(ln(1/(1-phi)) / lambda^k).
	if got := Repetitions(0.5, 2, 0.9); got != 10 {
		t.Errorf("Repetitions(0.5, 2, 0.9) = %d, want 10", got)
	}
	if got := Repetitions(0.9, 1, 0.5); got != 1 {
		t.Errorf("Repetitions(0.9, 1, 0.5) = %d, want 1", got)
	}
	// More hashes -> more repetitions needed.
	if Repetitions(0.5, 6, 0.9) <= Repetitions(0.5, 3, 0.9) {
		t.Error("Repetitions not increasing in k")
	}
}

func TestSamplePositionsDistinct(t *testing.T) {
	rng := tabhash.NewSplitMix64(1)
	pos := make([]int, 10)
	for trial := 0; trial < 100; trial++ {
		samplePositions(rng, pos, 128)
		seen := make(map[int]bool)
		for _, p := range pos {
			if p < 0 || p >= 128 {
				t.Fatalf("position %d out of range", p)
			}
			if seen[p] {
				t.Fatal("duplicate position sampled")
			}
			seen[p] = true
		}
	}
}

func TestExplicitKAndL(t *testing.T) {
	sets := testWorkload(4)
	got, _ := Join(sets, 0.6, &Options{K: 4, L: 30, Seed: 5})
	for _, p := range got {
		if intset.Jaccard(sets[p.A], sets[p.B]) < 0.6 {
			t.Fatal("false positive with explicit k")
		}
	}
}

func TestSketchFilterDisabled(t *testing.T) {
	sets := testWorkload(5)
	truth := verify.BruteForceJoin(sets, 0.7)
	got, _ := Join(sets, 0.7, &Options{Seed: 6, SketchWords: -1})
	if r := stats.Recall(got, truth); r < 0.85 {
		t.Errorf("recall without sketches %v", r)
	}
}

func TestTinyInputs(t *testing.T) {
	if got, _ := Join(nil, 0.5, nil); got != nil {
		t.Error("Join(nil) returned pairs")
	}
	if got, _ := Join([][]uint32{{1, 2}}, 0.5, nil); got != nil {
		t.Error("Join(single) returned pairs")
	}
}

func TestInvalidLambdaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("lambda=1.5 did not panic")
		}
	}()
	Join([][]uint32{{1, 2}, {3, 4}}, 1.5, nil)
}

func TestCountersSane(t *testing.T) {
	sets := testWorkload(8)
	got, c := Join(sets, 0.5, &Options{Seed: 9})
	if c.Results != int64(len(got)) {
		t.Errorf("Results counter %d, pairs %d", c.Results, len(got))
	}
	if c.Candidates > c.PreCandidates {
		t.Errorf("candidates %d > pre-candidates %d", c.Candidates, c.PreCandidates)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	sets := testWorkload(10)
	a, _ := Join(sets, 0.6, &Options{Seed: 42})
	b, _ := Join(sets, 0.6, &Options{Seed: 42})
	if !stats.EqualPairSets(a, b) {
		t.Error("same seed produced different results")
	}
}
