package ssjoin_test

import (
	"fmt"

	ssjoin "repro"
)

// The simplest use: join a small collection and print verified pairs.
func ExampleCPSJoin() {
	sets := [][]uint32{
		{1, 2, 3, 4},     // 0
		{1, 2, 3, 5},     // 1: J(0,1) = 3/5 = 0.6
		{10, 11, 12},     // 2
		{10, 11, 12},     // 3: J(2,3) = 1
		{20, 21, 22, 23}, // 4: similar to nothing
	}
	pairs, _ := ssjoin.CPSJoin(sets, 0.6, &ssjoin.Options{Seed: 1})
	for _, p := range pairs {
		fmt.Printf("%d-%d J=%.1f\n", p.A, p.B, ssjoin.Jaccard(sets[p.A], sets[p.B]))
	}
	// Unordered output:
	// 0-1 J=0.6
	// 2-3 J=1.0
}

// Exact joins are available as ground truth or when 100% recall matters.
func ExampleAllPairs() {
	sets := [][]uint32{
		{1, 2, 3, 4},
		{1, 2, 3, 5},
		{7, 8},
	}
	pairs, _ := ssjoin.AllPairs(sets, 0.5, nil)
	fmt.Println(len(pairs), "pair(s)")
	// Output:
	// 1 pair(s)
}

// An R-S join reports only cross pairs between two collections.
func ExampleCPSJoinRS() {
	queries := [][]uint32{{1, 2, 3, 4}}
	catalog := [][]uint32{{5, 6, 7}, {1, 2, 3, 9}}
	pairs, _ := ssjoin.CPSJoinRS(queries, catalog, 0.5, &ssjoin.Options{Seed: 2, Repetitions: 20})
	for _, p := range pairs {
		fmt.Printf("query %d matches catalog %d\n", p.A, p.B)
	}
	// Output:
	// query 0 matches catalog 1
}

// NormalizeSet builds a valid set from arbitrary tokens.
func ExampleNormalizeSet() {
	s := ssjoin.NormalizeSet([]uint32{5, 1, 5, 3})
	fmt.Println(s)
	// Output:
	// [1 3 5]
}

// Preprocess once, join at several thresholds.
func ExampleNewIndex() {
	sets := ssjoin.GenerateUniform(500, 12, 4000, 7)
	sets, _ = ssjoin.PlantSimilarPairs(sets, 10, 0.9, 8)
	ix := ssjoin.NewIndex(sets, &ssjoin.Options{Seed: 9})
	for _, lambda := range []float64{0.5, 0.9} {
		pairs, _ := ix.CPSJoin(lambda, &ssjoin.Options{Seed: 9})
		exact, _ := ssjoin.AllPairs(sets, lambda, nil)
		fmt.Printf("λ=%.1f recall >= 0.9: %v\n", lambda, ssjoin.Recall(pairs, exact) >= 0.9)
	}
	// Output:
	// λ=0.5 recall >= 0.9: true
	// λ=0.9 recall >= 0.9: true
}
