// Quickstart: generate a small collection, run CPSJoin, and compare
// against the exact result.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ssjoin "repro"
)

func main() {
	// A workload of 2000 random sets with 60 planted near-duplicate pairs.
	sets := ssjoin.GenerateUniform(2000, 15, 20000, 1)
	sets, planted := ssjoin.PlantSimilarPairs(sets, 60, 0.8, 2)
	fmt.Printf("collection: %d sets, %d planted near-duplicate pairs\n", len(sets), len(planted))

	const lambda = 0.6

	// Approximate join: every pair with J >= 0.6 is reported with high
	// probability; nothing below 0.6 is ever reported.
	pairs, stats := ssjoin.CPSJoin(sets, lambda, &ssjoin.Options{Seed: 42})
	fmt.Printf("CPSJoin found %d pairs (verified %d of %d pre-candidates)\n",
		len(pairs), stats.Candidates, stats.PreCandidates)

	// Exact ground truth for comparison.
	truth := ssjoin.BruteForce(sets, lambda)
	fmt.Printf("exact join has %d pairs\n", len(truth))
	fmt.Printf("recall   = %.3f\n", ssjoin.Recall(pairs, truth))
	fmt.Printf("precision = %.3f (always 1: results are exact-verified)\n",
		ssjoin.Precision(pairs, truth))

	// Inspect a few results.
	for i, p := range pairs {
		if i == 3 {
			break
		}
		fmt.Printf("  sets %d and %d: J = %.3f\n", p.A, p.B, ssjoin.Jaccard(sets[p.A], sets[p.B]))
	}

	if ssjoin.Recall(pairs, truth) < 0.9 {
		log.Fatal("quickstart: recall below 90% — this should not happen with default options")
	}
}
