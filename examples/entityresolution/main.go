// Entity resolution: find duplicate customer records despite typos, using
// q-gram tokenization and an approximate set similarity self-join — the
// data-cleaning use case that motivates the paper's introduction.
//
// Each record (name + city) is tokenized into character 3-grams; records
// describing the same entity share most of their q-grams, so a Jaccard
// join at a moderate threshold surfaces duplicate candidates while the
// 100%-precision guarantee keeps the output trustworthy relative to the
// chosen similarity.
//
// Run with:
//
//	go run ./examples/entityresolution
package main

import (
	"fmt"
	"math/rand"

	ssjoin "repro"
)

// record is a noisy customer row.
type record struct {
	name   string
	street string
	city   string
	// entity is the hidden ground-truth id (for evaluation only).
	entity int
}

var firstNames = []string{
	"alice", "robert", "maria", "johannes", "chen", "fatima", "ivan",
	"sofia", "pedro", "yuki", "amara", "lars", "nadia", "george", "wei",
}
var lastNames = []string{
	"smith", "johnson", "garcia", "muller", "wang", "hassan", "petrov",
	"rossi", "silva", "tanaka", "okafor", "nielsen", "kowalski", "brown", "li",
}
var cities = []string{
	"copenhagen", "amsterdam", "barcelona", "helsinki", "lisbon",
	"edinburgh", "ljubljana", "rotterdam", "gothenburg", "valencia",
}
var streets = []string{
	"birch road", "elm street", "harbour lane", "station avenue",
	"mill court", "king street", "garden walk", "bridge row",
	"chapel hill", "meadow close", "forest drive", "quay side",
}

// perturb introduces a typo: transposition, deletion, or substitution.
func perturb(rng *rand.Rand, s string) string {
	if len(s) < 3 {
		return s
	}
	b := []byte(s)
	i := 1 + rng.Intn(len(b)-2)
	switch rng.Intn(3) {
	case 0: // transpose
		b[i], b[i-1] = b[i-1], b[i]
	case 1: // delete
		b = append(b[:i], b[i+1:]...)
	default: // substitute
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

// makeRecords generates n entities, each appearing 1-3 times with typos.
func makeRecords(rng *rand.Rand, n int) []record {
	var out []record
	for e := 0; e < n; e++ {
		name := firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
		street := fmt.Sprintf("%d %s", 1+rng.Intn(180), streets[rng.Intn(len(streets))])
		city := cities[rng.Intn(len(cities))]
		copies := 1 + rng.Intn(3)
		for c := 0; c < copies; c++ {
			r := record{name: name, street: street, city: city, entity: e}
			if c > 0 { // later copies are noisy
				r.name = perturb(rng, r.name)
				if rng.Intn(3) == 0 {
					r.street = perturb(rng, r.street)
				}
			}
			out = append(out, r)
		}
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(7))
	records := makeRecords(rng, 3000)
	fmt.Printf("%d records over 3000 entities\n", len(records))

	dict := ssjoin.NewDictionary()
	sets := make([][]uint32, len(records))
	for i, r := range records {
		sets[i] = dict.QGrams(r.name+"|"+r.street+"|"+r.city, 3)
	}
	fmt.Printf("tokenized into 3-grams: %d distinct grams\n", dict.Size())

	const lambda = 0.55
	pairs, _ := ssjoin.CPSJoin(sets, lambda, &ssjoin.Options{Seed: 99})

	// Evaluate against the hidden entity ids.
	var truePos, falsePos int
	for _, p := range pairs {
		if records[p.A].entity == records[p.B].entity {
			truePos++
		} else {
			falsePos++
		}
	}
	// How many duplicate pairs exist in total?
	byEntity := map[int]int{}
	for _, r := range records {
		byEntity[r.entity]++
	}
	totalDup := 0
	for _, c := range byEntity {
		totalDup += c * (c - 1) / 2
	}

	fmt.Printf("join at λ=%.2f reported %d pairs\n", lambda, len(pairs))
	fmt.Printf("  true duplicates found: %d / %d (%.1f%%)\n",
		truePos, totalDup, 100*float64(truePos)/float64(totalDup))
	fmt.Printf("  coincidental matches (different entities, similar text): %d\n", falsePos)

	for i, p := range pairs {
		if i == 5 {
			break
		}
		a, b := records[p.A], records[p.B]
		marker := " "
		if a.entity == b.entity {
			marker = "="
		}
		fmt.Printf("  %s %q / %q  <->  %q / %q  (J=%.2f)\n",
			marker, a.name, a.street, b.name, b.street, ssjoin.Jaccard(sets[p.A], sets[p.B]))
	}
}
