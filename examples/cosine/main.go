// Cosine/angular similarity join via LSH embedding: the Section II-A
// reduction in action. Any LSHable similarity measure can be joined by
// embedding records into fixed-size token sets and running a Jaccard
// join at a converted threshold.
//
// Here the measure is angular similarity (1 - θ/π) of sets viewed as
// binary vectors, whose LSH family is SimHash. The embedding makes the
// join approximate in two ways: the per-pair recall of CPSJoin, and the
// estimation error of the t sampled hash functions.
//
// Run with:
//
//	go run ./examples/cosine
package main

import (
	"fmt"
	"math"

	ssjoin "repro"
)

// angular returns the angular similarity 1 - θ/π of two sets as binary
// vectors, where cos θ = |a∩b|/sqrt(|a||b|).
func angular(a, b []uint32) float64 {
	inter := 0
	m := make(map[uint32]bool, len(a))
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if m[x] {
			inter++
		}
	}
	cos := float64(inter) / math.Sqrt(float64(len(a))*float64(len(b)))
	if cos > 1 {
		cos = 1
	}
	return 1 - math.Acos(cos)/math.Pi
}

func main() {
	// Documents as bags of term ids, with planted near-duplicates.
	sets := ssjoin.GenerateUniform(3000, 40, 50000, 5)
	sets, planted := ssjoin.PlantSimilarPairs(sets, 50, 0.8, 6)
	fmt.Printf("%d documents, %d planted near-duplicate pairs\n", len(sets), len(planted))

	// Angular threshold: J=0.8 pairs have cosine ~0.89, angular ~0.85.
	const lambdaAngular = 0.8

	// Embed with the SimHash family: every document becomes exactly 256
	// tokens; shared tokens correspond to agreeing SimHash bits.
	emb := ssjoin.Embed(sets, 256, 7, ssjoin.AngularFamily{})

	// Join the embedded sets at the converted Jaccard threshold.
	pairs, _ := ssjoin.CPSJoin(emb, ssjoin.EmbeddedThreshold(lambdaAngular), &ssjoin.Options{Seed: 8})
	fmt.Printf("embedded join at angular λ=%.2f reported %d pairs\n", lambdaAngular, len(pairs))

	// Check the output against the true angular similarity of the
	// originals: embedding error puts some pairs slightly below the
	// threshold, which is the documented trade-off of the reduction.
	below := 0
	worst := 1.0
	for _, p := range pairs {
		s := angular(sets[p.A], sets[p.B])
		if s < lambdaAngular {
			below++
			if s < worst {
				worst = s
			}
		}
	}
	fmt.Printf("pairs below the true angular threshold: %d (worst %.3f) — embedding estimation error\n",
		below, worst)

	// Recall on the planted near-duplicates.
	got := make(map[[2]int]bool, len(pairs))
	for _, p := range pairs {
		got[[2]int{p.A, p.B}] = true
	}
	hits := 0
	for _, pl := range planted {
		if angular(sets[pl[0]], sets[pl[1]]) < lambdaAngular {
			continue // planting noise dropped it below the threshold
		}
		if got[[2]int{pl[0], pl[1]}] || got[[2]int{pl[1], pl[0]}] {
			hits++
		}
	}
	fmt.Printf("planted pairs above the threshold recovered: %d\n", hits)
}
