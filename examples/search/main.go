// Online similarity search with the Chosen Path index: build the index
// once over a catalogue, then answer point queries as they arrive — the
// search-structure counterpart of CPSJoin (both traverse the same random
// splitting trees; the join streams them, the index stores them).
//
// Run with:
//
//	go run ./examples/search
package main

import (
	"fmt"
	"time"

	ssjoin "repro"
)

func main() {
	// Catalogue: 20k sets with near-duplicate mass planted.
	catalogue := ssjoin.GenerateUniform(20000, 30, 200000, 21)
	catalogue, planted := ssjoin.PlantSimilarPairs(catalogue, 200, 0.8, 22)
	fmt.Printf("catalogue: %d sets\n", len(catalogue))

	const lambda = 0.6
	start := time.Now()
	index := ssjoin.NewSearchIndex(catalogue, lambda, &ssjoin.SearchOptions{Seed: 23})
	fmt.Printf("index built in %.2fs\n", time.Since(start).Seconds())

	// Queries: one side of each planted pair; the other side is the
	// neighbor the index should find (besides the query itself, which is
	// indexed too — so we use QueryAll and look for a non-self hit).
	found, queries := 0, 0
	start = time.Now()
	for _, p := range planted {
		q := catalogue[p[0]]
		if ssjoin.Jaccard(q, catalogue[p[1]]) < lambda {
			continue
		}
		queries++
		for _, id := range index.QueryAll(q) {
			if id == p[1] {
				found++
				break
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d/%d planted neighbors found (%.1f%%), %.2fms per query\n",
		found, queries, 100*float64(found)/float64(queries),
		elapsed.Seconds()*1000/float64(queries))

	// A single point lookup.
	q := catalogue[planted[0][0]]
	if id, sim, ok := index.Query(q); ok {
		fmt.Printf("Query(catalogue[%d]) -> set %d with J=%.2f\n", planted[0][0], id, sim)
	}
}
