// Recommendation: find users with similar item histories in a dense
// NETFLIX-like user-item dataset — the workload where the paper reports
// CPSJoin's largest speedups over exact prefix-filter joins, because every
// item is popular and there are no rare tokens to filter on.
//
// The example times CPSJoin against the exact AllPairs baseline on the
// same collection, demonstrating the robustness claim end to end.
//
// Run with:
//
//	go run ./examples/recommendation
package main

import (
	"fmt"
	"log"
	"time"

	ssjoin "repro"
)

func main() {
	// A synthetic analogue of the NETFLIX dataset (dense: each movie is
	// rated by many users), scaled to 4000 users.
	sets, err := ssjoin.GenerateProfile("NETFLIX", 4000, 3)
	if err != nil {
		log.Fatal(err)
	}
	s := ssjoin.Summarize(sets)
	fmt.Printf("users: %d, catalogue: %d items, avg history %.0f items, %.0f users/item\n",
		s.NumSets, s.Universe, s.AvgSetSize, s.SetsPerToken)

	const lambda = 0.7

	start := time.Now()
	exact, _ := ssjoin.AllPairs(sets, lambda, nil)
	allTime := time.Since(start)
	fmt.Printf("AllPairs (exact):   %8.3fs, %d similar user pairs\n", allTime.Seconds(), len(exact))

	start = time.Now()
	approx, _ := ssjoin.CPSJoin(sets, lambda, &ssjoin.Options{Seed: 11})
	cpTime := time.Since(start)
	fmt.Printf("CPSJoin (approx.):  %8.3fs, %d similar user pairs\n", cpTime.Seconds(), len(approx))

	fmt.Printf("recall %.3f at %.1fx speedup\n",
		ssjoin.Recall(approx, exact), allTime.Seconds()/cpTime.Seconds())

	// Use the join output: recommend items a user's most similar peer has
	// that the user lacks.
	if len(approx) > 0 {
		p := approx[0]
		a, b := sets[p.A], sets[p.B]
		missing := diff(b, a)
		fmt.Printf("example: user %d and user %d share J=%.2f of their histories;\n",
			p.A, p.B, ssjoin.Jaccard(a, b))
		fmt.Printf("         recommend %d items from user %d to user %d\n",
			len(missing), p.B, p.A)
	}
}

// diff returns the elements of b not present in a (both sorted).
func diff(b, a []uint32) []uint32 {
	var out []uint32
	i := 0
	for _, x := range b {
		for i < len(a) && a[i] < x {
			i++
		}
		if i >= len(a) || a[i] != x {
			out = append(out, x)
		}
	}
	return out
}
