// Command datagen generates the synthetic benchmark datasets of the
// CPSJoin evaluation: TOKENS, UNIFORM, ZIPF, and scaled analogues of the
// real datasets of Mann et al. (see DESIGN.md §4).
//
// Usage:
//
//	datagen -kind tokens -cap 10000 -output tokens10k.txt
//	datagen -kind uniform -n 100000 -avg 10 -universe 209 -output uniform.txt
//	datagen -kind zipf -n 100000 -avg 10 -universe 5000 -skew 0.9 -output zipf.txt
//	datagen -kind profile -profile NETFLIX -n 50000 -output netflix.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	ssjoin "repro"
)

func main() {
	var (
		kind     = flag.String("kind", "", "dataset kind: tokens, uniform, zipf, profile")
		output   = flag.String("output", "", "output file (required)")
		n        = flag.Int("n", 100000, "number of sets (uniform, zipf, profile)")
		avg      = flag.Int("avg", 10, "average set size (uniform, zipf)")
		universe = flag.Int("universe", 1000, "token universe size (uniform, zipf)")
		skew     = flag.Float64("skew", 0.9, "Zipf skew (zipf)")
		cap      = flag.Int("cap", 10000, "token cap (tokens); the paper uses 10000/15000/20000")
		profile  = flag.String("profile", "", "profile name (profile); one of "+strings.Join(ssjoin.ProfileNames(), ", "))
		seed     = flag.Uint64("seed", 2018, "random seed")
	)
	flag.Parse()

	if *output == "" {
		fmt.Fprintln(os.Stderr, "datagen: -output is required")
		flag.Usage()
		os.Exit(2)
	}

	var sets [][]uint32
	switch *kind {
	case "tokens":
		sets, _ = ssjoin.GenerateTokens(*cap, *seed)
	case "uniform":
		sets = ssjoin.GenerateUniform(*n, *avg, *universe, *seed)
	case "zipf":
		sets = ssjoin.GenerateZipf(*n, *avg, *universe, *skew, *seed)
	case "profile":
		var err error
		sets, err = ssjoin.GenerateProfile(*profile, *n, *seed)
		if err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("unknown kind %q (want tokens, uniform, zipf or profile)", *kind)
	}

	if err := ssjoin.SaveSets(*output, sets); err != nil {
		fatalf("%v", err)
	}
	s := ssjoin.Summarize(sets)
	fmt.Fprintf(os.Stderr, "datagen: wrote %d sets (avg size %.1f, %d tokens, %.1f sets/token) to %s\n",
		s.NumSets, s.AvgSetSize, s.Universe, s.SetsPerToken, *output)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
